// bench_serve_load: closed-loop load generator for the ucpd service layer.
//
// Starts an in-process Server (same code path as the ucpd binary, minus
// fork/exec noise) and drives it from N concurrent client threads, each
// looping over a fixed request mix — real suite programs across both paper
// cache configurations and both technology nodes. Every level runs an
// unmeasured warmup pass first (populates the response and IPET caches the
// way a long-running daemon would be warm), then a timed phase; client-side
// latency of every request lands in a power-of-two obs::Histogram and the
// reported p50/p90/p99 come from its quantile estimator — the same figures
// a STATS scrape of a production daemon would report, instead of a
// bench-only sorted-vector path.
//
// Sustained req/s and latency quantiles per concurrency level go to
// BENCH_serve.json, along with the server-side counter deltas for the
// phase (shed / degraded / retried / watchdog fires / ...), the phase's
// queue-depth high-water mark, and the build stamp. With --trace/--metrics
// the server's serve.* spans and counters are written alongside — the
// bench doubles as the observability check for the service layer.
//
//   --fast           1s per level, levels 1 and 4 only
//   --levels=a,b,c   concurrency levels (default 1,2,4,8)
//   --seconds=N      timed-phase length per level (default 3)
//   --json=FILE      output path (default BENCH_serve.json)
//   --ops-smoke      enable the admin plane + flight recorder and scrape
//                    HEALTH/STATS/PROFILE concurrently with every timed
//                    phase; fail unless every scrape answers and the final
//                    STATS request counter reconciles with the
//                    load-generator totals (the ops_smoke ctest gate)
//   --trace=FILE / --metrics=FILE / --profile   as in every bench

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "cache/config.hpp"
#include "energy/model.hpp"
#include "ir/text_codec.hpp"
#include "obs/build_info.hpp"
#include "obs/flight.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "suite/suite.hpp"

namespace {

using Clock = std::chrono::steady_clock;

struct Args {
  bool fast = false;
  bool profile = false;
  bool ops_smoke = false;
  double seconds = 3.0;
  std::vector<unsigned> levels{1, 2, 4, 8};
  std::string json_path = "BENCH_serve.json";
  std::string trace_path;
  std::string metrics_path;
};

Args parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--fast") {
      args.fast = true;
    } else if (a == "--profile") {
      args.profile = true;
    } else if (a == "--ops-smoke") {
      args.ops_smoke = true;
    } else if (a.rfind("--seconds=", 0) == 0) {
      args.seconds = std::stod(a.substr(10));
    } else if (a.rfind("--levels=", 0) == 0) {
      args.levels.clear();
      std::stringstream ss(a.substr(9));
      std::string item;
      while (std::getline(ss, item, ','))
        args.levels.push_back(static_cast<unsigned>(std::stoul(item)));
    } else if (a.rfind("--json=", 0) == 0) {
      args.json_path = a.substr(7);
    } else if (a.rfind("--trace=", 0) == 0) {
      args.trace_path = a.substr(8);
    } else if (a.rfind("--metrics=", 0) == 0) {
      args.metrics_path = a.substr(10);
    } else {
      std::cerr << "unknown argument: " << a << "\n"
                << "usage: " << argv[0]
                << " [--fast] [--levels=1,2,4] [--seconds=N] [--json=FILE]"
                   " [--ops-smoke] [--trace=FILE] [--metrics=FILE]"
                   " [--profile]\n";
      std::exit(2);
    }
  }
  if (args.fast) {
    args.seconds = 1.0;
    args.levels = {1, 4};
  }
  return args;
}

/// The request mix: a spread of suite programs across both paper cache
/// configurations and both technology nodes. Small enough that the warm
/// response cache converges within one warmup pass, varied enough that the
/// IPET cache sees distinct topologies.
std::vector<ucp::serve::Request> build_mix() {
  using namespace ucp;
  static const char* kPrograms[] = {"bs",     "fibcall", "crc",
                                    "matmult", "fdct",    "jfdctint"};
  std::vector<serve::Request> mix;
  for (const char* name : kPrograms) {
    const std::string text = ir::to_text(suite::build_benchmark(name));
    for (const char* config : {"k1", "k2"}) {
      serve::Request r;
      r.config_id = config;
      r.config = cache::paper_cache_config(config).config;
      r.tech = config[1] == '1' ? energy::TechNode::k45nm
                                : energy::TechNode::k32nm;
      r.program_text = text;
      mix.push_back(std::move(r));
    }
  }
  return mix;
}

struct LevelResult {
  unsigned concurrency = 0;
  bool cold = false;  ///< unique fingerprints: every request runs the pipeline
  std::uint64_t requests = 0;           ///< completed in the timed phase
  std::uint64_t ok = 0;
  std::uint64_t degraded = 0;
  std::uint64_t errors = 0;             ///< served error responses
  std::uint64_t transport_failures = 0; ///< no response at all
  double elapsed_s = 0.0;
  double rps = 0.0;
  double p50_ms = 0.0;
  double p90_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
  std::int64_t queue_depth_peak = 0;    ///< serve.queue_depth_peak, this phase
  std::uint64_t scrapes = 0;            ///< admin scrapes answered (ops-smoke)
  ucp::serve::ServerStats stats;        ///< server-side delta for the phase
};

ucp::serve::ServerStats stats_delta(const ucp::serve::ServerStats& a,
                                    const ucp::serve::ServerStats& b) {
  ucp::serve::ServerStats d;
  d.accepted = b.accepted - a.accepted;
  d.shed = b.shed - a.shed;
  d.requests = b.requests - a.requests;
  d.malformed = b.malformed - a.malformed;
  d.dropped = b.dropped - a.dropped;
  d.ok = b.ok - a.ok;
  d.degraded = b.degraded - a.degraded;
  d.errors = b.errors - a.errors;
  d.cache_hits = b.cache_hits - a.cache_hits;
  d.replayed = b.replayed - a.replayed;
  d.retried = b.retried - a.retried;
  d.admin_scrapes = b.admin_scrapes - a.admin_scrapes;
  d.admin_dropped = b.admin_dropped - a.admin_dropped;
  d.flight_dumps = b.flight_dumps - a.flight_dumps;
  d.watchdog_fires = b.watchdog_fires - a.watchdog_fires;
  d.trace_dumps = b.trace_dumps - a.trace_dumps;
  return d;
}

/// One timed phase. Warm (`cold` false): the fixed mix, response-cache-hit
/// dominated after warmup — the service-layer overhead floor. Cold (`cold`
/// true): every request carries a unique deadline, so every fingerprint is
/// fresh and every request runs the full analyze→optimize→audit pipeline
/// (the IPET cache still shares topology work, as a warm daemon would).
/// `admin_port` non-zero adds a scraper thread hitting HEALTH / STATS /
/// "STATS prom" / PROFILE round-robin for the whole phase — the ops plane
/// must answer *while* the workers are saturated, or it is not a live ops
/// plane.
LevelResult run_level(ucp::serve::Server& server, unsigned concurrency,
                      double seconds, bool cold,
                      const std::vector<ucp::serve::Request>& mix,
                      std::uint64_t& id_counter, std::uint16_t admin_port,
                      std::uint64_t& warmups) {
  using namespace ucp;
  const std::uint16_t port = server.port();

  // Warmup: one full pass over the mix, unmeasured, so the timed phase
  // sees the caches a long-running daemon would have.
  for (std::size_t i = 0; i < mix.size(); ++i) {
    serve::Request r = mix[i];
    r.id = "warm-" + std::to_string(id_counter++);
    const auto response = serve::call(port, r);
    if (!response.ok()) {
      obs::log(obs::LogLevel::kError, "bench", "warmup_transport_failure",
               response.status().message());
      std::exit(1);
    }
    ++warmups;
    if (response->status == serve::ResponseStatus::kError) {
      obs::log(obs::LogLevel::kError, "bench", "warmup_request_failed",
               response->detail,
               obs::LogFields()
                   .num("index", static_cast<std::uint64_t>(i))
                   .str("config", r.config_id)
                   .str("code", error_code_name(response->code)));
      std::exit(1);
    }
  }

  // Per-phase high-water mark: the peak gauge is monotone, so it is reset
  // at phase start and read at phase end.
  obs::registry().gauge("serve.queue_depth_peak").set(0);

  const serve::ServerStats before = server.stats();
  std::atomic<std::uint64_t> next_id{id_counter};
  std::atomic<bool> running{true};
  // Latency lands in the same power-of-two histogram the daemon's own
  // serve.request_us uses; the reported quantiles come from its estimator,
  // not a bench-only sorted vector. (Heap-allocated: a Histogram is ~9KB of
  // sharded cells.)
  auto latency_us = std::make_unique<obs::Histogram>();
  std::vector<std::uint64_t> oks(concurrency, 0), degradeds(concurrency, 0),
      errors(concurrency, 0), transport(concurrency, 0);
  std::vector<double> max_ms(concurrency, 0.0);

  auto client = [&](unsigned me) {
    std::size_t cursor = me % mix.size();
    while (running.load(std::memory_order_relaxed)) {
      serve::Request r = mix[cursor];
      cursor = (cursor + 1) % mix.size();
      const std::uint64_t id =
          next_id.fetch_add(1, std::memory_order_relaxed);
      r.id = "load-" + std::to_string(id);
      // A unique deadline is a semantic field: it forces a fresh
      // fingerprint, so the response cache can never answer.
      if (cold)
        r.deadline_ms = static_cast<std::uint32_t>(60000 + id % 1000000);
      const auto started = Clock::now();
      const auto response = serve::call(port, r);
      const double ms =
          std::chrono::duration<double, std::milli>(Clock::now() - started)
              .count();
      if (!response.ok()) {
        ++transport[me];
        continue;
      }
      latency_us->record(static_cast<std::uint64_t>(ms * 1000.0));
      max_ms[me] = std::max(max_ms[me], ms);
      switch (response->status) {
        case serve::ResponseStatus::kOk:
          ++oks[me];
          break;
        case serve::ResponseStatus::kDegraded:
          ++degradeds[me];
          break;
        case serve::ResponseStatus::kError:
          ++errors[me];
          break;
      }
    }
  };

  std::uint64_t scrapes = 0;
  std::atomic<bool> scrape_failed{false};
  auto scraper = [&] {
    static const char* kVerbs[] = {"HEALTH", "STATS", "STATS prom",
                                   "PROFILE"};
    std::size_t i = 0;
    while (running.load(std::memory_order_relaxed)) {
      const char* verb = kVerbs[i++ % 4];
      const auto reply = serve::admin_call(admin_port, verb);
      if (!reply.ok() || !reply->ok || reply->payload.empty()) {
        obs::log(obs::LogLevel::kError, "bench", "scrape_failed",
                 reply.ok() ? reply->payload : reply.status().message(),
                 obs::LogFields().str("verb", verb));
        scrape_failed.store(true, std::memory_order_relaxed);
        return;
      }
      ++scrapes;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  };

  const auto phase_start = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(concurrency + 1);
  for (unsigned i = 0; i < concurrency; ++i) threads.emplace_back(client, i);
  if (admin_port != 0) threads.emplace_back(scraper);
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  running.store(false, std::memory_order_relaxed);
  for (std::thread& t : threads) t.join();
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - phase_start).count();
  id_counter = next_id.load();

  if (admin_port != 0 &&
      (scrape_failed.load() || scrapes == 0)) {
    obs::log(obs::LogLevel::kError, "bench", "ops_smoke_failed",
             "admin plane did not answer scrapes during load");
    std::exit(1);
  }

  LevelResult r;
  r.concurrency = concurrency;
  r.cold = cold;
  r.elapsed_s = elapsed;
  for (unsigned i = 0; i < concurrency; ++i) {
    r.ok += oks[i];
    r.degraded += degradeds[i];
    r.errors += errors[i];
    r.transport_failures += transport[i];
    r.max_ms = std::max(r.max_ms, max_ms[i]);
  }
  r.requests = latency_us->count();
  r.rps = elapsed > 0 ? static_cast<double>(r.requests) / elapsed : 0.0;
  r.p50_ms = latency_us->p50() / 1000.0;
  r.p90_ms = latency_us->p90() / 1000.0;
  r.p99_ms = latency_us->p99() / 1000.0;
  r.queue_depth_peak =
      obs::registry().gauge("serve.queue_depth_peak").value();
  r.scrapes = scrapes;
  r.stats = stats_delta(before, server.stats());
  return r;
}

void write_json(const std::string& path, double seconds,
                const std::vector<LevelResult>& levels) {
  std::ofstream os(path, std::ios::trunc);
  os.precision(6);
  os << "{\n  \"bench\": \"serve_load\",\n  \"build\": "
     << ucp::obs::build_info_json()
     << ",\n  \"seconds_per_level\": " << seconds << ",\n  \"levels\": [\n";
  for (std::size_t i = 0; i < levels.size(); ++i) {
    const LevelResult& r = levels[i];
    os << "    {\"concurrency\": " << r.concurrency
       << ", \"mode\": \"" << (r.cold ? "cold" : "warm") << "\""
       << ", \"requests\": " << r.requests
       << ", \"sustained_rps\": " << r.rps
       << ", \"p50_ms\": " << r.p50_ms << ", \"p90_ms\": " << r.p90_ms
       << ", \"p99_ms\": " << r.p99_ms << ", \"max_ms\": " << r.max_ms
       << ",\n     \"ok\": " << r.ok << ", \"degraded\": " << r.degraded
       << ", \"errors\": " << r.errors
       << ", \"transport_failures\": " << r.transport_failures
       << ", \"cache_hits\": " << r.stats.cache_hits
       << ", \"shed\": " << r.stats.shed
       << ", \"retried\": " << r.stats.retried
       << ",\n     \"queue_depth_peak\": " << r.queue_depth_peak
       << ", \"watchdog_fires\": " << r.stats.watchdog_fires
       << ", \"flight_dumps\": " << r.stats.flight_dumps
       << ", \"admin_scrapes\": " << r.stats.admin_scrapes
       << ", \"scrapes\": " << r.scrapes << "}"
       << (i + 1 < levels.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  if (!os) {
    ucp::obs::log(ucp::obs::LogLevel::kError, "bench", "json_write_failed",
                  path);
    std::exit(1);
  }
  ucp::obs::log(ucp::obs::LogLevel::kInfo, "bench", "wrote_json", path);
}

/// First `"requests": N` in an admin STATS payload — field order in the
/// `server` object is deterministic (stats_json), so this is the daemon's
/// well-formed-request counter.
std::uint64_t parse_stats_requests(const std::string& payload) {
  const std::string needle = "\"requests\":";
  const std::size_t at = payload.find(needle);
  if (at == std::string::npos) return ~0ull;
  std::size_t i = at + needle.size();
  std::uint64_t value = 0;
  bool any = false;
  while (i < payload.size() && payload[i] >= '0' && payload[i] <= '9') {
    value = value * 10 + static_cast<std::uint64_t>(payload[i] - '0');
    ++i;
    any = true;
  }
  return any ? value : ~0ull;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ucp;
  const Args args = parse_args(argc, argv);
  bench::ObsSession obs_session(args.trace_path, args.metrics_path,
                                args.profile);
  // The serve.* gauges and the latency histogram are the bench's product,
  // not an opt-in: metrics are always on here.
  obs::set_enabled(true);

  serve::ServerOptions options;
  options.workers = *std::max_element(args.levels.begin(), args.levels.end());
  options.queue_capacity = 2 * options.workers;
  if (args.ops_smoke) {
    options.admin_enabled = true;
    obs::set_flight_enabled(true);
  }
  serve::Server server(options);
  const Status started = server.start();
  if (!started.ok()) {
    obs::log(obs::LogLevel::kError, "bench", "server_start_failed",
             started.message());
    return 1;
  }

  const std::vector<serve::Request> mix = build_mix();
  std::uint64_t id_counter = 0;
  std::uint64_t warmups = 0;
  std::vector<LevelResult> results;
  std::printf("%-12s %5s %10s %10s %9s %9s %9s %9s\n", "concurrency",
              "mode", "requests", "req/s", "p50 ms", "p90 ms", "p99 ms",
              "max ms");
  for (unsigned level : args.levels) {
    for (const bool cold : {false, true}) {
      LevelResult r = run_level(server, level, args.seconds, cold, mix,
                                id_counter, server.admin_port(), warmups);
      std::printf("%-12u %5s %10llu %10.1f %9.3f %9.3f %9.3f %9.3f\n",
                  r.concurrency, cold ? "cold" : "warm",
                  static_cast<unsigned long long>(r.requests), r.rps,
                  r.p50_ms, r.p90_ms, r.p99_ms, r.max_ms);
      if (r.transport_failures > 0 || r.errors > 0 ||
          r.stats.malformed > 0) {
        obs::log(obs::LogLevel::kError, "bench", "load_level_failed",
                 "failures on a valid-only workload",
                 obs::LogFields()
                     .num("level", static_cast<std::uint64_t>(level))
                     .num("transport_failures", r.transport_failures)
                     .num("errors", r.errors)
                     .num("malformed", r.stats.malformed));
        return 1;
      }
      results.push_back(std::move(r));
    }
  }

  if (args.ops_smoke) {
    // Reconciliation: the daemon's well-formed-request counter must equal
    // everything this generator got an answer for — timed-phase responses
    // plus warmup passes. A live STATS scrape that cannot account for the
    // load that produced it is an ops plane reporting fiction.
    std::uint64_t client_total = warmups;
    for (const LevelResult& r : results)
      client_total += r.ok + r.degraded + r.errors;
    const auto stats_reply = serve::admin_call(server.admin_port(), "STATS");
    if (!stats_reply.ok() || !stats_reply->ok) {
      obs::log(obs::LogLevel::kError, "bench", "ops_smoke_failed",
               "final STATS scrape did not answer");
      return 1;
    }
    const std::uint64_t served = parse_stats_requests(stats_reply->payload);
    if (served != client_total) {
      obs::log(obs::LogLevel::kError, "bench", "ops_smoke_failed",
               "STATS request counter does not reconcile",
               obs::LogFields()
                   .num("served", served)
                   .num("client_total", client_total));
      return 1;
    }
    const auto flight_reply = serve::admin_call(server.admin_port(), "FLIGHT");
    if (!flight_reply.ok() || !flight_reply->ok ||
        flight_reply->payload.rfind("{\"kind\":\"header\"", 0) != 0) {
      obs::log(obs::LogLevel::kError, "bench", "ops_smoke_failed",
               "FLIGHT scrape did not return a flight dump");
      return 1;
    }
    obs::log(obs::LogLevel::kInfo, "bench", "ops_smoke_ok", {},
             obs::LogFields()
                 .num("requests", served)
                 .num("scrapes",
                      [&] {
                        std::uint64_t total = 0;
                        for (const LevelResult& r : results)
                          total += r.scrapes;
                        return total;
                      }()));
  }
  server.stop();

  write_json(args.json_path, args.seconds, results);
  return 0;
}
