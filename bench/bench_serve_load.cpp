// bench_serve_load: closed-loop load generator for the ucpd service layer.
//
// Starts an in-process Server (same code path as the ucpd binary, minus
// fork/exec noise) and drives it from N concurrent client threads, each
// looping over a fixed request mix — real suite programs across both paper
// cache configurations and both technology nodes. Every level runs an
// unmeasured warmup pass first (populates the response and IPET caches the
// way a long-running daemon would be warm), then a timed phase; client-side
// latency of every request lands in the percentile table.
//
// Sustained req/s and p50/p90/p99 latency per concurrency level go to
// BENCH_serve.json. With --trace/--metrics the server's serve.* spans and
// counters (serve.request, serve.request_us, serve.cache_hits, ...) are
// written alongside — the bench doubles as the observability check for the
// service layer.
//
//   --fast           1s per level, levels 1 and 4 only
//   --levels=a,b,c   concurrency levels (default 1,2,4,8)
//   --seconds=N      timed-phase length per level (default 3)
//   --json=FILE      output path (default BENCH_serve.json)
//   --trace=FILE / --metrics=FILE / --profile   as in every bench

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "cache/config.hpp"
#include "energy/model.hpp"
#include "ir/text_codec.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "suite/suite.hpp"

namespace {

using Clock = std::chrono::steady_clock;

struct Args {
  bool fast = false;
  bool profile = false;
  double seconds = 3.0;
  std::vector<unsigned> levels{1, 2, 4, 8};
  std::string json_path = "BENCH_serve.json";
  std::string trace_path;
  std::string metrics_path;
};

Args parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--fast") {
      args.fast = true;
    } else if (a == "--profile") {
      args.profile = true;
    } else if (a.rfind("--seconds=", 0) == 0) {
      args.seconds = std::stod(a.substr(10));
    } else if (a.rfind("--levels=", 0) == 0) {
      args.levels.clear();
      std::stringstream ss(a.substr(9));
      std::string item;
      while (std::getline(ss, item, ','))
        args.levels.push_back(static_cast<unsigned>(std::stoul(item)));
    } else if (a.rfind("--json=", 0) == 0) {
      args.json_path = a.substr(7);
    } else if (a.rfind("--trace=", 0) == 0) {
      args.trace_path = a.substr(8);
    } else if (a.rfind("--metrics=", 0) == 0) {
      args.metrics_path = a.substr(10);
    } else {
      std::cerr << "unknown argument: " << a << "\n"
                << "usage: " << argv[0]
                << " [--fast] [--levels=1,2,4] [--seconds=N] [--json=FILE]"
                   " [--trace=FILE] [--metrics=FILE] [--profile]\n";
      std::exit(2);
    }
  }
  if (args.fast) {
    args.seconds = 1.0;
    args.levels = {1, 4};
  }
  return args;
}

/// The request mix: a spread of suite programs across both paper cache
/// configurations and both technology nodes. Small enough that the warm
/// response cache converges within one warmup pass, varied enough that the
/// IPET cache sees distinct topologies.
std::vector<ucp::serve::Request> build_mix() {
  using namespace ucp;
  static const char* kPrograms[] = {"bs",     "fibcall", "crc",
                                    "matmult", "fdct",    "jfdctint"};
  std::vector<serve::Request> mix;
  for (const char* name : kPrograms) {
    const std::string text = ir::to_text(suite::build_benchmark(name));
    for (const char* config : {"k1", "k2"}) {
      serve::Request r;
      r.config_id = config;
      r.config = cache::paper_cache_config(config).config;
      r.tech = config[1] == '1' ? energy::TechNode::k45nm
                                : energy::TechNode::k32nm;
      r.program_text = text;
      mix.push_back(std::move(r));
    }
  }
  return mix;
}

struct LevelResult {
  unsigned concurrency = 0;
  bool cold = false;  ///< unique fingerprints: every request runs the pipeline
  std::uint64_t requests = 0;           ///< completed in the timed phase
  std::uint64_t ok = 0;
  std::uint64_t degraded = 0;
  std::uint64_t errors = 0;             ///< served error responses
  std::uint64_t transport_failures = 0; ///< no response at all
  double elapsed_s = 0.0;
  double rps = 0.0;
  double p50_ms = 0.0;
  double p90_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
  ucp::serve::ServerStats stats;        ///< server-side delta for the phase
};

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const std::size_t idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

ucp::serve::ServerStats stats_delta(const ucp::serve::ServerStats& a,
                                    const ucp::serve::ServerStats& b) {
  ucp::serve::ServerStats d;
  d.accepted = b.accepted - a.accepted;
  d.shed = b.shed - a.shed;
  d.requests = b.requests - a.requests;
  d.malformed = b.malformed - a.malformed;
  d.dropped = b.dropped - a.dropped;
  d.ok = b.ok - a.ok;
  d.degraded = b.degraded - a.degraded;
  d.errors = b.errors - a.errors;
  d.cache_hits = b.cache_hits - a.cache_hits;
  d.replayed = b.replayed - a.replayed;
  d.retried = b.retried - a.retried;
  return d;
}

/// One timed phase. Warm (`cold` false): the fixed mix, response-cache-hit
/// dominated after warmup — the service-layer overhead floor. Cold (`cold`
/// true): every request carries a unique deadline, so every fingerprint is
/// fresh and every request runs the full analyze→optimize→audit pipeline
/// (the IPET cache still shares topology work, as a warm daemon would).
LevelResult run_level(ucp::serve::Server& server, unsigned concurrency,
                      double seconds, bool cold,
                      const std::vector<ucp::serve::Request>& mix,
                      std::uint64_t& id_counter) {
  using namespace ucp;
  const std::uint16_t port = server.port();

  // Warmup: one full pass over the mix, unmeasured, so the timed phase
  // sees the caches a long-running daemon would have.
  for (std::size_t i = 0; i < mix.size(); ++i) {
    serve::Request r = mix[i];
    r.id = "warm-" + std::to_string(id_counter++);
    const auto response = serve::call(port, r);
    if (!response.ok()) {
      std::cerr << "[serve] warmup transport failure: "
                << response.status().message() << "\n";
      std::exit(1);
    }
    if (response->status == serve::ResponseStatus::kError) {
      std::cerr << "[serve] warmup request " << i << " failed ("
                << r.config_id << ", " << error_code_name(response->code)
                << "): " << response->detail << "\n";
      std::exit(1);
    }
  }

  const serve::ServerStats before = server.stats();
  std::atomic<std::uint64_t> next_id{id_counter};
  std::atomic<bool> running{true};
  std::vector<std::vector<double>> latencies(concurrency);
  std::vector<std::uint64_t> oks(concurrency, 0), degradeds(concurrency, 0),
      errors(concurrency, 0), transport(concurrency, 0);

  auto client = [&](unsigned me) {
    std::vector<double>& mine = latencies[me];
    std::size_t cursor = me % mix.size();
    while (running.load(std::memory_order_relaxed)) {
      serve::Request r = mix[cursor];
      cursor = (cursor + 1) % mix.size();
      const std::uint64_t id =
          next_id.fetch_add(1, std::memory_order_relaxed);
      r.id = "load-" + std::to_string(id);
      // A unique deadline is a semantic field: it forces a fresh
      // fingerprint, so the response cache can never answer.
      if (cold)
        r.deadline_ms = static_cast<std::uint32_t>(60000 + id % 1000000);
      const auto started = Clock::now();
      const auto response = serve::call(port, r);
      const double ms =
          std::chrono::duration<double, std::milli>(Clock::now() - started)
              .count();
      if (!response.ok()) {
        ++transport[me];
        continue;
      }
      mine.push_back(ms);
      switch (response->status) {
        case serve::ResponseStatus::kOk:
          ++oks[me];
          break;
        case serve::ResponseStatus::kDegraded:
          ++degradeds[me];
          break;
        case serve::ResponseStatus::kError:
          ++errors[me];
          break;
      }
    }
  };

  const auto phase_start = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(concurrency);
  for (unsigned i = 0; i < concurrency; ++i) threads.emplace_back(client, i);
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  running.store(false, std::memory_order_relaxed);
  for (std::thread& t : threads) t.join();
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - phase_start).count();
  id_counter = next_id.load();

  LevelResult r;
  r.concurrency = concurrency;
  r.cold = cold;
  r.elapsed_s = elapsed;
  std::vector<double> all;
  for (unsigned i = 0; i < concurrency; ++i) {
    all.insert(all.end(), latencies[i].begin(), latencies[i].end());
    r.ok += oks[i];
    r.degraded += degradeds[i];
    r.errors += errors[i];
    r.transport_failures += transport[i];
  }
  std::sort(all.begin(), all.end());
  r.requests = all.size();
  r.rps = elapsed > 0 ? static_cast<double>(r.requests) / elapsed : 0.0;
  r.p50_ms = percentile(all, 0.50);
  r.p90_ms = percentile(all, 0.90);
  r.p99_ms = percentile(all, 0.99);
  r.max_ms = all.empty() ? 0.0 : all.back();
  r.stats = stats_delta(before, server.stats());
  return r;
}

void write_json(const std::string& path, double seconds,
                const std::vector<LevelResult>& levels) {
  std::ofstream os(path, std::ios::trunc);
  os.precision(6);
  os << "{\n  \"bench\": \"serve_load\",\n  \"seconds_per_level\": "
     << seconds << ",\n  \"levels\": [\n";
  for (std::size_t i = 0; i < levels.size(); ++i) {
    const LevelResult& r = levels[i];
    os << "    {\"concurrency\": " << r.concurrency
       << ", \"mode\": \"" << (r.cold ? "cold" : "warm") << "\""
       << ", \"requests\": " << r.requests
       << ", \"sustained_rps\": " << r.rps
       << ", \"p50_ms\": " << r.p50_ms << ", \"p90_ms\": " << r.p90_ms
       << ", \"p99_ms\": " << r.p99_ms << ", \"max_ms\": " << r.max_ms
       << ",\n     \"ok\": " << r.ok << ", \"degraded\": " << r.degraded
       << ", \"errors\": " << r.errors
       << ", \"transport_failures\": " << r.transport_failures
       << ", \"cache_hits\": " << r.stats.cache_hits
       << ", \"shed\": " << r.stats.shed
       << ", \"retried\": " << r.stats.retried << "}"
       << (i + 1 < levels.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  if (!os) {
    std::cerr << "[serve] failed to write " << path << "\n";
    std::exit(1);
  }
  std::cerr << "[serve] wrote " << path << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ucp;
  const Args args = parse_args(argc, argv);
  bench::ObsSession obs(args.trace_path, args.metrics_path, args.profile);

  serve::ServerOptions options;
  options.workers = *std::max_element(args.levels.begin(), args.levels.end());
  options.queue_capacity = 2 * options.workers;
  serve::Server server(options);
  const Status started = server.start();
  if (!started.ok()) {
    std::cerr << "[serve] failed to start: " << started.message() << "\n";
    return 1;
  }

  const std::vector<serve::Request> mix = build_mix();
  std::uint64_t id_counter = 0;
  std::vector<LevelResult> results;
  std::printf("%-12s %5s %10s %10s %9s %9s %9s %9s\n", "concurrency",
              "mode", "requests", "req/s", "p50 ms", "p90 ms", "p99 ms",
              "max ms");
  for (unsigned level : args.levels) {
    for (const bool cold : {false, true}) {
      LevelResult r =
          run_level(server, level, args.seconds, cold, mix, id_counter);
      std::printf("%-12u %5s %10llu %10.1f %9.3f %9.3f %9.3f %9.3f\n",
                  r.concurrency, cold ? "cold" : "warm",
                  static_cast<unsigned long long>(r.requests), r.rps,
                  r.p50_ms, r.p90_ms, r.p99_ms, r.max_ms);
      if (r.transport_failures > 0 || r.errors > 0 ||
          r.stats.malformed > 0) {
        std::cerr << "[serve] FAIL: level " << level << " saw "
                  << r.transport_failures << " transport failures, "
                  << r.errors << " error responses, " << r.stats.malformed
                  << " malformed counts on a valid-only workload\n";
        return 1;
      }
      results.push_back(std::move(r));
    }
  }
  server.stop();

  write_json(args.json_path, args.seconds, results);
  return 0;
}
