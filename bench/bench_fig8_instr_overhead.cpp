// Figure 8 — instruction overhead: the ratio of dynamically executed
// instructions of the optimized vs original program, per cache size. The
// paper reports a maximal average increase of 1.32%.

#include <iostream>

#include "bench_common.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace ucp;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::ObsSession obs_session(args);

  std::cout << "Figure 8: executed-instruction ratio (optimized/original) "
               "per cache size\n\n";
  const exp::Sweep sweep = exp::run_sweep(args.sweep());
  const auto& results = sweep.results;
  const auto by_size = exp::aggregate_by_size(results);
  const auto grand = exp::aggregate_all(results);

  TextTable table({"cache size", "cases", "mean instr ratio",
                   "mean increase"});
  for (const exp::SizeAggregate& agg : by_size) {
    table.add_row({std::to_string(agg.capacity_bytes) + " B",
                   std::to_string(agg.cases),
                   format_double(agg.mean_instr_ratio, 5),
                   format_pct_change(agg.mean_instr_ratio)});
  }
  table.print(std::cout);
  const auto regime_grand = exp::aggregate_all(exp::paper_regime(results));
  std::cout << "\nmaximum per-case increase: "
            << format_pct_change(grand.max_instr_ratio)
            << "   (paper max average: +1.32%)\n"
            << "paper-regime mean increase: "
            << format_pct_change(regime_grand.mean_instr_ratio) << " over "
            << regime_grand.cases << " cases\n"
            << "(our kernels are far smaller than compiled Mälardalen "
               "binaries, so each inserted prefetch weighs more in relative "
               "terms; see EXPERIMENTS.md)\n";

  std::cout << "\n";
  sweep.report.print(std::cout);
  return 0;
}
