// Table 2 — cache configurations: the 36 (associativity, block size,
// capacity) points, with the derived timing and energy model parameters at
// both technology nodes so every downstream number is reproducible.
//
// Doubles as the sweep performance harness:
//   --sweep[=STRIDE]   run the evaluation sweep cold (no memo cache) and
//                      write BENCH_sweep.json with wall-clock, throughput,
//                      per-stage timing and thread count, so the perf
//                      trajectory is tracked across PRs
//   --perf-smoke       run a small strided sweep twice (cold and warm
//                      process state) and fail on any result divergence
//   --threads N        worker threads (default: hardware concurrency)
//   --programs a,b     restrict the sweep to a program subset
//   --journal PATH     crash-safe checkpoint journal: a killed sweep
//                      resumes from the last durable row on the next run
//   --attempts N       retry-with-degradation ladder depth (sweep mode
//                      defaults to 3; 1 disables retries)
//   --deadline-ms N    per-task watchdog deadline (sweep mode defaults to
//                      120000; 0 disables the watchdog)
//   --trace=FILE       write a Chrome trace_event JSON of the sweep
//   --metrics=FILE     write the metrics registry snapshot (JSON)
//   --profile          print the top-spans profile table after the sweep
//   --trace-smoke      observability gate: run a small sweep with tracing
//                      off and on, fail on any fingerprint divergence,
//                      missing pipeline layer in the trace, or slowdown
//                      beyond the overhead budget
//   --ops-smoke        ops-plane gate: run the same slice with the full
//                      ops stack on (metrics + structured logging + flight
//                      recorder) and with everything off; fail on any
//                      fingerprint divergence, an empty flight ring, or
//                      slowdown beyond the same 1%+floor overhead budget
//   --expect-fingerprint=HEX
//                      (sweep mode) fail unless the full-grid result
//                      fingerprint equals HEX — the CI pin for "the ops
//                      plane never changed a number"
//   --shard i/N        run only shard i of N (deterministic round-robin
//                      partition of the heaviest-first schedule); requires
//                      --journal, prints the shard fingerprint, writes no
//                      BENCH_sweep.json (a shard is not the sweep)
//   --merge-journals a.jnl,b.jnl,...
//                      reassemble a complete set of shard journals:
//                      validates grid+selection fingerprints and shard
//                      ownership, rejects overlaps and gaps, re-derives
//                      the global sweep fingerprint and the row-derived
//                      metrics, and (with --merge-out) writes the merged
//                      journal byte-identical to a single-process run's
//   --merge-out PATH   destination for the merged journal
//   --scaling[=T1,T2]  thread-scaling benchmark: run the same sweep at
//                      each thread count (default 1,2,4,8), assert one
//                      fingerprint, record the curve in BENCH_sweep.json
//   --scaling-smoke    CI gate: reduced slice at threads {1,4}; fails on
//                      fingerprint divergence, and on < 1.5x speedup when
//                      the host actually has >= 4 cores (skipped, loudly,
//                      on smaller machines)
//
// SIGINT/SIGTERM stop the sweep cooperatively: finished rows are already
// durable in the journal, the health report (with the quarantine summary)
// is printed, and the bench exits with 128+signal.

#include <unistd.h>

#include <algorithm>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "cache/config.hpp"
#include "energy/model.hpp"
#include "exp/harness.hpp"
#include "exp/journal.hpp"
#include "obs/build_info.hpp"
#include "obs/flight.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/sink.hpp"
#include "obs/trace.hpp"
#include "support/table.hpp"

namespace {

struct Args {
  bool sweep = false;
  bool perf_smoke = false;
  bool trace_smoke = false;
  bool ops_smoke = false;
  std::string expect_fingerprint;
  bool profile = false;
  std::string trace_path;
  std::string metrics_path;
  std::uint32_t stride = 1;
  std::uint32_t threads = 0;
  std::vector<std::string> programs;
  std::string journal;
  std::uint32_t attempts = 0;     ///< 0 = mode default
  std::int64_t deadline_ms = -1;  ///< -1 = mode default
  std::uint32_t shard_index = 0;
  std::uint32_t shard_count = 1;
  std::vector<std::string> merge_inputs;
  std::string merge_out;
  bool scaling = false;
  bool scaling_smoke = false;
  std::vector<std::uint32_t> scaling_threads;  ///< empty = mode default
};

// Written by the signal handler, read after run_sweep returns.
volatile std::sig_atomic_t g_signal = 0;

// Async-signal-safe: set the flag and ask the sweep to stop pulling tasks.
// Finished rows are already fsync'd in the journal; nothing else to save.
void handle_stop_signal(int signum) {
  g_signal = signum;
  ucp::exp::request_sweep_interrupt();
}

Args parse(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--sweep") {
      args.sweep = true;
    } else if (a.rfind("--sweep=", 0) == 0) {
      args.sweep = true;
      args.stride = static_cast<std::uint32_t>(std::stoul(a.substr(8)));
    } else if (a == "--perf-smoke") {
      args.perf_smoke = true;
    } else if (a == "--trace-smoke") {
      args.trace_smoke = true;
    } else if (a == "--ops-smoke") {
      args.ops_smoke = true;
    } else if (a.rfind("--expect-fingerprint=", 0) == 0) {
      args.expect_fingerprint = a.substr(21);
    } else if (a.rfind("--trace=", 0) == 0) {
      args.trace_path = a.substr(8);
    } else if (a.rfind("--metrics=", 0) == 0) {
      args.metrics_path = a.substr(10);
    } else if (a == "--profile") {
      args.profile = true;
    } else if (a == "--threads" && i + 1 < argc) {
      args.threads = static_cast<std::uint32_t>(std::stoul(argv[++i]));
    } else if (a == "--programs" && i + 1 < argc) {
      std::stringstream ss(argv[++i]);
      std::string item;
      while (std::getline(ss, item, ',')) args.programs.push_back(item);
    } else if (a == "--journal" && i + 1 < argc) {
      args.journal = argv[++i];
    } else if (a == "--attempts" && i + 1 < argc) {
      args.attempts = static_cast<std::uint32_t>(std::stoul(argv[++i]));
    } else if (a == "--deadline-ms" && i + 1 < argc) {
      args.deadline_ms = static_cast<std::int64_t>(std::stoll(argv[++i]));
    } else if (a == "--shard" && i + 1 < argc) {
      const std::string spec = argv[++i];
      const std::size_t slash = spec.find('/');
      if (slash == std::string::npos) {
        std::cerr << "--shard expects i/N (e.g. --shard 0/4)\n";
        std::exit(2);
      }
      args.shard_index =
          static_cast<std::uint32_t>(std::stoul(spec.substr(0, slash)));
      args.shard_count =
          static_cast<std::uint32_t>(std::stoul(spec.substr(slash + 1)));
      if (args.shard_count == 0 || args.shard_index >= args.shard_count) {
        std::cerr << "--shard " << spec << ": need 0 <= i < N\n";
        std::exit(2);
      }
    } else if (a == "--merge-journals" && i + 1 < argc) {
      std::stringstream ss(argv[++i]);
      std::string item;
      while (std::getline(ss, item, ',')) args.merge_inputs.push_back(item);
    } else if (a == "--merge-out" && i + 1 < argc) {
      args.merge_out = argv[++i];
    } else if (a == "--scaling") {
      args.scaling = true;
    } else if (a.rfind("--scaling=", 0) == 0) {
      args.scaling = true;
      std::stringstream ss(a.substr(10));
      std::string item;
      while (std::getline(ss, item, ','))
        args.scaling_threads.push_back(
            static_cast<std::uint32_t>(std::stoul(item)));
    } else if (a == "--scaling-smoke") {
      args.scaling_smoke = true;
    } else {
      std::cerr << "unknown argument: " << a << "\n"
                << "usage: " << argv[0]
                << " [--sweep[=STRIDE]] [--perf-smoke] [--trace-smoke]"
                   " [--ops-smoke] [--expect-fingerprint=HEX]"
                   " [--threads N] [--programs a,b,c] [--journal PATH]"
                   " [--attempts N] [--deadline-ms N] [--shard i/N]"
                   " [--merge-journals a,b,...] [--merge-out PATH]"
                   " [--scaling[=T1,T2,...]] [--scaling-smoke]"
                   " [--trace=FILE] [--metrics=FILE] [--profile]\n";
      std::exit(2);
    }
  }
  return args;
}

ucp::exp::SweepOptions sweep_options(const Args& args) {
  ucp::exp::SweepOptions options;
  options.programs = args.programs;
  options.config_stride = args.stride;
  options.threads = args.threads;
  // No cache_path: this bench exists to *measure* the sweep, so it always
  // computes (the figure benches share the memo cache instead).
  options.journal_path = args.journal;
  // Production sweep defaults: full ladder, generous watchdog. The ladder's
  // budget escalation only changes rows whose first attempt failed, so a
  // clean sweep is bit-identical with or without it.
  options.max_attempts = args.attempts != 0 ? args.attempts : 3;
  options.case_deadline_ms =
      args.deadline_ms >= 0 ? static_cast<std::uint32_t>(args.deadline_ms)
                            : 120000;
  options.shard_index = args.shard_index;
  options.shard_count = args.shard_count;
  return options;
}

/// One point of the thread-scaling curve (--scaling mode).
struct ScalingPoint {
  std::uint32_t threads = 0;
  std::uint64_t wall_ms = 0;
  double cases_per_sec = 0.0;
  std::string fingerprint;
};

void write_bench_json(const ucp::exp::Sweep& sweep, const Args& args,
                      const std::string& fingerprint,
                      const std::vector<ScalingPoint>* scaling = nullptr) {
  const ucp::exp::SweepReport& r = sweep.report;
  std::ofstream os("BENCH_sweep.json", std::ios::trunc);
  os.precision(6);
  os << "{\n"
     << "  \"bench\": \"table2_sweep\",\n"
     << "  \"build\": " << ucp::obs::build_info_json() << ",\n"
     << "  \"total_cases\": " << r.total << ",\n"
     << "  \"completed\": " << r.completed << ",\n"
     << "  \"degraded\": " << r.degraded << ",\n"
     << "  \"failed\": " << r.failed << ",\n"
     << "  \"config_stride\": " << args.stride << ",\n"
     << "  \"threads\": " << r.threads_used << ",\n"
     << "  \"attempts_max\": " << (args.attempts != 0 ? args.attempts : 3)
     << ",\n"
     << "  \"retried\": " << r.retried << ",\n"
     << "  \"recovered\": " << r.recovered << ",\n"
     << "  \"resumed_rows\": " << r.resumed_rows << ",\n"
     << "  \"audited\": " << r.audited << ",\n"
     << "  \"audit_violations\": " << r.audit_violations << ",\n"
     << "  \"audit_inconclusive\": " << r.audit_inconclusive << ",\n"
     << "  \"journal\": \"" << args.journal << "\",\n"
     << "  \"wall_seconds\": " << static_cast<double>(r.wall_ms) / 1000.0
     << ",\n"
     << "  \"cases_per_sec\": " << r.cases_per_sec << ",\n"
     << "  \"stage_seconds\": {\n"
     << "    \"measure\": "
     << static_cast<double>(r.stages.measure_ns) / 1e9 << ",\n"
     << "    \"optimize\": "
     << static_cast<double>(r.stages.optimize_ns) / 1e9 << ",\n"
     << "    \"audit\": "
     << static_cast<double>(r.stages.audit_ns) / 1e9 << "\n"
     << "  },\n";
  if (scaling != nullptr && !scaling->empty()) {
    os << "  \"scaling\": [\n";
    for (std::size_t i = 0; i < scaling->size(); ++i) {
      const ScalingPoint& p = (*scaling)[i];
      os << "    {\"threads\": " << p.threads << ", \"wall_seconds\": "
         << static_cast<double>(p.wall_ms) / 1000.0
         << ", \"cases_per_sec\": " << p.cases_per_sec
         << ", \"fingerprint\": \"" << p.fingerprint << "\"}"
         << (i + 1 < scaling->size() ? ",\n" : "\n");
    }
    os << "  ],\n"
       << "  \"hardware_concurrency\": "
       << std::thread::hardware_concurrency() << ",\n";
  }
  os
     // One code path for every metrics consumer: the sweep publishes its
     // row-derived exp.sweep.* counters (solver totals included) into the
     // obs registry, and this is the same snapshot --metrics files and the
     // journal annotation carry.
     << "  \"metrics\": " << ucp::obs::snapshot_json(
            ucp::obs::registry().snapshot())
     << ",\n"
     << "  \"result_fingerprint\": \"" << fingerprint << "\"\n"
     << "}\n";
  std::cout << "[bench] wrote BENCH_sweep.json (" << r.total << " cases, "
            << static_cast<double>(r.wall_ms) / 1000.0 << "s, "
            << r.cases_per_sec << " cases/s)\n";
}

int run_sweep_mode(const Args& args) {
  using namespace ucp;
  // Metrics are always on in sweep mode (BENCH_sweep.json embeds the
  // snapshot); tracing/profiling only when asked for.
  bench::ObsSession obs_session(args.trace_path, args.metrics_path,
                                args.profile);
  obs::set_enabled(true);
  // The flight recorder flies here too, exactly as in ucpd: the full-grid
  // fingerprint (and its --expect-fingerprint CI pin) is measured with the
  // daemon's steady-state ops stack on, so "observability never changes a
  // number" is proven in the configuration that actually ships.
  obs::set_flight_enabled(true);

  // Cooperative shutdown: ^C / SIGTERM stop the sweep at the next task
  // boundary, the journal keeps every finished row, and the report below
  // shows exactly what was (and was not) computed.
  exp::clear_sweep_interrupt();
  struct sigaction action {};
  action.sa_handler = handle_stop_signal;
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);

  const exp::Sweep sweep = exp::run_sweep(sweep_options(args));
  sweep.report.print(std::cout);
  if (sweep.report.interrupted) {
    // Partial grid: never write BENCH_sweep.json (it would masquerade as a
    // complete perf sample); the journal already holds the finished rows.
    std::cout << "[bench] interrupted by signal " << static_cast<int>(g_signal)
              << "; " << sweep.report.completed
              << " finished rows are durable"
              << (args.journal.empty() ? " only in memory (no --journal)"
                                       : " in " + args.journal)
              << "\n";
    return 128 + static_cast<int>(g_signal != 0 ? g_signal : SIGINT);
  }
  const std::string fp = exp::sweep_results_fingerprint(sweep.results);
  if (args.shard_count > 1) {
    // A shard is not the sweep: report its own (shard-local) fingerprint
    // and row count for the merge step, but never write BENCH_sweep.json —
    // that file means "the full grid ran".
    std::cout << "[bench] shard " << args.shard_index << "/"
              << args.shard_count << " fingerprint " << fp << " ("
              << sweep.results.size() << " rows)"
              << (args.journal.empty() ? " — WARNING: no --journal, rows "
                                         "cannot be merged"
                                       : "")
              << "\n";
    return 0;
  }
  std::cout << "[bench] result fingerprint " << fp << "\n";
  if (!args.expect_fingerprint.empty() && fp != args.expect_fingerprint) {
    std::cerr << "[bench] FAIL: result fingerprint " << fp
              << " does not match the expected " << args.expect_fingerprint
              << " — either the numbers changed (a correctness regression) "
                 "or they changed on purpose and the pin needs updating\n";
    return 1;
  }
  write_bench_json(sweep, args, fp);
  return 0;
}

int run_merge_mode(const Args& args) {
  using namespace ucp;
  obs::set_enabled(true);
  // The options must describe the *same sweep* the shards ran (programs,
  // stride, attempts, deadline); the merge re-derives the plan from them
  // and validates every journal against it.
  Args unsharded = args;
  unsharded.shard_index = 0;
  unsharded.shard_count = 1;
  exp::MergeDiagnostic diagnostic;
  Expected<exp::JournalMerge> merged =
      exp::merge_sweep_journals(args.merge_inputs, sweep_options(unsharded),
                                args.merge_out, &diagnostic);
  if (!merged.ok()) {
    std::cerr << "[merge] FAIL: " << merged.status().message() << "\n";
    std::cerr << "[merge] reason=" << exp::merge_reason_name(diagnostic.reason);
    if (!diagnostic.file.empty())
      std::cerr << " file=" << diagnostic.file;
    if (diagnostic.has_row) std::cerr << " row=" << diagnostic.row_index;
    std::cerr << "\n";
    return 1;
  }

  // Rebuild the sweep view from the merged rows. Everything row-derived —
  // outcome totals, quarantine, solver sums, the exp.sweep.* counters and
  // the fingerprint — is exactly what a single-process run reports;
  // process-local measurements (wall clock, stage timings, construction
  // charges) are not derivable from rows and stay zero.
  exp::Sweep sweep;
  sweep.results = std::move(merged->results);
  sweep.report = exp::derive_row_report(sweep.results);
  sweep.report.journal_note =
      "merged " + std::to_string(merged->shard_count) + " shard journals";
  exp::publish_sweep_metrics(sweep);
  sweep.report.print(std::cout);
  std::cout << "[merge] " << merged->rows << " rows from "
            << merged->shard_count << " shards, sweep fingerprint "
            << merged->fingerprint << "\n";
  if (!args.merge_out.empty())
    std::cout << "[merge] wrote merged journal to " << args.merge_out
              << "\n";
  Args reported = unsharded;
  reported.journal = args.merge_out;
  write_bench_json(sweep, reported, merged->fingerprint);
  return 0;
}

int run_scaling(const Args& args, bool smoke) {
  using namespace ucp;
  Args base = args;
  std::vector<std::uint32_t> thread_counts = args.scaling_threads;
  if (smoke) {
    // Same reduced slice as --perf-smoke: crosses scheduling, sharing and
    // the optimizer, small enough for CI budgets.
    if (base.stride == 1) base.stride = 12;
    if (base.programs.empty()) base.programs = {"bs", "fdct", "crc"};
    if (thread_counts.empty()) thread_counts = {1, 4};
  } else if (thread_counts.empty()) {
    thread_counts = {1, 2, 4, 8};
  }
  obs::set_enabled(true);

  std::vector<ScalingPoint> curve;
  exp::Sweep last;
  for (const std::uint32_t t : thread_counts) {
    Args at = base;
    at.threads = t;
    exp::Sweep sweep = exp::run_sweep(sweep_options(at));
    ScalingPoint p;
    p.threads = t;
    p.wall_ms = sweep.report.wall_ms;
    p.cases_per_sec = sweep.report.cases_per_sec;
    p.fingerprint = exp::sweep_results_fingerprint(sweep.results);
    std::cout << "[scaling] threads " << t << ": "
              << static_cast<double>(p.wall_ms) / 1000.0 << "s ("
              << p.cases_per_sec << " cases/s), fingerprint "
              << p.fingerprint << "\n";
    curve.push_back(p);
    last = std::move(sweep);
  }

  int failures = 0;
  for (const ScalingPoint& p : curve) {
    if (p.fingerprint != curve.front().fingerprint) {
      std::cerr << "[scaling] FAIL: threads " << p.threads
                << " diverged from threads " << curve.front().threads << " ("
                << p.fingerprint << " vs " << curve.front().fingerprint
                << ")\n";
      ++failures;
    }
  }

  const std::uint32_t max_threads =
      *std::max_element(thread_counts.begin(), thread_counts.end());
  const double speedup =
      curve.back().wall_ms > 0
          ? static_cast<double>(curve.front().wall_ms) /
                static_cast<double>(curve.back().wall_ms)
          : 0.0;
  std::cout << "[scaling] speedup at " << max_threads << " threads: "
            << speedup << "x (host has " << std::thread::hardware_concurrency()
            << " cores)\n";
  if (smoke) {
    // The speedup gate only means something when the host can actually run
    // the workers in parallel; on smaller machines the determinism half of
    // the gate still ran, so skip the perf half loudly rather than fail.
    if (std::thread::hardware_concurrency() >= max_threads) {
      if (speedup < 1.5) {
        std::cerr << "[scaling] FAIL: speedup " << speedup << "x at "
                  << max_threads << " threads is below the 1.5x floor\n";
        ++failures;
      }
    } else {
      std::cout << "[scaling] SKIP speedup floor: host has only "
                << std::thread::hardware_concurrency() << " cores for "
                << max_threads << " threads\n";
    }
  } else if (failures == 0) {
    write_bench_json(last, base, curve.front().fingerprint, &curve);
  }
  std::cout << "[scaling] " << (failures == 0 ? "OK" : "FAIL")
            << ": one fingerprint across threads {";
  for (std::size_t i = 0; i < thread_counts.size(); ++i)
    std::cout << thread_counts[i] << (i + 1 < thread_counts.size() ? "," : "");
  std::cout << "}\n";
  return failures == 0 ? 0 : 1;
}

int run_perf_smoke(const Args& args) {
  using namespace ucp;
  // Small strided slice: enough work to exercise scheduling, sharing and
  // the incremental optimizer, small enough for test-suite time budgets.
  Args smoke = args;
  if (smoke.stride == 1) smoke.stride = 12;
  if (smoke.programs.empty()) smoke.programs = {"bs", "fdct", "crc"};

  const exp::SweepOptions options = sweep_options(smoke);
  const exp::Sweep cold = exp::run_sweep(options);
  const exp::Sweep warm = exp::run_sweep(options);
  const std::string fp_cold = exp::sweep_results_fingerprint(cold.results);
  const std::string fp_warm = exp::sweep_results_fingerprint(warm.results);
  std::cout << "[perf-smoke] " << cold.report.total << " cases; cold "
            << static_cast<double>(cold.report.wall_ms) / 1000.0 << "s ("
            << cold.report.cases_per_sec << " cases/s), warm "
            << static_cast<double>(warm.report.wall_ms) / 1000.0 << "s ("
            << warm.report.cases_per_sec << " cases/s)\n";
  if (fp_cold != fp_warm) {
    std::cerr << "[perf-smoke] FAIL: result divergence between runs ("
              << fp_cold << " vs " << fp_warm << ")\n";
    return 1;
  }
  if (cold.report.total == 0) {
    std::cerr << "[perf-smoke] FAIL: empty sweep\n";
    return 1;
  }
  std::cout << "[perf-smoke] OK: fingerprints match (" << fp_cold << ")\n";
  return 0;
}

int run_trace_smoke(const Args& args) {
  using namespace ucp;
  // Same small slice as --perf-smoke: big enough to cross every pipeline
  // layer, small enough for CI budgets.
  Args smoke = args;
  if (smoke.stride == 1) smoke.stride = 12;
  if (smoke.programs.empty()) smoke.programs = {"bs", "fdct", "crc"};
  const exp::SweepOptions options = sweep_options(smoke);

  // min-of-2 wall clock per configuration damps scheduler noise, and the
  // first (discarded-by-min) disabled run doubles as process warmup.
  auto timed = [&](bool instrumented, std::string& fp) {
    std::uint64_t best = ~std::uint64_t{0};
    for (int rep = 0; rep < 2; ++rep) {
      obs::set_enabled(instrumented);
      obs::set_trace_enabled(instrumented);
      const exp::Sweep sweep = exp::run_sweep(options);
      obs::set_enabled(false);
      obs::set_trace_enabled(false);
      fp = exp::sweep_results_fingerprint(sweep.results);
      best = std::min<std::uint64_t>(best, sweep.report.wall_ms);
    }
    return best;
  };

  obs::reset_trace();
  std::string fp_off;
  std::string fp_on;
  const std::uint64_t ms_off = timed(false, fp_off);
  const std::uint64_t ms_on = timed(true, fp_on);

  int failures = 0;
  if (fp_off != fp_on) {
    std::cerr << "[trace-smoke] FAIL: tracing changed the results (" << fp_off
              << " vs " << fp_on << ")\n";
    ++failures;
  }

  const std::vector<obs::TraceEvent> events = obs::drain_trace();
  for (const char* layer :
       {"analysis.", "ilp.", "wcet.", "core.", "sim.", "exp."}) {
    const bool found =
        std::any_of(events.begin(), events.end(), [&](const obs::TraceEvent& e) {
          return std::string_view(e.name).rfind(layer, 0) == 0;
        });
    if (!found) {
      std::cerr << "[trace-smoke] FAIL: no '" << layer
                << "*' span in the trace — a pipeline layer lost its "
                   "instrumentation\n";
      ++failures;
    }
  }

  // Overhead budget: full instrumentation may add at most 1% to the wall
  // clock, with an absolute floor because a smoke sweep is sub-second and
  // scheduler noise alone exceeds 1% at that scale.
  const double budget = static_cast<double>(ms_off) * 1.01 + 150.0;
  if (static_cast<double>(ms_on) > budget) {
    std::cerr << "[trace-smoke] FAIL: instrumented sweep took " << ms_on
              << "ms vs " << ms_off << "ms baseline (budget " << budget
              << "ms)\n";
    ++failures;
  }

  std::cout << "[trace-smoke] " << (failures == 0 ? "OK" : "FAIL") << ": "
            << events.size() << " spans, baseline " << ms_off
            << "ms, instrumented " << ms_on << "ms, fingerprint " << fp_off
            << "\n";
  return failures == 0 ? 0 : 1;
}

int run_ops_smoke(const Args& args) {
  using namespace ucp;
  // Same slice as --trace-smoke, but the instrumented configuration is the
  // daemon's steady-state ops stack: metrics registry + structured JSON
  // logging (rate-limited, to a file) + the always-on flight recorder.
  // This is the configuration ucpd actually flies with, so this is the
  // overhead number that matters for "observability is free enough to
  // leave on".
  Args smoke = args;
  if (smoke.stride == 1) smoke.stride = 12;
  if (smoke.programs.empty()) smoke.programs = {"bs", "fdct", "crc"};
  const exp::SweepOptions options = sweep_options(smoke);

  const std::string log_path =
      "ucp_ops_smoke." + std::to_string(::getpid()) + ".log.jsonl";
  std::remove(log_path.c_str());

  auto timed = [&](bool ops, std::string& fp) {
    std::uint64_t best = ~std::uint64_t{0};
    for (int rep = 0; rep < 2; ++rep) {
      if (ops) {
        obs::LogOptions log_options;
        log_options.json = true;
        log_options.file_path = log_path;
        log_options.rate_limit = 100;
        obs::configure_logging(log_options);
        obs::set_enabled(true);
        obs::set_flight_enabled(true);
      }
      const exp::Sweep sweep = exp::run_sweep(options);
      obs::set_enabled(false);
      obs::set_flight_enabled(false);
      obs::configure_logging(obs::LogOptions{});
      fp = exp::sweep_results_fingerprint(sweep.results);
      best = std::min<std::uint64_t>(best, sweep.report.wall_ms);
    }
    return best;
  };

  obs::reset_flight();
  std::string fp_off;
  std::string fp_on;
  const std::uint64_t ms_off = timed(false, fp_off);
  const std::uint64_t ms_on = timed(true, fp_on);

  int failures = 0;
  if (fp_off != fp_on) {
    std::cerr << "[ops-smoke] FAIL: the ops stack changed the results ("
              << fp_off << " vs " << fp_on << ")\n";
    ++failures;
  }

  // The flight recorder actually flew: the rings hold span records from
  // the instrumented sweep.
  const std::vector<obs::FlightRecord> records = obs::flight_snapshot();
  const bool has_span =
      std::any_of(records.begin(), records.end(),
                  [](const obs::FlightRecord& r) { return r.kind == 'S'; });
  if (!has_span) {
    std::cerr << "[ops-smoke] FAIL: no span records in the flight rings — "
                 "the recorder was not recording during the sweep\n";
    ++failures;
  }
  obs::reset_flight();

  // Same overhead budget as --trace-smoke: at most 1% plus an absolute
  // floor that absorbs scheduler noise on a sub-second slice.
  const double budget = static_cast<double>(ms_off) * 1.01 + 150.0;
  if (static_cast<double>(ms_on) > budget) {
    std::cerr << "[ops-smoke] FAIL: ops-enabled sweep took " << ms_on
              << "ms vs " << ms_off << "ms baseline (budget " << budget
              << "ms)\n";
    ++failures;
  }

  std::cout << "[ops-smoke] " << (failures == 0 ? "OK" : "FAIL") << ": "
            << records.size() << " flight records, baseline " << ms_off
            << "ms, ops-enabled " << ms_on << "ms, fingerprint " << fp_off
            << "\n";
  std::remove(log_path.c_str());
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ucp;
  const Args args = parse(argc, argv);
  if (!args.merge_inputs.empty()) return run_merge_mode(args);
  if (args.scaling_smoke) return run_scaling(args, /*smoke=*/true);
  if (args.scaling) return run_scaling(args, /*smoke=*/false);
  if (args.trace_smoke) return run_trace_smoke(args);
  if (args.ops_smoke) return run_ops_smoke(args);
  if (args.perf_smoke) return run_perf_smoke(args);
  if (args.sweep) return run_sweep_mode(args);

  std::cout << "Table 2: cache configurations k = (a, b, c) and derived "
               "model parameters\n\n";
  TextTable table({"id", "(a, b, c)", "sets", "hit cy", "miss cy",
                   "read nJ 45/32", "leak mW 45/32"});
  for (const cache::NamedCacheConfig& named : cache::paper_cache_configs()) {
    const cache::CacheConfig& k = named.config;
    const cache::MemTiming t45 =
        energy::derive_timing(k, energy::TechNode::k45nm);
    const energy::CacheEnergyModel m45 =
        energy::cache_model(k, energy::TechNode::k45nm);
    const energy::CacheEnergyModel m32 =
        energy::cache_model(k, energy::TechNode::k32nm);
    table.add_row({named.id, k.to_string(), std::to_string(k.num_sets()),
                   std::to_string(t45.hit_cycles),
                   std::to_string(t45.miss_cycles),
                   format_double(m45.read_energy_nj, 4) + " / " +
                       format_double(m32.read_energy_nj, 4),
                   format_double(m45.leakage_mw, 3) + " / " +
                       format_double(m32.leakage_mw, 3)});
  }
  table.print(std::cout);
  std::cout << "\n(45nm timing shown; prefetch latency equals the miss "
               "service time at each node)\n";
  return 0;
}
