// Table 2 — cache configurations: the 36 (associativity, block size,
// capacity) points, with the derived timing and energy model parameters at
// both technology nodes so every downstream number is reproducible.
//
// Doubles as the sweep performance harness:
//   --sweep[=STRIDE]   run the evaluation sweep cold (no memo cache) and
//                      write BENCH_sweep.json with wall-clock, throughput,
//                      per-stage timing and thread count, so the perf
//                      trajectory is tracked across PRs
//   --perf-smoke       run a small strided sweep twice (cold and warm
//                      process state) and fail on any result divergence
//   --threads N        worker threads (default: hardware concurrency)
//   --programs a,b     restrict the sweep to a program subset
//   --journal PATH     crash-safe checkpoint journal: a killed sweep
//                      resumes from the last durable row on the next run
//   --attempts N       retry-with-degradation ladder depth (sweep mode
//                      defaults to 3; 1 disables retries)
//   --deadline-ms N    per-task watchdog deadline (sweep mode defaults to
//                      120000; 0 disables the watchdog)
//
// SIGINT/SIGTERM stop the sweep cooperatively: finished rows are already
// durable in the journal, the health report (with the quarantine summary)
// is printed, and the bench exits with 128+signal.

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "cache/config.hpp"
#include "energy/model.hpp"
#include "exp/harness.hpp"
#include "support/table.hpp"

namespace {

struct Args {
  bool sweep = false;
  bool perf_smoke = false;
  std::uint32_t stride = 1;
  std::uint32_t threads = 0;
  std::vector<std::string> programs;
  std::string journal;
  std::uint32_t attempts = 0;     ///< 0 = mode default
  std::int64_t deadline_ms = -1;  ///< -1 = mode default
};

// Written by the signal handler, read after run_sweep returns.
volatile std::sig_atomic_t g_signal = 0;

// Async-signal-safe: set the flag and ask the sweep to stop pulling tasks.
// Finished rows are already fsync'd in the journal; nothing else to save.
void handle_stop_signal(int signum) {
  g_signal = signum;
  ucp::exp::request_sweep_interrupt();
}

Args parse(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--sweep") {
      args.sweep = true;
    } else if (a.rfind("--sweep=", 0) == 0) {
      args.sweep = true;
      args.stride = static_cast<std::uint32_t>(std::stoul(a.substr(8)));
    } else if (a == "--perf-smoke") {
      args.perf_smoke = true;
    } else if (a == "--threads" && i + 1 < argc) {
      args.threads = static_cast<std::uint32_t>(std::stoul(argv[++i]));
    } else if (a == "--programs" && i + 1 < argc) {
      std::stringstream ss(argv[++i]);
      std::string item;
      while (std::getline(ss, item, ',')) args.programs.push_back(item);
    } else if (a == "--journal" && i + 1 < argc) {
      args.journal = argv[++i];
    } else if (a == "--attempts" && i + 1 < argc) {
      args.attempts = static_cast<std::uint32_t>(std::stoul(argv[++i]));
    } else if (a == "--deadline-ms" && i + 1 < argc) {
      args.deadline_ms = static_cast<std::int64_t>(std::stoll(argv[++i]));
    } else {
      std::cerr << "unknown argument: " << a << "\n"
                << "usage: " << argv[0]
                << " [--sweep[=STRIDE]] [--perf-smoke] [--threads N]"
                   " [--programs a,b,c] [--journal PATH] [--attempts N]"
                   " [--deadline-ms N]\n";
      std::exit(2);
    }
  }
  return args;
}

ucp::exp::SweepOptions sweep_options(const Args& args) {
  ucp::exp::SweepOptions options;
  options.programs = args.programs;
  options.config_stride = args.stride;
  options.threads = args.threads;
  // No cache_path: this bench exists to *measure* the sweep, so it always
  // computes (the figure benches share the memo cache instead).
  options.journal_path = args.journal;
  // Production sweep defaults: full ladder, generous watchdog. The ladder's
  // budget escalation only changes rows whose first attempt failed, so a
  // clean sweep is bit-identical with or without it.
  options.max_attempts = args.attempts != 0 ? args.attempts : 3;
  options.case_deadline_ms =
      args.deadline_ms >= 0 ? static_cast<std::uint32_t>(args.deadline_ms)
                            : 120000;
  return options;
}

void write_bench_json(const ucp::exp::Sweep& sweep, const Args& args,
                      const std::string& fingerprint) {
  const ucp::exp::SweepReport& r = sweep.report;
  std::ofstream os("BENCH_sweep.json", std::ios::trunc);
  os.precision(6);
  os << "{\n"
     << "  \"bench\": \"table2_sweep\",\n"
     << "  \"total_cases\": " << r.total << ",\n"
     << "  \"completed\": " << r.completed << ",\n"
     << "  \"degraded\": " << r.degraded << ",\n"
     << "  \"failed\": " << r.failed << ",\n"
     << "  \"config_stride\": " << args.stride << ",\n"
     << "  \"threads\": " << r.threads_used << ",\n"
     << "  \"attempts_max\": " << (args.attempts != 0 ? args.attempts : 3)
     << ",\n"
     << "  \"retried\": " << r.retried << ",\n"
     << "  \"recovered\": " << r.recovered << ",\n"
     << "  \"resumed_rows\": " << r.resumed_rows << ",\n"
     << "  \"audited\": " << r.audited << ",\n"
     << "  \"audit_violations\": " << r.audit_violations << ",\n"
     << "  \"audit_inconclusive\": " << r.audit_inconclusive << ",\n"
     << "  \"journal\": \"" << args.journal << "\",\n"
     << "  \"wall_seconds\": " << static_cast<double>(r.wall_ms) / 1000.0
     << ",\n"
     << "  \"cases_per_sec\": " << r.cases_per_sec << ",\n"
     << "  \"stage_seconds\": {\n"
     << "    \"measure\": "
     << static_cast<double>(r.stages.measure_ns) / 1e9 << ",\n"
     << "    \"optimize\": "
     << static_cast<double>(r.stages.optimize_ns) / 1e9 << ",\n"
     << "    \"audit\": "
     << static_cast<double>(r.stages.audit_ns) / 1e9 << "\n"
     << "  },\n"
     << "  \"solver_stats\": {\n"
     << "    \"lp_solves\": " << r.solver.lp_solves << ",\n"
     << "    \"pivots\": " << r.solver.pivots << ",\n"
     << "    \"bb_nodes\": " << r.solver.bb_nodes << ",\n"
     << "    \"warm_starts\": " << r.solver.warm_starts << ",\n"
     << "    \"phase1_skipped\": " << r.solver.phase1_skipped << "\n"
     << "  },\n"
     << "  \"result_fingerprint\": \"" << fingerprint << "\"\n"
     << "}\n";
  std::cout << "[bench] wrote BENCH_sweep.json (" << r.total << " cases, "
            << static_cast<double>(r.wall_ms) / 1000.0 << "s, "
            << r.cases_per_sec << " cases/s)\n";
}

int run_sweep_mode(const Args& args) {
  using namespace ucp;
  // Cooperative shutdown: ^C / SIGTERM stop the sweep at the next task
  // boundary, the journal keeps every finished row, and the report below
  // shows exactly what was (and was not) computed.
  exp::clear_sweep_interrupt();
  struct sigaction action {};
  action.sa_handler = handle_stop_signal;
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);

  const exp::Sweep sweep = exp::run_sweep(sweep_options(args));
  sweep.report.print(std::cout);
  if (sweep.report.interrupted) {
    // Partial grid: never write BENCH_sweep.json (it would masquerade as a
    // complete perf sample); the journal already holds the finished rows.
    std::cout << "[bench] interrupted by signal " << static_cast<int>(g_signal)
              << "; " << sweep.report.completed
              << " finished rows are durable"
              << (args.journal.empty() ? " only in memory (no --journal)"
                                       : " in " + args.journal)
              << "\n";
    return 128 + static_cast<int>(g_signal != 0 ? g_signal : SIGINT);
  }
  const std::string fp = exp::sweep_results_fingerprint(sweep.results);
  std::cout << "[bench] result fingerprint " << fp << "\n";
  write_bench_json(sweep, args, fp);
  return 0;
}

int run_perf_smoke(const Args& args) {
  using namespace ucp;
  // Small strided slice: enough work to exercise scheduling, sharing and
  // the incremental optimizer, small enough for test-suite time budgets.
  Args smoke = args;
  if (smoke.stride == 1) smoke.stride = 12;
  if (smoke.programs.empty()) smoke.programs = {"bs", "fdct", "crc"};

  const exp::SweepOptions options = sweep_options(smoke);
  const exp::Sweep cold = exp::run_sweep(options);
  const exp::Sweep warm = exp::run_sweep(options);
  const std::string fp_cold = exp::sweep_results_fingerprint(cold.results);
  const std::string fp_warm = exp::sweep_results_fingerprint(warm.results);
  std::cout << "[perf-smoke] " << cold.report.total << " cases; cold "
            << static_cast<double>(cold.report.wall_ms) / 1000.0 << "s ("
            << cold.report.cases_per_sec << " cases/s), warm "
            << static_cast<double>(warm.report.wall_ms) / 1000.0 << "s ("
            << warm.report.cases_per_sec << " cases/s)\n";
  if (fp_cold != fp_warm) {
    std::cerr << "[perf-smoke] FAIL: result divergence between runs ("
              << fp_cold << " vs " << fp_warm << ")\n";
    return 1;
  }
  if (cold.report.total == 0) {
    std::cerr << "[perf-smoke] FAIL: empty sweep\n";
    return 1;
  }
  std::cout << "[perf-smoke] OK: fingerprints match (" << fp_cold << ")\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ucp;
  const Args args = parse(argc, argv);
  if (args.perf_smoke) return run_perf_smoke(args);
  if (args.sweep) return run_sweep_mode(args);

  std::cout << "Table 2: cache configurations k = (a, b, c) and derived "
               "model parameters\n\n";
  TextTable table({"id", "(a, b, c)", "sets", "hit cy", "miss cy",
                   "read nJ 45/32", "leak mW 45/32"});
  for (const cache::NamedCacheConfig& named : cache::paper_cache_configs()) {
    const cache::CacheConfig& k = named.config;
    const cache::MemTiming t45 =
        energy::derive_timing(k, energy::TechNode::k45nm);
    const energy::CacheEnergyModel m45 =
        energy::cache_model(k, energy::TechNode::k45nm);
    const energy::CacheEnergyModel m32 =
        energy::cache_model(k, energy::TechNode::k32nm);
    table.add_row({named.id, k.to_string(), std::to_string(k.num_sets()),
                   std::to_string(t45.hit_cycles),
                   std::to_string(t45.miss_cycles),
                   format_double(m45.read_energy_nj, 4) + " / " +
                       format_double(m32.read_energy_nj, 4),
                   format_double(m45.leakage_mw, 3) + " / " +
                       format_double(m32.leakage_mw, 3)});
  }
  table.print(std::cout);
  std::cout << "\n(45nm timing shown; prefetch latency equals the miss "
               "service time at each node)\n";
  return 0;
}
