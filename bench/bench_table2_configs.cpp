// Table 2 — cache configurations: the 36 (associativity, block size,
// capacity) points, with the derived timing and energy model parameters at
// both technology nodes so every downstream number is reproducible.

#include <iostream>

#include "cache/config.hpp"
#include "energy/model.hpp"
#include "support/table.hpp"

int main() {
  using namespace ucp;

  std::cout << "Table 2: cache configurations k = (a, b, c) and derived "
               "model parameters\n\n";
  TextTable table({"id", "(a, b, c)", "sets", "hit cy", "miss cy",
                   "read nJ 45/32", "leak mW 45/32"});
  for (const cache::NamedCacheConfig& named : cache::paper_cache_configs()) {
    const cache::CacheConfig& k = named.config;
    const cache::MemTiming t45 =
        energy::derive_timing(k, energy::TechNode::k45nm);
    const energy::CacheEnergyModel m45 =
        energy::cache_model(k, energy::TechNode::k45nm);
    const energy::CacheEnergyModel m32 =
        energy::cache_model(k, energy::TechNode::k32nm);
    table.add_row({named.id, k.to_string(), std::to_string(k.num_sets()),
                   std::to_string(t45.hit_cycles),
                   std::to_string(t45.miss_cycles),
                   format_double(m45.read_energy_nj, 4) + " / " +
                       format_double(m32.read_energy_nj, 4),
                   format_double(m45.leakage_mw, 3) + " / " +
                       format_double(m32.leakage_mw, 3)});
  }
  table.print(std::cout);
  std::cout << "\n(45nm timing shown; prefetch latency equals the miss "
               "service time at each node)\n";
  return 0;
}
