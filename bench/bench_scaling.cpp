// bench_scaling: scaling study of the analyze→IPET→optimize pipeline on a
// fixed seeded suite of generated programs at 10×/30×/100× the Mälardalen
// scale (the default GenKnobs CFG size ≈ the paper suite's average).
//
// Every program is run through TWO pipelines over the same inputs:
//   legacy   — global FIFO worklist fixpoint, no ILP presolve
//              (the pre-PR pipeline, retained behind options)
//   default  — SCC-sparse fixpoint + hash-consed states + ILP presolve
// and the bench *fails* (exit 1) if they disagree on τ_mem, the optimized
// τ_mem, or the insertion count — the scaling suite doubles as a
// differential oracle at sizes the unit suite never reaches.
//
// Per-stage wall-clock (analyze / IPET build / solve / optimize) for both
// pipelines, plus the speedups, land in BENCH_scaling.json.
//
//   --smoke        one small 10× program only; prints a result fingerprint
//                  (pinned by the scaling_smoke ctest) and skips the JSON
//   --json=FILE    output path (default BENCH_scaling.json)
//   --trace=FILE / --metrics=FILE / --profile   as in every bench

#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "analysis/cache_analysis.hpp"
#include "analysis/context_graph.hpp"
#include "bench_common.hpp"
#include "cache/config.hpp"
#include "core/optimizer.hpp"
#include "gen/generator.hpp"
#include "ir/layout.hpp"
#include "ir/program.hpp"
#include "obs/build_info.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "wcet/ipet.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct StageTimes {
  double analyze_s = 0.0;
  double ipet_build_s = 0.0;
  double solve_s = 0.0;
  double optimize_s = 0.0;
  double total() const {
    return analyze_s + ipet_build_s + solve_s + optimize_s;
  }
  void add(const StageTimes& o) {
    analyze_s += o.analyze_s;
    ipet_build_s += o.ipet_build_s;
    solve_s += o.solve_s;
    optimize_s += o.optimize_s;
  }
};

struct PipelineOutcome {
  StageTimes times;
  std::uint64_t tau_mem = 0;
  std::uint64_t tau_optimized = 0;
  std::size_t insertions = 0;
  std::size_t graph_nodes = 0;
  std::size_t ilp_rows = 0;   ///< rows of the system the simplex actually saw
  std::size_t ilp_cols = 0;
};

/// One program through analyze→IPET-build→solve→optimize. `modern` selects
/// the full feature set; legacy runs the pre-PR engines. The optimizer knob
/// set is identical across modes (same candidate budget, same accept rule),
/// so any output divergence is an engine bug, not a budget artifact.
PipelineOutcome run_pipeline(const ucp::ir::Program& program,
                             const ucp::cache::CacheConfig& config,
                             const ucp::cache::MemTiming& timing,
                             bool modern) {
  using namespace ucp;
  PipelineOutcome out;

  const analysis::FixpointMode mode = modern
                                          ? analysis::FixpointMode::kSccSparse
                                          : analysis::FixpointMode::kGlobalWorklist;

  Clock::time_point t = Clock::now();
  std::optional<analysis::CacheAnalysisResult> cls;
  std::optional<analysis::ContextGraph> graph;
  {
    obs::Span span("scaling.analyze");
    graph.emplace(program);
    const ir::Layout layout(program, config.block_bytes);
    cls = analysis::analyze_cache(*graph, layout, config, mode);
  }
  out.times.analyze_s = seconds_since(t);
  out.graph_nodes = graph->num_nodes();

  t = Clock::now();
  std::optional<wcet::IpetSystem> ipet;
  {
    obs::Span span("scaling.ipet_build");
    ipet.emplace(*graph, wcet::IpetOptions{modern});
  }
  out.times.ipet_build_s = seconds_since(t);
  out.ilp_rows = ipet->lp_rows();
  out.ilp_cols = ipet->lp_cols();

  t = Clock::now();
  wcet::WcetResult wcet;
  {
    obs::Span span("scaling.solve");
    wcet = ipet->solve(*cls, timing);
  }
  out.times.solve_s = seconds_since(t);
  if (!wcet.ok()) {
    std::cerr << "[bench] FATAL: IPET " << ilp::status_name(wcet.status)
              << " on '" << program.name() << "'\n";
    std::exit(1);
  }
  out.tau_mem = wcet.tau_mem;

  t = Clock::now();
  core::OptimizerOptions opt;
  opt.fixpoint_mode = mode;
  opt.ipet_presolve = modern;  // moot with a shared system, set for honesty
  // A deterministic budget that keeps the 100× tier tractable. Identical in
  // both modes — the budget influences which candidates get tried, so it
  // must never differ between the pipelines being compared.
  opt.max_evaluations = 96;
  std::optional<core::OptimizationResult> result;
  {
    obs::Span span("scaling.optimize");
    result = core::optimize_prefetches(program, config, timing, opt,
                                       &*ipet);
  }
  out.times.optimize_s = seconds_since(t);
  out.tau_optimized = result->report.tau_optimized != 0
                          ? result->report.tau_optimized
                          : result->report.tau_original;
  out.insertions = result->report.insertions.size();
  return out;
}

struct Tier {
  const char* name;
  std::uint32_t scale;      ///< multiple of the Mälardalen-average CFG size
  std::uint32_t programs;   ///< suite size at this tier
  std::uint64_t seed_base;
};

struct TierResult {
  const Tier* tier = nullptr;
  StageTimes legacy;
  StageTimes modern;
  std::size_t graph_nodes = 0;   ///< summed over the tier's programs
  std::size_t ilp_rows_full = 0;
  std::size_t ilp_rows_reduced = 0;
  std::size_t insertions = 0;
  std::uint64_t fingerprint = 14695981039346656037ull;  ///< FNV-1a offset

  double speedup() const {
    return modern.total() > 0.0 ? legacy.total() / modern.total() : 0.0;
  }
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      fingerprint ^= (v >> (8 * i)) & 0xffu;
      fingerprint *= 1099511628211ull;
    }
  }
};

ucp::gen::GenKnobs knobs_for(std::uint32_t scale) {
  ucp::gen::GenKnobs knobs;  // defaults ≈ 1× Mälardalen average
  knobs.target_blocks = 24 * scale;
  // Deeper nesting multiplies VIVU contexts *per block*; the tiers scale
  // the program, not the per-block context blowup, so nesting stays at the
  // suite-typical depth and the working set grows with the code footprint.
  knobs.max_loop_depth = 2;
  knobs.working_set_words = 1024;
  return knobs;
}

TierResult run_tier(const Tier& tier, const ucp::cache::CacheConfig& config,
                    const ucp::cache::MemTiming& timing) {
  using namespace ucp;
  TierResult r;
  r.tier = &tier;
  const gen::GenKnobs knobs = knobs_for(tier.scale);
  for (std::uint32_t i = 0; i < tier.programs; ++i) {
    const std::uint64_t seed = tier.seed_base + i;
    const ir::Program program = gen::generate_program(seed, knobs);

    const PipelineOutcome legacy =
        run_pipeline(program, config, timing, /*modern=*/false);
    const PipelineOutcome modern =
        run_pipeline(program, config, timing, /*modern=*/true);

    if (legacy.tau_mem != modern.tau_mem ||
        legacy.tau_optimized != modern.tau_optimized ||
        legacy.insertions != modern.insertions) {
      std::cerr << "[bench] FATAL: legacy/default divergence on seed " << seed
                << " (" << tier.name << "): tau " << legacy.tau_mem << "/"
                << modern.tau_mem << ", tau_opt " << legacy.tau_optimized
                << "/" << modern.tau_optimized << ", insertions "
                << legacy.insertions << "/" << modern.insertions << "\n";
      std::exit(1);
    }

    r.legacy.add(legacy.times);
    r.modern.add(modern.times);
    r.graph_nodes += modern.graph_nodes;
    r.ilp_rows_full += legacy.ilp_rows;
    r.ilp_rows_reduced += modern.ilp_rows;
    r.insertions += modern.insertions;
    r.mix(modern.tau_mem);
    r.mix(modern.tau_optimized);
    r.mix(modern.insertions);
    r.mix(modern.graph_nodes);

    std::cerr << "  [scaling] " << tier.name << " seed " << seed << ": "
              << modern.graph_nodes << " ctx nodes, rows "
              << legacy.ilp_rows << "->" << modern.ilp_rows << ", legacy "
              << legacy.times.total() << "s, default "
              << modern.times.total() << "s\n";
  }
  return r;
}

void print_stage_row(std::ostream& os, const char* label, const StageTimes& t) {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "    %-8s analyze %8.3fs  build %8.3fs  solve %8.3fs  "
                "optimize %8.3fs  total %8.3fs\n",
                label, t.analyze_s, t.ipet_build_s, t.solve_s, t.optimize_s,
                t.total());
  os << buf;
}

void write_json(const std::string& path, const std::vector<TierResult>& tiers) {
  std::ofstream os(path, std::ios::trunc);
  os.precision(6);
  os << "{\n  \"bench\": \"scaling\",\n  \"build\": "
     << ucp::obs::build_info_json() << ",\n  \"tiers\": [\n";
  for (std::size_t i = 0; i < tiers.size(); ++i) {
    const TierResult& r = tiers[i];
    auto stages = [&os](const char* key, const StageTimes& t) {
      os << "      \"" << key << "\": {\"analyze_s\": " << t.analyze_s
         << ", \"ipet_build_s\": " << t.ipet_build_s
         << ", \"solve_s\": " << t.solve_s
         << ", \"optimize_s\": " << t.optimize_s
         << ", \"total_s\": " << t.total() << "}";
    };
    char fp[32];
    std::snprintf(fp, sizeof fp, "%016" PRIx64, r.fingerprint);
    os << "    {\n      \"tier\": \"" << r.tier->name << "\",\n"
       << "      \"scale\": " << r.tier->scale << ",\n"
       << "      \"programs\": " << r.tier->programs << ",\n"
       << "      \"seed_base\": " << r.tier->seed_base << ",\n"
       << "      \"graph_nodes\": " << r.graph_nodes << ",\n"
       << "      \"ilp_rows_full\": " << r.ilp_rows_full << ",\n"
       << "      \"ilp_rows_reduced\": " << r.ilp_rows_reduced << ",\n"
       << "      \"insertions\": " << r.insertions << ",\n"
       << "      \"fingerprint\": \"" << fp << "\",\n";
    stages("legacy", r.legacy);
    os << ",\n";
    stages("default", r.modern);
    os << ",\n      \"speedup\": " << r.speedup() << "\n    }"
       << (i + 1 < tiers.size() ? ",\n" : "\n");
  }
  os << "  ],\n  \"hardware_concurrency\": "
     << std::thread::hardware_concurrency() << ",\n"
     << "  \"metrics\": "
     << ucp::obs::snapshot_json(ucp::obs::registry().snapshot()) << "\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ucp;
  bool smoke = false;
  std::string json_path = "BENCH_scaling.json";
  std::string trace_path, metrics_path;
  bool profile = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--smoke") {
      smoke = true;
    } else if (a.rfind("--json=", 0) == 0) {
      json_path = a.substr(7);
    } else if (a.rfind("--trace=", 0) == 0) {
      trace_path = a.substr(8);
    } else if (a.rfind("--metrics=", 0) == 0) {
      metrics_path = a.substr(10);
    } else if (a == "--profile") {
      profile = true;
    } else {
      std::cerr << "unknown argument: " << a << "\n"
                << "usage: " << argv[0]
                << " [--smoke] [--json=FILE] [--trace=FILE] [--metrics=FILE]"
                   " [--profile]\n";
      return 2;
    }
  }
  bench::ObsSession obs_session(trace_path, metrics_path, profile);

  // One mid-grid configuration (k ≈ 2-way, 16-byte blocks, 1 KiB) — large
  // enough that must/may ages do real work, small enough that the generated
  // working sets overflow it and misses exist to optimize.
  cache::CacheConfig config;
  config.assoc = 2;
  config.block_bytes = 16;
  config.capacity_bytes = 1024;
  const cache::MemTiming timing;

  const std::vector<Tier> tiers =
      smoke ? std::vector<Tier>{{"10x", 10, 1, 901010}}
            : std::vector<Tier>{{"10x", 10, 3, 901010},
                                {"30x", 30, 2, 903030},
                                {"100x", 100, 1, 910100}};

  std::vector<TierResult> results;
  for (const Tier& tier : tiers)
    results.push_back(run_tier(tier, config, timing));

  std::cout << "[bench] scaling suite (" << (smoke ? "smoke" : "full")
            << "), legacy = global worklist + unreduced ILP\n";
  for (const TierResult& r : results) {
    std::cout << "  " << r.tier->name << " (" << r.tier->programs
              << " programs, " << r.graph_nodes << " ctx nodes, ILP rows "
              << r.ilp_rows_full << "->" << r.ilp_rows_reduced << "):\n";
    print_stage_row(std::cout, "legacy", r.legacy);
    print_stage_row(std::cout, "default", r.modern);
    char buf[64];
    std::snprintf(buf, sizeof buf, "    speedup %.2fx\n", r.speedup());
    std::cout << buf;
  }
  char fp[32];
  std::snprintf(fp, sizeof fp, "%016" PRIx64, results.back().fingerprint);
  std::cout << "[bench] scaling fingerprint " << fp << "\n";

  if (!smoke) write_json(json_path, results);
  return 0;
}
