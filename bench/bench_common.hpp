#pragma once

// Shared command-line handling for the figure/table benches.
//
// Every bench accepts:
//   --fast           quarter-size sweep (config stride 4) for smoke runs
//   --programs a,b   restrict to a comma-separated program subset
//   --threads N      worker threads (default: hardware concurrency)
//   --csv            also emit machine-readable CSV rows after the table
//   --trace=FILE     write a Chrome trace_event JSON of the run (Perfetto)
//   --metrics=FILE   write the end-of-run metrics registry snapshot (JSON)
//   --profile        print the top-spans profile table after the run
//
// Observability never changes results: spans and counters sit behind one
// atomic flag each, and a sink write failure degrades to a stderr warning.

#include <cstdint>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "exp/harness.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/sink.hpp"
#include "obs/trace.hpp"

namespace ucp::bench {

struct BenchArgs {
  bool fast = false;
  bool csv = false;
  bool profile = false;
  std::string trace_path;
  std::string metrics_path;
  std::vector<std::string> programs;
  std::uint32_t threads = 0;

  exp::SweepOptions sweep() const {
    exp::SweepOptions options;
    options.programs = programs;
    options.config_stride = fast ? 4 : 1;
    options.threads = threads;
    // Full default sweeps are deterministic; memoize them so the figure
    // benches share one computation (delete the file to force a re-run).
    if (programs.empty() && !fast) options.cache_path = "ucp_sweep_cache.csv";
    return options;
  }
};

inline BenchArgs parse_args(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--fast") {
      args.fast = true;
    } else if (a == "--csv") {
      args.csv = true;
    } else if (a == "--threads" && i + 1 < argc) {
      args.threads = static_cast<std::uint32_t>(std::stoul(argv[++i]));
    } else if (a == "--programs" && i + 1 < argc) {
      std::stringstream ss(argv[++i]);
      std::string item;
      while (std::getline(ss, item, ',')) args.programs.push_back(item);
    } else if (a.rfind("--trace=", 0) == 0) {
      args.trace_path = a.substr(8);
    } else if (a.rfind("--metrics=", 0) == 0) {
      args.metrics_path = a.substr(10);
    } else if (a == "--profile") {
      args.profile = true;
    } else {
      std::cerr << "unknown argument: " << a << "\n"
                << "usage: " << argv[0]
                << " [--fast] [--csv] [--threads N] [--programs a,b,c]"
                   " [--trace=FILE] [--metrics=FILE] [--profile]\n";
      std::exit(2);
    }
  }
  return args;
}

/// RAII observability session for a bench main: enables the obs flags the
/// arguments ask for, and on destruction (or an explicit finish()) writes
/// the trace/metrics files and prints the profile table. Sink failures
/// degrade to a stderr warning — observability must never fail a bench.
class ObsSession {
 public:
  ObsSession(std::string trace_path, std::string metrics_path, bool profile)
      : trace_path_(std::move(trace_path)),
        metrics_path_(std::move(metrics_path)),
        profile_(profile) {
    if (!trace_path_.empty() || !metrics_path_.empty() || profile_)
      obs::set_enabled(true);
    if (!trace_path_.empty() || profile_) obs::set_trace_enabled(true);
  }
  explicit ObsSession(const BenchArgs& args)
      : ObsSession(args.trace_path, args.metrics_path, args.profile) {}
  ~ObsSession() { finish(); }
  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

  void finish() {
    if (finished_) return;
    finished_ = true;
    std::vector<obs::TraceEvent> events;
    if (!trace_path_.empty() || profile_) events = obs::drain_trace();
    if (!trace_path_.empty()) {
      const Status written = obs::write_trace_file(trace_path_, events);
      if (written.ok())
        obs::log(obs::LogLevel::kInfo, "obs", "wrote_trace", trace_path_,
                 obs::LogFields().num(
                     "spans", static_cast<std::uint64_t>(events.size())));
      else
        obs::log(obs::LogLevel::kWarn, "obs", "trace_write_failed",
                 written.message());
    }
    if (!metrics_path_.empty()) {
      const Status written =
          obs::write_metrics_file(metrics_path_, obs::registry().snapshot());
      if (written.ok())
        obs::log(obs::LogLevel::kInfo, "obs", "wrote_metrics",
                 metrics_path_);
      else
        obs::log(obs::LogLevel::kWarn, "obs", "metrics_write_failed",
                 written.message());
    }
    if (profile_) std::cout << "\n" << obs::profile_table(events);
  }

 private:
  std::string trace_path_;
  std::string metrics_path_;
  bool profile_ = false;
  bool finished_ = false;
};

inline std::string pct_improvement(double ratio) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(1);
  os << (1.0 - ratio) * 100.0 << "%";
  return os.str();
}

}  // namespace ucp::bench
