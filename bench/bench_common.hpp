#pragma once

// Shared command-line handling for the figure/table benches.
//
// Every bench accepts:
//   --fast           quarter-size sweep (config stride 4) for smoke runs
//   --programs a,b   restrict to a comma-separated program subset
//   --threads N      worker threads (default: hardware concurrency)
//   --csv            also emit machine-readable CSV rows after the table

#include <cstdint>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "exp/harness.hpp"

namespace ucp::bench {

struct BenchArgs {
  bool fast = false;
  bool csv = false;
  std::vector<std::string> programs;
  std::uint32_t threads = 0;

  exp::SweepOptions sweep() const {
    exp::SweepOptions options;
    options.programs = programs;
    options.config_stride = fast ? 4 : 1;
    options.threads = threads;
    // Full default sweeps are deterministic; memoize them so the figure
    // benches share one computation (delete the file to force a re-run).
    if (programs.empty() && !fast) options.cache_path = "ucp_sweep_cache.csv";
    return options;
  }
};

inline BenchArgs parse_args(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--fast") {
      args.fast = true;
    } else if (a == "--csv") {
      args.csv = true;
    } else if (a == "--threads" && i + 1 < argc) {
      args.threads = static_cast<std::uint32_t>(std::stoul(argv[++i]));
    } else if (a == "--programs" && i + 1 < argc) {
      std::stringstream ss(argv[++i]);
      std::string item;
      while (std::getline(ss, item, ',')) args.programs.push_back(item);
    } else {
      std::cerr << "unknown argument: " << a << "\n"
                << "usage: " << argv[0]
                << " [--fast] [--csv] [--threads N] [--programs a,b,c]\n";
      std::exit(2);
    }
  }
  return args;
}

inline std::string pct_improvement(double ratio) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(1);
  os << (1.0 - ratio) * 100.0 << "%";
  return os.str();
}

}  // namespace ucp::bench
