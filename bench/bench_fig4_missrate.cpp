// Figure 4 — impact on miss rate: average instruction-cache miss rate per
// cache size, before and after the optimization (trace simulation).

#include <iostream>

#include "bench_common.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace ucp;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::ObsSession obs_session(args);

  std::cout << "Figure 4: average miss rate per cache size, original vs "
               "optimized\n\n";
  const exp::Sweep sweep = exp::run_sweep(args.sweep());
  const auto& results = sweep.results;
  const auto by_size = exp::aggregate_by_size(results);

  TextTable table({"cache size", "cases", "miss rate (orig)",
                   "miss rate (opt)", "relative reduction"});
  for (const exp::SizeAggregate& agg : by_size) {
    const double rel = agg.mean_missrate_orig == 0.0
                           ? 0.0
                           : 1.0 - agg.mean_missrate_opt /
                                       agg.mean_missrate_orig;
    table.add_row({std::to_string(agg.capacity_bytes) + " B",
                   std::to_string(agg.cases),
                   format_double(100.0 * agg.mean_missrate_orig, 2) + "%",
                   format_double(100.0 * agg.mean_missrate_opt, 2) + "%",
                   format_double(100.0 * rel, 1) + "%"});
  }
  table.print(std::cout);

  // Restricted to the paper's regime (pre-optimization miss rate 1%..10%).
  const auto regime = exp::paper_regime(results);
  const auto regime_by_size = exp::aggregate_by_size(regime);
  TextTable rt({"cache size", "cases", "miss rate (orig)", "miss rate (opt)",
                "relative reduction"});
  for (const exp::SizeAggregate& agg : regime_by_size) {
    const double rel =
        agg.mean_missrate_orig == 0.0
            ? 0.0
            : 1.0 - agg.mean_missrate_opt / agg.mean_missrate_orig;
    rt.add_row({std::to_string(agg.capacity_bytes) + " B",
                std::to_string(agg.cases),
                format_double(100.0 * agg.mean_missrate_orig, 2) + "%",
                format_double(100.0 * agg.mean_missrate_opt, 2) + "%",
                format_double(100.0 * rel, 1) + "%"});
  }
  std::cout << "\npaper regime (pre-optimization miss rate 1%..10%, as the "
               "paper's capacity selection ensured):\n";
  rt.print(std::cout);

  if (args.csv) {
    std::cout << "\ncsv:\nsize_bytes,cases,missrate_orig,missrate_opt\n";
    CsvWriter csv(std::cout);
    for (const exp::SizeAggregate& agg : by_size) {
      csv.write_row({std::to_string(agg.capacity_bytes),
                     std::to_string(agg.cases),
                     format_double(agg.mean_missrate_orig, 6),
                     format_double(agg.mean_missrate_opt, 6)});
    }
  }

  std::cout << "\n";
  sweep.report.print(std::cout);
  return 0;
}
