// Ablation — why the joint improvement criterion matters. Runs a reduced
// sweep under three acceptance rules:
//   profit       the paper's criterion (Δτ_w > 0, effectiveness enforced)
//   no-effect    profit without the Definition-10 effectiveness test
//   always       accept every surviving candidate unchecked
// and reports WCET/ACET/energy ratios plus Theorem-1 violations caught by
// the final audit (the 'always' rule must rely on the audit to stay safe).

#include <iostream>

#include "bench_common.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace ucp;
  bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::ObsSession obs_session(args);

  struct Variant {
    std::string name;
    core::OptimizerOptions options;
  };
  std::vector<Variant> variants;
  {
    Variant v;
    v.name = "profit (paper)";
    variants.push_back(v);
  }
  {
    Variant v;
    v.name = "no effectiveness";
    v.options.require_effectiveness = false;
    variants.push_back(v);
  }
  {
    Variant v;
    v.name = "always accept";
    v.options.accept_rule = core::AcceptRule::kAlways;
    v.options.final_audit = true;
    variants.push_back(v);
  }

  std::cout << "Ablation of the joint improvement criterion (Section 4.3)\n";
  // A reduced but representative grid keeps the three-way sweep affordable.
  exp::SweepOptions sweep = args.sweep();
  // Each variant runs a *different* optimizer, so the shared memo of the
  // default-optimizer sweep must not serve these results.
  sweep.cache_path.clear();
  if (sweep.programs.empty())
    sweep.programs = {"fdct", "jfdctint", "minver", "adpcm", "cover",
                      "statemate", "crc", "ndes", "whet", "ludcmp"};
  if (!args.fast) sweep.config_stride = 4;
  sweep.techs = {energy::TechNode::k32nm};

  TextTable table({"acceptance rule", "cases", "energy impr.", "ACET impr.",
                   "WCET impr.", "prefetches", "audits reverted"});
  std::vector<std::pair<std::string, exp::SweepReport>> reports;
  for (const Variant& v : variants) {
    exp::SweepOptions s = sweep;
    s.optimizer = v.options;
    const exp::Sweep out = exp::run_sweep(s);
    const auto& results = out.results;
    reports.emplace_back(v.name, out.report);
    const auto grand = exp::aggregate_all(results);
    std::size_t prefetches = 0, reverted = 0;
    for (const auto& r : results) {
      prefetches += r.report.insertions.size();
      if (r.report.reverted) ++reverted;
    }
    table.add_row({v.name, std::to_string(grand.cases),
                   bench::pct_improvement(grand.mean_energy_ratio),
                   bench::pct_improvement(grand.mean_acet_ratio),
                   bench::pct_improvement(grand.mean_wcet_ratio),
                   std::to_string(prefetches), std::to_string(reverted)});
  }
  table.print(std::cout);
  std::cout << "\n'audits reverted' counts use cases where the final fresh-"
               "IPET audit had to roll back all insertions to preserve the "
               "WCET guarantee: the paper criterion needs this rarely (only "
               "when the fixed-counts Delta-tau mispredicts a worst-case "
               "path switch), 'always accept' leans on it heavily.\n";

  std::cout << "\n";
  for (const auto& [name, report] : reports) {
    std::cout << name << ": ";
    report.print(std::cout);
  }
  return 0;
}
