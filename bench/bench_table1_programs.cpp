// Table 1 — program identification: the 37 benchmark programs with their
// paper ids, plus the static footprint statistics of our mini-ISA
// re-implementations (block counts, instructions, code bytes).

#include <iostream>

#include "bench_common.hpp"
#include "ir/layout.hpp"
#include "suite/suite.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace ucp;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::ObsSession obs_session(args);

  std::cout << "Table 1: the Mälardalen-like benchmark suite\n\n";
  TextTable table({"id", "program", "category", "blocks", "instrs",
                   "code bytes", "description"});
  std::size_t total_instrs = 0;
  for (const suite::BenchmarkInfo& info : suite::all_benchmarks()) {
    const ir::Program p = suite::build_benchmark(info.name);
    const ir::Layout layout(p, 16);
    total_instrs += p.instruction_count();
    table.add_row({info.id, info.name, info.category,
                   std::to_string(p.num_blocks()),
                   std::to_string(p.instruction_count()),
                   std::to_string(layout.code_bytes()), info.description});
  }
  table.print(std::cout);
  std::cout << "\n37 programs, " << total_instrs
            << " static instructions total (RISC-lowered form)\n";
  return 0;
}
