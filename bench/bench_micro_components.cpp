// Micro-benchmarks (google-benchmark): throughput of the individual
// analysis components — concrete cache simulation, must/may abstract
// interpretation, VIVU expansion, IPET/ILP solving, and the end-to-end
// optimizer — over representative suite programs.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/cache_analysis.hpp"
#include "analysis/context_graph.hpp"
#include "analysis/domain.hpp"
#include "cache/cache_sim.hpp"
#include "core/optimizer.hpp"
#include "energy/model.hpp"
#include "ilp/model.hpp"
#include "ilp/sparse.hpp"
#include "ir/layout.hpp"
#include "sim/interpreter.hpp"
#include "suite/suite.hpp"
#include "wcet/ipet.hpp"

namespace {

using namespace ucp;

const cache::CacheConfig kConfig{2, 16, 1024};
const cache::MemTiming kTiming =
    energy::derive_timing(kConfig, energy::TechNode::k45nm);

void BM_CacheSimFetch(benchmark::State& state) {
  cache::CacheSim sim(kConfig, kTiming);
  std::uint64_t now = 0;
  cache::MemBlockId block = 0;
  for (auto _ : state) {
    const auto r = sim.fetch(block, now);
    now += r.cycles;
    block = (block * 1664525u + 1013904223u) % 256;
    benchmark::DoNotOptimize(now);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CacheSimFetch);

// Two abstract sets with partially overlapping contents, as produced where
// control-flow paths with different access histories merge — the operand
// shape of every join on the fixpoint hot path.
analysis::AbstractSet merge_operand(std::uint8_t assoc,
                                    cache::MemBlockId base) {
  analysis::AbstractSet s(assoc);
  for (cache::MemBlockId b = base; b < base + assoc; ++b) s.update_must(b);
  return s;
}

void BM_AbstractSetJoinMust(benchmark::State& state) {
  const auto assoc = static_cast<std::uint8_t>(state.range(0));
  const analysis::AbstractSet a = merge_operand(assoc, 0);
  const analysis::AbstractSet b = merge_operand(assoc, assoc / 2);
  analysis::AbstractSet acc(assoc);
  for (auto _ : state) {
    acc = a;
    const bool changed = acc.join_must_with(b);
    benchmark::DoNotOptimize(changed);
    benchmark::DoNotOptimize(acc.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_AbstractSetJoinMust)->Arg(2)->Arg(4);

void BM_AbstractSetJoinMay(benchmark::State& state) {
  const auto assoc = static_cast<std::uint8_t>(state.range(0));
  const analysis::AbstractSet a = merge_operand(assoc, 0);
  const analysis::AbstractSet b = merge_operand(assoc, assoc / 2);
  analysis::AbstractSet acc(assoc);
  for (auto _ : state) {
    acc = a;
    const bool changed = acc.join_may_with(b);
    benchmark::DoNotOptimize(changed);
    benchmark::DoNotOptimize(acc.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_AbstractSetJoinMay)->Arg(2)->Arg(4);

void BM_AbstractCacheCopy(benchmark::State& state) {
  // The dominant constant of the fixpoint: propagating a state along an
  // edge copies the whole abstract cache. kConfig (2-way, 32 sets) matches
  // the mid-grid working state; fill every set so the copy moves real data.
  analysis::AbstractCache cache(kConfig);
  for (cache::MemBlockId b = 0; b < 2u * kConfig.num_sets(); ++b) {
    cache.update_must(b);
    cache.update_may(b);
  }
  for (auto _ : state) {
    analysis::AbstractCache copy = cache;
    benchmark::DoNotOptimize(copy.num_sets());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_AbstractCacheCopy);

// The hash-consing payoff at the join points: joining a state with a
// shared-payload copy of itself is a pointer compare (the dominant
// reconvergence case once the interner collapses identical out-states),
// while the same join against an equal-but-unshared state walks every set.
analysis::AbstractCache filled_cache() {
  analysis::AbstractCache cache(kConfig);
  for (cache::MemBlockId b = 0; b < 2u * kConfig.num_sets(); ++b) {
    cache.update_must(b);
    cache.update_may(b);
  }
  return cache;
}

void BM_AbstractCacheJoinKernel(benchmark::State& state, bool shared) {
  const analysis::AbstractCache a = filled_cache();
  const analysis::AbstractCache b = shared ? a : filled_cache();
  analysis::AbstractCache acc = a;
  for (auto _ : state) {
    const bool changed = acc.join_must_with(b);
    benchmark::DoNotOptimize(changed);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
void BM_AbstractCacheJoinShared(benchmark::State& state) {
  BM_AbstractCacheJoinKernel(state, /*shared=*/true);
}
void BM_AbstractCacheJoinRaw(benchmark::State& state) {
  BM_AbstractCacheJoinKernel(state, /*shared=*/false);
}
BENCHMARK(BM_AbstractCacheJoinShared);
BENCHMARK(BM_AbstractCacheJoinRaw);

void BM_Interpreter(benchmark::State& state, const char* name) {
  const ir::Program program = suite::build_benchmark(name);
  for (auto _ : state) {
    const sim::RunMetrics m = sim::run_program(program, kConfig, kTiming);
    benchmark::DoNotOptimize(m.total_cycles);
  }
}
BENCHMARK_CAPTURE(BM_Interpreter, crc, "crc");
BENCHMARK_CAPTURE(BM_Interpreter, matmult, "matmult");
BENCHMARK_CAPTURE(BM_Interpreter, nsichneu, "nsichneu");

void BM_ContextGraph(benchmark::State& state, const char* name) {
  const ir::Program program = suite::build_benchmark(name);
  for (auto _ : state) {
    const analysis::ContextGraph graph(program);
    benchmark::DoNotOptimize(graph.num_nodes());
  }
}
BENCHMARK_CAPTURE(BM_ContextGraph, fdct, "fdct");
BENCHMARK_CAPTURE(BM_ContextGraph, nsichneu, "nsichneu");

void BM_MustMayAnalysis(benchmark::State& state, const char* name) {
  const ir::Program program = suite::build_benchmark(name);
  const ir::Layout layout(program, kConfig.block_bytes);
  const analysis::ContextGraph graph(program);
  for (auto _ : state) {
    const auto cls = analysis::analyze_cache(graph, layout, kConfig);
    benchmark::DoNotOptimize(cls.per_node.size());
  }
}
BENCHMARK_CAPTURE(BM_MustMayAnalysis, fdct, "fdct");
BENCHMARK_CAPTURE(BM_MustMayAnalysis, statemate, "statemate");

void BM_Ipet(benchmark::State& state, const char* name) {
  const ir::Program program = suite::build_benchmark(name);
  const ir::Layout layout(program, kConfig.block_bytes);
  const analysis::ContextGraph graph(program);
  const auto cls = analysis::analyze_cache(graph, layout, kConfig);
  for (auto _ : state) {
    const auto wcet = wcet::compute_wcet(graph, cls, kTiming);
    benchmark::DoNotOptimize(wcet.tau_mem);
  }
}
BENCHMARK_CAPTURE(BM_Ipet, fdct, "fdct");
BENCHMARK_CAPTURE(BM_Ipet, statemate, "statemate");

// The sweep hot path: re-solving a prebuilt IpetSystem with a fresh
// objective. The gap to BM_Ipet (which rebuilds the constraint system and
// re-runs phase 1 every call) is what the per-program cache buys.
void BM_IpetSystemResolve(benchmark::State& state, const char* name) {
  const ir::Program program = suite::build_benchmark(name);
  const ir::Layout layout(program, kConfig.block_bytes);
  const analysis::ContextGraph graph(program);
  const auto cls = analysis::analyze_cache(graph, layout, kConfig);
  const wcet::IpetSystem system(graph);
  for (auto _ : state) {
    const auto wcet = system.solve(cls, kTiming);
    benchmark::DoNotOptimize(wcet.tau_mem);
  }
}
BENCHMARK_CAPTURE(BM_IpetSystemResolve, fdct, "fdct");
BENCHMARK_CAPTURE(BM_IpetSystemResolve, statemate, "statemate");

// ILP presolve on/off over the whole IpetSystem life cycle (build the
// sparse snapshot including its one-time phase 1, then solve once): the
// reduction pays for itself when the eliminated equality rows save more
// construction/solve pivots than the presolve passes cost. `rows` records
// what the simplex actually factorizes in each mode.
void BM_IpetBuildSolveKernel(benchmark::State& state, const char* name,
                             bool presolve) {
  const ir::Program program = suite::build_benchmark(name);
  const ir::Layout layout(program, kConfig.block_bytes);
  const analysis::ContextGraph graph(program);
  const auto cls = analysis::analyze_cache(graph, layout, kConfig);
  std::size_t rows = 0;
  for (auto _ : state) {
    const wcet::IpetSystem system(graph, wcet::IpetOptions{presolve});
    const auto wcet = system.solve(cls, kTiming);
    rows = system.lp_rows();
    benchmark::DoNotOptimize(wcet.tau_mem);
  }
  state.counters["rows"] = static_cast<double>(rows);
}
void BM_IpetBuildSolvePresolved(benchmark::State& state, const char* name) {
  BM_IpetBuildSolveKernel(state, name, /*presolve=*/true);
}
void BM_IpetBuildSolveUnreduced(benchmark::State& state, const char* name) {
  BM_IpetBuildSolveKernel(state, name, /*presolve=*/false);
}
BENCHMARK_CAPTURE(BM_IpetBuildSolvePresolved, fdct, "fdct");
BENCHMARK_CAPTURE(BM_IpetBuildSolveUnreduced, fdct, "fdct");
BENCHMARK_CAPTURE(BM_IpetBuildSolvePresolved, statemate, "statemate");
BENCHMARK_CAPTURE(BM_IpetBuildSolveUnreduced, statemate, "statemate");

// Sparse revised simplex vs the retained dense-tableau reference on the
// same IPET model — the per-pivot/per-solve cost gap of the rewrite.
void BM_IpetSolveKernel(benchmark::State& state, const char* name,
                        bool dense) {
  const ir::Program program = suite::build_benchmark(name);
  const ir::Layout layout(program, kConfig.block_bytes);
  const analysis::ContextGraph graph(program);
  const auto cls = analysis::analyze_cache(graph, layout, kConfig);
  const wcet::IpetSystem system(graph);
  const ilp::Model model = system.model_with_objective(cls, kTiming);
  std::uint64_t pivots = 0;
  for (auto _ : state) {
    const ilp::Solution s = dense ? ilp::solve_ilp_dense_reference(model)
                                  : ilp::solve_ilp(model);
    pivots += s.stats.pivots;
    benchmark::DoNotOptimize(s.objective);
  }
  state.counters["pivots/solve"] = benchmark::Counter(
      static_cast<double>(pivots) /
      static_cast<double>(std::max<std::int64_t>(1, state.iterations())));
}
void BM_IpetSolveSparse(benchmark::State& state, const char* name) {
  BM_IpetSolveKernel(state, name, /*dense=*/false);
}
void BM_IpetSolveDenseReference(benchmark::State& state, const char* name) {
  BM_IpetSolveKernel(state, name, /*dense=*/true);
}
BENCHMARK_CAPTURE(BM_IpetSolveSparse, fdct, "fdct");
BENCHMARK_CAPTURE(BM_IpetSolveDenseReference, fdct, "fdct");
BENCHMARK_CAPTURE(BM_IpetSolveSparse, statemate, "statemate");
BENCHMARK_CAPTURE(BM_IpetSolveDenseReference, statemate, "statemate");

// Warm vs cold branch-and-bound children on an ILP that actually branches:
// a knapsack with deliberately fractional LP vertices. Warm children
// reinstate the parent basis with a handful of dual pivots; cold children
// re-enter phase 1 from the canonical basis.
ilp::Model branching_knapsack(int items) {
  ilp::Model m;
  std::vector<ilp::VarId> xs;
  for (int i = 0; i < items; ++i)
    xs.push_back(m.add_var("x" + std::to_string(i), 0, 1, true));
  std::vector<ilp::Term> cap;
  std::vector<ilp::Term> obj;
  for (int i = 0; i < items; ++i) {
    const double w = 2.0 + static_cast<double>((i * 7) % 5);
    const double v = 3.0 + static_cast<double>((i * 11) % 7);
    cap.push_back({xs[static_cast<std::size_t>(i)], w});
    obj.push_back({xs[static_cast<std::size_t>(i)], v});
  }
  m.add_constraint(std::move(cap), ilp::Rel::kLe,
                   1.7 * static_cast<double>(items));
  m.set_objective(std::move(obj));
  return m;
}

void BM_BranchAndBound(benchmark::State& state, bool warm) {
  const ilp::Model model = branching_knapsack(24);
  const ilp::SparseLp lp(model);
  std::vector<double> obj(model.num_vars(), 0.0);
  for (const ilp::Term& t : model.objective())
    obj[static_cast<std::size_t>(t.var)] = t.coeff;
  ilp::SolveOptions options;
  options.warm_start = warm;
  std::uint64_t nodes = 0, pivots = 0;
  for (auto _ : state) {
    const ilp::Solution s = lp.solve_ilp_with(obj, options);
    nodes += s.stats.bb_nodes;
    pivots += s.stats.pivots;
    benchmark::DoNotOptimize(s.objective);
  }
  const auto iters =
      static_cast<double>(std::max<std::int64_t>(1, state.iterations()));
  state.counters["nodes/solve"] =
      benchmark::Counter(static_cast<double>(nodes) / iters);
  state.counters["pivots/solve"] =
      benchmark::Counter(static_cast<double>(pivots) / iters);
}
void BM_BranchAndBoundWarm(benchmark::State& state) {
  BM_BranchAndBound(state, /*warm=*/true);
}
void BM_BranchAndBoundCold(benchmark::State& state) {
  BM_BranchAndBound(state, /*warm=*/false);
}
BENCHMARK(BM_BranchAndBoundWarm);
BENCHMARK(BM_BranchAndBoundCold);

void BM_Optimizer(benchmark::State& state, const char* name) {
  const ir::Program program = suite::build_benchmark(name);
  for (auto _ : state) {
    const auto result =
        core::optimize_prefetches(program, kConfig, kTiming);
    benchmark::DoNotOptimize(result.report.insertions.size());
  }
}
BENCHMARK_CAPTURE(BM_Optimizer, fdct, "fdct");
BENCHMARK_CAPTURE(BM_Optimizer, adpcm, "adpcm");

}  // namespace

BENCHMARK_MAIN();
