// Micro-benchmarks (google-benchmark): throughput of the individual
// analysis components — concrete cache simulation, must/may abstract
// interpretation, VIVU expansion, IPET/ILP solving, and the end-to-end
// optimizer — over representative suite programs.

#include <benchmark/benchmark.h>

#include "analysis/cache_analysis.hpp"
#include "analysis/context_graph.hpp"
#include "analysis/domain.hpp"
#include "cache/cache_sim.hpp"
#include "core/optimizer.hpp"
#include "energy/model.hpp"
#include "ir/layout.hpp"
#include "sim/interpreter.hpp"
#include "suite/suite.hpp"
#include "wcet/ipet.hpp"

namespace {

using namespace ucp;

const cache::CacheConfig kConfig{2, 16, 1024};
const cache::MemTiming kTiming =
    energy::derive_timing(kConfig, energy::TechNode::k45nm);

void BM_CacheSimFetch(benchmark::State& state) {
  cache::CacheSim sim(kConfig, kTiming);
  std::uint64_t now = 0;
  cache::MemBlockId block = 0;
  for (auto _ : state) {
    const auto r = sim.fetch(block, now);
    now += r.cycles;
    block = (block * 1664525u + 1013904223u) % 256;
    benchmark::DoNotOptimize(now);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CacheSimFetch);

// Two abstract sets with partially overlapping contents, as produced where
// control-flow paths with different access histories merge — the operand
// shape of every join on the fixpoint hot path.
analysis::AbstractSet merge_operand(std::uint8_t assoc,
                                    cache::MemBlockId base) {
  analysis::AbstractSet s(assoc);
  for (cache::MemBlockId b = base; b < base + assoc; ++b) s.update_must(b);
  return s;
}

void BM_AbstractSetJoinMust(benchmark::State& state) {
  const auto assoc = static_cast<std::uint8_t>(state.range(0));
  const analysis::AbstractSet a = merge_operand(assoc, 0);
  const analysis::AbstractSet b = merge_operand(assoc, assoc / 2);
  analysis::AbstractSet acc(assoc);
  for (auto _ : state) {
    acc = a;
    const bool changed = acc.join_must_with(b);
    benchmark::DoNotOptimize(changed);
    benchmark::DoNotOptimize(acc.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_AbstractSetJoinMust)->Arg(2)->Arg(4);

void BM_AbstractSetJoinMay(benchmark::State& state) {
  const auto assoc = static_cast<std::uint8_t>(state.range(0));
  const analysis::AbstractSet a = merge_operand(assoc, 0);
  const analysis::AbstractSet b = merge_operand(assoc, assoc / 2);
  analysis::AbstractSet acc(assoc);
  for (auto _ : state) {
    acc = a;
    const bool changed = acc.join_may_with(b);
    benchmark::DoNotOptimize(changed);
    benchmark::DoNotOptimize(acc.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_AbstractSetJoinMay)->Arg(2)->Arg(4);

void BM_AbstractCacheCopy(benchmark::State& state) {
  // The dominant constant of the fixpoint: propagating a state along an
  // edge copies the whole abstract cache. kConfig (2-way, 32 sets) matches
  // the mid-grid working state; fill every set so the copy moves real data.
  analysis::AbstractCache cache(kConfig);
  for (cache::MemBlockId b = 0; b < 2u * kConfig.num_sets(); ++b) {
    cache.update_must(b);
    cache.update_may(b);
  }
  for (auto _ : state) {
    analysis::AbstractCache copy = cache;
    benchmark::DoNotOptimize(copy.num_sets());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_AbstractCacheCopy);

void BM_Interpreter(benchmark::State& state, const char* name) {
  const ir::Program program = suite::build_benchmark(name);
  for (auto _ : state) {
    const sim::RunMetrics m = sim::run_program(program, kConfig, kTiming);
    benchmark::DoNotOptimize(m.total_cycles);
  }
}
BENCHMARK_CAPTURE(BM_Interpreter, crc, "crc");
BENCHMARK_CAPTURE(BM_Interpreter, matmult, "matmult");
BENCHMARK_CAPTURE(BM_Interpreter, nsichneu, "nsichneu");

void BM_ContextGraph(benchmark::State& state, const char* name) {
  const ir::Program program = suite::build_benchmark(name);
  for (auto _ : state) {
    const analysis::ContextGraph graph(program);
    benchmark::DoNotOptimize(graph.num_nodes());
  }
}
BENCHMARK_CAPTURE(BM_ContextGraph, fdct, "fdct");
BENCHMARK_CAPTURE(BM_ContextGraph, nsichneu, "nsichneu");

void BM_MustMayAnalysis(benchmark::State& state, const char* name) {
  const ir::Program program = suite::build_benchmark(name);
  const ir::Layout layout(program, kConfig.block_bytes);
  const analysis::ContextGraph graph(program);
  for (auto _ : state) {
    const auto cls = analysis::analyze_cache(graph, layout, kConfig);
    benchmark::DoNotOptimize(cls.per_node.size());
  }
}
BENCHMARK_CAPTURE(BM_MustMayAnalysis, fdct, "fdct");
BENCHMARK_CAPTURE(BM_MustMayAnalysis, statemate, "statemate");

void BM_Ipet(benchmark::State& state, const char* name) {
  const ir::Program program = suite::build_benchmark(name);
  const ir::Layout layout(program, kConfig.block_bytes);
  const analysis::ContextGraph graph(program);
  const auto cls = analysis::analyze_cache(graph, layout, kConfig);
  for (auto _ : state) {
    const auto wcet = wcet::compute_wcet(graph, cls, kTiming);
    benchmark::DoNotOptimize(wcet.tau_mem);
  }
}
BENCHMARK_CAPTURE(BM_Ipet, fdct, "fdct");
BENCHMARK_CAPTURE(BM_Ipet, statemate, "statemate");

void BM_Optimizer(benchmark::State& state, const char* name) {
  const ir::Program program = suite::build_benchmark(name);
  for (auto _ : state) {
    const auto result =
        core::optimize_prefetches(program, kConfig, kTiming);
    benchmark::DoNotOptimize(result.report.insertions.size());
  }
}
BENCHMARK_CAPTURE(BM_Optimizer, fdct, "fdct");
BENCHMARK_CAPTURE(BM_Optimizer, adpcm, "adpcm");

}  // namespace

BENCHMARK_MAIN();
