// Micro-benchmarks (google-benchmark): throughput of the individual
// analysis components — concrete cache simulation, must/may abstract
// interpretation, VIVU expansion, IPET/ILP solving, and the end-to-end
// optimizer — over representative suite programs.

#include <benchmark/benchmark.h>

#include "analysis/cache_analysis.hpp"
#include "analysis/context_graph.hpp"
#include "cache/cache_sim.hpp"
#include "core/optimizer.hpp"
#include "energy/model.hpp"
#include "ir/layout.hpp"
#include "sim/interpreter.hpp"
#include "suite/suite.hpp"
#include "wcet/ipet.hpp"

namespace {

using namespace ucp;

const cache::CacheConfig kConfig{2, 16, 1024};
const cache::MemTiming kTiming =
    energy::derive_timing(kConfig, energy::TechNode::k45nm);

void BM_CacheSimFetch(benchmark::State& state) {
  cache::CacheSim sim(kConfig, kTiming);
  std::uint64_t now = 0;
  cache::MemBlockId block = 0;
  for (auto _ : state) {
    const auto r = sim.fetch(block, now);
    now += r.cycles;
    block = (block * 1664525u + 1013904223u) % 256;
    benchmark::DoNotOptimize(now);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CacheSimFetch);

void BM_Interpreter(benchmark::State& state, const char* name) {
  const ir::Program program = suite::build_benchmark(name);
  for (auto _ : state) {
    const sim::RunMetrics m = sim::run_program(program, kConfig, kTiming);
    benchmark::DoNotOptimize(m.total_cycles);
  }
}
BENCHMARK_CAPTURE(BM_Interpreter, crc, "crc");
BENCHMARK_CAPTURE(BM_Interpreter, matmult, "matmult");
BENCHMARK_CAPTURE(BM_Interpreter, nsichneu, "nsichneu");

void BM_ContextGraph(benchmark::State& state, const char* name) {
  const ir::Program program = suite::build_benchmark(name);
  for (auto _ : state) {
    const analysis::ContextGraph graph(program);
    benchmark::DoNotOptimize(graph.num_nodes());
  }
}
BENCHMARK_CAPTURE(BM_ContextGraph, fdct, "fdct");
BENCHMARK_CAPTURE(BM_ContextGraph, nsichneu, "nsichneu");

void BM_MustMayAnalysis(benchmark::State& state, const char* name) {
  const ir::Program program = suite::build_benchmark(name);
  const ir::Layout layout(program, kConfig.block_bytes);
  const analysis::ContextGraph graph(program);
  for (auto _ : state) {
    const auto cls = analysis::analyze_cache(graph, layout, kConfig);
    benchmark::DoNotOptimize(cls.per_node.size());
  }
}
BENCHMARK_CAPTURE(BM_MustMayAnalysis, fdct, "fdct");
BENCHMARK_CAPTURE(BM_MustMayAnalysis, statemate, "statemate");

void BM_Ipet(benchmark::State& state, const char* name) {
  const ir::Program program = suite::build_benchmark(name);
  const ir::Layout layout(program, kConfig.block_bytes);
  const analysis::ContextGraph graph(program);
  const auto cls = analysis::analyze_cache(graph, layout, kConfig);
  for (auto _ : state) {
    const auto wcet = wcet::compute_wcet(graph, cls, kTiming);
    benchmark::DoNotOptimize(wcet.tau_mem);
  }
}
BENCHMARK_CAPTURE(BM_Ipet, fdct, "fdct");
BENCHMARK_CAPTURE(BM_Ipet, statemate, "statemate");

void BM_Optimizer(benchmark::State& state, const char* name) {
  const ir::Program program = suite::build_benchmark(name);
  for (auto _ : state) {
    const auto result =
        core::optimize_prefetches(program, kConfig, kTiming);
    benchmark::DoNotOptimize(result.report.insertions.size());
  }
}
BENCHMARK_CAPTURE(BM_Optimizer, fdct, "fdct");
BENCHMARK_CAPTURE(BM_Optimizer, adpcm, "adpcm");

}  // namespace

BENCHMARK_MAIN();
