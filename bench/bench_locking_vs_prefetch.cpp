// Extension bench — the comparison the paper's conclusions call for:
// static cache locking vs. the paper's WCET-safe software prefetching vs.
// hardware next-line prefetching, on WCET, ACET and memory energy.
//
// The expected shape (Section 2.3's argument):
//  - locking gives a predictable but *slow* memory WCET/ACET, and its
//    energy worsens at 32nm because longer runtimes integrate more leakage;
//  - hardware next-line prefetching may help the average case but offers
//    no analyzable WCET (reported as "n/a" here — the real-time argument);
//  - the paper's technique keeps the analyzable WCET and improves it.

#include <iostream>

#include "bench_common.hpp"
#include "cache/cache_sim.hpp"
#include "core/locking.hpp"
#include "core/optimizer.hpp"
#include "energy/model.hpp"
#include "ir/layout.hpp"
#include "sim/interpreter.hpp"
#include "suite/suite.hpp"
#include "support/table.hpp"

namespace {

using namespace ucp;

struct SchemeMetrics {
  std::uint64_t tau = 0;  ///< 0 = not analyzable
  std::uint64_t acet_mem = 0;
  double energy_nj = 0.0;
};

SchemeMetrics simulate(const ir::Program& program,
                       const cache::CacheConfig& config,
                       energy::TechNode tech,
                       cache::HwPrefetchPolicy policy,
                       const std::vector<cache::MemBlockId>& locked) {
  const cache::MemTiming timing = energy::derive_timing(config, tech);
  const ir::Layout layout(program, config.block_bytes);
  cache::CacheSim sim(config, timing, policy);
  for (cache::MemBlockId b : locked) sim.lock_block(b);
  sim::Interpreter interp(program, layout, sim);
  const sim::RunMetrics run = interp.run();
  energy::EnergyBreakdown e = energy::memory_energy(run, config, tech);
  // Lock-down preload: one level-two transfer per locked block.
  e.dram_dynamic_nj +=
      static_cast<double>(locked.size()) *
      energy::dram_model(tech, config.block_bytes).access_energy_nj;
  SchemeMetrics m;
  m.acet_mem = run.mem_cycles;
  m.energy_nj = e.total_nj();
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ucp;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::ObsSession obs_session(args);

  std::vector<std::string> programs = args.programs;
  if (programs.empty())
    programs = {"fdct", "jfdctint", "ndes", "cover", "adpcm",
                "matmult", "fir", "crc", "whet", "statemate"};

  std::cout << "Extension: on-demand vs locking vs software prefetching vs "
               "hardware next-line\n\n";

  for (energy::TechNode tech :
       {energy::TechNode::k45nm, energy::TechNode::k32nm}) {
    TextTable table({"scheme", "mean WCET ratio", "mean ACET ratio",
                     "mean energy ratio", "analyzable WCET"});
    double lock_tau = 0, lock_acet = 0, lock_energy = 0;
    double pf_tau = 0, pf_acet = 0, pf_energy = 0;
    double hw_acet = 0, hw_energy = 0;
    std::size_t n = 0;

    for (const std::string& name : programs) {
      const ir::Program p = suite::build_benchmark(name);
      // A mid-pressure configuration per program: 2-way 16B blocks, the
      // capacity that halves the footprint (clamped to the paper's range).
      const ir::Layout probe(p, 16);
      std::uint32_t capacity = 256;
      while (capacity < probe.code_bytes() / 2 && capacity < 8192)
        capacity *= 2;
      const cache::CacheConfig config{2, 16, capacity};
      const cache::MemTiming timing = energy::derive_timing(config, tech);

      // Baseline: on-demand fetching.
      const SchemeMetrics base = simulate(
          p, config, tech, cache::HwPrefetchPolicy::kNone, {});
      const core::LockingResult lock =
          core::optimize_locking(p, config, timing);
      const SchemeMetrics locked = simulate(
          p, config, tech, cache::HwPrefetchPolicy::kNone, lock.locked);
      const core::OptimizationResult opt =
          core::optimize_prefetches(p, config, timing);
      const SchemeMetrics sw = simulate(
          opt.program, config, tech, cache::HwPrefetchPolicy::kNone, {});
      const SchemeMetrics hw = simulate(
          p, config, tech, cache::HwPrefetchPolicy::kNextLineTagged, {});

      ++n;
      lock_tau += static_cast<double>(lock.tau_locked) /
                  static_cast<double>(lock.tau_unlocked);
      lock_acet += static_cast<double>(locked.acet_mem) /
                   static_cast<double>(base.acet_mem);
      lock_energy += locked.energy_nj / base.energy_nj;
      pf_tau += static_cast<double>(opt.report.tau_optimized) /
                static_cast<double>(opt.report.tau_original);
      pf_acet += static_cast<double>(sw.acet_mem) /
                 static_cast<double>(base.acet_mem);
      pf_energy += sw.energy_nj / base.energy_nj;
      hw_acet += static_cast<double>(hw.acet_mem) /
                 static_cast<double>(base.acet_mem);
      hw_energy += hw.energy_nj / base.energy_nj;
    }

    const auto d = static_cast<double>(n);
    table.add_row({"on-demand (baseline)", "1.000", "1.000", "1.000", "yes"});
    table.add_row({"static locking", format_double(lock_tau / d, 3),
                   format_double(lock_acet / d, 3),
                   format_double(lock_energy / d, 3), "yes (trivially)"});
    table.add_row({"sw prefetch (paper)", format_double(pf_tau / d, 3),
                   format_double(pf_acet / d, 3),
                   format_double(pf_energy / d, 3), "yes (Theorem 1)"});
    table.add_row({"hw next-line tagged", "n/a",
                   format_double(hw_acet / d, 3),
                   format_double(hw_energy / d, 3),
                   "no (hardwired heuristics)"});

    std::cout << "technology " << energy::tech_name(tech) << " (" << n
              << " programs, mid-pressure configs):\n";
    table.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "Ratios vs. the on-demand baseline; locking's energy column "
               "should degrade from 45nm to 32nm (Section 2.3's premise), "
               "while software prefetching improves both.\n";
  return 0;
}
