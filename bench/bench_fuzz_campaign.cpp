// Soundness-fuzzing campaign driver.
//
//   bench_fuzz_campaign --seed 0x2a --cases 1000 --shrink \
//       --corpus tests/corpus --journal fuzz_journal.log
//
// Generates `cases` synthetic programs from the root seed and runs each
// through the differential oracle battery (sim-vs-IPET, must/may/persistence
// vs concrete traces, Theorem 1, sparse-vs-dense ILP). Violations are
// delta-debug shrunk and written as self-contained repros. Exit code 1 iff
// any UNEXPLAINED violation occurred (explained = an armed fault site).
//
// Flags beyond the common set:
//   --seed N          root seed (decimal or 0x hex; default 1)
//   --cases N         programs to generate (default 200)
//   --shrink/--no-shrink   minimize repros (default on)
//   --rotation N      cache-config rotation stride; 0 pins k7 (default 5)
//   --fault-every N   arm a compute-path fault on every n-th case (default 0)
//   --corpus DIR      write repros here ("" = don't)
//   --journal FILE    checkpoint/resume journal
//   --trace-cases     per-case verdict lines on stderr
//   --write-exemplars DIR   write the first passing case per oracle-relevant
//                     shape plus one injected-fault violation as corpus
//                     seeds, then exit (used once to seed tests/corpus)

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "bench_common.hpp"
#include "fuzz/campaign.hpp"
#include "fuzz/corpus.hpp"
#include "gen/generator.hpp"
#include "support/rng.hpp"

namespace {

std::uint64_t parse_u64(const std::string& s) {
  return std::stoull(s, nullptr, s.rfind("0x", 0) == 0 ? 16 : 10);
}

/// Seeds `dir` with committed corpus entries: three pass exemplars of
/// different shapes (distinct seeds and knob draws) and one injected-fault
/// violation that pins the triage/replay path.
int write_exemplars(const std::string& dir, std::uint64_t root) {
  using namespace ucp;
  int written = 0;
  for (std::uint32_t i = 0; written < 3 && i < 64; ++i) {
    const std::uint64_t case_seed = split_seed(root, i);
    Rng knob_rng(split_seed(case_seed, 0));
    const gen::GenKnobs knobs = gen::sample_knobs(knob_rng);
    const std::uint64_t gen_seed = split_seed(case_seed, 1);
    fuzz::CorpusEntry entry;
    entry.seed = gen_seed;
    entry.knobs = knobs.to_string();
    entry.program = gen::generate_program(gen_seed, knobs);
    entry.config_id = "k" + std::to_string(7 + 11 * written);
    if (!fuzz::replay_corpus_entry(entry).ok()) continue;  // skipped case
    char name[64];
    std::snprintf(name, sizeof name, "%s/pass_%016" PRIx64 ".ucp",
                  dir.c_str(), gen_seed);
    const Status s = fuzz::write_corpus_entry(name, entry);
    if (!s.ok()) {
      std::cerr << "error: " << s.message() << "\n";
      return 1;
    }
    std::cout << "wrote " << name << "\n";
    ++written;
  }
  // One injected-fault violation: fuzz.oracle is armed at replay time via
  // the `# fault` header, so this entry reproduces forever.
  {
    const std::uint64_t case_seed = split_seed(root, 101);
    Rng knob_rng(split_seed(case_seed, 0));
    const gen::GenKnobs knobs = gen::sample_knobs(knob_rng);
    const std::uint64_t gen_seed = split_seed(case_seed, 1);
    fuzz::CorpusEntry entry;
    entry.seed = gen_seed;
    entry.knobs = knobs.to_string();
    entry.program = gen::generate_program(gen_seed, knobs);
    entry.expect = fuzz::Oracle::kInjected;
    entry.fault_site = "fuzz.oracle";
    entry.detail = "forced violation via the fuzz.oracle fault site";
    const Status ok = fuzz::replay_corpus_entry(entry);
    if (!ok.ok()) {
      std::cerr << "error: injected exemplar does not replay: "
                << ok.message() << "\n";
      return 1;
    }
    char name[64];
    std::snprintf(name, sizeof name, "%s/violation_injected.ucp", dir.c_str());
    const Status s = fuzz::write_corpus_entry(name, entry);
    if (!s.ok()) {
      std::cerr << "error: " << s.message() << "\n";
      return 1;
    }
    std::cout << "wrote " << name << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ucp;
  fuzz::CampaignOptions options;
  std::string metrics_path;
  std::string exemplar_dir;
  bool profile = false;
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--seed" && i + 1 < argc) {
      options.seed = parse_u64(argv[++i]);
    } else if (a == "--cases" && i + 1 < argc) {
      options.cases = static_cast<std::uint32_t>(parse_u64(argv[++i]));
    } else if (a == "--shrink") {
      options.shrink = true;
    } else if (a == "--no-shrink") {
      options.shrink = false;
    } else if (a == "--rotation" && i + 1 < argc) {
      options.config_rotation =
          static_cast<std::uint32_t>(parse_u64(argv[++i]));
    } else if (a == "--fault-every" && i + 1 < argc) {
      options.fault_every = static_cast<std::uint32_t>(parse_u64(argv[++i]));
    } else if (a == "--large-scale" && i + 1 < argc) {
      options.large_scale = static_cast<std::uint32_t>(parse_u64(argv[++i]));
    } else if (a == "--corpus" && i + 1 < argc) {
      options.corpus_dir = argv[++i];
    } else if (a == "--journal" && i + 1 < argc) {
      options.journal_path = argv[++i];
    } else if (a == "--trace-cases") {
      options.trace = true;
    } else if (a == "--progress" && i + 1 < argc) {
      options.progress_every =
          static_cast<std::uint32_t>(parse_u64(argv[++i]));
    } else if (a == "--threads" && i + 1 < argc) {
      options.threads = static_cast<std::uint32_t>(parse_u64(argv[++i]));
    } else if (a == "--shard" && i + 1 < argc) {
      const std::string spec = argv[++i];
      const std::size_t slash = spec.find('/');
      if (slash == std::string::npos) {
        std::cerr << "--shard expects i/N (e.g. --shard 0/4)\n";
        return 2;
      }
      options.shard_index =
          static_cast<std::uint32_t>(parse_u64(spec.substr(0, slash)));
      options.shard_count =
          static_cast<std::uint32_t>(parse_u64(spec.substr(slash + 1)));
      if (options.shard_count == 0 ||
          options.shard_index >= options.shard_count) {
        std::cerr << "--shard " << spec << ": need 0 <= i < N\n";
        return 2;
      }
    } else if (a == "--write-exemplars" && i + 1 < argc) {
      exemplar_dir = argv[++i];
    } else if (a.rfind("--metrics=", 0) == 0) {
      metrics_path = a.substr(10);
    } else if (a.rfind("--trace=", 0) == 0) {
      trace_path = a.substr(8);
    } else if (a == "--profile") {
      profile = true;
    } else {
      std::cerr << "unknown argument: " << a << "\n"
                << "usage: " << argv[0]
                << " [--seed N] [--cases N] [--shrink|--no-shrink]"
                   " [--rotation N] [--fault-every N] [--large-scale N]"
                   " [--corpus DIR]"
                   " [--journal FILE] [--trace-cases] [--progress N]"
                   " [--threads N] [--shard i/N]"
                   " [--write-exemplars DIR] [--metrics=FILE]"
                   " [--trace=FILE] [--profile]\n";
      return 2;
    }
  }

  bench::ObsSession obs(trace_path, metrics_path, profile);
  if (!exemplar_dir.empty()) return write_exemplars(exemplar_dir, options.seed);

  const fuzz::CampaignResult result = fuzz::run_campaign(options);

  std::cout << "fuzz campaign: seed=0x" << std::hex << options.seed
            << std::dec << " cases=" << result.verdicts.size()
            << " (resumed " << result.resumed << ")\n"
            << "  violations:  " << result.violations << " ("
            << result.unexplained << " unexplained)\n"
            << "  skipped:     " << result.skipped << "\n"
            << "  faulted:     " << result.faulted << "\n"
            << "  shrunk:      " << result.shrunk << "\n"
            << "  fingerprint: " << result.fingerprint << "\n";
  if (!result.journal_note.empty())
    std::cout << "  journal:     " << result.journal_note << "\n";
  for (const std::string& p : result.repro_paths)
    std::cout << "  repro:       " << p << "\n";

  if (result.unexplained > 0) {
    std::cerr << "error: " << result.unexplained
              << " unexplained soundness violation(s)\n";
    for (const auto& v : result.verdicts)
      if (v.violated() && v.fault_site.empty())
        std::cerr << "  " << v.line() << "\n    " << v.note << "\n";
    return 1;
  }
  return 0;
}
