// Figure 5 — smaller caches: the optimized program runs on a cache of 1/2
// or 1/4 the capacity of the one the *original* program uses; the paper's
// shaded region is where the optimized binary on the smaller cache still
// sustains an ACET less or equal to the original on the full-size cache,
// with energy reductions up to 21%.
//
// The optimizer targets the cache the binary actually ships on (the small
// one); ratios compare against the original binary on the full-size cache.

#include <iostream>
#include <mutex>

#include "bench_common.hpp"
#include "core/optimizer.hpp"
#include "energy/model.hpp"
#include "suite/suite.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace ucp;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::ObsSession obs_session(args);

  struct Row {
    std::uint32_t base_capacity = 0;
    std::uint32_t divisor = 0;
    double energy_ratio = 0.0;
    double acet_ratio = 0.0;
    double wcet_ratio = 0.0;
  };

  struct Case {
    std::string program;
    cache::NamedCacheConfig base;
    energy::TechNode tech;
  };
  std::vector<Case> grid;
  std::vector<std::string> names = args.programs;
  if (names.empty())
    for (const auto& info : suite::all_benchmarks()) names.push_back(info.name);
  const auto& configs = cache::paper_cache_configs();
  for (const auto& name : names)
    // This bench optimizes each program twice per base case (for c/2 and
    // c/4), so the default grid takes every fourth configuration (all six
    // capacities and all associativities remain covered); --fast widens
    // the stride further.
    for (std::size_t c = 0; c < configs.size();
         c += (args.fast ? 12 : 4))
      for (auto tech : {energy::TechNode::k45nm, energy::TechNode::k32nm})
        grid.push_back(Case{name, configs[c], tech});

  std::vector<Row> rows;
  std::mutex mu;
  std::cout << "Figure 5: optimized binaries on 1/2 and 1/4 capacity vs "
               "original on full capacity (" << grid.size()
            << " base cases)\n";

  exp::parallel_for_index(grid.size(), args.threads, [&](std::size_t idx) {
    const Case& c = grid[idx];
    const ir::Program program = suite::build_benchmark(c.program);
    const exp::Metrics base =
        exp::measure(program, c.base.config, c.tech);

    for (std::uint32_t divisor : {2u, 4u}) {
      cache::CacheConfig small = c.base.config;
      small.capacity_bytes /= divisor;
      if (small.capacity_bytes < small.assoc * small.block_bytes) continue;
      const cache::MemTiming timing = energy::derive_timing(small, c.tech);
      const core::OptimizationResult opt =
          core::optimize_prefetches(program, small, timing);
      const exp::Metrics m = exp::measure(opt.program, small, c.tech);

      Row row;
      row.base_capacity = c.base.config.capacity_bytes;
      row.divisor = divisor;
      row.energy_ratio = m.energy.total_nj() / base.energy.total_nj();
      row.acet_ratio = static_cast<double>(m.run.mem_cycles) /
                       static_cast<double>(base.run.mem_cycles);
      row.wcet_ratio = static_cast<double>(m.tau_wcet) /
                       static_cast<double>(base.tau_wcet);
      const std::lock_guard<std::mutex> lock(mu);
      rows.push_back(row);
    }
  });

  TextTable table({"orig. size", "run at", "cases", "mean energy ratio",
                   "mean ACET ratio", "ACET<=1 cases", "best energy saving"});
  for (std::uint32_t capacity : {512u, 1024u, 2048u, 4096u, 8192u}) {
    for (std::uint32_t divisor : {2u, 4u}) {
      double e = 0, a = 0;
      double best = 1.0;
      std::size_t n = 0, sustain = 0;
      for (const Row& r : rows) {
        if (r.base_capacity != capacity || r.divisor != divisor) continue;
        ++n;
        e += r.energy_ratio;
        a += r.acet_ratio;
        if (r.acet_ratio <= 1.0 + 1e-9) {
          ++sustain;
          best = std::min(best, r.energy_ratio);
        }
      }
      if (n == 0) continue;
      table.add_row({std::to_string(capacity) + " B",
                     "1/" + std::to_string(divisor),
                     std::to_string(n),
                     format_double(e / static_cast<double>(n), 3),
                     format_double(a / static_cast<double>(n), 3),
                     std::to_string(sustain) + "/" + std::to_string(n),
                     bench::pct_improvement(best)});
    }
    table.add_separator();
  }
  table.print(std::cout);
  std::cout << "\n'ACET<=1 cases' with energy ratio < 1 reproduce the "
               "shaded region; the paper reports savings up to 21%.\n";
  return 0;
}
