// Figure 7 — WCET reduction per use case at 32nm (Inequation 12): the
// per-case scatter of tau_w(optimized)/tau_w(original) over all programs
// and all 36 configurations. Theorem 1 demands every single ratio <= 1.

#include <iostream>
#include <map>

#include "bench_common.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace ucp;
  bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::ObsSession obs_session(args);

  std::cout << "Figure 7: per-use-case WCET ratio at 32nm "
               "(Inequation 12)\n\n";
  exp::SweepOptions options = args.sweep();
  options.techs = {energy::TechNode::k32nm};
  const exp::Sweep sweep = exp::run_sweep(options);
  const auto& results = sweep.results;

  // Per-program distribution of ratios over the 36 configurations.
  std::map<std::string, SampleSet> per_program;
  std::size_t violations = 0;
  for (const auto& r : results) {
    per_program[r.program].add(r.wcet_ratio());
    if (r.wcet_ratio() > 1.0 + 1e-9) ++violations;
  }

  TextTable table({"program", "cases", "min ratio", "median", "max ratio"});
  for (const auto& [name, samples] : per_program) {
    table.add_row({name, std::to_string(samples.size()),
                   format_double(samples.min(), 4),
                   format_double(samples.median(), 4),
                   format_double(samples.max(), 4)});
  }
  table.print(std::cout);

  SampleSet all;
  for (const auto& r : results) all.add(r.wcet_ratio());
  std::cout << "\nall " << all.size()
            << " use cases: min " << format_double(all.min(), 4)
            << ", mean " << format_double(all.mean(), 4) << ", max "
            << format_double(all.max(), 4) << "\n";
  std::cout << "Theorem 1 violations (ratio > 1): " << violations
            << (violations == 0 ? "  -- guarantee holds" : "  -- BROKEN")
            << "\n";

  if (args.csv) {
    std::cout << "\ncsv:\nprogram,config,wcet_ratio\n";
    CsvWriter csv(std::cout);
    for (const auto& r : results)
      csv.write_row({r.program, r.config_id,
                     format_double(r.wcet_ratio(), 6)});
  }

  std::cout << "\n";
  sweep.report.print(std::cout);
  return violations == 0 ? 0 : 1;
}
