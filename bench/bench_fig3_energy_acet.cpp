// Figure 3 — impact on energy efficiency: average improvement in memory
// energy, memory ACET and memory WCET per cache size, over the full
// evaluation grid (37 programs x 36 configurations x 2 technologies),
// plus the paper's headline grand averages (-11.2% energy, -10.2% ACET,
// -17.4% WCET in the original).

#include <iostream>

#include "bench_common.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace ucp;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::ObsSession obs_session(args);

  std::cout << "Figure 3: average improvement per cache size "
               "(Inequations 10-12)\n\n";
  const exp::Sweep sweep = exp::run_sweep(args.sweep());
  const auto& results = sweep.results;
  const auto by_size = exp::aggregate_by_size(results);
  const auto grand = exp::aggregate_all(results);

  TextTable table({"cache size", "cases", "energy impr.", "ACET impr.",
                   "WCET impr.", "avg prefetches"});
  for (const exp::SizeAggregate& agg : by_size) {
    table.add_row({std::to_string(agg.capacity_bytes) + " B",
                   std::to_string(agg.cases),
                   bench::pct_improvement(agg.mean_energy_ratio),
                   bench::pct_improvement(agg.mean_acet_ratio),
                   bench::pct_improvement(agg.mean_wcet_ratio),
                   format_double(agg.mean_prefetches, 1)});
  }
  table.print(std::cout);

  std::cout << "\nfull-grid averages over " << grand.cases
            << " use cases:\n"
            << "  energy improvement: "
            << bench::pct_improvement(grand.mean_energy_ratio)
            << "\n  ACET   improvement: "
            << bench::pct_improvement(grand.mean_acet_ratio)
            << "\n  WCET   improvement: "
            << bench::pct_improvement(grand.mean_wcet_ratio)
            << "\n  WCET regressions (must be 0): " << grand.wcet_regressions
            << "\n";

  // The paper selected capacities per program so the pre-optimization miss
  // rate spans 1%..10% (Section 5); our grid is fixed, so the comparable
  // headline is the aggregate over the use cases inside that regime.
  const auto regime = exp::paper_regime(results);
  const auto regime_grand = exp::aggregate_all(regime);
  std::cout << "\npaper-regime averages (pre-optimization miss rate in "
               "1%..10%, "
            << regime_grand.cases << " cases):\n"
            << "  energy improvement: "
            << bench::pct_improvement(regime_grand.mean_energy_ratio)
            << "   (paper: 11.2%)\n"
            << "  ACET   improvement: "
            << bench::pct_improvement(regime_grand.mean_acet_ratio)
            << "   (paper: 10.2%)\n"
            << "  WCET   improvement: "
            << bench::pct_improvement(regime_grand.mean_wcet_ratio)
            << "   (paper: 17.4%)\n";

  const auto reuse = exp::reuse_regime(results);
  const auto reuse_grand = exp::aggregate_all(reuse);
  std::cout << "\nreuse-regime averages (>=1 replaced-block miss on the "
               "WCET path, the technique's structural precondition; "
            << reuse_grand.cases << " cases):\n"
            << "  energy improvement: "
            << bench::pct_improvement(reuse_grand.mean_energy_ratio)
            << "\n  ACET   improvement: "
            << bench::pct_improvement(reuse_grand.mean_acet_ratio)
            << "\n  WCET   improvement: "
            << bench::pct_improvement(reuse_grand.mean_wcet_ratio) << "\n";

  const auto regime_by_size = exp::aggregate_by_size(regime);
  TextTable regime_table({"cache size", "cases", "energy impr.",
                          "ACET impr.", "WCET impr.", "avg prefetches"});
  for (const exp::SizeAggregate& agg : regime_by_size) {
    regime_table.add_row({std::to_string(agg.capacity_bytes) + " B",
                          std::to_string(agg.cases),
                          bench::pct_improvement(agg.mean_energy_ratio),
                          bench::pct_improvement(agg.mean_acet_ratio),
                          bench::pct_improvement(agg.mean_wcet_ratio),
                          format_double(agg.mean_prefetches, 1)});
  }
  if (regime_table.rows() > 0) {
    std::cout << "\npaper-regime breakdown per cache size:\n";
    regime_table.print(std::cout);
  }

  if (args.csv) {
    std::cout << "\ncsv:\nsize_bytes,cases,energy_ratio,acet_ratio,"
                 "wcet_ratio,prefetches\n";
    CsvWriter csv(std::cout);
    for (const exp::SizeAggregate& agg : by_size) {
      csv.write_row({std::to_string(agg.capacity_bytes),
                     std::to_string(agg.cases),
                     format_double(agg.mean_energy_ratio, 5),
                     format_double(agg.mean_acet_ratio, 5),
                     format_double(agg.mean_wcet_ratio, 5),
                     format_double(agg.mean_prefetches, 2)});
    }
  }

  std::cout << "\n";
  sweep.report.print(std::cout);
  // A degraded sweep still prints sound numbers (fallback cases ship the
  // original binary), but the reproduction is only faithful when clean.
  return grand.wcet_regressions == 0 && sweep.report.clean() ? 0 : 1;
}
