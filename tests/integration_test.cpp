// End-to-end tests across the full pipeline: suite program -> lowering ->
// VIVU -> must/may -> IPET -> optimizer -> simulation -> energy, exactly the
// path the paper's evaluation takes for each use case.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "cache/config.hpp"
#include "core/optimizer.hpp"
#include "energy/model.hpp"
#include "exp/harness.hpp"
#include "suite/suite.hpp"

namespace ucp::exp {
namespace {

TEST(Measure, ProducesAllThreeMetrics) {
  const ir::Program p = suite::build_benchmark("crc");
  const Metrics m = measure(p, cache::paper_cache_config("k7").config,
                            energy::TechNode::k32nm);
  EXPECT_GT(m.tau_wcet, 0u);
  EXPECT_GT(m.run.mem_cycles, 0u);
  EXPECT_GT(m.energy.total_nj(), 0.0);
  EXPECT_GT(m.code_bytes, 0u);
  // The WCET bound dominates the concrete run.
  EXPECT_GE(m.tau_wcet, m.run.mem_cycles);
}

TEST(UseCase, RatiosWithinTheoremBounds) {
  const ir::Program p = suite::build_benchmark("fdct");
  const UseCaseResult r = run_use_case(
      p, "fdct", cache::paper_cache_config("k2"), energy::TechNode::k45nm);
  EXPECT_LE(r.wcet_ratio(), 1.0 + 1e-9);  // Theorem 1
  EXPECT_GT(r.wcet_ratio(), 0.0);
  EXPECT_GT(r.instr_ratio(), 0.999);  // prefetches only ever add
  EXPECT_LT(r.instr_ratio(), 1.10);   // and only marginally (Figure 8)
}

TEST(UseCase, OptimizedBinaryStillComputesTheSameResult) {
  const ir::Program p = suite::build_benchmark("matmult");
  const auto& k = cache::paper_cache_config("k3");
  const cache::MemTiming timing =
      energy::derive_timing(k.config, energy::TechNode::k45nm);
  const core::OptimizationResult opt =
      core::optimize_prefetches(p, k.config, timing);
  ASSERT_GT(opt.report.insertions.size(), 0u);  // this case does optimize

  const ir::Layout l0(p, k.config.block_bytes);
  const ir::Layout l1(opt.program, k.config.block_bytes);
  cache::CacheSim c0(k.config, timing), c1(k.config, timing);
  sim::Interpreter i0(p, l0, c0), i1(opt.program, l1, c1);
  i0.run();
  i1.run();
  EXPECT_EQ(i0.data(), i1.data());
}

TEST(Sweep, SmallGridShapes) {
  SweepOptions options;
  options.programs = {"crc", "bs"};
  options.config_stride = 12;  // k1, k13, k25
  options.techs = {energy::TechNode::k45nm};
  options.progress_every = 0;
  const Sweep sweep = run_sweep(options);
  const auto& results = sweep.results;
  ASSERT_EQ(results.size(), 2u * 3u);
  // Deterministic grid order: program-major, then config, then tech.
  EXPECT_EQ(results[0].program, "crc");
  EXPECT_EQ(results[0].config_id, "k1");
  EXPECT_EQ(results[3].program, "bs");
  for (const auto& r : results) {
    EXPECT_LE(r.wcet_ratio(), 1.0 + 1e-9);
    EXPECT_GT(r.original.tau_wcet, 0u);
    EXPECT_EQ(r.outcome, CaseOutcome::kCompleted);
  }
  EXPECT_EQ(sweep.report.total, results.size());
  EXPECT_EQ(sweep.report.completed, results.size());
  EXPECT_TRUE(sweep.report.clean());
  EXPECT_TRUE(sweep.report.quarantine.empty());
}

TEST(Sweep, DeterministicAcrossThreadCounts) {
  SweepOptions a;
  a.programs = {"fdct"};
  a.config_stride = 9;
  a.techs = {energy::TechNode::k32nm};
  a.threads = 1;
  a.progress_every = 0;
  SweepOptions b = a;
  b.threads = 4;
  const auto ra = run_sweep(a).results;
  const auto rb = run_sweep(b).results;
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].original.tau_wcet, rb[i].original.tau_wcet);
    EXPECT_EQ(ra[i].optimized.tau_wcet, rb[i].optimized.tau_wcet);
    EXPECT_EQ(ra[i].original.run.total_cycles, rb[i].original.run.total_cycles);
  }
}

TEST(Aggregate, BySizeCoversAllCapacities) {
  SweepOptions options;
  options.programs = {"crc"};
  options.techs = {energy::TechNode::k45nm};
  options.progress_every = 0;
  const auto results = run_sweep(options).results;
  const auto by_size = aggregate_by_size(results);
  ASSERT_EQ(by_size.size(), 6u);
  std::size_t total = 0;
  for (const auto& agg : by_size) {
    EXPECT_EQ(agg.cases, 6u);  // 6 configs per capacity, 1 tech
    total += agg.cases;
  }
  EXPECT_EQ(total, results.size());
}

TEST(Aggregate, GrandMeansAndRegressions) {
  SweepOptions options;
  options.programs = {"fdct", "fir"};
  options.config_stride = 6;
  options.progress_every = 0;
  const auto results = run_sweep(options).results;
  const auto grand = aggregate_all(results);
  EXPECT_EQ(grand.cases, results.size());
  EXPECT_EQ(grand.wcet_regressions, 0u);
  EXPECT_LE(grand.mean_wcet_ratio, 1.0 + 1e-9);
  EXPECT_GE(grand.max_instr_ratio, 1.0);
}


namespace {

/// Two hand-made memo rows (bs/k1 at both technologies) for cache tests.
std::vector<UseCaseResult> fake_memo_rows() {
  std::vector<UseCaseResult> rows(2);
  rows[0].program = "bs";
  rows[0].config_id = "k1";
  rows[0].config = cache::paper_cache_config("k1").config;
  rows[0].tech = energy::TechNode::k45nm;
  rows[0].original.tau_wcet = 100;
  rows[0].original.run.mem_cycles = 80;
  rows[0].original.run.instructions = 50;
  rows[0].original.energy.cache_dynamic_nj = 12.5;
  rows[0].original.run.cache.fetches = 50;
  rows[0].original.run.cache.misses = 5;
  rows[0].original.run.total_cycles = 200;
  rows[0].optimized.tau_wcet = 90;
  rows[0].optimized.run.mem_cycles = 75;
  rows[0].optimized.run.instructions = 50;
  rows[0].optimized.energy.cache_dynamic_nj = 11.5;
  rows[0].optimized.run.cache.fetches = 50;
  rows[0].optimized.run.cache.misses = 4;
  rows[0].optimized.run.total_cycles = 190;
  rows[0].report.insertions.resize(2);
  rows[0].report.candidates_found = 7;
  rows[1] = rows[0];
  rows[1].tech = energy::TechNode::k32nm;
  rows[1].original.tau_wcet = 110;
  rows[1].optimized.tau_wcet = 95;
  rows[1].report.insertions.resize(1);
  rows[1].report.candidates_found = 3;
  return rows;
}

}  // namespace

TEST(SweepMemo, SaveLoadRoundTrip) {
  const std::string path = "test_sweep_memo.csv";
  std::remove(path.c_str());

  SweepOptions compute;
  compute.programs = {};  // full program set is required for persistence
  compute.config_stride = 1;
  compute.techs = {energy::TechNode::k45nm, energy::TechNode::k32nm};
  compute.progress_every = 0;
  compute.cache_path = path;
  // Shrink the grid via a focused stand-in: writing the full sweep here
  // would be too slow for a unit test, so exercise load() on a saved
  // file through the public API instead: first verify that a *partial*
  // sweep does NOT poison the memo...
  SweepOptions partial = compute;
  partial.programs = {"bs"};
  const Sweep partial_sweep = run_sweep(partial);
  EXPECT_FALSE(partial_sweep.results.empty());
  std::ifstream probe(path);
  EXPECT_FALSE(probe.good()) << "partial sweeps must not be memoized";

  // ...then that a saved memo round-trips through load+filter.
  ASSERT_TRUE(save_sweep_cache(path, fake_memo_rows()).ok());
  SweepOptions load = compute;
  load.techs = {energy::TechNode::k32nm};
  const Sweep loaded_sweep = run_sweep(load);
  EXPECT_TRUE(loaded_sweep.report.cache_hit);
  const auto& loaded = loaded_sweep.results;
  ASSERT_EQ(loaded.size(), 1u);  // filtered to 32nm
  EXPECT_EQ(loaded[0].program, "bs");
  EXPECT_EQ(loaded[0].original.tau_wcet, 110u);
  EXPECT_EQ(loaded[0].report.insertions.size(), 1u);
  EXPECT_EQ(loaded[0].report.candidates_found, 3u);
  EXPECT_NEAR(loaded[0].wcet_ratio(), 95.0 / 110.0, 1e-12);
  std::remove(path.c_str());
}

TEST(Regimes, FiltersSelectCorrectCases) {
  std::vector<UseCaseResult> results(3);
  results[0].original.run.cache.fetches = 1000;
  results[0].original.run.cache.misses = 50;  // 5%: in paper regime
  results[0].report.candidates_found = 4;
  results[1].original.run.cache.fetches = 1000;
  results[1].original.run.cache.misses = 2;  // 0.2%: out
  results[1].report.candidates_found = 0;
  results[2].original.run.cache.fetches = 1000;
  results[2].original.run.cache.misses = 400;  // 40%: out (thrash)
  results[2].report.candidates_found = 9;

  EXPECT_EQ(paper_regime(results).size(), 1u);
  EXPECT_EQ(reuse_regime(results).size(), 2u);
}

TEST(ParallelForIndex, VisitsEachIndexOnce) {
  std::vector<std::atomic<int>> hits(100);
  for (auto& h : hits) h = 0;
  parallel_for_index(100, 4, [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForIndex, RethrowsWorkerExceptionOnCaller) {
  // An exception escaping `fn` on a worker thread must not terminate the
  // process; the first one surfaces on the calling thread after the pool
  // drains.
  EXPECT_THROW(parallel_for_index(64, 4,
                                  [&](std::size_t i) {
                                    if (i == 17)
                                      throw std::runtime_error("boom");
                                  }),
               std::runtime_error);
}

}  // namespace
}  // namespace ucp::exp
