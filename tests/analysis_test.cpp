#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "analysis/cache_analysis.hpp"
#include "analysis/context_graph.hpp"
#include "analysis/domain.hpp"
#include "analysis/persistence.hpp"
#include "ir/builder.hpp"
#include "ir/layout.hpp"

namespace ucp::analysis {
namespace {

using ir::Cond;
using ir::IrBuilder;
using ir::R;

// ---------------------------------------------------------------------------
// Abstract domain
// ---------------------------------------------------------------------------

TEST(AbstractSet, MustUpdateOnMissAgesEverything) {
  AbstractSet s(2);
  s.update_must(10);  // age 0
  s.update_must(20);  // 10 -> age 1, 20 -> age 0
  EXPECT_EQ(s.age_of(10), 1);
  EXPECT_EQ(s.age_of(20), 0);
  s.update_must(30);  // 10 evicted
  EXPECT_FALSE(s.contains(10));
  EXPECT_EQ(s.age_of(20), 1);
  EXPECT_EQ(s.age_of(30), 0);
}

TEST(AbstractSet, MustUpdateOnHitOnlyAgesYounger) {
  AbstractSet s(4);
  s.update_must(1);
  s.update_must(2);
  s.update_must(3);  // ages: 3->0, 2->1, 1->2
  s.update_must(1);  // hit at age 2: 3 and 2 age by one, 1 -> 0
  EXPECT_EQ(s.age_of(1), 0);
  EXPECT_EQ(s.age_of(3), 1);
  EXPECT_EQ(s.age_of(2), 2);
}

TEST(AbstractSet, MustJoinIsIntersectionWithMaxAge) {
  AbstractSet a(4), b(4);
  a.update_must(1);
  a.update_must(2);  // a: 2@0, 1@1
  b.update_must(3);
  b.update_must(1);  // b: 1@0, 3@1
  const AbstractSet j = AbstractSet::join_must(a, b);
  EXPECT_EQ(j.size(), 1u);        // only block 1 in both
  EXPECT_EQ(j.age_of(1), 1);      // max(1, 0)
  EXPECT_FALSE(j.contains(2));
  EXPECT_FALSE(j.contains(3));
}

TEST(AbstractSet, MayJoinIsUnionWithMinAge) {
  AbstractSet a(4), b(4);
  a.update_may(1);
  a.update_may(2);
  b.update_may(3);
  b.update_may(1);
  const AbstractSet j = AbstractSet::join_may(a, b);
  EXPECT_EQ(j.size(), 3u);
  EXPECT_EQ(j.age_of(1), 0);  // min(1, 0)
  EXPECT_TRUE(j.contains(2));
  EXPECT_TRUE(j.contains(3));
}

TEST(AbstractSet, MayUpdateAgesSameAgePeers) {
  AbstractSet s(2);
  s.update_may(1);
  // Merge in a peer at the same age via join.
  AbstractSet t(2);
  t.update_may(2);
  AbstractSet j = AbstractSet::join_may(s, t);  // both @0
  j.update_may(1);  // 1 -> 0; 2 shared age 0 -> pushed to 1
  EXPECT_EQ(j.age_of(1), 0);
  EXPECT_EQ(j.age_of(2), 1);
}

TEST(AbstractSet, MustEvictionBoundary) {
  // Property: a must-set never holds more than assoc blocks, and repeated
  // distinct accesses cycle everything out.
  for (std::uint8_t assoc : {1, 2, 4, 8}) {
    AbstractSet s(assoc);
    for (MemBlockId b = 0; b < 20; ++b) {
      s.update_must(b);
      EXPECT_LE(s.size(), static_cast<std::size_t>(assoc));
    }
    EXPECT_TRUE(s.contains(19));
    EXPECT_FALSE(s.contains(19 - assoc));
  }
}

TEST(AbstractCache, SetSelection) {
  const cache::CacheConfig config{2, 16, 256};  // 8 sets
  AbstractCache c(config);
  c.update_must(3);
  c.update_must(11);  // same set (11 % 8 == 3)
  EXPECT_TRUE(c.must_contain(3));
  EXPECT_TRUE(c.must_contain(11));
  EXPECT_EQ(c.set_for_block(3).age_of(3), 1);
  EXPECT_EQ(c.set_for_block(11).age_of(11), 0);
  c.update_must(19);  // third conflicting block evicts 3
  EXPECT_FALSE(c.must_contain(3));
}

TEST(AbstractCache, JoinRejectsDifferentGeometry) {
  AbstractCache a(cache::CacheConfig{2, 16, 256});
  AbstractCache b(cache::CacheConfig{2, 16, 512});
  EXPECT_THROW(AbstractCache::join_must(a, b), InvalidArgument);
}

// ---------------------------------------------------------------------------
// VIVU context graph
// ---------------------------------------------------------------------------

TEST(ContextGraph, StraightLineIsTrivial) {
  IrBuilder b("straight");
  b.movi(R(1), 1);
  b.halt();
  const ir::Program p = b.take();
  const ContextGraph g(p);
  EXPECT_EQ(g.num_nodes(), 1u);
  EXPECT_TRUE(g.edges().empty());
  EXPECT_EQ(g.exit_nodes().size(), 1u);
  EXPECT_TRUE(g.loop_instances().empty());
}

TEST(ContextGraph, SingleLoopPeelsFirstAndRest) {
  IrBuilder b("loop");
  b.for_range(R(1), 0, 5, [&] { b.nop(); });
  b.halt();
  const ir::Program p = b.take();
  const ContextGraph g(p);

  ASSERT_EQ(g.loop_instances().size(), 1u);
  const LoopInstance& inst = g.loop_instances()[0];
  EXPECT_EQ(inst.bound, 6u);
  EXPECT_NE(inst.first_node, kInvalidNode);
  EXPECT_NE(inst.rest_node, kInvalidNode);
  EXPECT_NE(inst.first_node, inst.rest_node);
  // first and rest instances of the header share the basic block.
  EXPECT_EQ(g.node(inst.first_node).block, g.node(inst.rest_node).block);
  EXPECT_FALSE(g.node(inst.first_node).ctx.back().rest);
  EXPECT_TRUE(g.node(inst.rest_node).ctx.back().rest);
}

TEST(ContextGraph, BoundOneLoopHasNoRestInstance) {
  IrBuilder b("once");
  b.do_while(1, [&] { b.nop(); }, Cond::kLt, R(1), R(0));
  b.halt();
  const ir::Program p = b.take();
  const ContextGraph g(p);
  ASSERT_EQ(g.loop_instances().size(), 1u);
  EXPECT_EQ(g.loop_instances()[0].rest_node, kInvalidNode);
}

TEST(ContextGraph, NestedLoopsComposeContexts) {
  IrBuilder b("nest");
  b.for_range(R(1), 0, 3, [&] {
    b.for_range(R(2), 0, 4, [&] { b.nop(); });
  });
  b.halt();
  const ir::Program p = b.take();
  const ContextGraph g(p);
  // outer first/rest, and inner first/rest within each -> 4 inner header
  // instances; loop_instances: 1 outer + 2 inner (per outer context).
  std::size_t inner = 0, outer = 0;
  for (const LoopInstance& inst : g.loop_instances()) {
    if (inst.parent_ctx.empty())
      ++outer;
    else
      ++inner;
  }
  EXPECT_EQ(outer, 1u);
  EXPECT_EQ(inner, 2u);
  // Max context depth is 2.
  std::size_t max_depth = 0;
  for (const CgNode& n : g.nodes()) max_depth = std::max(max_depth, n.ctx.size());
  EXPECT_EQ(max_depth, 2u);
}

TEST(ContextGraph, OnlyRestBackEdgesAreCyclic) {
  IrBuilder b("cyc");
  b.for_range(R(1), 0, 5, [&] { b.nop(); });
  b.halt();
  const ir::Program p = b.take();
  const ContextGraph g(p);
  std::size_t back = 0;
  for (const CgEdge& e : g.edges()) {
    if (e.back) {
      ++back;
      // back edges stay within REST contexts
      EXPECT_TRUE(g.node(e.to).ctx.back().rest);
      EXPECT_TRUE(g.node(e.from).ctx.back().rest);
    }
  }
  EXPECT_EQ(back, 1u);
  // Topological order covers all nodes (acyclic without back edges).
  EXPECT_EQ(g.topo_order().size(), g.num_nodes());
}

TEST(ContextGraph, BranchesShareContext) {
  IrBuilder b("br");
  b.for_range(R(1), 0, 3, [&] {
    b.if_then_else(Cond::kEq, R(1), R(2), [&] { b.nop(); },
                   [&] { b.nop(); });
  });
  b.halt();
  const ir::Program p = b.take();
  const ContextGraph g(p);
  // Every block of the loop body must exist in both FIRST and REST.
  std::map<ir::BlockId, std::set<bool>> seen;
  for (const CgNode& n : g.nodes())
    if (!n.ctx.empty()) seen[n.block].insert(n.ctx.back().rest);
  for (const auto& [block, variants] : seen)
    EXPECT_EQ(variants.size(), 2u) << "bb" << block;
}

// ---------------------------------------------------------------------------
// Must/may classification
// ---------------------------------------------------------------------------

const cache::CacheConfig kConfig{2, 16, 256};

TEST(CacheAnalysis, StraightLineFirstAccessMissesThenHits) {
  IrBuilder b("cls");
  for (int i = 0; i < 4; ++i) b.nop();  // one 16-byte block
  b.halt();
  const ir::Program p = b.take();
  const ir::Layout layout(p, kConfig.block_bytes);
  const ContextGraph g(p);
  const CacheAnalysisResult r = analyze_cache(g, layout, kConfig);

  EXPECT_EQ(r.classify(0, 0), Classification::kAlwaysMiss);  // cold
  for (std::size_t i = 1; i < 4; ++i)
    EXPECT_EQ(r.classify(0, i), Classification::kAlwaysHit);
}

TEST(CacheAnalysis, LoopBodyFirstMissRestHit) {
  IrBuilder b("loopcls");
  b.for_range(R(1), 0, 10, [&] { b.nops(6); });
  b.halt();
  const ir::Program p = b.take();
  const ir::Layout layout(p, kConfig.block_bytes);
  const ContextGraph g(p);
  const CacheAnalysisResult r = analyze_cache(g, layout, kConfig);

  // In REST contexts everything fits the cache: no always-miss left.
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (g.node(v).ctx.empty() || !g.node(v).ctx.back().rest) continue;
    for (std::size_t i = 0; i < r.per_node[v].size(); ++i)
      EXPECT_EQ(r.classify(v, i), Classification::kAlwaysHit)
          << "node " << v << " instr " << i;
  }
  // And the FIRST iteration has at least one cold miss.
  std::size_t first_misses = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (g.node(v).ctx.empty() || g.node(v).ctx.back().rest) continue;
    for (std::size_t i = 0; i < r.per_node[v].size(); ++i)
      if (r.classify(v, i) == Classification::kAlwaysMiss) ++first_misses;
  }
  EXPECT_GT(first_misses, 0u);
}

TEST(CacheAnalysis, ConflictingLoopBodyStaysMissing) {
  // Loop body bigger than the whole cache: REST context still misses.
  IrBuilder b("big");
  b.for_range(R(1), 0, 5, [&] { b.nops(80); });  // 80*4 = 320B > 256B
  b.halt();
  const ir::Program p = b.take();
  const cache::CacheConfig direct{1, 16, 256};
  const ir::Layout layout(p, direct.block_bytes);
  const ContextGraph g(p);
  const CacheAnalysisResult r = analyze_cache(g, layout, direct);

  std::uint64_t rest_misses = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (g.node(v).ctx.empty() || !g.node(v).ctx.back().rest) continue;
    for (std::size_t i = 0; i < r.per_node[v].size(); ++i)
      if (r.classify(v, i) != Classification::kAlwaysHit) ++rest_misses;
  }
  EXPECT_GT(rest_misses, 0u);
}

TEST(CacheAnalysis, BranchDependentReuseIsNotClassified) {
  // In a loop whose body branches over conflicting code, a re-accessed
  // block can be cached on one incoming path and evicted on the other:
  // it must come out neither always-hit nor always-miss.
  IrBuilder b("joincls");
  b.for_range(R(1), 0, 6, [&] {
    b.if_then_else(
        Cond::kEq, R(1), R(0),
        [&] { b.nops(40); },  // 160B of conflicting code on this path only
        [&] { b.nop(); });
  });
  b.halt();
  const ir::Program p = b.take();
  const cache::CacheConfig tiny{1, 16, 128};  // 8 sets, direct-mapped
  const ir::Layout layout(p, tiny.block_bytes);
  const ContextGraph g(p);
  const CacheAnalysisResult r = analyze_cache(g, layout, tiny);
  EXPECT_GT(r.count(Classification::kNotClassified), 0u);
}

TEST(CacheAnalysis, PrefetchInstallsTargetInMust) {
  IrBuilder b("pfmust");
  b.nops(4);  // block 0
  b.nops(4);  // block 1
  b.halt();
  ir::Program p = b.take();
  // Prefetch block 2's first instruction (the halt block) from the start.
  const ir::InstrId target = p.block(p.entry()).instrs[8].id;
  ir::Instruction pf;
  pf.op = ir::Opcode::kPrefetch;
  pf.pf_target = target;
  p.insert(p.entry(), 1, pf);

  const ir::Layout layout(p, kConfig.block_bytes);
  const ContextGraph g(p);
  const CacheAnalysisResult r = analyze_cache(g, layout, kConfig);
  // The target instruction's fetch must now be always-hit.
  const auto loc = p.locate(target);
  EXPECT_EQ(r.classify(0, loc.index), Classification::kAlwaysHit);
}

TEST(CacheAnalysis, StateAccessorsBoundsChecked) {
  IrBuilder b("bounds");
  b.nop();
  b.halt();
  const ir::Program p = b.take();
  const ir::Layout layout(p, kConfig.block_bytes);
  const ContextGraph g(p);
  const CacheAnalysisResult r = analyze_cache(g, layout, kConfig);
  EXPECT_THROW(r.classify(99, 0), InvalidArgument);
  EXPECT_THROW(r.classify(0, 99), InvalidArgument);
  EXPECT_NO_THROW(r.state_in(0));
  EXPECT_NO_THROW(r.state_out(0));
}


// ---------------------------------------------------------------------------
// Persistence analysis (first-miss classification)
// ---------------------------------------------------------------------------

TEST(Persistence, FittingLoopBodyIsPersistent) {
  IrBuilder b("fit");
  b.for_range(R(1), 0, 10, [&] { b.nops(8); });
  b.halt();
  const ir::Program p = b.take();
  const ir::Layout layout(p, kConfig.block_bytes);
  const ContextGraph g(p);
  const PersistenceResult r = analyze_persistence(g, p, layout, kConfig);
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    for (std::size_t i = 0; i < r.per_node[v].size(); ++i)
      EXPECT_TRUE(r.persistent(v, i)) << "node " << v << " instr " << i;
}

TEST(Persistence, ThrashingLoopBodyIsNot) {
  IrBuilder b("thrash");
  b.for_range(R(1), 0, 10, [&] { b.nops(80); });  // 320B on a 256B cache
  b.halt();
  const ir::Program p = b.take();
  const cache::CacheConfig direct{1, 16, 256};
  const ir::Layout layout(p, direct.block_bytes);
  const ContextGraph g(p);
  const PersistenceResult r = analyze_persistence(g, p, layout, direct);
  std::size_t non_persistent = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    for (std::size_t i = 0; i < r.per_node[v].size(); ++i)
      if (!r.persistent(v, i)) ++non_persistent;
  EXPECT_GT(non_persistent, 0u);
}

TEST(Persistence, GainIsNonNegativeAndBounded) {
  IrBuilder b("gain");
  b.for_range(R(1), 0, 6, [&] {
    b.if_then_else(
        Cond::kEq, R(1), R(0), [&] { b.nops(40); }, [&] { b.nop(); });
  });
  b.halt();
  const ir::Program p = b.take();
  const cache::CacheConfig tiny{1, 16, 128};
  const ir::Layout layout(p, tiny.block_bytes);
  const ContextGraph g(p);
  const std::size_t gain = persistence_gain(g, p, layout, tiny);
  std::size_t total = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    total += p.block(g.node(v).block).instrs.size();
  EXPECT_LE(gain, total);
}

TEST(Persistence, BoundsChecked) {
  IrBuilder b("pb");
  b.nop();
  b.halt();
  const ir::Program p = b.take();
  const ir::Layout layout(p, kConfig.block_bytes);
  const ContextGraph g(p);
  const PersistenceResult r = analyze_persistence(g, p, layout, kConfig);
  EXPECT_THROW(r.persistent(99, 0), InvalidArgument);
}

// ---------------------------------------------------------------------------
// SCC decomposition (the sparse fixpoint's driver structure)
// ---------------------------------------------------------------------------

// Nested loops give a graph with real (REST) cycles next to trivial nodes —
// the shape every invariant below has to hold on.
ir::Program nested_loop_program() {
  IrBuilder b("scc");
  b.for_range(R(1), 0, 5, [&] {
    b.nops(2);
    b.for_range(R(2), 0, 3, [&] { b.nop(); });
  });
  b.halt();
  return b.take();
}

TEST(ContextGraph, SccNumberingIsCondensationTopological) {
  const ContextGraph g(nested_loop_program());
  ASSERT_GT(g.scc_count(), 0u);

  // Every edge respects the condensation order; only back edges may close
  // a cycle, and they must stay inside one SCC.
  for (const CgEdge& e : g.edges()) {
    EXPECT_LE(g.scc_of(e.from), g.scc_of(e.to));
    if (e.back) EXPECT_EQ(g.scc_of(e.from), g.scc_of(e.to));
  }

  // scc_order/scc_begin partition the node set: each slice holds exactly
  // the nodes of its SCC, sorted by topo position (the intra-SCC worklist
  // priority), and every node appears exactly once.
  ASSERT_EQ(g.scc_begin().size(), g.scc_count() + 1);
  EXPECT_EQ(g.scc_begin().front(), 0u);
  EXPECT_EQ(g.scc_begin().back(), g.num_nodes());
  EXPECT_EQ(g.scc_order().size(), g.num_nodes());
  std::set<NodeId> seen;
  for (std::uint32_t s = 0; s < g.scc_count(); ++s) {
    for (std::uint32_t i = g.scc_begin()[s]; i < g.scc_begin()[s + 1]; ++i) {
      const NodeId v = g.scc_order()[i];
      EXPECT_EQ(g.scc_of(v), s);
      EXPECT_TRUE(seen.insert(v).second);
      if (i > g.scc_begin()[s])
        EXPECT_LT(g.topo_pos(g.scc_order()[i - 1]), g.topo_pos(v));
    }
  }
  EXPECT_EQ(seen.size(), g.num_nodes());

  // scc_trivial iff single member without a self edge.
  for (std::uint32_t s = 0; s < g.scc_count(); ++s) {
    const std::uint32_t size = g.scc_begin()[s + 1] - g.scc_begin()[s];
    if (g.scc_trivial(s)) EXPECT_EQ(size, 1u);
  }

  // A nested-bound-5/bound-3 loop nest must produce at least one
  // non-trivial SCC (the REST instances), or the sparse driver would never
  // exercise its local-iteration path here.
  bool saw_cycle = false;
  for (std::uint32_t s = 0; s < g.scc_count(); ++s)
    saw_cycle |= !g.scc_trivial(s);
  EXPECT_TRUE(saw_cycle);
}

TEST(ContextGraph, AcyclicGraphHasOnlyTrivialSccs) {
  IrBuilder b("dag");
  b.nops(2);
  b.if_then_else(Cond::kEq, R(1), R(2), [&] { b.nop(); }, [&] { b.nops(2); });
  b.halt();
  const ContextGraph g(b.take());
  EXPECT_EQ(g.scc_count(), g.num_nodes());
  for (std::uint32_t s = 0; s < g.scc_count(); ++s)
    EXPECT_TRUE(g.scc_trivial(s));
  // With every SCC a singleton, condensation order degenerates to a strict
  // topological order on nodes.
  for (const CgEdge& e : g.edges())
    EXPECT_LT(g.scc_of(e.from), g.scc_of(e.to));
}

// ---------------------------------------------------------------------------
// Copy-on-write abstract cache states (the hash-consing substrate)
// ---------------------------------------------------------------------------

TEST(AbstractCache, CopySharesStorageUntilFirstWrite) {
  AbstractCache a(kConfig);
  a.update_must(3);
  a.update_may(7);

  AbstractCache b = a;  // refcount bump, no clone
  EXPECT_TRUE(a.shares_storage_with(b));
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.content_hash(), b.content_hash());

  b.update_must(11);  // detach: writer clones, reader keeps its payload
  EXPECT_FALSE(a.shares_storage_with(b));
  EXPECT_TRUE(b.must_contain(11));
  EXPECT_FALSE(a.must_contain(11));
  EXPECT_TRUE(a.must_contain(3));

  // Divergent content shows up in the interner's key; re-equal content
  // compares equal again even without shared storage.
  EXPECT_NE(a, b);
  AbstractCache c(kConfig);
  c.update_must(3);
  c.update_may(7);
  EXPECT_FALSE(a.shares_storage_with(c));
  EXPECT_EQ(a, c);
  EXPECT_EQ(a.content_hash(), c.content_hash());
}

TEST(AbstractCache, SharedPayloadJoinIsIdentityFastPath) {
  AbstractCache a(kConfig);
  a.update_must(1);
  a.update_must(2);
  AbstractCache b = a;
  // join(x, x) = x: the pointer fast path must report "unchanged" and must
  // not detach either side.
  EXPECT_FALSE(b.join_must_with(a));
  EXPECT_FALSE(b.join_may_with(a));
  EXPECT_TRUE(a.shares_storage_with(b));

  // The same join through an equal-but-unshared state is still a no-op on
  // content (lfp independence of sharing), just without the O(1) witness.
  AbstractCache c(kConfig);
  c.update_must(1);
  c.update_must(2);
  EXPECT_FALSE(b.join_must_with(c));
  EXPECT_EQ(b, a);
}

}  // namespace
}  // namespace ucp::analysis
