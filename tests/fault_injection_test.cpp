// Failure-containment property tests: arm every registered fault site in
// turn and assert the sweep survives — no crash, no silent wrong numbers.
// A compute-path fault quarantines exactly the affected use case(s); a
// degraded case ships the original binary, so its metrics equal the
// baseline and Theorem 1 holds trivially (wcet_ratio == 1).

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "cache/config.hpp"
#include "energy/model.hpp"
#include "exp/harness.hpp"
#include "fuzz/oracles.hpp"
#include "fuzz/shrink.hpp"
#include "gen/generator.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/sink.hpp"
#include "ir/text_codec.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "suite/suite.hpp"
#include "support/fault_injection.hpp"
#include "support/rng.hpp"

namespace ucp::exp {
namespace {

SweepOptions small_sweep() {
  SweepOptions options;
  // fdct/k1 evaluates optimizer candidates, so the grid reaches every
  // compute-path site (core.reanalyze fires only during a candidate
  // re-analysis); bs never optimizes and covers the no-candidate path.
  options.programs = {"bs", "fdct"};
  options.config_stride = 12;  // k1, k13, k25
  options.techs = {energy::TechNode::k45nm};
  options.threads = 1;  // deterministic: the fault hits the first use case
  options.progress_every = 0;
  return options;
}

/// Sites on the per-use-case compute path: a one-shot fault here must
/// quarantine a case. (Cache I/O sites are exercised in harness_test.)
const std::vector<std::string> kComputeSites = {
    "ilp.pivot",     "ilp.bb_node",   "sim.step",  "wcet.solve",
    "core.reanalyze", "core.deadline", "exp.measure", "exp.task",
};

TEST(FaultSweep, EveryComputeSiteIsContained) {
  for (const std::string& site : kComputeSites) {
    SCOPED_TRACE("site = " + site);
    fault::disarm_all();
    fault::arm(site);
    const Sweep sweep = run_sweep(small_sweep());
    fault::disarm_all();

    // The sweep completes with every grid point accounted for.
    ASSERT_EQ(sweep.results.size(), 2u * 3u);
    EXPECT_EQ(sweep.report.total, sweep.results.size());
    EXPECT_EQ(sweep.report.completed + sweep.report.degraded +
                  sweep.report.failed,
              sweep.report.total);

    // Exactly the faulted case(s) are quarantined, and they are visible.
    EXPECT_GE(sweep.report.degraded + sweep.report.failed, 1u)
        << "fault at " << site << " was swallowed silently";
    EXPECT_FALSE(sweep.report.clean());
    EXPECT_EQ(sweep.report.quarantine.size(),
              sweep.report.degraded + sweep.report.failed);
    for (const DegradedCase& q : sweep.report.quarantine) {
      EXPECT_FALSE(q.stage.empty());
      EXPECT_NE(q.code, ErrorCode::kOk);
    }

    // Degraded cases fell back to the original binary: identical metrics,
    // neutral ratios, no claimed insertions. Theorem 1 holds trivially.
    for (const UseCaseResult& r : sweep.results) {
      if (r.outcome != CaseOutcome::kDegraded) continue;
      EXPECT_EQ(r.optimized.tau_wcet, r.original.tau_wcet);
      EXPECT_EQ(r.optimized.run.mem_cycles, r.original.run.mem_cycles);
      EXPECT_DOUBLE_EQ(r.wcet_ratio(), 1.0);
      EXPECT_DOUBLE_EQ(r.acet_ratio(), 1.0);
      EXPECT_TRUE(r.report.insertions.empty());
      EXPECT_NE(r.fail_code, ErrorCode::kOk);
    }
    // Failed cases have no baseline: every ratio is degenerate and flagged.
    for (const UseCaseResult& r : sweep.results) {
      if (r.outcome != CaseOutcome::kFailed) continue;
      EXPECT_TRUE(r.any_degenerate_ratio());
    }
    // The untouched cases are unaffected by the neighbour's fault.
    for (const UseCaseResult& r : sweep.results) {
      if (r.outcome != CaseOutcome::kCompleted) continue;
      EXPECT_GT(r.original.tau_wcet, 0u);
      EXPECT_LE(r.wcet_ratio(), 1.0 + 1e-9);
    }
  }
}

TEST(FaultSweep, FaultFreeRerunIsClean) {
  fault::disarm_all();
  const Sweep sweep = run_sweep(small_sweep());
  EXPECT_TRUE(sweep.report.clean());
  EXPECT_EQ(sweep.report.completed, sweep.report.total);
}

TEST(FaultUseCase, ReanalysisFaultDegradesToIdentity) {
  // Theorem-1 fallback, single use case: a mid-optimization analysis
  // failure ships the unmodified input program. fdct/k2 is a use case that
  // evaluates (and accepts) candidates, so the re-analysis site is reached.
  const ir::Program p = suite::build_benchmark("fdct");
  const auto& k = cache::paper_cache_config("k2");
  fault::disarm_all();

  const UseCaseResult healthy =
      run_use_case(p, "fdct", k, energy::TechNode::k32nm);
  ASSERT_EQ(healthy.outcome, CaseOutcome::kCompleted);

  fault::ScopedFault f("core.reanalyze");
  const UseCaseResult faulted =
      run_use_case(p, "fdct", k, energy::TechNode::k32nm);
  ASSERT_EQ(faulted.outcome, CaseOutcome::kDegraded);
  EXPECT_EQ(faulted.fail_stage, "optimize");
  EXPECT_EQ(faulted.fail_code, ErrorCode::kAnalysisFailed);
  // Baseline measurement is unaffected by the optimizer fault...
  EXPECT_EQ(faulted.original.tau_wcet, healthy.original.tau_wcet);
  // ...and the shipped binary is the baseline itself.
  EXPECT_EQ(faulted.optimized.tau_wcet, faulted.original.tau_wcet);
  EXPECT_DOUBLE_EQ(faulted.wcet_ratio(), 1.0);
  EXPECT_TRUE(faulted.report.insertions.empty());
}

TEST(FaultUseCase, DeadlineFaultReportsDeadlineExceeded) {
  const ir::Program p = suite::build_benchmark("bs");
  const auto& k = cache::paper_cache_config("k1");
  fault::ScopedFault f("core.deadline");
  const UseCaseResult r = run_use_case(p, "bs", k, energy::TechNode::k45nm);
  EXPECT_EQ(r.outcome, CaseOutcome::kDegraded);
  EXPECT_EQ(r.fail_code, ErrorCode::kDeadlineExceeded);
  EXPECT_DOUBLE_EQ(r.wcet_ratio(), 1.0);
}

TEST(FaultUseCase, MeasureFaultOnBaselineFailsTheCase) {
  const ir::Program p = suite::build_benchmark("bs");
  const auto& k = cache::paper_cache_config("k1");
  fault::ScopedFault f("exp.measure");
  const UseCaseResult r = run_use_case(p, "bs", k, energy::TechNode::k45nm);
  EXPECT_EQ(r.outcome, CaseOutcome::kFailed);
  EXPECT_EQ(r.fail_stage, "measure_original");
  EXPECT_EQ(r.fail_code, ErrorCode::kFaultInjected);
  EXPECT_TRUE(r.any_degenerate_ratio());
}

TEST(FaultUseCase, MeasureFaultOnOptimizedBinaryDegrades) {
  // Skip the baseline measurement; the second measure (of the optimized
  // binary) hits the fault, and the case falls back to the baseline.
  const ir::Program p = suite::build_benchmark("crc");
  const auto& k = cache::paper_cache_config("k7");
  fault::disarm_all();
  fault::arm("exp.measure", /*skip=*/1);
  const UseCaseResult r = run_use_case(p, "crc", k, energy::TechNode::k32nm);
  fault::disarm_all();
  EXPECT_EQ(r.outcome, CaseOutcome::kDegraded);
  EXPECT_EQ(r.fail_stage, "measure_optimized");
  EXPECT_GT(r.original.tau_wcet, 0u);
  EXPECT_DOUBLE_EQ(r.wcet_ratio(), 1.0);
}

TEST(FaultLadder, TransientFaultIsRecoveredByTheEscalatedRetry) {
  // One-shot fault on the first attempt; the escalated second rung runs
  // clean and completes. The row records the recovery: two attempts,
  // degradation level 1, not quarantined.
  fault::disarm_all();
  SweepOptions options = small_sweep();
  options.max_attempts = 3;
  fault::arm("core.reanalyze");
  const Sweep sweep = run_sweep(options);
  fault::disarm_all();
  EXPECT_TRUE(sweep.report.clean());
  std::uint32_t recovered = 0;
  for (const UseCaseResult& r : sweep.results) {
    if (r.attempts == 1) {
      EXPECT_EQ(r.degradation_level, 0u);
      continue;
    }
    ++recovered;
    EXPECT_EQ(r.attempts, 2u);
    EXPECT_EQ(r.degradation_level, 1u);
    EXPECT_EQ(r.outcome, CaseOutcome::kCompleted);
  }
  EXPECT_EQ(recovered, 1u) << "exactly the faulted case retries";
}

TEST(FaultLadder, PersistentFaultExhaustsToIdentityFallback) {
  // The fault fires on the first *and* the escalated attempt; the terminal
  // rung ships the identity transform. The row is degraded — never failed —
  // with three attempts, degradation level 2, the original cause, and the
  // fallback marked in the detail. Theorem 1 holds trivially.
  fault::disarm_all();
  SweepOptions options = small_sweep();
  options.max_attempts = 3;
  fault::arm("core.reanalyze", /*skip=*/0, /*shots=*/2);
  const Sweep sweep = run_sweep(options);
  fault::disarm_all();
  std::uint32_t fallbacks = 0;
  for (const UseCaseResult& r : sweep.results) {
    if (r.attempts <= 2) continue;
    ++fallbacks;
    EXPECT_EQ(r.attempts, 3u);
    EXPECT_EQ(r.degradation_level, 2u);
    EXPECT_EQ(r.outcome, CaseOutcome::kDegraded);
    EXPECT_EQ(r.fail_code, ErrorCode::kAnalysisFailed);
    EXPECT_NE(r.fail_detail.find("identity-transform fallback"),
              std::string::npos)
        << r.fail_detail;
    EXPECT_DOUBLE_EQ(r.wcet_ratio(), 1.0);
    EXPECT_TRUE(r.report.insertions.empty());
  }
  EXPECT_EQ(fallbacks, 1u) << "exactly the faulted case walks the ladder";
}

TEST(FaultLadder, NonRetryableFaultFailsOnTheFirstAttempt) {
  // kFaultInjected is not a retryable class: the ladder must not burn
  // budget re-running a deterministic failure. One attempt, level 3.
  fault::disarm_all();
  SweepOptions options = small_sweep();
  options.max_attempts = 3;
  fault::arm("exp.measure");
  const Sweep sweep = run_sweep(options);
  fault::disarm_all();
  std::uint32_t failed = 0;
  for (const UseCaseResult& r : sweep.results) {
    if (r.outcome != CaseOutcome::kFailed) continue;
    ++failed;
    EXPECT_EQ(r.attempts, 1u);
    EXPECT_EQ(r.degradation_level, 3u);
    EXPECT_EQ(r.fail_code, ErrorCode::kFaultInjected);
  }
  EXPECT_EQ(failed, 1u);
}

TEST(FaultRegistry, AllComputeSitesAreRegistered) {
  const auto& sites = fault::known_sites();
  for (const std::string& site : kComputeSites) {
    EXPECT_NE(std::find(sites.begin(), sites.end(), site), sites.end())
        << site;
  }
}

TEST(FaultRegistry, EveryKnownSiteIsExercisedByTheBattery) {
  // Arm every registered site with an unreachable skip count: nothing ever
  // fires, but hit accounting is on while any site is armed, so the battery
  // below proves each registered fault point still sits on an executed
  // path. A site whose code path decays (or whose UCP_FAULT_POINT call is
  // dropped in a refactor) fails here instead of silently becoming
  // untestable.
  fault::disarm_all();
  constexpr std::uint64_t kNeverFires = std::uint64_t{1} << 40;
  const auto& sites = fault::known_sites();
  for (const std::string& site : sites) fault::arm(site, kNeverFires);
  std::vector<std::uint64_t> before;
  for (const std::string& site : sites) before.push_back(fault::hit_count(site));

  // The battery: one journaled, audited, watchdog-supervised sweep with the
  // full retry ladder, plus a memo-cache save/load round trip. Together
  // these reach every registered site, including the supervision and
  // durable-I/O ones.
  const std::string tmp =
      testing::TempDir() + "fault_battery." + std::to_string(::getpid());
  const std::string journal = tmp + ".journal";
  const std::string cache = tmp + ".cache";
  std::remove(journal.c_str());
  std::remove(cache.c_str());

  SweepOptions options = small_sweep();
  options.journal_path = journal;
  options.max_attempts = 3;
  options.case_deadline_ms = 120000;  // watchdog on, far from firing
  const Sweep sweep = run_sweep(options);
  EXPECT_TRUE(sweep.report.clean());
  ASSERT_TRUE(save_sweep_cache(cache, sweep.results).ok());
  EXPECT_TRUE(load_sweep_cache(cache).ok());

  // The fuzz sites (gen.build, fuzz.oracle, fuzz.shrink) sit on the
  // synthetic-program path: one generated case through the oracle battery
  // plus one direct shrink pass both the generator-boundary and the
  // triage-path fault points.
  {
    Rng knob_rng(split_seed(9, 0));
    const gen::GenKnobs knobs = gen::sample_knobs(knob_rng);
    const ir::Program generated =
        gen::generate_program(split_seed(9, 1), knobs);
    fuzz::OracleOptions oracle_options;
    const auto& named = cache::paper_cache_config("k7");
    oracle_options.config = named.config;
    oracle_options.timing =
        energy::derive_timing(named.config, energy::TechNode::k45nm);
    const fuzz::OracleReport report =
        fuzz::check_program(generated, oracle_options);
    EXPECT_FALSE(report.violated()) << report.detail;
    const fuzz::ShrinkResult shrunk = fuzz::shrink_program(
        generated, [](const ir::Program&) { return true; });
    EXPECT_TRUE(shrunk.reproduced);
  }

  // The observability sinks sit on the same battery: one metrics-snapshot
  // write passes the obs.sink_write fault point, and one flight-recorder
  // dump passes obs.flight_dump.
  const std::string sink = tmp + ".metrics.json";
  EXPECT_TRUE(obs::write_metrics_file(sink, obs::registry().snapshot()).ok());
  std::remove(sink.c_str());
  {
    const bool flight_was_on = obs::flight_enabled();
    obs::set_flight_enabled(true);
    obs::flight_note("fault.battery", "coverage dump");
    const std::string flight = tmp + ".flight.jsonl";
    EXPECT_TRUE(obs::write_flight_file(flight, "battery").ok());
    std::remove(flight.c_str());
    obs::set_flight_enabled(flight_was_on);
  }

  // The serve.* sites sit on the daemon's request path: one journaled
  // round trip through a live server passes accept, read, parse, process,
  // journal_write and respond, and one admin scrape passes admin_write.
  {
    const std::string serve_journal = tmp + ".serve.journal";
    std::remove(serve_journal.c_str());
    serve::ServerOptions soptions;
    soptions.workers = 1;
    soptions.journal_path = serve_journal;
    soptions.audit_soundness = false;  // keep the battery fast
    soptions.admin_enabled = true;
    serve::Server server(soptions);
    ASSERT_TRUE(server.start().ok());
    serve::Request request;
    request.id = "battery.1";
    request.config_id = "k1";
    request.config = cache::paper_cache_config("k1").config;
    request.program_text = ir::to_text(suite::build_benchmark("bs"));
    const auto response = serve::call(server.port(), request);
    ASSERT_TRUE(response.ok()) << response.status().message();
    EXPECT_EQ(response->status, serve::ResponseStatus::kOk);
    const auto health = serve::admin_call(server.admin_port(), "HEALTH");
    ASSERT_TRUE(health.ok()) << health.status().message();
    EXPECT_TRUE(health->ok);
    server.stop();
    std::remove(serve_journal.c_str());
  }

  for (std::size_t i = 0; i < sites.size(); ++i) {
    EXPECT_GT(fault::hit_count(sites[i]), before[i])
        << "fault site '" << sites[i]
        << "' was not exercised by the coverage battery";
  }
  fault::disarm_all();
  std::remove(journal.c_str());
  std::remove(cache.c_str());
}

TEST(FaultOps, AdminWriteFaultDropsScrapeNotTheResponse) {
  // The ops plane is best-effort: a fault on the admin reply path costs the
  // scraper its answer (dropped connection, counted in admin_dropped) but
  // must never touch an in-flight optimization response.
  fault::disarm_all();
  serve::ServerOptions options;
  options.workers = 1;
  options.audit_soundness = false;
  options.admin_enabled = true;
  serve::Server server(options);
  ASSERT_TRUE(server.start().ok());

  fault::arm("serve.admin_write");
  const auto dropped = serve::admin_call(server.admin_port(), "STATS");
  EXPECT_FALSE(dropped.ok()) << "faulted admin scrape produced a reply";

  serve::Request request;
  request.id = "ops.1";
  request.config_id = "k1";
  request.config = cache::paper_cache_config("k1").config;
  request.program_text = ir::to_text(suite::build_benchmark("bs"));
  const auto response = serve::call(server.port(), request);
  ASSERT_TRUE(response.ok()) << response.status().message();
  EXPECT_EQ(response->status, serve::ResponseStatus::kOk);
  EXPECT_GT(response->tau_original, 0u);
  fault::disarm_all();

  // With the fault gone the next scrape works and shows the drop.
  const auto stats = serve::admin_call(server.admin_port(), "STATS");
  ASSERT_TRUE(stats.ok()) << stats.status().message();
  EXPECT_TRUE(stats->ok);
  EXPECT_NE(stats->payload.find("\"admin_dropped\":1"), std::string::npos)
      << stats->payload;
  const serve::ServerStats after = server.stats();
  EXPECT_EQ(after.admin_dropped, 1u);
  EXPECT_EQ(after.ok, 1u);
  server.stop();
}

TEST(FaultOps, FlightDumpFaultDegradesToWarningNotFailure) {
  // A failing flight dump degrades to a warning: the dump write reports
  // kInternal, the triggering operation is unharmed, and once the fault is
  // gone the same dump succeeds and parses.
  fault::disarm_all();
  const bool flight_was_on = obs::flight_enabled();
  obs::set_flight_enabled(true);
  obs::flight_note("fault.ops", "pre-fault record");

  const std::string path = testing::TempDir() + "fault_ops_flight." +
                           std::to_string(::getpid()) + ".jsonl";
  std::remove(path.c_str());
  fault::arm("obs.flight_dump");
  const Status faulted = obs::write_flight_file(path, "test");
  EXPECT_FALSE(faulted.ok());
  fault::disarm_all();

  // The rings are intact: the retried dump carries the earlier record.
  ASSERT_TRUE(obs::write_flight_file(path, "test").ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string contents;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) contents.append(buf, n);
  std::fclose(f);
  EXPECT_EQ(contents.rfind("{\"kind\":\"header\"", 0), 0u) << contents;
  EXPECT_NE(contents.find("fault.ops"), std::string::npos);
  std::remove(path.c_str());
  obs::set_flight_enabled(flight_was_on);
}

}  // namespace
}  // namespace ucp::exp
