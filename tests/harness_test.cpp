// Sweep memo cache hardening: versioned header, grid fingerprint, row
// checksums, tolerant cell parsing, atomic save. Every corruption mode must
// be *detected and reported* (kCorruptCache), never parsed into garbage
// figures or crash the loader; the sweep then recomputes.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cache/config.hpp"
#include "energy/model.hpp"
#include "exp/harness.hpp"
#include "support/fault_injection.hpp"

namespace ucp::exp {
namespace {

std::vector<UseCaseResult> two_rows() {
  std::vector<UseCaseResult> rows(2);
  rows[0].program = "bs";
  rows[0].config_id = "k1";
  rows[0].config = cache::paper_cache_config("k1").config;
  rows[0].tech = energy::TechNode::k45nm;
  rows[0].original.tau_wcet = 100;
  rows[0].original.run.mem_cycles = 80;
  rows[0].original.run.instructions = 50;
  rows[0].original.energy.cache_dynamic_nj = 12.5;
  rows[0].original.run.cache.fetches = 50;
  rows[0].original.run.cache.misses = 5;
  rows[0].original.run.total_cycles = 200;
  rows[0].optimized = rows[0].original;
  rows[0].optimized.tau_wcet = 90;
  rows[0].report.insertions.resize(2);
  rows[0].report.candidates_found = 7;
  rows[1] = rows[0];
  rows[1].program = "fibcall";
  rows[1].tech = energy::TechNode::k32nm;
  return rows;
}

std::string slurp(const std::string& path) {
  std::ifstream is(path);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

void spit(const std::string& path, const std::string& text) {
  std::ofstream os(path, std::ios::trunc);
  os << text;
}

struct TempFile {
  explicit TempFile(std::string p) : path(std::move(p)) {
    std::remove(path.c_str());
  }
  ~TempFile() {
    std::remove(path.c_str());
    std::remove((path + ".tmp").c_str());
  }
  std::string path;
};

TEST(SweepCache, RoundTripPreservesEveryPersistedField) {
  TempFile f("cache_roundtrip.csv");
  ASSERT_TRUE(save_sweep_cache(f.path, two_rows()).ok());
  const Expected<std::vector<UseCaseResult>> loaded =
      load_sweep_cache(f.path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  ASSERT_EQ(loaded->size(), 2u);
  const UseCaseResult& r = (*loaded)[0];
  EXPECT_EQ(r.program, "bs");
  EXPECT_EQ(r.config_id, "k1");
  EXPECT_EQ(r.tech, energy::TechNode::k45nm);
  EXPECT_EQ(r.original.tau_wcet, 100u);
  EXPECT_EQ(r.original.run.mem_cycles, 80u);
  EXPECT_EQ(r.original.run.instructions, 50u);
  EXPECT_DOUBLE_EQ(r.original.energy.total_nj(), 12.5);
  EXPECT_EQ(r.original.run.cache.fetches, 50u);
  EXPECT_EQ(r.original.run.cache.misses, 5u);
  EXPECT_EQ(r.original.run.total_cycles, 200u);
  EXPECT_EQ(r.optimized.tau_wcet, 90u);
  EXPECT_EQ(r.report.insertions.size(), 2u);
  EXPECT_EQ(r.report.candidates_found, 7u);
  EXPECT_EQ((*loaded)[1].program, "fibcall");
  EXPECT_EQ((*loaded)[1].tech, energy::TechNode::k32nm);
}

TEST(SweepCache, MissingFileIsNotFoundNotCorrupt) {
  const auto loaded = load_sweep_cache("definitely_absent.csv");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.code(), ErrorCode::kNotFound);
}

TEST(SweepCache, CorruptCellIsDetected) {
  TempFile f("cache_badcell.csv");
  ASSERT_TRUE(save_sweep_cache(f.path, two_rows()).ok());
  // Flip one digit of the first data row; the row checksum must catch it.
  std::string text = slurp(f.path);
  const std::size_t pos = text.find("bs,k1,45nm,100");
  ASSERT_NE(pos, std::string::npos);
  text[pos + 11] = '9';  // 100 -> 900
  spit(f.path, text);
  const auto loaded = load_sweep_cache(f.path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.code(), ErrorCode::kCorruptCache);
  EXPECT_NE(loaded.status().detail().find("checksum"), std::string::npos);
}

TEST(SweepCache, NonNumericCellIsDetectedEvenWithValidChecksum) {
  // An attacker-grade corruption: garbage cell plus a recomputed checksum.
  // The strict cell parser still rejects it (the old loader would have
  // thrown std::invalid_argument out of std::stoull and crashed the bench).
  TempFile f("cache_garbage.csv");
  ASSERT_TRUE(save_sweep_cache(f.path, two_rows()).ok());
  std::string text = slurp(f.path);
  const std::size_t pos = text.find("bs,k1,45nm,100");
  ASSERT_NE(pos, std::string::npos);
  std::string row = "bs,k1,45nm,XYZ";  // tau cell is not a number
  // Rebuild the row with the same tail and a fresh (valid) checksum: find
  // the original row's end and checksum boundary.
  const std::size_t eol = text.find('\n', pos);
  const std::string orig_row = text.substr(pos, eol - pos);
  const std::size_t ck = orig_row.rfind(',');
  std::string tampered = orig_row.substr(0, ck);
  tampered.replace(11, 3, "XYZ");
  // Recompute the checksum the same way the writer does (FNV-1a, hex).
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : tampered) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  static const char* digits = "0123456789abcdef";
  std::string hex(16, '0');
  for (int i = 15; i >= 0; --i) {
    hex[static_cast<std::size_t>(i)] = digits[h & 0xf];
    h >>= 4;
  }
  text.replace(pos, eol - pos, tampered + "," + hex);
  spit(f.path, text);
  const auto loaded = load_sweep_cache(f.path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.code(), ErrorCode::kCorruptCache);
  EXPECT_NE(loaded.status().detail().find("non-numeric"), std::string::npos);
}

TEST(SweepCache, TruncatedRowIsDetected) {
  TempFile f("cache_truncated.csv");
  ASSERT_TRUE(save_sweep_cache(f.path, two_rows()).ok());
  std::string text = slurp(f.path);
  // Drop the last 10 characters: final row loses its checksum tail.
  text.resize(text.size() - 10);
  spit(f.path, text);
  const auto loaded = load_sweep_cache(f.path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.code(), ErrorCode::kCorruptCache);
}

TEST(SweepCache, StaleVersionIsDetected) {
  TempFile f("cache_stale.csv");
  ASSERT_TRUE(save_sweep_cache(f.path, two_rows()).ok());
  std::string text = slurp(f.path);
  const std::string tag = "ucp-sweep-cache v" +
                          std::to_string(kSweepCacheVersion);
  const std::size_t pos = text.find(tag);
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, tag.size(), "ucp-sweep-cache v1");
  spit(f.path, text);
  const auto loaded = load_sweep_cache(f.path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.code(), ErrorCode::kCorruptCache);
  EXPECT_NE(loaded.status().detail().find("stale"), std::string::npos);
}

TEST(SweepCache, LegacyHeaderlessFormatIsRejected) {
  TempFile f("cache_legacy.csv");
  spit(f.path,
       "program,config,tech,o_tau,o_mem,o_instr,o_energy,o_fetches,"
       "o_misses,o_cycles,p_tau,p_mem,p_instr,p_energy,p_fetches,p_misses,"
       "p_cycles,prefetches,candidates\n"
       "bs,k1,45nm,100,80,50,12.5,50,5,200,90,75,50,11.5,50,4,190,2,7\n");
  const auto loaded = load_sweep_cache(f.path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.code(), ErrorCode::kCorruptCache);
}

TEST(SweepCache, WrongGridFingerprintIsDetected) {
  TempFile f("cache_grid.csv");
  ASSERT_TRUE(save_sweep_cache(f.path, two_rows()).ok());
  std::string text = slurp(f.path);
  const std::size_t pos = text.find("grid=");
  ASSERT_NE(pos, std::string::npos);
  text[pos + 5] = text[pos + 5] == '0' ? '1' : '0';
  spit(f.path, text);
  const auto loaded = load_sweep_cache(f.path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.code(), ErrorCode::kCorruptCache);
  EXPECT_NE(loaded.status().detail().find("fingerprint"), std::string::npos);
}

TEST(SweepCache, UnknownConfigIdIsDetectedNotThrown) {
  TempFile f("cache_cfg.csv");
  ASSERT_TRUE(save_sweep_cache(f.path, two_rows()).ok());
  std::string text = slurp(f.path);
  const std::size_t pos = text.find("bs,k1,");
  ASSERT_NE(pos, std::string::npos);
  // k1 -> k0 (nonexistent): checksum catches the edit; that is fine — the
  // point is the loader reports corruption instead of throwing.
  text[pos + 4] = '0';
  spit(f.path, text);
  Expected<std::vector<UseCaseResult>> loaded =
      load_sweep_cache("nonexistent-placeholder");
  ASSERT_NO_THROW(loaded = load_sweep_cache(f.path));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.code(), ErrorCode::kCorruptCache);
}

TEST(SweepCache, SaveIsAtomicUnderWriteFault) {
  TempFile f("cache_wfault.csv");
  // Seed a valid cache, then fail a re-save: the valid file must survive
  // untouched and no temporary may be left behind.
  ASSERT_TRUE(save_sweep_cache(f.path, two_rows()).ok());
  const std::string before = slurp(f.path);
  {
    fault::ScopedFault fi("exp.cache_write");
    const Status s = save_sweep_cache(f.path, two_rows());
    EXPECT_FALSE(s.ok());
  }
  EXPECT_EQ(slurp(f.path), before);
  std::ifstream tmp(f.path + ".tmp");
  EXPECT_FALSE(tmp.good()) << "temporary file leaked";
}

TEST(SweepCache, CorruptFileIsReportedAndRecomputed) {
  TempFile f("cache_recompute.csv");
  spit(f.path, "total garbage, not a cache at all\n");
  SweepOptions options;
  options.programs = {"bs"};
  options.config_stride = 12;
  options.techs = {energy::TechNode::k45nm};
  options.threads = 1;
  options.progress_every = 0;
  options.cache_path = f.path;
  const Sweep sweep = run_sweep(options);
  // Recomputed from scratch, with the rejection visible in the report.
  EXPECT_FALSE(sweep.report.cache_hit);
  EXPECT_NE(sweep.report.cache_note.find("corrupt-cache"),
            std::string::npos);
  ASSERT_EQ(sweep.results.size(), 3u);
  for (const auto& r : sweep.results) EXPECT_GT(r.original.tau_wcet, 0u);
}

TEST(SweepCache, ReadFaultFallsBackToRecompute) {
  TempFile f("cache_rfault.csv");
  ASSERT_TRUE(save_sweep_cache(f.path, two_rows()).ok());
  SweepOptions options;
  options.programs = {"bs"};
  options.config_stride = 12;
  options.techs = {energy::TechNode::k45nm};
  options.threads = 1;
  options.progress_every = 0;
  options.cache_path = f.path;
  fault::ScopedFault fi("exp.cache_read");
  const Sweep sweep = run_sweep(options);
  EXPECT_FALSE(sweep.report.cache_hit);
  EXPECT_TRUE(sweep.report.clean());
  ASSERT_EQ(sweep.results.size(), 3u);
}

TEST(SweepCache, FingerprintIsStableAcrossCalls) {
  EXPECT_EQ(sweep_grid_fingerprint(), sweep_grid_fingerprint());
  EXPECT_EQ(sweep_grid_fingerprint().size(), 16u);
}

TEST(DegenerateRatios, ZeroDenominatorIsFlaggedAndCounted) {
  UseCaseResult r;  // all-zero metrics: every ratio degenerate
  EXPECT_DOUBLE_EQ(r.wcet_ratio(), 1.0);  // neutral value...
  EXPECT_TRUE(r.wcet_degenerate());       // ...but flagged, not hidden
  EXPECT_TRUE(r.acet_degenerate());
  EXPECT_TRUE(r.energy_degenerate());
  EXPECT_TRUE(r.instr_degenerate());
  EXPECT_TRUE(r.any_degenerate_ratio());

  UseCaseResult healthy;
  healthy.original.tau_wcet = 10;
  healthy.original.run.mem_cycles = 10;
  healthy.original.run.instructions = 10;
  healthy.original.energy.cache_dynamic_nj = 1.0;
  healthy.optimized = healthy.original;
  EXPECT_FALSE(healthy.any_degenerate_ratio());

  const std::vector<UseCaseResult> batch = {r, healthy};
  const GrandAggregate grand = aggregate_all(batch);
  EXPECT_EQ(grand.degenerate_cases, 1u);
  EXPECT_EQ(grand.quarantined_cases, 0u);
}

TEST(DegenerateRatios, AggregatesCountQuarantinedCases) {
  UseCaseResult degraded;
  degraded.outcome = CaseOutcome::kDegraded;
  degraded.original.tau_wcet = 10;
  degraded.original.run.mem_cycles = 10;
  degraded.original.run.instructions = 10;
  degraded.original.energy.cache_dynamic_nj = 1.0;
  degraded.optimized = degraded.original;
  const GrandAggregate grand = aggregate_all({degraded});
  EXPECT_EQ(grand.quarantined_cases, 1u);
  EXPECT_EQ(grand.degenerate_cases, 0u);
}

TEST(SweepReport, PrintListsQuarantinedCases) {
  SweepReport report;
  report.total = 10;
  report.completed = 9;
  report.degraded = 1;
  report.quarantine.push_back(DegradedCase{
      "crc", "k7", energy::TechNode::k32nm, CaseOutcome::kDegraded,
      "optimize", ErrorCode::kIterationLimit, "pivot budget"});
  std::ostringstream os;
  report.print(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("10 use cases"), std::string::npos);
  EXPECT_NE(text.find("1 degraded"), std::string::npos);
  EXPECT_NE(text.find("crc/k7/32nm"), std::string::npos);
  EXPECT_NE(text.find("iteration-limit"), std::string::npos);
  EXPECT_NE(text.find("pivot budget"), std::string::npos);
}

}  // namespace
}  // namespace ucp::exp
