#include <gtest/gtest.h>

#include <map>

#include "analysis/cache_analysis.hpp"
#include "analysis/context_graph.hpp"
#include "core/locking.hpp"
#include "core/optimizer.hpp"
#include "core/wcet_path.hpp"
#include "ir/builder.hpp"
#include "ir/layout.hpp"
#include "sim/interpreter.hpp"
#include "wcet/ipet.hpp"

namespace ucp::core {
namespace {

using ir::Cond;
using ir::IrBuilder;
using ir::R;

const cache::MemTiming kTiming{1, 25, 25};

/// A loop whose body spans more blocks than one set can hold in a
/// direct-mapped cache: the canonical prefetch opportunity (the Figure 1
/// situation generalized to a loop).
ir::Program conflict_loop(int body_nops = 72, int trips = 20) {
  IrBuilder b("conflict_loop");
  b.for_range(R(1), 0, trips, [&] { b.nops(static_cast<std::size_t>(body_nops)); });
  b.halt();
  return b.take();
}

WcetPath path_of(const ir::Program& p, const cache::CacheConfig& config) {
  const ir::Layout layout(p, config.block_bytes);
  const analysis::ContextGraph graph(p);
  const auto cls = analysis::analyze_cache(graph, layout, config);
  const auto wcet = wcet::compute_wcet(graph, cls, kTiming);
  UCP_CHECK(wcet.ok());
  return build_wcet_path(graph, p, layout, config, kTiming, cls, wcet);
}

TEST(WcetPath, StraightLineCoversEveryInstruction) {
  IrBuilder b("sl");
  b.movi(R(1), 1);
  b.movi(R(2), 2);
  b.halt();
  const ir::Program p = b.take();
  const WcetPath path = path_of(p, {2, 16, 256});
  EXPECT_EQ(path.refs.size(), 3u);
  EXPECT_TRUE(path.refs[0].path_miss);   // cold
  EXPECT_FALSE(path.refs[1].path_miss);  // same block
  EXPECT_EQ(path.refs[0].evictor, -1);   // cold miss: no evictor
}

TEST(WcetPath, LoopAppearsTwiceFirstAndRest) {
  IrBuilder b("twice");
  b.for_range(R(1), 0, 6, [&] { b.nops(2); });
  b.halt();
  const ir::Program p = b.take();
  const WcetPath path = path_of(p, {2, 16, 256});
  // Each loop-body instruction appears once per context (FIRST and REST).
  std::map<ir::InstrId, int> seen;
  for (const PathRef& ref : path.refs) ++seen[ref.instr];
  int twice = 0;
  for (const auto& [id, n] : seen) {
    EXPECT_LE(n, 2);
    if (n == 2) ++twice;
  }
  EXPECT_GT(twice, 0);
}

TEST(WcetPath, EvictionsAreAttributed) {
  const ir::Program p = conflict_loop();
  const WcetPath path = path_of(p, {1, 16, 256});
  bool any_attributed = false;
  for (std::size_t k = 0; k < path.refs.size(); ++k) {
    const PathRef& ref = path.refs[k];
    if (!ref.path_miss || ref.evictor < 0) continue;
    any_attributed = true;
    const PathRef& evictor = path.refs[static_cast<std::size_t>(ref.evictor)];
    // The evictor must conflict with the missed block and precede the miss.
    EXPECT_LT(static_cast<std::size_t>(ref.evictor), k);
    const cache::CacheConfig config{1, 16, 256};
    EXPECT_EQ(config.set_of(evictor.block), config.set_of(ref.block));
  }
  EXPECT_TRUE(any_attributed);
}

TEST(WcetPath, SlackSumsTimesBetween) {
  IrBuilder b("slack");
  b.movi(R(1), 1);
  b.movi(R(2), 2);
  b.movi(R(3), 3);
  b.movi(R(4), 4);
  b.halt();
  const ir::Program p = b.take();
  const WcetPath path = path_of(p, {2, 16, 256});
  // Between positions 0 and 3 lie refs 1 and 2.
  EXPECT_EQ(path.slack_between(0, 3),
            static_cast<std::uint64_t>(path.refs[1].t_w) + path.refs[2].t_w);
  EXPECT_EQ(path.slack_between(0, 1), 0u);
  EXPECT_THROW(path.slack_between(3, 0), InvalidArgument);
}

TEST(MakePrefetch, Fields) {
  const ir::Instruction pf = make_prefetch(42);
  EXPECT_EQ(pf.op, ir::Opcode::kPrefetch);
  EXPECT_EQ(pf.pf_target, 42u);
  EXPECT_TRUE(pf.is_prefetch());
}

TEST(Optimizer, FindsProfitablePrefetchInConflictLoop) {
  const ir::Program p = conflict_loop();
  const cache::CacheConfig config{2, 16, 256};
  const OptimizationResult r = optimize_prefetches(p, config, kTiming);
  EXPECT_FALSE(r.report.wcet_failed);
  EXPECT_GT(r.report.candidates_found, 0u);
  // Theorem 1: never worse.
  EXPECT_LE(r.report.tau_optimized, r.report.tau_original);
}

TEST(Optimizer, OutputIsPrefetchEquivalent) {
  // Definition 5: programs indistinguishable except for prefetches (and the
  // alignment nops the relocation handling may add).
  const ir::Program p = conflict_loop();
  const cache::CacheConfig config{2, 16, 256};
  const OptimizationResult r = optimize_prefetches(p, config, kTiming);

  ASSERT_EQ(r.program.num_blocks(), p.num_blocks());
  for (const ir::BasicBlock& bb : p.blocks()) {
    const ir::BasicBlock& ob = r.program.block(bb.id);
    EXPECT_EQ(ob.succs, bb.succs);
    // Original instructions appear in order, with only prefetch/nop added.
    std::vector<ir::Opcode> orig, opt_filtered;
    for (const auto& in : bb.instrs) orig.push_back(in.op);
    for (const auto& in : ob.instrs) {
      if (in.op == ir::Opcode::kPrefetch) continue;
      opt_filtered.push_back(in.op == ir::Opcode::kNop ? in.op : in.op);
    }
    // Remove nops that the optimizer added (bb had none originally unless
    // orig contains them too); compare multiset sizes conservatively.
    EXPECT_GE(opt_filtered.size(), orig.size());
  }
  // Semantics unchanged: run both and compare all data-memory results.
  auto final_data = [&](const ir::Program& prog) {
    const ir::Layout layout(prog, config.block_bytes);
    cache::CacheSim cache_sim(config, kTiming);
    sim::Interpreter interp(prog, layout, cache_sim);
    interp.run();
    return interp.data();
  };
  EXPECT_EQ(final_data(p), final_data(r.program));
}

TEST(Optimizer, EffectivenessKnobRejectsShortSlack) {
  // With an absurdly large Λ nothing is effective.
  const ir::Program p = conflict_loop();
  const cache::CacheConfig config{2, 16, 256};
  cache::MemTiming timing = kTiming;
  timing.prefetch_latency = 1000000;
  const OptimizationResult r = optimize_prefetches(p, config, timing);
  EXPECT_EQ(r.report.insertions.size(), 0u);
  EXPECT_GT(r.report.rejected_ineffective, 0u);
}

TEST(Optimizer, RespectsMaxPrefetches) {
  const ir::Program p = conflict_loop();
  const cache::CacheConfig config{2, 16, 256};
  OptimizerOptions options;
  options.max_prefetches = 1;
  const OptimizationResult r = optimize_prefetches(p, config, kTiming, options);
  EXPECT_LE(r.report.insertions.size(), 1u);
}

TEST(Optimizer, UntouchedWhenNoPressure) {
  // A program far smaller than the cache has no replaced-block misses.
  IrBuilder b("tiny");
  b.for_range(R(1), 0, 5, [&] { b.nop(); });
  b.halt();
  const ir::Program p = b.take();
  const OptimizationResult r =
      optimize_prefetches(p, {4, 32, 8192}, kTiming);
  EXPECT_EQ(r.report.insertions.size(), 0u);
  EXPECT_EQ(r.report.tau_optimized, r.report.tau_original);
  EXPECT_EQ(r.program.instruction_count(), p.instruction_count());
}

TEST(Optimizer, AcceptRuleAlwaysStillAuditsWcet) {
  const ir::Program p = conflict_loop();
  const cache::CacheConfig config{1, 16, 256};
  OptimizerOptions options;
  options.accept_rule = AcceptRule::kAlways;
  options.final_audit = true;
  const OptimizationResult r = optimize_prefetches(p, config, kTiming, options);
  // Whatever happened, the audited output may not regress.
  EXPECT_LE(r.report.tau_optimized, r.report.tau_original);
}

TEST(Optimizer, ReportProfitMatchesTauDrop) {
  const ir::Program p = conflict_loop();
  const cache::CacheConfig config{2, 16, 256};
  const OptimizationResult r = optimize_prefetches(p, config, kTiming);
  std::int64_t total_profit = 0;
  for (const PrefetchRecord& rec : r.report.insertions) {
    EXPECT_GT(rec.profit_tau, 0);
    total_profit += rec.profit_tau;
  }
  EXPECT_EQ(static_cast<std::int64_t>(r.report.tau_original) -
                static_cast<std::int64_t>(r.report.tau_fixed_final),
            total_profit);
}

TEST(Optimizer, PrefetchTargetsAreValidInstructions) {
  const ir::Program p = conflict_loop();
  const cache::CacheConfig config{2, 16, 256};
  const OptimizationResult r = optimize_prefetches(p, config, kTiming);
  for (const ir::BasicBlock& bb : r.program.blocks()) {
    for (const ir::Instruction& in : bb.instrs) {
      if (!in.is_prefetch()) continue;
      EXPECT_NO_THROW(r.program.locate(in.pf_target));
    }
  }
}


TEST(Locking, SelectionRespectsGeometry) {
  const ir::Program p = conflict_loop();
  const cache::CacheConfig config{2, 16, 256};
  const LockingResult r = optimize_locking(p, config, kTiming);
  EXPECT_LE(r.locked.size(), static_cast<std::size_t>(config.num_blocks()));
  std::map<std::uint32_t, std::uint32_t> per_set;
  for (cache::MemBlockId b : r.locked) ++per_set[config.set_of(b)];
  for (const auto& [set, n] : per_set) EXPECT_LE(n, config.assoc);
  EXPECT_GE(r.rounds, 1u);
}

TEST(Locking, LockedTauConsistentWithSelection) {
  const ir::Program p = conflict_loop();
  const cache::CacheConfig config{2, 16, 256};
  const LockingResult r = optimize_locking(p, config, kTiming);
  EXPECT_EQ(locked_tau(p, config, kTiming, r.locked), r.tau_locked);
  // Locking nothing means every reference misses: the worst possible tau.
  EXPECT_GE(locked_tau(p, config, kTiming, {}), r.tau_locked);
}

TEST(Locking, FreePreloadBeatsColdMissesOnFittingLoops) {
  // When everything fits, lock-down (whose preload is charged at system
  // start, not in tau_w) even avoids the cold misses: tau can only improve.
  ir::IrBuilder b("friendly");
  b.for_range(ir::R(1), 0, 50, [&] { b.nops(30); });  // fits easily
  b.halt();
  const ir::Program p = b.take();
  const cache::CacheConfig config{2, 16, 2048};
  const LockingResult r = optimize_locking(p, config, kTiming);
  EXPECT_LE(r.tau_locked, r.tau_unlocked);
}

TEST(Locking, CannotAdaptToPhaseChanges) {
  // The Section 2.2 trade-off: two sequential loops, each fitting the
  // cache but jointly exceeding it. Unlocked analysis adapts (each loop
  // runs from cache after its first iteration); a frozen cache can only
  // hold one loop's worth of blocks, so the other loop misses every time.
  ir::IrBuilder b("phases");
  b.for_range(ir::R(1), 0, 40, [&] { b.nops(44); });  // ~180B body
  b.for_range(ir::R(2), 0, 40, [&] { b.nops(44); });  // another ~180B
  b.halt();
  const ir::Program p = b.take();
  const cache::CacheConfig config{2, 16, 256};
  const LockingResult r = optimize_locking(p, config, kTiming);
  EXPECT_GT(r.tau_locked, r.tau_unlocked);
}

TEST(Locking, HelpsThrashingLoopsWherePrefetchCannot) {
  // A loop cycling through 2x the cache: LRU keeps missing everything and
  // prefetch-on-evict cannot survive (the pre-filter regime), but locking
  // half the body guarantees hits for that half.
  const ir::Program p = conflict_loop(160, 10);
  const cache::CacheConfig config{1, 16, 256};
  const LockingResult r = optimize_locking(p, config, kTiming);
  EXPECT_LT(r.tau_locked, locked_tau(p, config, kTiming, {}));
}

TEST(Optimizer, SimulatedMissesDoNotIncreaseOnWcetPathKernels) {
  // For a loop-dominated kernel (WCET path == concrete path) the optimizer
  // must reduce concrete misses whenever it inserts anything.
  const ir::Program p = conflict_loop();
  const cache::CacheConfig config{2, 16, 256};
  const OptimizationResult r = optimize_prefetches(p, config, kTiming);
  if (r.report.insertions.empty()) GTEST_SKIP() << "nothing inserted";
  const sim::RunMetrics before = sim::run_program(p, config, kTiming);
  const sim::RunMetrics after = sim::run_program(r.program, config, kTiming);
  EXPECT_LT(after.cache.misses, before.cache.misses);
  EXPECT_LE(after.mem_cycles, before.mem_cycles);
}

}  // namespace
}  // namespace ucp::core
