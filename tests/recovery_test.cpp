// Kill/resume and supervision integration tests for the journaled sweep
// runtime: a sweep hard-killed (SIGKILL) mid-append resumes from the last
// durable row and reproduces the uninterrupted result set bit-identically;
// torn tails and stale checkpoints are truncated or reset, never trusted;
// a journal write failure disables checkpointing but not the sweep; the
// retry ladder recovers supervisor cancellations; and an auditor violation
// quarantines deterministically.

#include <gtest/gtest.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "energy/model.hpp"
#include "exp/harness.hpp"
#include "exp/journal.hpp"
#include "support/fault_injection.hpp"

namespace ucp::exp {
namespace {

/// Same small deterministic grid as the fault suite: fdct reaches the
/// optimizer's candidate walk, bs covers the no-candidate path; one thread
/// so the first journal append (and the first fault hit) is deterministic.
SweepOptions journaled_sweep(const std::string& journal) {
  SweepOptions options;
  options.programs = {"bs", "fdct"};
  options.config_stride = 12;  // k1, k13, k25
  options.techs = {energy::TechNode::k45nm};
  options.threads = 1;
  options.progress_every = 0;
  options.journal_path = journal;
  return options;
}

struct TempFile {
  std::string path;
  explicit TempFile(const std::string& name)
      : path(testing::TempDir() + name + "." + std::to_string(::getpid())) {
    std::remove(path.c_str());
  }
  ~TempFile() { std::remove(path.c_str()); }
};

std::string reference_fingerprint() {
  fault::disarm_all();
  const Sweep sweep = run_sweep(journaled_sweep(""));
  EXPECT_TRUE(sweep.report.clean());
  return sweep_results_fingerprint(sweep.results);
}

TEST(Recovery, KillDuringJournalAppendResumesBitIdentical) {
  TempFile journal("recovery_kill_journal");
  const std::string want = reference_fingerprint();

  const pid_t child = ::fork();
  ASSERT_GE(child, 0) << "fork failed";
  if (child == 0) {
    // Child: the second journal append writes a torn record (the full row
    // minus its tail), fsyncs it, and dies by raise(SIGKILL) — the closest
    // reproducible stand-in for a power cut mid-checkpoint.
    fault::arm("io.journal_kill", /*skip=*/1);
    run_sweep(journaled_sweep(journal.path));
    std::_Exit(42);  // only reached if the fault never fired
  }
  int wstatus = 0;
  ASSERT_EQ(::waitpid(child, &wstatus, 0), child);
  ASSERT_TRUE(WIFSIGNALED(wstatus))
      << "child exited normally; the kill fault did not fire";
  ASSERT_EQ(WTERMSIG(wstatus), SIGKILL);

  // Resume in this (never-armed) process: the torn tail is truncated, the
  // durable rows are reused, only the missing rows are recomputed — and the
  // combined result set is bit-identical to the uninterrupted run.
  const Sweep resumed = run_sweep(journaled_sweep(journal.path));
  EXPECT_TRUE(resumed.report.clean());
  EXPECT_GT(resumed.report.resumed_rows, 0u);
  EXPECT_LT(resumed.report.resumed_rows, resumed.report.total);
  EXPECT_EQ(sweep_results_fingerprint(resumed.results), want);
}

TEST(Recovery, TornTailIsTruncatedAndRecomputed) {
  TempFile journal("recovery_torn_journal");
  fault::disarm_all();
  const Sweep first = run_sweep(journaled_sweep(journal.path));
  ASSERT_TRUE(first.report.clean());
  const std::string want = sweep_results_fingerprint(first.results);

  // Chop the file mid-record, as a crash between write and fsync would.
  std::ifstream in(journal.path, std::ios::binary);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  in.close();
  ASSERT_GT(contents.size(), 32u);
  std::ofstream out(journal.path, std::ios::binary | std::ios::trunc);
  out.write(contents.data(),
            static_cast<std::streamsize>(contents.size() - 9));
  out.close();

  const Sweep resumed = run_sweep(journaled_sweep(journal.path));
  EXPECT_TRUE(resumed.report.clean());
  EXPECT_GT(resumed.report.resumed_rows, 0u);
  EXPECT_LT(resumed.report.resumed_rows, resumed.report.total);
  EXPECT_EQ(sweep_results_fingerprint(resumed.results), want);
}

TEST(Recovery, CompleteJournalResumesEveryRow) {
  TempFile journal("recovery_full_journal");
  fault::disarm_all();
  const Sweep first = run_sweep(journaled_sweep(journal.path));
  ASSERT_TRUE(first.report.clean());

  const Sweep resumed = run_sweep(journaled_sweep(journal.path));
  EXPECT_TRUE(resumed.report.clean());
  EXPECT_EQ(resumed.report.resumed_rows, resumed.report.total);
  EXPECT_EQ(sweep_results_fingerprint(resumed.results),
            sweep_results_fingerprint(first.results));
}

TEST(Recovery, StaleSelectionFingerprintResetsJournal) {
  TempFile journal("recovery_stale_journal");
  fault::disarm_all();
  SweepOptions narrow = journaled_sweep(journal.path);
  narrow.programs = {"bs"};
  ASSERT_TRUE(run_sweep(narrow).report.clean());

  // A different program selection changes the selection fingerprint: the
  // old checkpoint is worthless and must be reset, not reinterpreted.
  const Sweep second = run_sweep(journaled_sweep(journal.path));
  EXPECT_TRUE(second.report.clean());
  EXPECT_EQ(second.report.resumed_rows, 0u);
  EXPECT_NE(second.report.journal_note.find("reset"), std::string::npos)
      << second.report.journal_note;
}

TEST(Recovery, JournalWriteFaultDisablesJournalNotTheSweep) {
  TempFile journal("recovery_wfault_journal");
  const std::string want = reference_fingerprint();

  fault::arm("io.journal_write");
  const Sweep sweep = run_sweep(journaled_sweep(journal.path));
  fault::disarm_all();

  // Checkpointing stops, the sweep (and its results) do not.
  EXPECT_TRUE(sweep.report.clean());
  EXPECT_EQ(sweep_results_fingerprint(sweep.results), want);
  EXPECT_NE(sweep.report.journal_note.find("disabled"), std::string::npos)
      << sweep.report.journal_note;
}

TEST(Recovery, LadderRecoversFromSupervisorCancellation) {
  const std::string want = reference_fingerprint();

  SweepOptions supervised = journaled_sweep("");
  supervised.max_attempts = 3;
  fault::arm("supervisor.cancel");
  const Sweep sweep = run_sweep(supervised);
  fault::disarm_all();

  // The cancelled first attempt is retried with a fresh token and recovers
  // cleanly; a recovered row is flagged (attempts, degradation_level) but
  // carries the same metrics as an unfaulted run.
  EXPECT_TRUE(sweep.report.clean());
  EXPECT_GE(sweep.report.retried, 1u);
  EXPECT_GE(sweep.report.recovered, 1u);
  EXPECT_EQ(sweep_results_fingerprint(sweep.results), want);
  for (const UseCaseResult& r : sweep.results) {
    if (r.attempts <= 1) continue;
    EXPECT_EQ(r.degradation_level, 1u);
    EXPECT_EQ(r.outcome, CaseOutcome::kCompleted);
  }
}

TEST(Recovery, InjectedAuditMismatchQuarantinesDeterministically) {
  const SweepOptions options = journaled_sweep("");
  fault::disarm_all();
  fault::arm("audit.mismatch");
  const Sweep a = run_sweep(options);
  fault::arm("audit.mismatch");
  const Sweep b = run_sweep(options);
  fault::disarm_all();

  // Exactly one case (the first audited one — single-threaded, one-shot
  // fault) is demoted to a quarantined degraded row shipping the original
  // binary, and the demotion is deterministic across runs.
  ASSERT_FALSE(a.report.clean());
  EXPECT_EQ(a.report.audit_violations, 1u);
  std::size_t demoted = 0;
  for (const UseCaseResult& r : a.results) {
    if (r.fail_code != ErrorCode::kAuditFailed) continue;
    ++demoted;
    EXPECT_EQ(r.outcome, CaseOutcome::kDegraded);
    EXPECT_EQ(r.fail_stage, "audit");
    EXPECT_TRUE(r.audit.violated);
    EXPECT_EQ(r.optimized.tau_wcet, r.original.tau_wcet);
    EXPECT_TRUE(r.report.insertions.empty());
  }
  EXPECT_EQ(demoted, 1u);
  EXPECT_EQ(sweep_results_fingerprint(a.results),
            sweep_results_fingerprint(b.results));
}

TEST(Recovery, JournalRowRoundTripsQuarantinedRows) {
  // The journal must reproduce quarantined rows exactly, or a resumed sweep
  // would silently launder a degraded case back to healthy-looking.
  fault::disarm_all();
  fault::arm("core.reanalyze");
  const Sweep sweep = run_sweep(journaled_sweep(""));
  fault::disarm_all();
  ASSERT_FALSE(sweep.report.clean());

  for (std::size_t i = 0; i < sweep.results.size(); ++i) {
    const std::string line = SweepJournal::journal_row(sweep.results[i], i);
    std::size_t index = 0;
    UseCaseResult parsed;
    ASSERT_TRUE(SweepJournal::parse_journal_row(line, index, parsed))
        << line;
    EXPECT_EQ(index, i);
    EXPECT_EQ(sweep_cache_row(parsed), sweep_cache_row(sweep.results[i]));
    EXPECT_EQ(parsed.outcome, sweep.results[i].outcome);
    EXPECT_EQ(parsed.fail_code, sweep.results[i].fail_code);
    EXPECT_EQ(parsed.attempts, sweep.results[i].attempts);
    EXPECT_EQ(parsed.degradation_level, sweep.results[i].degradation_level);
  }
}

}  // namespace
}  // namespace ucp::exp
