#include <gtest/gtest.h>

#include "energy/model.hpp"

namespace ucp::energy {
namespace {

TEST(TechName, Labels) {
  EXPECT_EQ(tech_name(TechNode::k45nm), "45nm");
  EXPECT_EQ(tech_name(TechNode::k32nm), "32nm");
}

TEST(CacheModel, MonotoneInCapacity) {
  const cache::CacheConfig small{2, 16, 256};
  const cache::CacheConfig big{2, 16, 8192};
  const auto ms = cache_model(small, TechNode::k45nm);
  const auto mb = cache_model(big, TechNode::k45nm);
  EXPECT_LT(ms.read_energy_nj, mb.read_energy_nj);
  EXPECT_LT(ms.leakage_mw, mb.leakage_mw);
  EXPECT_LT(ms.access_time_ns, mb.access_time_ns);
}

TEST(CacheModel, MonotoneInAssociativity) {
  const auto m1 = cache_model({1, 16, 1024}, TechNode::k45nm);
  const auto m4 = cache_model({4, 16, 1024}, TechNode::k45nm);
  EXPECT_LT(m1.read_energy_nj, m4.read_energy_nj);
  EXPECT_LT(m1.access_time_ns, m4.access_time_ns);
}

TEST(CacheModel, TechnologyScalingDirections) {
  // The paper's premise (Section 2.3): newer nodes -> less dynamic energy,
  // more leakage.
  const cache::CacheConfig k{2, 16, 2048};
  const auto m45 = cache_model(k, TechNode::k45nm);
  const auto m32 = cache_model(k, TechNode::k32nm);
  EXPECT_GT(m45.read_energy_nj, m32.read_energy_nj);
  EXPECT_LT(m45.leakage_mw, m32.leakage_mw);
}

TEST(DramModel, BlockSizeRaisesEnergyAndTime) {
  const auto d16 = dram_model(TechNode::k45nm, 16);
  const auto d32 = dram_model(TechNode::k45nm, 32);
  EXPECT_LT(d16.access_energy_nj, d32.access_energy_nj);
  EXPECT_LT(d16.access_time_ns, d32.access_time_ns);
  EXPECT_GT(d16.background_mw, 0.0);
}

TEST(DeriveTiming, ShapeInvariants) {
  for (const auto& named : cache::paper_cache_configs()) {
    for (TechNode tech : {TechNode::k45nm, TechNode::k32nm}) {
      const cache::MemTiming t = derive_timing(named.config, tech);
      EXPECT_GE(t.hit_cycles, 1u);
      EXPECT_GT(t.miss_cycles, t.hit_cycles);
      EXPECT_EQ(t.prefetch_latency, t.miss_cycles);  // Λ = miss service
    }
  }
}

TEST(DeriveTiming, BiggerCacheSlowerHit) {
  const auto t_small = derive_timing({1, 16, 256}, TechNode::k45nm);
  const auto t_big = derive_timing({4, 32, 8192}, TechNode::k45nm);
  EXPECT_LE(t_small.hit_cycles, t_big.hit_cycles);
}

sim::RunMetrics fake_run(std::uint64_t cycles, std::uint64_t fetches,
                         std::uint64_t misses, std::uint64_t pf_fills = 0) {
  sim::RunMetrics m;
  m.total_cycles = cycles;
  m.cache.fetches = fetches;
  m.cache.hits = fetches - misses;
  m.cache.misses = misses;
  m.cache.prefetch_fills = pf_fills;
  return m;
}

TEST(MemoryEnergy, ComponentsAddUp) {
  const cache::CacheConfig k{2, 16, 1024};
  const EnergyBreakdown e =
      memory_energy(fake_run(10000, 3000, 100), k, TechNode::k32nm);
  EXPECT_GT(e.cache_dynamic_nj, 0.0);
  EXPECT_GT(e.dram_dynamic_nj, 0.0);
  EXPECT_GT(e.cache_static_nj, 0.0);
  EXPECT_GT(e.dram_static_nj, 0.0);
  EXPECT_NEAR(e.total_nj(),
              e.cache_dynamic_nj + e.dram_dynamic_nj + e.cache_static_nj +
                  e.dram_static_nj,
              1e-12);
  EXPECT_NEAR(e.static_nj(), e.cache_static_nj + e.dram_static_nj, 1e-12);
}

TEST(MemoryEnergy, StaticScalesWithRuntime) {
  const cache::CacheConfig k{2, 16, 1024};
  const auto short_run = memory_energy(fake_run(1000, 100, 5), k,
                                       TechNode::k32nm);
  const auto long_run = memory_energy(fake_run(10000, 100, 5), k,
                                      TechNode::k32nm);
  EXPECT_NEAR(long_run.static_nj(), 10.0 * short_run.static_nj(), 1e-9);
  EXPECT_NEAR(long_run.dynamic_nj(), short_run.dynamic_nj(), 1e-12);
}

TEST(MemoryEnergy, PrefetchFillsCostDramEnergy) {
  const cache::CacheConfig k{2, 16, 1024};
  const auto without = memory_energy(fake_run(5000, 1000, 50, 0), k,
                                     TechNode::k45nm);
  const auto with = memory_energy(fake_run(5000, 1000, 50, 25), k,
                                  TechNode::k45nm);
  EXPECT_GT(with.dram_dynamic_nj, without.dram_dynamic_nj);
  EXPECT_GT(with.cache_dynamic_nj, without.cache_dynamic_nj);  // fills write
}

TEST(MemoryEnergy, MissConversionToPrefetchIsEnergyNeutralDynamically) {
  // A converted miss swaps one demand fill for one prefetch fill: DRAM
  // dynamic energy must be identical; the win comes from runtime (static).
  const cache::CacheConfig k{2, 16, 1024};
  const auto before = memory_energy(fake_run(8000, 1000, 60, 0), k,
                                    TechNode::k32nm);
  const auto after = memory_energy(fake_run(7000, 1000, 35, 25), k,
                                   TechNode::k32nm);
  EXPECT_NEAR(after.dram_dynamic_nj, before.dram_dynamic_nj, 1e-9);
  EXPECT_LT(after.total_nj(), before.total_nj());
}

TEST(MemoryEnergy, StaticShareIsSubstantial) {
  // The recalibrated model must keep static energy a large share at typical
  // run profiles, or the paper's ACET->energy coupling cannot reproduce.
  const cache::CacheConfig k{2, 16, 1024};
  const auto e = memory_energy(fake_run(20000, 4000, 150), k,
                               TechNode::k32nm);
  EXPECT_GT(e.static_nj() / e.total_nj(), 0.4);
}

}  // namespace
}  // namespace ucp::energy
