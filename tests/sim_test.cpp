#include <gtest/gtest.h>

#include "cache/cache_sim.hpp"
#include "ir/builder.hpp"
#include "ir/layout.hpp"
#include "sim/interpreter.hpp"
#include "support/check.hpp"

namespace ucp::sim {
namespace {

using ir::Cond;
using ir::IrBuilder;
using ir::R;

const cache::CacheConfig kConfig{2, 16, 256};
const cache::MemTiming kTiming{1, 25, 25};

struct RunResult {
  RunMetrics metrics;
  std::vector<std::int64_t> regs;
  std::vector<std::int64_t> data;
};

RunResult run(const ir::Program& p) {
  const ir::Layout layout(p, kConfig.block_bytes);
  cache::CacheSim cache(kConfig, kTiming);
  Interpreter interp(p, layout, cache);
  RunResult r;
  r.metrics = interp.run();
  for (std::uint8_t i = 0; i < ir::kNumRegs; ++i) r.regs.push_back(interp.reg(i));
  r.data = interp.data();
  return r;
}

TEST(ExecCycles, PerOpcodeCosts) {
  EXPECT_EQ(exec_cycles(ir::Opcode::kAdd), 1u);
  EXPECT_EQ(exec_cycles(ir::Opcode::kMul), 3u);
  EXPECT_EQ(exec_cycles(ir::Opcode::kDiv), 12u);
  EXPECT_EQ(exec_cycles(ir::Opcode::kLoad), 2u);
  EXPECT_EQ(exec_cycles(ir::Opcode::kPrefetch), 1u);
}

TEST(Interpreter, ArithmeticSemantics) {
  IrBuilder b("arith");
  b.movi(R(1), 7);
  b.movi(R(2), 3);
  b.add(R(3), R(1), R(2));
  b.sub(R(4), R(1), R(2));
  b.mul(R(5), R(1), R(2));
  b.div(R(6), R(1), R(2));
  b.rem(R(7), R(1), R(2));
  b.and_(R(8), R(1), R(2));
  b.or_(R(9), R(1), R(2));
  b.xor_(R(10), R(1), R(2));
  b.shl(R(11), R(1), R(2));
  b.shr(R(12), R(1), R(2));
  b.halt();
  ir::Program p = b.take();
  const RunResult r = run(p);
  EXPECT_EQ(r.regs[3], 10);
  EXPECT_EQ(r.regs[4], 4);
  EXPECT_EQ(r.regs[5], 21);
  EXPECT_EQ(r.regs[6], 2);
  EXPECT_EQ(r.regs[7], 1);
  EXPECT_EQ(r.regs[8], 3);
  EXPECT_EQ(r.regs[9], 7);
  EXPECT_EQ(r.regs[10], 4);
  EXPECT_EQ(r.regs[11], 56);
  EXPECT_EQ(r.regs[12], 0);
}

TEST(Interpreter, SarIsArithmetic) {
  IrBuilder b("sar");
  b.movi(R(1), -16);
  b.movi(R(2), 2);
  b.sar(R(3), R(1), R(2));
  b.shr(R(4), R(1), R(2));
  b.halt();
  ir::Program p = b.take();
  const RunResult r = run(p);
  EXPECT_EQ(r.regs[3], -4);
  EXPECT_GT(r.regs[4], 0);  // logical shift of negative is huge positive
}

TEST(Interpreter, LoadStoreRoundTrip) {
  IrBuilder b("mem");
  b.movi(R(1), 5);
  b.movi(R(2), 1234);
  b.store(R(1), 3, R(2));  // data[8] = 1234
  b.load(R(3), R(1), 3);
  b.halt();
  ir::Program p = b.take();
  const RunResult r = run(p);
  EXPECT_EQ(r.regs[3], 1234);
  EXPECT_EQ(r.data[8], 1234);
}

TEST(Interpreter, InitialDataImageLoaded) {
  IrBuilder b("image");
  b.load(R(1), R(0), 2);
  b.halt();
  b.set_data({10, 20, 30});
  ir::Program p = b.take();
  const RunResult r = run(p);
  EXPECT_EQ(r.regs[1], 30);
}

TEST(Interpreter, BranchBothWays) {
  IrBuilder b("branchy");
  b.movi(R(1), 5);
  b.if_then_else(
      Cond::kGt, R(1), R(0), [&] { b.movi(R(2), 1); },
      [&] { b.movi(R(2), 2); });
  b.if_then_else(
      Cond::kLt, R(1), R(0), [&] { b.movi(R(3), 1); },
      [&] { b.movi(R(3), 2); });
  b.halt();
  ir::Program p = b.take();
  const RunResult r = run(p);
  EXPECT_EQ(r.regs[2], 1);
  EXPECT_EQ(r.regs[3], 2);
}

TEST(Interpreter, LoopExecutesExactTripCount) {
  IrBuilder b("loop");
  b.movi(R(2), 0);
  b.for_range(R(1), 0, 10, [&] { b.addi(R(2), R(2), 3); });
  b.halt();
  ir::Program p = b.take();
  const RunResult rr = run(p);
  const RunMetrics& m = rr.metrics;
  EXPECT_EQ(rr.regs[2], 30);
  EXPECT_GT(m.instructions, 30u);
  EXPECT_GT(m.total_cycles, m.mem_cycles);
}

TEST(Interpreter, DivisionByZeroThrows) {
  IrBuilder b("divzero");
  b.movi(R(1), 1);
  b.div(R(2), R(1), R(0));
  b.halt();
  ir::Program p = b.take();
  EXPECT_THROW(run(p), InvalidArgument);
}

TEST(Interpreter, DataOutOfBoundsThrows) {
  IrBuilder b("oob");
  b.movi(R(1), -1);
  b.load(R(2), R(1), 0);
  b.halt();
  ir::Program p = b.take();
  EXPECT_THROW(run(p), InvalidArgument);
}

TEST(Interpreter, StepLimitGuardsInfiniteLoops) {
  IrBuilder b("forever");
  // Structurally bounded loop (bound 3) whose body resets the counter:
  // the flow-fact validator must reject the run.
  b.for_range(R(1), 0, 2, [&] { b.movi(R(1), 0); });
  b.halt();
  ir::Program p = b.take();
  EXPECT_THROW(run(p), InvalidArgument);
}

TEST(Interpreter, LoopBoundViolationDetected) {
  // A while loop annotated with a bound smaller than reality.
  IrBuilder b("lied");
  b.movi(R(1), 0);
  b.movi(R(2), 10);
  b.while_loop(
      3,  // actual trips: 10 > 3
      [&] { return IrBuilder::LoopCond{Cond::kLt, R(1), R(2)}; },
      [&] { b.addi(R(1), R(1), 1); });
  b.halt();
  ir::Program p = b.take();
  EXPECT_THROW(run(p), InvalidArgument);
}

TEST(InterpreterChecked, StepBudgetComesBackAsStatus) {
  // A structurally *bounded* loop whose bound vastly exceeds the step
  // budget: the run must stop within the budget and report it on the
  // Status channel instead of hanging or throwing.
  IrBuilder b("longloop");
  b.for_range(R(1), 0, 50'000'000, [&] { b.addi(R(2), R(2), 1); });
  b.halt();
  ir::Program p = b.take();
  RunLimits limits;
  limits.max_steps = 500;
  const Expected<RunMetrics> r =
      run_program_checked(p, kConfig, kTiming, limits);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.code(), ErrorCode::kStepBudgetExhausted);
  EXPECT_NE(r.status().message().find("step"), std::string::npos);
}

TEST(InterpreterChecked, LoopBoundViolationComesBackAsStatus) {
  IrBuilder b("lied2");
  b.movi(R(1), 0);
  b.movi(R(2), 10);
  b.while_loop(
      3,  // actual trips: 10 > 3
      [&] { return IrBuilder::LoopCond{Cond::kLt, R(1), R(2)}; },
      [&] { b.addi(R(1), R(1), 1); });
  b.halt();
  ir::Program p = b.take();
  const Expected<RunMetrics> r = run_program_checked(p, kConfig, kTiming);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.code(), ErrorCode::kLoopBoundViolated);
}

TEST(InterpreterChecked, HealthyRunMatchesThrowingRun) {
  IrBuilder b("healthy");
  b.for_range(R(1), 0, 8, [&] { b.addi(R(2), R(2), 1); });
  b.halt();
  ir::Program p = b.take();
  const RunResult plain = run(p);
  const Expected<RunMetrics> checked = run_program_checked(p, kConfig, kTiming);
  ASSERT_TRUE(checked.ok());
  EXPECT_EQ(checked->instructions, plain.metrics.instructions);
  EXPECT_EQ(checked->total_cycles, plain.metrics.total_cycles);
  EXPECT_EQ(checked->mem_cycles, plain.metrics.mem_cycles);
}

TEST(Interpreter, MemCyclesMatchCacheModel) {
  IrBuilder b("cycles");
  b.movi(R(1), 1);
  b.movi(R(2), 2);
  b.halt();
  ir::Program p = b.take();
  const RunMetrics m = run(p).metrics;
  // 3 instructions in one 16-byte block: 1 miss + 2 hits.
  EXPECT_EQ(m.instructions, 3u);
  EXPECT_EQ(m.cache.misses, 1u);
  EXPECT_EQ(m.cache.hits, 2u);
  EXPECT_EQ(m.mem_cycles, 25u + 1u + 1u);
}

TEST(Interpreter, PrefetchChangesTiming) {
  // Block 1 (instructions 4..7) prefetched from block 0 early enough: the
  // fall-through fetch of block 1 must not pay the full miss.
  IrBuilder b("pf");
  for (int i = 0; i < 8; ++i) b.nop();
  b.halt();
  ir::Program p = b.take();
  const ir::InstrId target = p.block(p.entry()).instrs[4].id;

  // Baseline: 9 instructions span 3 blocks -> 3 cold misses.
  const RunMetrics base = run(p).metrics;
  EXPECT_EQ(base.cache.misses, 3u);

  ir::Instruction pf;
  pf.op = ir::Opcode::kPrefetch;
  pf.pf_target = target;
  p.insert(p.entry(), 0, pf);
  const RunMetrics with_pf = run(p).metrics;
  // The demand fetch of the target block is now a (late) prefetch hit.
  EXPECT_EQ(with_pf.cache.misses, 2u);  // the other two blocks stay cold
  EXPECT_EQ(with_pf.cache.prefetches_issued, 1u);
  EXPECT_GE(with_pf.cache.useful_prefetch_hits, 1u);
}

TEST(Interpreter, TraceHookSeesEveryFetch) {
  IrBuilder b("trace");
  b.movi(R(1), 1);
  b.movi(R(2), 2);
  b.halt();
  ir::Program p = b.take();
  const ir::Layout layout(p, kConfig.block_bytes);
  cache::CacheSim cache(kConfig, kTiming);
  Interpreter interp(p, layout, cache);
  std::vector<std::uint32_t> addresses;
  interp.set_trace_hook([&](const ir::Instruction&, std::uint32_t addr,
                            const cache::FetchResult&) {
    addresses.push_back(addr);
  });
  const RunMetrics m = interp.run();
  EXPECT_EQ(addresses.size(), m.instructions);
  EXPECT_EQ(addresses[0], 0u);
  EXPECT_EQ(addresses[1], 4u);
}

TEST(Interpreter, RunProgramConvenience) {
  IrBuilder b("conv");
  b.movi(R(1), 1);
  b.halt();
  const RunMetrics m = run_program(b.take(), kConfig, kTiming);
  EXPECT_EQ(m.instructions, 2u);
}

TEST(Interpreter, DeterministicAcrossRuns) {
  IrBuilder b("det");
  b.movi(R(2), 0);
  b.for_range(R(1), 0, 50, [&] {
    b.mul(R(3), R(1), R(1));
    b.add(R(2), R(2), R(3));
    b.store(R(1), 0, R(2));
  });
  b.halt();
  ir::Program p = b.take();
  const RunMetrics a = run_program(p, kConfig, kTiming);
  const RunMetrics c = run_program(p, kConfig, kTiming);
  EXPECT_EQ(a.total_cycles, c.total_cycles);
  EXPECT_EQ(a.mem_cycles, c.mem_cycles);
  EXPECT_EQ(a.instructions, c.instructions);
  EXPECT_EQ(a.cache.misses, c.cache.misses);
}

}  // namespace
}  // namespace ucp::sim
