// Differential suite for the sparse bounded-variable revised simplex: every
// solve is cross-checked against the retained dense-tableau reference
// (`solve_*_dense_reference`, the pre-rewrite solver kept verbatim). The two
// implementations share no code beyond the Model, so agreement on status and
// objective over randomized LPs/ILPs — bounded, degenerate, infeasible,
// unbounded — and over every Mälardalen IPET model is strong evidence the
// sparse kernel is a faithful replacement.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/cache_analysis.hpp"
#include "analysis/context_graph.hpp"
#include "cache/config.hpp"
#include "energy/model.hpp"
#include "ilp/model.hpp"
#include "ilp/sparse.hpp"
#include "ir/layout.hpp"
#include "suite/suite.hpp"
#include "wcet/ipet.hpp"

namespace ucp::ilp {
namespace {

struct Xorshift {
  std::uint64_t state;
  explicit Xorshift(std::uint64_t seed) : state(seed * 2654435761u + 1) {}
  std::uint64_t next() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  }
};

/// Both solvers must agree on the status; when optimal, on the objective.
/// (Vertices may legitimately differ under alternative optima, so values
/// are not compared here — vertex determinism is pinned by the sweep
/// fingerprint gates in equivalence_test.cpp instead.)
void expect_lp_agreement(const Model& m, const std::string& what) {
  const Solution sparse = solve_lp(m);
  const Solution dense = solve_lp_dense_reference(m);
  ASSERT_EQ(sparse.status, dense.status)
      << what << ": sparse " << status_name(sparse.status) << " vs dense "
      << status_name(dense.status) << "\n" << m.to_string();
  if (sparse.optimal()) {
    const double scale = std::max(1.0, std::abs(dense.objective));
    EXPECT_NEAR(sparse.objective, dense.objective, 1e-6 * scale)
        << what << "\n" << m.to_string();
  }
}

void expect_ilp_agreement(const Model& m, const std::string& what) {
  const Solution sparse = solve_ilp(m);
  const Solution dense = solve_ilp_dense_reference(m);
  ASSERT_EQ(sparse.status, dense.status)
      << what << ": sparse " << status_name(sparse.status) << " vs dense "
      << status_name(dense.status) << "\n" << m.to_string();
  if (sparse.optimal()) {
    const double scale = std::max(1.0, std::abs(dense.objective));
    EXPECT_NEAR(sparse.objective, dense.objective, 1e-5 * scale)
        << what << "\n" << m.to_string();
  }
}

/// Random model with integer-valued data (keeps the geometry exact, so the
/// two solvers cannot disagree by tolerance luck): mixed kLe/kGe/kEq rows,
/// a mix of finite and infinite upper bounds, optional integrality.
Model random_model(Xorshift& rng, bool integer_vars) {
  Model m;
  const int nvars = 2 + static_cast<int>(rng.next() % 5);
  std::vector<VarId> vars;
  for (int v = 0; v < nvars; ++v) {
    const bool bounded = rng.next() % 4 != 0;
    const double lower = static_cast<double>(rng.next() % 3);
    const double upper =
        bounded ? lower + static_cast<double>(rng.next() % 20) : kInfinity;
    vars.push_back(m.add_var("v" + std::to_string(v), lower, upper,
                             integer_vars && rng.next() % 2 == 0));
  }
  const int nrows = 1 + static_cast<int>(rng.next() % 5);
  for (int c = 0; c < nrows; ++c) {
    std::vector<Term> terms;
    for (int v = 0; v < nvars; ++v) {
      const double coeff = static_cast<double>(rng.next() % 9) - 3.0;
      if (coeff != 0.0) terms.push_back({vars[static_cast<std::size_t>(v)],
                                         coeff});
    }
    if (terms.empty()) continue;
    const Rel rel = static_cast<Rel>(rng.next() % 3);
    // Small rhs values make infeasible and degenerate instances common —
    // deliberately so; the status channel is half the contract.
    const double rhs = static_cast<double>(rng.next() % 40) - 8.0;
    m.add_constraint(std::move(terms), rel, rhs);
  }
  std::vector<Term> obj;
  for (int v = 0; v < nvars; ++v)
    obj.push_back({vars[static_cast<std::size_t>(v)],
                   static_cast<double>(rng.next() % 11) - 4.0});
  m.set_objective(std::move(obj), /*maximize=*/rng.next() % 2 == 0);
  return m;
}

class DifferentialLp : public ::testing::TestWithParam<int> {};

TEST_P(DifferentialLp, RandomLpAgreesWithDenseReference) {
  Xorshift rng(static_cast<std::uint64_t>(GetParam()));
  for (int i = 0; i < 8; ++i) {
    const Model m = random_model(rng, /*integer_vars=*/false);
    expect_lp_agreement(m, "seed " + std::to_string(GetParam()) + " lp#" +
                               std::to_string(i));
  }
}

TEST_P(DifferentialLp, RandomIlpAgreesWithDenseReference) {
  Xorshift rng(static_cast<std::uint64_t>(GetParam()) * 7919u);
  for (int i = 0; i < 4; ++i) {
    const Model m = random_model(rng, /*integer_vars=*/true);
    expect_ilp_agreement(m, "seed " + std::to_string(GetParam()) + " ilp#" +
                                std::to_string(i));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialLp, ::testing::Range(1, 41));

TEST(Differential, InfeasibleRowsAgree) {
  Model m;
  const VarId x = m.add_var("x");
  m.add_constraint({{x, 1.0}}, Rel::kLe, 1.0);
  m.add_constraint({{x, 1.0}}, Rel::kGe, 2.0);
  m.set_objective({{x, 1.0}});
  expect_lp_agreement(m, "infeasible rows");
  expect_ilp_agreement(m, "infeasible rows (ilp)");
}

TEST(Differential, UnboundedRayAgrees) {
  Model m;
  const VarId x = m.add_var("x");
  const VarId y = m.add_var("y");
  m.add_constraint({{x, 1.0}, {y, -1.0}}, Rel::kLe, 3.0);
  m.set_objective({{x, 1.0}});
  expect_lp_agreement(m, "unbounded ray");
}

TEST(Differential, IntegerInfeasibleWindowAgrees) {
  // The LP relaxation is feasible but no integer point exists.
  Model m;
  const VarId x = m.add_var("x", 0.4, 0.6, true);
  m.set_objective({{x, 1.0}});
  expect_ilp_agreement(m, "fractional-only window");
}

TEST(Differential, DegenerateFlowChainAgrees) {
  // Flow conservation with kEq rows and a pinned source: every basic
  // feasible solution is degenerate (many zero flows), the classic stall
  // shape for simplex tie-breaking.
  Model m;
  const VarId src = m.add_var("src", 1, 1);
  const VarId e1 = m.add_var("e1");
  const VarId e2 = m.add_var("e2");
  const VarId e3 = m.add_var("e3");
  const VarId sink = m.add_var("sink");
  m.add_constraint({{src, 1.0}, {e1, -1.0}, {e2, -1.0}}, Rel::kEq, 0.0);
  m.add_constraint({{e1, 1.0}, {e3, -1.0}}, Rel::kEq, 0.0);
  m.add_constraint({{e2, 1.0}, {e3, 1.0}, {sink, -1.0}}, Rel::kEq, 0.0);
  m.set_objective({{e1, 5.0}, {e2, 3.0}, {e3, 2.0}});
  expect_lp_agreement(m, "degenerate flow chain");
  expect_ilp_agreement(m, "degenerate flow chain (ilp)");
}

// --- the real workload: every Mälardalen IPET model ------------------------

const cache::CacheConfig kConfig{2, 16, 1024};
const cache::MemTiming kTiming =
    energy::derive_timing(kConfig, energy::TechNode::k45nm);

TEST(DifferentialIpet, EverySuiteModelAgreesWithDenseReference) {
  for (const suite::BenchmarkInfo& info : suite::all_benchmarks()) {
    const ir::Program program = suite::build_benchmark(info.name);
    const ir::Layout layout(program, kConfig.block_bytes);
    const analysis::ContextGraph graph(program);
    const analysis::CacheAnalysisResult cls =
        analysis::analyze_cache(graph, layout, kConfig);
    const wcet::IpetSystem system(graph);
    const Model model = system.model_with_objective(cls, kTiming);

    const Solution sparse = solve_ilp(model);
    const Solution dense = solve_ilp_dense_reference(model);
    ASSERT_EQ(sparse.status, dense.status) << info.name;
    ASSERT_TRUE(sparse.optimal()) << info.name;
    EXPECT_NEAR(sparse.objective, dense.objective,
                1e-6 * std::max(1.0, dense.objective))
        << info.name;

    // The cached-system path must agree with the standalone model bit for
    // bit: same τ and the exact work counters of a root-level warm chain.
    const wcet::WcetResult via_system = system.solve(cls, kTiming);
    EXPECT_EQ(via_system.tau_mem,
              static_cast<std::uint64_t>(std::llround(sparse.objective)))
        << info.name;
    EXPECT_GE(via_system.stats.lp_solves, 1u) << info.name;
  }
}

TEST(DifferentialIpet, WarmAndColdBranchAndBoundAgree) {
  for (const char* name : {"bs", "fdct", "crc", "matmult", "statemate"}) {
    const ir::Program program = suite::build_benchmark(name);
    const ir::Layout layout(program, kConfig.block_bytes);
    const analysis::ContextGraph graph(program);
    const analysis::CacheAnalysisResult cls =
        analysis::analyze_cache(graph, layout, kConfig);
    const wcet::IpetSystem system(graph);
    const Model model = system.model_with_objective(cls, kTiming);

    // Rebuild the objective vector the system would solve with.
    std::vector<double> obj;
    for (const Term& t : model.objective()) {
      if (static_cast<std::size_t>(t.var) >= obj.size())
        obj.resize(static_cast<std::size_t>(t.var) + 1, 0.0);
      obj[static_cast<std::size_t>(t.var)] = t.coeff;
    }
    const SparseLp lp(model);
    SolveOptions cold;
    cold.warm_start = false;
    const Solution warm_sol = lp.solve_ilp_with(obj);
    const Solution cold_sol = lp.solve_ilp_with(obj, cold);
    ASSERT_EQ(warm_sol.status, cold_sol.status) << name;
    ASSERT_TRUE(warm_sol.optimal()) << name;
    EXPECT_NEAR(warm_sol.objective, cold_sol.objective,
                1e-6 * std::max(1.0, cold_sol.objective))
        << name;
    // A tree that branched at all must report its warm starts.
    if (warm_sol.stats.bb_nodes > 1)
      EXPECT_GT(warm_sol.stats.warm_starts, 0u) << name;
    EXPECT_EQ(cold_sol.stats.warm_starts, 0u) << name;
  }
}

TEST(DifferentialIpet, SolveOrderDoesNotChangeResults) {
  // The canonical-snapshot determinism claim, pinned directly: re-solving
  // with objective A after objectives B and C gives the same vertex (values
  // included) as solving A first on a fresh system.
  const ir::Program program = suite::build_benchmark("fdct");
  const analysis::ContextGraph graph(program);
  const ir::Layout layout(program, kConfig.block_bytes);
  const analysis::CacheAnalysisResult cls =
      analysis::analyze_cache(graph, layout, kConfig);
  const cache::MemTiming other = energy::derive_timing(
      cache::CacheConfig{2, 16, 1024}, energy::TechNode::k32nm);

  const wcet::IpetSystem fresh(graph);
  const wcet::WcetResult first = fresh.solve(cls, kTiming);

  const wcet::IpetSystem reused(graph);
  (void)reused.solve(cls, other);
  (void)reused.solve(cls, other);
  const wcet::WcetResult later = reused.solve(cls, kTiming);

  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(later.ok());
  EXPECT_EQ(first.tau_mem, later.tau_mem);
  EXPECT_EQ(first.edge_counts, later.edge_counts);
  EXPECT_EQ(first.node_counts, later.node_counts);
}

TEST(DifferentialIpet, StatsAccounting) {
  const ir::Program program = suite::build_benchmark("bs");
  const analysis::ContextGraph graph(program);
  const ir::Layout layout(program, kConfig.block_bytes);
  const analysis::CacheAnalysisResult cls =
      analysis::analyze_cache(graph, layout, kConfig);

  const wcet::IpetSystem system(graph);
  const wcet::WcetResult r = system.solve(cls, kTiming);
  ASSERT_TRUE(r.ok());
  EXPECT_GE(r.stats.lp_solves, 1u);
  EXPECT_GE(r.stats.bb_nodes, 1u);
  // Every node solve either warm-starts or runs from the canonical basis;
  // the root always skips phase 1 on the cached-system path.
  EXPECT_GE(r.stats.phase1_skipped, 1u);

  // charge_construction folds the one-time phase 1 in exactly once.
  ilp::SolveStats total = r.stats;
  system.charge_construction(total);
  EXPECT_EQ(total.pivots, r.stats.pivots + system.construction_pivots());
  EXPECT_EQ(total.phase1_skipped, r.stats.phase1_skipped - 1);

  // The one-shot wrapper reports the charged form.
  const wcet::WcetResult one_shot = wcet::compute_wcet(graph, cls, kTiming);
  EXPECT_EQ(one_shot.tau_mem, r.tau_mem);
  EXPECT_EQ(one_shot.stats.pivots, total.pivots);
  EXPECT_EQ(one_shot.stats.phase1_skipped, total.phase1_skipped);
}

}  // namespace
}  // namespace ucp::ilp
