// Property-based suites over the paper's invariants:
//   P1 (Theorem 1): optimization never increases τ_w — for every suite
//       program and a spread of cache configurations and technologies.
//   P2 (soundness): the static WCET bound dominates concrete memory time.
//   P3 (abstract/concrete agreement): an always-hit classification is never
//       contradicted by the concrete cache on the same program.
//   P4 (prefetch-equivalence): optimization never changes program results.
//   P5 (domain laws): must/may joins are commutative, idempotent and
//       monotone w.r.t. updates, over randomized access strings.

#include <gtest/gtest.h>

#include <map>

#include "analysis/cache_analysis.hpp"
#include "analysis/context_graph.hpp"
#include "cache/cache_sim.hpp"
#include "core/optimizer.hpp"
#include "energy/model.hpp"
#include "exp/harness.hpp"
#include "ir/layout.hpp"
#include "sim/interpreter.hpp"
#include "suite/suite.hpp"
#include "support/rng.hpp"
#include "wcet/ipet.hpp"

namespace ucp {
namespace {

struct GridParam {
  const char* program;
  const char* config;
  energy::TechNode tech;
};

std::vector<GridParam> property_grid() {
  // Every program, over a spread of configurations hitting all capacities
  // and associativities at both nodes.
  static const char* kConfigs[] = {"k1", "k3", "k8", "k12", "k15", "k20",
                                   "k27", "k34"};
  std::vector<GridParam> grid;
  std::size_t i = 0;
  for (const suite::BenchmarkInfo& info : suite::all_benchmarks()) {
    const char* config = kConfigs[i++ % (sizeof(kConfigs) / sizeof(*kConfigs))];
    grid.push_back({info.name.c_str(), config, energy::TechNode::k45nm});
    grid.push_back({info.name.c_str(), config, energy::TechNode::k32nm});
  }
  return grid;
}

class PaperInvariantTest : public ::testing::TestWithParam<GridParam> {};

TEST_P(PaperInvariantTest, Theorem1AndSoundnessAndEquivalence) {
  const GridParam param = GetParam();
  const ir::Program p = suite::build_benchmark(param.program);
  const auto& named = cache::paper_cache_config(param.config);
  const cache::MemTiming timing =
      energy::derive_timing(named.config, param.tech);

  // P1: Theorem 1.
  const core::OptimizationResult opt =
      core::optimize_prefetches(p, named.config, timing);
  ASSERT_FALSE(opt.report.wcet_failed);
  EXPECT_LE(opt.report.tau_optimized, opt.report.tau_original)
      << param.program << " on " << param.config;

  // P2: soundness of the bound for both binaries.
  const exp::Metrics orig = exp::measure(p, named.config, param.tech);
  const exp::Metrics optm =
      exp::measure(opt.program, named.config, param.tech);
  EXPECT_GE(orig.tau_wcet, orig.run.mem_cycles) << param.program;
  EXPECT_GE(optm.tau_wcet, optm.run.mem_cycles) << param.program;

  // P4: prefetch-equivalence of results.
  const ir::Layout l0(p, named.config.block_bytes);
  const ir::Layout l1(opt.program, named.config.block_bytes);
  cache::CacheSim c0(named.config, timing), c1(named.config, timing);
  sim::Interpreter i0(p, l0, c0), i1(opt.program, l1, c1);
  i0.run();
  i1.run();
  EXPECT_EQ(i0.data(), i1.data()) << param.program;
}

std::string grid_name(const ::testing::TestParamInfo<GridParam>& info) {
  return std::string(info.param.program) + "_" + info.param.config + "_" +
         energy::tech_name(info.param.tech);
}

INSTANTIATE_TEST_SUITE_P(AllPrograms, PaperInvariantTest,
                         ::testing::ValuesIn(property_grid()), grid_name);

// ---------------------------------------------------------------------------
// P3: abstract always-hit classifications agree with the concrete cache.
// ---------------------------------------------------------------------------

class ClassificationAgreementTest
    : public ::testing::TestWithParam<const char*> {};

TEST_P(ClassificationAgreementTest, AlwaysHitNeverMissesConcretely) {
  const ir::Program p = suite::build_benchmark(GetParam());
  const cache::CacheConfig config{2, 16, 512};
  const cache::MemTiming timing{1, 25, 25};
  const ir::Layout layout(p, config.block_bytes);
  const analysis::ContextGraph graph(p);
  const auto cls = analysis::analyze_cache(graph, layout, config);

  // Map each instruction to its most conservative classification across all
  // contexts (always-hit only if hit in every context).
  std::map<ir::InstrId, bool> always_hit;
  for (analysis::NodeId v = 0; v < graph.num_nodes(); ++v) {
    const ir::BasicBlock& bb = p.block(graph.node(v).block);
    for (std::size_t i = 0; i < bb.instrs.size(); ++i) {
      const bool hit =
          cls.classify(v, i) == analysis::Classification::kAlwaysHit;
      auto [it, inserted] = always_hit.emplace(bb.instrs[i].id, hit);
      if (!inserted) it->second = it->second && hit;
    }
  }

  cache::CacheSim cache_sim(config, timing);
  sim::Interpreter interp(p, layout, cache_sim);
  bool violated = false;
  interp.set_trace_hook([&](const ir::Instruction& in, std::uint32_t,
                            const cache::FetchResult& fr) {
    if (fr.kind == cache::FetchKind::kMiss && always_hit.at(in.id))
      violated = true;
  });
  interp.run();
  EXPECT_FALSE(violated) << GetParam()
                         << ": abstract always-hit missed concretely";
}

INSTANTIATE_TEST_SUITE_P(Kernels, ClassificationAgreementTest,
                         ::testing::Values("crc", "fdct", "matmult", "bs",
                                           "fir", "whet", "cover",
                                           "statemate", "adpcm", "ndes"));

// ---------------------------------------------------------------------------
// P5: abstract domain laws on randomized access strings.
// ---------------------------------------------------------------------------

class DomainLawTest : public ::testing::TestWithParam<int> {};

TEST_P(DomainLawTest, JoinLawsAndEvictionBounds) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 3);
  const auto assoc = static_cast<std::uint8_t>(1 << (GetParam() % 3));

  analysis::AbstractSet a(assoc), b(assoc);
  for (int i = 0; i < 30; ++i) {
    const auto block =
        static_cast<cache::MemBlockId>(rng.next_below(12));
    if (rng.next_bool(0.5))
      a.update_must(block);
    else
      b.update_must(block);
  }

  // Commutativity.
  EXPECT_EQ(analysis::AbstractSet::join_must(a, b),
            analysis::AbstractSet::join_must(b, a));
  EXPECT_EQ(analysis::AbstractSet::join_may(a, b),
            analysis::AbstractSet::join_may(b, a));
  // Idempotence.
  EXPECT_EQ(analysis::AbstractSet::join_must(a, a), a);
  EXPECT_EQ(analysis::AbstractSet::join_may(a, a), a);
  // Must-join only shrinks; may-join only grows.
  const auto jm = analysis::AbstractSet::join_must(a, b);
  EXPECT_LE(jm.size(), std::min(a.size(), b.size()));
  const auto jy = analysis::AbstractSet::join_may(a, b);
  EXPECT_GE(jy.size(), std::max(a.size(), b.size()));
  // Join ages are sound: must >= both, may <= both.
  for (const analysis::AgedBlock& e : jm.entries()) {
    EXPECT_GE(e.age, a.age_of(e.block));
    EXPECT_GE(e.age, b.age_of(e.block));
  }
}

TEST_P(DomainLawTest, MustIsSubsetOfConcreteAlongAnyPath) {
  // Running must-updates along ONE concrete path from the empty state keeps
  // exactly the LRU contents (on a single path must analysis is precise).
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 1);
  const cache::CacheConfig config{2, 16, 256};
  const cache::MemTiming timing{1, 25, 25};
  analysis::AbstractCache must(config);
  cache::CacheSim concrete(config, timing);

  std::uint64_t now = 0;
  for (int i = 0; i < 200; ++i) {
    const auto block = static_cast<cache::MemBlockId>(rng.next_below(24));
    must.update_must(block);
    now += concrete.fetch(block, now).cycles;
  }
  for (cache::MemBlockId blockid = 0; blockid < 24; ++blockid) {
    if (must.must_contain(blockid)) {
      EXPECT_TRUE(concrete.contains(blockid));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DomainLawTest, ::testing::Range(0, 20));

// ---------------------------------------------------------------------------
// Figure-8 style bound: instruction overhead stays small everywhere.
// ---------------------------------------------------------------------------

TEST(InstructionOverhead, StaysMarginalAcrossSample) {
  for (const char* name : {"fdct", "cover", "ndes", "matmult", "jfdctint"}) {
    const ir::Program p = suite::build_benchmark(name);
    for (const char* cfg : {"k2", "k9", "k15"}) {
      const auto& named = cache::paper_cache_config(cfg);
      const cache::MemTiming timing =
          energy::derive_timing(named.config, energy::TechNode::k32nm);
      const core::OptimizationResult opt =
          core::optimize_prefetches(p, named.config, timing);
      const sim::RunMetrics m0 =
          sim::run_program(p, named.config, timing);
      const sim::RunMetrics m1 =
          sim::run_program(opt.program, named.config, timing);
      const double ratio = static_cast<double>(m1.instructions) /
                           static_cast<double>(m0.instructions);
      // Our kernels are much smaller than compiled Mälardalen binaries,
      // so the *relative* overhead per inserted prefetch is larger than the
      // paper's 1.32% (see EXPERIMENTS.md); it must still stay modest.
      EXPECT_LT(ratio, 1.20) << name << " on " << cfg;
      EXPECT_GE(ratio, 1.0 - 1e-12);
    }
  }
}

}  // namespace
}  // namespace ucp
