// Soundness-fuzzer suites: the differential oracle battery, the
// delta-debug shrinker, corpus round-tripping + committed-corpus replay,
// and campaign determinism / resume / fault-crossing.

#include <dirent.h>
#include <unistd.h>

#include <cstdio>
#include <algorithm>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "energy/model.hpp"
#include "fuzz/campaign.hpp"
#include "fuzz/corpus.hpp"
#include "fuzz/oracles.hpp"
#include "fuzz/shrink.hpp"
#include "gen/generator.hpp"
#include "ir/builder.hpp"
#include "ir/text_codec.hpp"
#include "ir/verify.hpp"
#include "support/fault_injection.hpp"
#include "support/rng.hpp"

namespace ucp {
namespace {

using fuzz::Oracle;

fuzz::OracleOptions k7_options() {
  fuzz::OracleOptions options;
  const cache::NamedCacheConfig& named = cache::paper_cache_config("k7");
  options.config = named.config;
  options.timing = energy::derive_timing(named.config, energy::TechNode::k45nm);
  return options;
}

ir::Program generated(std::uint64_t seed) {
  Rng rng(split_seed(seed, 0));
  const gen::GenKnobs knobs = gen::sample_knobs(rng);
  return gen::generate_program(split_seed(seed, 1), knobs);
}

struct TempFile {
  std::string path;
  explicit TempFile(const std::string& name)
      : path(testing::TempDir() + name + "." + std::to_string(::getpid())) {
    std::remove(path.c_str());
  }
  ~TempFile() { std::remove(path.c_str()); }
};

// --- oracles ---------------------------------------------------------------

TEST(Oracles, NamesRoundTrip) {
  for (const Oracle o :
       {Oracle::kNone, Oracle::kRuntime, Oracle::kSimVsIpet, Oracle::kMustHit,
        Oracle::kMustMiss, Oracle::kPersistence, Oracle::kTheorem1,
        Oracle::kSparseVsDense, Oracle::kInjected})
    EXPECT_EQ(fuzz::oracle_from_name(fuzz::oracle_name(o)), o);
  EXPECT_THROW(fuzz::oracle_from_name("bogus"), InvalidArgument);
}

TEST(Oracles, GeneratedProgramsPassTheBattery) {
  const fuzz::OracleOptions options = k7_options();
  int full_runs = 0;
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    fault::disarm_all();
    const fuzz::OracleReport report =
        fuzz::check_program(generated(seed), options);
    EXPECT_FALSE(report.violated())
        << "seed " << seed << ": " << fuzz::oracle_name(report.violation)
        << " — " << report.detail;
    if (report.pipeline_ok) {
      ++full_runs;
      EXPECT_GT(report.checks_run, 0u);
      EXPECT_LE(report.sim_mem_cycles, report.tau_original) << "seed " << seed;
    }
  }
  EXPECT_GT(full_runs, 0) << "every case skipped; oracle battery never ran";
}

TEST(Oracles, InjectedFaultForcesExplainedViolation) {
  fault::ScopedFault fault("fuzz.oracle");
  const fuzz::OracleReport report =
      fuzz::check_program(generated(3), k7_options());
  EXPECT_EQ(report.violation, Oracle::kInjected);
}

TEST(Oracles, ArmedSimFaultIsASkipNotAViolation) {
  fault::ScopedFault fault("sim.step");
  const fuzz::OracleReport report =
      fuzz::check_program(generated(3), k7_options());
  EXPECT_FALSE(report.violated()) << report.detail;
  EXPECT_FALSE(report.pipeline_ok);
}

TEST(Oracles, VerdictIsDeterministic) {
  const fuzz::OracleOptions options = k7_options();
  const ir::Program p = generated(5);
  const fuzz::OracleReport a = fuzz::check_program(p, options);
  const fuzz::OracleReport b = fuzz::check_program(p, options);
  EXPECT_EQ(a.violation, b.violation);
  EXPECT_EQ(a.tau_original, b.tau_original);
  EXPECT_EQ(a.tau_optimized, b.tau_optimized);
  EXPECT_EQ(a.sim_mem_cycles, b.sim_mem_cycles);
  EXPECT_EQ(a.instructions, b.instructions);
}

// --- shrinker --------------------------------------------------------------

TEST(Shrink, RebuildReachableDropsOrphanBlocks) {
  const ir::Program p = generated(7);
  ir::Program copy(p);
  // Orphan: a block nothing points at. rebuild must drop it and keep the
  // rest verifying.
  const ir::BlockId orphan = copy.add_block("orphan");
  {
    ir::Instruction halt;
    halt.op = ir::Opcode::kHalt;
    copy.append(orphan, halt);
  }
  const ir::Program rebuilt = fuzz::rebuild_reachable(copy);
  EXPECT_EQ(rebuilt.num_blocks(), p.num_blocks());
  EXPECT_TRUE(ir::verify_issues(rebuilt).empty());
  EXPECT_EQ(ir::to_text(rebuilt), ir::to_text(p));
}

TEST(Shrink, MinimizesToThePredicateCore) {
  const ir::Program p = generated(11);
  // Synthetic predicate: "program still contains a store". The minimum is
  // tiny; the shrinker should get far below the input size.
  const auto has_store = [](const ir::Program& candidate) {
    for (ir::BlockId b = 0; b < candidate.num_blocks(); ++b)
      for (const auto& in : candidate.block(b).instrs)
        if (in.op == ir::Opcode::kStore) return true;
    return false;
  };
  ASSERT_TRUE(has_store(p));
  const fuzz::ShrinkResult r = fuzz::shrink_program(p, has_store);
  EXPECT_TRUE(r.reproduced);
  EXPECT_FALSE(r.aborted);
  EXPECT_GT(r.accepted, 0u);
  EXPECT_TRUE(has_store(r.program));
  EXPECT_TRUE(ir::verify_issues(r.program).empty());
  std::size_t before = 0, after = 0;
  for (ir::BlockId b = 0; b < p.num_blocks(); ++b)
    before += p.block(b).instrs.size();
  for (ir::BlockId b = 0; b < r.program.num_blocks(); ++b)
    after += r.program.block(b).instrs.size();
  EXPECT_LT(after, before);
}

TEST(Shrink, UnreproducibleInputIsReturnedUnshrunk) {
  const ir::Program p = generated(11);
  const fuzz::ShrinkResult r =
      fuzz::shrink_program(p, [](const ir::Program&) { return false; });
  EXPECT_FALSE(r.reproduced);
  EXPECT_EQ(r.checks, 1u);
  EXPECT_EQ(ir::to_text(r.program), ir::to_text(p));
}

TEST(Shrink, ShrinkFaultAbortsCleanly) {
  fault::ScopedFault fault("fuzz.shrink");
  const ir::Program p = generated(11);
  const fuzz::ShrinkResult r =
      fuzz::shrink_program(p, [](const ir::Program&) { return true; });
  EXPECT_TRUE(r.reproduced);
  EXPECT_TRUE(r.aborted);
  EXPECT_TRUE(ir::verify_issues(r.program).empty());
}

// --- corpus ----------------------------------------------------------------

TEST(Corpus, EntryRoundTripsThroughText) {
  fuzz::CorpusEntry entry;
  entry.name = "roundtrip";
  entry.seed = 0xdeadbeef;
  entry.knobs = "blocks=12 depth=2";
  entry.expect = Oracle::kTheorem1;
  entry.detail = "example detail line";
  entry.fault_site = "fuzz.oracle";
  entry.config_id = "k13";
  entry.program = generated(13);

  const std::string text = fuzz::corpus_to_text(entry);
  const fuzz::CorpusEntry back = fuzz::corpus_from_text(text, "roundtrip");
  EXPECT_EQ(back.seed, entry.seed);
  EXPECT_EQ(back.knobs, entry.knobs);
  EXPECT_EQ(back.expect, entry.expect);
  EXPECT_EQ(back.detail, entry.detail);
  EXPECT_EQ(back.fault_site, entry.fault_site);
  EXPECT_EQ(back.config_id, entry.config_id);
  EXPECT_EQ(ir::to_text(back.program), ir::to_text(entry.program));
  // Byte-stable: serializing the parsed entry reproduces the text.
  EXPECT_EQ(fuzz::corpus_to_text(back), text);
}

TEST(Corpus, WriteReadReplay) {
  TempFile file("corpus_entry");
  fuzz::CorpusEntry entry;
  entry.seed = 42;
  entry.program = generated(42);
  ASSERT_TRUE(fuzz::write_corpus_entry(file.path, entry).ok());
  const auto read = fuzz::read_corpus_entry(file.path);
  ASSERT_TRUE(read.ok()) << read.status().message();
  const Status replayed = fuzz::replay_corpus_entry(*read);
  EXPECT_TRUE(replayed.ok()) << replayed.message();
}

TEST(Corpus, MalformedFileIsRejected) {
  TempFile file("corpus_bad");
  {
    std::ofstream out(file.path);
    out << "just some text\n";
  }
  EXPECT_FALSE(fuzz::read_corpus_entry(file.path).ok());
  EXPECT_FALSE(fuzz::read_corpus_entry(file.path + ".missing").ok());
}

// Every committed repro in tests/corpus must replay exactly as recorded —
// this is the regression gate past campaign findings feed into.
TEST(Corpus, CommittedCorpusReplays) {
  const std::vector<std::string> files =
      fuzz::list_corpus_files(UCP_CORPUS_DIR);
  ASSERT_FALSE(files.empty()) << "no committed corpus under " UCP_CORPUS_DIR;
  for (const std::string& path : files) {
    fault::disarm_all();
    const auto entry = fuzz::read_corpus_entry(path);
    ASSERT_TRUE(entry.ok()) << path << ": " << entry.status().message();
    const Status replayed = fuzz::replay_corpus_entry(*entry);
    EXPECT_TRUE(replayed.ok()) << path << ": " << replayed.message();
  }
}

// Every file under tests/corpus/adversarial is a codec attack: malformed,
// truncated, oversized or limit-busting IR text harvested from hardening
// work. The checked parser must reject each with a structured
// kMalformedInput Status — never an exception, abort, or hang. The plain
// list_corpus_files glob skips these (they are .txt, not .ucp repros).
TEST(Corpus, AdversarialCodecCorpusRejectsStructurally) {
  const std::string dir = std::string(UCP_CORPUS_DIR) + "/adversarial";
  std::vector<std::string> files;
  if (DIR* d = ::opendir(dir.c_str())) {
    while (dirent* e = ::readdir(d)) {
      const std::string name = e->d_name;
      if (name.size() > 4 && name.compare(name.size() - 4, 4, ".txt") == 0)
        files.push_back(dir + "/" + name);
    }
    ::closedir(d);
  }
  std::sort(files.begin(), files.end());
  ASSERT_FALSE(files.empty()) << "no adversarial corpus under " << dir;
  for (const std::string& path : files) {
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in) << path;
    const std::string text((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
    const auto parsed = ir::from_text_checked(text);
    EXPECT_FALSE(parsed.ok()) << path << " unexpectedly parsed";
    if (!parsed.ok()) {
      EXPECT_EQ(parsed.status().code(), ErrorCode::kMalformedInput)
          << path << ": " << parsed.status().message();
      EXPECT_FALSE(parsed.status().message().empty()) << path;
    }
  }
}

// Tightened CodecLimits must trip as structured rejections on otherwise
// valid programs — the daemon leans on these caps to bound per-request work.
TEST(Corpus, CodecLimitsRejectStructurally) {
  const ir::Program program = generated(0xc0dec);
  const std::string text = ir::to_text(program);
  ASSERT_TRUE(ir::from_text_checked(text).ok());

  const auto expect_rejected = [&](const ir::CodecLimits& limits,
                                   const char* what) {
    const auto parsed = ir::from_text_checked(text, limits);
    ASSERT_FALSE(parsed.ok()) << what;
    EXPECT_EQ(parsed.status().code(), ErrorCode::kMalformedInput) << what;
  };
  ir::CodecLimits limits;
  limits.max_bytes = 16;
  expect_rejected(limits, "max_bytes");
  limits = {};
  limits.max_lines = 4;
  expect_rejected(limits, "max_lines");
  limits = {};
  limits.max_blocks = 1;
  expect_rejected(limits, "max_blocks");
  limits = {};
  limits.max_instructions = 2;
  expect_rejected(limits, "max_instructions");
  limits = {};
  limits.max_name_bytes = 1;
  expect_rejected(limits, "max_name_bytes");
}

// --- campaign --------------------------------------------------------------

fuzz::CampaignOptions small_campaign() {
  fuzz::CampaignOptions options;
  options.seed = 0x5eed;
  options.cases = 12;
  options.shrink = false;
  return options;
}

TEST(Campaign, DeterministicAcrossRunsAndTraceFlag) {
  fault::disarm_all();
  fuzz::CampaignOptions options = small_campaign();
  const fuzz::CampaignResult a = fuzz::run_campaign(options);
  options.trace = true;  // per-case stderr lines must not change verdicts
  const fuzz::CampaignResult b = fuzz::run_campaign(options);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.verdicts.size(), b.verdicts.size());
  EXPECT_EQ(a.unexplained, 0u);
  for (std::size_t i = 0; i < a.verdicts.size(); ++i)
    EXPECT_EQ(a.verdicts[i].line(), b.verdicts[i].line()) << "case " << i;
}

TEST(Campaign, LargeScaleCaseIsLargeDeterministicAndClean) {
  // The fuzz_smoke option: the final case's knobs are overridden to the
  // scaling-bench recipe. It must dwarf every sampled-knob case, stay
  // deterministic, and come back violation-free like any other case.
  fault::disarm_all();
  fuzz::CampaignOptions options = small_campaign();
  options.large_scale = 10;
  const fuzz::CampaignResult a = fuzz::run_campaign(options);
  const fuzz::CampaignResult b = fuzz::run_campaign(options);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.unexplained, 0u);
  ASSERT_EQ(a.verdicts.size(), options.cases);
  const fuzz::CaseVerdict& large = a.verdicts.back();
  EXPECT_FALSE(large.violated());
  EXPECT_TRUE(large.pipeline_ok);

  // Pin the override recipe by regenerating the designated case outside
  // the campaign: same seed split, scaling-bench knobs. The program must
  // be statically large — the sampled knobs never approach 240 blocks.
  const std::uint64_t case_seed =
      split_seed(options.seed, options.cases - 1);
  Rng knob_rng(split_seed(case_seed, 0));
  gen::GenKnobs knobs = gen::sample_knobs(knob_rng);
  knobs.target_blocks = 24 * options.large_scale;
  knobs.max_loop_depth = 2;
  knobs.working_set_words = 1024;
  const ir::Program large_program =
      gen::generate_program(split_seed(case_seed, 1), knobs);
  EXPECT_GE(large_program.num_blocks(), 150u);

  // Only the designated case changes relative to a plain campaign: the
  // override draws nothing from the sampled streams.
  fuzz::CampaignOptions plain = small_campaign();
  const fuzz::CampaignResult base = fuzz::run_campaign(plain);
  ASSERT_EQ(base.verdicts.size(), a.verdicts.size());
  for (std::size_t i = 0; i + 1 < a.verdicts.size(); ++i)
    EXPECT_EQ(a.verdicts[i].line(), base.verdicts[i].line()) << "case " << i;
  EXPECT_NE(large.line(), base.verdicts.back().line());
}

TEST(Campaign, VerdictLinesParseBack) {
  fault::disarm_all();
  const fuzz::CampaignResult r = fuzz::run_campaign(small_campaign());
  for (const fuzz::CaseVerdict& v : r.verdicts) {
    fuzz::CaseVerdict back;
    ASSERT_TRUE(fuzz::CaseVerdict::parse(v.line(), back)) << v.line();
    EXPECT_EQ(back.line(), v.line());
  }
}

TEST(Campaign, JournalResumeContinuesBitIdentical) {
  fault::disarm_all();
  TempFile journal("fuzz_journal");

  fuzz::CampaignOptions options = small_campaign();
  options.journal_path = journal.path;
  options.cases = 6;
  const fuzz::CampaignResult first = fuzz::run_campaign(options);
  EXPECT_EQ(first.resumed, 0u);

  // Same campaign, extended: the 6 journaled verdicts are reused, and the
  // final fingerprint equals an uninterrupted 12-case run.
  options.cases = 12;
  const fuzz::CampaignResult resumed = fuzz::run_campaign(options);
  EXPECT_EQ(resumed.resumed, 6u);

  fuzz::CampaignOptions fresh = small_campaign();
  fresh.cases = 12;
  const fuzz::CampaignResult uninterrupted = fuzz::run_campaign(fresh);
  EXPECT_EQ(resumed.fingerprint, uninterrupted.fingerprint);
}

TEST(Campaign, TornJournalTailIsDiscarded) {
  fault::disarm_all();
  TempFile journal("fuzz_torn_journal");
  fuzz::CampaignOptions options = small_campaign();
  options.journal_path = journal.path;
  const fuzz::CampaignResult first = fuzz::run_campaign(options);

  // Chop mid-record, as a crash between write and fsync would.
  std::ifstream in(journal.path, std::ios::binary);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  in.close();
  ASSERT_GT(contents.size(), 40u);
  std::ofstream out(journal.path, std::ios::binary | std::ios::trunc);
  out << contents.substr(0, contents.size() - 25);
  out.close();

  const fuzz::CampaignResult resumed = fuzz::run_campaign(options);
  EXPECT_GT(resumed.resumed, 0u);
  EXPECT_LT(resumed.resumed, options.cases);
  EXPECT_EQ(resumed.fingerprint, first.fingerprint);
}

TEST(Campaign, MismatchedOptionsResetTheJournal) {
  fault::disarm_all();
  TempFile journal("fuzz_reset_journal");
  fuzz::CampaignOptions options = small_campaign();
  options.journal_path = journal.path;
  fuzz::run_campaign(options);

  options.seed += 1;  // different campaign; journal must not be reused
  const fuzz::CampaignResult r = fuzz::run_campaign(options);
  EXPECT_EQ(r.resumed, 0u);
  EXPECT_NE(r.journal_note.find("reset"), std::string::npos)
      << r.journal_note;
}

// Crossing the oracles with the fault registry: every armed compute-path
// fault must come back explained (a skip, an identity degradation, or the
// kInjected verdict) — never as an unexplained violation.
TEST(Campaign, ArmedFaultsNeverProduceUnexplainedViolations) {
  fault::disarm_all();
  fuzz::CampaignOptions options = small_campaign();
  options.cases = 24;
  options.fault_every = 3;
  const fuzz::CampaignResult r = fuzz::run_campaign(options);
  EXPECT_EQ(r.unexplained, 0u);
  EXPECT_EQ(r.faulted, 8u);
  bool saw_injected = false;
  for (const fuzz::CaseVerdict& v : r.verdicts) {
    if (v.violated()) {
      EXPECT_FALSE(v.fault_site.empty()) << v.line();
    }
    if (v.violation == Oracle::kInjected) saw_injected = true;
  }
  EXPECT_TRUE(saw_injected) << "fault rotation never hit fuzz.oracle";
  fault::disarm_all();
}

TEST(Campaign, CleanCampaignWritesNoRepros) {
  fault::disarm_all();
  const std::string dir = testing::TempDir() + "fuzz_corpus_clean." +
                          std::to_string(::getpid());
  ::system(("rm -rf '" + dir + "' && mkdir -p '" + dir + "'").c_str());
  fuzz::CampaignOptions options = small_campaign();
  options.corpus_dir = dir;
  const fuzz::CampaignResult r = fuzz::run_campaign(options);
  EXPECT_EQ(r.unexplained, 0u);
  EXPECT_TRUE(r.repro_paths.empty());
  EXPECT_TRUE(fuzz::list_corpus_files(dir).empty());
  ::system(("rm -rf '" + dir + "'").c_str());
}

// An injected (explained) violation is still written as a repro — carrying
// its `# fault` header — and that repro replays against the expectation.
TEST(Campaign, InjectedViolationIsWrittenAsReplayableRepro) {
  fault::disarm_all();
  const std::string dir = testing::TempDir() + "fuzz_corpus_repro." +
                          std::to_string(::getpid());
  ::system(("rm -rf '" + dir + "' && mkdir -p '" + dir + "'").c_str());

  fuzz::CampaignOptions options = small_campaign();
  options.cases = 8;       // with fault_every=1, case index 7 arms fuzz.oracle
  options.fault_every = 1;
  options.corpus_dir = dir;
  const fuzz::CampaignResult r = fuzz::run_campaign(options);
  EXPECT_EQ(r.unexplained, 0u);
  ASSERT_FALSE(r.repro_paths.empty());

  fault::disarm_all();
  const auto entry = fuzz::read_corpus_entry(r.repro_paths.front());
  ASSERT_TRUE(entry.ok()) << entry.status().message();
  EXPECT_EQ(entry->expect, Oracle::kInjected);
  EXPECT_EQ(entry->fault_site, "fuzz.oracle");
  const Status replayed = fuzz::replay_corpus_entry(*entry);
  EXPECT_TRUE(replayed.ok()) << replayed.message();
  ::system(("rm -rf '" + dir + "'").c_str());
}

}  // namespace
}  // namespace ucp
