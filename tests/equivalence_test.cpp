// Bit-identity equivalence suite for the sweep fast paths.
//
// The perf work (incremental optimizer re-analysis, cross-tech result
// sharing, dynamic scheduling) is only admissible because it changes *no
// output bit*: every UseCaseResult row — compared via the v2 sweep-cache
// row including its FNV-1a checksum — must equal the from-scratch
// reference path, for healthy, degraded and failed cases alike. These
// tests pin that claim; a row mismatch here means the fast path is wrong,
// not that the test is stale.

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "cache/config.hpp"
#include "core/optimizer.hpp"
#include "energy/model.hpp"
#include "exp/harness.hpp"
#include "ir/program.hpp"
#include "suite/suite.hpp"
#include "support/fault_injection.hpp"

namespace ucp::exp {
namespace {

core::OptimizerOptions reference_options() {
  core::OptimizerOptions options;
  options.incremental_reanalysis = false;
  return options;
}

void expect_rows_equal(const UseCaseResult& fast, const UseCaseResult& ref,
                       const std::string& what) {
  EXPECT_EQ(sweep_cache_row(fast), sweep_cache_row(ref)) << what;
  EXPECT_EQ(fast.outcome, ref.outcome) << what;
  EXPECT_EQ(fast.fail_stage, ref.fail_stage) << what;
  EXPECT_EQ(fast.fail_code, ref.fail_code) << what;
  EXPECT_EQ(fast.fail_detail, ref.fail_detail) << what;
}

// --- tentpole layer 1: incremental re-analysis ------------------------------

TEST(Equivalence, IncrementalOptimizerMatchesFromScratchReference) {
  const std::vector<std::string> programs = {"bs", "fdct", "crc"};
  const std::vector<std::string> configs = {"k1", "k13", "k25", "k36"};
  bool saw_candidates = false;
  for (const std::string& name : programs) {
    const ir::Program p = suite::build_benchmark(name);
    for (const std::string& cfg : configs) {
      const auto& k = cache::paper_cache_config(cfg);
      const std::string what = name + "/" + cfg;
      const UseCaseResult inc =
          run_use_case(p, name, k, energy::TechNode::k45nm);
      const UseCaseResult ref = run_use_case(p, name, k,
                                             energy::TechNode::k45nm,
                                             reference_options());
      expect_rows_equal(inc, ref, what);

      // Acceptance criterion: the common path never runs a from-scratch
      // analyze_cache per candidate, and both modes evaluate the *same*
      // candidate sequence (the eval budget is mode-independent).
      EXPECT_EQ(inc.report.full_reanalyses, 0u) << what;
      EXPECT_EQ(inc.report.incremental_reanalyses, ref.report.full_reanalyses)
          << what;
      EXPECT_EQ(ref.report.incremental_reanalyses, 0u) << what;
      if (inc.report.incremental_reanalyses > 0) {
        saw_candidates = true;
        // The point of the exercise: trials touch a strict subset of the
        // context graph on average, never more than the whole graph.
        EXPECT_LE(inc.report.nodes_reanalyzed,
                  inc.report.graph_nodes * inc.report.incremental_reanalyses)
            << what;
        EXPECT_GT(inc.report.graph_nodes, 0u) << what;
      }
    }
  }
  // The grid slice must actually exercise candidate evaluation, or the
  // comparison above is vacuous.
  EXPECT_TRUE(saw_candidates);
}

// --- tentpole layer 2: cross-tech result sharing ----------------------------

TEST(Equivalence, GroupPathMatchesPerCaseRows) {
  const std::vector<energy::TechNode> techs = {energy::TechNode::k45nm,
                                               energy::TechNode::k32nm};
  for (const std::string& name : {"bs", "fdct", "crc"}) {
    const ir::Program p = suite::build_benchmark(name);
    for (const std::string& cfg : {"k1", "k25"}) {
      const auto& k = cache::paper_cache_config(cfg);
      const std::vector<UseCaseResult> grouped =
          run_use_case_group(p, name, k, techs);
      ASSERT_EQ(grouped.size(), techs.size());
      for (std::size_t t = 0; t < techs.size(); ++t) {
        const UseCaseResult ref = run_use_case(p, name, k, techs[t]);
        expect_rows_equal(grouped[t], ref,
                          name + "/" + cfg + "/" +
                              energy::tech_name(techs[t]));
      }
    }
  }
}

// --- whole pipeline: fast sweep vs reference sweep --------------------------

TEST(Equivalence, FastSweepFingerprintMatchesReferenceSweep) {
  SweepOptions fast;
  fast.programs = {"bs", "fdct"};
  fast.config_stride = 12;  // k1, k13, k25
  fast.threads = 1;
  fast.progress_every = 0;

  SweepOptions reference = fast;
  reference.share_across_techs = false;
  reference.optimizer = reference_options();

  const Sweep a = run_sweep(fast);
  const Sweep b = run_sweep(reference);
  ASSERT_EQ(a.results.size(), b.results.size());
  EXPECT_EQ(sweep_results_fingerprint(a.results),
            sweep_results_fingerprint(b.results));
  EXPECT_TRUE(a.report.clean());
  EXPECT_TRUE(b.report.clean());
}

// --- quarantined cases stay bit-identical too -------------------------------

TEST(Equivalence, DegradedCaseRowsMatchUnderReanalysisFault) {
  // core.reanalyze fires at the same candidate-evaluation point in both
  // modes, so an injected mid-optimization failure must degrade both paths
  // into the same row (fdct/k1 is known to evaluate candidates).
  const ir::Program p = suite::build_benchmark("fdct");
  const auto& k = cache::paper_cache_config("k1");
  fault::disarm_all();
  UseCaseResult inc;
  {
    fault::ScopedFault f("core.reanalyze");
    inc = run_use_case(p, "fdct", k, energy::TechNode::k45nm);
  }
  UseCaseResult ref;
  {
    fault::ScopedFault f("core.reanalyze");
    ref = run_use_case(p, "fdct", k, energy::TechNode::k45nm,
                       reference_options());
  }
  ASSERT_EQ(inc.outcome, CaseOutcome::kDegraded);
  expect_rows_equal(inc, ref, "fdct/k1 under core.reanalyze");
}

// First configuration whose derived timing coincides across both tech
// nodes, i.e. whose two cases form a single shared group.
const cache::NamedCacheConfig& shared_timing_config() {
  for (const cache::NamedCacheConfig& named : cache::paper_cache_configs()) {
    const cache::MemTiming a =
        energy::derive_timing(named.config, energy::TechNode::k45nm);
    const cache::MemTiming b =
        energy::derive_timing(named.config, energy::TechNode::k32nm);
    if (a.hit_cycles == b.hit_cycles && a.miss_cycles == b.miss_cycles &&
        a.prefetch_latency == b.prefetch_latency) {
      return named;
    }
  }
  throw std::logic_error("no config with tech-invariant timing");
}

TEST(Equivalence, GroupPathDegradedRowsMatchPerCase) {
  // A one-shot optimizer fault against a single shared group must degrade
  // every member exactly like per-case runs that each hit the same fault.
  const ir::Program p = suite::build_benchmark("bs");
  const auto& k = shared_timing_config();
  const std::vector<energy::TechNode> techs = {energy::TechNode::k45nm,
                                               energy::TechNode::k32nm};
  fault::disarm_all();
  std::vector<UseCaseResult> grouped;
  {
    fault::ScopedFault f("core.deadline");
    grouped = run_use_case_group(p, "bs", k, techs);
  }
  ASSERT_EQ(grouped.size(), 2u);
  for (std::size_t t = 0; t < techs.size(); ++t) {
    fault::ScopedFault f("core.deadline");
    const UseCaseResult ref = run_use_case(p, "bs", k, techs[t]);
    ASSERT_EQ(ref.outcome, CaseOutcome::kDegraded);
    expect_rows_equal(grouped[t], ref,
                      std::string("bs deadline/") +
                          energy::tech_name(techs[t]));
  }
}

// --- solver-kernel fault gates ----------------------------------------------
// The sparse simplex consults ilp.pivot at every pivot and ilp.bb_node at
// every branch-and-bound node. A one-shot fault on either site must hit the
// same solve of the same use case on every run (the sweep schedule, the
// per-program system prebuild and the solver itself are all deterministic),
// quarantine exactly that case, and leave every row — including the
// quarantined one — bit-identical between repeats. This pins both the
// containment of solver budget exhaustion and the determinism of the
// warm-started branch-and-bound under it.

Sweep strided_sweep_with_fault(const char* site) {
  SweepOptions options;
  options.programs = {"bs", "fdct"};
  options.config_stride = 12;  // k1, k13, k25
  options.threads = 1;
  options.progress_every = 0;
  fault::ScopedFault f(site);
  return run_sweep(options);
}

void expect_solver_fault_contained(const char* site) {
  fault::disarm_all();
  const Sweep a = strided_sweep_with_fault(site);
  const Sweep b = strided_sweep_with_fault(site);

  // The fault must actually land: some case degrades or fails with the
  // solver's iteration-limit error code instead of vanishing silently.
  EXPECT_FALSE(a.report.clean()) << site;
  ASSERT_FALSE(a.report.quarantine.empty()) << site;
  bool saw_iteration_limit = false;
  for (const DegradedCase& q : a.report.quarantine)
    saw_iteration_limit |= q.code == ErrorCode::kIterationLimit;
  EXPECT_TRUE(saw_iteration_limit) << site;

  // And it must land identically every time.
  ASSERT_EQ(a.results.size(), b.results.size()) << site;
  EXPECT_EQ(sweep_results_fingerprint(a.results),
            sweep_results_fingerprint(b.results))
      << site;
  ASSERT_EQ(a.report.quarantine.size(), b.report.quarantine.size()) << site;
  for (std::size_t i = 0; i < a.report.quarantine.size(); ++i) {
    EXPECT_EQ(a.report.quarantine[i].program, b.report.quarantine[i].program)
        << site;
    EXPECT_EQ(a.report.quarantine[i].config_id,
              b.report.quarantine[i].config_id)
        << site;
    EXPECT_EQ(a.report.quarantine[i].stage, b.report.quarantine[i].stage)
        << site;
  }
}

TEST(Equivalence, PivotFaultQuarantinesDeterministically) {
  expect_solver_fault_contained("ilp.pivot");
}

TEST(Equivalence, BbNodeFaultQuarantinesDeterministically) {
  expect_solver_fault_contained("ilp.bb_node");
}

TEST(Equivalence, GroupPathFailedRowsMatchPerCase) {
  // Same idea for the hard-failure channel: a baseline measurement fault
  // fails all group members exactly like the per-case path.
  const ir::Program p = suite::build_benchmark("bs");
  const auto& k = shared_timing_config();
  const std::vector<energy::TechNode> techs = {energy::TechNode::k45nm,
                                               energy::TechNode::k32nm};
  fault::disarm_all();
  std::vector<UseCaseResult> grouped;
  {
    fault::ScopedFault f("exp.measure");
    grouped = run_use_case_group(p, "bs", k, techs);
  }
  ASSERT_EQ(grouped.size(), 2u);
  for (std::size_t t = 0; t < techs.size(); ++t) {
    fault::ScopedFault f("exp.measure");
    const UseCaseResult ref = run_use_case(p, "bs", k, techs[t]);
    ASSERT_EQ(ref.outcome, CaseOutcome::kFailed);
    EXPECT_EQ(ref.fail_stage, "measure_original");
    expect_rows_equal(grouped[t], ref,
                      std::string("bs measure/") +
                          energy::tech_name(techs[t]));
  }
}

}  // namespace
}  // namespace ucp::exp
