// Bit-identity equivalence suite for the sweep fast paths.
//
// The perf work (incremental optimizer re-analysis, cross-tech result
// sharing, dynamic scheduling) is only admissible because it changes *no
// output bit*: every UseCaseResult row — compared via the v2 sweep-cache
// row including its FNV-1a checksum — must equal the from-scratch
// reference path, for healthy, degraded and failed cases alike. These
// tests pin that claim; a row mismatch here means the fast path is wrong,
// not that the test is stale.

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/cache_analysis.hpp"
#include "analysis/context_graph.hpp"
#include "cache/config.hpp"
#include "core/optimizer.hpp"
#include "energy/model.hpp"
#include "exp/harness.hpp"
#include "fuzz/corpus.hpp"
#include "ir/layout.hpp"
#include "ir/program.hpp"
#include "obs/metrics.hpp"
#include "suite/suite.hpp"
#include "support/fault_injection.hpp"
#include "wcet/ipet.hpp"

namespace ucp::exp {
namespace {

core::OptimizerOptions reference_options() {
  core::OptimizerOptions options;
  options.incremental_reanalysis = false;
  return options;
}

void expect_rows_equal(const UseCaseResult& fast, const UseCaseResult& ref,
                       const std::string& what) {
  EXPECT_EQ(sweep_cache_row(fast), sweep_cache_row(ref)) << what;
  EXPECT_EQ(fast.outcome, ref.outcome) << what;
  EXPECT_EQ(fast.fail_stage, ref.fail_stage) << what;
  EXPECT_EQ(fast.fail_code, ref.fail_code) << what;
  EXPECT_EQ(fast.fail_detail, ref.fail_detail) << what;
}

// --- tentpole layer 1: incremental re-analysis ------------------------------

TEST(Equivalence, IncrementalOptimizerMatchesFromScratchReference) {
  const std::vector<std::string> programs = {"bs", "fdct", "crc"};
  const std::vector<std::string> configs = {"k1", "k13", "k25", "k36"};
  bool saw_candidates = false;
  for (const std::string& name : programs) {
    const ir::Program p = suite::build_benchmark(name);
    for (const std::string& cfg : configs) {
      const auto& k = cache::paper_cache_config(cfg);
      const std::string what = name + "/" + cfg;
      const UseCaseResult inc =
          run_use_case(p, name, k, energy::TechNode::k45nm);
      const UseCaseResult ref = run_use_case(p, name, k,
                                             energy::TechNode::k45nm,
                                             reference_options());
      expect_rows_equal(inc, ref, what);

      // Acceptance criterion: the common path never runs a from-scratch
      // analyze_cache per candidate, and both modes evaluate the *same*
      // candidate sequence (the eval budget is mode-independent).
      EXPECT_EQ(inc.report.full_reanalyses, 0u) << what;
      EXPECT_EQ(inc.report.incremental_reanalyses, ref.report.full_reanalyses)
          << what;
      EXPECT_EQ(ref.report.incremental_reanalyses, 0u) << what;
      if (inc.report.incremental_reanalyses > 0) {
        saw_candidates = true;
        // The point of the exercise: trials touch a strict subset of the
        // context graph on average, never more than the whole graph.
        EXPECT_LE(inc.report.nodes_reanalyzed,
                  inc.report.graph_nodes * inc.report.incremental_reanalyses)
            << what;
        EXPECT_GT(inc.report.graph_nodes, 0u) << what;
      }
    }
  }
  // The grid slice must actually exercise candidate evaluation, or the
  // comparison above is vacuous.
  EXPECT_TRUE(saw_candidates);
}

// --- tentpole layer 2: cross-tech result sharing ----------------------------

TEST(Equivalence, GroupPathMatchesPerCaseRows) {
  const std::vector<energy::TechNode> techs = {energy::TechNode::k45nm,
                                               energy::TechNode::k32nm};
  for (const std::string& name : {"bs", "fdct", "crc"}) {
    const ir::Program p = suite::build_benchmark(name);
    for (const std::string& cfg : {"k1", "k25"}) {
      const auto& k = cache::paper_cache_config(cfg);
      const std::vector<UseCaseResult> grouped =
          run_use_case_group(p, name, k, techs);
      ASSERT_EQ(grouped.size(), techs.size());
      for (std::size_t t = 0; t < techs.size(); ++t) {
        const UseCaseResult ref = run_use_case(p, name, k, techs[t]);
        expect_rows_equal(grouped[t], ref,
                          name + "/" + cfg + "/" +
                              energy::tech_name(techs[t]));
      }
    }
  }
}

// --- whole pipeline: fast sweep vs reference sweep --------------------------

TEST(Equivalence, FastSweepFingerprintMatchesReferenceSweep) {
  SweepOptions fast;
  fast.programs = {"bs", "fdct"};
  fast.config_stride = 12;  // k1, k13, k25
  fast.threads = 1;
  fast.progress_every = 0;

  SweepOptions reference = fast;
  reference.share_across_techs = false;
  reference.optimizer = reference_options();

  const Sweep a = run_sweep(fast);
  const Sweep b = run_sweep(reference);
  ASSERT_EQ(a.results.size(), b.results.size());
  EXPECT_EQ(sweep_results_fingerprint(a.results),
            sweep_results_fingerprint(b.results));
  EXPECT_TRUE(a.report.clean());
  EXPECT_TRUE(b.report.clean());
}

// --- quarantined cases stay bit-identical too -------------------------------

TEST(Equivalence, DegradedCaseRowsMatchUnderReanalysisFault) {
  // core.reanalyze fires at the same candidate-evaluation point in both
  // modes, so an injected mid-optimization failure must degrade both paths
  // into the same row (fdct/k1 is known to evaluate candidates).
  const ir::Program p = suite::build_benchmark("fdct");
  const auto& k = cache::paper_cache_config("k1");
  fault::disarm_all();
  UseCaseResult inc;
  {
    fault::ScopedFault f("core.reanalyze");
    inc = run_use_case(p, "fdct", k, energy::TechNode::k45nm);
  }
  UseCaseResult ref;
  {
    fault::ScopedFault f("core.reanalyze");
    ref = run_use_case(p, "fdct", k, energy::TechNode::k45nm,
                       reference_options());
  }
  ASSERT_EQ(inc.outcome, CaseOutcome::kDegraded);
  expect_rows_equal(inc, ref, "fdct/k1 under core.reanalyze");
}

// First configuration whose derived timing coincides across both tech
// nodes, i.e. whose two cases form a single shared group.
const cache::NamedCacheConfig& shared_timing_config() {
  for (const cache::NamedCacheConfig& named : cache::paper_cache_configs()) {
    const cache::MemTiming a =
        energy::derive_timing(named.config, energy::TechNode::k45nm);
    const cache::MemTiming b =
        energy::derive_timing(named.config, energy::TechNode::k32nm);
    if (a.hit_cycles == b.hit_cycles && a.miss_cycles == b.miss_cycles &&
        a.prefetch_latency == b.prefetch_latency) {
      return named;
    }
  }
  throw std::logic_error("no config with tech-invariant timing");
}

TEST(Equivalence, GroupPathDegradedRowsMatchPerCase) {
  // A one-shot optimizer fault against a single shared group must degrade
  // every member exactly like per-case runs that each hit the same fault.
  const ir::Program p = suite::build_benchmark("bs");
  const auto& k = shared_timing_config();
  const std::vector<energy::TechNode> techs = {energy::TechNode::k45nm,
                                               energy::TechNode::k32nm};
  fault::disarm_all();
  std::vector<UseCaseResult> grouped;
  {
    fault::ScopedFault f("core.deadline");
    grouped = run_use_case_group(p, "bs", k, techs);
  }
  ASSERT_EQ(grouped.size(), 2u);
  for (std::size_t t = 0; t < techs.size(); ++t) {
    fault::ScopedFault f("core.deadline");
    const UseCaseResult ref = run_use_case(p, "bs", k, techs[t]);
    ASSERT_EQ(ref.outcome, CaseOutcome::kDegraded);
    expect_rows_equal(grouped[t], ref,
                      std::string("bs deadline/") +
                          energy::tech_name(techs[t]));
  }
}

// --- solver-kernel fault gates ----------------------------------------------
// The sparse simplex consults ilp.pivot at every pivot and ilp.bb_node at
// every branch-and-bound node. A one-shot fault on either site must hit the
// same solve of the same use case on every run (the sweep schedule, the
// per-program system prebuild and the solver itself are all deterministic),
// quarantine exactly that case, and leave every row — including the
// quarantined one — bit-identical between repeats. This pins both the
// containment of solver budget exhaustion and the determinism of the
// warm-started branch-and-bound under it.

Sweep strided_sweep_with_fault(const char* site) {
  SweepOptions options;
  options.programs = {"bs", "fdct"};
  options.config_stride = 12;  // k1, k13, k25
  options.threads = 1;
  options.progress_every = 0;
  fault::ScopedFault f(site);
  return run_sweep(options);
}

void expect_solver_fault_contained(const char* site) {
  fault::disarm_all();
  const Sweep a = strided_sweep_with_fault(site);
  const Sweep b = strided_sweep_with_fault(site);

  // The fault must actually land: some case degrades or fails with the
  // solver's iteration-limit error code instead of vanishing silently.
  EXPECT_FALSE(a.report.clean()) << site;
  ASSERT_FALSE(a.report.quarantine.empty()) << site;
  bool saw_iteration_limit = false;
  for (const DegradedCase& q : a.report.quarantine)
    saw_iteration_limit |= q.code == ErrorCode::kIterationLimit;
  EXPECT_TRUE(saw_iteration_limit) << site;

  // And it must land identically every time.
  ASSERT_EQ(a.results.size(), b.results.size()) << site;
  EXPECT_EQ(sweep_results_fingerprint(a.results),
            sweep_results_fingerprint(b.results))
      << site;
  ASSERT_EQ(a.report.quarantine.size(), b.report.quarantine.size()) << site;
  for (std::size_t i = 0; i < a.report.quarantine.size(); ++i) {
    EXPECT_EQ(a.report.quarantine[i].program, b.report.quarantine[i].program)
        << site;
    EXPECT_EQ(a.report.quarantine[i].config_id,
              b.report.quarantine[i].config_id)
        << site;
    EXPECT_EQ(a.report.quarantine[i].stage, b.report.quarantine[i].stage)
        << site;
  }
}

TEST(Equivalence, PivotFaultQuarantinesDeterministically) {
  expect_solver_fault_contained("ilp.pivot");
}

TEST(Equivalence, BbNodeFaultQuarantinesDeterministically) {
  expect_solver_fault_contained("ilp.bb_node");
}

TEST(Equivalence, GroupPathFailedRowsMatchPerCase) {
  // Same idea for the hard-failure channel: a baseline measurement fault
  // fails all group members exactly like the per-case path.
  const ir::Program p = suite::build_benchmark("bs");
  const auto& k = shared_timing_config();
  const std::vector<energy::TechNode> techs = {energy::TechNode::k45nm,
                                               energy::TechNode::k32nm};
  fault::disarm_all();
  std::vector<UseCaseResult> grouped;
  {
    fault::ScopedFault f("exp.measure");
    grouped = run_use_case_group(p, "bs", k, techs);
  }
  ASSERT_EQ(grouped.size(), 2u);
  for (std::size_t t = 0; t < techs.size(); ++t) {
    fault::ScopedFault f("exp.measure");
    const UseCaseResult ref = run_use_case(p, "bs", k, techs[t]);
    ASSERT_EQ(ref.outcome, CaseOutcome::kFailed);
    EXPECT_EQ(ref.fail_stage, "measure_original");
    expect_rows_equal(grouped[t], ref,
                      std::string("bs measure/") +
                          energy::tech_name(techs[t]));
  }
}

// --- scaling layers: SCC-sparse fixpoint and ILP presolve -------------------
// The 100x-scaling work (SCC-condensation fixpoint driver with hash-consed
// abstract states; exact objective-independent ILP presolve) keeps the slow
// paths alive as differential oracles. These tests pin the equivalence on
// the paper grid and on every committed fuzz repro: the fast paths must be
// *result-identical*, not merely objective-identical.

// Capacity/associativity spectrum of the paper grid: smallest, largest and
// a stride through the middle (full 36-config coverage lives in the sweep
// fingerprint tests; this keeps the per-mode analysis pass inside the
// tier-1 budget while still crossing every program).
const std::vector<std::string>& grid_config_ids() {
  static const std::vector<std::string> ids = {"k1",  "k7",  "k13", "k19",
                                               "k25", "k31", "k36"};
  return ids;
}

std::vector<fuzz::CorpusEntry> committed_corpus() {
  std::vector<fuzz::CorpusEntry> entries;
  for (const std::string& path : fuzz::list_corpus_files(UCP_CORPUS_DIR)) {
    const auto entry = fuzz::read_corpus_entry(path);
    if (entry.ok()) entries.push_back(*entry);
  }
  return entries;
}

// Deep equality of two whole-analysis results: classification of every
// (context node, instruction) reference plus the abstract in/out states at
// every node. State equality goes through AbstractCache::operator== (which
// compares content, with a pointer fast path), so a hash-consing bug that
// merged unequal states would fail here even if classifications agreed.
void expect_fixpoints_equal(const analysis::ContextGraph& graph,
                            const ir::Layout& layout,
                            const cache::CacheConfig& config,
                            const std::string& what) {
  const analysis::CacheAnalysisResult sparse = analysis::analyze_cache(
      graph, layout, config, analysis::FixpointMode::kSccSparse);
  const analysis::CacheAnalysisResult legacy = analysis::analyze_cache(
      graph, layout, config, analysis::FixpointMode::kGlobalWorklist);
  EXPECT_EQ(sparse.per_node, legacy.per_node) << what;
  EXPECT_EQ(sparse.in_states, legacy.in_states) << what;
  EXPECT_EQ(sparse.out_states, legacy.out_states) << what;
}

TEST(Equivalence, SccSparseFixpointMatchesGlobalWorklistOnPaperGrid) {
  for (const suite::BenchmarkInfo& info : suite::all_benchmarks()) {
    const ir::Program p = suite::build_benchmark(info.name);
    const analysis::ContextGraph graph(p);
    for (const std::string& cfg : grid_config_ids()) {
      const cache::CacheConfig& k = cache::paper_cache_config(cfg).config;
      const ir::Layout layout(p, k.block_bytes);
      expect_fixpoints_equal(graph, layout, k,
                             std::string(info.name) + "/" + cfg);
    }
  }
}

// Presolved and unpresolved IPET systems over the same graph must agree on
// the full solve *result* — status, tau, and the worst-case flow solution
// (node and edge counts) — not just the objective. The expand_values
// replay (fixed vars, alias roots, reverse-order substitutions) is what
// this pins: a wrong expansion with the right objective would slip past an
// objective-only check but corrupts the optimizer's profit criterion,
// which consumes the counts.
void expect_solves_equal(const wcet::IpetSystem& fast,
                         const wcet::IpetSystem& slow,
                         const analysis::CacheAnalysisResult& cls,
                         const cache::MemTiming& timing,
                         const std::string& what) {
  const wcet::WcetResult a = fast.solve(cls, timing);
  const wcet::WcetResult b = slow.solve(cls, timing);
  EXPECT_EQ(a.status, b.status) << what;
  EXPECT_EQ(a.tau_mem, b.tau_mem) << what;
  EXPECT_EQ(a.node_counts, b.node_counts) << what;
  EXPECT_EQ(a.edge_counts, b.edge_counts) << what;
  EXPECT_EQ(a.ref_cycles, b.ref_cycles) << what;
}

TEST(Equivalence, PresolvedIpetMatchesUnpresolvedOnPaperGrid) {
  bool saw_reduction = false;
  for (const suite::BenchmarkInfo& info : suite::all_benchmarks()) {
    const ir::Program p = suite::build_benchmark(info.name);
    const analysis::ContextGraph graph(p);
    const wcet::IpetSystem fast(graph, wcet::IpetOptions{true});
    const wcet::IpetSystem slow(graph, wcet::IpetOptions{false});
    EXPECT_LE(fast.lp_rows(), slow.lp_rows()) << info.name;
    saw_reduction |= fast.lp_rows() < slow.lp_rows();
    for (const std::string& cfg : grid_config_ids()) {
      const cache::CacheConfig& k = cache::paper_cache_config(cfg).config;
      const ir::Layout layout(p, k.block_bytes);
      const analysis::CacheAnalysisResult cls =
          analysis::analyze_cache(graph, layout, k);
      const cache::MemTiming timing =
          energy::derive_timing(k, energy::TechNode::k45nm);
      expect_solves_equal(fast, slow, cls, timing,
                          std::string(info.name) + "/" + cfg);
    }
  }
  // Vacuity guard: presolve must actually engage somewhere on the grid.
  EXPECT_TRUE(saw_reduction);
}

// Every committed fuzz repro (found by the soundness campaign, i.e. the
// programs that historically broke something) goes through both oracles
// too, at its recorded replay configuration.
TEST(Equivalence, FastPathsMatchLegacyOraclesOnCorpusRepros) {
  const std::vector<fuzz::CorpusEntry> corpus = committed_corpus();
  ASSERT_FALSE(corpus.empty()) << "no committed corpus under " UCP_CORPUS_DIR;
  for (const fuzz::CorpusEntry& entry : corpus) {
    const cache::CacheConfig& k =
        cache::paper_cache_config(entry.config_id).config;
    const analysis::ContextGraph graph(entry.program);
    const ir::Layout layout(entry.program, k.block_bytes);
    expect_fixpoints_equal(graph, layout, k, entry.name);

    const wcet::IpetSystem fast(graph, wcet::IpetOptions{true});
    const wcet::IpetSystem slow(graph, wcet::IpetOptions{false});
    const analysis::CacheAnalysisResult cls =
        analysis::analyze_cache(graph, layout, k);
    const cache::MemTiming timing =
        energy::derive_timing(k, energy::TechNode::k45nm);
    expect_solves_equal(fast, slow, cls, timing, entry.name);
  }
}

// --- pivot-counter reconciliation -------------------------------------------
// The one-time accounting discrepancy between exp.sweep.pivots (882312,
// row-derived) and ilp.solve.pivots (805824, live) was the sparse LP's
// phase-1 *construction* pivots: charge_construction folds them into the
// row-side aggregate exactly once per shared IpetSystem, while the live
// counter only ever sees per-solve work. With construction published as
// its own live counter, the books must balance exactly on a clean run
// (single attempt, no retry, no resume, no cache):
//
//   exp.sweep.pivots == ilp.solve.pivots + ilp.solve.construction_pivots

std::uint64_t counter_value(const obs::Snapshot& snap, const char* name) {
  for (const auto& [n, v] : snap.counters)
    if (n == name) return v;
  return 0;
}

TEST(Equivalence, SweepPivotCountersReconcile) {
  fault::disarm_all();
  const bool was_enabled = obs::enabled();
  obs::set_enabled(true);
  const obs::Snapshot before = obs::registry().snapshot();

  SweepOptions options;
  options.programs = {"bs", "crc"};
  options.config_stride = 12;  // k1, k13, k25
  options.threads = 1;
  options.progress_every = 0;
  // run_sweep publishes its own row-derived counters on completion (the
  // exp.sweep.* deltas below); calling publish_sweep_metrics again here
  // would double them.
  const Sweep sweep = run_sweep(options);

  const obs::Snapshot after = obs::registry().snapshot();
  obs::set_enabled(was_enabled);

  // The identity only holds when every solve's work landed in exactly one
  // row: no retries (double-counted attempts) and no degraded/failed rows.
  ASSERT_TRUE(sweep.report.clean());
  ASSERT_EQ(sweep.report.retried, 0u);

  auto delta = [&](const char* name) {
    return counter_value(after, name) - counter_value(before, name);
  };
  const std::uint64_t live_solve = delta("ilp.solve.pivots");
  const std::uint64_t live_construction =
      delta("ilp.solve.construction_pivots");
  const std::uint64_t row_total = delta("exp.sweep.pivots");
  const std::uint64_t row_construction =
      delta("exp.sweep.construction_pivots");

  // The slice must do real solver work, or the identity is vacuous.
  EXPECT_GT(live_solve, 0u);
  EXPECT_GT(live_construction, 0u);
  EXPECT_EQ(row_total, live_solve + live_construction);
  EXPECT_EQ(row_construction, live_construction);
}

}  // namespace
}  // namespace ucp::exp
