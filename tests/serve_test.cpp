// ucpd service-layer suites: wire-protocol totality on hostile bytes,
// admission-control shedding, the per-request retry-with-degradation
// ladder (including the Theorem-1 identity-fallback terminal rung), warm
// response/IPET caches, idempotent journal replay across kill -9 +
// restart of the real daemon binary, and graceful drain accounting.
//
// In-process Server instances cover everything that needs fault injection
// or the hold_workers admission gate; the Daemon suite fork/execs the
// installed ucpd binary (UCP_UCPD_PATH) to pin process-level behavior:
// stdout contract, SIGKILL + restart replay, SIGTERM drain, exit codes.

#include <gtest/gtest.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "cache/config.hpp"
#include "energy/model.hpp"
#include "obs/flight.hpp"
#include "ir/text_codec.hpp"
#include "ir/verify.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/request_journal.hpp"
#include "serve/server.hpp"
#include "suite/suite.hpp"
#include "support/fault_injection.hpp"
#include "support/socket.hpp"

namespace ucp::serve {
namespace {

struct TempFile {
  std::string path;
  explicit TempFile(const std::string& name)
      : path(testing::TempDir() + name + "." + std::to_string(::getpid())) {
    std::remove(path.c_str());
  }
  ~TempFile() { std::remove(path.c_str()); }
};

Request bs_request(const std::string& id) {
  Request r;
  r.id = id;
  r.config_id = "k1";
  r.config = cache::paper_cache_config("k1").config;
  r.tech = energy::TechNode::k45nm;
  r.program_text = ir::to_text(suite::build_benchmark("bs"));
  return r;
}

Request fdct_request(const std::string& id) {
  Request r;
  r.id = id;
  r.config_id = "k2";
  r.config = cache::paper_cache_config("k2").config;
  r.tech = energy::TechNode::k32nm;
  r.program_text = ir::to_text(suite::build_benchmark("fdct"));
  return r;
}

ServerOptions quick_options() {
  ServerOptions options;
  options.workers = 1;
  options.io_timeout_ms = 5000;
  return options;
}

/// Raw exchange: writes `bytes` as-is and reads one response — how a
/// hostile or buggy client looks to the daemon.
Expected<Response> raw_call(std::uint16_t port, const std::string& bytes) {
  Expected<support::Socket> conn = support::tcp_connect(port, 5000);
  if (!conn.ok()) return conn.status();
  Status sent = write_all(*conn, bytes);
  if (!sent.ok()) return sent;
  // Half-close so a server waiting on a truncated frame sees EOF at once
  // instead of burning its whole io timeout.
  ::shutdown(conn->fd(), SHUT_WR);
  support::LineReader reader(*conn, 4096, 5000);
  return read_response(reader, ProtocolLimits{});
}

// --- protocol --------------------------------------------------------------

TEST(Protocol, ResponseSerializationRoundTrips) {
  Response r;
  r.id = "req.1:a-b_c";
  r.status = ResponseStatus::kDegraded;
  r.code = ErrorCode::kDeadlineExceeded;
  r.detail = "line one\nline two \\ backslash";
  r.attempts = 3;
  r.degradation_level = 2;
  r.audit = "clean";
  r.tau_original = 12345;
  r.tau_optimized = 12000;
  r.mem_cycles_original = 777;
  r.mem_cycles_optimized = 700;
  r.energy_original_nj = 1.25;
  r.energy_optimized_nj = 1.0625;
  r.prefetches = 4;
  r.cached = true;
  r.replayed = true;
  r.retry_after_ms = 0;
  r.program_text = "# ucp-program v1\nprogram p\n";

  const std::string bytes = serialize_response(r);
  const auto back = parse_response_text(bytes, ProtocolLimits{});
  ASSERT_TRUE(back.ok()) << back.status().message();
  EXPECT_EQ(back->id, r.id);
  EXPECT_EQ(back->status, r.status);
  EXPECT_EQ(back->code, r.code);
  EXPECT_EQ(back->detail, r.detail);
  EXPECT_EQ(back->attempts, r.attempts);
  EXPECT_EQ(back->degradation_level, r.degradation_level);
  EXPECT_EQ(back->audit, r.audit);
  EXPECT_EQ(back->tau_original, r.tau_original);
  EXPECT_EQ(back->tau_optimized, r.tau_optimized);
  EXPECT_EQ(back->mem_cycles_original, r.mem_cycles_original);
  EXPECT_EQ(back->mem_cycles_optimized, r.mem_cycles_optimized);
  EXPECT_DOUBLE_EQ(back->energy_original_nj, r.energy_original_nj);
  EXPECT_DOUBLE_EQ(back->energy_optimized_nj, r.energy_optimized_nj);
  EXPECT_EQ(back->prefetches, r.prefetches);
  EXPECT_EQ(back->cached, r.cached);
  EXPECT_EQ(back->replayed, r.replayed);
  EXPECT_EQ(back->program_text, r.program_text);
  // Deterministic: one byte stream per value.
  EXPECT_EQ(serialize_response(*back), bytes);
}

TEST(Protocol, MalformedResponseTextIsStructurallyRejected) {
  const ProtocolLimits limits;
  for (const std::string& bad :
       {std::string(""), std::string("not a response\n"),
        std::string("ucp-response v2\n"),
        std::string("ucp-response v1\nbogus-key value\npayload 0\n"),
        std::string("ucp-response v1\nid x\npayload 99\nshort")}) {
    const auto parsed = parse_response_text(bad, limits);
    EXPECT_FALSE(parsed.ok());
    if (!parsed.ok()) {
      EXPECT_EQ(parsed.status().code(), ErrorCode::kMalformedInput);
    }
  }
}

TEST(Protocol, RequestIdValidation) {
  EXPECT_TRUE(valid_request_id("a"));
  EXPECT_TRUE(valid_request_id("req.1:A-b_c"));
  EXPECT_TRUE(valid_request_id(std::string(128, 'x')));
  EXPECT_FALSE(valid_request_id(""));
  EXPECT_FALSE(valid_request_id(std::string(129, 'x')));
  EXPECT_FALSE(valid_request_id("spaces are bad"));
  EXPECT_FALSE(valid_request_id("new\nline"));
  EXPECT_FALSE(valid_request_id("sla/sh"));
}

TEST(Protocol, FingerprintCoversEverySemanticField) {
  const Request base = bs_request("id-a");
  const std::string fp = request_fingerprint(base);
  // The id is *not* semantic: two ids, one body, one fingerprint.
  Request same = base;
  same.id = "id-b";
  EXPECT_EQ(request_fingerprint(same), fp);
  // Every semantic field moves the fingerprint.
  Request r = base;
  r.program_text += "\n";
  EXPECT_NE(request_fingerprint(r), fp);
  r = base;
  r.config.capacity_bytes *= 2;
  EXPECT_NE(request_fingerprint(r), fp);
  r = base;
  r.tech = energy::TechNode::k32nm;
  EXPECT_NE(request_fingerprint(r), fp);
  r = base;
  r.deadline_ms = 1234;
  EXPECT_NE(request_fingerprint(r), fp);
  r = base;
  r.attempts = 2;
  EXPECT_NE(request_fingerprint(r), fp);
}

// --- server: happy path, caches, stats -------------------------------------

TEST(Server, OkRequestEndToEndWithWarmCacheAndStats) {
  fault::disarm_all();
  Server server(quick_options());
  ASSERT_TRUE(server.start().ok());

  const auto first = call(server.port(), bs_request("e2e-1"));
  ASSERT_TRUE(first.ok()) << first.status().message();
  EXPECT_EQ(first->id, "e2e-1");
  EXPECT_EQ(first->status, ResponseStatus::kOk);
  EXPECT_EQ(first->code, ErrorCode::kOk);
  EXPECT_EQ(first->attempts, 1u);
  EXPECT_EQ(first->degradation_level, 0u);
  EXPECT_EQ(first->audit, "clean");
  EXPECT_FALSE(first->cached);
  EXPECT_FALSE(first->replayed);
  EXPECT_GT(first->tau_original, 0u);
  EXPECT_LE(first->tau_optimized, first->tau_original);
  // The vouched-for program parses and re-verifies.
  const auto program = ir::from_text_checked(first->program_text);
  ASSERT_TRUE(program.ok());
  EXPECT_TRUE(ir::verify(*program).empty());

  // Same body, new id: the warm response cache answers without a pipeline
  // run, bit-identical metrics.
  const auto second = call(server.port(), bs_request("e2e-2"));
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->cached);
  EXPECT_EQ(second->id, "e2e-2");
  EXPECT_EQ(second->tau_optimized, first->tau_optimized);
  EXPECT_EQ(second->program_text, first->program_text);

  server.stop();
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.requests, 2u);
  EXPECT_EQ(stats.ok, 2u);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.errors, 0u);
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_EQ(stats.queue_depth, 0u);
}

TEST(Server, IpetCacheOutlivesTheRequestThatBuiltIt) {
  // Two requests with the SAME program text but DIFFERENT configs: distinct
  // fingerprints (no response-cache hit), one shared IPET cache entry. The
  // second request exercises the entry after the request-local program that
  // seeded it has been destroyed — it must be self-owned, not a dangling
  // view (regression: heap-use-after-free under the load bench's k1/k2 mix).
  fault::disarm_all();
  Server server(quick_options());
  ASSERT_TRUE(server.start().ok());

  Request k1 = bs_request("ipet-k1");
  Request k2 = bs_request("ipet-k2");
  k2.config_id = "k2";
  k2.config = cache::paper_cache_config("k2").config;
  ASSERT_EQ(k1.program_text, k2.program_text);

  const auto first = call(server.port(), k1);
  ASSERT_TRUE(first.ok()) << first.status().message();
  EXPECT_EQ(first->status, ResponseStatus::kOk);
  const auto second = call(server.port(), k2);
  ASSERT_TRUE(second.ok()) << second.status().message();
  EXPECT_EQ(second->status, ResponseStatus::kOk);
  EXPECT_FALSE(second->cached);
  EXPECT_GT(second->tau_original, 0u);

  // Same program + config served again from scratch (caches off) agrees —
  // the shared IPET entry changed nothing semantically.
  ServerOptions cold = quick_options();
  cold.ipet_cache_entries = 0;
  cold.response_cache_entries = 0;
  Server fresh(cold);
  ASSERT_TRUE(fresh.start().ok());
  const auto rebuilt = call(fresh.port(), k2);
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(rebuilt->tau_original, second->tau_original);
  EXPECT_EQ(rebuilt->tau_optimized, second->tau_optimized);
  fresh.stop();
  server.stop();
}

TEST(Server, StopIsIdempotentAndServesNothingAfterDrain) {
  Server server(quick_options());
  ASSERT_TRUE(server.start().ok());
  const std::uint16_t port = server.port();
  server.stop();
  server.stop();  // second drain is a no-op
  const auto refused = call(port, bs_request("after-drain"));
  EXPECT_FALSE(refused.ok());
}

// --- server: untrusted bytes -----------------------------------------------

TEST(Server, HostileBytesGetStructuredErrorsNeverHangs) {
  fault::disarm_all();
  Server server(quick_options());
  ASSERT_TRUE(server.start().ok());

  // Wrong magic line.
  auto r = raw_call(server.port(), "GET / HTTP/1.1\r\n\r\n");
  ASSERT_TRUE(r.ok()) << r.status().message();
  EXPECT_EQ(r->status, ResponseStatus::kError);
  EXPECT_EQ(r->code, ErrorCode::kMalformedInput);
  EXPECT_EQ(r->id, "-");

  // Unknown header key.
  r = raw_call(server.port(),
               "ucp-request v1\nid x\nevil-key 1\npayload 0\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->code, ErrorCode::kMalformedInput);

  // Declared payload beyond the cap: rejected before allocation.
  r = raw_call(server.port(),
               "ucp-request v1\nid x\nconfig k1 4 32 16384\ntech 45nm\n"
               "payload 999999999999\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->code, ErrorCode::kMalformedInput);

  // Truncated framed payload (declares more bytes than it sends).
  r = raw_call(server.port(),
               "ucp-request v1\nid x\nconfig k1 4 32 16384\ntech 45nm\n"
               "payload 64\nshort");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->code, ErrorCode::kMalformedInput);

  // Well-framed request whose payload is not a program: the codec rejects,
  // and the reply is attributed to the request id.
  Request bad = bs_request("bad-program");
  bad.program_text = "# ucp-program v1\nprogram p\nentry 0\nblock zero\n";
  const auto served = call(server.port(), bad);
  ASSERT_TRUE(served.ok());
  EXPECT_EQ(served->id, "bad-program");
  EXPECT_EQ(served->status, ResponseStatus::kError);
  EXPECT_EQ(served->code, ErrorCode::kMalformedInput);
  EXPECT_TRUE(served->program_text.empty());

  // A clean disconnect (no bytes) is dropped, not counted malformed.
  { support::tcp_connect(server.port(), 5000); }

  // The daemon survived all of it and still serves.
  const auto healthy = call(server.port(), bs_request("still-alive"));
  ASSERT_TRUE(healthy.ok());
  EXPECT_EQ(healthy->status, ResponseStatus::kOk);

  server.stop();
  const ServerStats stats = server.stats();
  EXPECT_GE(stats.malformed, 5u);
  EXPECT_EQ(stats.ok, 1u);
}

// --- server: admission control ---------------------------------------------

TEST(Server, OverloadShedsWithRetryAfterBeforeReadingBytes) {
  fault::disarm_all();
  std::atomic<bool> hold{true};
  ServerOptions options = quick_options();
  options.queue_capacity = 2;
  options.retry_after_ms = 70;
  options.hold_workers = &hold;
  Server server(options);
  ASSERT_TRUE(server.start().ok());

  // Fill the admission queue while workers are held, then overflow it.
  // Shed connections get the structured kOverloaded reply *without sending
  // a single request byte*.
  std::vector<support::Socket> held_conns;
  std::size_t shed_seen = 0;
  const std::size_t total = options.queue_capacity + 3;
  for (std::size_t i = 0; i < total; ++i) {
    auto conn = support::tcp_connect(server.port(), 5000);
    ASSERT_TRUE(conn.ok());
    // Wait until the accept loop has classified this connection: either
    // admitted (queue depth grows) or shed (a response arrives).
    for (int spin = 0; spin < 200; ++spin) {
      const ServerStats s = server.stats();
      if (s.accepted + s.shed > i) break;
      ::usleep(10000);
    }
    if (server.stats().shed > shed_seen) {
      ++shed_seen;
      support::LineReader reader(*conn, 4096, 5000);
      const auto shed = read_response(reader, ProtocolLimits{});
      ASSERT_TRUE(shed.ok()) << shed.status().message();
      EXPECT_EQ(shed->status, ResponseStatus::kError);
      EXPECT_EQ(shed->code, ErrorCode::kOverloaded);
      EXPECT_EQ(shed->retry_after_ms, 70u);
      EXPECT_EQ(shed->id, "-");
    } else {
      held_conns.push_back(std::move(*conn));
    }
  }
  EXPECT_EQ(shed_seen, 3u);
  EXPECT_EQ(held_conns.size(), options.queue_capacity);

  // Release the workers; the admitted connections are served normally.
  hold.store(false);
  for (support::Socket& conn : held_conns) {
    ASSERT_TRUE(write_all(conn, serialize_request(bs_request("held"))).ok());
    support::LineReader reader(conn, 4096, 10000);
    const auto response = read_response(reader, ProtocolLimits{});
    ASSERT_TRUE(response.ok()) << response.status().message();
    EXPECT_NE(response->status, ResponseStatus::kError);
  }
  server.stop();
  EXPECT_EQ(server.stats().shed, 3u);
}

// --- server: retry ladder --------------------------------------------------

TEST(Server, TransientFaultRecoversOnTheEscalatedRetry) {
  fault::disarm_all();
  ServerOptions options = quick_options();
  options.audit_soundness = true;
  Server server(options);
  ASSERT_TRUE(server.start().ok());
  fault::arm("core.reanalyze");  // one-shot: first attempt degrades
  const auto response = call(server.port(), fdct_request("ladder-retry"));
  fault::disarm_all();
  ASSERT_TRUE(response.ok()) << response.status().message();
  EXPECT_EQ(response->status, ResponseStatus::kOk);
  EXPECT_EQ(response->attempts, 2u);
  EXPECT_EQ(response->degradation_level, 1u);
  EXPECT_EQ(response->audit, "clean");
  server.stop();
  EXPECT_EQ(server.stats().retried, 1u);
}

TEST(Server, PersistentFaultDegradesToIdentityFallbackNeverErrors) {
  fault::disarm_all();
  Server server(quick_options());
  ASSERT_TRUE(server.start().ok());
  // Fires on the configured *and* the escalated attempt; the terminal rung
  // ships the identity transform — a degraded response, not an error.
  fault::arm("core.reanalyze", /*skip=*/0, /*shots=*/2);
  const Request request = fdct_request("ladder-identity");
  const auto response = call(server.port(), request);
  fault::disarm_all();
  ASSERT_TRUE(response.ok()) << response.status().message();
  EXPECT_EQ(response->status, ResponseStatus::kDegraded);
  EXPECT_EQ(response->code, ErrorCode::kAnalysisFailed);
  EXPECT_EQ(response->attempts, 3u);
  EXPECT_EQ(response->degradation_level, 2u);
  EXPECT_NE(response->detail.find("identity-transform fallback"),
            std::string::npos)
      << response->detail;
  // The identity transform is sound and inserted nothing: the vouched-for
  // program is the canonicalized input, with baseline metrics.
  EXPECT_EQ(response->prefetches, 0u);
  EXPECT_EQ(response->tau_optimized, response->tau_original);
  const auto parsed = ir::from_text_checked(request.program_text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(response->program_text, ir::to_text(*parsed));
  server.stop();
}

TEST(Server, NonRetryableFaultIsAStructuredErrorInOneAttempt) {
  fault::disarm_all();
  Server server(quick_options());
  ASSERT_TRUE(server.start().ok());
  fault::arm("exp.measure");  // baseline measurement fails, not retryable
  const auto response = call(server.port(), bs_request("ladder-fail"));
  fault::disarm_all();
  ASSERT_TRUE(response.ok()) << response.status().message();
  EXPECT_EQ(response->status, ResponseStatus::kError);
  EXPECT_EQ(response->code, ErrorCode::kFaultInjected);
  EXPECT_EQ(response->attempts, 1u);
  EXPECT_EQ(response->degradation_level, 3u);
  EXPECT_TRUE(response->program_text.empty());
  server.stop();
}

TEST(Server, RequestedDeadlineNeverProducesAnUnsoundResponse) {
  // A 1ms deadline on a real program: whatever the watchdog manages to
  // cancel, the ladder's terminal rung guarantees the response is ok or
  // degraded — never an error, and any returned program is sound.
  fault::disarm_all();
  Server server(quick_options());
  ASSERT_TRUE(server.start().ok());
  Request request = fdct_request("deadline-1ms");
  request.deadline_ms = 1;
  const auto response = call(server.port(), request);
  ASSERT_TRUE(response.ok()) << response.status().message();
  EXPECT_NE(response->status, ResponseStatus::kError)
      << "deadline pressure must degrade, not fail";
  if (response->status == ResponseStatus::kDegraded) {
    EXPECT_TRUE(response->code == ErrorCode::kCancelled ||
                response->code == ErrorCode::kDeadlineExceeded)
        << error_code_name(response->code);
    EXPECT_EQ(response->tau_optimized, response->tau_original);
  }
  EXPECT_FALSE(response->program_text.empty());
  server.stop();
}

// --- server: fault containment at the service boundaries -------------------

TEST(Server, ServiceBoundaryFaultsAreContained) {
  fault::disarm_all();
  Server server(quick_options());
  ASSERT_TRUE(server.start().ok());

  // Pipeline-boundary fault: structured error, daemon survives.
  fault::arm("serve.process");
  auto r = call(server.port(), bs_request("fault-process"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->status, ResponseStatus::kError);
  EXPECT_EQ(r->code, ErrorCode::kFaultInjected);

  // Parse-boundary fault: structured, un-attributed error.
  fault::arm("serve.parse");
  r = call(server.port(), bs_request("fault-parse"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->code, ErrorCode::kFaultInjected);
  EXPECT_EQ(r->id, "-");

  // Read-boundary fault: the connection is dropped (transport error on the
  // client side), never a wedged worker.
  fault::arm("serve.read");
  r = call(server.port(), bs_request("fault-read"));
  EXPECT_FALSE(r.ok());

  fault::disarm_all();
  const auto healthy = call(server.port(), bs_request("fault-survivor"));
  ASSERT_TRUE(healthy.ok());
  EXPECT_EQ(healthy->status, ResponseStatus::kOk);
  server.stop();
}

// --- server: idempotent journal replay -------------------------------------

TEST(Server, JournalReplaysIdsIdempotentlyAcrossRestart) {
  fault::disarm_all();
  TempFile journal("serve_journal");
  ServerOptions options = quick_options();
  options.journal_path = journal.path;

  Response original;
  {
    Server server(options);
    ASSERT_TRUE(server.start().ok());
    const auto first = call(server.port(), bs_request("idem-1"));
    ASSERT_TRUE(first.ok());
    ASSERT_EQ(first->status, ResponseStatus::kOk);
    original = *first;

    // Same id, same body, same process: replayed from the journal.
    const auto again = call(server.port(), bs_request("idem-1"));
    ASSERT_TRUE(again.ok());
    EXPECT_TRUE(again->replayed);
    EXPECT_EQ(again->tau_optimized, original.tau_optimized);

    // Same id, *different* body: a client bug, structurally rejected.
    Request conflicting = bs_request("idem-1");
    conflicting.deadline_ms = 4242;
    const auto conflict = call(server.port(), conflicting);
    ASSERT_TRUE(conflict.ok());
    EXPECT_EQ(conflict->status, ResponseStatus::kError);
    EXPECT_EQ(conflict->code, ErrorCode::kMalformedInput);
    EXPECT_NE(conflict->detail.find("idem-1"), std::string::npos);
    server.stop();
    EXPECT_EQ(server.stats().replayed, 1u);
  }

  // Restart on the same journal: the id still answers without recomputing,
  // metric for metric.
  {
    Server server(options);
    ASSERT_TRUE(server.start().ok());
    EXPECT_NE(server.journal_note().find("restored"), std::string::npos)
        << server.journal_note();
    const auto replay = call(server.port(), bs_request("idem-1"));
    ASSERT_TRUE(replay.ok());
    EXPECT_TRUE(replay->replayed);
    EXPECT_EQ(replay->status, ResponseStatus::kOk);
    EXPECT_EQ(replay->tau_original, original.tau_original);
    EXPECT_EQ(replay->tau_optimized, original.tau_optimized);
    EXPECT_EQ(replay->program_text, original.program_text);
    server.stop();
  }
}

TEST(Server, JournalWriteFaultDisablesJournalingNotService) {
  fault::disarm_all();
  TempFile journal("serve_journal_fault");
  ServerOptions options = quick_options();
  options.journal_path = journal.path;
  Server server(options);
  ASSERT_TRUE(server.start().ok());
  fault::arm("serve.journal_write");
  const auto response = call(server.port(), bs_request("jw-fault"));
  fault::disarm_all();
  // The request is served; journaling degraded to off for this process.
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, ResponseStatus::kOk);
  // Without a journal entry the id recomputes (response cache still hits,
  // but the replay flag must stay false).
  const auto again = call(server.port(), bs_request("jw-fault"));
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again->replayed);
  server.stop();
}

TEST(Server, RespondFaultAfterJournalingIsRecoveredByClientRetry) {
  fault::disarm_all();
  TempFile journal("serve_journal_respond");
  ServerOptions options = quick_options();
  options.journal_path = journal.path;
  Server server(options);
  ASSERT_TRUE(server.start().ok());
  // The response write is dropped *after* the journal append — the crash
  // window the journal exists for. The client sees a transport error...
  fault::arm("serve.respond");
  const auto dropped = call(server.port(), bs_request("respond-fault"));
  fault::disarm_all();
  EXPECT_FALSE(dropped.ok());
  // ...and its retry with the same id replays the journaled answer instead
  // of recomputing.
  const auto retry = call(server.port(), bs_request("respond-fault"));
  ASSERT_TRUE(retry.ok()) << retry.status().message();
  EXPECT_TRUE(retry->replayed);
  EXPECT_EQ(retry->status, ResponseStatus::kOk);
  server.stop();
}

// --- admin plane -----------------------------------------------------------

TEST(Admin, DisabledByDefaultInProcess) {
  Server server(quick_options());
  ASSERT_TRUE(server.start().ok());
  EXPECT_EQ(server.admin_port(), 0);
  server.stop();
}

TEST(Admin, HealthStatsProfileFlightAndUnknownVerb) {
  const bool flight_was_on = obs::flight_enabled();
  obs::set_flight_enabled(false);
  ServerOptions options = quick_options();
  options.admin_enabled = true;
  Server server(options);
  ASSERT_TRUE(server.start().ok());
  ASSERT_NE(server.admin_port(), 0);
  ASSERT_NE(server.admin_port(), server.port());

  // HEALTH answers before any request: serving, idle, build-stamped.
  const auto health = admin_call(server.admin_port(), "HEALTH");
  ASSERT_TRUE(health.ok()) << health.status().message();
  EXPECT_TRUE(health->ok);
  EXPECT_EQ(health->verb, "HEALTH");
  EXPECT_EQ(health->payload.rfind("{\"status\":\"serving\"", 0), 0u)
      << health->payload;
  EXPECT_NE(health->payload.find("\"workers\":1"), std::string::npos);
  EXPECT_NE(health->payload.find("\"build\":{\"git_sha\":"),
            std::string::npos);

  // Two served requests and one malformed probe, then STATS reconciles
  // with what the clients saw.
  for (const char* id : {"admin-1", "admin-2"}) {
    const auto response = call(server.port(), bs_request(id));
    ASSERT_TRUE(response.ok()) << response.status().message();
    EXPECT_EQ(response->status, ResponseStatus::kOk);
  }
  {
    const auto malformed = raw_call(server.port(), "junk\n");
    ASSERT_TRUE(malformed.ok());
    EXPECT_EQ(malformed->code, ErrorCode::kMalformedInput);
  }
  const auto stats = admin_call(server.admin_port(), "STATS");
  ASSERT_TRUE(stats.ok()) << stats.status().message();
  EXPECT_TRUE(stats->ok);
  EXPECT_EQ(stats->payload.rfind("{\"server\":{\"accepted\":", 0), 0u)
      << stats->payload;
  EXPECT_NE(stats->payload.find("\"requests\":2"), std::string::npos)
      << stats->payload;
  EXPECT_NE(stats->payload.find("\"ok\":2"), std::string::npos);
  EXPECT_NE(stats->payload.find("\"malformed\":1"), std::string::npos);
  EXPECT_NE(stats->payload.find("\"uptime_ms\":"), std::string::npos);
  EXPECT_NE(stats->payload.find("\"metrics\":{\"build\":"),
            std::string::npos);

  // The same counters in Prometheus text exposition, under the ucp_ucpd_
  // namespace (the registry owns ucp_serve_*, so one scrape never emits a
  // duplicate metric name).
  const auto prom = admin_call(server.admin_port(), "STATS prom");
  ASSERT_TRUE(prom.ok()) << prom.status().message();
  EXPECT_TRUE(prom->ok);
  EXPECT_NE(prom->payload.find("# TYPE ucp_ucpd_requests counter\n"
                               "ucp_ucpd_requests 2\n"),
            std::string::npos)
      << prom->payload;
  EXPECT_NE(prom->payload.find("ucp_ucpd_malformed 1\n"), std::string::npos);
  EXPECT_EQ(prom->payload.find("ucp_serve_requests "), std::string::npos);

  // PROFILE with tracing off explains itself instead of dumping nothing.
  const auto profile = admin_call(server.admin_port(), "PROFILE");
  ASSERT_TRUE(profile.ok()) << profile.status().message();
  EXPECT_TRUE(profile->ok);
  EXPECT_NE(profile->payload.find("no spans recorded"), std::string::npos);

  // FLIGHT is a served error while the recorder is off, and a parseable
  // JSON-lines dump once it is on.
  const auto off = admin_call(server.admin_port(), "FLIGHT");
  ASSERT_TRUE(off.ok()) << off.status().message();
  EXPECT_FALSE(off->ok);
  EXPECT_EQ(off->payload, "flight recorder disabled\n");
  obs::set_flight_enabled(true);
  obs::flight_note("test.admin", "flight on");
  const auto flight = admin_call(server.admin_port(), "FLIGHT");
  ASSERT_TRUE(flight.ok()) << flight.status().message();
  EXPECT_TRUE(flight->ok);
  EXPECT_EQ(
      flight->payload.rfind("{\"kind\":\"header\",\"reason\":\"admin_scrape\"",
                            0),
      0u)
      << flight->payload.substr(0, 120);
  obs::set_flight_enabled(flight_was_on);

  // Unknown verbs get a served error that names the verb and the menu.
  const auto bogus = admin_call(server.admin_port(), "BOGUS");
  ASSERT_TRUE(bogus.ok()) << bogus.status().message();
  EXPECT_FALSE(bogus->ok);
  EXPECT_NE(bogus->payload.find("unknown admin verb 'BOGUS'"),
            std::string::npos);

  // Every successful scrape above was counted (the failed FLIGHT and the
  // unknown verb still produced framed replies, so they count too). The
  // counter is bumped after the reply write, so give the admin thread a
  // beat to get there.
  ServerStats after = server.stats();
  for (int i = 0; i < 100 && after.admin_scrapes < 7u; ++i) {
    ::usleep(10000);
    after = server.stats();
  }
  EXPECT_EQ(after.admin_scrapes, 7u);
  EXPECT_EQ(after.admin_dropped, 0u);
  EXPECT_EQ(after.flight_dumps, 1u);
  server.stop();

  // Draining flips the HEALTH status for scrapes that race the shutdown;
  // after stop() the listener is gone entirely.
  EXPECT_FALSE(admin_call(server.admin_port(), "HEALTH").ok());
}

// --- the real daemon binary ------------------------------------------------

struct DaemonProcess {
  pid_t pid = -1;
  int stdout_fd = -1;
  std::uint16_t port = 0;

  ~DaemonProcess() {
    if (stdout_fd >= 0) ::close(stdout_fd);
    if (pid > 0) {
      ::kill(pid, SIGKILL);
      int status = 0;
      ::waitpid(pid, &status, 0);
    }
  }
};

/// fork/execs ucpd with `extra_args`, blocks until the "listening" line
/// announces the port. Returns a handle that SIGKILLs on destruction.
bool spawn_daemon(const std::vector<std::string>& extra_args,
                  DaemonProcess& daemon) {
  int out_pipe[2];
  if (::pipe(out_pipe) != 0) return false;
  const pid_t pid = ::fork();
  if (pid < 0) return false;
  if (pid == 0) {
    ::dup2(out_pipe[1], STDOUT_FILENO);
    ::close(out_pipe[0]);
    ::close(out_pipe[1]);
    std::vector<std::string> args = {UCP_UCPD_PATH, "--port=0",
                                     "--workers=2"};
    for (const std::string& a : extra_args) args.push_back(a);
    std::vector<char*> argv;
    for (std::string& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);
    ::execv(UCP_UCPD_PATH, argv.data());
    ::_exit(127);
  }
  ::close(out_pipe[1]);
  daemon.pid = pid;
  daemon.stdout_fd = out_pipe[0];
  // Read stdout until the announce line: "ucpd listening on 127.0.0.1:N".
  std::string banner;
  char c = 0;
  while (banner.find('\n') == std::string::npos) {
    const ssize_t n = ::read(daemon.stdout_fd, &c, 1);
    if (n <= 0) return false;
    banner.push_back(c);
  }
  const std::string needle = "127.0.0.1:";
  const std::size_t at = banner.find(needle);
  if (at == std::string::npos) return false;
  daemon.port = static_cast<std::uint16_t>(
      std::stoul(banner.substr(at + needle.size())));
  return daemon.port != 0;
}

TEST(Daemon, SigkillAndRestartReplaysJournaledIdsThenDrainsClean) {
  TempFile journal("ucpd_journal");

  // First daemon: answer one request, then die by SIGKILL with another
  // connection open mid-flight (no response will ever come for it).
  Response first;
  {
    DaemonProcess daemon;
    ASSERT_TRUE(spawn_daemon({"--journal=" + journal.path}, daemon));
    const auto response = call(daemon.port, bs_request("kill-1"), 60000);
    ASSERT_TRUE(response.ok()) << response.status().message();
    ASSERT_EQ(response->status, ResponseStatus::kOk);
    first = *response;

    auto midflight = support::tcp_connect(daemon.port, 5000);
    ASSERT_TRUE(midflight.ok());
    ASSERT_TRUE(
        write_all(*midflight, serialize_request(bs_request("kill-2")))
            .ok());
    ASSERT_EQ(::kill(daemon.pid, SIGKILL), 0);
    int status = 0;
    ASSERT_EQ(::waitpid(daemon.pid, &status, 0), daemon.pid);
    ASSERT_TRUE(WIFSIGNALED(status));
    daemon.pid = -1;  // already reaped
  }

  // Second daemon on the same journal: the answered id replays
  // byte-identically; the mid-flight id is served correctly either way
  // (replayed if the first daemon journaled it before SIGKILL landed,
  // computed fresh if not); a malformed probe gets a structured error;
  // SIGTERM drains with exit code 0.
  {
    DaemonProcess daemon;
    ASSERT_TRUE(spawn_daemon({"--journal=" + journal.path}, daemon));

    const auto replay = call(daemon.port, bs_request("kill-1"), 60000);
    ASSERT_TRUE(replay.ok()) << replay.status().message();
    EXPECT_TRUE(replay->replayed);
    EXPECT_EQ(replay->status, ResponseStatus::kOk);
    EXPECT_EQ(replay->tau_original, first.tau_original);
    EXPECT_EQ(replay->tau_optimized, first.tau_optimized);
    EXPECT_EQ(replay->program_text, first.program_text);

    // The mid-flight id: whether the SIGKILL beat the journal write is a
    // genuine race, but both outcomes must serve the same sound answer —
    // and it must match the journaled sibling (identical request body).
    const auto fresh = call(daemon.port, bs_request("kill-2"), 60000);
    ASSERT_TRUE(fresh.ok());
    EXPECT_EQ(fresh->status, ResponseStatus::kOk);
    EXPECT_EQ(fresh->tau_original, first.tau_original);
    EXPECT_EQ(fresh->tau_optimized, first.tau_optimized);

    const auto malformed = raw_call(daemon.port, "junk\n");
    ASSERT_TRUE(malformed.ok());
    EXPECT_EQ(malformed->code, ErrorCode::kMalformedInput);

    ASSERT_EQ(::kill(daemon.pid, SIGTERM), 0);
    int status = 0;
    ASSERT_EQ(::waitpid(daemon.pid, &status, 0), daemon.pid);
    EXPECT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0);
    daemon.pid = -1;
  }
}

/// Reads the next '\n'-terminated line from the daemon's stdout pipe.
bool read_stdout_line(DaemonProcess& daemon, std::string& line) {
  line.clear();
  char c = 0;
  while (true) {
    const ssize_t n = ::read(daemon.stdout_fd, &c, 1);
    if (n <= 0) return false;
    if (c == '\n') return true;
    line.push_back(c);
  }
}

TEST(Daemon, AdminPlaneAnnouncesScrapesAndSigquitDumpsFlight) {
  TempFile flight("ucpd_flight");
  DaemonProcess daemon;
  ASSERT_TRUE(spawn_daemon({"--flight=" + flight.path}, daemon));

  // The second stdout line announces the admin plane (the first line is
  // the listening announce, parsed byte-by-byte by spawn_daemon — the
  // ordering is part of the stdout contract).
  std::string admin_line;
  ASSERT_TRUE(read_stdout_line(daemon, admin_line));
  const std::string needle = "ucpd admin on 127.0.0.1:";
  ASSERT_EQ(admin_line.rfind(needle, 0), 0u) << admin_line;
  const auto admin_port =
      static_cast<std::uint16_t>(std::stoul(admin_line.substr(needle.size())));
  ASSERT_NE(admin_port, 0);

  const auto response = call(daemon.port, bs_request("ops-1"), 60000);
  ASSERT_TRUE(response.ok()) << response.status().message();
  EXPECT_EQ(response->status, ResponseStatus::kOk);

  const auto health = admin_call(admin_port, "HEALTH");
  ASSERT_TRUE(health.ok()) << health.status().message();
  EXPECT_TRUE(health->ok);
  EXPECT_NE(health->payload.find("\"status\":\"serving\""),
            std::string::npos);
  const auto stats = admin_call(admin_port, "STATS");
  ASSERT_TRUE(stats.ok()) << stats.status().message();
  EXPECT_NE(stats->payload.find("\"requests\":1"), std::string::npos)
      << stats->payload;

  // SIGQUIT: a forced flight dump to --flight=FILE, and the daemon keeps
  // serving afterwards — the dump is an operator snapshot, not a shutdown.
  ASSERT_EQ(::kill(daemon.pid, SIGQUIT), 0);
  std::string dump;
  for (int i = 0; i < 200 && dump.empty(); ++i) {
    std::FILE* f = std::fopen(flight.path.c_str(), "rb");
    if (f != nullptr) {
      char buf[4096];
      std::size_t n = 0;
      while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) dump.append(buf, n);
      std::fclose(f);
    }
    if (dump.empty()) ::usleep(20000);
  }
  ASSERT_FALSE(dump.empty()) << "no flight dump after SIGQUIT";
  EXPECT_EQ(dump.rfind("{\"kind\":\"header\",\"reason\":\"sigquit\"", 0), 0u)
      << dump.substr(0, 120);
  EXPECT_NE(dump.find("\"build\":{\"git_sha\":"), std::string::npos);

  const auto after = call(daemon.port, bs_request("ops-2"), 60000);
  ASSERT_TRUE(after.ok()) << after.status().message();
  EXPECT_EQ(after->status, ResponseStatus::kOk);

  ASSERT_EQ(::kill(daemon.pid, SIGTERM), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(daemon.pid, &status, 0), daemon.pid);
  EXPECT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
  daemon.pid = -1;
}

TEST(Daemon, NoAdminFlagKeepsTheOpsPlaneOff) {
  DaemonProcess daemon;
  ASSERT_TRUE(spawn_daemon({"--no-admin"}, daemon));
  const auto response = call(daemon.port, bs_request("noadmin-1"), 60000);
  ASSERT_TRUE(response.ok()) << response.status().message();
  EXPECT_EQ(response->status, ResponseStatus::kOk);
  ASSERT_EQ(::kill(daemon.pid, SIGTERM), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(daemon.pid, &status, 0), daemon.pid);
  EXPECT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
  daemon.pid = -1;
}

TEST(Daemon, RejectsBadArgumentsWithUsage) {
  DaemonProcess daemon;
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Silence the usage message in the test log.
    ::freopen("/dev/null", "w", stderr);
    ::execl(UCP_UCPD_PATH, UCP_UCPD_PATH, "--bogus-flag", nullptr);
    ::_exit(127);
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 2);
}

}  // namespace
}  // namespace ucp::serve
