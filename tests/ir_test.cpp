#include <gtest/gtest.h>

#include <set>

#include "ir/builder.hpp"
#include "ir/dominators.hpp"
#include "ir/dot.hpp"
#include "ir/layout.hpp"
#include "ir/lower.hpp"
#include "ir/program.hpp"
#include "ir/verify.hpp"
#include "support/check.hpp"

namespace ucp::ir {
namespace {

Program straight_line() {
  IrBuilder b("straight");
  b.movi(R(1), 5);
  b.addi(R(1), R(1), 3);
  b.halt();
  return b.take();
}

TEST(Isa, TerminatorsAndBranches) {
  EXPECT_TRUE(is_terminator(Opcode::kBranch));
  EXPECT_TRUE(is_terminator(Opcode::kBranchImm));
  EXPECT_TRUE(is_terminator(Opcode::kJump));
  EXPECT_TRUE(is_terminator(Opcode::kHalt));
  EXPECT_FALSE(is_terminator(Opcode::kAdd));
  EXPECT_TRUE(is_branch(Opcode::kBranch));
  EXPECT_FALSE(is_branch(Opcode::kJump));
}

TEST(Isa, CondEvaluation) {
  EXPECT_TRUE(eval_cond(Cond::kEq, 3, 3));
  EXPECT_FALSE(eval_cond(Cond::kEq, 3, 4));
  EXPECT_TRUE(eval_cond(Cond::kNe, 3, 4));
  EXPECT_TRUE(eval_cond(Cond::kLt, -1, 0));
  EXPECT_TRUE(eval_cond(Cond::kLe, 0, 0));
  EXPECT_TRUE(eval_cond(Cond::kGt, 1, 0));
  EXPECT_TRUE(eval_cond(Cond::kGe, 0, 0));
  EXPECT_FALSE(eval_cond(Cond::kGt, 0, 0));
}

TEST(Isa, RegisterWriteClassification) {
  EXPECT_TRUE(writes_register(Opcode::kAdd));
  EXPECT_TRUE(writes_register(Opcode::kLoad));
  EXPECT_FALSE(writes_register(Opcode::kStore));
  EXPECT_FALSE(writes_register(Opcode::kBranch));
  EXPECT_FALSE(writes_register(Opcode::kPrefetch));
}

TEST(Program, InstructionIdsAreStableAcrossInsertion) {
  Program p = straight_line();
  const InstrId first = p.block(p.entry()).instrs[0].id;
  Instruction nop;
  nop.op = Opcode::kNop;
  const InstrId inserted = p.insert(p.entry(), 1, nop);
  EXPECT_NE(inserted, first);
  EXPECT_EQ(p.block(p.entry()).instrs[0].id, first);
  EXPECT_EQ(p.block(p.entry()).instrs[1].id, inserted);
  EXPECT_EQ(p.instruction_count(), 4u);
}

TEST(Program, EraseRollsBackInsertion) {
  Program p = straight_line();
  Instruction nop;
  nop.op = Opcode::kNop;
  p.insert(p.entry(), 1, nop);
  p.erase(p.entry(), 1);
  EXPECT_EQ(p.instruction_count(), 3u);
}

TEST(Program, LocateFindsInstruction) {
  Program p = straight_line();
  const InstrId id = p.block(p.entry()).instrs[1].id;
  const auto loc = p.locate(id);
  EXPECT_EQ(loc.block, p.entry());
  EXPECT_EQ(loc.index, 1u);
  EXPECT_THROW(p.locate(9999), InvalidArgument);
}

TEST(Program, LoopBoundAccessors) {
  IrBuilder b("loops");
  b.for_range(R(1), 0, 10, [&] { b.nop(); });
  b.halt();
  Program p = b.take();
  bool found = false;
  for (const BasicBlock& bb : p.blocks()) {
    if (p.has_loop_bound(bb.id)) {
      EXPECT_EQ(p.loop_bound(bb.id), 11u);  // 10 trips + exit check
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Builder, ForRangeShape) {
  IrBuilder b("fr");
  b.for_range(R(1), 0, 4, [&] { b.nop(); });
  b.halt();
  Program p = b.take();
  EXPECT_TRUE(verify(p).empty());
  // entry + header + body + exit
  EXPECT_EQ(p.num_blocks(), 4u);
  const auto loops = find_natural_loops(p);
  ASSERT_EQ(loops.size(), 1u);
  EXPECT_EQ(loops[0].latches.size(), 1u);
}

TEST(Builder, IfThenElseJoins) {
  IrBuilder b("ite");
  b.movi(R(1), 1);
  b.movi(R(2), 2);
  b.if_then_else(
      Cond::kLt, R(1), R(2), [&] { b.movi(R(3), 10); },
      [&] { b.movi(R(3), 20); });
  b.movi(R(4), 99);
  b.halt();
  Program p = b.take();
  EXPECT_TRUE(verify(p).empty());
  // entry, then, else, join
  EXPECT_EQ(p.num_blocks(), 4u);
}

TEST(Builder, NestedIfInsideLoop) {
  IrBuilder b("nested");
  b.for_range(R(1), 0, 3, [&] {
    b.if_then(Cond::kEq, R(1), R(2), [&] { b.nop(); });
  });
  b.halt();
  EXPECT_TRUE(verify(b.take()).empty());
}

TEST(Builder, BreakLoopPatchesExit) {
  IrBuilder b("brk");
  b.for_range(R(1), 0, 10, [&] {
    b.if_then(Cond::kEq, R(1), R(2), [&] { b.break_loop(); });
  });
  b.movi(R(5), 1);
  b.halt();
  Program p = b.take();
  EXPECT_TRUE(verify(p).empty());
}

TEST(Builder, BreakOutsideLoopThrows) {
  IrBuilder b("bad");
  EXPECT_THROW(b.break_loop(), InvalidArgument);
}

TEST(Builder, EmitAfterHaltThrows) {
  IrBuilder b("afterhalt");
  b.halt();
  EXPECT_THROW(b.nop(), InvalidArgument);
}

TEST(Builder, TakeWithoutHaltThrows) {
  IrBuilder b("nohalt");
  b.movi(R(1), 1);
  EXPECT_THROW(b.take(), InvalidArgument);
}

TEST(Builder, SwitchOnLowersToCascade) {
  IrBuilder b("sw");
  b.movi(R(1), 2);
  b.switch_on(R(1),
              {{0, [&] { b.movi(R(2), 100); }},
               {1, [&] { b.movi(R(2), 200); }},
               {2, [&] { b.movi(R(2), 300); }}},
              [&] { b.movi(R(2), -1); });
  b.halt();
  Program p = b.take();
  EXPECT_TRUE(verify(p).empty());
  EXPECT_GE(p.num_blocks(), 7u);  // 3 tests + 3 cases + join at least
}

TEST(Builder, WhileLoopWithRegisterCondition) {
  IrBuilder b("wl");
  b.movi(R(1), 0);
  b.movi(R(2), 5);
  b.while_loop(
      6, [&] { return IrBuilder::LoopCond{Cond::kLt, R(1), R(2)}; },
      [&] { b.addi(R(1), R(1), 1); });
  b.halt();
  EXPECT_TRUE(verify(b.take()).empty());
}

TEST(Builder, DoWhileRejectsTerminatedBody) {
  IrBuilder b("dw");
  EXPECT_THROW(
      b.do_while(3, [&] { b.halt(); }, Cond::kLt, R(1), R(2)),
      InvalidArgument);
}

TEST(Verify, CatchesBranchArityMismatch) {
  Program p("bad");
  const BlockId bb = p.add_block("entry");
  p.set_entry(bb);
  Instruction br;
  br.op = Opcode::kBranch;
  p.append(bb, br);
  p.block(bb).succs = {bb};  // branch needs 2 successors
  const auto problems = verify(p);
  EXPECT_FALSE(problems.empty());
}

TEST(Verify, CatchesEmptyBlockAndMissingHalt) {
  Program p("bad2");
  const BlockId bb = p.add_block("entry");
  p.set_entry(bb);
  EXPECT_FALSE(verify(p).empty());
}

TEST(Verify, CatchesMissingLoopBound) {
  Program p("noloopbound");
  const BlockId a = p.add_block("entry");
  const BlockId h = p.add_block("header");
  const BlockId x = p.add_block("exit");
  p.set_entry(a);
  Instruction nop;
  nop.op = Opcode::kNop;
  p.append(a, nop);
  p.block(a).succs = {h};
  Instruction br;
  br.op = Opcode::kBranchImm;
  br.rs1 = 1;
  br.imm = 3;
  br.cond = Cond::kGe;
  p.append(h, br);
  p.block(h).succs = {x, h};  // self loop, no bound annotated
  Instruction halt;
  halt.op = Opcode::kHalt;
  p.append(x, halt);
  const auto problems = verify(p);
  ASSERT_FALSE(problems.empty());
  bool mentions_bound = false;
  for (const auto& s : problems)
    if (s.find("loop bound") != std::string::npos) mentions_bound = true;
  EXPECT_TRUE(mentions_bound);
}

TEST(Verify, CatchesBadRegister) {
  Program p("badreg");
  const BlockId bb = p.add_block("entry");
  p.set_entry(bb);
  Instruction in;
  in.op = Opcode::kMovImm;
  in.rd = 40;  // out of range
  p.append(bb, in);
  Instruction halt;
  halt.op = Opcode::kHalt;
  p.append(bb, halt);
  EXPECT_FALSE(verify(p).empty());
  EXPECT_THROW(verify_or_throw(p), InvalidArgument);
}

// Structured diagnostics: each issue names the offending block, instruction
// or successor slot, and carries a stable code the fuzz triage dispatches on.
TEST(VerifyIssues, BranchArityNamesTheBlock) {
  Program p("bad");
  const BlockId bb = p.add_block("entry");
  p.set_entry(bb);
  Instruction br;
  br.op = Opcode::kBranch;
  p.append(bb, br);
  p.block(bb).succs = {bb};
  const auto issues = verify_issues(p);
  ASSERT_FALSE(issues.empty());
  bool found = false;
  for (const auto& issue : issues)
    if (issue.code == VerifyCode::kBranchArity) {
      found = true;
      EXPECT_EQ(issue.block, bb);
      EXPECT_NE(issue.message.find(verify_code_name(issue.code)),
                std::string::npos);
    }
  EXPECT_TRUE(found);
}

TEST(VerifyIssues, BadRegisterNamesTheInstruction) {
  Program p("badreg");
  const BlockId bb = p.add_block("entry");
  p.set_entry(bb);
  Instruction in;
  in.op = Opcode::kMovImm;
  in.rd = 40;
  const InstrId bad = p.append(bb, in);
  Instruction halt;
  halt.op = Opcode::kHalt;
  p.append(bb, halt);
  const auto issues = verify_issues(p);
  ASSERT_FALSE(issues.empty());
  bool found = false;
  for (const auto& issue : issues)
    if (issue.code == VerifyCode::kBadDestRegister) {
      found = true;
      EXPECT_EQ(issue.block, bb);
      EXPECT_EQ(issue.instr, bad);
    }
  EXPECT_TRUE(found);
}

TEST(VerifyIssues, SuccessorOutOfRangeNamesTheEdgeSlot) {
  Program p("badsucc");
  const BlockId bb = p.add_block("entry");
  p.set_entry(bb);
  Instruction jump;
  jump.op = Opcode::kJump;
  p.append(bb, jump);
  p.block(bb).succs = {static_cast<BlockId>(99)};
  const auto issues = verify_issues(p);
  bool found = false;
  for (const auto& issue : issues)
    if (issue.code == VerifyCode::kSuccessorOutOfRange) {
      found = true;
      EXPECT_EQ(issue.block, bb);
      EXPECT_EQ(issue.succ_index, 0);
    }
  EXPECT_TRUE(found);
}

TEST(VerifyIssues, MissingEntryAndEmptyBlockHaveDistinctCodes) {
  Program none("empty");
  const auto no_entry = verify_issues(none);
  ASSERT_FALSE(no_entry.empty());
  EXPECT_EQ(no_entry.front().code, VerifyCode::kNoEntry);

  Program p("emptyblock");
  const BlockId bb = p.add_block("entry");
  p.set_entry(bb);
  const auto issues = verify_issues(p);
  bool empty_block = false;
  for (const auto& issue : issues)
    if (issue.code == VerifyCode::kEmptyBlock && issue.block == bb)
      empty_block = true;
  EXPECT_TRUE(empty_block);
}

TEST(VerifyIssues, EveryCodeHasAStableName) {
  for (int c = 0; c <= static_cast<int>(VerifyCode::kLoopAnalysisFailed);
       ++c) {
    const char* name = verify_code_name(static_cast<VerifyCode>(c));
    ASSERT_NE(name, nullptr);
    EXPECT_GT(std::string(name).size(), 0u);
  }
}

TEST(Layout, AddressesAreSequential) {
  Program p = straight_line();
  const Layout layout(p, 16);
  const auto& instrs = p.block(p.entry()).instrs;
  EXPECT_EQ(layout.address(instrs[0].id), 0u);
  EXPECT_EQ(layout.address(instrs[1].id), 4u);
  EXPECT_EQ(layout.address(instrs[2].id), 8u);
  EXPECT_EQ(layout.code_bytes(), 12u);
  EXPECT_EQ(layout.num_mem_blocks(), 1u);
}

TEST(Layout, MemBlockMapping) {
  Program p("blocks");
  const BlockId bb = p.add_block("entry");
  p.set_entry(bb);
  for (int i = 0; i < 7; ++i) {
    Instruction nop;
    nop.op = Opcode::kNop;
    p.append(bb, nop);
  }
  Instruction halt;
  halt.op = Opcode::kHalt;
  p.append(bb, halt);

  const Layout layout(p, 16);  // 4 instructions per block
  EXPECT_EQ(layout.mem_block(p.block(bb).instrs[0].id), 0u);
  EXPECT_EQ(layout.mem_block(p.block(bb).instrs[3].id), 0u);
  EXPECT_EQ(layout.mem_block(p.block(bb).instrs[4].id), 1u);
  EXPECT_EQ(layout.num_mem_blocks(), 2u);
}

TEST(Layout, InsertionShiftsDownstreamOnly) {
  IrBuilder b("shift");
  b.movi(R(1), 1);
  b.movi(R(2), 2);
  b.movi(R(3), 3);
  b.halt();
  Program p = b.take();
  const auto& instrs = p.block(p.entry()).instrs;
  const InstrId i0 = instrs[0].id, i2 = instrs[2].id;

  const Layout before(p, 16);
  const std::uint32_t a0 = before.address(i0);
  const std::uint32_t a2 = before.address(i2);

  Instruction nop;
  nop.op = Opcode::kNop;
  p.insert(p.entry(), 1, nop);
  const Layout after(p, 16);
  EXPECT_EQ(after.address(i0), a0);           // upstream untouched
  EXPECT_EQ(after.address(i2), a2 + kInstrBytes);  // downstream shifted
}

TEST(Layout, RejectsBadGeometry) {
  Program p = straight_line();
  EXPECT_THROW(Layout(p, 12), InvalidArgument);  // not a power of two
  EXPECT_THROW(Layout(p, 2), InvalidArgument);   // smaller than instruction
  EXPECT_THROW(Layout(p, 16, 8), InvalidArgument);  // unaligned base
}

TEST(Dominators, DiamondDominance) {
  IrBuilder b("diamond");
  b.movi(R(1), 0);
  b.if_then_else(Cond::kEq, R(1), R(2), [&] { b.nop(); }, [&] { b.nop(); });
  b.halt();
  Program p = b.take();
  const DominatorTree dom(p);
  // Entry dominates everything; branch targets do not dominate the join.
  for (const BasicBlock& bb : p.blocks()) {
    if (dom.reachable(bb.id))
      EXPECT_TRUE(dom.dominates(p.entry(), bb.id));
  }
  EXPECT_TRUE(dom.dominates(p.entry(), p.entry()));
}

TEST(Dominators, LoopDetection) {
  IrBuilder b("twoloop");
  b.for_range(R(1), 0, 3, [&] {
    b.for_range(R(2), 0, 4, [&] { b.nop(); });
  });
  b.halt();
  Program p = b.take();
  const auto loops = loops_outermost_first(p);
  ASSERT_EQ(loops.size(), 2u);
  EXPECT_GT(loops[0].blocks.size(), loops[1].blocks.size());
  // The outer loop directly contains the inner loop's header.
  ASSERT_EQ(loops[0].sub_headers.size(), 1u);
  EXPECT_EQ(loops[0].sub_headers[0], loops[1].header);
}

TEST(Lower, PreservesBlockStructure) {
  IrBuilder b("low");
  b.movi(R(1), 100000);  // needs a movw/movt pair
  b.load(R(2), R(1), 5);
  b.store(R(1), 7, R(2));
  b.for_range(R(3), 0, 4, [&] { b.load(R(4), R(3), 0); });
  b.halt();
  Program p = b.take();
  Program low = lower(p);
  EXPECT_TRUE(verify(low).empty());
  EXPECT_EQ(low.num_blocks(), p.num_blocks());
  EXPECT_GT(low.instruction_count(), p.instruction_count());
  for (const auto& [header, bound] : p.loop_bounds())
    EXPECT_EQ(low.loop_bound(header), bound);
}

TEST(Lower, EveryAccessGainsAddressGeneration) {
  IrBuilder b("zero");
  b.load(R(1), R(2), 0);
  b.halt();
  Program p = b.take();
  // load -> addi + load; halt unchanged.
  EXPECT_EQ(lower(p).instruction_count(), p.instruction_count() + 1);
}

TEST(Lower, SmallImmediatesStaySingleWideOnesPair) {
  IrBuilder b("smallimm");
  b.movi(R(1), -5);      // 8-bit immediate: single instruction
  b.movi(R(2), 65535);   // wide: movw/movt-style pair
  b.halt();
  Program p = b.take();
  EXPECT_EQ(lower(p).instruction_count(), p.instruction_count() + 1);
}

TEST(Lower, RejectsReservedRegisters) {
  Program p("scratch");
  const BlockId bb = p.add_block("entry");
  p.set_entry(bb);
  Instruction in;
  in.op = Opcode::kMov;
  in.rd = kScratchReg;
  in.rs1 = 1;
  p.append(bb, in);
  Instruction halt;
  halt.op = Opcode::kHalt;
  p.append(bb, halt);
  EXPECT_THROW(lower(p), InvalidArgument);
}

TEST(Dot, EmitsAllBlocks) {
  IrBuilder b("dotty");
  b.for_range(R(1), 0, 2, [&] { b.nop(); });
  b.halt();
  Program p = b.take();
  const std::string dot = to_dot(p);
  for (const BasicBlock& bb : p.blocks()) {
    EXPECT_NE(dot.find("bb" + std::to_string(bb.id)), std::string::npos);
  }
  EXPECT_NE(dot.find("digraph"), std::string::npos);
}

TEST(ReversePostOrder, HeaderBeforeBody) {
  IrBuilder b("rpo");
  b.for_range(R(1), 0, 2, [&] { b.nop(); });
  b.halt();
  Program p = b.take();
  const auto rpo = p.reverse_post_order();
  EXPECT_EQ(rpo.front(), p.entry());
  EXPECT_EQ(rpo.size(), p.num_blocks());
  std::set<BlockId> seen(rpo.begin(), rpo.end());
  EXPECT_EQ(seen.size(), rpo.size());
}

}  // namespace
}  // namespace ucp::ir
