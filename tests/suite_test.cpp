#include <gtest/gtest.h>

#include <algorithm>

#include "cache/cache_sim.hpp"
#include "ir/layout.hpp"
#include "ir/lower.hpp"
#include "ir/verify.hpp"
#include "sim/interpreter.hpp"
#include "suite/suite.hpp"

namespace ucp::suite {
namespace {

const cache::CacheConfig kConfig{4, 32, 8192};  // big enough to run anything
const cache::MemTiming kTiming{1, 25, 25};

/// Runs a (lowered) suite program to completion and returns final data.
std::vector<std::int64_t> run_data(const ir::Program& p) {
  const ir::Layout layout(p, kConfig.block_bytes);
  cache::CacheSim cache(kConfig, kTiming);
  sim::Interpreter interp(p, layout, cache);
  interp.run();
  return interp.data();
}

TEST(Registry, ThirtySevenProgramsWithPaperIds) {
  const auto& all = all_benchmarks();
  ASSERT_EQ(all.size(), 37u);
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i].id, "p" + std::to_string(i + 1));
    EXPECT_FALSE(all[i].name.empty());
    EXPECT_FALSE(all[i].description.empty());
    EXPECT_NE(all[i].build, nullptr);
  }
  EXPECT_THROW(benchmark("not_a_benchmark"), InvalidArgument);
  EXPECT_EQ(benchmark("crc").id, "p7");
}

// --- kernel result checks (each asserts the actual computation) -----------

TEST(Kernels, BsFindsTheKey) {
  const auto data = run_data(build_benchmark("bs"));
  EXPECT_EQ(data[16], 8);  // key 25 lives at index 8
}

TEST(Kernels, Bsort100Sorts) {
  const auto data = run_data(build_benchmark("bsort100"));
  for (int i = 0; i < 100; ++i) EXPECT_EQ(data[static_cast<std::size_t>(i)], i);
  EXPECT_EQ(data[100], 99);  // passes recorded
}

TEST(Kernels, InsertsortSorts) {
  const auto data = run_data(build_benchmark("insertsort"));
  for (int i = 1; i <= 10; ++i)
    EXPECT_EQ(data[static_cast<std::size_t>(i)], i - 1);
}

TEST(Kernels, QsortExamSorts) {
  const auto data = run_data(build_benchmark("qsort_exam"));
  for (int i = 0; i < 20; ++i) EXPECT_EQ(data[static_cast<std::size_t>(i)], i);
}

TEST(Kernels, SelectFindsTenthSmallest) {
  const auto data = run_data(build_benchmark("select"));
  // Sorted input: 2,3,7,9,11,14,19,23,25,30,... -> 10th smallest (index 9).
  EXPECT_EQ(data[20], 30);
}

TEST(Kernels, MinmaxExtremes) {
  std::int64_t mn = 1 << 20, mx = -(1 << 20), sum = 0;
  for (int k = 0; k < 30; ++k) {
    const std::int64_t v = ((k * 37) % 101) - 20;
    mn = std::min(mn, v);
    mx = std::max(mx, v);
    if (v > 40)
      sum += 40;
    else if (v >= 0)
      sum += v;
  }
  const auto data = run_data(build_benchmark("minmax"));
  EXPECT_EQ(data[30], mn);
  EXPECT_EQ(data[31], mx);
  EXPECT_EQ(data[32], sum);
}

TEST(Kernels, FacSumOfFactorials) {
  const auto data = run_data(build_benchmark("fac"));
  EXPECT_EQ(data[0], 1 + 1 + 2 + 6 + 24 + 120 + 720 + 5040);
}

TEST(Kernels, FibcallFib30) {
  const auto data = run_data(build_benchmark("fibcall"));
  EXPECT_EQ(data[0], 832040);
}

TEST(Kernels, PrimeClassifiesBoth) {
  const auto data = run_data(build_benchmark("prime"));
  EXPECT_EQ(data[2], 1);  // 1009 is prime
  EXPECT_EQ(data[3], 0);  // 1001 = 7*11*13
}

TEST(Kernels, QurtRootsOfQuadratic) {
  const auto data = run_data(build_benchmark("qurt"));
  EXPECT_EQ(data[0], 7);  // x^2 - 10x + 21 = (x-7)(x-3)
  EXPECT_EQ(data[1], 3);
}

TEST(Kernels, SqrtExact) {
  const auto data = run_data(build_benchmark("sqrt"));
  EXPECT_EQ(data[1], 35136);  // floor(sqrt(1234567890))
}

TEST(Kernels, RecursionFib12) {
  const auto data = run_data(build_benchmark("recursion"));
  EXPECT_EQ(data[0], 144);
}

TEST(Kernels, JanneComplexTerminates) {
  const auto data = run_data(build_benchmark("janne_complex"));
  EXPECT_GE(data[0], 30);  // loop exit condition a >= 30
}

TEST(Kernels, CrcTableMatchesBitwise) {
  const auto data = run_data(build_benchmark("crc"));
  EXPECT_EQ(data[40], data[41]);  // table-driven == bitwise
  EXPECT_EQ(data[42], 1);         // self-check flag
  EXPECT_GT(data[40], 0);
}

TEST(Kernels, CompressRoundTrips) {
  const auto data = run_data(build_benchmark("compress"));
  EXPECT_EQ(data[62], 0);   // decompress(compress(x)) == x
  EXPECT_EQ(data[63], 9);  // number of runs
}

TEST(Kernels, DuffCopiesEverything) {
  const auto data = run_data(build_benchmark("duff"));
  EXPECT_EQ(data[120], 43);
  for (int i = 0; i < 43; ++i)
    EXPECT_EQ(data[static_cast<std::size_t>(64 + i)], (i * i) % 97);
}

TEST(Kernels, LcdnumMasksDigits) {
  const auto data = run_data(build_benchmark("lcdnum"));
  EXPECT_EQ(data[10], 0x4f);  // digit 3
  EXPECT_EQ(data[11], 0x06);  // digit 1
  EXPECT_EQ(data[20], 0x7f);  // OR over 3,1,4,1,5,9,2,6,5,3
}

TEST(Kernels, NsFindsKeyWithEarlyExit) {
  const auto data = run_data(build_benchmark("ns"));
  EXPECT_EQ(data[257], 200);
  EXPECT_EQ(data[258], 201);  // probes up to and including the hit
}

TEST(Kernels, MatmultTraceMatchesReference) {
  // Reference computation replicated in plain C++.
  std::int64_t A[10][10], B[10][10], C[10][10];
  for (int q = 0; q < 100; ++q) {
    A[q / 10][q % 10] = (q % 7) - 3;
    B[q / 10][q % 10] = (q % 5) - 2;
  }
  for (int i = 0; i < 10; ++i)
    for (int j = 0; j < 10; ++j) {
      C[i][j] = 0;
      for (int k = 0; k < 10; ++k) C[i][j] += A[i][k] * B[k][j];
    }
  std::int64_t trace = 0;
  for (int i = 0; i < 10; ++i) trace += C[i][i];

  const auto data = run_data(build_benchmark("matmult"));
  EXPECT_EQ(data[300], trace);
  for (int i = 0; i < 10; ++i)
    for (int j = 0; j < 10; ++j)
      EXPECT_EQ(data[static_cast<std::size_t>(200 + 10 * i + j)], C[i][j]);
}

TEST(Kernels, CntCountsReference) {
  std::int64_t cntp = 0, sump = 0, sumn = 0;
  for (int k = 0; k < 100; ++k) {
    const std::int64_t v = ((k * 17) % 41) - 20;
    if (v > 0) {
      ++cntp;
      sump += v;
    } else {
      sumn += v;
    }
  }
  const auto data = run_data(build_benchmark("cnt"));
  EXPECT_EQ(data[100], cntp);
  EXPECT_EQ(data[101], sump);
  EXPECT_EQ(data[102], sumn);
}

TEST(Kernels, LudcmpSolvesApproximately) {
  // The scaled-integer solve must reproduce the real solution to within
  // fixed-point error; reference via double elimination.
  double A[5][5], rhs[5];
  const int Ai[25] = {20, 1, 2,  1, 3, 2, 18, 1, 2, 1, 1, 2, 22,
                      1,  2, 3, 1,  1, 19, 2, 2, 1, 2, 1, 21};
  const int bi[5] = {35, 27, 44, 31, 52};
  for (int i = 0; i < 5; ++i) {
    rhs[i] = bi[i];
    for (int j = 0; j < 5; ++j) A[i][j] = Ai[i * 5 + j];
  }
  // Gaussian elimination.
  double x[5];
  for (int k = 0; k < 4; ++k)
    for (int i = k + 1; i < 5; ++i) {
      const double f = A[i][k] / A[k][k];
      for (int j = k; j < 5; ++j) A[i][j] -= f * A[k][j];
      rhs[i] -= f * rhs[k];
    }
  for (int i = 4; i >= 0; --i) {
    double s = rhs[i];
    for (int j = i + 1; j < 5; ++j) s -= A[i][j] * x[j];
    x[i] = s / A[i][i];
  }

  const auto data = run_data(build_benchmark("ludcmp"));
  for (int i = 0; i < 5; ++i) {
    const double got = static_cast<double>(data[static_cast<std::size_t>(30 + i)]) / 1024.0;
    EXPECT_NEAR(got, x[i], 0.05) << "x[" << i << "]";
  }
}

TEST(Kernels, MinverInverseTimesMatrixIsIdentity) {
  const auto data = run_data(build_benchmark("minver"));
  // Check A * inv ≈ scale * I in scaled arithmetic.
  const std::int64_t scale = 1024;
  std::int64_t A[9], inv[9];
  for (int q = 0; q < 9; ++q) {
    A[q] = data[static_cast<std::size_t>(q)];
    inv[q] = data[static_cast<std::size_t>(9 + q)];
  }
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j) {
      std::int64_t s = 0;
      for (int k = 0; k < 3; ++k) s += A[i * 3 + k] * inv[k * 3 + j];
      s /= scale;  // back to scale units
      const std::int64_t expect = (i == j) ? scale : 0;
      EXPECT_NEAR(static_cast<double>(s), static_cast<double>(expect), 40.0)
          << "entry " << i << "," << j;
    }
}

TEST(Kernels, StReferenceSums) {
  std::int64_t sx = 0, sy = 0;
  std::int64_t xs[20], ys[20];
  for (int q = 0; q < 20; ++q) {
    xs[q] = q * 3 + ((q * 7) % 5);
    ys[q] = 60 - q * 2 + ((q * 11) % 7);
    sx += xs[q];
    sy += ys[q];
  }
  const auto data = run_data(build_benchmark("st"));
  EXPECT_EQ(data[50], sx);
  EXPECT_EQ(data[51], sy);
  const std::int64_t mx = sx / 20, my = sy / 20;
  std::int64_t vx = 0, cov = 0;
  for (int q = 0; q < 20; ++q) {
    vx += (xs[q] - mx) * (xs[q] - mx);
    cov += (xs[q] - mx) * (ys[q] - my);
  }
  EXPECT_EQ(data[54], vx);
  EXPECT_EQ(data[55], cov);
}

TEST(Kernels, UdEliminationMatchesFractionFreeReference) {
  std::int64_t A[4][4], rhs[4];
  const int Ai[16] = {3, 1, 0, 2, 1, 4, 1, 0, 0, 1, 5, 1, 2, 0, 1, 6};
  const int bi[4] = {11, 13, 17, 23};
  for (int i = 0; i < 4; ++i) {
    rhs[i] = bi[i];
    for (int j = 0; j < 4; ++j) A[i][j] = Ai[i * 4 + j];
  }
  for (int k = 0; k < 3; ++k) {
    const std::int64_t piv = A[k][k];
    for (int i = k + 1; i < 4; ++i) {
      const std::int64_t aik = A[i][k];
      for (int j = 0; j < 4; ++j) A[i][j] = A[i][j] * piv - aik * A[k][j];
      rhs[i] = rhs[i] * piv - aik * rhs[k];
    }
  }
  const auto data = run_data(build_benchmark("ud"));
  EXPECT_EQ(data[20], A[3][3]);
}

TEST(Kernels, AdpcmDecodeTracksSignal) {
  const auto data = run_data(build_benchmark("adpcm"));
  // The quantizer is lossy but must track the (smoothed) signal: average
  // error below 8 per sample over 50 samples.
  EXPECT_GT(data[224], 0);
  EXPECT_LT(data[224], 50 * 8);
}

TEST(Kernels, NdesAvalanche) {
  const auto data = run_data(build_benchmark("ndes"));
  EXPECT_NE(data[0], 0x12345678);  // ciphertext differs from plaintext
  EXPECT_NE(data[1], 0x0fedcba9);
  EXPECT_NE(data[0], data[1]);
}

TEST(Kernels, NsichneuConservesTokensModuloSinks) {
  const auto data = run_data(build_benchmark("nsichneu"));
  // The final checksum exists and the automaton settled deterministically.
  EXPECT_GE(data[300], 0);
}

TEST(Kernels, WhetModulesProduceStableAccumulators) {
  const auto a = run_data(build_benchmark("whet"));
  const auto b = run_data(build_benchmark("whet"));
  for (int q = 16; q < 24; ++q)
    EXPECT_EQ(a[static_cast<std::size_t>(q)], b[static_cast<std::size_t>(q)]);
}

// --- structural properties over the whole suite ---------------------------

class AllProgramsTest : public ::testing::TestWithParam<const char*> {};

TEST_P(AllProgramsTest, BuilderFormVerifiesAndRuns) {
  const ir::Program p = benchmark(GetParam()).build();
  EXPECT_TRUE(ir::verify(p).empty());
  EXPECT_NO_THROW(run_data(p));
}

TEST_P(AllProgramsTest, LoweredFormRunsIdentically) {
  const ir::Program raw = benchmark(GetParam()).build();
  const ir::Program low = ir::lower(raw);
  EXPECT_EQ(run_data(raw), run_data(low));
}

TEST_P(AllProgramsTest, TerminatesWithinStepBudget) {
  const ir::Program p = build_benchmark(GetParam());
  const ir::Layout layout(p, kConfig.block_bytes);
  cache::CacheSim cache(kConfig, kTiming);
  sim::RunLimits limits;
  limits.max_steps = 5'000'000;
  sim::Interpreter interp(p, layout, cache, limits);
  EXPECT_NO_THROW(interp.run());
}

std::vector<const char*> all_names() {
  std::vector<const char*> names;
  for (const BenchmarkInfo& info : all_benchmarks())
    names.push_back(info.name.c_str());
  return names;
}

INSTANTIATE_TEST_SUITE_P(Suite, AllProgramsTest,
                         ::testing::ValuesIn(all_names()));

}  // namespace
}  // namespace ucp::suite
