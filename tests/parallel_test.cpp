// Parallel-determinism suite: the sweep's bit-identity claims must hold at
// every thread count and across process shards. Pins (a) thread-count
// invariance of the result fingerprint AND the journal file bytes, (b) the
// shard/merge round trip — two shard journals merged back into a byte-
// identical full-grid journal with identical row-derived metrics, (c)
// SIGKILL + resume of one shard feeding a still-bit-identical merge, and
// (d) the deterministic lowest-failing-index error discipline of
// support::parallel_for_index that all of the above is built on.
//
// Journal byte comparisons run with obs disabled: an obs-enabled sweep
// appends a trailing `# metrics {...}` annotation (a comment, excluded from
// resume and from the merge), which a merged journal does not carry.

#include <gtest/gtest.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <stdexcept>
#include <string>
#include <vector>

#include "energy/model.hpp"
#include "exp/harness.hpp"
#include "exp/journal.hpp"
#include "obs/metrics.hpp"
#include "support/fault_injection.hpp"
#include "support/parallel.hpp"

namespace ucp::exp {
namespace {

/// Reduced but non-trivial grid: three programs of different weight classes
/// (fdct reaches the optimizer's candidate walk, bs covers the no-candidate
/// path, crc adds a third weight) x three configurations x both tech nodes
/// = 18 rows over 9 tasks, enough for a 2-shard split to own >= 4 tasks
/// each and for threads {1,2,4} to actually interleave.
SweepOptions reduced_sweep(std::uint32_t threads,
                           const std::string& journal = "") {
  SweepOptions options;
  options.programs = {"bs", "fdct", "crc"};
  options.config_stride = 12;  // k1, k13, k25
  options.threads = threads;
  options.progress_every = 0;
  options.journal_path = journal;
  return options;
}

struct TempFile {
  std::string path;
  explicit TempFile(const std::string& name)
      : path(testing::TempDir() + name + "." + std::to_string(::getpid())) {
    std::remove(path.c_str());
  }
  ~TempFile() { std::remove(path.c_str()); }
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

/// Row-derived metrics snapshot of a result set: what publish_sweep_metrics
/// emits when the report is re-derived purely from the rows. Two result
/// sets with bit-identical rows must produce byte-identical snapshots.
std::string row_metrics_snapshot(const std::vector<UseCaseResult>& results) {
  Sweep view;
  view.results = results;
  view.report = derive_row_report(results);
  obs::set_enabled(true);
  obs::registry().reset_values();
  publish_sweep_metrics(view);
  const std::string json = obs::snapshot_json(obs::registry().snapshot());
  obs::set_enabled(false);
  obs::registry().reset_values();
  return json;
}

TEST(Parallel, ThreadCountInvariantFingerprintAndJournalBytes) {
  obs::set_enabled(false);
  fault::disarm_all();
  std::string want_fp;
  std::string want_journal;
  for (const std::uint32_t threads : {1u, 2u, 4u}) {
    TempFile journal("parallel_threads_journal");
    const Sweep sweep = run_sweep(reduced_sweep(threads, journal.path));
    ASSERT_TRUE(sweep.report.clean()) << "threads=" << threads;
    EXPECT_EQ(sweep.report.threads_used, threads);
    const std::string fp = sweep_results_fingerprint(sweep.results);
    const std::string bytes = read_file(journal.path);
    ASSERT_FALSE(bytes.empty());
    if (want_fp.empty()) {
      want_fp = fp;
      want_journal = bytes;
      continue;
    }
    EXPECT_EQ(fp, want_fp) << "fingerprint diverged at threads=" << threads;
    EXPECT_EQ(bytes, want_journal)
        << "journal bytes diverged at threads=" << threads;
  }
}

TEST(Parallel, TwoShardMergeIsByteIdenticalToSingleProcess) {
  obs::set_enabled(false);
  fault::disarm_all();

  TempFile single_journal("parallel_single_journal");
  const Sweep single = run_sweep(reduced_sweep(2, single_journal.path));
  ASSERT_TRUE(single.report.clean());
  const std::string want_fp = sweep_results_fingerprint(single.results);
  const std::string want_bytes = read_file(single_journal.path);

  TempFile shard0_journal("parallel_shard0_journal");
  TempFile shard1_journal("parallel_shard1_journal");
  SweepOptions shard0 = reduced_sweep(2, shard0_journal.path);
  shard0.shard_index = 0;
  shard0.shard_count = 2;
  SweepOptions shard1 = reduced_sweep(2, shard1_journal.path);
  shard1.shard_index = 1;
  shard1.shard_count = 2;
  const Sweep s0 = run_sweep(shard0);
  const Sweep s1 = run_sweep(shard1);
  ASSERT_TRUE(s0.report.clean());
  ASSERT_TRUE(s1.report.clean());
  EXPECT_EQ(s0.results.size() + s1.results.size(), single.results.size());

  TempFile merged_journal("parallel_merged_journal");
  const auto merged = merge_sweep_journals(
      {shard0_journal.path, shard1_journal.path}, reduced_sweep(1),
      merged_journal.path);
  ASSERT_TRUE(merged.ok()) << merged.status().message();
  EXPECT_EQ(merged->shard_count, 2u);
  EXPECT_EQ(merged->rows, single.results.size());
  EXPECT_EQ(merged->fingerprint, want_fp);
  EXPECT_EQ(sweep_results_fingerprint(merged->results), want_fp);
  EXPECT_EQ(read_file(merged_journal.path), want_bytes)
      << "merged journal is not byte-identical to the single-process one";

  // Row-derived metrics of the merged grid are indistinguishable from the
  // single-process sweep's.
  EXPECT_EQ(row_metrics_snapshot(merged->results),
            row_metrics_snapshot(single.results));

  // Incomplete or overlapping shard sets must be rejected, never guessed at.
  TempFile reject_out("parallel_reject_out");
  const auto missing = merge_sweep_journals({shard0_journal.path},
                                            reduced_sweep(1), reject_out.path);
  EXPECT_FALSE(missing.ok());
  const auto duplicate = merge_sweep_journals(
      {shard0_journal.path, shard0_journal.path}, reduced_sweep(1),
      reject_out.path);
  EXPECT_FALSE(duplicate.ok());
}

TEST(Parallel, MergeRejectionsCarryStructuredDiagnostics) {
  // Every merge rejection must name the offending file and (for row-level
  // corruption) the row, as machine-checkable fields — operators of a
  // sharded fleet triage from the diagnostic, not by parsing prose.
  obs::set_enabled(false);
  fault::disarm_all();

  TempFile shard0_journal("parallel_diag0_journal");
  TempFile shard1_journal("parallel_diag1_journal");
  SweepOptions shard0 = reduced_sweep(2, shard0_journal.path);
  shard0.shard_index = 0;
  shard0.shard_count = 2;
  SweepOptions shard1 = reduced_sweep(2, shard1_journal.path);
  shard1.shard_index = 1;
  shard1.shard_count = 2;
  ASSERT_TRUE(run_sweep(shard0).report.clean());
  ASSERT_TRUE(run_sweep(shard1).report.clean());

  auto read_lines = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
    return lines;
  };
  auto write_lines = [](const std::string& path,
                        const std::vector<std::string>& lines) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    for (const std::string& line : lines) out << line << '\n';
  };
  const std::vector<std::string> shard0_lines = read_lines(shard0_journal.path);
  ASSERT_GE(shard0_lines.size(), 3u);

  using Reason = MergeDiagnostic::Reason;
  MergeDiagnostic diagnostic;

  // missing-file: a path that does not exist.
  auto gone = merge_sweep_journals({"/nonexistent/journal"}, reduced_sweep(1),
                                   "", &diagnostic);
  EXPECT_FALSE(gone.ok());
  EXPECT_EQ(diagnostic.reason, Reason::kMissingFile);
  EXPECT_EQ(diagnostic.file, "/nonexistent/journal");
  EXPECT_STREQ(merge_reason_name(diagnostic.reason), "missing-file");

  // duplicate-shard: the same shard journal offered twice — the *second*
  // occurrence is the offender.
  auto duplicate = merge_sweep_journals(
      {shard0_journal.path, shard0_journal.path}, reduced_sweep(1), "",
      &diagnostic);
  EXPECT_FALSE(duplicate.ok());
  EXPECT_EQ(diagnostic.reason, Reason::kDuplicateShard);
  EXPECT_EQ(diagnostic.file, shard0_journal.path);
  EXPECT_STREQ(merge_reason_name(diagnostic.reason), "duplicate-shard");

  // missing-shard: only half the fleet reported. No single file to blame.
  auto missing = merge_sweep_journals({shard0_journal.path}, reduced_sweep(1),
                                      "", &diagnostic);
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(diagnostic.reason, Reason::kMissingShard);
  EXPECT_TRUE(diagnostic.file.empty());
  EXPECT_STREQ(merge_reason_name(diagnostic.reason), "missing-shard");

  // checksum: flip the checksum field of shard 0's second data row. The
  // diagnostic reports the 0-based data-row position within that file.
  {
    TempFile corrupt("parallel_diag_checksum");
    std::vector<std::string> lines = shard0_lines;
    std::string& row = lines[2];  // header + first row precede it
    row.back() = row.back() == '0' ? '1' : '0';
    write_lines(corrupt.path, lines);
    auto torn = merge_sweep_journals({corrupt.path, shard1_journal.path},
                                     reduced_sweep(1), "", &diagnostic);
    EXPECT_FALSE(torn.ok());
    EXPECT_EQ(diagnostic.reason, Reason::kChecksum);
    EXPECT_EQ(diagnostic.file, corrupt.path);
    EXPECT_TRUE(diagnostic.has_row);
    EXPECT_EQ(diagnostic.row_index, 1u);
    EXPECT_STREQ(merge_reason_name(diagnostic.reason), "checksum");
  }

  // divergent: re-serialize an existing row with altered content (valid
  // checksum, same grid index, different bytes) and append it.
  {
    TempFile corrupt("parallel_diag_divergent");
    std::vector<std::string> lines = shard0_lines;
    std::size_t index = 0;
    UseCaseResult r;
    ASSERT_TRUE(SweepJournal::parse_journal_row(lines[1], index, r));
    r.optimized.tau_wcet += 1;
    lines.push_back(SweepJournal::journal_row(r, index));
    write_lines(corrupt.path, lines);
    auto divergent = merge_sweep_journals({corrupt.path, shard1_journal.path},
                                          reduced_sweep(1), "", &diagnostic);
    EXPECT_FALSE(divergent.ok());
    EXPECT_EQ(diagnostic.reason, Reason::kDivergent);
    EXPECT_EQ(diagnostic.file, corrupt.path);
    EXPECT_TRUE(diagnostic.has_row);
    EXPECT_EQ(diagnostic.row_index, index);
    EXPECT_STREQ(merge_reason_name(diagnostic.reason), "divergent");
  }

  // gap: drop shard 0's last row cleanly — every file parses, but the grid
  // has a hole; the diagnostic names the first missing grid row.
  {
    TempFile corrupt("parallel_diag_gap");
    std::vector<std::string> lines = shard0_lines;
    std::size_t dropped_index = 0;
    UseCaseResult r;
    ASSERT_TRUE(
        SweepJournal::parse_journal_row(lines.back(), dropped_index, r));
    lines.pop_back();
    write_lines(corrupt.path, lines);
    auto gap = merge_sweep_journals({corrupt.path, shard1_journal.path},
                                    reduced_sweep(1), "", &diagnostic);
    EXPECT_FALSE(gap.ok());
    EXPECT_EQ(diagnostic.reason, Reason::kGap);
    EXPECT_TRUE(diagnostic.has_row);
    EXPECT_EQ(diagnostic.row_index, dropped_index);
    EXPECT_STREQ(merge_reason_name(diagnostic.reason), "gap");
  }

  // A clean merge leaves the diagnostic at kNone.
  auto clean = merge_sweep_journals({shard0_journal.path, shard1_journal.path},
                                    reduced_sweep(1), "", &diagnostic);
  ASSERT_TRUE(clean.ok()) << clean.status().message();
  EXPECT_EQ(diagnostic.reason, Reason::kNone);
}

TEST(Parallel, KilledShardResumesAndMergesBitIdentical) {
  obs::set_enabled(false);
  fault::disarm_all();

  TempFile reference_journal("parallel_ref_journal");
  const Sweep reference = run_sweep(reduced_sweep(1, reference_journal.path));
  ASSERT_TRUE(reference.report.clean());
  const std::string want_fp = sweep_results_fingerprint(reference.results);
  const std::string want_bytes = read_file(reference_journal.path);

  TempFile shard0_journal("parallel_kill0_journal");
  TempFile shard1_journal("parallel_kill1_journal");
  SweepOptions shard0 = reduced_sweep(1, shard0_journal.path);
  shard0.shard_index = 0;
  shard0.shard_count = 2;

  const pid_t child = ::fork();
  ASSERT_GE(child, 0) << "fork failed";
  if (child == 0) {
    // Child: the second journal append of shard 0 writes a torn record and
    // dies by raise(SIGKILL) — a power cut mid-checkpoint on one shard of a
    // fleet.
    fault::arm("io.journal_kill", /*skip=*/1);
    run_sweep(shard0);
    std::_Exit(42);  // only reached if the fault never fired
  }
  int wstatus = 0;
  ASSERT_EQ(::waitpid(child, &wstatus, 0), child);
  ASSERT_TRUE(WIFSIGNALED(wstatus))
      << "child exited normally; the kill fault did not fire";
  ASSERT_EQ(WTERMSIG(wstatus), SIGKILL);

  // Resume shard 0 in this (never-armed) process; run shard 1 cleanly.
  const Sweep resumed = run_sweep(shard0);
  EXPECT_TRUE(resumed.report.clean());
  EXPECT_GT(resumed.report.resumed_rows, 0u);
  EXPECT_LT(resumed.report.resumed_rows, resumed.results.size());

  SweepOptions shard1 = reduced_sweep(1, shard1_journal.path);
  shard1.shard_index = 1;
  shard1.shard_count = 2;
  ASSERT_TRUE(run_sweep(shard1).report.clean());

  TempFile merged_journal("parallel_kill_merged");
  const auto merged = merge_sweep_journals(
      {shard0_journal.path, shard1_journal.path}, reduced_sweep(1),
      merged_journal.path);
  ASSERT_TRUE(merged.ok()) << merged.status().message();
  EXPECT_EQ(merged->fingerprint, want_fp);
  EXPECT_EQ(read_file(merged_journal.path), want_bytes);
}

TEST(Parallel, LowestFailingIndexWinsAtEveryThreadCount) {
  // Failure is a deterministic property of the index (13 and 57 both
  // throw); the surfaced exception must be index 13's at every thread
  // count, exactly as with threads == 1 — even when a worker hits 57 first.
  for (const std::uint32_t threads : {1u, 2u, 4u, 8u}) {
    for (int repeat = 0; repeat < 3; ++repeat) {
      std::vector<std::atomic<char>> ran(100);
      std::string caught;
      try {
        support::parallel_for_index(ran.size(), threads, [&](std::size_t i) {
          ran[i].store(1, std::memory_order_relaxed);
          if (i == 13 || i == 57)
            throw std::runtime_error("fail@" + std::to_string(i));
        });
      } catch (const std::runtime_error& e) {
        caught = e.what();
      }
      EXPECT_EQ(caught, "fail@13") << "threads=" << threads;
      // Indices below the lowest failing one would all have run under the
      // sequential semantics, so they must have run here too.
      for (std::size_t i = 0; i < 13; ++i)
        EXPECT_TRUE(ran[i].load(std::memory_order_relaxed))
            << "index " << i << " abandoned at threads=" << threads;
    }
  }
}

TEST(Parallel, ShardedInstrumentsSumExactlyAcrossThreads) {
  // Counter/Histogram shard per thread and merge on read; concurrent
  // recording must lose nothing once the writers are quiescent.
  obs::Counter counter;
  obs::Histogram histogram;
  constexpr std::size_t kEvents = 8000;
  std::uint64_t want_sum = 0;
  for (std::size_t i = 0; i < kEvents; ++i) want_sum += i % 17;
  support::parallel_for_index(kEvents, 8, [&](std::size_t i) {
    counter.increment();
    histogram.record(i % 17);
  });
  EXPECT_EQ(counter.value(), kEvents);
  EXPECT_EQ(histogram.count(), kEvents);
  EXPECT_EQ(histogram.sum(), want_sum);
  std::uint64_t bucketed = 0;
  for (int b = 0; b < obs::Histogram::kBuckets; ++b)
    bucketed += histogram.bucket(b);
  EXPECT_EQ(bucketed, kEvents);
}

}  // namespace
}  // namespace ucp::exp
