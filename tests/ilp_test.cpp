#include <gtest/gtest.h>

#include <cmath>

#include "ilp/model.hpp"
#include "support/check.hpp"

namespace ucp::ilp {
namespace {

TEST(Model, BuildAndIntrospect) {
  Model m;
  const VarId x = m.add_var("x", 0, 10);
  const VarId y = m.add_var("y");
  m.add_constraint({{x, 1.0}, {y, 2.0}}, Rel::kLe, 14.0);
  m.set_objective({{x, 3.0}, {y, 2.0}});
  EXPECT_EQ(m.num_vars(), 2u);
  EXPECT_EQ(m.num_constraints(), 1u);
  EXPECT_TRUE(m.maximize());
  EXPECT_NE(m.to_string().find("maximize"), std::string::npos);
}

TEST(Model, RejectsBadReferences) {
  Model m;
  EXPECT_THROW(m.add_constraint({{5, 1.0}}, Rel::kLe, 1.0), InvalidArgument);
  EXPECT_THROW(m.set_objective({{0, 1.0}}), InvalidArgument);
  EXPECT_THROW(m.add_var("bad", 5.0, 1.0), InvalidArgument);
  EXPECT_THROW(m.add_var("neg", -1.0, 1.0), InvalidArgument);
}

TEST(SolveLp, SimpleMaximize) {
  // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6 -> x=4, y=0, obj=12.
  Model m;
  const VarId x = m.add_var("x");
  const VarId y = m.add_var("y");
  m.add_constraint({{x, 1.0}, {y, 1.0}}, Rel::kLe, 4.0);
  m.add_constraint({{x, 1.0}, {y, 3.0}}, Rel::kLe, 6.0);
  m.set_objective({{x, 3.0}, {y, 2.0}});
  const Solution s = solve_lp(m);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 12.0, 1e-7);
  EXPECT_NEAR(s.value(x), 4.0, 1e-7);
  EXPECT_NEAR(s.value(y), 0.0, 1e-7);
}

TEST(SolveLp, MinimizationViaFlag) {
  // min x + y s.t. x + 2y >= 4, 3x + y >= 6 -> x = 8/5, y = 6/5.
  Model m;
  const VarId x = m.add_var("x", 0, kInfinity, false);
  const VarId y = m.add_var("y", 0, kInfinity, false);
  m.add_constraint({{x, 1.0}, {y, 2.0}}, Rel::kGe, 4.0);
  m.add_constraint({{x, 3.0}, {y, 1.0}}, Rel::kGe, 6.0);
  m.set_objective({{x, 1.0}, {y, 1.0}}, /*maximize=*/false);
  const Solution s = solve_lp(m);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 2.8, 1e-7);
}

TEST(SolveLp, EqualityConstraints) {
  Model m;
  const VarId x = m.add_var("x");
  const VarId y = m.add_var("y");
  m.add_constraint({{x, 1.0}, {y, 1.0}}, Rel::kEq, 5.0);
  m.set_objective({{x, 2.0}, {y, 1.0}});
  const Solution s = solve_lp(m);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 10.0, 1e-7);
  EXPECT_NEAR(s.value(x), 5.0, 1e-7);
}

TEST(SolveLp, DetectsInfeasible) {
  Model m;
  const VarId x = m.add_var("x");
  m.add_constraint({{x, 1.0}}, Rel::kLe, 1.0);
  m.add_constraint({{x, 1.0}}, Rel::kGe, 2.0);
  m.set_objective({{x, 1.0}});
  EXPECT_EQ(solve_lp(m).status, SolveStatus::kInfeasible);
}

TEST(SolveLp, DetectsUnbounded) {
  Model m;
  const VarId x = m.add_var("x");
  m.set_objective({{x, 1.0}});
  EXPECT_EQ(solve_lp(m).status, SolveStatus::kUnbounded);
}

TEST(SolveLp, VariableBoundsBecomeConstraints) {
  Model m;
  const VarId x = m.add_var("x", 2.0, 7.0);
  m.set_objective({{x, 1.0}});
  const Solution s = solve_lp(m);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.value(x), 7.0, 1e-7);

  Model m2;
  const VarId y = m2.add_var("y", 2.0, 7.0);
  m2.set_objective({{y, -1.0}});
  const Solution s2 = solve_lp(m2);
  ASSERT_TRUE(s2.optimal());
  EXPECT_NEAR(s2.value(y), 2.0, 1e-7);
}

TEST(SolveLp, DegenerateFlowProblem) {
  // A flow-conservation chain (the IPET shape): src -> a -> b -> sink.
  Model m;
  const VarId src = m.add_var("src", 1, 1);
  const VarId e1 = m.add_var("e1");
  const VarId e2 = m.add_var("e2");
  const VarId sink = m.add_var("sink");
  m.add_constraint({{src, 1.0}, {e1, -1.0}}, Rel::kEq, 0.0);
  m.add_constraint({{e1, 1.0}, {e2, -1.0}}, Rel::kEq, 0.0);
  m.add_constraint({{e2, 1.0}, {sink, -1.0}}, Rel::kEq, 0.0);
  m.set_objective({{e1, 5.0}, {e2, 7.0}});
  const Solution s = solve_lp(m);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 12.0, 1e-7);
}

TEST(SolveIlp, BranchesToIntegrality) {
  // max x + y s.t. 2x + 3y <= 12, 2x + y <= 6; LP optimum is fractional,
  // integer optimum is x=1, y=3 (obj 4) or x=0,y=4 (obj 4).
  Model m;
  const VarId x = m.add_var("x");
  const VarId y = m.add_var("y");
  m.add_constraint({{x, 2.0}, {y, 3.0}}, Rel::kLe, 12.0);
  m.add_constraint({{x, 2.0}, {y, 1.0}}, Rel::kLe, 6.0);
  m.set_objective({{x, 1.0}, {y, 1.0}});
  const Solution s = solve_ilp(m);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 4.0, 1e-6);
  const double xv = s.value(x), yv = s.value(y);
  EXPECT_NEAR(xv, std::round(xv), 1e-6);
  EXPECT_NEAR(yv, std::round(yv), 1e-6);
}

TEST(SolveIlp, KnapsackStyle) {
  // max 10a + 6b + 4c s.t. a+b+c <= 2 (0/1 by upper bounds) -> 16.
  Model m;
  const VarId a = m.add_var("a", 0, 1);
  const VarId b = m.add_var("b", 0, 1);
  const VarId c = m.add_var("c", 0, 1);
  m.add_constraint({{a, 1.0}, {b, 1.0}, {c, 1.0}}, Rel::kLe, 2.0);
  m.set_objective({{a, 10.0}, {b, 6.0}, {c, 4.0}});
  const Solution s = solve_ilp(m);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 16.0, 1e-6);
}

TEST(SolveIlp, MixedIntegerKeepsContinuousFree) {
  // y continuous: max x + y, x integer <= 2.5, y <= 0.5.
  Model m;
  const VarId x = m.add_var("x", 0.0, 2.5, true);
  const VarId y = m.add_var("y", 0.0, 0.5, false);
  m.set_objective({{x, 1.0}, {y, 1.0}});
  const Solution s = solve_ilp(m);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.value(x), 2.0, 1e-6);
  EXPECT_NEAR(s.value(y), 0.5, 1e-6);
}

TEST(SolveIlp, InfeasibleIntegerRestriction) {
  // 0.4 <= x <= 0.6 has no integer point.
  Model m;
  const VarId x = m.add_var("x", 0.4, 0.6, true);
  m.set_objective({{x, 1.0}});
  EXPECT_EQ(solve_ilp(m).status, SolveStatus::kInfeasible);
}

TEST(SolveIlp, ProportionalBoundLikeIpetLoops) {
  // The VIVU loop-bound shape: rest <= 9 * first, first = 1,
  // maximize 10*first + 3*rest -> rest = 9.
  Model m;
  const VarId first = m.add_var("first", 1, 1);
  const VarId rest = m.add_var("rest");
  m.add_constraint({{rest, 1.0}, {first, -9.0}}, Rel::kLe, 0.0);
  m.set_objective({{first, 10.0}, {rest, 3.0}});
  const Solution s = solve_ilp(m);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.value(rest), 9.0, 1e-6);
  EXPECT_NEAR(s.objective, 37.0, 1e-6);
}

TEST(SolveStatusNames, AllCovered) {
  EXPECT_EQ(status_name(SolveStatus::kOptimal), "optimal");
  EXPECT_EQ(status_name(SolveStatus::kInfeasible), "infeasible");
  EXPECT_EQ(status_name(SolveStatus::kUnbounded), "unbounded");
  EXPECT_EQ(status_name(SolveStatus::kIterationLimit), "iteration-limit");
}

class RandomLpTest : public ::testing::TestWithParam<int> {};

/// Property: for random feasible-by-construction LPs, the simplex solution
/// satisfies every constraint and is at least as good as a trivially
/// feasible point.
TEST_P(RandomLpTest, SolutionIsFeasibleAndNotWorseThanOrigin) {
  const int seed = GetParam();
  std::uint64_t state = static_cast<std::uint64_t>(seed) * 2654435761u + 1;
  auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };

  Model m;
  const int nvars = 3 + seed % 4;
  std::vector<VarId> vars;
  for (int v = 0; v < nvars; ++v)
    vars.push_back(m.add_var("v" + std::to_string(v), 0, 50, false));
  std::vector<std::vector<double>> rows;
  std::vector<double> rhs;
  for (int c = 0; c < 4; ++c) {
    std::vector<Term> terms;
    std::vector<double> row;
    for (int v = 0; v < nvars; ++v) {
      const double coeff = static_cast<double>(next() % 7);
      row.push_back(coeff);
      if (coeff != 0.0) terms.push_back({vars[v], coeff});
    }
    const double b = 10.0 + static_cast<double>(next() % 50);
    if (!terms.empty()) {
      m.add_constraint(std::move(terms), Rel::kLe, b);
      rows.push_back(row);
      rhs.push_back(b);
    }
  }
  std::vector<Term> obj;
  for (int v = 0; v < nvars; ++v)
    obj.push_back({vars[v], 1.0 + static_cast<double>(next() % 5)});
  m.set_objective(std::move(obj));

  const Solution s = solve_lp(m);
  ASSERT_TRUE(s.optimal()) << "seed " << seed;
  // Origin (all zeros) is feasible, so the optimum must be >= 0.
  EXPECT_GE(s.objective, -1e-7);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    double lhs = 0;
    for (int v = 0; v < nvars; ++v) lhs += rows[r][static_cast<std::size_t>(v)] * s.value(vars[static_cast<std::size_t>(v)]);
    EXPECT_LE(lhs, rhs[r] + 1e-6) << "seed " << seed << " row " << r;
  }
  for (int v = 0; v < nvars; ++v) {
    EXPECT_GE(s.value(vars[static_cast<std::size_t>(v)]), -1e-9);
    EXPECT_LE(s.value(vars[static_cast<std::size_t>(v)]), 50.0 + 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomLpTest, ::testing::Range(1, 25));

}  // namespace
}  // namespace ucp::ilp
