#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "ilp/model.hpp"
#include "ilp/presolve.hpp"
#include "support/check.hpp"

namespace ucp::ilp {
namespace {

TEST(Model, BuildAndIntrospect) {
  Model m;
  const VarId x = m.add_var("x", 0, 10);
  const VarId y = m.add_var("y");
  m.add_constraint({{x, 1.0}, {y, 2.0}}, Rel::kLe, 14.0);
  m.set_objective({{x, 3.0}, {y, 2.0}});
  EXPECT_EQ(m.num_vars(), 2u);
  EXPECT_EQ(m.num_constraints(), 1u);
  EXPECT_TRUE(m.maximize());
  EXPECT_NE(m.to_string().find("maximize"), std::string::npos);
}

TEST(Model, RejectsBadReferences) {
  Model m;
  EXPECT_THROW(m.add_constraint({{5, 1.0}}, Rel::kLe, 1.0), InvalidArgument);
  EXPECT_THROW(m.set_objective({{0, 1.0}}), InvalidArgument);
  EXPECT_THROW(m.add_var("bad", 5.0, 1.0), InvalidArgument);
  EXPECT_THROW(m.add_var("neg", -1.0, 1.0), InvalidArgument);
}

TEST(SolveLp, SimpleMaximize) {
  // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6 -> x=4, y=0, obj=12.
  Model m;
  const VarId x = m.add_var("x");
  const VarId y = m.add_var("y");
  m.add_constraint({{x, 1.0}, {y, 1.0}}, Rel::kLe, 4.0);
  m.add_constraint({{x, 1.0}, {y, 3.0}}, Rel::kLe, 6.0);
  m.set_objective({{x, 3.0}, {y, 2.0}});
  const Solution s = solve_lp(m);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 12.0, 1e-7);
  EXPECT_NEAR(s.value(x), 4.0, 1e-7);
  EXPECT_NEAR(s.value(y), 0.0, 1e-7);
}

TEST(SolveLp, MinimizationViaFlag) {
  // min x + y s.t. x + 2y >= 4, 3x + y >= 6 -> x = 8/5, y = 6/5.
  Model m;
  const VarId x = m.add_var("x", 0, kInfinity, false);
  const VarId y = m.add_var("y", 0, kInfinity, false);
  m.add_constraint({{x, 1.0}, {y, 2.0}}, Rel::kGe, 4.0);
  m.add_constraint({{x, 3.0}, {y, 1.0}}, Rel::kGe, 6.0);
  m.set_objective({{x, 1.0}, {y, 1.0}}, /*maximize=*/false);
  const Solution s = solve_lp(m);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 2.8, 1e-7);
}

TEST(SolveLp, EqualityConstraints) {
  Model m;
  const VarId x = m.add_var("x");
  const VarId y = m.add_var("y");
  m.add_constraint({{x, 1.0}, {y, 1.0}}, Rel::kEq, 5.0);
  m.set_objective({{x, 2.0}, {y, 1.0}});
  const Solution s = solve_lp(m);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 10.0, 1e-7);
  EXPECT_NEAR(s.value(x), 5.0, 1e-7);
}

TEST(SolveLp, DetectsInfeasible) {
  Model m;
  const VarId x = m.add_var("x");
  m.add_constraint({{x, 1.0}}, Rel::kLe, 1.0);
  m.add_constraint({{x, 1.0}}, Rel::kGe, 2.0);
  m.set_objective({{x, 1.0}});
  EXPECT_EQ(solve_lp(m).status, SolveStatus::kInfeasible);
}

TEST(SolveLp, DetectsUnbounded) {
  Model m;
  const VarId x = m.add_var("x");
  m.set_objective({{x, 1.0}});
  EXPECT_EQ(solve_lp(m).status, SolveStatus::kUnbounded);
}

TEST(SolveLp, VariableBoundsBecomeConstraints) {
  Model m;
  const VarId x = m.add_var("x", 2.0, 7.0);
  m.set_objective({{x, 1.0}});
  const Solution s = solve_lp(m);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.value(x), 7.0, 1e-7);

  Model m2;
  const VarId y = m2.add_var("y", 2.0, 7.0);
  m2.set_objective({{y, -1.0}});
  const Solution s2 = solve_lp(m2);
  ASSERT_TRUE(s2.optimal());
  EXPECT_NEAR(s2.value(y), 2.0, 1e-7);
}

TEST(SolveLp, DegenerateFlowProblem) {
  // A flow-conservation chain (the IPET shape): src -> a -> b -> sink.
  Model m;
  const VarId src = m.add_var("src", 1, 1);
  const VarId e1 = m.add_var("e1");
  const VarId e2 = m.add_var("e2");
  const VarId sink = m.add_var("sink");
  m.add_constraint({{src, 1.0}, {e1, -1.0}}, Rel::kEq, 0.0);
  m.add_constraint({{e1, 1.0}, {e2, -1.0}}, Rel::kEq, 0.0);
  m.add_constraint({{e2, 1.0}, {sink, -1.0}}, Rel::kEq, 0.0);
  m.set_objective({{e1, 5.0}, {e2, 7.0}});
  const Solution s = solve_lp(m);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 12.0, 1e-7);
}

TEST(SolveIlp, BranchesToIntegrality) {
  // max x + y s.t. 2x + 3y <= 12, 2x + y <= 6; LP optimum is fractional,
  // integer optimum is x=1, y=3 (obj 4) or x=0,y=4 (obj 4).
  Model m;
  const VarId x = m.add_var("x");
  const VarId y = m.add_var("y");
  m.add_constraint({{x, 2.0}, {y, 3.0}}, Rel::kLe, 12.0);
  m.add_constraint({{x, 2.0}, {y, 1.0}}, Rel::kLe, 6.0);
  m.set_objective({{x, 1.0}, {y, 1.0}});
  const Solution s = solve_ilp(m);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 4.0, 1e-6);
  const double xv = s.value(x), yv = s.value(y);
  EXPECT_NEAR(xv, std::round(xv), 1e-6);
  EXPECT_NEAR(yv, std::round(yv), 1e-6);
}

TEST(SolveIlp, KnapsackStyle) {
  // max 10a + 6b + 4c s.t. a+b+c <= 2 (0/1 by upper bounds) -> 16.
  Model m;
  const VarId a = m.add_var("a", 0, 1);
  const VarId b = m.add_var("b", 0, 1);
  const VarId c = m.add_var("c", 0, 1);
  m.add_constraint({{a, 1.0}, {b, 1.0}, {c, 1.0}}, Rel::kLe, 2.0);
  m.set_objective({{a, 10.0}, {b, 6.0}, {c, 4.0}});
  const Solution s = solve_ilp(m);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 16.0, 1e-6);
}

TEST(SolveIlp, MixedIntegerKeepsContinuousFree) {
  // y continuous: max x + y, x integer <= 2.5, y <= 0.5.
  Model m;
  const VarId x = m.add_var("x", 0.0, 2.5, true);
  const VarId y = m.add_var("y", 0.0, 0.5, false);
  m.set_objective({{x, 1.0}, {y, 1.0}});
  const Solution s = solve_ilp(m);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.value(x), 2.0, 1e-6);
  EXPECT_NEAR(s.value(y), 0.5, 1e-6);
}

TEST(SolveIlp, InfeasibleIntegerRestriction) {
  // 0.4 <= x <= 0.6 has no integer point.
  Model m;
  const VarId x = m.add_var("x", 0.4, 0.6, true);
  m.set_objective({{x, 1.0}});
  EXPECT_EQ(solve_ilp(m).status, SolveStatus::kInfeasible);
}

TEST(SolveIlp, ProportionalBoundLikeIpetLoops) {
  // The VIVU loop-bound shape: rest <= 9 * first, first = 1,
  // maximize 10*first + 3*rest -> rest = 9.
  Model m;
  const VarId first = m.add_var("first", 1, 1);
  const VarId rest = m.add_var("rest");
  m.add_constraint({{rest, 1.0}, {first, -9.0}}, Rel::kLe, 0.0);
  m.set_objective({{first, 10.0}, {rest, 3.0}});
  const Solution s = solve_ilp(m);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.value(rest), 9.0, 1e-6);
  EXPECT_NEAR(s.objective, 37.0, 1e-6);
}

TEST(SolveStatusNames, AllCovered) {
  EXPECT_EQ(status_name(SolveStatus::kOptimal), "optimal");
  EXPECT_EQ(status_name(SolveStatus::kInfeasible), "infeasible");
  EXPECT_EQ(status_name(SolveStatus::kUnbounded), "unbounded");
  EXPECT_EQ(status_name(SolveStatus::kIterationLimit), "iteration-limit");
}

class RandomLpTest : public ::testing::TestWithParam<int> {};

/// Property: for random feasible-by-construction LPs, the simplex solution
/// satisfies every constraint and is at least as good as a trivially
/// feasible point.
TEST_P(RandomLpTest, SolutionIsFeasibleAndNotWorseThanOrigin) {
  const int seed = GetParam();
  std::uint64_t state = static_cast<std::uint64_t>(seed) * 2654435761u + 1;
  auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };

  Model m;
  const int nvars = 3 + seed % 4;
  std::vector<VarId> vars;
  for (int v = 0; v < nvars; ++v)
    vars.push_back(m.add_var("v" + std::to_string(v), 0, 50, false));
  std::vector<std::vector<double>> rows;
  std::vector<double> rhs;
  for (int c = 0; c < 4; ++c) {
    std::vector<Term> terms;
    std::vector<double> row;
    for (int v = 0; v < nvars; ++v) {
      const double coeff = static_cast<double>(next() % 7);
      row.push_back(coeff);
      if (coeff != 0.0) terms.push_back({vars[v], coeff});
    }
    const double b = 10.0 + static_cast<double>(next() % 50);
    if (!terms.empty()) {
      m.add_constraint(std::move(terms), Rel::kLe, b);
      rows.push_back(row);
      rhs.push_back(b);
    }
  }
  std::vector<Term> obj;
  for (int v = 0; v < nvars; ++v)
    obj.push_back({vars[v], 1.0 + static_cast<double>(next() % 5)});
  m.set_objective(std::move(obj));

  const Solution s = solve_lp(m);
  ASSERT_TRUE(s.optimal()) << "seed " << seed;
  // Origin (all zeros) is feasible, so the optimum must be >= 0.
  EXPECT_GE(s.objective, -1e-7);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    double lhs = 0;
    for (int v = 0; v < nvars; ++v) lhs += rows[r][static_cast<std::size_t>(v)] * s.value(vars[static_cast<std::size_t>(v)]);
    EXPECT_LE(lhs, rhs[r] + 1e-6) << "seed " << seed << " row " << r;
  }
  for (int v = 0; v < nvars; ++v) {
    EXPECT_GE(s.value(vars[static_cast<std::size_t>(v)]), -1e-9);
    EXPECT_LE(s.value(vars[static_cast<std::size_t>(v)]), 50.0 + 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomLpTest, ::testing::Range(1, 25));

// ---------------------------------------------------------------------------
// Exact presolve (DESIGN.md §14): every reduction must preserve the optimal
// objective for EVERY objective, and expand_values must reproduce a feasible
// optimal solution of the ORIGINAL model — not just the right number.
// ---------------------------------------------------------------------------

// Full differential exercise of one (model, objective) pair: solve the
// original with the dense reference, presolve, solve the reduced model,
// and check objective equality plus original-space feasibility/optimality
// of the expanded solution.
void expect_presolve_exact(const Model& m, const std::vector<Term>& objective,
                           const Presolve& p) {
  Model full = m;
  full.set_objective(objective);
  const Solution ref = solve_ilp_dense_reference(full);
  ASSERT_TRUE(ref.optimal());

  std::vector<double> dense(m.num_vars(), 0.0);
  for (const Term& t : objective) dense[static_cast<std::size_t>(t.var)] += t.coeff;
  double constant = 0.0;
  const std::vector<double> mapped = p.map_objective(dense, constant);

  std::vector<double> reduced_values(p.reduced().num_vars(), 0.0);
  double reduced_objective = 0.0;
  if (p.reduced().num_vars() > 0) {
    Model red = p.reduced();
    std::vector<Term> red_obj;
    for (std::size_t i = 0; i < mapped.size(); ++i)
      if (mapped[i] != 0.0)
        red_obj.push_back({static_cast<VarId>(i), mapped[i]});
    red.set_objective(std::move(red_obj));
    const Solution rs = solve_ilp(red);
    ASSERT_TRUE(rs.optimal());
    reduced_values = rs.values;
    reduced_objective = rs.objective;
  }
  EXPECT_NEAR(reduced_objective + constant, ref.objective, 1e-6);

  // Expanded solution: right size, inside bounds, integral where required,
  // feasible for every original constraint, and optimal-valued.
  const std::vector<double> x = p.expand_values(reduced_values);
  ASSERT_EQ(x.size(), m.num_vars());
  double expanded_objective = 0.0;
  for (std::size_t v = 0; v < x.size(); ++v) {
    const Model::Var& var = m.var(static_cast<VarId>(v));
    EXPECT_GE(x[v], var.lower - 1e-6) << var.name;
    EXPECT_LE(x[v], var.upper + 1e-6) << var.name;
    if (var.integer)
      EXPECT_NEAR(x[v], std::round(x[v]), 1e-6) << var.name;
    expanded_objective += dense[v] * x[v];
  }
  for (std::size_t r = 0; r < m.constraints().size(); ++r) {
    const Model::Constraint& c = m.constraints()[r];
    double lhs = 0.0;
    for (const Term& t : c.terms) lhs += t.coeff * x[static_cast<std::size_t>(t.var)];
    switch (c.rel) {
      case Rel::kLe: EXPECT_LE(lhs, c.rhs + 1e-6) << "row " << r; break;
      case Rel::kGe: EXPECT_GE(lhs, c.rhs - 1e-6) << "row " << r; break;
      case Rel::kEq: EXPECT_NEAR(lhs, c.rhs, 1e-6) << "row " << r; break;
    }
  }
  EXPECT_NEAR(expanded_objective, ref.objective, 1e-6);
}

TEST(Presolve, StraightLineChainCollapsesToOneColumn) {
  // A fully serial IPET skeleton: source bounded [1,1], flow conserved
  // down a chain. Every conservation row is an `x == y` doubleton, so the
  // whole chain contracts into the source's column (which carries the
  // [1,1] bounds); no constraint survives.
  Model m;
  const VarId s = m.add_var("s", 1, 1);
  const VarId e1 = m.add_var("e1");
  const VarId e2 = m.add_var("e2");
  const VarId e3 = m.add_var("e3");
  m.add_constraint({{s, 1.0}, {e1, -1.0}}, Rel::kEq, 0.0);
  m.add_constraint({{e1, 1.0}, {e2, -1.0}}, Rel::kEq, 0.0);
  m.add_constraint({{e2, 1.0}, {e3, -1.0}}, Rel::kEq, 0.0);

  const auto p = Presolve::reduce(m);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->reduced().num_vars(), 1u);
  EXPECT_EQ(p->reduced().num_constraints(), 0u);
  EXPECT_EQ(p->stats().removed_rows, 3u);
  EXPECT_EQ(p->stats().removed_cols, 3u);
  EXPECT_EQ(p->stats().aliased_vars, 3u);
  expect_presolve_exact(m, {{e1, 3.0}, {e3, 7.0}}, *p);
}

TEST(Presolve, BranchJoinDiamondSubstitutesAndAliases) {
  // Branch/join diamond with a relative bound, the shape that dominates
  // generated 100x programs: e1 aliases into the [1,1] source, e2/e3
  // survive (the branch row keeps them, and its bounded source blocks the
  // implied-free test there), the pass-through arcs alias, and the join's
  // out-arc e6 = e4 + e5 is an implied-free substitution.
  Model m;
  const VarId s = m.add_var("s", 1, 1);
  const VarId e1 = m.add_var("e1");
  const VarId e2 = m.add_var("e2");
  const VarId e3 = m.add_var("e3");
  const VarId e4 = m.add_var("e4");
  const VarId e5 = m.add_var("e5");
  const VarId e6 = m.add_var("e6");
  m.add_constraint({{s, 1.0}, {e1, -1.0}}, Rel::kEq, 0.0);
  m.add_constraint({{e1, 1.0}, {e2, -1.0}, {e3, -1.0}}, Rel::kEq, 0.0);
  m.add_constraint({{e2, 1.0}, {e4, -1.0}}, Rel::kEq, 0.0);
  m.add_constraint({{e3, 1.0}, {e5, -1.0}}, Rel::kEq, 0.0);
  m.add_constraint({{e4, 1.0}, {e5, 1.0}, {e6, -1.0}}, Rel::kEq, 0.0);
  m.add_constraint({{e2, 1.0}, {e1, -3.0}}, Rel::kLe, 0.0);

  const auto p = Presolve::reduce(m);
  ASSERT_TRUE(p.has_value());
  EXPECT_GE(p->stats().aliased_vars, 3u);     // s==e1, e2==e4, e3==e5
  EXPECT_GE(p->stats().substituted_vars, 1u); // e6 = e4 + e5
  // max 5*e2 + 2*e3 + e6 with e2 + e3 == 1 integral: e2=1, e6=1 -> 6.
  expect_presolve_exact(m, {{e2, 5.0}, {e3, 2.0}, {e6, 1.0}}, *p);
}

TEST(Presolve, ForcingAndRedundantRows) {
  Model m;
  const VarId x = m.add_var("x", 0, 2);
  const VarId y = m.add_var("y", 0, 2);
  const VarId z = m.add_var("z", 0, 9);
  // Redundant: max activity 4 < 5. Forcing: min activity 0 == rhs pins
  // x = y = 0 (the bound-2 back-edge shape).
  m.add_constraint({{x, 1.0}, {y, 1.0}}, Rel::kLe, 5.0);
  m.add_constraint({{x, 1.0}, {y, 1.0}}, Rel::kLe, 0.0);
  m.add_constraint({{z, 1.0}, {x, 1.0}}, Rel::kLe, 4.0);

  const auto p = Presolve::reduce(m);
  ASSERT_TRUE(p.has_value());
  EXPECT_GE(p->stats().fixed_vars, 2u);
  EXPECT_GE(p->stats().removed_rows, 2u);
  expect_presolve_exact(m, {{x, 10.0}, {y, 10.0}, {z, 1.0}}, *p);
}

TEST(Presolve, AbortsInsteadOfLying) {
  // A fix that would pin an integer variable to a fractional value aborts
  // the whole presolve (callers fall back to the original model)...
  Model frac;
  const VarId x = frac.add_var("x");
  frac.add_constraint({{x, 2.0}}, Rel::kEq, 1.0);
  EXPECT_FALSE(Presolve::reduce(frac).has_value());

  // ...as does a detected infeasibility (bound violation)...
  Model inf;
  const VarId y = inf.add_var("y", 0, 1);
  inf.add_constraint({{y, 1.0}}, Rel::kEq, 5.0);
  EXPECT_FALSE(Presolve::reduce(inf).has_value());

  // ...and a model with nothing to reduce disengages instead of returning
  // an identity transform.
  Model keep;
  const VarId a = keep.add_var("a");
  const VarId b = keep.add_var("b");
  keep.add_constraint({{a, 1.0}, {b, 1.0}}, Rel::kLe, 4.0);
  keep.add_constraint({{a, 1.0}, {b, 3.0}}, Rel::kLe, 6.0);
  EXPECT_FALSE(Presolve::reduce(keep).has_value());
}

TEST(Presolve, SingletonRowsTightenAndFix) {
  Model m;
  const VarId x = m.add_var("x");
  const VarId y = m.add_var("y");
  m.add_constraint({{x, 2.0}}, Rel::kLe, 7.0);   // x <= 3.5
  m.add_constraint({{y, 1.0}}, Rel::kEq, 2.0);   // fixes y
  m.add_constraint({{x, 1.0}, {y, 1.0}}, Rel::kLe, 5.0);  // folds to x <= 3

  const auto p = Presolve::reduce(m);
  ASSERT_TRUE(p.has_value());
  EXPECT_GE(p->stats().singleton_rows, 1u);
  EXPECT_GE(p->stats().fixed_vars, 1u);
  expect_presolve_exact(m, {{x, 1.0}, {y, 4.0}}, *p);
}

}  // namespace
}  // namespace ucp::ilp
