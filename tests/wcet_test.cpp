#include <gtest/gtest.h>

#include "analysis/cache_analysis.hpp"
#include "analysis/context_graph.hpp"
#include "ir/builder.hpp"
#include "ir/layout.hpp"
#include "sim/interpreter.hpp"
#include "suite/suite.hpp"
#include "wcet/ipet.hpp"

namespace ucp::wcet {
namespace {

using ir::Cond;
using ir::IrBuilder;
using ir::R;

const cache::CacheConfig kConfig{2, 16, 256};
const cache::MemTiming kTiming{1, 25, 25};

WcetResult analyze(const ir::Program& p,
                   const cache::CacheConfig& config = kConfig,
                   const cache::MemTiming& timing = kTiming) {
  const ir::Layout layout(p, config.block_bytes);
  const analysis::ContextGraph graph(p);
  const auto cls = analysis::analyze_cache(graph, layout, config);
  return compute_wcet(graph, cls, timing);
}

TEST(RefCycles, ClassificationToTime) {
  EXPECT_EQ(ref_cycles(analysis::Classification::kAlwaysHit, kTiming), 1u);
  EXPECT_EQ(ref_cycles(analysis::Classification::kAlwaysMiss, kTiming), 25u);
  EXPECT_EQ(ref_cycles(analysis::Classification::kNotClassified, kTiming),
            25u);
}

TEST(Ipet, StraightLineExactCount) {
  // 4 instructions in one block: 1 cold miss + 3 hits = 25 + 3.
  IrBuilder b("sl");
  b.movi(R(1), 1);
  b.movi(R(2), 2);
  b.movi(R(3), 3);
  b.halt();
  const WcetResult w = analyze(b.take());
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w.tau_mem, 28u);
}

TEST(Ipet, BranchTakesWorstSide) {
  // One side of the branch spans more memory blocks -> it is the WCET path.
  IrBuilder b("branch");
  b.movi(R(1), 0);
  b.if_then_else(
      Cond::kEq, R(1), R(0), [&] { b.nop(); },
      [&] { b.nops(20); });  // heavier side
  b.halt();
  const ir::Program p = b.take();
  const WcetResult w = analyze(p);
  ASSERT_TRUE(w.ok());

  // The heavy block's node count must be 1, the light one's 0.
  const analysis::ContextGraph g(p);
  std::uint64_t heavy = 0, light = 0;
  for (analysis::NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto& bb = p.block(g.node(v).block);
    if (bb.instrs.size() >= 20) heavy = w.node_counts[v];
    if (bb.instrs.size() == 2 && bb.label.find("then") != std::string::npos)
      light = w.node_counts[v];
  }
  EXPECT_EQ(heavy, 1u);
  EXPECT_EQ(light, 0u);
}

TEST(Ipet, LoopCountsRespectBound) {
  IrBuilder b("loop");
  b.for_range(R(1), 0, 7, [&] { b.nop(); });
  b.halt();
  const ir::Program p = b.take();
  const WcetResult w = analyze(p);
  ASSERT_TRUE(w.ok());

  const analysis::ContextGraph g(p);
  ASSERT_EQ(g.loop_instances().size(), 1u);
  const auto& inst = g.loop_instances()[0];
  EXPECT_EQ(w.node_counts[inst.first_node], 1u);
  EXPECT_EQ(w.node_counts[inst.rest_node], 7u);  // bound 8 => rest = 7
}

TEST(Ipet, WcetIsSoundUpperBoundOnSimulation) {
  // For loop-dominated programs the static bound must dominate the
  // concrete memory time.
  IrBuilder b("sound");
  b.movi(R(3), 0);
  b.for_range(R(1), 0, 13, [&] {
    b.mul(R(2), R(1), R(1));
    b.add(R(3), R(3), R(2));
    b.store(R(1), 0, R(3));
  });
  b.halt();
  const ir::Program p = b.take();
  const WcetResult w = analyze(p);
  ASSERT_TRUE(w.ok());
  const sim::RunMetrics m = sim::run_program(p, kConfig, kTiming);
  EXPECT_GE(w.tau_mem, m.mem_cycles);
}

TEST(Ipet, NestedLoopMultipliesCounts) {
  IrBuilder b("nested");
  b.for_range(R(1), 0, 3, [&] {
    b.for_range(R(2), 0, 5, [&] { b.nop(); });
  });
  b.halt();
  const ir::Program p = b.take();
  const WcetResult w = analyze(p);
  ASSERT_TRUE(w.ok());

  // Total inner-body executions across contexts = 3 * 5 = 15.
  const analysis::ContextGraph g(p);
  std::uint64_t inner_body = 0;
  for (analysis::NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto& bb = p.block(g.node(v).block);
    if (bb.label.find("for.body") != std::string::npos &&
        g.node(v).ctx.size() == 2)
      inner_body += w.node_counts[v];
  }
  EXPECT_EQ(inner_body, 15u);
}

TEST(Ipet, AntiCirculationKeepsFlowConnected) {
  // Regression test for the disconnected-circulation pitfall: every node
  // with positive count must be reachable from the entry along edges with
  // positive flow.
  IrBuilder b("conn");
  b.for_range(R(1), 0, 5, [&] { b.nops(10); });
  b.halt();
  const ir::Program p = b.take();
  const analysis::ContextGraph g(p);
  const ir::Layout layout(p, kConfig.block_bytes);
  const auto cls = analysis::analyze_cache(g, layout, kConfig);
  const WcetResult w = compute_wcet(g, cls, kTiming);
  ASSERT_TRUE(w.ok());

  std::vector<bool> reach(g.num_nodes(), false);
  std::vector<analysis::NodeId> work{g.entry_node()};
  reach[g.entry_node()] = true;
  while (!work.empty()) {
    const auto v = work.back();
    work.pop_back();
    for (std::uint32_t ei : g.out_edges(v)) {
      if (w.edge_counts[ei] == 0) continue;
      const auto to = g.edges()[ei].to;
      if (!reach[to]) {
        reach[to] = true;
        work.push_back(to);
      }
    }
  }
  for (analysis::NodeId v = 0; v < g.num_nodes(); ++v) {
    if (w.node_counts[v] > 0) EXPECT_TRUE(reach[v]) << "node " << v;
  }
}

TEST(Ipet, TauOfAccessor) {
  IrBuilder b("tau");
  b.movi(R(1), 1);
  b.halt();
  const ir::Program p = b.take();
  const WcetResult w = analyze(p);
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w.tau_of(0, 0), 25u);  // miss * count 1
  EXPECT_EQ(w.tau_of(0, 1), 1u);   // hit * count 1
}

TEST(Ipet, FixedCountReplayMatchesObjective) {
  IrBuilder b("replay");
  b.for_range(R(1), 0, 9, [&] { b.nops(3); });
  b.halt();
  const ir::Program p = b.take();
  const analysis::ContextGraph g(p);
  const ir::Layout layout(p, kConfig.block_bytes);
  const auto cls = analysis::analyze_cache(g, layout, kConfig);
  const WcetResult w = compute_wcet(g, cls, kTiming);
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(tau_with_fixed_counts(g, cls, kTiming, w.node_counts), w.tau_mem);
}

TEST(Ipet, HigherMissPenaltyRaisesTau) {
  IrBuilder b("penalty");
  b.for_range(R(1), 0, 4, [&] { b.nops(2); });
  b.halt();
  const ir::Program p = b.take();
  const WcetResult cheap = analyze(p, kConfig, cache::MemTiming{1, 10, 10});
  const WcetResult steep = analyze(p, kConfig, cache::MemTiming{1, 50, 50});
  ASSERT_TRUE(cheap.ok());
  ASSERT_TRUE(steep.ok());
  EXPECT_GT(steep.tau_mem, cheap.tau_mem);
}

class SuiteBoundednessTest : public ::testing::TestWithParam<const char*> {};

/// Property over real kernels: τ_w upper-bounds the simulated memory time.
TEST_P(SuiteBoundednessTest, TauDominatesSimulation) {
  const ir::Program p = suite::build_benchmark(GetParam());
  const WcetResult w = analyze(p);
  ASSERT_TRUE(w.ok());
  const sim::RunMetrics m = sim::run_program(p, kConfig, kTiming);
  EXPECT_GE(w.tau_mem, m.mem_cycles) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Kernels, SuiteBoundednessTest,
                         ::testing::Values("crc", "fdct", "matmult",
                                           "insertsort", "bs", "fir",
                                           "cover", "whet"));


// ---------------------------------------------------------------------------
// Brute-force oracle: for loop-free programs, enumerate every path,
// simulate the cache exactly along each, and take the maximum memory time.
// IPET with classification-based t_w must upper-bound that oracle (it is
// sound), and must not exceed the all-miss bound (it is not absurd).
// ---------------------------------------------------------------------------

namespace {

std::uint64_t oracle_max_path_time(const ir::Program& p,
                                   const cache::CacheConfig& config,
                                   const cache::MemTiming& timing) {
  const ir::Layout layout(p, config.block_bytes);
  struct Frame {
    ir::BlockId bb;
    std::vector<std::vector<cache::MemBlockId>> sets;  // MRU-first
    std::uint64_t time;
  };
  auto access = [&](Frame& f, cache::MemBlockId blk) {
    auto& set = f.sets[config.set_of(blk)];
    for (std::size_t i = 0; i < set.size(); ++i) {
      if (set[i] == blk) {
        set.erase(set.begin() + static_cast<std::ptrdiff_t>(i));
        set.insert(set.begin(), blk);
        f.time += timing.hit_cycles;
        return;
      }
    }
    if (set.size() == config.assoc) set.pop_back();
    set.insert(set.begin(), blk);
    f.time += timing.miss_cycles;
  };

  std::uint64_t best = 0;
  std::vector<Frame> stack;
  stack.push_back(Frame{p.entry(),
                        std::vector<std::vector<cache::MemBlockId>>(
                            config.num_sets()),
                        0});
  while (!stack.empty()) {
    Frame f = std::move(stack.back());
    stack.pop_back();
    const ir::BasicBlock& bb = p.block(f.bb);
    for (const ir::Instruction& in : bb.instrs)
      access(f, layout.mem_block(in.id));
    if (bb.succs.empty()) {
      best = std::max(best, f.time);
      continue;
    }
    for (ir::BlockId s : bb.succs) {
      Frame next = f;
      next.bb = s;
      stack.push_back(std::move(next));
    }
  }
  return best;
}

ir::Program branchy_program(int seed) {
  using ir::Cond;
  ir::IrBuilder b("branchy" + std::to_string(seed));
  b.movi(R(1), seed);
  for (int level = 0; level < 4; ++level) {
    b.if_then_else(
        Cond::kEq, R(1), R(0),
        [&] { b.nops(static_cast<std::size_t>(3 + (seed + level * 7) % 9)); },
        [&] { b.nops(static_cast<std::size_t>(1 + (seed * 3 + level) % 11)); });
  }
  b.halt();
  return b.take();
}

}  // namespace

class OracleTest : public ::testing::TestWithParam<int> {};

TEST_P(OracleTest, IpetUpperBoundsExhaustivePathEnumeration) {
  const ir::Program p = branchy_program(GetParam());
  for (const cache::CacheConfig& config :
       {cache::CacheConfig{1, 16, 64}, cache::CacheConfig{2, 16, 128},
        cache::CacheConfig{2, 16, 256}}) {
    const WcetResult w = analyze(p, config, kTiming);
    ASSERT_TRUE(w.ok());
    const std::uint64_t oracle = oracle_max_path_time(p, config, kTiming);
    EXPECT_GE(w.tau_mem, oracle)
        << "seed " << GetParam() << " cache " << config.to_string();
    // Sanity ceiling: tau cannot exceed every static reference missing.
    const std::uint64_t all_miss =
        p.instruction_count() * kTiming.miss_cycles;
    EXPECT_LE(w.tau_mem, all_miss);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OracleTest, ::testing::Range(1, 13));

}  // namespace
}  // namespace ucp::wcet
