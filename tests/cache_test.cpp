#include <gtest/gtest.h>

#include "cache/cache_sim.hpp"
#include "cache/config.hpp"
#include "support/check.hpp"

namespace ucp::cache {
namespace {

const MemTiming kTiming{1, 25, 25};

TEST(Config, Geometry) {
  const CacheConfig k{2, 16, 512};
  k.validate();
  EXPECT_EQ(k.num_sets(), 16u);
  EXPECT_EQ(k.num_blocks(), 32u);
  EXPECT_EQ(k.set_of(0), 0u);
  EXPECT_EQ(k.set_of(16), 0u);
  EXPECT_EQ(k.set_of(17), 1u);
}

TEST(Config, ValidationRejectsBadShapes) {
  EXPECT_THROW((CacheConfig{3, 16, 512}.validate()), InvalidArgument);
  EXPECT_THROW((CacheConfig{2, 24, 512}.validate()), InvalidArgument);
  EXPECT_THROW((CacheConfig{2, 16, 600}.validate()), InvalidArgument);
  EXPECT_THROW((CacheConfig{8, 32, 128}.validate()), InvalidArgument);
}

TEST(Config, PaperTable2Has36Entries) {
  const auto& configs = paper_cache_configs();
  ASSERT_EQ(configs.size(), 36u);
  EXPECT_EQ(configs.front().id, "k1");
  EXPECT_EQ(configs.back().id, "k36");
  // Paper order: k1 = (1,16,256), k36 = (4,32,8192).
  EXPECT_EQ(configs.front().config, (CacheConfig{1, 16, 256}));
  EXPECT_EQ(configs.back().config, (CacheConfig{4, 32, 8192}));
  for (const auto& named : configs) named.config.validate();
}

TEST(Config, PaperLookupByIdAndUnknown) {
  EXPECT_EQ(paper_cache_config("k7").config, (CacheConfig{1, 16, 512}));
  EXPECT_THROW(paper_cache_config("k99"), InvalidArgument);
}

TEST(Timing, Validation) {
  MemTiming t{1, 1, 1};
  EXPECT_THROW(t.validate(), InvalidArgument);  // miss must exceed hit
  t = MemTiming{0, 10, 10};
  EXPECT_THROW(t.validate(), InvalidArgument);
  kTiming.validate();
}

TEST(CacheSim, ColdMissThenHit) {
  CacheSim sim(CacheConfig{1, 16, 256}, kTiming);
  const auto miss = sim.fetch(5, 0);
  EXPECT_EQ(miss.kind, FetchKind::kMiss);
  EXPECT_EQ(miss.cycles, kTiming.miss_cycles);
  const auto hit = sim.fetch(5, miss.cycles);
  EXPECT_EQ(hit.kind, FetchKind::kHit);
  EXPECT_EQ(hit.cycles, kTiming.hit_cycles);
  EXPECT_EQ(sim.stats().fetches, 2u);
  EXPECT_EQ(sim.stats().misses, 1u);
  EXPECT_EQ(sim.stats().hits, 1u);
}

TEST(CacheSim, DirectMappedConflictEviction) {
  // 16 sets; blocks 0 and 16 collide.
  CacheSim sim(CacheConfig{1, 16, 256}, kTiming);
  sim.fetch(0, 0);
  sim.fetch(16, 100);
  EXPECT_FALSE(sim.contains(0));
  EXPECT_TRUE(sim.contains(16));
  EXPECT_EQ(sim.stats().evictions, 1u);
}

TEST(CacheSim, LruOrderWithinSet) {
  // 2-way, 8 sets: blocks 0, 8, 16 collide in set 0.
  CacheSim sim(CacheConfig{2, 16, 256}, kTiming);
  sim.fetch(0, 0);
  sim.fetch(8, 10);
  sim.fetch(0, 20);   // touch 0 -> MRU
  sim.fetch(16, 30);  // evicts 8 (LRU), not 0
  EXPECT_TRUE(sim.contains(0));
  EXPECT_FALSE(sim.contains(8));
  EXPECT_TRUE(sim.contains(16));
  const auto contents = sim.set_contents(0);
  ASSERT_EQ(contents.size(), 2u);
  EXPECT_EQ(contents[0], 16u);  // MRU first
  EXPECT_EQ(contents[1], 0u);
}

TEST(CacheSim, PrefetchedBlockReadyAfterLatency) {
  CacheSim sim(CacheConfig{2, 16, 256}, kTiming);
  sim.prefetch(3, 0);
  EXPECT_TRUE(sim.contains(3));
  ASSERT_TRUE(sim.ready_at(3).has_value());
  EXPECT_EQ(*sim.ready_at(3), 25u);
  // Demand fetch after completion: plain hit.
  const auto hit = sim.fetch(3, 30);
  EXPECT_EQ(hit.kind, FetchKind::kHit);
  EXPECT_EQ(hit.cycles, kTiming.hit_cycles);
  EXPECT_EQ(sim.stats().useful_prefetch_hits, 1u);
  EXPECT_EQ(sim.stats().prefetch_fills, 1u);
}

TEST(CacheSim, LatePrefetchStallsForRemainder) {
  CacheSim sim(CacheConfig{2, 16, 256}, kTiming);
  sim.prefetch(3, 0);  // ready at 25
  const auto r = sim.fetch(3, 10);
  EXPECT_EQ(r.kind, FetchKind::kLatePrefetch);
  EXPECT_EQ(r.cycles, 15u + kTiming.hit_cycles);
  EXPECT_EQ(sim.stats().stall_cycles, 15u);
  EXPECT_EQ(sim.stats().late_prefetch_hits, 1u);
  // Counted as a hit, not a miss (the paper's non-blocking port).
  EXPECT_EQ(sim.stats().misses, 0u);
}

TEST(CacheSim, RedundantPrefetchOnlyTouchesLru) {
  CacheSim sim(CacheConfig{2, 16, 256}, kTiming);
  sim.fetch(0, 0);
  sim.fetch(8, 10);      // set 0: [8, 0]
  sim.prefetch(0, 20);   // redundant: moves 0 to MRU, no fill
  EXPECT_EQ(sim.stats().prefetches_redundant, 1u);
  EXPECT_EQ(sim.stats().prefetch_fills, 0u);
  sim.fetch(16, 30);     // evicts LRU = 8
  EXPECT_TRUE(sim.contains(0));
  EXPECT_FALSE(sim.contains(8));
}

TEST(CacheSim, PrefetchEvictsLruImmediately) {
  CacheSim sim(CacheConfig{1, 16, 256}, kTiming);
  sim.fetch(0, 0);
  sim.prefetch(16, 10);  // same set as 0
  EXPECT_FALSE(sim.contains(0));
  EXPECT_TRUE(sim.contains(16));
}

TEST(CacheSim, Level2AccessesCombineMissesAndPrefetchFills) {
  CacheSim sim(CacheConfig{2, 16, 256}, kTiming);
  sim.fetch(1, 0);
  sim.prefetch(2, 10);
  sim.prefetch(2, 11);  // redundant, no extra fill
  EXPECT_EQ(sim.stats().level2_accesses(), 2u);
}

TEST(CacheSim, MissRate) {
  CacheSim sim(CacheConfig{1, 16, 256}, kTiming);
  sim.fetch(0, 0);
  sim.fetch(0, 30);
  sim.fetch(0, 40);
  sim.fetch(0, 50);
  EXPECT_DOUBLE_EQ(sim.stats().miss_rate(), 0.25);
  EXPECT_DOUBLE_EQ(CacheStats{}.miss_rate(), 0.0);
}

TEST(CacheSim, ResetClearsEverything) {
  CacheSim sim(CacheConfig{2, 16, 256}, kTiming);
  sim.fetch(1, 0);
  sim.prefetch(2, 5);
  sim.reset();
  EXPECT_FALSE(sim.contains(1));
  EXPECT_FALSE(sim.contains(2));
  EXPECT_EQ(sim.stats().fetches, 0u);
  EXPECT_EQ(sim.stats().prefetches_issued, 0u);
}

TEST(CacheSim, FullyAssociativeNeverConflictsBelowCapacity) {
  // 1 set x 16 ways.
  CacheSim sim(CacheConfig{16, 16, 256}, kTiming);
  for (MemBlockId b = 0; b < 16; ++b) sim.fetch(b, b * 30);
  for (MemBlockId b = 0; b < 16; ++b) EXPECT_TRUE(sim.contains(b));
  EXPECT_EQ(sim.stats().evictions, 0u);
  sim.fetch(16, 1000);  // now the LRU (block 0) goes
  EXPECT_FALSE(sim.contains(0));
}


TEST(HwPrefetch, PolicyNames) {
  EXPECT_EQ(hw_prefetch_policy_name(HwPrefetchPolicy::kNone), "on-demand");
  EXPECT_EQ(hw_prefetch_policy_name(HwPrefetchPolicy::kNextLineAlways),
            "next-line-always");
  EXPECT_EQ(hw_prefetch_policy_name(HwPrefetchPolicy::kNextLineOnMiss),
            "next-line-on-miss");
  EXPECT_EQ(hw_prefetch_policy_name(HwPrefetchPolicy::kNextLineTagged),
            "next-line-tagged");
}

TEST(HwPrefetch, NextLineOnMissPrefetchesSuccessor) {
  CacheSim sim(CacheConfig{2, 16, 256}, kTiming,
               HwPrefetchPolicy::kNextLineOnMiss);
  sim.fetch(5, 0);  // miss -> block 6 prefetched
  EXPECT_TRUE(sim.contains(6));
  EXPECT_EQ(sim.stats().prefetches_issued, 1u);
  // A sequential scan then profits: block 6 arrives before it is needed.
  const auto r = sim.fetch(6, 100);
  EXPECT_NE(r.kind, FetchKind::kMiss);
}

TEST(HwPrefetch, AlwaysFiresOnEveryFetch) {
  CacheSim sim(CacheConfig{2, 16, 256}, kTiming,
               HwPrefetchPolicy::kNextLineAlways);
  sim.fetch(1, 0);
  sim.fetch(1, 50);
  sim.fetch(1, 60);
  EXPECT_EQ(sim.stats().prefetches_issued, 3u);
  // Two of those were redundant (block 2 already resident).
  EXPECT_EQ(sim.stats().prefetches_redundant, 2u);
}

TEST(HwPrefetch, TaggedFiresOncePerBlock) {
  CacheSim sim(CacheConfig{2, 16, 256}, kTiming,
               HwPrefetchPolicy::kNextLineTagged);
  sim.fetch(1, 0);
  sim.fetch(1, 50);   // same block: no new trigger
  sim.fetch(9, 100);  // conflicting block -> eviction; still first touch only
  EXPECT_EQ(sim.stats().prefetches_issued, 2u);
}

TEST(Locking, LockedBlockSurvivesConflicts) {
  CacheSim sim(CacheConfig{2, 16, 256}, kTiming);
  sim.lock_block(0);
  // Blast the set with conflicting blocks.
  std::uint64_t now = 0;
  for (MemBlockId b : {8u, 16u, 24u, 32u}) now += sim.fetch(b, now).cycles;
  EXPECT_TRUE(sim.contains(0));
  const auto hit = sim.fetch(0, now);
  EXPECT_EQ(hit.kind, FetchKind::kHit);
}

TEST(Locking, FullyLockedSetBypassesFills) {
  CacheSim sim(CacheConfig{2, 16, 256}, kTiming);
  sim.lock_block(0);
  sim.lock_block(8);  // set 0 now fully locked
  EXPECT_EQ(sim.locked_ways(0), 2u);
  const auto r = sim.fetch(16, 0);  // same set: served but not cached
  EXPECT_EQ(r.kind, FetchKind::kMiss);
  EXPECT_FALSE(sim.contains(16));
  EXPECT_TRUE(sim.contains(0));
  EXPECT_TRUE(sim.contains(8));
  // And locking a third block in the set must fail.
  EXPECT_THROW(sim.lock_block(24), InvalidArgument);
}

TEST(Locking, ResetClearsLocks) {
  CacheSim sim(CacheConfig{2, 16, 256}, kTiming);
  sim.lock_block(3);
  sim.reset();
  EXPECT_EQ(sim.locked_ways(3), 0u);
  EXPECT_FALSE(sim.contains(3));
}

class CacheSimParamTest
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t,
                                                 std::uint32_t>> {};

/// Property: a cyclic scan over exactly `num_blocks` distinct blocks fits;
/// one extra block forces misses in at least one set forever after.
TEST_P(CacheSimParamTest, CyclicScanCapacityBoundary) {
  const auto [assoc, block_bytes, capacity] = GetParam();
  const CacheConfig config{assoc, block_bytes, capacity};
  CacheSim sim(config, kTiming);
  const std::uint32_t n = config.num_blocks();

  std::uint64_t now = 0;
  // Two full passes over a fitting working set: second pass all hits.
  for (int pass = 0; pass < 2; ++pass) {
    for (MemBlockId b = 0; b < n; ++b) now += sim.fetch(b, now).cycles;
  }
  EXPECT_EQ(sim.stats().misses, n);
  EXPECT_EQ(sim.stats().hits, n);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheSimParamTest,
    ::testing::Values(std::make_tuple(1u, 16u, 256u),
                      std::make_tuple(2u, 16u, 256u),
                      std::make_tuple(4u, 16u, 256u),
                      std::make_tuple(1u, 32u, 512u),
                      std::make_tuple(2u, 32u, 1024u),
                      std::make_tuple(4u, 32u, 8192u)));

}  // namespace
}  // namespace ucp::cache
