// ucp::obs — spans, metrics, sinks and the progress reporter.
//
// The load-bearing properties: span stacks balance across threads and the
// exclusive-time arithmetic is exact; histogram buckets follow the
// documented power-of-two mapping; snapshots are deterministic; the trace
// sink emits well-formed Chrome JSON; and — the contract everything else
// rests on — enabling full instrumentation leaves sweep rows and their
// fingerprint bit-identical.

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <chrono>

#include "energy/model.hpp"
#include "exp/harness.hpp"
#include "obs/build_info.hpp"
#include "obs/flight.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "obs/sink.hpp"
#include "obs/trace.hpp"
#include "support/fault_injection.hpp"

namespace ucp::obs {
namespace {

// Every test leaves the process as it found it: obs off, buffers empty.
class ObsTest : public testing::Test {
 protected:
  void SetUp() override {
    set_enabled(false);
    set_trace_enabled(false);
    reset_trace();
    registry().reset_values();
  }
  void TearDown() override {
    set_enabled(false);
    set_trace_enabled(false);
    reset_trace();
    registry().reset_values();
  }
};

TEST_F(ObsTest, HistogramBucketBoundaries) {
  // bucket 0 = {0}; bucket i >= 1 = [2^(i-1), 2^i - 1].
  EXPECT_EQ(Histogram::bucket_index(0), 0);
  EXPECT_EQ(Histogram::bucket_index(1), 1);
  EXPECT_EQ(Histogram::bucket_index(2), 2);
  EXPECT_EQ(Histogram::bucket_index(3), 2);
  EXPECT_EQ(Histogram::bucket_index(4), 3);
  EXPECT_EQ(Histogram::bucket_index(7), 3);
  EXPECT_EQ(Histogram::bucket_index(8), 4);
  EXPECT_EQ(Histogram::bucket_index(std::uint64_t{1} << 63), 64);
  EXPECT_EQ(Histogram::bucket_index(~std::uint64_t{0}), 64);

  EXPECT_EQ(Histogram::bucket_range(0), (std::pair<std::uint64_t,
                                                   std::uint64_t>{0, 0}));
  EXPECT_EQ(Histogram::bucket_range(1), (std::pair<std::uint64_t,
                                                   std::uint64_t>{1, 1}));
  EXPECT_EQ(Histogram::bucket_range(2), (std::pair<std::uint64_t,
                                                   std::uint64_t>{2, 3}));
  EXPECT_EQ(Histogram::bucket_range(64).second, ~std::uint64_t{0});
  // Ranges tile the whole uint64 line: each bucket starts one past the
  // previous end, and membership round-trips through bucket_index.
  for (int i = 1; i < Histogram::kBuckets; ++i) {
    const auto prev = Histogram::bucket_range(i - 1);
    const auto cur = Histogram::bucket_range(i);
    EXPECT_EQ(cur.first, prev.second + 1) << "bucket " << i;
    EXPECT_EQ(Histogram::bucket_index(cur.first), i);
    EXPECT_EQ(Histogram::bucket_index(cur.second), i);
  }

  Histogram h;
  for (std::uint64_t v : {0ull, 1ull, 2ull, 3ull, 1000ull}) h.record(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 1006u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 2u);
  EXPECT_EQ(h.bucket(Histogram::bucket_index(1000)), 1u);
}

TEST_F(ObsTest, SnapshotIsDeterministicAndSorted) {
  auto workload = [] {
    registry().counter("test.b.count").add(3);
    registry().counter("test.a.count").increment();
    registry().gauge("test.peak").set_max(7);
    registry().gauge("test.peak").set_max(4);  // below the peak: no effect
    registry().histogram("test.h").record(5);
    registry().histogram("test.h").record(0);
  };

  workload();
  const Snapshot first = registry().snapshot();
  const std::string first_json = snapshot_json(first);
  registry().reset_values();
  workload();
  const Snapshot second = registry().snapshot();

  EXPECT_EQ(first.counters, second.counters);
  EXPECT_EQ(first.gauges, second.gauges);
  ASSERT_EQ(first.histograms.size(), second.histograms.size());
  for (std::size_t i = 0; i < first.histograms.size(); ++i) {
    EXPECT_EQ(first.histograms[i].name, second.histograms[i].name);
    EXPECT_EQ(first.histograms[i].count, second.histograms[i].count);
    EXPECT_EQ(first.histograms[i].buckets, second.histograms[i].buckets);
  }
  EXPECT_EQ(first_json, snapshot_json(second));

  EXPECT_TRUE(std::is_sorted(first.counters.begin(), first.counters.end()));
  // reset_values keeps registrations (and instrument addresses) alive.
  EXPECT_EQ(registry().counter("test.a.count").value(), 1u);
  registry().reset_values();
  EXPECT_EQ(registry().counter("test.a.count").value(), 0u);
  EXPECT_EQ(registry().snapshot().counters.size(), first.counters.size());
}

TEST_F(ObsTest, SpanStacksBalanceAcrossThreads) {
  set_trace_enabled(true);
  constexpr int kThreads = 4;
  std::vector<std::thread> pool;
  for (int i = 0; i < kThreads; ++i) {
    pool.emplace_back([] {
      Span outer("test.outer.op");
      for (int j = 0; j < 3; ++j) Span inner("test.inner.op");
      EXPECT_EQ(open_span_depth(), 1u);  // outer still open on this thread
    });
  }
  for (std::thread& t : pool) t.join();
  set_trace_enabled(false);

  const std::vector<TraceEvent> events = drain_trace();
  ASSERT_EQ(events.size(), static_cast<std::size_t>(kThreads) * 4);
  EXPECT_TRUE(std::is_sorted(events.begin(), events.end(),
                             [](const TraceEvent& a, const TraceEvent& b) {
                               return a.start_ns != b.start_ns
                                          ? a.start_ns < b.start_ns
                                          : a.tid < b.tid;
                             }));

  std::map<std::uint32_t, std::vector<const TraceEvent*>> by_tid;
  for (const TraceEvent& e : events) by_tid[e.tid].push_back(&e);
  ASSERT_EQ(by_tid.size(), static_cast<std::size_t>(kThreads));
  for (const auto& [tid, list] : by_tid) {
    const TraceEvent* outer = nullptr;
    std::uint64_t inner_total = 0;
    std::size_t inners = 0;
    for (const TraceEvent* e : list) {
      if (std::string(e->name) == "test.outer.op") {
        EXPECT_EQ(outer, nullptr) << "one outer span per thread";
        outer = e;
      } else {
        EXPECT_EQ(std::string(e->name), "test.inner.op");
        EXPECT_EQ(e->excl_ns, e->dur_ns);  // leaves have no children
        inner_total += e->dur_ns;
        ++inners;
      }
    }
    ASSERT_NE(outer, nullptr);
    EXPECT_EQ(inners, 3u);
    // Exact exclusive-time arithmetic: children's durations are subtracted
    // from the parent at close, nothing more.
    EXPECT_GE(outer->dur_ns, inner_total);
    EXPECT_EQ(outer->excl_ns, outer->dur_ns - inner_total);
  }
  EXPECT_EQ(open_span_depth(), 0u);
}

TEST_F(ObsTest, TraceJsonIsWellFormedAndExact) {
  // Synthetic events pin the serialization exactly: ns -> µs with three
  // decimals, cat = segment before the first '.', excl_us in args.
  std::vector<TraceEvent> events;
  events.push_back(
      TraceEvent{"analysis.cache.fixpoint", 1500, 2500, 1000, 0, 0});
  events.push_back(TraceEvent{"exp.task.run", 2000000, 3000000, 500, 0, 3});
  const std::string json = trace_json(events);

  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"analysis.cache.fixpoint\",\"cat\":"
                      "\"analysis\",\"ph\":\"X\",\"ts\":1.500,\"dur\":2.500"),
            std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"exp\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":2000.000"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"excl_us\":1.000}"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":3"), std::string::npos);

  // Structural parse-back: braces and brackets balance and never go
  // negative (span names contain no quoting hazards by construction).
  int depth = 0;
  for (const char c : json) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);

  EXPECT_EQ(trace_json({}),
            "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}\n");
}

TEST_F(ObsTest, SinkFailureDegradesToStatus) {
  const Snapshot snapshot = registry().snapshot();
  {
    fault::ScopedFault f("obs.sink_write");
    const std::string path =
        testing::TempDir() + "obs_faulted." + std::to_string(::getpid());
    const Status s = write_metrics_file(path, snapshot);
    EXPECT_FALSE(s.ok());
    std::remove(path.c_str());
  }
  // Unwritable path: Status, not an exception — sinks may never throw into
  // a sweep.
  EXPECT_FALSE(
      write_trace_file("/nonexistent-dir/obs.trace.json", {}).ok());
}

TEST_F(ObsTest, ProgressReporterWeightEtaAndNoticeLimiting) {
  std::FILE* out = std::tmpfile();
  ASSERT_NE(out, nullptr);
  ProgressReporter::Options options;
  options.enabled = true;
  options.min_interval_ms = 1000000;  // only the final case may report
  options.out = out;
  ProgressReporter reporter(options);
  // 2 of 6 cases (and 90 of 100 weight units) resumed from a journal: the
  // remaining work is light, so the ETA must not read 4/6 of the runtime.
  reporter.begin(6, 100, 2, 90);
  reporter.case_done(1, 2);  // first tick always reports
  reporter.case_done(1, 2);  // within the interval: suppressed
  reporter.notice("retry", "first retry notice");
  reporter.notice("retry", "suppressed retry notice");
  reporter.notice("audit", "audit notice");
  reporter.case_done(2, 5);  // final case always reports
  EXPECT_EQ(reporter.done_cases(), 6u);
  reporter.finish();

  std::fflush(out);
  std::rewind(out);
  std::string text;
  char buf[4096];
  while (std::fgets(buf, sizeof buf, out) != nullptr) text += buf;
  std::fclose(out);

  // First and final ticks report; the middle one is rate-limited away.
  EXPECT_NE(text.find("3/6 use cases"), std::string::npos);
  EXPECT_EQ(text.find("4/6 use cases"), std::string::npos);
  EXPECT_NE(text.find("6/6 use cases"), std::string::npos);
  EXPECT_EQ(text.find("6/6 use cases"), text.rfind("6/6 use cases"));
  EXPECT_NE(text.find("99.0% of work"), std::string::npos);
  // One retry line, the second suppressed but reported by finish().
  EXPECT_NE(text.find("[sweep:retry] first retry notice"), std::string::npos);
  EXPECT_EQ(text.find("suppressed retry notice"), std::string::npos);
  EXPECT_NE(text.find("[sweep:retry] ... and 1 more retry notices"),
            std::string::npos);
  EXPECT_NE(text.find("[sweep:audit] audit notice"), std::string::npos);
}

TEST_F(ObsTest, DisabledReporterIsSilent) {
  std::FILE* out = std::tmpfile();
  ASSERT_NE(out, nullptr);
  ProgressReporter::Options options;
  options.enabled = false;
  options.out = out;
  ProgressReporter reporter(options);
  reporter.begin(2, 2, 0, 0);
  reporter.case_done(2, 2);
  reporter.notice("retry", "never shown");
  reporter.announce("never shown");
  reporter.finish();
  std::fflush(out);
  EXPECT_EQ(std::ftell(out), 0L);
  std::fclose(out);
  EXPECT_EQ(reporter.done_cases(), 2u);  // accounting still works
}

TEST_F(ObsTest, HistogramQuantilesAreBoundedAndConsistent) {
  Histogram empty;
  EXPECT_EQ(empty.quantile(0.5), 0.0);

  // The zero bucket is a point range, so all-zero data is estimated exactly.
  Histogram zeros;
  for (int i = 0; i < 100; ++i) zeros.record(0);
  EXPECT_EQ(zeros.p50(), 0.0);
  EXPECT_EQ(zeros.p99(), 0.0);

  // Uniform 1..1000: true p50 = 500.5, p90 = 900.1, p99 = 990.01. The
  // estimator interpolates inside power-of-two buckets, so each estimate
  // stays within the documented 2x relative-error bound and inside the
  // value range of the data.
  Histogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  const double p50 = h.p50();
  const double p90 = h.p90();
  const double p99 = h.p99();
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_GE(p50, 500.5 / 2.0);
  EXPECT_LE(p50, 500.5 * 2.0);
  EXPECT_GE(p90, 900.1 / 2.0);
  EXPECT_LE(p90, 1023.0);  // hi edge of the bucket holding the maximum
  EXPECT_GE(p99, 990.01 / 2.0);
  EXPECT_LE(p99, 1023.0);
  EXPECT_GE(h.quantile(0.0), 1.0);
  EXPECT_LE(h.quantile(1.0), 1023.0);

  // All three estimator entry points agree on the same data: the live
  // registry histogram, its snapshot value, and the free-function core.
  Histogram& reg = registry().histogram("test.quantile.h");
  for (std::uint64_t v = 1; v <= 1000; ++v) reg.record(v);
  const Snapshot snapshot = registry().snapshot();
  const Snapshot::HistogramValue* hv = nullptr;
  for (const auto& value : snapshot.histograms)
    if (value.name == "test.quantile.h") hv = &value;
  ASSERT_NE(hv, nullptr);
  for (const double q : {0.0, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(reg.quantile(q), hv->quantile(q)) << "q=" << q;
    EXPECT_DOUBLE_EQ(hv->quantile(q),
                     histogram_quantile(hv->buckets, hv->count, q))
        << "q=" << q;
    EXPECT_DOUBLE_EQ(reg.quantile(q), h.quantile(q)) << "q=" << q;
  }
}

// Restores the default logging configuration on scope exit, so a failing
// assertion can't leave a tmpfile sink installed for later tests.
class ScopedLogConfig {
 public:
  explicit ScopedLogConfig(const LogOptions& options) {
    configure_logging(options);
  }
  ~ScopedLogConfig() { configure_logging(LogOptions{}); }
};

std::string read_all(std::FILE* f) {
  std::fflush(f);
  std::rewind(f);
  std::string text;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  return text;
}

TEST_F(ObsTest, LogJsonFieldOrderIsDeterministic) {
  std::FILE* out = std::tmpfile();
  ASSERT_NE(out, nullptr);
  LogOptions options;
  options.json = true;
  options.stream = out;
  std::string text;
  {
    ScopedLogConfig scoped(options);
    log(LogLevel::kInfo, "test", "ordering", "hello world",
        LogFields()
            .num("zeta", std::uint64_t{7})
            .str("alpha", "a \"b\"")
            .boolean("flag", true)
            .real("ratio", 0.5));
    text = read_all(out);
  }
  std::fclose(out);
  // Envelope keys first, then caller fields in insertion order — zeta
  // before alpha, despite the alphabet.
  EXPECT_EQ(text.rfind("{\"ts_ms\":", 0), 0u) << text;
  EXPECT_NE(
      text.find("\"level\":\"info\",\"component\":\"test\","
                "\"event\":\"ordering\",\"detail\":\"hello world\","
                "\"zeta\":7,\"alpha\":\"a \\\"b\\\"\",\"flag\":true,"
                "\"ratio\":0.5}"),
      std::string::npos)
      << text;
}

TEST_F(ObsTest, LogLevelFilterAndTextRendering) {
  std::FILE* out = std::tmpfile();
  ASSERT_NE(out, nullptr);
  LogOptions options;
  options.min_level = LogLevel::kWarn;
  options.stream = out;
  std::string text;
  {
    ScopedLogConfig scoped(options);
    EXPECT_FALSE(log_enabled(LogLevel::kDebug));
    EXPECT_FALSE(log_enabled(LogLevel::kInfo));
    EXPECT_TRUE(log_enabled(LogLevel::kWarn));
    EXPECT_TRUE(log_enabled(LogLevel::kError));
    log(LogLevel::kInfo, "test", "filtered_out");
    log(LogLevel::kError, "test", "kept", "disk full",
        LogFields().str("path", "/tmp/x"));
    text = read_all(out);
  }
  std::fclose(out);
  EXPECT_EQ(text.find("filtered_out"), std::string::npos);
  EXPECT_NE(text.find("[test] error: kept: disk full path=\"/tmp/x\""),
            std::string::npos)
      << text;
}

TEST_F(ObsTest, LogRateLimitSuppressesPerChannelAndReportsOnResume) {
  std::FILE* out = std::tmpfile();
  ASSERT_NE(out, nullptr);
  LogOptions options;
  options.json = true;
  options.stream = out;
  options.rate_limit = 2;
  options.rate_window_ms = 50;
  std::string text;
  {
    ScopedLogConfig scoped(options);
    reset_log_stats();
    for (int i = 0; i < 5; ++i)
      log(LogLevel::kInfo, "test", "spam", "n=" + std::to_string(i));
    EXPECT_EQ(log_lines_emitted(), 2u);
    EXPECT_EQ(log_lines_suppressed(), 3u);
    // A different (component, event) channel has its own budget.
    log(LogLevel::kInfo, "test", "other_event");
    EXPECT_EQ(log_lines_emitted(), 3u);
    // After the window rolls, the first line through reports what the
    // limiter swallowed — silence is never silent data loss.
    std::this_thread::sleep_for(std::chrono::milliseconds(80));
    log(LogLevel::kInfo, "test", "spam", "n=5");
    EXPECT_EQ(log_lines_emitted(), 4u);
    text = read_all(out);
  }
  std::fclose(out);
  EXPECT_NE(text.find("\"detail\":\"n=0\""), std::string::npos);
  EXPECT_NE(text.find("\"detail\":\"n=1\""), std::string::npos);
  EXPECT_EQ(text.find("\"detail\":\"n=2\""), std::string::npos);
  EXPECT_EQ(text.find("\"detail\":\"n=4\""), std::string::npos);
  EXPECT_NE(text.find("\"detail\":\"n=5\",\"suppressed\":3"),
            std::string::npos)
      << text;
  reset_log_stats();
}

TEST_F(ObsTest, FlightRingWrapsAndDumpParses) {
  const bool was_on = flight_enabled();
  reset_flight();
  set_flight_enabled(true);
  set_flight_capacity(16);
  // A fresh thread gets a fresh ring at the new capacity; 100 notes into a
  // 16-slot ring keep exactly the last 16.
  std::thread([] {
    for (int i = 0; i < 100; ++i)
      flight_note("test.flight.note", "n=" + std::to_string(i));
  }).join();
  const std::vector<FlightRecord> records = flight_snapshot();
  std::vector<const FlightRecord*> notes;
  for (const FlightRecord& r : records)
    if (std::string(r.name) == "test.flight.note") notes.push_back(&r);
  ASSERT_EQ(notes.size(), 16u);
  EXPECT_EQ(std::string(notes.front()->detail), "n=84");
  EXPECT_EQ(std::string(notes.back()->detail), "n=99");
  for (std::size_t i = 1; i < notes.size(); ++i)
    EXPECT_LT(notes[i - 1]->seq, notes[i]->seq);

  const std::string dump = flight_dump_json("unit-test");
  EXPECT_EQ(dump.rfind("{\"kind\":\"header\",\"reason\":\"unit-test\"", 0),
            0u)
      << dump.substr(0, 120);
  EXPECT_NE(dump.find("\"capacity_per_thread\":16"), std::string::npos);
  EXPECT_NE(dump.find("\"build\":{\"git_sha\":"), std::string::npos);
  EXPECT_NE(dump.find("{\"kind\":\"note\""), std::string::npos);
  EXPECT_NE(dump.find("\"detail\":\"n=99\""), std::string::npos);
  // Every line is one JSON object: braces balance per line.
  std::istringstream lines(dump);
  std::string line;
  std::size_t line_count = 0;
  while (std::getline(lines, line)) {
    ++line_count;
    int depth = 0;
    for (const char c : line) {
      if (c == '{') ++depth;
      if (c == '}') --depth;
      ASSERT_GE(depth, 0) << line;
    }
    EXPECT_EQ(depth, 0) << line;
  }
  EXPECT_EQ(line_count, 1u + records.size());

  // Capacity requests clamp to [16, 65536].
  set_flight_capacity(1);
  EXPECT_EQ(flight_capacity(), 16u);
  set_flight_capacity(std::size_t{1} << 20);
  EXPECT_EQ(flight_capacity(), 65536u);
  set_flight_capacity(256);
  set_flight_enabled(was_on);
  reset_flight();
}

TEST_F(ObsTest, TraceContextCorrelatesSpansAndDrainsSelectively) {
  set_trace_enabled(true);
  {
    TraceContextScope scope(0x42);
    EXPECT_EQ(trace_context(), 0x42u);
    { Span inner("test.ctx.tagged"); }
    {
      TraceContextScope nested(7);
      Span span("test.ctx.nested");
    }
    EXPECT_EQ(trace_context(), 0x42u);  // nested scope restored the outer
  }
  EXPECT_EQ(trace_context(), 0u);
  { Span outer("test.ctx.untagged"); }

  // Selective drain takes only the 0x42 spans and leaves the rest buffered.
  const std::vector<TraceEvent> tagged = drain_trace_context(0x42);
  ASSERT_EQ(tagged.size(), 1u);
  EXPECT_EQ(std::string(tagged[0].name), "test.ctx.tagged");
  EXPECT_EQ(tagged[0].ctx, 0x42u);
  const std::vector<TraceEvent> rest = drain_trace();
  ASSERT_EQ(rest.size(), 2u);
  for (const TraceEvent& e : rest)
    EXPECT_NE(std::string(e.name), "test.ctx.tagged");

  // The sink renders a nonzero context as a fixed-width hex arg so
  // Perfetto can filter one request out of a loaded daemon's trace.
  const std::string json = trace_json(tagged);
  EXPECT_NE(json.find("\"ctx\":\"0000000000000042\""), std::string::npos);
  set_trace_enabled(false);
}

TEST_F(ObsTest, PrometheusTextExposition) {
  registry().counter("test.prom.count").add(5);
  registry().gauge("test.prom.depth").set(3);
  Histogram& h = registry().histogram("test.prom.lat");
  h.record(0);
  h.record(6);
  const std::string text = prometheus_text(registry().snapshot());
  EXPECT_NE(
      text.find("# TYPE ucp_test_prom_count counter\nucp_test_prom_count 5\n"),
      std::string::npos)
      << text;
  EXPECT_NE(
      text.find("# TYPE ucp_test_prom_depth gauge\nucp_test_prom_depth 3\n"),
      std::string::npos);
  // Histogram buckets render as a cumulative `le` series ending in +Inf.
  EXPECT_NE(text.find("# TYPE ucp_test_prom_lat histogram\n"
                      "ucp_test_prom_lat_bucket{le=\"0\"} 1\n"
                      "ucp_test_prom_lat_bucket{le=\"7\"} 2\n"
                      "ucp_test_prom_lat_bucket{le=\"+Inf\"} 2\n"
                      "ucp_test_prom_lat_sum 6\n"
                      "ucp_test_prom_lat_count 2\n"),
            std::string::npos)
      << text;
}

TEST_F(ObsTest, BuildInfoIsStampedIntoEveryArtifact) {
  const BuildInfo& info = build_info();
  EXPECT_FALSE(info.compiler.empty());
  EXPECT_FALSE(info.build_type.empty());
  EXPECT_FALSE(info.sanitizer.empty());
  EXPECT_EQ(info.hardware_concurrency, std::thread::hardware_concurrency());

  const std::string& json = build_info_json();
  EXPECT_EQ(json.rfind("{\"git_sha\":", 0), 0u) << json;
  const std::size_t keys[] = {
      json.find("\"git_sha\":"),      json.find("\"compiler\":"),
      json.find("\"flags\":"),        json.find("\"build_type\":"),
      json.find("\"sanitizer\":"),    json.find("\"hardware_concurrency\":"),
  };
  for (std::size_t i = 1; i < std::size(keys); ++i) {
    ASSERT_NE(keys[i], std::string::npos) << json;
    EXPECT_LT(keys[i - 1], keys[i]) << json;
  }
  // The stamp is cached: one rendering per process.
  EXPECT_EQ(&build_info_json(), &json);
  // Every metrics snapshot leads with the same stamp verbatim.
  const std::string snapshot = snapshot_json(registry().snapshot());
  EXPECT_EQ(snapshot.rfind("{\"build\":" + json, 0), 0u)
      << snapshot.substr(0, 200);
}

exp::SweepOptions tiny_sweep() {
  exp::SweepOptions options;
  options.programs = {"bs", "fdct"};
  options.config_stride = 12;
  options.techs = {energy::TechNode::k45nm};
  options.threads = 2;
  options.progress_every = 0;
  return options;
}

TEST_F(ObsTest, FullInstrumentationLeavesSweepBitIdentical) {
  // The acceptance contract: --trace/--metrics observe, never perturb.
  const exp::Sweep plain = exp::run_sweep(tiny_sweep());
  const std::string fp_plain = exp::sweep_results_fingerprint(plain.results);

  set_enabled(true);
  set_trace_enabled(true);
  const exp::Sweep traced = exp::run_sweep(tiny_sweep());
  set_enabled(false);
  set_trace_enabled(false);
  const std::string fp_traced = exp::sweep_results_fingerprint(traced.results);

  EXPECT_EQ(fp_plain, fp_traced);
  ASSERT_EQ(plain.results.size(), traced.results.size());
  for (std::size_t i = 0; i < plain.results.size(); ++i) {
    EXPECT_EQ(plain.results[i].optimized.tau_wcet,
              traced.results[i].optimized.tau_wcet);
    EXPECT_EQ(plain.results[i].original.run.total_cycles,
              traced.results[i].original.run.total_cycles);
  }

  // The instrumented run actually observed all five pipeline layers.
  const std::vector<TraceEvent> events = drain_trace();
  for (const char* prefix :
       {"analysis.", "ilp.", "wcet.", "core.", "sim.", "exp."}) {
    EXPECT_TRUE(std::any_of(events.begin(), events.end(),
                            [&](const TraceEvent& e) {
                              return std::string(e.name).rfind(prefix, 0) == 0;
                            }))
        << "no span under '" << prefix << "'";
  }
  const Snapshot snapshot = registry().snapshot();
  auto counter_value = [&](const std::string& name) -> std::uint64_t {
    for (const auto& [n, v] : snapshot.counters)
      if (n == name) return v;
    return 0;
  };
  EXPECT_GT(counter_value("analysis.cache.fixpoints"), 0u);
  EXPECT_GT(counter_value("ilp.solve.lp_solves"), 0u);
  EXPECT_GT(counter_value("core.optimizer.runs"), 0u);
  EXPECT_GT(counter_value("sim.interp.runs"), 0u);
  EXPECT_EQ(counter_value("exp.sweep.cases"), traced.results.size());
  EXPECT_EQ(counter_value("exp.sweep.completed"), traced.report.completed);
  EXPECT_EQ(counter_value("exp.sweep.lp_solves"),
            traced.report.solver.lp_solves);
}

TEST_F(ObsTest, JournalMetricsAnnotationSurvivesResume) {
  const std::string journal = testing::TempDir() + "obs_journal." +
                              std::to_string(::getpid()) + ".journal";
  std::remove(journal.c_str());
  exp::SweepOptions options = tiny_sweep();
  options.journal_path = journal;

  set_enabled(true);
  const exp::Sweep first = exp::run_sweep(options);
  set_enabled(false);
  ASSERT_TRUE(first.report.clean());
  const std::string fp_first = exp::sweep_results_fingerprint(first.results);

  // The metrics snapshot rides in the journal as a comment line.
  bool annotated = false;
  {
    std::ifstream is(journal);
    std::string line;
    while (std::getline(is, line))
      if (line.rfind("# metrics {", 0) == 0) annotated = true;
  }
  EXPECT_TRUE(annotated);

  // A resumed run skips the comment, restores every row and reproduces the
  // fingerprint bit-for-bit.
  const exp::Sweep second = exp::run_sweep(options);
  EXPECT_EQ(second.report.resumed_rows, first.results.size());
  EXPECT_EQ(exp::sweep_results_fingerprint(second.results), fp_first);
  std::remove(journal.c_str());
}

}  // namespace
}  // namespace ucp::obs
