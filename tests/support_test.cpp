#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <sstream>
#include <string>

#include "support/cancellation.hpp"
#include "support/check.hpp"
#include "support/checked.hpp"
#include "support/fault_injection.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/status.hpp"
#include "support/table.hpp"

namespace ucp {
namespace {

TEST(Check, RequireThrowsInvalidArgument) {
  EXPECT_THROW(UCP_REQUIRE(false, "boom"), InvalidArgument);
  EXPECT_NO_THROW(UCP_REQUIRE(true, "fine"));
}

TEST(Check, CheckThrowsInternalError) {
  EXPECT_THROW(UCP_CHECK(1 == 2), InternalError);
  EXPECT_THROW(UCP_CHECK_MSG(false, "details"), InternalError);
  EXPECT_NO_THROW(UCP_CHECK(1 == 1));
}

TEST(Check, MessagesCarryContext) {
  try {
    UCP_REQUIRE(false, "the widget broke");
    FAIL() << "should have thrown";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("the widget broke"),
              std::string::npos);
  }
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
  EXPECT_THROW(rng.next_below(0), InvalidArgument);
}

TEST(Rng, NextInInclusiveRange) {
  Rng rng(9);
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.next_in(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
  EXPECT_EQ(rng.next_in(3, 3), 3);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 500; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats all, a, b;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10;
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, EmptyQueriesThrow) {
  RunningStats s;
  EXPECT_THROW(s.mean(), InvalidArgument);
  EXPECT_THROW(s.min(), InvalidArgument);
  s.add(1.0);
  EXPECT_THROW(s.variance(), InvalidArgument);  // needs two samples
}

TEST(SampleSet, Quantiles) {
  SampleSet s;
  for (int i = 10; i >= 1; --i) s.add(i);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 10.0);
  EXPECT_DOUBLE_EQ(s.median(), 5.5);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 10.0);
  EXPECT_DOUBLE_EQ(s.mean(), 5.5);
}

TEST(SampleSet, QuantileAfterLaterAdds) {
  SampleSet s;
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.median(), 1.0);
  s.add(3.0);  // invalidates the sorted cache
  EXPECT_DOUBLE_EQ(s.median(), 2.0);
}

TEST(GeoMean, MatchesClosedForm) {
  GeoMean g;
  g.add(2.0);
  g.add(8.0);
  EXPECT_NEAR(g.value(), 4.0, 1e-12);
  EXPECT_THROW(GeoMean().value(), InvalidArgument);
  EXPECT_THROW(g.add(0.0), InvalidArgument);
}

TEST(TextTable, AlignsAndCounts) {
  TextTable t({"a", "long header"});
  t.add_row({"1", "2"});
  t.add_separator();
  t.add_row({"333", "4"});
  EXPECT_EQ(t.rows(), 3u);  // separator counts as a row entry
  const std::string s = t.to_string();
  EXPECT_NE(s.find("long header"), std::string::npos);
  EXPECT_NE(s.find("333"), std::string::npos);
  EXPECT_THROW(t.add_row({"only one"}), InvalidArgument);
}

TEST(Status, OkAndErrorRoundTrip) {
  const Status ok = Status::Ok();
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.code(), ErrorCode::kOk);

  const Status err(ErrorCode::kStepBudgetExhausted, "ran 501 of 500 steps");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.code(), ErrorCode::kStepBudgetExhausted);
  EXPECT_EQ(err.detail(), "ran 501 of 500 steps");
  EXPECT_EQ(err.message(), "step-budget-exhausted: ran 501 of 500 steps");
}

TEST(Status, EveryCodeHasAName) {
  for (int c = 0; c <= static_cast<int>(ErrorCode::kInternal); ++c) {
    const char* name = error_code_name(static_cast<ErrorCode>(c));
    EXPECT_NE(std::string(name), "unknown") << "code " << c;
  }
}

TEST(Expected, ValueAndStatusChannels) {
  Expected<int> good(42);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 42);
  EXPECT_EQ(*good, 42);
  EXPECT_EQ(good.value_or(-1), 42);

  Expected<int> bad(Status(ErrorCode::kCorruptCache, "row 7"));
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.code(), ErrorCode::kCorruptCache);
  EXPECT_EQ(bad.value_or(-1), -1);
  EXPECT_THROW(bad.value(), InternalError);
}

TEST(Expected, MoveOnlyPayload) {
  Expected<std::unique_ptr<int>> e(std::make_unique<int>(9));
  ASSERT_TRUE(e.ok());
  std::unique_ptr<int> p = std::move(e).value();
  EXPECT_EQ(*p, 9);
}

TEST(FaultInjection, RegistryListsSitesAndArmsOneShot) {
  fault::disarm_all();
  const auto& sites = fault::known_sites();
  ASSERT_FALSE(sites.empty());
  const char* site = "sim.step";
  EXPECT_FALSE(fault::should_fail(site));

  fault::arm(site);
  EXPECT_TRUE(fault::should_fail(site));   // fires once...
  EXPECT_FALSE(fault::should_fail(site));  // ...then disarms itself
  EXPECT_GE(fault::hit_count(site), 1u);

  EXPECT_THROW(fault::arm("no.such.site"), InvalidArgument);
  fault::disarm_all();
}

TEST(FaultInjection, SkipCountDelaysTheFailure) {
  fault::disarm_all();
  fault::arm("ilp.pivot", /*skip=*/2);
  EXPECT_FALSE(fault::should_fail("ilp.pivot"));
  EXPECT_FALSE(fault::should_fail("ilp.pivot"));
  EXPECT_TRUE(fault::should_fail("ilp.pivot"));
  EXPECT_FALSE(fault::should_fail("ilp.pivot"));
  fault::disarm_all();
}

TEST(FaultInjection, ScopedFaultDisarmsOnExit) {
  fault::disarm_all();
  {
    fault::ScopedFault f("wcet.solve");
    // Not consumed inside the scope.
  }
  EXPECT_FALSE(fault::should_fail("wcet.solve"));
}

TEST(Checked, PassThroughOnHealthyValues) {
  EXPECT_EQ(checked_add(2, 3), 5u);
  EXPECT_EQ(checked_mul(6, 7), 42u);
  const std::uint64_t max = std::numeric_limits<std::uint64_t>::max();
  EXPECT_EQ(checked_add(max, 0), max);
  EXPECT_EQ(checked_mul(max, 1), max);
}

TEST(Checked, OverflowTrapsAsInternalError) {
  const std::uint64_t max = std::numeric_limits<std::uint64_t>::max();
  EXPECT_THROW(checked_add(max, 1, "tau accumulation"), InternalError);
  EXPECT_THROW(checked_mul(std::uint64_t{1} << 33, std::uint64_t{1} << 33,
                           "node tau contribution"),
               InternalError);
  try {
    checked_add(max, max, "sim cycle clock");
    FAIL() << "expected InternalError";
  } catch (const InternalError& e) {
    EXPECT_NE(std::string(e.what()).find("sim cycle clock"),
              std::string::npos);
  }
}

TEST(Cancellation, NoInstalledScopeMeansNeverCancelled) {
  EXPECT_FALSE(cancellation_requested());
  EXPECT_NO_THROW(throw_if_cancelled("unit test"));
}

TEST(Cancellation, TokenIsScopedAndNests) {
  CancellationToken outer;
  CancelScope scope(&outer);
  EXPECT_FALSE(cancellation_requested());
  outer.cancel();
  EXPECT_TRUE(cancellation_requested());
  {
    // A fresh nested token shadows the cancelled outer one (the retry
    // ladder re-runs a cancelled task under a reset token this way).
    CancellationToken inner;
    CancelScope nested(&inner);
    EXPECT_FALSE(cancellation_requested());
  }
  EXPECT_TRUE(cancellation_requested());
  outer.reset();
  EXPECT_FALSE(cancellation_requested());
}

TEST(Cancellation, ThrowCarriesTheKernelLocation) {
  CancellationToken token;
  CancelScope scope(&token);
  token.cancel();
  try {
    throw_if_cancelled("simplex pivot loop");
    FAIL() << "expected CancelledError";
  } catch (const CancelledError& e) {
    EXPECT_NE(std::string(e.what()).find("simplex pivot loop"),
              std::string::npos);
  }
}

TEST(CsvWriter, EscapesSpecials) {
  std::ostringstream os;
  CsvWriter w(os);
  w.write_row({"plain", "with,comma", "with\"quote"});
  EXPECT_EQ(os.str(), "plain,\"with,comma\",\"with\"\"quote\"\n");
}

TEST(Format, Doubles) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(-1.0, 0), "-1");
}

TEST(Format, PctChange) {
  EXPECT_EQ(format_pct_change(0.888, 1), "-11.2%");
  EXPECT_EQ(format_pct_change(1.0132, 2), "+1.32%");
}

}  // namespace
}  // namespace ucp
