// Synthetic-program generator and text-codec suites: determinism (within
// and across processes), well-formedness of every generated program, and
// canonical round-tripping through the text codec.

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "cache/cache_sim.hpp"
#include "cache/config.hpp"
#include "energy/model.hpp"
#include "gen/generator.hpp"
#include "ir/layout.hpp"
#include "ir/text_codec.hpp"
#include "ir/verify.hpp"
#include "sim/interpreter.hpp"
#include "support/fault_injection.hpp"
#include "support/rng.hpp"

namespace ucp {
namespace {

TEST(SplitSeed, StreamsAreDistinctAndDeterministic) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t stream = 0; stream < 256; ++stream) {
    const std::uint64_t s = split_seed(42, stream);
    EXPECT_EQ(s, split_seed(42, stream));
    EXPECT_TRUE(seen.insert(s).second)
        << "stream " << stream << " collided";
  }
  // Different roots give different streams (seed isolation).
  EXPECT_NE(split_seed(1, 0), split_seed(2, 0));
}

TEST(Generator, SameSeedSameKnobsIsByteIdentical) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng_a(seed), rng_b(seed);
    const gen::GenKnobs knobs_a = gen::sample_knobs(rng_a);
    const gen::GenKnobs knobs_b = gen::sample_knobs(rng_b);
    EXPECT_EQ(knobs_a.to_string(), knobs_b.to_string());
    const ir::Program a = gen::generate_program(seed * 1000, knobs_a);
    const ir::Program b = gen::generate_program(seed * 1000, knobs_b);
    EXPECT_EQ(ir::to_text(a), ir::to_text(b)) << "seed " << seed;
  }
}

TEST(Generator, DifferentSeedsDiffer) {
  const gen::GenKnobs knobs;
  EXPECT_NE(ir::to_text(gen::generate_program(1, knobs)),
            ir::to_text(gen::generate_program(2, knobs)));
}

TEST(Generator, EveryProgramPassesVerification) {
  int with_control_flow = 0;
  int with_loops = 0;
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    Rng rng(split_seed(999, seed));
    const gen::GenKnobs knobs = gen::sample_knobs(rng);
    const ir::Program p = gen::generate_program(seed, knobs);
    const auto issues = ir::verify_issues(p);
    EXPECT_TRUE(issues.empty())
        << "seed " << seed << ": " << issues.front().message;
    ASSERT_GE(p.num_blocks(), 1u);
    if (p.num_blocks() > 1) ++with_control_flow;
    if (!p.loop_bounds().empty()) ++with_loops;
  }
  // A rare seed may roll pure straight-line code, but the population must
  // overwhelmingly exercise branching and loops or the fuzzer is toothless.
  EXPECT_GT(with_control_flow, 85);
  EXPECT_GT(with_loops, 50);
}

TEST(Generator, ProgramsRunWithinDeclaredLoopBounds) {
  const cache::NamedCacheConfig& named = cache::paper_cache_config("k7");
  const cache::MemTiming timing =
      energy::derive_timing(named.config, energy::TechNode::k45nm);
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    Rng rng(split_seed(1234, seed));
    const gen::GenKnobs knobs = gen::sample_knobs(rng);
    const ir::Program p = gen::generate_program(seed, knobs);
    const ir::Layout layout(p, named.config.block_bytes);
    cache::CacheSim cache_sim(named.config, timing);
    sim::Interpreter interp(p, layout, cache_sim);
    const auto run = interp.try_run();
    // A step-budget skip is acceptable; a loop-bound violation means the
    // generator emitted an unsound flow fact and must fail the suite.
    if (!run.ok()) {
      EXPECT_NE(run.status().code(), ErrorCode::kLoopBoundViolated)
          << "seed " << seed << ": " << run.status().message();
      EXPECT_EQ(run.status().code(), ErrorCode::kStepBudgetExhausted)
          << "seed " << seed << ": " << run.status().message();
    } else {
      EXPECT_GT(run->instructions, 0u);
    }
  }
}

TEST(Generator, KnobValidationRejectsBadInput) {
  gen::GenKnobs knobs;
  knobs.working_set_words = 100;  // not a power of two
  EXPECT_THROW(gen::generate_program(1, knobs), InvalidArgument);
  knobs = gen::GenKnobs{};
  knobs.max_loop_bound = 1;
  EXPECT_THROW(gen::generate_program(1, knobs), InvalidArgument);
}

TEST(Generator, BuildFaultSiteSurfacesAsInvalidArgument) {
  fault::ScopedFault fault("gen.build");
  EXPECT_THROW(gen::generate_program(1, gen::GenKnobs{}), InvalidArgument);
}

// The determinism the corpus and campaign rely on: two PROCESSES, same
// seed and knobs, byte-identical serialization. In-process determinism
// cannot see ASLR-dependent ordering bugs (pointer-keyed maps, hash seeds);
// this can.
TEST(Generator, TwoProcessDeterminism) {
  const std::string path = testing::TempDir() + "gen_two_proc." +
                           std::to_string(::getpid()) + ".txt";
  std::remove(path.c_str());

  auto generate_text = [] {
    Rng rng(split_seed(77, 0));
    const gen::GenKnobs knobs = gen::sample_knobs(rng);
    return ir::to_text(gen::generate_program(77, knobs));
  };

  const pid_t child = ::fork();
  ASSERT_GE(child, 0) << "fork failed";
  if (child == 0) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << generate_text();
    out.close();
    std::_Exit(out ? 0 : 1);
  }
  int wstatus = 0;
  ASSERT_EQ(::waitpid(child, &wstatus, 0), child);
  ASSERT_TRUE(WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 0);

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  const std::string from_child((std::istreambuf_iterator<char>(in)),
                               std::istreambuf_iterator<char>());
  EXPECT_EQ(from_child, generate_text());
  std::remove(path.c_str());
}

TEST(TextCodec, RoundTripsGeneratedPrograms) {
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    Rng rng(split_seed(5555, seed));
    const gen::GenKnobs knobs = gen::sample_knobs(rng);
    const ir::Program p = gen::generate_program(seed, knobs);
    const std::string text = ir::to_text(p);
    const ir::Program back = ir::from_text(text);
    // Canonical form: serialize(parse(text)) == text, byte for byte.
    EXPECT_EQ(ir::to_text(back), text) << "seed " << seed;
    EXPECT_TRUE(ir::verify_issues(back).empty());
    EXPECT_EQ(back.num_blocks(), p.num_blocks());
    EXPECT_EQ(back.data(), p.data());
  }
}

TEST(TextCodec, RejectsMalformedInput) {
  EXPECT_THROW(ir::from_text("not a program"), InvalidArgument);
  EXPECT_THROW(ir::from_text("# ucp-program v1\nentry 0\n"), InvalidArgument);
  EXPECT_THROW(
      ir::from_text("# ucp-program v1\nprogram p\nentry 0\nblock 0 a\n"
                    "  bogus_opcode r1 r2 r3\n"),
      InvalidArgument);
}

}  // namespace
}  // namespace ucp
