// cache_sizing: explores how small a cache the optimized binary can run on
// while matching the original's performance — the engineering use the
// paper's Figure 5 motivates ("energy reductions up to 21% with cache
// capacities 2 to 4 times smaller").
//
//   ./cache_sizing [program] [tech]

#include <iostream>
#include <string>

#include "cache/config.hpp"
#include "core/optimizer.hpp"
#include "energy/model.hpp"
#include "exp/harness.hpp"
#include "suite/suite.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace ucp;

  const std::string program_name = argc > 1 ? argv[1] : "fdct";
  const std::string tech_name = argc > 2 ? argv[2] : "32nm";
  const energy::TechNode tech =
      tech_name == "45nm" ? energy::TechNode::k45nm : energy::TechNode::k32nm;

  const ir::Program program = suite::build_benchmark(program_name);

  // Reference: the original binary on a 2KB 2-way cache with 16B blocks.
  const cache::CacheConfig reference{2, 16, 2048};
  const exp::Metrics base = exp::measure(program, reference, tech);

  std::cout << "program " << program_name << " @ " << tech_name
            << "; reference: original binary on " << reference.to_string()
            << "\n  ACET_mem " << base.run.mem_cycles << " cy, energy "
            << format_double(base.energy.total_nj(), 1) << " nJ, miss rate "
            << format_double(100.0 * base.miss_rate(), 2) << "%\n\n";

  TextTable table({"capacity", "prefetches", "ACET vs ref", "energy vs ref",
                   "miss rate", "verdict"});
  for (std::uint32_t capacity : {2048u, 1024u, 512u, 256u}) {
    const cache::CacheConfig small{2, 16, capacity};
    const cache::MemTiming timing = energy::derive_timing(small, tech);
    const core::OptimizationResult opt =
        core::optimize_prefetches(program, small, timing);
    const exp::Metrics m = exp::measure(opt.program, small, tech);

    const double acet_ratio = static_cast<double>(m.run.mem_cycles) /
                              static_cast<double>(base.run.mem_cycles);
    const double energy_ratio =
        m.energy.total_nj() / base.energy.total_nj();
    table.add_row(
        {std::to_string(capacity) + " B",
         std::to_string(opt.report.insertions.size()),
         format_double(acet_ratio, 3), format_double(energy_ratio, 3),
         format_double(100.0 * m.miss_rate(), 2) + "%",
         acet_ratio <= 1.0 ? "sustains performance" : "slower than ref"});
  }
  table.print(std::cout);
  std::cout << "\nratios < 1 in the energy column with 'sustains "
               "performance' reproduce the Figure 5 shaded region.\n";
  return 0;
}
