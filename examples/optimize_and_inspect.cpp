// optimize_and_inspect: shows exactly what the optimizer did to a program —
// every inserted prefetch with its target block, profit and slack — and
// dumps the optimized CFG in DOT next to the original.
//
//   ./optimize_and_inspect [program] [config-id] [tech]

#include <iostream>
#include <string>

#include "cache/config.hpp"
#include "core/optimizer.hpp"
#include "energy/model.hpp"
#include "ir/dot.hpp"
#include "ir/layout.hpp"
#include "suite/suite.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace ucp;

  const std::string program_name = argc > 1 ? argv[1] : "matmult";
  const std::string config_id = argc > 2 ? argv[2] : "k2";
  const std::string tech_name = argc > 3 ? argv[3] : "45nm";
  const bool dump_dot = argc > 4 && std::string(argv[4]) == "--dot";
  const energy::TechNode tech =
      tech_name == "45nm" ? energy::TechNode::k45nm : energy::TechNode::k32nm;

  const ir::Program program = suite::build_benchmark(program_name);
  const auto& named = cache::paper_cache_config(config_id);
  const cache::MemTiming timing = energy::derive_timing(named.config, tech);

  const core::OptimizationResult opt =
      core::optimize_prefetches(program, named.config, timing);

  std::cout << "program " << program_name << " on " << named.id << " "
            << named.config.to_string() << " @ " << tech_name << "\n";
  std::cout << "tau_w: " << opt.report.tau_original << " -> "
            << opt.report.tau_optimized << " cycles ("
            << format_pct_change(opt.report.wcet_ratio()) << ")\n";
  std::cout << "passes " << opt.report.passes << ", candidates "
            << opt.report.candidates_found << ", evaluated "
            << opt.report.candidates_evaluated << ", rejected "
            << opt.report.rejected_ineffective << " ineffective + "
            << opt.report.rejected_unprofitable << " unprofitable\n\n";

  const ir::Layout layout(opt.program, named.config.block_bytes);
  TextTable table({"#", "inserted in", "target instr", "target mem block",
                   "profit (cycles)", "slack (cycles)"});
  std::size_t n = 0;
  for (const core::PrefetchRecord& rec : opt.report.insertions) {
    table.add_row({std::to_string(++n),
                   "bb" + std::to_string(rec.block),
                   "#" + std::to_string(rec.target_instr),
                   "s" + std::to_string(layout.mem_block(rec.target_instr)),
                   std::to_string(rec.profit_tau),
                   std::to_string(rec.slack)});
  }
  if (n == 0) {
    std::cout << "no profitable prefetches for this configuration\n";
  } else {
    table.print(std::cout);
  }

  if (dump_dot) {
    std::cout << "\n--- original CFG (DOT) ---\n" << ir::to_dot(program);
    std::cout << "\n--- optimized CFG (DOT) ---\n" << ir::to_dot(opt.program);
  }
  return 0;
}
