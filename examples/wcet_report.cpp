// wcet_report: static-analysis deep dive for one program — VIVU contexts,
// per-context hit/miss classification totals, the IPET solution, and the
// WCET path with its misses and evictors. This is the view a real-time
// engineer uses to understand where the memory WCET comes from.
//
//   ./wcet_report [program] [config-id] [tech]

#include <iostream>
#include <string>

#include "analysis/cache_analysis.hpp"
#include "analysis/context_graph.hpp"
#include "analysis/persistence.hpp"
#include "cache/config.hpp"
#include "core/wcet_path.hpp"
#include "energy/model.hpp"
#include "ir/layout.hpp"
#include "suite/suite.hpp"
#include "support/table.hpp"
#include "wcet/ipet.hpp"

int main(int argc, char** argv) {
  using namespace ucp;

  const std::string program_name = argc > 1 ? argv[1] : "insertsort";
  const std::string config_id = argc > 2 ? argv[2] : "k1";
  const std::string tech_name = argc > 3 ? argv[3] : "45nm";
  const energy::TechNode tech =
      tech_name == "45nm" ? energy::TechNode::k45nm : energy::TechNode::k32nm;

  const ir::Program program = suite::build_benchmark(program_name);
  const auto& named = cache::paper_cache_config(config_id);
  const cache::CacheConfig& config = named.config;
  const cache::MemTiming timing = energy::derive_timing(config, tech);

  const ir::Layout layout(program, config.block_bytes);
  const analysis::ContextGraph graph(program);
  const analysis::CacheAnalysisResult cls =
      analysis::analyze_cache(graph, layout, config);
  const wcet::WcetResult wcet = wcet::compute_wcet(graph, cls, timing);

  std::cout << "program " << program_name << ": " << program.num_blocks()
            << " blocks, " << program.instruction_count() << " instructions, "
            << layout.code_bytes() << " bytes of code\n";
  std::cout << "cache " << named.id << " " << config.to_string() << " @ "
            << tech_name << ": hit " << timing.hit_cycles << " cy, miss "
            << timing.miss_cycles << " cy, prefetch latency "
            << timing.prefetch_latency << " cy\n\n";

  std::cout << "VIVU expansion: " << graph.num_nodes() << " context nodes, "
            << graph.edges().size() << " edges, "
            << graph.loop_instances().size() << " loop instances\n";
  std::cout << "classification: "
            << cls.count(analysis::Classification::kAlwaysHit) << " AH / "
            << cls.count(analysis::Classification::kAlwaysMiss) << " AM / "
            << cls.count(analysis::Classification::kNotClassified)
            << " NC references\n";
  std::cout << "IPET: tau_w = " << wcet.tau_mem << " memory cycles\n";
  std::cout << "persistence gain over must/may: "
            << analysis::persistence_gain(graph, program, layout, config)
            << " references promotable to first-miss\n\n";

  // Per-loop-instance worst-case counts.
  TextTable loops({"loop header", "context", "bound", "n_w(first)",
                   "n_w(rest)"});
  for (const analysis::LoopInstance& inst : graph.loop_instances()) {
    loops.add_row(
        {"bb" + std::to_string(inst.header),
         analysis::context_to_string(inst.parent_ctx),
         std::to_string(inst.bound),
         std::to_string(wcet.node_counts[inst.first_node]),
         inst.rest_node == analysis::kInvalidNode
             ? "-"
             : std::to_string(wcet.node_counts[inst.rest_node])});
  }
  if (loops.rows() > 0) {
    std::cout << "loop instances:\n";
    loops.print(std::cout);
  }

  // WCET path summary: the replaced-block misses the optimizer would target.
  const core::WcetPath path =
      core::build_wcet_path(graph, program, layout, config, timing, cls, wcet);
  std::size_t misses = 0, with_evictor = 0;
  for (const core::PathRef& ref : path.refs) {
    if (!ref.path_miss) continue;
    ++misses;
    if (ref.evictor >= 0) ++with_evictor;
  }
  std::cout << "\nWCET path: " << path.refs.size() << " references, "
            << misses << " misses, " << with_evictor
            << " caused by an identifiable eviction (prefetch candidates)\n";
  return 0;
}
