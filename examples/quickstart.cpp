// Quickstart: optimize one program for one cache configuration and print
// every metric the paper reports for a use case.
//
//   ./quickstart [program] [config-id] [tech]
//   e.g. ./quickstart crc k7 32nm

#include <iostream>
#include <string>

#include "cache/config.hpp"
#include "energy/model.hpp"
#include "exp/harness.hpp"
#include "suite/suite.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace ucp;

  const std::string program_name = argc > 1 ? argv[1] : "crc";
  const std::string config_id = argc > 2 ? argv[2] : "k7";
  const std::string tech_name = argc > 3 ? argv[3] : "32nm";
  const energy::TechNode tech =
      tech_name == "45nm" ? energy::TechNode::k45nm : energy::TechNode::k32nm;

  const ir::Program program = suite::build_benchmark(program_name);
  const cache::NamedCacheConfig& config = cache::paper_cache_config(config_id);

  std::cout << "program: " << program_name << "  cache " << config.id << " "
            << config.config.to_string() << "  tech " << tech_name << "\n\n";

  const exp::UseCaseResult r =
      exp::run_use_case(program, program_name, config, tech);

  TextTable table({"metric", "original", "optimized", "ratio"});
  auto row = [&](const std::string& name, double o, double p) {
    table.add_row({name, format_double(o, 1), format_double(p, 1),
                   format_double(o == 0 ? 1.0 : p / o, 4)});
  };
  row("WCET mem cycles (tau_w)", static_cast<double>(r.original.tau_wcet),
      static_cast<double>(r.optimized.tau_wcet));
  row("ACET mem cycles (tau_a)",
      static_cast<double>(r.original.run.mem_cycles),
      static_cast<double>(r.optimized.run.mem_cycles));
  row("memory energy (nJ)", r.original.energy.total_nj(),
      r.optimized.energy.total_nj());
  row("miss rate (%)", 100.0 * r.original.miss_rate(),
      100.0 * r.optimized.miss_rate());
  row("instructions executed",
      static_cast<double>(r.original.run.instructions),
      static_cast<double>(r.optimized.run.instructions));
  row("code bytes", r.original.code_bytes, r.optimized.code_bytes);
  table.print(std::cout);

  std::cout << "\nprefetches inserted: " << r.report.insertions.size()
            << " (candidates " << r.report.candidates_found << ", rejected "
            << r.report.rejected_ineffective << " ineffective / "
            << r.report.rejected_cannot_survive << " cannot-survive / "
            << r.report.rejected_unprofitable << " unprofitable, passes "
            << r.report.passes << ")\n";
  std::cout << "Theorem 1 (tau_w must not increase): ratio = "
            << format_double(r.wcet_ratio(), 4)
            << (r.wcet_ratio() <= 1.0 + 1e-9 ? "  OK" : "  VIOLATED") << "\n";
  return 0;
}
