#pragma once

#include <cstdint>
#include <string>

#include "cache/config.hpp"
#include "sim/interpreter.hpp"

namespace ucp::energy {

/// Process technologies evaluated in the paper.
enum class TechNode : std::uint8_t { k45nm, k32nm };

std::string tech_name(TechNode node);

/// Analytical SRAM cache power/latency model standing in for CACTI 6.5
/// (documented substitution; see DESIGN.md §3). The trends CACTI exhibits
/// and the paper relies on are preserved:
///  - dynamic read energy grows sublinearly with capacity and associativity;
///  - leakage power grows ~linearly with capacity;
///  - 32nm has slightly lower dynamic energy but substantially *higher*
///    leakage share than 45nm — the effect that makes cache locking (longer
///    ACET) increasingly energy-hostile and motivates this paper.
struct CacheEnergyModel {
  double read_energy_nj = 0.0;   ///< per lookup (hit or miss probe)
  double fill_energy_nj = 0.0;   ///< per block fill (miss or prefetch)
  double leakage_mw = 0.0;       ///< static power of the SRAM array
  double access_time_ns = 0.0;   ///< lookup latency
};

/// Level-two memory (the paper's 128 MB DRAM).
struct DramModel {
  double access_energy_nj = 0.0;  ///< per block transfer
  double background_mw = 0.0;     ///< refresh + standby power
  double access_time_ns = 0.0;    ///< block fetch latency
};

CacheEnergyModel cache_model(const cache::CacheConfig& config, TechNode node);
DramModel dram_model(TechNode node, std::uint32_t block_bytes);

/// Processor clock assumed for both technologies (cycle <-> ns bridge).
inline constexpr double kClockGhz = 1.0;

/// Derives the simulator/WCET timing parameters from the physical model:
/// hit time from the cache lookup latency, miss time and prefetch latency Λ
/// from lookup + DRAM block fetch.
cache::MemTiming derive_timing(const cache::CacheConfig& config,
                               TechNode node);

/// Memory-system energy of one concrete run, split by component. This is
/// the quantity behind Inequation 10 / Figure 3.
struct EnergyBreakdown {
  double cache_dynamic_nj = 0.0;
  double dram_dynamic_nj = 0.0;
  double cache_static_nj = 0.0;
  double dram_static_nj = 0.0;

  double total_nj() const {
    return cache_dynamic_nj + dram_dynamic_nj + cache_static_nj +
           dram_static_nj;
  }
  double static_nj() const { return cache_static_nj + dram_static_nj; }
  double dynamic_nj() const { return cache_dynamic_nj + dram_dynamic_nj; }
};

/// Combines run counters with the physical model. Static power integrates
/// over the whole run (the cache leaks while the core computes too).
EnergyBreakdown memory_energy(const sim::RunMetrics& metrics,
                              const cache::CacheConfig& config, TechNode node);

}  // namespace ucp::energy
