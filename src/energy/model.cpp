#include "energy/model.hpp"

#include <cmath>

#include "support/check.hpp"

namespace ucp::energy {

std::string tech_name(TechNode node) {
  switch (node) {
    case TechNode::k45nm:
      return "45nm";
    case TechNode::k32nm:
      return "32nm";
  }
  UCP_CHECK_MSG(false, "unknown technology node");
}

namespace {

/// Per-node scaling factors relative to the 45nm baseline. Dynamic energy
/// shrinks with feature size; leakage grows — the paper's Section 2.3
/// premise ("cache locking tends to become less energy efficient as CMOS
/// technology scales down").
struct TechScale {
  double dynamic = 1.0;
  double leakage = 1.0;
  double delay = 1.0;
};

TechScale scale_of(TechNode node) {
  switch (node) {
    case TechNode::k45nm:
      return TechScale{1.0, 1.0, 1.0};
    case TechNode::k32nm:
      return TechScale{0.78, 1.9, 0.88};
  }
  UCP_CHECK_MSG(false, "unknown technology node");
}

}  // namespace

CacheEnergyModel cache_model(const cache::CacheConfig& config, TechNode node) {
  config.validate();
  const TechScale s = scale_of(node);
  const double kb = static_cast<double>(config.capacity_bytes) / 1024.0;
  const double assoc = static_cast<double>(config.assoc);
  const double block = static_cast<double>(config.block_bytes);

  CacheEnergyModel m;
  // Read energy: wordline/bitline energy grows ~sqrt(capacity); comparing
  // `assoc` tags and reading `assoc` candidate words adds a gentle factor.
  m.read_energy_nj = 0.008 * std::pow(kb, 0.55) * std::pow(assoc, 0.30) * s.dynamic;
  // A fill writes one whole block plus the tag.
  m.fill_energy_nj = 0.6 * m.read_energy_nj + 0.0004 * block * s.dynamic;
  // Leakage is proportional to the number of retained bits.
  m.leakage_mw = 0.28 * kb * s.leakage;
  // Decode + array + compare delay, growing slowly with size/ways.
  m.access_time_ns =
      (0.45 + 0.10 * std::log2(kb * 4.0) + 0.06 * (assoc - 1.0)) * s.delay;
  return m;
}

DramModel dram_model(TechNode node, std::uint32_t block_bytes) {
  const TechScale s = scale_of(node);
  DramModel m;
  // Activate + read of one cache block over a narrow embedded bus.
  m.access_energy_nj = (0.9 + 0.030 * static_cast<double>(block_bytes)) * s.dynamic;
  // 128MB LPDDR-class standby + self-refresh; technology-invariant here
  // (the DRAM is off-chip and does not scale with the logic node). The
  // large standby term is what makes runtime reductions pay off in energy —
  // the paper's Section 2.3 premise that static consumption punishes any
  // ACET increase.
  m.background_mw = 58.0;
  m.access_time_ns = 18.0 + 0.50 * static_cast<double>(block_bytes);
  return m;
}

cache::MemTiming derive_timing(const cache::CacheConfig& config,
                               TechNode node) {
  const CacheEnergyModel cm = cache_model(config, node);
  const DramModel dm = dram_model(node, config.block_bytes);

  cache::MemTiming t;
  t.hit_cycles = static_cast<std::uint32_t>(
      std::max(1.0, std::ceil(cm.access_time_ns * kClockGhz)));
  // A miss probes the cache, fetches the block from DRAM and forwards it.
  t.miss_cycles = t.hit_cycles +
                  static_cast<std::uint32_t>(
                      std::ceil(dm.access_time_ns * kClockGhz));
  // Λ: a prefetch follows the same path into the array.
  t.prefetch_latency = t.miss_cycles;
  t.validate();
  return t;
}

EnergyBreakdown memory_energy(const sim::RunMetrics& metrics,
                              const cache::CacheConfig& config,
                              TechNode node) {
  const CacheEnergyModel cm = cache_model(config, node);
  const DramModel dm = dram_model(node, config.block_bytes);

  const double seconds =
      static_cast<double>(metrics.total_cycles) / (kClockGhz * 1e9);

  EnergyBreakdown e;
  e.cache_dynamic_nj =
      static_cast<double>(metrics.cache.fetches) * cm.read_energy_nj +
      static_cast<double>(metrics.cache.misses +
                          metrics.cache.prefetch_fills) *
          cm.fill_energy_nj;
  e.dram_dynamic_nj =
      static_cast<double>(metrics.cache.level2_accesses()) *
      dm.access_energy_nj;
  // mW * s = mJ; convert to nJ.
  e.cache_static_nj = cm.leakage_mw * seconds * 1e6;
  e.dram_static_nj = dm.background_mw * seconds * 1e6;
  return e;
}

}  // namespace ucp::energy
