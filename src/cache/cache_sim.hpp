#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cache/config.hpp"

namespace ucp::cache {

/// What happened on a demand fetch.
enum class FetchKind : std::uint8_t {
  kHit,           ///< block resident and ready
  kMiss,          ///< block absent; fetched from level-two memory
  kLatePrefetch,  ///< block in flight from a prefetch; stalled for remainder
};

struct FetchResult {
  FetchKind kind = FetchKind::kHit;
  std::uint64_t cycles = 0;  ///< service time charged to this fetch
};

/// Counters exposed for ACET/energy accounting and the Figure 4 miss-rate
/// experiment.
struct CacheStats {
  std::uint64_t fetches = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t late_prefetch_hits = 0;  ///< subset of hits with stall > 0
  std::uint64_t stall_cycles = 0;        ///< cycles lost to late prefetches
  std::uint64_t evictions = 0;
  std::uint64_t prefetches_issued = 0;
  std::uint64_t prefetches_redundant = 0;  ///< target already resident
  std::uint64_t prefetch_fills = 0;        ///< level-two fills from prefetch
  std::uint64_t useful_prefetch_hits = 0;  ///< demand hits on prefetched data

  double miss_rate() const {
    return fetches == 0 ? 0.0
                        : static_cast<double>(misses) /
                              static_cast<double>(fetches);
  }
  /// Level-two accesses = demand misses + prefetch fills.
  std::uint64_t level2_accesses() const { return misses + prefetch_fills; }
};

/// Hardware sequential-prefetch policies of Section 2 (Smith's next-line
/// schemes), used as baselines against the paper's software prefetching.
enum class HwPrefetchPolicy : std::uint8_t {
  kNone,            ///< on-demand fetching only (the paper's baseline)
  kNextLineAlways,  ///< prefetch block+1 on every demand fetch
  kNextLineOnMiss,  ///< prefetch block+1 on every demand miss
  kNextLineTagged,  ///< prefetch block+1 on first touch of a block
};

std::string hw_prefetch_policy_name(HwPrefetchPolicy policy);

/// Concrete set-associative LRU instruction cache with a non-blocking
/// software-prefetch port, as assumed by the paper: `prefetch()` starts
/// loading a block without stalling the processor; the block becomes usable
/// Λ cycles later. A demand fetch that arrives early stalls only for the
/// remaining latency (the "prefetch buffer" behaviour of Section 1).
///
/// Optionally emulates the hardware next-line prefetchers of Section 2
/// (`HwPrefetchPolicy`) so the related-work baselines can be measured, and
/// supports way-locking (`lock_block`) for the cache-locking comparison the
/// paper's conclusions call for: locked blocks are never evicted or aged
/// out by fills.
///
/// Simplifications (documented in DESIGN.md): a prefetch allocates its way
/// immediately (evicting the LRU block at issue time), and at most one fill
/// per block is in flight (re-prefetching an in-flight block is a no-op).
class CacheSim {
 public:
  CacheSim(const CacheConfig& config, const MemTiming& timing,
           HwPrefetchPolicy hw_policy = HwPrefetchPolicy::kNone);

  /// Pre-loads `block` and pins it: it will never be evicted. Must be
  /// called before the run; fails if the set has no unlocked way left.
  /// Models static instruction-cache locking (no fetch cost charged — the
  /// lock-down happens at system start, as in the locking literature).
  void lock_block(MemBlockId block);
  std::uint32_t locked_ways(std::uint32_t set_index) const;

  /// Demand-fetches `block` at absolute time `now`; returns the outcome and
  /// the cycles this fetch takes (hit time, miss time, or remaining stall).
  FetchResult fetch(MemBlockId block, std::uint64_t now);

  /// Issues a software prefetch for `block` at time `now`. Never stalls.
  void prefetch(MemBlockId block, std::uint64_t now);

  /// True if `block` is resident (regardless of readiness).
  bool contains(MemBlockId block) const;
  /// Ready time if the block is resident and still in flight.
  std::optional<std::uint64_t> ready_at(MemBlockId block) const;

  /// Blocks of one set from most- to least-recently used (tests/debugging).
  std::vector<MemBlockId> set_contents(std::uint32_t set_index) const;

  const CacheStats& stats() const { return stats_; }
  const CacheConfig& config() const { return config_; }
  const MemTiming& timing() const { return timing_; }

  /// Empties the cache and clears statistics.
  void reset();

 private:
  struct Way {
    bool valid = false;
    bool locked = false;
    MemBlockId block = 0;
    std::uint64_t ready_at = 0;
    bool from_prefetch = false;
    bool prefetch_used = false;
  };

  /// Ways of one set ordered MRU-first.
  struct Set {
    std::vector<Way> ways;
  };

  Way* find(MemBlockId block);
  const Way* find(MemBlockId block) const;
  /// Moves the way holding `block` to MRU position within its set.
  void touch(std::uint32_t set_index, std::size_t way_index);
  /// Victimizes the LRU *unlocked* way of the set and installs `block` as
  /// MRU; returns nullptr when every way is locked (fetch bypass).
  Way* install(MemBlockId block, std::uint64_t ready_at, bool from_prefetch);

  /// Fires the configured hardware next-line policy after a demand fetch.
  void hw_prefetch_after(MemBlockId block, bool was_miss, bool first_touch,
                         std::uint64_t now);

  CacheConfig config_;
  MemTiming timing_;
  HwPrefetchPolicy hw_policy_;
  std::vector<Set> sets_;
  CacheStats stats_;
  /// Marks `block` as demand-fetched; returns true on the first touch.
  /// Backed by a grow-on-demand bitset — this runs on *every* fetch, and a
  /// red-black tree insert there dominated simulation profiles.
  bool mark_touched(MemBlockId block);

  /// One bit per memory block demand-fetched at least once (for the tagged
  /// next-line policy). Program images are contiguous and start near block
  /// 0, so the bitset stays a few words long.
  std::vector<std::uint64_t> touched_bits_;
};

}  // namespace ucp::cache
