#include "cache/cache_sim.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace ucp::cache {

std::string hw_prefetch_policy_name(HwPrefetchPolicy policy) {
  switch (policy) {
    case HwPrefetchPolicy::kNone:
      return "on-demand";
    case HwPrefetchPolicy::kNextLineAlways:
      return "next-line-always";
    case HwPrefetchPolicy::kNextLineOnMiss:
      return "next-line-on-miss";
    case HwPrefetchPolicy::kNextLineTagged:
      return "next-line-tagged";
  }
  UCP_CHECK_MSG(false, "unknown hardware prefetch policy");
}

CacheSim::CacheSim(const CacheConfig& config, const MemTiming& timing,
                   HwPrefetchPolicy hw_policy)
    : config_(config), timing_(timing), hw_policy_(hw_policy) {
  config_.validate();
  timing_.validate();
  sets_.resize(config_.num_sets());
  for (Set& s : sets_) s.ways.resize(config_.assoc);
}

void CacheSim::lock_block(MemBlockId block) {
  UCP_REQUIRE(find(block) == nullptr, "block already resident");
  auto& ways = sets_[config_.set_of(block)].ways;
  for (auto it = ways.rbegin(); it != ways.rend(); ++it) {
    if (it->valid) continue;
    it->valid = true;
    it->locked = true;
    it->block = block;
    it->ready_at = 0;
    return;
  }
  throw InvalidArgument("no free way left to lock block " +
                        std::to_string(block));
}

std::uint32_t CacheSim::locked_ways(std::uint32_t set_index) const {
  UCP_REQUIRE(set_index < sets_.size(), "set index out of range");
  std::uint32_t n = 0;
  for (const Way& w : sets_[set_index].ways)
    if (w.valid && w.locked) ++n;
  return n;
}

CacheSim::Way* CacheSim::find(MemBlockId block) {
  Set& set = sets_[config_.set_of(block)];
  for (Way& w : set.ways) {
    if (w.valid && w.block == block) return &w;
  }
  return nullptr;
}

const CacheSim::Way* CacheSim::find(MemBlockId block) const {
  const Set& set = sets_[config_.set_of(block)];
  for (const Way& w : set.ways) {
    if (w.valid && w.block == block) return &w;
  }
  return nullptr;
}

void CacheSim::touch(std::uint32_t set_index, std::size_t way_index) {
  auto& ways = sets_[set_index].ways;
  UCP_CHECK(way_index < ways.size());
  const Way moved = ways[way_index];
  ways.erase(ways.begin() + static_cast<std::ptrdiff_t>(way_index));
  ways.insert(ways.begin(), moved);
}

CacheSim::Way* CacheSim::install(MemBlockId block, std::uint64_t ready_at,
                                 bool from_prefetch) {
  auto& ways = sets_[config_.set_of(block)].ways;
  // Victim: least recently used way that is not locked.
  std::ptrdiff_t victim = -1;
  for (std::ptrdiff_t i = static_cast<std::ptrdiff_t>(ways.size()) - 1;
       i >= 0; --i) {
    if (!ways[static_cast<std::size_t>(i)].locked) {
      victim = i;
      break;
    }
  }
  if (victim < 0) return nullptr;  // fully locked set: bypass
  if (ways[static_cast<std::size_t>(victim)].valid) ++stats_.evictions;
  ways.erase(ways.begin() + victim);
  Way w;
  w.valid = true;
  w.block = block;
  w.ready_at = ready_at;
  w.from_prefetch = from_prefetch;
  w.prefetch_used = false;
  ways.insert(ways.begin(), w);
  return &ways.front();
}

bool CacheSim::mark_touched(MemBlockId block) {
  const std::size_t word = block >> 6;
  const std::uint64_t bit = 1ull << (block & 63);
  if (word >= touched_bits_.size()) touched_bits_.resize(word + 1, 0);
  if (touched_bits_[word] & bit) return false;
  touched_bits_[word] |= bit;
  return true;
}

FetchResult CacheSim::fetch(MemBlockId block, std::uint64_t now) {
  ++stats_.fetches;
  const std::uint32_t set_index = config_.set_of(block);
  auto& ways = sets_[set_index].ways;

  const bool first_touch = mark_touched(block);

  for (std::size_t i = 0; i < ways.size(); ++i) {
    Way& w = ways[i];
    if (!w.valid || w.block != block) continue;
    FetchResult result;
    if (w.ready_at > now) {
      // In flight: stall for the remainder, then serve like a hit.
      const std::uint64_t stall = w.ready_at - now;
      result.kind = FetchKind::kLatePrefetch;
      result.cycles = stall + timing_.hit_cycles;
      stats_.stall_cycles += stall;
      ++stats_.late_prefetch_hits;
      ++stats_.hits;
    } else {
      result.kind = FetchKind::kHit;
      result.cycles = timing_.hit_cycles;
      ++stats_.hits;
    }
    if (w.from_prefetch && !w.prefetch_used) {
      w.prefetch_used = true;
      ++stats_.useful_prefetch_hits;
    }
    touch(set_index, i);
    hw_prefetch_after(block, /*was_miss=*/false, first_touch, now);
    return result;
  }

  // Demand miss: fetch from level-two memory, install as MRU, serve. The
  // fetched word is forwarded as the fill completes, so the block is usable
  // right after the charged miss service time (ready_at = 0).
  ++stats_.misses;
  if (Way* w = install(block, 0, /*from_prefetch=*/false)) {
    (void)w;
  }
  hw_prefetch_after(block, /*was_miss=*/true, first_touch,
                    now + timing_.miss_cycles);
  return FetchResult{FetchKind::kMiss, timing_.miss_cycles};
}

void CacheSim::prefetch(MemBlockId block, std::uint64_t now) {
  ++stats_.prefetches_issued;
  if (Way* w = find(block)) {
    // Already resident (possibly still in flight): refresh recency only.
    ++stats_.prefetches_redundant;
    auto& ways = sets_[config_.set_of(block)].ways;
    const auto idx = static_cast<std::size_t>(w - ways.data());
    touch(config_.set_of(block), idx);
    return;
  }
  if (install(block, now + timing_.prefetch_latency, true) != nullptr) {
    ++stats_.prefetch_fills;
  }
}

void CacheSim::hw_prefetch_after(MemBlockId block, bool was_miss,
                                 bool first_touch, std::uint64_t now) {
  bool fire = false;
  switch (hw_policy_) {
    case HwPrefetchPolicy::kNone:
      break;
    case HwPrefetchPolicy::kNextLineAlways:
      fire = true;
      break;
    case HwPrefetchPolicy::kNextLineOnMiss:
      fire = was_miss;
      break;
    case HwPrefetchPolicy::kNextLineTagged:
      fire = first_touch;
      break;
  }
  if (fire) prefetch(block + 1, now);
}

bool CacheSim::contains(MemBlockId block) const {
  return find(block) != nullptr;
}

std::optional<std::uint64_t> CacheSim::ready_at(MemBlockId block) const {
  const Way* w = find(block);
  if (w == nullptr) return std::nullopt;
  return w->ready_at;
}

std::vector<MemBlockId> CacheSim::set_contents(std::uint32_t set_index) const {
  UCP_REQUIRE(set_index < sets_.size(), "set index out of range");
  std::vector<MemBlockId> out;
  for (const Way& w : sets_[set_index].ways) {
    if (w.valid) out.push_back(w.block);
  }
  return out;
}

void CacheSim::reset() {
  for (Set& s : sets_) {
    s.ways.assign(config_.assoc, Way{});
  }
  stats_ = CacheStats{};
  touched_bits_.clear();
}

}  // namespace ucp::cache
