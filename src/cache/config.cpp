#include "cache/config.hpp"

#include <sstream>

#include "support/check.hpp"

namespace ucp::cache {

namespace {
bool is_pow2(std::uint32_t x) { return x != 0 && (x & (x - 1)) == 0; }
}  // namespace

void CacheConfig::validate() const {
  UCP_REQUIRE(is_pow2(assoc), "associativity must be a power of two");
  UCP_REQUIRE(is_pow2(block_bytes), "block size must be a power of two");
  UCP_REQUIRE(is_pow2(capacity_bytes), "capacity must be a power of two");
  UCP_REQUIRE(capacity_bytes % (assoc * block_bytes) == 0,
              "capacity must be a multiple of assoc * block size");
  UCP_REQUIRE(num_sets() >= 1, "cache must have at least one set");
}

std::string CacheConfig::to_string() const {
  std::ostringstream os;
  os << "(" << assoc << ", " << block_bytes << ", " << capacity_bytes << ")";
  return os.str();
}

const std::vector<NamedCacheConfig>& paper_cache_configs() {
  static const std::vector<NamedCacheConfig> configs = [] {
    std::vector<NamedCacheConfig> v;
    int next_id = 1;
    for (std::uint32_t capacity : {256u, 512u, 1024u, 2048u, 4096u, 8192u}) {
      for (std::uint32_t block : {16u, 32u}) {
        for (std::uint32_t assoc : {1u, 2u, 4u}) {
          NamedCacheConfig named;
          named.id = std::string("k") + std::to_string(next_id++);
          named.config = CacheConfig{assoc, block, capacity};
          named.config.validate();
          v.push_back(std::move(named));
        }
      }
    }
    return v;
  }();
  return configs;
}

const NamedCacheConfig& paper_cache_config(const std::string& id) {
  for (const NamedCacheConfig& named : paper_cache_configs()) {
    if (named.id == id) return named;
  }
  throw InvalidArgument("unknown cache configuration id: " + id);
}

void MemTiming::validate() const {
  UCP_REQUIRE(hit_cycles >= 1, "hit time must be at least one cycle");
  UCP_REQUIRE(miss_cycles > hit_cycles, "miss must be slower than hit");
  UCP_REQUIRE(prefetch_latency >= 1, "prefetch latency must be positive");
}

}  // namespace ucp::cache
