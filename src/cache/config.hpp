#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ucp::cache {

/// Memory block index in instruction memory (address / block_bytes).
using MemBlockId = std::uint32_t;

/// One instruction-cache configuration, denoted k = (a, b, c) in the paper:
/// associativity `a`, block (line) size `b` in bytes, capacity `c` in bytes.
struct CacheConfig {
  std::uint32_t assoc = 1;
  std::uint32_t block_bytes = 16;
  std::uint32_t capacity_bytes = 256;

  std::uint32_t num_sets() const {
    return capacity_bytes / (assoc * block_bytes);
  }
  std::uint32_t num_blocks() const { return capacity_bytes / block_bytes; }
  std::uint32_t set_of(MemBlockId mem_block) const {
    return mem_block % num_sets();
  }

  /// Validates power-of-two geometry and at least one set.
  void validate() const;

  std::string to_string() const;

  friend bool operator==(const CacheConfig&, const CacheConfig&) = default;
};

/// A configuration with its paper label (k1..k36).
struct NamedCacheConfig {
  std::string id;
  CacheConfig config;
};

/// The 36 configurations of Table 2: a ∈ {1,2,4}, b ∈ {16,32} bytes,
/// c ∈ {256, 512, 1024, 2048, 4096, 8192} bytes, labelled k1..k36 in the
/// paper's order (capacity-major, then block size, then associativity).
const std::vector<NamedCacheConfig>& paper_cache_configs();

/// Convenience lookup by label ("k7"); throws InvalidArgument if unknown.
const NamedCacheConfig& paper_cache_config(const std::string& id);

/// Memory-system timing used by both the concrete simulator and the WCET
/// analysis. All values in processor cycles.
struct MemTiming {
  std::uint32_t hit_cycles = 1;        ///< I-cache hit service time
  std::uint32_t miss_cycles = 40;      ///< demand miss service time (L2/DRAM)
  std::uint32_t prefetch_latency = 40; ///< Λ: time for a prefetch to land

  void validate() const;
};

}  // namespace ucp::cache
