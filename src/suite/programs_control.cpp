// Control-dominated kernels of the Mälardalen-like suite, including the two
// large generated automata (nsichneu, statemate) that stress instruction
// caches with long chains of guarded updates.

#include "ir/builder.hpp"
#include "suite/suite.hpp"

namespace ucp::suite::programs {

using ir::Cond;
using ir::IrBuilder;
using ir::R;

/// compress: run-length encodes data[0..49] into (value, count) pairs at
/// data[64..], then decompresses into data[140..189] and verifies.
/// Results: data[63] = number of pairs, data[62] = mismatches (must be 0).
ir::Program compress() {
  IrBuilder b("compress");
  const auto i = R(1), v = R(2), run = R(3), cur = R(4), outp = R(5),
             n = R(6), pairs = R(7), t = R(8), zero = R(9);

  b.movi(n, 50);
  b.movi(outp, 64);
  b.movi(pairs, 0);
  b.movi(i, 0);
  b.movi(zero, 0);

  b.while_loop(
      50, [&] { return IrBuilder::LoopCond{Cond::kLt, i, n}; },
      [&] {
        b.load(cur, i, 0);
        b.movi(run, 1);
        b.addi(i, i, 1);
        b.while_loop(
            50,
            [&] {
              // continue while i < n and data[i] == cur; guarded by reading
              // the sentinel slot data[50] (!= any value) when i == n.
              b.load(v, i, 0);
              b.sub(t, v, cur);
              return IrBuilder::LoopCond{Cond::kEq, t, zero};
            },
            [&] {
              b.addi(run, run, 1);
              b.addi(i, i, 1);
            });
        b.store(outp, 0, cur);
        b.store(outp, 1, run);
        b.addi(outp, outp, 2);
        b.addi(pairs, pairs, 1);
      });
  b.movi(t, 63);
  b.store(t, 0, pairs);

  // Decompress into data[140..189] and verify against the input.
  const auto dst = R(11), r = R(12), bad = R(13), two = R(14);
  b.movi(two, 2);
  b.movi(dst, 140);
  b.for_range_reg(i, 0, pairs, 20, [&] {
    b.mul(t, i, two);
    b.addi(t, t, 64);
    b.load(cur, t, 0);
    b.load(run, t, 1);
    b.for_range_reg(r, 0, run, 12, [&] {
      b.store(dst, 0, cur);
      b.addi(dst, dst, 1);
    });
  });
  b.movi(bad, 0);
  b.for_range(i, 0, 50, [&] {
    b.load(v, i, 0);
    b.load(t, i, 140);
    b.if_then(Cond::kNe, v, t, [&] { b.addi(bad, bad, 1); });
  });
  b.movi(t, 62);
  b.store(t, 0, bad);
  b.halt();

  std::vector<std::int64_t> data(200, 0);
  const int runs[][2] = {{5, 7}, {2, 3}, {9, 12}, {1, 1}, {4, 8},
                         {6, 9}, {3, 5}, {8, 4},  {2, 1}};
  std::size_t pos = 0;
  for (const auto& rv : runs)
    for (int r = 0; r < rv[1] && pos < 50; ++r)
      data[pos++] = rv[0];
  while (pos < 50) data[pos++] = 11;
  data[50] = -424242;  // sentinel: never equals a sample value
  b.set_data(std::move(data));
  return b.take();
}

/// cover: three long switch cascades driven by different residues of the
/// loop counter — many short basic blocks, the paper's many-paths stressor.
/// Result: data[0] = accumulated tag value.
ir::Program cover() {
  IrBuilder b("cover");
  const auto i = R(1), sel = R(2), acc = R(3), m1 = R(4), out = R(5);

  auto cases = [&](int count, int mul) {
    std::vector<std::pair<std::int64_t, IrBuilder::Body>> cs;
    for (int c = 0; c < count; ++c) {
      cs.emplace_back(c, [&b, &acc, c, mul] {
        b.addi(acc, acc, c * mul + 1);
        b.addi(acc, acc, (c * 7) % 5);
      });
    }
    return cs;
  };

  // Three separate scan loops over wide switches, like the generated
  // original (swi120/swi50/swi10), driven twice from the outer harness.
  b.movi(acc, 0);
  b.for_range(R(28), 0, 2, [&] {
  b.for_range(i, 0, 60, [&] {
    b.movi(m1, 20);
    b.rem(sel, i, m1);
    b.switch_on(sel, cases(20, 3), [&] { b.addi(acc, acc, -7); });
  });
  b.for_range(i, 0, 30, [&] {
    b.movi(m1, 15);
    b.rem(sel, i, m1);
    b.switch_on(sel, cases(15, 5), [&] { b.addi(acc, acc, -11); });
  });
  b.for_range(i, 0, 30, [&] {
    b.movi(m1, 12);
    b.rem(sel, i, m1);
    b.switch_on(sel, cases(12, 2), [&] { b.addi(acc, acc, -13); });
  });
  });  // harness loop
  b.movi(out, 0);
  b.store(out, 0, acc);
  b.halt();

  b.set_data({0});
  return b.take();
}

/// crc: CRC-16 (poly 0xA001, reflected) over the 40-byte message at
/// data[0..39], computed twice — bitwise, and via a generated 256-entry
/// lookup table (as icrc.c does) — and cross-checked.
/// Results: data[40] = bitwise crc, data[41] = table crc, data[42] = equal?
ir::Program crc() {
  IrBuilder b("crc");
  const auto i = R(1), bit = R(2), crcr = R(3), byte = R(4), one = R(5),
             poly = R(6), t = R(7), out = R(8), mask = R(9), c = R(10),
             tblbase = R(11), idx = R(12), eight = R(13), m8 = R(14),
             crc2 = R(15), eq = R(16);

  b.movi(one, 1);
  b.movi(poly, 0xA001);
  b.movi(mask, 0xffff);
  b.movi(eight, 8);
  b.movi(m8, 0xff);
  b.movi(tblbase, 64);

  // icrc.c computes the CRC twice (it is called with two passes); the
  // outer loop keeps all three phases live together.
  b.for_range(R(28), 0, 2, [&] {
  // Phase 1: bitwise CRC.
  b.movi(crcr, 0xffff);
  b.for_range(i, 0, 40, [&] {
    b.load(byte, i, 0);
    b.xor_(crcr, crcr, byte);
    b.for_range(bit, 0, 8, [&] {
      b.and_(t, crcr, one);
      b.shr(crcr, crcr, one);
      b.if_then(Cond::kEq, t, one, [&] { b.xor_(crcr, crcr, poly); });
      b.and_(crcr, crcr, mask);
    });
  });

  // Phase 2: generate the 256-entry table at data[64..319].
  b.for_range(i, 0, 256, [&] {
    b.mov(c, i);
    b.for_range(bit, 0, 8, [&] {
      b.and_(t, c, one);
      b.shr(c, c, one);
      b.if_then(Cond::kEq, t, one, [&] { b.xor_(c, c, poly); });
    });
    b.add(t, tblbase, i);
    b.store(t, 0, c);
  });

  // Phase 3: table-driven CRC.
  b.movi(crc2, 0xffff);
  b.for_range(i, 0, 40, [&] {
    b.load(byte, i, 0);
    b.xor_(idx, crc2, byte);
    b.and_(idx, idx, m8);
    b.shr(crc2, crc2, eight);
    b.add(t, tblbase, idx);
    b.load(t, t, 0);
    b.xor_(crc2, crc2, t);
    b.and_(crc2, crc2, mask);
  });

  b.movi(eq, 0);
  b.if_then(Cond::kEq, crcr, crc2, [&] { b.movi(eq, 1); });
  });  // two-pass loop
  b.movi(out, 40);
  b.store(out, 0, crcr);
  b.store(out, 1, crc2);
  b.store(out, 2, eq);
  b.halt();

  std::vector<std::int64_t> data(320, 0);
  for (int q = 0; q < 40; ++q)
    data[static_cast<std::size_t>(q)] = (q * 57 + 13) % 256;
  b.set_data(std::move(data));
  return b.take();
}

/// duff: word copy of 43 items with an 8x unrolled main loop plus a
/// remainder switch — a reducible re-expression of Duff's device (the
/// original's jump-into-loop is irreducible; see DESIGN.md).
/// Copies data[0..42] to data[64..106]; data[120] = items copied.
ir::Program duff() {
  IrBuilder b("duff");
  const auto i = R(1), j = R(2), v = R(3), n = R(4), eight = R(5),
             full = R(6), remn = R(7), t = R(8), out = R(9), done = R(10);

  b.movi(n, 43);
  b.movi(eight, 8);
  b.div(full, n, eight);   // 5 full groups
  b.rem(remn, n, eight);   // remainder 3
  b.movi(done, 0);

  b.for_range_reg(i, 0, full, 6, [&] {
    b.mul(t, i, eight);
    // 8 unrolled copies
    for (int u = 0; u < 8; ++u) {
      b.load(v, t, u);
      b.store(t, 64 + u, v);
    }
    b.addi(done, done, 8);
  });
  // remainder loop (the switch arms of Duff collapse to this bound-7 loop)
  b.mul(t, full, eight);
  b.for_range_reg(j, 0, remn, 7, [&] {
    b.add(R(11), t, j);
    b.load(v, R(11), 0);
    b.store(R(11), 64, v);
    b.addi(done, done, 1);
  });
  b.movi(out, 120);
  b.store(out, 0, done);
  b.halt();

  std::vector<std::int64_t> data(121, 0);
  for (int q = 0; q < 43; ++q)
    data[static_cast<std::size_t>(q)] = q * q % 97;
  b.set_data(std::move(data));
  return b.take();
}

/// lcdnum: maps the ten digits at data[0..9] to 7-segment masks via a
/// switch, accumulating the masks. Results: data[10..19] = masks,
/// data[20] = OR of all masks.
ir::Program lcdnum() {
  IrBuilder b("lcdnum");
  const auto i = R(1), d = R(2), seg = R(3), all = R(4), out = R(5);

  static const std::int64_t kSegs[10] = {0x3f, 0x06, 0x5b, 0x4f, 0x66,
                                         0x6d, 0x7d, 0x07, 0x7f, 0x6f};
  b.movi(all, 0);
  b.for_range(i, 0, 10, [&] {
    b.load(d, i, 0);
    std::vector<std::pair<std::int64_t, IrBuilder::Body>> cs;
    for (int digit = 0; digit < 10; ++digit) {
      cs.emplace_back(digit, [&b, &seg, digit] {
        b.movi(seg, kSegs[digit]);
      });
    }
    b.switch_on(d, cs, [&] { b.movi(seg, 0); });
    b.store(i, 10, seg);
    b.or_(all, all, seg);
  });
  b.movi(out, 20);
  b.store(out, 0, all);
  b.halt();

  b.set_data({3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0});
  return b.take();
}

/// ndes: DES-like cipher: 16-subkey schedule, 16 Feistel rounds of
/// expansion + S-box substitution (table at data[64..127]) + permutation
/// over two 32-bit halves, and an output swizzle.
/// Results: data[0] = left, data[1] = right, data[2] = swizzle checksum.
ir::Program ndes() {
  IrBuilder b("ndes");
  const auto round = R(1), left = R(2), right = R(3), f = R(4), t = R(5),
             k = R(6), idx = R(7), mask6 = R(8), sh = R(9), out = R(10),
             chunk = R(11), sum = R(12), mask32 = R(13);

  b.movi(mask6, 63);
  b.movi(mask32, 0xffffffffLL);
  b.movi(out, 0);

  // Encrypt two chained blocks (the second round re-encrypts the first's
  // output), as ndes.c's driver does over its message words.
  b.for_range(R(28), 0, 2, [&] {
  b.load(left, out, 0);
  b.load(right, out, 1);

  // Key schedule: 16 subkeys at data[128..143], derived by rotate/xor.
  const auto ks = R(14), kv = R(15), one = R(16), r27 = R(17);
  b.movi(kv, 0x1a2b3c4d);
  b.movi(one, 1);
  b.movi(r27, 27);
  b.for_range(round, 0, 16, [&] {
    b.shl(t, kv, one);
    b.shr(ks, kv, r27);
    b.or_(kv, t, ks);
    b.and_(kv, kv, mask32);
    b.xor_(kv, kv, round);
    b.store(round, 128, kv);
  });

  // 16 Feistel rounds, unrolled two per iteration: expansion, S-box
  // substitution, permutation.
  const auto two = R(19);
  b.movi(two, 2);
  b.for_range(round, 0, 8, [&] {
    b.mul(t, round, two);
    for (int half = 0; half < 2; ++half) {
      b.load(k, t, 128 + half);
      // f = P(S(E(right) xor k)): eight 6-bit chunks through the S-box.
      b.xor_(f, right, k);
      b.movi(sum, 0);
      for (int c = 0; c < 8; ++c) {
        b.movi(sh, (c * 4) % 27);
        b.shr(chunk, f, sh);
        b.and_(chunk, chunk, mask6);
        b.load(idx, chunk, 64);  // S-box lookup
        b.movi(sh, (c * 7) % 13);
        b.shl(idx, idx, sh);
        b.add(sum, sum, idx);
      }
      b.and_(f, sum, mask32);
      // Feistel swap.
      b.xor_(f, f, left);
      b.mov(left, right);
      b.and_(f, f, mask32);
      b.mov(right, f);
    }
  });
  b.store(out, 0, left);
  b.store(out, 1, right);

  // Output permutation: nibble-swizzle both halves through the S-box.
  const auto wi = R(18);
  b.movi(sum, 0);
  b.for_range(wi, 0, 2, [&] {
    b.load(t, wi, 0);
    for (int c = 0; c < 4; ++c) {
      b.movi(sh, c * 8);
      b.shr(chunk, t, sh);
      b.and_(chunk, chunk, mask6);
      b.load(idx, chunk, 64);
      b.add(sum, sum, idx);
    }
  });
  b.store(out, 2, sum);
  });  // chained-block loop
  b.halt();

  std::vector<std::int64_t> data(144, 0);
  data[0] = 0x12345678;
  data[1] = 0x0fedcba9;
  for (int q = 0; q < 64; ++q)
    data[static_cast<std::size_t>(64 + q)] = (q * 31 + 7) % 64;
  b.set_data(std::move(data));
  return b.take();
}

/// ns: search a 4-level nested table (4x4x4x4 at data[0..255]) for the key
/// in data[256]; early exit on hit. Results: data[257] = flattened index of
/// the match (or -1), data[258] = probe count.
ir::Program ns() {
  IrBuilder b("ns");
  const auto i = R(1), j = R(2), k = R(3), l = R(4), v = R(5), key = R(6),
             idx = R(7), four = R(8), found = R(10),
             probes = R(11), out = R(12);

  b.movi(four, 4);
  b.movi(out, 256);
  b.load(key, out, 0);
  b.movi(found, -1);
  b.movi(probes, 0);

  b.for_range(i, 0, 4, [&] {
    b.for_range(j, 0, 4, [&] {
      b.for_range(k, 0, 4, [&] {
        b.for_range(l, 0, 4, [&] {
          b.mul(idx, i, four);
          b.add(idx, idx, j);
          b.mul(idx, idx, four);
          b.add(idx, idx, k);
          b.mul(idx, idx, four);
          b.add(idx, idx, l);
          b.load(v, idx, 0);
          b.addi(probes, probes, 1);
          b.if_then(Cond::kEq, v, key, [&] {
            b.mov(found, idx);
            b.break_loop();
          });
        });
        b.if_then(Cond::kGe, found, R(0), [&] { b.break_loop(); });
      });
      b.if_then(Cond::kGe, found, R(0), [&] { b.break_loop(); });
    });
    b.if_then(Cond::kGe, found, R(0), [&] { b.break_loop(); });
  });
  b.store(out, 1, found);
  b.store(out, 2, probes);
  b.halt();

  std::vector<std::int64_t> data(259, 0);
  for (int q = 0; q < 256; ++q)
    data[static_cast<std::size_t>(q)] = (q * 19 + 5) % 512;
  data[256] = (200 * 19 + 5) % 512;  // key found at flattened index 200
  b.set_data(std::move(data));
  return b.take();
}

/// nsichneu: Petri-net style automaton — two sweeps over ~128 guarded
/// transition rules. Each rule tests two places and, when enabled, moves
/// tokens. Generated code: ~2000 instructions of branchy straight-line
/// rules, the suite's biggest I-cache footprint (as in the original).
/// Result: data[300] = checksum of all places after two sweeps.
ir::Program nsichneu() {
  IrBuilder b("nsichneu");
  const auto sweep = R(1), p1 = R(2), p2 = R(3), t = R(4), sum = R(5),
             i = R(6), out = R(7), one = R(8);

  constexpr int kPlaces = 64;
  constexpr int kRules = 128;

  b.movi(one, 1);
  b.for_range(sweep, 0, 2, [&] {
    for (int rule = 0; rule < kRules; ++rule) {
      const int src = (rule * 7) % kPlaces;
      const int dst = (rule * 13 + 5) % kPlaces;
      const int aux = (rule * 11 + 3) % kPlaces;
      b.movi(t, src);
      b.load(p1, t, 0);
      // Enabled when the source place holds at least one token.
      b.if_then(Cond::kGe, p1, one, [&] {
        b.movi(t, dst);
        b.load(p2, t, 0);
        b.addi(p1, p1, -1);
        b.addi(p2, p2, 1);
        b.movi(t, src);
        b.store(t, 0, p1);
        b.movi(t, dst);
        b.store(t, 0, p2);
        // Side condition touches an auxiliary place.
        b.movi(t, aux);
        b.load(p2, t, 0);
        b.if_then(Cond::kGt, p2, one, [&] {
          b.addi(p2, p2, -1);
          b.store(t, 0, p2);
        });
      });
    }
  });

  b.movi(sum, 0);
  b.for_range(i, 0, kPlaces, [&] {
    b.load(t, i, 0);
    b.add(sum, sum, t);
  });
  b.movi(out, 300);
  b.store(out, 0, sum);
  b.halt();

  std::vector<std::int64_t> data(301, 0);
  for (int q = 0; q < kPlaces; ++q)
    data[static_cast<std::size_t>(q)] = (q % 3 == 0) ? 2 : 0;
  b.set_data(std::move(data));
  return b.take();
}

/// statemate: generated statechart step function — 5 steps, each running
/// ~48 guarded state-variable updates (car window controller style).
/// Result: data[200] = checksum of the 32 state variables.
ir::Program statemate() {
  IrBuilder b("statemate");
  const auto step = R(1), v1 = R(2), v2 = R(3), t = R(4), sum = R(5),
             i = R(6), out = R(7), two = R(8);

  constexpr int kVars = 32;
  constexpr int kGuards = 48;

  b.movi(two, 2);
  b.for_range(step, 0, 5, [&] {
    for (int g = 0; g < kGuards; ++g) {
      const int a = (g * 5) % kVars;
      const int c = (g * 9 + 2) % kVars;
      const int mode = g % 3;
      b.movi(t, a);
      b.load(v1, t, 0);
      b.movi(t, c);
      b.load(v2, t, 0);
      if (mode == 0) {
        b.if_then_else(
            Cond::kGt, v1, v2,
            [&] {
              b.add(v2, v2, two);
              b.movi(t, c);
              b.store(t, 0, v2);
            },
            [&] {
              b.addi(v1, v1, 1);
              b.movi(t, a);
              b.store(t, 0, v1);
            });
      } else if (mode == 1) {
        b.if_then(Cond::kEq, v1, v2, [&] {
          b.xor_(v1, v1, step);
          b.addi(v1, v1, 1);
          b.movi(t, a);
          b.store(t, 0, v1);
        });
      } else {
        b.if_then(Cond::kLt, v1, v2, [&] {
          b.sub(v2, v2, v1);
          b.movi(t, c);
          b.store(t, 0, v2);
        });
      }
    }
  });

  b.movi(sum, 0);
  b.for_range(i, 0, kVars, [&] {
    b.load(t, i, 0);
    b.add(sum, sum, t);
  });
  b.movi(out, 200);
  b.store(out, 0, sum);
  b.halt();

  std::vector<std::int64_t> data(201, 0);
  for (int q = 0; q < kVars; ++q)
    data[static_cast<std::size_t>(q)] = (q * 3) % 11;
  b.set_data(std::move(data));
  return b.take();
}

}  // namespace ucp::suite::programs
