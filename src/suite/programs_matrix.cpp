// Matrix / statistics kernels of the Mälardalen-like suite.

#include "ir/builder.hpp"
#include "suite/suite.hpp"

namespace ucp::suite::programs {

using ir::Cond;
using ir::IrBuilder;
using ir::R;

/// cnt: scans a 10x10 matrix at data[0..99], counting and summing positive
/// entries and summing negatives separately.
/// Results: data[100]=count+, data[101]=sum+, data[102]=sum-.
ir::Program cnt() {
  IrBuilder b("cnt");
  const auto i = R(1), j = R(2), v = R(3), cntp = R(4), sump = R(5),
             sumn = R(6), idx = R(7), ten = R(8), out = R(9);

  b.movi(ten, 10);
  b.movi(cntp, 0);
  b.movi(sump, 0);
  b.movi(sumn, 0);
  b.for_range(i, 0, 10, [&] {
    b.for_range(j, 0, 10, [&] {
      b.mul(idx, i, ten);
      b.add(idx, idx, j);
      b.load(v, idx, 0);
      b.if_then_else(
          Cond::kGt, v, R(0),
          [&] {
            b.addi(cntp, cntp, 1);
            b.add(sump, sump, v);
          },
          [&] { b.add(sumn, sumn, v); });
    });
  });
  b.movi(out, 100);
  b.store(out, 0, cntp);
  b.store(out, 1, sump);
  b.store(out, 2, sumn);
  b.halt();

  std::vector<std::int64_t> data(103, 0);
  for (int k = 0; k < 100; ++k)
    data[static_cast<std::size_t>(k)] = ((k * 17) % 41) - 20;
  b.set_data(std::move(data));
  return b.take();
}

/// matmult: C = A * B for 10x10 integer matrices. A at data[0..99], B at
/// data[100..199], C at data[200..299]; data[300] = trace of C.
ir::Program matmult() {
  IrBuilder b("matmult");
  const auto i = R(1), j = R(2), acc = R(4), a = R(5), v1 = R(6),
             v2 = R(7), ten = R(8), idx = R(9), t = R(10), out = R(11),
             tr = R(12), eleven = R(13);

  b.movi(ten, 10);
  // Multiply and re-check twice (matmult.c's Test/Initialize harness).
  b.for_range(R(28), 0, 2, [&] {
  b.for_range(i, 0, 10, [&] {
    b.for_range(j, 0, 10, [&] {
      // Inner dot product fully unrolled (what -O2 does for a constant
      // trip count of 10): A row base = 10*i, B column walks stride 10.
      b.mul(idx, i, ten);  // row base
      b.movi(acc, 0);
      for (int ku = 0; ku < 10; ++ku) {
        b.load(v1, idx, ku);  // A[i][ku]
        b.add(t, j, R(14));   // B index = 10*ku + j; R(14) holds 10*ku
        b.load(v2, t, 100);
        b.mul(a, v1, v2);
        b.add(acc, acc, a);
        b.addi(R(14), R(14), 10);
      }
      b.movi(R(14), 0);
      b.mul(idx, i, ten);
      b.add(idx, idx, j);
      b.store(idx, 200, acc);
    });
  });
  // trace
  b.movi(tr, 0);
  b.movi(eleven, 11);
  b.for_range(i, 0, 10, [&] {
    b.mul(idx, i, eleven);
    b.load(t, idx, 200);
    b.add(tr, tr, t);
  });
  });  // harness loop
  b.movi(out, 300);
  b.store(out, 0, tr);
  b.halt();

  std::vector<std::int64_t> data(301, 0);
  for (int q = 0; q < 100; ++q) {
    data[static_cast<std::size_t>(q)] = (q % 7) - 3;          // A
    data[static_cast<std::size_t>(100 + q)] = (q % 5) - 2;    // B
  }
  b.set_data(std::move(data));
  return b.take();
}

/// ludcmp: Doolittle LU decomposition of a 5x5 scaled-integer matrix at
/// data[0..24] (in place, scale 2^10), then forward/back substitution for
/// b at data[25..29]. Solution x written to data[30..34].
ir::Program ludcmp() {
  IrBuilder b("ludcmp");
  const auto i = R(1), j = R(2), k = R(3), n = R(4), five = R(5), idx = R(6),
             t = R(7), sum = R(8), piv = R(9), v = R(10), sh = R(11),
             scale = R(12), jj = R(13), t2 = R(14);

  b.movi(five, 5);
  b.movi(n, 5);
  b.movi(sh, 10);
  b.movi(scale, 1 << 10);

  // Decomposition: for k: for i>k: L(i,k)=A(i,k)*scale/A(k,k);
  //                       for j>=k: A(i,j) -= L(i,k)*A(k,j)/scale
  b.for_range(k, 0, 4, [&] {
    b.mul(idx, k, five);
    b.add(idx, idx, k);
    b.load(piv, idx, 0);  // A[k][k] (scaled); diagonally dominant input
    b.addi(t2, k, 1);
    b.for_range_rr(i, t2, n, 4, [&] {
      b.mul(idx, i, five);
      b.add(idx, idx, k);
      b.load(v, idx, 0);
      b.mul(v, v, scale);
      b.div(v, v, piv);    // L(i,k) scaled
      b.store(idx, 0, v);
      b.addi(jj, k, 1);
      b.for_range_rr(j, jj, n, 4, [&] {
        b.mul(idx, k, five);
        b.add(idx, idx, j);
        b.load(t, idx, 0);   // A[k][j]
        b.mul(t, t, v);
        b.div(t, t, scale);
        b.mul(idx, i, five);
        b.add(idx, idx, j);
        b.load(sum, idx, 0);
        b.sub(sum, sum, t);
        b.store(idx, 0, sum);
      });
    });
  });

  // Forward substitution: y[i] = b[i] - sum L(i,j) y[j] / scale
  b.for_range(i, 0, 5, [&] {
    b.load(sum, i, 25);
    b.for_range_reg(j, 0, i, 4, [&] {
      b.mul(idx, i, five);
      b.add(idx, idx, j);
      b.load(t, idx, 0);
      b.load(v, j, 30);
      b.mul(t, t, v);
      b.div(t, t, scale);
      b.sub(sum, sum, t);
    });
    b.store(i, 30, sum);
  });

  // Back substitution: x[i] = (y[i] - sum U(i,j) x[j]/scale) * scale / U(i,i)
  b.for_down(i, 4, -1, [&] {
    b.load(sum, i, 30);
    b.addi(jj, i, 1);
    b.for_range_rr(j, jj, n, 4, [&] {
      b.mul(idx, i, five);
      b.add(idx, idx, j);
      b.load(t, idx, 0);
      b.load(v, j, 30);
      b.mul(t, t, v);
      b.div(t, t, scale);
      b.sub(sum, sum, t);
    });
    b.mul(idx, i, five);
    b.add(idx, idx, i);
    b.load(piv, idx, 0);
    b.mul(sum, sum, scale);
    b.div(sum, sum, piv);
    b.store(i, 30, sum);
  });
  b.halt();

  std::vector<std::int64_t> data(35, 0);
  // Diagonally dominant 5x5, scaled by 2^10.
  const int A[25] = {20, 1, 2,  1, 3, 2, 18, 1, 2, 1, 1, 2, 22,
                     1,  2, 3, 1,  1, 19, 2, 2, 1, 2, 1, 21};
  for (int q = 0; q < 25; ++q)
    data[static_cast<std::size_t>(q)] = A[q] * 1024;
  const int rhs[5] = {35, 27, 44, 31, 52};
  for (int q = 0; q < 5; ++q)
    data[static_cast<std::size_t>(25 + q)] = rhs[q] * 1024;
  b.set_data(std::move(data));
  return b.take();
}

/// minver: inversion of a 3x3 scaled-integer matrix (scale 2^10) via the
/// adjugate. Input at data[0..8]; inverse at data[9..17]; data[18] = det.
ir::Program minver() {
  IrBuilder b("minver");
  const auto a0 = R(1), a1 = R(2), a2 = R(3), a3 = R(4), a4 = R(5),
             a5 = R(6), a6 = R(7), a7 = R(8), a8 = R(9), det = R(10),
             t1 = R(11), t2 = R(12), c = R(13), scale = R(14), out = R(15),
             i = R(16);

  b.movi(scale, 1 << 10);
  b.movi(out, 0);
  b.load(a0, out, 0);
  b.load(a1, out, 1);
  b.load(a2, out, 2);
  b.load(a3, out, 3);
  b.load(a4, out, 4);
  b.load(a5, out, 5);
  b.load(a6, out, 6);
  b.load(a7, out, 7);
  b.load(a8, out, 8);

  // det = a0(a4 a8 - a5 a7) - a1(a3 a8 - a5 a6) + a2(a3 a7 - a4 a6),
  // computed in scaled arithmetic (each product descaled once).
  auto minor = [&](ir::Reg x, ir::Reg y, ir::Reg z, ir::Reg w, ir::Reg dst) {
    b.mul(t1, x, y);
    b.mul(t2, z, w);
    b.sub(dst, t1, t2);
    b.div(dst, dst, scale);
  };
  minor(a4, a8, a5, a7, c);
  b.mul(det, a0, c);
  minor(a3, a8, a5, a6, c);
  b.mul(t1, a1, c);
  b.sub(det, det, t1);
  minor(a3, a7, a4, a6, c);
  b.mul(t1, a2, c);
  b.add(det, det, t1);
  b.div(det, det, scale);  // det in scale units

  // inv[i] = adj[i] * scale / det; adjugate entries via minors.
  // Row 0 of the adjugate.
  minor(a4, a8, a5, a7, c);
  b.mul(c, c, scale);
  b.div(c, c, det);
  b.store(out, 9, c);
  minor(a2, a7, a1, a8, c);
  b.mul(c, c, scale);
  b.div(c, c, det);
  b.store(out, 10, c);
  minor(a1, a5, a2, a4, c);
  b.mul(c, c, scale);
  b.div(c, c, det);
  b.store(out, 11, c);
  // Row 1.
  minor(a5, a6, a3, a8, c);
  b.mul(c, c, scale);
  b.div(c, c, det);
  b.store(out, 12, c);
  minor(a0, a8, a2, a6, c);
  b.mul(c, c, scale);
  b.div(c, c, det);
  b.store(out, 13, c);
  minor(a2, a3, a0, a5, c);
  b.mul(c, c, scale);
  b.div(c, c, det);
  b.store(out, 14, c);
  // Row 2.
  minor(a3, a7, a4, a6, c);
  b.mul(c, c, scale);
  b.div(c, c, det);
  b.store(out, 15, c);
  minor(a1, a6, a0, a7, c);
  b.mul(c, c, scale);
  b.div(c, c, det);
  b.store(out, 16, c);
  minor(a0, a4, a1, a3, c);
  b.mul(c, c, scale);
  b.div(c, c, det);
  b.store(out, 17, c);
  b.store(out, 18, det);

  // Touch every output once more (checksum loop, keeps the tail branchy).
  b.movi(t2, 0);
  b.for_range(i, 9, 18, [&] {
    b.load(t1, i, 0);
    b.add(t2, t2, t1);
  });
  b.store(out, 19, t2);
  b.halt();

  std::vector<std::int64_t> data(20, 0);
  const int A[9] = {4, 1, 0, 1, 5, 1, 0, 1, 3};
  for (int q = 0; q < 9; ++q)
    data[static_cast<std::size_t>(q)] = A[q] * 1024;
  b.set_data(std::move(data));
  return b.take();
}

/// st: statistics over two 20-element series: sums, scaled means, variance
/// numerators and the covariance numerator.
/// Results: data[50..55] = sumx, sumy, meanx, meany, varx_num, cov_num.
ir::Program st() {
  IrBuilder b("st");
  const auto i = R(1), x = R(2), y = R(3), sx = R(4), sy = R(5), mx = R(6),
             my = R(7), vx = R(8), cov = R(9), t1 = R(10), t2 = R(11),
             twenty = R(12), out = R(13);

  b.movi(twenty, 20);
  b.movi(sx, 0);
  b.movi(sy, 0);
  b.for_range(i, 0, 20, [&] {
    b.load(x, i, 0);
    b.load(y, i, 20);
    b.add(sx, sx, x);
    b.add(sy, sy, y);
  });
  b.div(mx, sx, twenty);
  b.div(my, sy, twenty);

  b.movi(vx, 0);
  b.movi(cov, 0);
  b.for_range(i, 0, 20, [&] {
    b.load(x, i, 0);
    b.load(y, i, 20);
    b.sub(t1, x, mx);
    b.sub(t2, y, my);
    b.mul(x, t1, t1);
    b.add(vx, vx, x);
    b.mul(y, t1, t2);
    b.add(cov, cov, y);
  });
  b.movi(out, 50);
  b.store(out, 0, sx);
  b.store(out, 1, sy);
  b.store(out, 2, mx);
  b.store(out, 3, my);
  b.store(out, 4, vx);
  b.store(out, 5, cov);
  b.halt();

  std::vector<std::int64_t> data(56, 0);
  for (int q = 0; q < 20; ++q) {
    data[static_cast<std::size_t>(q)] = q * 3 + ((q * 7) % 5);
    data[static_cast<std::size_t>(20 + q)] = 60 - q * 2 + ((q * 11) % 7);
  }
  b.set_data(std::move(data));
  return b.take();
}

/// ud: integer Gaussian elimination (fraction-free, Bareiss-style single
/// step) on a 4x4 system with exact integer arithmetic.
/// Input A at data[0..15], b at data[16..19]; echelon matrix left in place,
/// data[20] = last pivot (proportional to det).
ir::Program ud() {
  IrBuilder b("ud");
  const auto k = R(1), i = R(2), j = R(3), piv = R(4), akj = R(5), aik = R(6),
             aij = R(7), idx = R(8), four = R(9), t = R(10), n = R(11),
             t2 = R(12), out = R(13), bi = R(14), bk = R(15);

  b.movi(four, 4);
  b.movi(n, 4);
  b.for_range(k, 0, 3, [&] {
    b.mul(idx, k, four);
    b.add(idx, idx, k);
    b.load(piv, idx, 0);
    b.addi(t2, k, 1);
    b.for_range_rr(i, t2, n, 3, [&] {
      b.mul(idx, i, four);
      b.add(idx, idx, k);
      b.load(aik, idx, 0);
      // row_i = piv*row_i - aik*row_k (fraction-free elimination)
      b.for_range_reg(j, 0, n, 4, [&] {
        b.mul(idx, i, four);
        b.add(idx, idx, j);
        b.load(aij, idx, 0);
        b.mul(aij, aij, piv);
        b.mul(t, k, four);
        b.add(t, t, j);
        b.load(akj, t, 0);
        b.mul(t, akj, aik);
        b.sub(aij, aij, t);
        b.store(idx, 0, aij);
      });
      // and the rhs
      b.load(bi, i, 16);
      b.mul(bi, bi, piv);
      b.load(bk, k, 16);
      b.mul(t, bk, aik);
      b.sub(bi, bi, t);
      b.store(i, 16, bi);
    });
  });
  b.movi(out, 20);
  b.movi(t, 15);
  b.load(piv, t, 0);
  b.store(out, 0, piv);
  b.halt();

  std::vector<std::int64_t> data(21, 0);
  const int A[16] = {3, 1, 0, 2, 1, 4, 1, 0, 0, 1, 5, 1, 2, 0, 1, 6};
  for (int q = 0; q < 16; ++q) data[static_cast<std::size_t>(q)] = A[q];
  const int rhs[4] = {11, 13, 17, 23};
  for (int q = 0; q < 4; ++q)
    data[static_cast<std::size_t>(16 + q)] = rhs[q];
  b.set_data(std::move(data));
  return b.take();
}

}  // namespace ucp::suite::programs
