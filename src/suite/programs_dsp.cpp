// DSP kernels of the Mälardalen-like suite. These carry the larger
// straight-line arithmetic bodies (DCT butterflies, filter taps) that give
// the suite its bigger code footprints.

#include <cmath>

#include "ir/builder.hpp"
#include "suite/suite.hpp"

namespace ucp::suite::programs {

using ir::Cond;
using ir::IrBuilder;
using ir::R;

/// adpcm: simplified IMA-ADPCM encode of data[0..49] into 4-bit codes at
/// data[64..113], decode into data[128..177]; step table at data[192..207].
/// Result: data[224] = sum of |sample - decoded|.
ir::Program adpcm() {
  IrBuilder b("adpcm");
  const auto i = R(1), sample = R(2), pred = R(3), step = R(4), diff = R(5),
             code = R(6), idx = R(7), t = R(8), tbl = R(10), two = R(11),
             err = R(12), low = R(20), delta = R(21), out = R(22),
             c15 = R(16), c7 = R(17), c8 = R(18), c4 = R(19), eight = R(23);

  b.movi(tbl, 192);
  b.movi(two, 2);
  b.movi(c15, 15);
  b.movi(c7, 7);
  b.movi(c8, 8);
  b.movi(c4, 4);
  b.movi(eight, 8);

  // Shared predictor step, used by encoder and decoder alike.
  auto predictor_update = [&](ir::Reg pred_reg, ir::Reg idx_reg) {
    b.and_(low, code, c7);
    b.mul(delta, low, two);
    b.addi(delta, delta, 1);
    b.mul(delta, delta, step);
    b.div(delta, delta, eight);
    b.if_then_else(
        Cond::kGe, code, c8, [&] { b.sub(pred_reg, pred_reg, delta); },
        [&] { b.add(pred_reg, pred_reg, delta); });
    b.if_then_else(
        Cond::kGe, low, c4, [&] { b.addi(idx_reg, idx_reg, 2); },
        [&] { b.addi(idx_reg, idx_reg, -1); });
    b.if_then(Cond::kLt, idx_reg, R(0), [&] { b.movi(idx_reg, 0); });
    b.if_then(Cond::kGt, idx_reg, c15, [&] { b.mov(idx_reg, c15); });
  };

  // The whole pipeline runs twice per invocation (adpcm.c encodes and
  // decodes repeatedly from its main loop); the outer loop makes the full
  // code footprint a live working set, like the original.
  const auto s0 = R(24), s1 = R(25), s2 = R(26), dc = R(27);
  b.for_range(R(28), 0, 2, [&] {
  // --- input conditioning: 3-tap smoothing + DC removal (adpcm.c's
  // upzero/uppol-style preprocessing) --------------------------------
  b.movi(dc, 0);
  b.for_range(i, 0, 50, [&] {
    b.load(t, i, 0);
    b.add(dc, dc, t);
  });
  b.movi(t, 50);
  b.div(dc, dc, t);
  b.for_range(i, 1, 49, [&] {
    b.load(s0, i, -1);
    b.load(s1, i, 0);
    b.load(s2, i, 1);
    b.add(t, s0, s2);
    b.add(t, t, s1);
    b.add(t, t, s1);
    b.div(t, t, c4);
    b.sub(t, t, dc);
    b.store(i, 0, t);
  });

  // --- encode ---------------------------------------------------------
  b.movi(pred, 0);
  b.movi(idx, 0);
  b.for_range(i, 0, 50, [&] {
    b.load(sample, i, 0);
    b.add(t, tbl, idx);
    b.load(step, t, 0);
    b.sub(diff, sample, pred);
    b.movi(code, 0);
    b.if_then(Cond::kLt, diff, R(0), [&] {
      b.movi(code, 8);
      b.sub(diff, R(0), diff);
    });
    b.if_then(Cond::kGe, diff, step, [&] {
      b.addi(code, code, 4);
      b.sub(diff, diff, step);
    });
    b.div(t, step, two);
    b.if_then(Cond::kGe, diff, t, [&] {
      b.addi(code, code, 2);
      b.sub(diff, diff, t);
    });
    b.div(t, t, two);
    b.if_then(Cond::kGe, diff, t, [&] { b.addi(code, code, 1); });
    b.store(i, 64, code);
    b.add(t, tbl, idx);
    b.load(step, t, 0);
    predictor_update(pred, idx);
  });

  // --- decode ---------------------------------------------------------
  const auto predd = R(14), idxd = R(15);
  b.movi(predd, 0);
  b.movi(idxd, 0);
  b.for_range(i, 0, 50, [&] {
    b.add(t, tbl, idxd);
    b.load(step, t, 0);
    b.load(code, i, 64);
    predictor_update(predd, idxd);
    b.store(i, 128, predd);
  });

  // --- error ----------------------------------------------------------
  b.movi(err, 0);
  b.for_range(i, 0, 50, [&] {
    b.load(sample, i, 0);
    b.load(t, i, 128);
    b.sub(t, sample, t);
    b.if_then(Cond::kLt, t, R(0), [&] { b.sub(t, R(0), t); });
    b.add(err, err, t);
  });
  });  // outer repetition loop
  b.movi(out, 224);
  b.store(out, 0, err);
  b.halt();

  std::vector<std::int64_t> data(225, 0);
  for (int k = 0; k < 50; ++k) {
    // Deterministic wavy signal.
    const int v = (k % 10) * 12 - 50 + ((k * k) % 17);
    data[static_cast<std::size_t>(k)] = v;
  }
  const int steps[16] = {7,  8,  9,  10, 12, 13, 16, 17,
                         19, 21, 23, 25, 28, 31, 34, 37};
  for (int k = 0; k < 16; ++k)
    data[static_cast<std::size_t>(192 + k)] = steps[k];
  b.set_data(std::move(data));
  return b.take();
}

/// edn: a bundle of small signal kernels like the original (vector MAC,
/// strided dot product, lattice recurrence, 4x4 mat_mul, IIR biquad,
/// codebook search). Results: data[100..104]; C matrix at data[108..123].
ir::Program edn() {
  IrBuilder b("edn");
  const auto i = R(1), a = R(2), v1 = R(3), v2 = R(4), acc = R(5), t = R(6),
             out = R(7), two = R(8), modp = R(9);

  b.movi(out, 100);
  b.movi(two, 2);
  b.movi(modp, 509);
  b.movi(R(19), 3);
  b.movi(R(23), 4);

  // The kernel bundle runs twice (edn.c's main invokes the whole set
  // repeatedly when benchmarked).
  b.for_range(R(28), 0, 2, [&] {
  // vec_mpy: acc = sum a[i]*b[i] over 32, unrolled by 4 (edn.c vec_mpy1 is
  // unrolled in the original's generated code too).
  b.movi(acc, 0);
  b.for_range(i, 0, 8, [&] {
    b.mul(a, i, R(23));  // R(23) = 4, set below
    for (int u = 0; u < 4; ++u) {
      b.load(v1, a, u);
      b.load(v2, a, 32 + u);
      b.mul(t, v1, v2);
      b.add(acc, acc, t);
    }
  });
  b.store(out, 0, acc);

  // strided mac: acc = sum a[2i]*b[2i+1] over 16, unrolled by 2.
  b.movi(acc, 0);
  b.for_range(i, 0, 8, [&] {
    b.mul(a, i, R(23));
    for (int u = 0; u < 2; ++u) {
      b.load(v1, a, 2 * u);
      b.load(v2, a, 33 + 2 * u);
      b.mul(t, v1, v2);
      b.add(acc, acc, t);
    }
  });
  b.store(out, 1, acc);

  // lattice: k evolves via modular products of the input.
  b.movi(acc, 7);
  b.for_range(i, 0, 32, [&] {
    b.load(v1, i, 0);
    b.mul(t, v1, acc);
    b.rem(t, t, modp);
    b.add(acc, acc, t);
    b.store(i, 64, acc);
  });
  b.store(out, 2, acc);

  // mat_mul 4x4: C = A*B over the head of the input arrays.
  const auto r = R(10), c = R(11), k = R(12), four = R(13), idx = R(14),
             s = R(15);
  b.movi(four, 4);
  b.for_range(r, 0, 4, [&] {
    b.for_range(c, 0, 4, [&] {
      b.movi(s, 0);
      b.for_range(k, 0, 4, [&] {
        b.mul(idx, r, four);
        b.add(idx, idx, k);
        b.load(v1, idx, 0);
        b.mul(idx, k, four);
        b.add(idx, idx, c);
        b.load(v2, idx, 32);
        b.mul(t, v1, v2);
        b.add(s, s, t);
      });
      b.mul(idx, r, four);
      b.add(idx, idx, c);
      b.store(idx, 108, s);
    });
  });

  // iir biquad over 24 samples: y[n] = (3x[n] + 2x[n-1] - y[n-1]) / 4.
  const auto xp = R(16), yp = R(17), qq = R(18);
  b.movi(xp, 0);
  b.movi(yp, 0);
  b.movi(qq, 4);
  b.for_range(i, 0, 24, [&] {
    b.load(v1, i, 0);
    b.mul(t, v1, R(19));  // R(19) = 3, set below
    b.mul(v2, xp, two);
    b.add(t, t, v2);
    b.sub(t, t, yp);
    b.div(t, t, qq);
    b.mov(xp, v1);
    b.mov(yp, t);
  });
  b.store(out, 3, yp);

  // codebook search: index of min |x - code| over the 16-entry codebook.
  const auto best = R(20), bestidx = R(21), target = R(22);
  b.movi(best, 1 << 20);
  b.movi(bestidx, -1);
  b.movi(target, 9);
  b.for_range(i, 0, 16, [&] {
    b.load(v1, i, 32);
    b.sub(t, v1, target);
    b.if_then(Cond::kLt, t, R(0), [&] { b.sub(t, R(0), t); });
    b.if_then(Cond::kLt, t, best, [&] {
      b.mov(best, t);
      b.mov(bestidx, i);
    });
  });
  b.store(out, 4, bestidx);
  });  // outer repetition loop
  b.halt();

  std::vector<std::int64_t> data(128, 0);
  for (int k = 0; k < 32; ++k)
    data[static_cast<std::size_t>(k)] = (k * 13) % 23 - 11;
  for (int k = 32; k < 64; ++k)
    data[static_cast<std::size_t>(k)] = (k * 7) % 19 - 9;
  b.set_data(std::move(data));
  return b.take();
}

namespace {

/// Emits one 8-point integer DCT butterfly over values addressed
/// base + stride*{0..7}; results written back scaled. Shared by fdct's row
/// and column passes — a long straight-line body, as in the C original.
void emit_dct8(IrBuilder& b, ir::Reg base, std::int64_t stride) {
  using ir::Reg;
  const auto x0 = R(10), x1 = R(11), x2 = R(12), x3 = R(13), x4 = R(14),
             x5 = R(15), x6 = R(16), x7 = R(17), s = R(18), d = R(19),
             t = R(20), c1 = R(21), c2 = R(22), sh = R(23);

  const auto s2 = R(24), d2 = R(25), t2 = R(26), c3 = R(27);

  b.load(x0, base, 0 * stride);
  b.load(x1, base, 1 * stride);
  b.load(x2, base, 2 * stride);
  b.load(x3, base, 3 * stride);
  b.load(x4, base, 4 * stride);
  b.load(x5, base, 5 * stride);
  b.load(x6, base, 6 * stride);
  b.load(x7, base, 7 * stride);

  b.movi(c1, 181);  // ~ cos(pi/4) * 256
  b.movi(c2, 98);   // ~ tan(pi/8) * 256
  b.movi(c3, 139);  // ~ cos(3pi/8)*362
  b.movi(sh, 8);

  // Stage 1: paired sums/differences (AAN stage).
  b.add(s, x0, x7);   // s07
  b.sub(d, x0, x7);   // d07
  b.add(s2, x1, x6);  // s16
  b.sub(d2, x1, x6);  // d16
  b.add(t, x2, x5);   // s25
  b.sub(x5, x2, x5);  // d25
  b.add(t2, x3, x4);  // s34
  b.sub(x4, x3, x4);  // d34

  // Stage 2, even half.
  b.add(x0, s, t2);   // e0 = s07 + s34
  b.sub(x3, s, t2);   // e3 = s07 - s34
  b.add(x1, s2, t);   // e1 = s16 + s25
  b.sub(x2, s2, t);   // e2 = s16 - s25
  b.add(s, x0, x1);   // y0 = e0 + e1
  b.sub(t2, x0, x1);  // y4 = e0 - e1
  b.mul(t, x2, c1);
  b.sar(t, t, sh);
  b.add(x2, x3, t);   // y2 = e3 + c1*e2
  b.mul(t, x3, c2);
  b.sar(t, t, sh);
  b.sub(x6, t, x3);   // y6 rotation partial

  // Stage 2, odd half (rotations by c1..c3).
  b.mul(t, d2, c1);
  b.sar(t, t, sh);
  b.add(x1, d, t);    // o1 = d07 + c1*d16
  b.sub(x7, d, t);    // o7 = d07 - c1*d16
  b.mul(t, x5, c2);
  b.sar(t, t, sh);
  b.mul(t2, x4, c3);
  b.sar(t2, t2, sh);
  b.add(x5, t, t2);   // o5
  b.sub(x3, t, t2);   // o3
  b.add(t, x1, x5);
  b.sub(x5, x1, x5);  // y5
  b.mov(x1, t);       // y1
  b.add(t, x7, x3);
  b.sub(x7, x7, x3);  // y7
  b.mov(x3, t);       // y3
  b.mov(x0, s);       // y0
  b.sub(x4, x0, x2);  // y4 recombination keeps lane live
  b.add(x6, x6, x5);  // y6

  b.store(base, 0 * stride, x0);
  b.store(base, 1 * stride, x1);
  b.store(base, 2 * stride, x2);
  b.store(base, 3 * stride, x3);
  b.store(base, 4 * stride, x4);
  b.store(base, 5 * stride, x5);
  b.store(base, 6 * stride, x6);
  b.store(base, 7 * stride, x7);
}

}  // namespace

/// fdct: 8x8 forward DCT over data[0..63]: an 8-point butterfly applied to
/// every row, then to every column. Results: transformed block in place;
/// data[64] = checksum of the block.
ir::Program fdct() {
  IrBuilder b("fdct");
  const auto r = R(1), base = R(2), eight = R(3), sum = R(4), t = R(5),
             i = R(6), out = R(7);

  b.movi(eight, 8);
  // Transform two consecutive frames (the benchmark harness around fdct.c
  // does the same); rows then columns per frame.
  b.for_range(R(28), 0, 2, [&] {
    // Row pass: base = 8*r, stride 1.
    b.for_range(r, 0, 8, [&] {
      b.mul(base, r, eight);
      emit_dct8(b, base, 1);
    });
    // Column pass: base = r, stride 8.
    b.for_range(r, 0, 8, [&] {
      b.mov(base, r);
      emit_dct8(b, base, 8);
    });
  });
  // Checksum.
  b.movi(sum, 0);
  b.for_range(i, 0, 64, [&] {
    b.load(t, i, 0);
    b.add(sum, sum, t);
  });
  b.movi(out, 64);
  b.store(out, 0, sum);
  b.halt();

  std::vector<std::int64_t> data(65, 0);
  for (int k = 0; k < 64; ++k)
    data[static_cast<std::size_t>(k)] = ((k * 29) % 255) - 128;
  b.set_data(std::move(data));
  return b.take();
}

/// fft1: 32-point fixed-point (Q8) radix-2 FFT, decimation-in-frequency
/// ordering (no bit-reversal pass, as noted in DESIGN.md). Real parts at
/// data[0..31], imaginary at data[32..63]; twiddles at data[64..79]
/// (cos*256) and data[80..95] (sin*256). Result: data[96] = energy checksum.
ir::Program fft1() {
  IrBuilder b("fft1");
  const auto s = R(1), m = R(2), half = R(3), k = R(4), j = R(5), wr = R(6),
             wi = R(7), tr = R(8), ti = R(9), a = R(10), bidx = R(11),
             xr = R(12), xi = R(13), yr = R(14), yi = R(15), t1 = R(16),
             t2 = R(17), widx = R(18), stride = R(19), n = R(20), one = R(21),
             sh = R(22), sum = R(23), out = R(24);

  b.movi(n, 32);
  b.movi(one, 1);
  b.movi(sh, 8);
  b.movi(R(25), 2);

  b.for_range(s, 1, 6, [&] {  // stages: m = 2,4,8,16,32
    b.shl(m, one, s);
    b.div(half, m, R(25));
    b.div(stride, n, m);
    b.movi(k, 0);
    b.while_loop(
        16, [&] { return IrBuilder::LoopCond{Cond::kLt, k, n}; },
        [&] {
          b.for_range_reg(j, 0, half, 16, [&] {
            b.mul(widx, j, stride);
            b.load(wr, widx, 64);
            b.load(wi, widx, 80);
            b.add(a, k, j);        // top index
            b.add(bidx, a, half);  // bottom index
            b.load(xr, a, 0);
            b.load(xi, a, 32);
            b.load(yr, bidx, 0);
            b.load(yi, bidx, 32);
            // butterfly (DIF): top = x + y; bot = (x - y) * w
            b.sub(t1, xr, yr);
            b.sub(t2, xi, yi);
            b.add(xr, xr, yr);
            b.add(xi, xi, yi);
            b.store(a, 0, xr);
            b.store(a, 32, xi);
            b.mul(tr, t1, wr);
            b.mul(ti, t2, wi);
            b.sub(tr, tr, ti);
            b.sar(tr, tr, sh);
            b.mul(ti, t1, wi);
            b.mul(t2, t2, wr);
            b.add(ti, ti, t2);
            b.sar(ti, ti, sh);
            b.store(bidx, 0, tr);
            b.store(bidx, 32, ti);
          });
          b.add(k, k, m);
        });
  });

  // Energy checksum.
  b.movi(sum, 0);
  const auto i2 = R(26);
  b.for_range(i2, 0, 64, [&] {
    b.load(t1, i2, 0);
    b.mul(t1, t1, t1);
    b.sar(t1, t1, sh);
    b.add(sum, sum, t1);
  });
  b.movi(out, 96);
  b.store(out, 0, sum);
  b.halt();

  std::vector<std::int64_t> data(97, 0);
  for (int q = 0; q < 32; ++q) {
    data[static_cast<std::size_t>(q)] = ((q * 37) % 101) - 50;  // real
    data[static_cast<std::size_t>(32 + q)] = 0;                 // imag
  }
  for (int q = 0; q < 16; ++q) {
    const double ang = 2.0 * 3.14159265358979323846 * q / 32.0;
    data[static_cast<std::size_t>(64 + q)] =
        static_cast<std::int64_t>(std::lround(std::cos(ang) * 256.0));
    data[static_cast<std::size_t>(80 + q)] =
        static_cast<std::int64_t>(std::lround(std::sin(ang) * 256.0));
  }
  b.set_data(std::move(data));
  return b.take();
}

/// fir: two FIR stages as in fir.c — a fully unrolled (compiler -O2 style)
/// 16-tap filter over a 64-sample signal into data[96..143], then a
/// decimate-by-2 8-tap stage into data[160..183]. data[190] = checksum.
ir::Program fir() {
  IrBuilder b("fir");
  const auto nn = R(1), acc = R(2), x = R(3), c = R(4), t = R(5), idx = R(6),
             sh = R(7), sum = R(8), out = R(9), two = R(10);

  b.movi(sh, 6);
  b.movi(sum, 0);
  b.movi(two, 2);

  // Filter two frames back to back (fir.c's caller loops over frames).
  b.for_range(R(28), 0, 2, [&] {
  // Stage 1: 16 taps, unrolled.
  b.for_range(nn, 0, 48, [&] {
    b.movi(acc, 0);
    for (int k = 0; k < 16; ++k) {
      b.load(x, nn, k);      // x[n+k]
      b.load(c, R(0), 64 + k);  // taps at data[64..79] (R(0) == 0 base)
      b.mul(t, x, c);
      b.add(acc, acc, t);
    }
    b.sar(acc, acc, sh);
    b.store(nn, 96, acc);
    b.add(sum, sum, acc);
  });

  // Stage 2: decimate by 2 with 8 taps (taps at data[80..87]), unrolled.
  b.for_range(nn, 0, 20, [&] {
    b.mul(idx, nn, two);
    b.movi(acc, 0);
    for (int k = 0; k < 8; ++k) {
      b.load(x, idx, 96 + k);
      b.load(c, R(0), 80 + k);
      b.mul(t, x, c);
      b.add(acc, acc, t);
    }
    b.sar(acc, acc, sh);
    b.store(nn, 160, acc);
    b.add(sum, sum, acc);
  });
  });  // frame loop

  b.movi(out, 190);
  b.store(out, 0, sum);
  b.halt();

  std::vector<std::int64_t> data(191, 0);
  for (int q = 0; q < 64; ++q)
    data[static_cast<std::size_t>(q)] = ((q * 23) % 61) - 30;
  const int taps16[16] = {1, -3, 5, -9, 17, 31, 54, 67,
                          67, 54, 31, 17, -9, 5, -3, 1};
  for (int q = 0; q < 16; ++q)
    data[static_cast<std::size_t>(64 + q)] = taps16[q];
  const int taps8[8] = {3, -9, 17, 54, 54, 17, -9, 3};
  for (int q = 0; q < 8; ++q)
    data[static_cast<std::size_t>(80 + q)] = taps8[q];
  b.set_data(std::move(data));
  return b.take();
}

/// jfdctint: JPEG-style integer DCT — row and column rotation passes with
/// the jfdctint.c FIX_ constants, then a descale/quantize pass over all 64
/// coefficients. Result: data[64] = checksum.
ir::Program jfdctint() {
  IrBuilder b("jfdctint");
  const auto r = R(1), base = R(2), eight = R(3), i = R(4), t = R(5),
             q = R(6), sum = R(7), out = R(8), x0 = R(10), x1 = R(11),
             x2 = R(12), x3 = R(13), c0 = R(14), c1 = R(15), sh = R(16),
             tmp = R(17);

  b.movi(eight, 8);
  b.movi(c0, 4433);   // FIX_0_541196100 style constants
  b.movi(c1, 10703);
  b.movi(sh, 11);

  // JPEG integer DCT constants (jfdctint.c FIX_ values, scale 2^13).
  static const std::int64_t kFix[8] = {2446, 16819, 25172, 12299,
                                       7373, 20995, 16069, 3196};
  const auto c2r = R(18), c3r = R(19);

  // Two full transform+descale rounds (the original is driven repeatedly).
  b.for_range(R(28), 0, 2, [&] {
  // Row pass: 4 rotation butterflies per row, each with the two-multiply
  // rotation structure of jfdctint.c (z1 = (a+b)*c; out = z1 +/- extra).
  b.for_range(r, 0, 8, [&] {
    b.mul(base, r, eight);
    for (int pair = 0; pair < 4; ++pair) {
      b.load(x0, base, pair);
      b.load(x1, base, 7 - pair);
      b.add(x2, x0, x1);
      b.sub(x3, x0, x1);
      b.movi(c2r, kFix[pair]);
      b.movi(c3r, kFix[7 - pair]);
      b.mul(tmp, x2, c0);
      b.sar(tmp, tmp, sh);
      b.mul(x0, x2, c2r);
      b.sar(x0, x0, sh);
      b.add(tmp, tmp, x0);
      b.store(base, pair, tmp);
      b.mul(tmp, x3, c1);
      b.sar(tmp, tmp, sh);
      b.mul(x1, x3, c3r);
      b.sar(x1, x1, sh);
      b.sub(tmp, tmp, x1);
      b.store(base, 7 - pair, tmp);
    }
  });

  // Column pass: same structure with stride 8.
  b.for_range(r, 0, 8, [&] {
    b.mov(base, r);
    for (int pair = 0; pair < 4; ++pair) {
      b.load(x0, base, pair * 8);
      b.load(x1, base, (7 - pair) * 8);
      b.add(x2, x0, x1);
      b.sub(x3, x0, x1);
      b.movi(c2r, kFix[(pair + 2) % 8]);
      b.movi(c3r, kFix[(5 - pair + 8) % 8]);
      b.mul(tmp, x2, c2r);
      b.sar(tmp, tmp, sh);
      b.add(tmp, tmp, x2);
      b.store(base, pair * 8, tmp);
      b.mul(tmp, x3, c3r);
      b.sar(tmp, tmp, sh);
      b.sub(tmp, x3, tmp);
      b.store(base, (7 - pair) * 8, tmp);
    }
  });

  // Descale/quantize pass.
  b.movi(sum, 0);
  b.for_range(i, 0, 64, [&] {
    b.load(t, i, 0);
    b.rem(q, i, eight);
    b.addi(q, q, 1);
    b.div(t, t, q);
    b.store(i, 0, t);
    b.add(sum, sum, t);
  });
  });  // outer repetition loop
  b.movi(out, 64);
  b.store(out, 0, sum);
  b.halt();

  std::vector<std::int64_t> data(65, 0);
  for (int k = 0; k < 64; ++k)
    data[static_cast<std::size_t>(k)] = ((k * 31) % 199) - 99;
  b.set_data(std::move(data));
  return b.take();
}

/// lms: least-mean-squares adaptive 8-tap filter over 48 steps (taps
/// unrolled). Signal at data[0..63]; weights at data[100..107]; per-step
/// desired output is 2*x[n]; per-step power estimates at data[120..167].
/// Results: final weights in place, data[110] = last error.
ir::Program lms() {
  IrBuilder b("lms");
  const auto nn = R(1), y = R(3), x = R(4), w = R(5), t = R(6),
             e = R(8), d = R(9), sh = R(10), mu_sh = R(11),
             out = R(12), wv = R(13);

  b.movi(sh, 8);
  b.movi(mu_sh, 12);
  b.for_range(nn, 0, 48, [&] {
    // y = sum w[k] * x[n+k] >> 8, taps unrolled as the compiler would.
    b.movi(y, 0);
    for (int ku = 0; ku < 8; ++ku) {
      b.load(x, nn, ku);
      b.load(w, R(0), 100 + ku);
      b.mul(t, x, w);
      b.add(y, y, t);
    }
    b.sar(y, y, sh);
    // e = d - y with d = 2*x[n]
    b.load(d, nn, 0);
    b.add(d, d, d);
    b.sub(e, d, y);
    // w[k] += (e * x[n+k]) >> 12, unrolled.
    for (int ku = 0; ku < 8; ++ku) {
      b.load(x, nn, ku);
      b.mul(t, e, x);
      b.sar(t, t, mu_sh);
      b.load(wv, R(0), 100 + ku);
      b.add(wv, wv, t);
      b.store(R(0), 100 + ku, wv);
    }
    // Power-normalization pass (as lms.c's sigma estimate).
    b.movi(t, 0);
    for (int ku = 0; ku < 8; ++ku) {
      b.load(x, nn, ku);
      b.mul(x, x, x);
      b.add(t, t, x);
    }
    b.sar(t, t, sh);
    b.store(nn, 120, t);
  });
  b.movi(out, 110);
  b.store(out, 0, e);
  b.halt();

  std::vector<std::int64_t> data(168, 0);
  for (int q = 0; q < 64; ++q)
    data[static_cast<std::size_t>(q)] = ((q * 41) % 89) - 44;
  b.set_data(std::move(data));
  return b.take();
}

}  // namespace ucp::suite::programs
