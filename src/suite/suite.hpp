#pragma once

#include <string>
#include <vector>

#include "ir/program.hpp"

namespace ucp::suite {

/// One benchmark of the Mälardalen-like suite (Table 1 of the paper). Each
/// program is a faithful mini-ISA re-implementation of the corresponding C
/// kernel's computation and control-flow shape, with loop bounds attached
/// as flow facts (the interpreter validates them on every run).
struct BenchmarkInfo {
  std::string name;         ///< Mälardalen name, e.g. "matmult"
  std::string id;           ///< paper label p1..p37
  std::string category;     ///< sort / math / dsp / matrix / control
  std::string description;  ///< one-line summary of the kernel
  ir::Program (*build)();   ///< constructs a fresh verified program
};

/// All 37 benchmarks in paper order (p1..p37).
const std::vector<BenchmarkInfo>& all_benchmarks();

/// Lookup by name; throws InvalidArgument if unknown.
const BenchmarkInfo& benchmark(const std::string& name);

/// Builds a fresh copy of the named benchmark program.
ir::Program build_benchmark(const std::string& name);

// Individual builders (exposed for focused tests).
namespace programs {
ir::Program bs();
ir::Program bsort100();
ir::Program insertsort();
ir::Program qsort_exam();
ir::Program select();
ir::Program minmax();
ir::Program expint();
ir::Program fac();
ir::Program fibcall();
ir::Program prime();
ir::Program qurt();
ir::Program sqrt_();
ir::Program recursion();
ir::Program janne_complex();
ir::Program whet();
ir::Program adpcm();
ir::Program edn();
ir::Program fdct();
ir::Program fft1();
ir::Program fir();
ir::Program jfdctint();
ir::Program lms();
ir::Program cnt();
ir::Program ludcmp();
ir::Program matmult();
ir::Program minver();
ir::Program st();
ir::Program ud();
ir::Program compress();
ir::Program cover();
ir::Program crc();
ir::Program duff();
ir::Program lcdnum();
ir::Program ndes();
ir::Program ns();
ir::Program nsichneu();
ir::Program statemate();
}  // namespace programs

}  // namespace ucp::suite
