#include "suite/suite.hpp"

#include "ir/lower.hpp"
#include "support/check.hpp"

namespace ucp::suite {

const std::vector<BenchmarkInfo>& all_benchmarks() {
  using namespace programs;
  static const std::vector<BenchmarkInfo> list = {
      {"adpcm", "p1", "dsp", "ADPCM-style encode/decode over a sample buffer",
       &adpcm},
      {"bs", "p2", "sort", "binary search in a 15-entry sorted array", &bs},
      {"bsort100", "p3", "sort", "bubble sort of 100 integers", &bsort100},
      {"cnt", "p4", "matrix", "count and sum positives in a 10x10 matrix",
       &cnt},
      {"compress", "p5", "control", "run-length style buffer compression",
       &compress},
      {"cover", "p6", "control", "switch cascades exercising many paths",
       &cover},
      {"crc", "p7", "control", "bitwise CRC-16 over a 40-byte message", &crc},
      {"duff", "p8", "control", "unrolled copy with a Duff's-device remainder",
       &duff},
      {"edn", "p9", "dsp", "vector MAC / FIR-like inner products", &edn},
      {"expint", "p10", "math", "exponential integral series evaluation",
       &expint},
      {"fac", "p11", "math", "sum of factorials (recursion as bounded loop)",
       &fac},
      {"fdct", "p12", "dsp", "8x8 forward DCT, row/column passes", &fdct},
      {"fft1", "p13", "dsp", "fixed-point radix-2 FFT butterfly passes",
       &fft1},
      {"fibcall", "p14", "math", "iterative Fibonacci", &fibcall},
      {"fir", "p15", "dsp", "FIR filter over a signal window", &fir},
      {"insertsort", "p16", "sort", "insertion sort of 10 integers",
       &insertsort},
      {"janne_complex", "p17", "math", "nested data-dependent loop pair",
       &janne_complex},
      {"jfdctint", "p18", "dsp", "integer JPEG forward DCT slice", &jfdctint},
      {"lcdnum", "p19", "control", "LCD segment decoding of digit stream",
       &lcdnum},
      {"lms", "p20", "dsp", "LMS adaptive filter iteration", &lms},
      {"ludcmp", "p21", "matrix", "LU decomposition and solve (fixed-point)",
       &ludcmp},
      {"matmult", "p22", "matrix", "10x10 integer matrix multiply", &matmult},
      {"minmax", "p23", "sort", "min/max/median scans with branches", &minmax},
      {"minver", "p24", "matrix", "3x3 matrix inversion (fixed-point)",
       &minver},
      {"ndes", "p25", "control", "DES-like permutation/substitution rounds",
       &ndes},
      {"ns", "p26", "control", "4-level nested search over a cube", &ns},
      {"nsichneu", "p27", "control",
       "large Petri-net automaton (hundreds of guarded updates)", &nsichneu},
      {"prime", "p28", "math", "trial-division primality of two numbers",
       &prime},
      {"qsort_exam", "p29", "sort", "iterative quicksort of 20 integers",
       &qsort_exam},
      {"qurt", "p30", "math", "quadratic root via integer Newton iterations",
       &qurt},
      {"recursion", "p31", "math", "bounded Ackermann-like descent as loop",
       &recursion},
      {"select", "p32", "sort", "k-th smallest via partition passes", &select},
      {"sqrt", "p33", "math", "integer square root (bit-by-bit)", &sqrt_},
      {"st", "p34", "matrix", "statistics: mean/variance/correlation", &st},
      {"statemate", "p35", "control",
       "generated statechart step function (guarded state updates)",
       &statemate},
      {"ud", "p36", "matrix", "LU-based linear equation solve, integer", &ud},
      {"whet", "p37", "math", "Whetstone-like mixed arithmetic loops", &whet},
  };
  return list;
}

const BenchmarkInfo& benchmark(const std::string& name) {
  for (const BenchmarkInfo& info : all_benchmarks()) {
    if (info.name == name) return info;
  }
  throw InvalidArgument("unknown benchmark: " + name);
}

ir::Program build_benchmark(const std::string& name) {
  // Experiments run the RISC-lowered form (the code footprint a compiled
  // binary would have); `benchmark(name).build()` gives the builder-level IR.
  return ir::lower(benchmark(name).build());
}

}  // namespace ucp::suite
