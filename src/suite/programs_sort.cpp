// Sorting / searching kernels of the Mälardalen-like suite.
//
// Data-memory conventions are documented per program; tests assert the
// stored results. Loop bounds are flow facts the interpreter validates.

#include "ir/builder.hpp"
#include "suite/suite.hpp"

namespace ucp::suite::programs {

using ir::Cond;
using ir::IrBuilder;
using ir::R;

/// bs: binary search for data[15] in the sorted array data[0..14].
/// Result: data[16] = index of the key, or -1.
ir::Program bs() {
  IrBuilder b("bs");
  const auto lo = R(1), hi = R(2), key = R(3), mid = R(4), val = R(5),
             res = R(6), two = R(7), idx = R(8);

  b.movi(lo, 0);
  b.movi(hi, 14);
  b.movi(idx, 15);
  b.load(key, idx, 0);  // key = data[15]
  b.movi(res, -1);
  b.movi(two, 2);

  b.while_loop(
      5, [&] { return IrBuilder::LoopCond{Cond::kLe, lo, hi}; },
      [&] {
        b.add(mid, lo, hi);
        b.div(mid, mid, two);
        b.load(val, mid, 0);
        b.if_then_else(
            Cond::kEq, val, key,
            [&] {
              b.mov(res, mid);
              b.break_loop();
            },
            [&] {
              b.if_then_else(
                  Cond::kLt, val, key,
                  [&] { b.addi(lo, mid, 1); },
                  [&] { b.addi(hi, mid, -1); });
            });
      });

  b.movi(idx, 16);
  b.store(idx, 0, res);
  b.halt();

  std::vector<std::int64_t> data;
  for (int i = 0; i < 15; ++i) data.push_back(3 * i + 1);  // 1,4,...,43
  data.push_back(25);  // key (= element at index 8)
  data.push_back(0);   // result slot
  b.set_data(std::move(data));
  return b.take();
}

/// bsort100: bubble sort of data[0..99] (initialized descending).
/// Result: data[0..99] ascending; data[100] = number of swap passes done.
ir::Program bsort100() {
  IrBuilder b("bsort100");
  const auto i = R(1), j = R(2), limit = R(3), a0 = R(4), a1 = R(5),
             base = R(6), passes = R(7), tmp = R(8);

  b.movi(passes, 0);
  b.for_range(i, 0, 99, [&] {
    b.movi(limit, 99);
    b.sub(limit, limit, i);  // inner scans [0, 99-i)
    b.for_range_reg(j, 0, limit, 99, [&] {
      b.mov(base, j);
      b.load(a0, base, 0);
      b.load(a1, base, 1);
      b.if_then(Cond::kGt, a0, a1, [&] {
        b.store(base, 0, a1);
        b.store(base, 1, a0);
      });
    });
    b.addi(passes, passes, 1);
  });
  b.movi(tmp, 100);
  b.store(tmp, 0, passes);
  b.halt();

  std::vector<std::int64_t> data;
  for (int k = 0; k < 100; ++k) data.push_back(99 - k);
  data.push_back(0);
  b.set_data(std::move(data));
  return b.take();
}

/// insertsort: insertion sort of data[1..10] with a -inf sentinel in data[0].
/// Result: data[1..10] ascending.
ir::Program insertsort() {
  IrBuilder b("insertsort");
  const auto i = R(1), j = R(2), key = R(3), val = R(4), dst = R(5);

  b.for_range(i, 2, 11, [&] {
    b.load(key, i, 0);
    b.addi(j, i, -1);
    b.while_loop(
        9,
        [&] {
          b.load(val, j, 0);
          return IrBuilder::LoopCond{Cond::kGt, val, key};
        },
        [&] {
          b.store(j, 1, val);  // a[j+1] = a[j]
          b.addi(j, j, -1);
        });
    b.addi(dst, j, 1);
    b.store(dst, 0, key);
  });
  b.halt();

  b.set_data({-1000000, 7, 3, 9, 1, 8, 2, 6, 5, 4, 0});
  return b.take();
}

/// qsort_exam: iterative quicksort (Lomuto) of data[0..19]; explicit range
/// stack at data[32..]. Result: data[0..19] ascending.
ir::Program qsort_exam() {
  IrBuilder b("qsort_exam");
  const auto sp = R(1), lo = R(2), hi = R(3), pivot = R(4), i = R(5),
             j = R(6), vj = R(7), vi = R(8), tmp = R(9), p = R(10),
             stack = R(11);

  b.movi(stack, 32);
  // push (0, 19)
  b.movi(sp, 0);
  b.movi(tmp, 0);
  b.store(stack, 0, tmp);
  b.movi(tmp, 19);
  b.store(stack, 1, tmp);
  b.movi(sp, 2);

  const auto zero = R(12);
  b.movi(zero, 0);
  b.while_loop(
      64, [&] { return IrBuilder::LoopCond{Cond::kGt, sp, zero}; },
      [&] {
        // pop (lo, hi)
        b.addi(sp, sp, -2);
        b.add(tmp, stack, sp);
        b.load(lo, tmp, 0);
        b.load(hi, tmp, 1);
        b.if_then(Cond::kLt, lo, hi, [&] {
          b.load(pivot, hi, 0);
          b.addi(i, lo, -1);
          b.for_range_rr(j, lo, hi, 20, [&] {
            b.load(vj, j, 0);
            b.if_then(Cond::kLe, vj, pivot, [&] {
              b.addi(i, i, 1);
              b.load(vi, i, 0);
              b.store(i, 0, vj);
              b.store(j, 0, vi);
            });
          });
          // move pivot into place: swap a[i+1], a[hi]
          b.addi(p, i, 1);
          b.load(vi, p, 0);
          b.store(p, 0, pivot);
          b.store(hi, 0, vi);
          // push (lo, p-1) and (p+1, hi)
          b.add(tmp, stack, sp);
          b.store(tmp, 0, lo);
          b.addi(vi, p, -1);
          b.store(tmp, 1, vi);
          b.addi(vi, p, 1);
          b.store(tmp, 2, vi);
          b.store(tmp, 3, hi);
          b.addi(sp, sp, 4);
        });
      });
  b.halt();

  std::vector<std::int64_t> data = {12, 3,  17, 8, 0,  19, 5,  14, 9, 1,
                                    16, 7,  11, 2, 18, 6,  13, 4,  15, 10};
  data.resize(96, 0);  // room for the range stack
  b.set_data(std::move(data));
  return b.take();
}

/// select: k-th smallest (k = 10) of data[0..19] via partial selection;
/// Result: data[20] = value of the 10th smallest (0-based index 9).
ir::Program select() {
  IrBuilder b("select");
  const auto i = R(1), j = R(2), minidx = R(3), minval = R(4), v = R(5),
             tmp = R(6), out = R(7), n = R(8);

  b.movi(n, 20);
  b.for_range(i, 0, 10, [&] {
    b.mov(minidx, i);
    b.load(minval, i, 0);
    b.addi(tmp, i, 1);
    b.for_range_rr(j, tmp, n, 19, [&] {
      b.load(v, j, 0);
      b.if_then(Cond::kLt, v, minval, [&] {
        b.mov(minval, v);
        b.mov(minidx, j);
      });
    });
    // swap a[i] and a[minidx]
    b.load(v, i, 0);
    b.store(i, 0, minval);
    b.store(minidx, 0, v);
  });
  b.movi(out, 20);
  b.movi(tmp, 9);
  b.load(v, tmp, 0);
  b.store(out, 0, v);
  b.halt();

  std::vector<std::int64_t> data = {42, 7, 19, 88, 3,  56, 23, 71, 11, 65,
                                    30, 9, 77, 25, 50, 2,  94, 38, 61, 14};
  data.push_back(0);
  b.set_data(std::move(data));
  return b.take();
}

/// minmax: scans data[0..29] computing min, max and a clamped sum with a
/// branchy three-way comparison. Results: data[30]=min, data[31]=max,
/// data[32]=clamped sum.
ir::Program minmax() {
  IrBuilder b("minmax");
  const auto i = R(1), v = R(2), mn = R(3), mx = R(4), sum = R(5), lim = R(6),
             out = R(7);

  b.movi(mn, 1 << 20);
  b.movi(mx, -(1 << 20));
  b.movi(sum, 0);
  b.movi(lim, 40);
  b.for_range(i, 0, 30, [&] {
    b.load(v, i, 0);
    b.if_then(Cond::kLt, v, mn, [&] { b.mov(mn, v); });
    b.if_then(Cond::kGt, v, mx, [&] { b.mov(mx, v); });
    b.if_then_else(
        Cond::kGt, v, lim, [&] { b.add(sum, sum, lim); },
        [&] {
          b.if_then_else(
              Cond::kLt, v, R(8),  // R(8) holds 0 from program start
              [&] { b.nop(); },    // negative values ignored
              [&] { b.add(sum, sum, v); });
        });
  });
  b.movi(out, 30);
  b.store(out, 0, mn);
  b.store(out, 1, mx);
  b.store(out, 2, sum);
  b.halt();

  std::vector<std::int64_t> data;
  for (int k = 0; k < 30; ++k)
    data.push_back(((k * 37) % 101) - 20);  // mix of negatives and > lim
  data.resize(33, 0);
  b.set_data(std::move(data));
  return b.take();
}

}  // namespace ucp::suite::programs
