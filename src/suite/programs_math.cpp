// Arithmetic kernels of the Mälardalen-like suite.

#include "ir/builder.hpp"
#include "suite/suite.hpp"

namespace ucp::suite::programs {

using ir::Cond;
using ir::IrBuilder;
using ir::R;

/// expint: series evaluation of an exponential-integral-like sum in scaled
/// integer arithmetic. Result: data[0] = accumulated series value.
ir::Program expint() {
  IrBuilder b("expint");
  const auto i = R(1), j = R(2), term = R(3), sum = R(4), scale = R(5),
             denom = R(6), out = R(7), t = R(8);

  b.movi(sum, 0);
  b.movi(scale, 1 << 12);
  b.for_range(i, 1, 51, [&] {
    // term = scale / i, refined by an inner product loop
    b.div(term, scale, i);
    b.for_range(j, 1, 6, [&] {
      b.add(denom, i, j);
      b.div(t, term, denom);
      b.add(term, term, t);
    });
    b.add(sum, sum, term);
  });
  b.movi(out, 0);
  b.store(out, 0, sum);
  b.halt();

  b.set_data({0});
  return b.take();
}

/// fac: sum of n! for n in 0..7. Result: data[0] = 0!+1!+...+7! = 5914.
ir::Program fac() {
  IrBuilder b("fac");
  const auto n = R(1), k = R(2), f = R(3), sum = R(4), out = R(5);

  b.movi(sum, 1);  // 0! = 1
  b.for_range(n, 1, 8, [&] {
    b.movi(f, 1);
    b.addi(R(6), n, 1);  // inner loop runs k = 1..n
    b.for_range_reg(k, 1, R(6), 7, [&] { b.mul(f, f, k); });
    b.add(sum, sum, f);
  });
  b.movi(out, 0);
  b.store(out, 0, sum);
  b.halt();

  b.set_data({0});
  return b.take();
}

/// fibcall: iterative Fibonacci. Result: data[0] = fib(30) = 832040.
ir::Program fibcall() {
  IrBuilder b("fibcall");
  const auto i = R(1), a = R(2), c = R(3), prev = R(4), out = R(5);

  b.movi(prev, 0);
  b.movi(a, 1);
  b.for_range(i, 2, 31, [&] {
    b.add(c, a, prev);
    b.mov(prev, a);
    b.mov(a, c);
  });
  b.movi(out, 0);
  b.store(out, 0, a);
  b.halt();

  b.set_data({0});
  return b.take();
}

/// prime: trial-division primality of data[0] and data[1].
/// Results: data[2], data[3] = 1 if prime else 0.
ir::Program prime() {
  IrBuilder b("prime");
  const auto which = R(1), n = R(2), d = R(3), r = R(4), flag = R(5),
             out = R(6), two = R(7), dd = R(8);

  b.movi(two, 2);
  b.for_range(which, 0, 2, [&] {
    b.load(n, which, 0);
    b.movi(flag, 1);
    b.if_then(Cond::kLt, n, two, [&] { b.movi(flag, 0); });
    b.movi(d, 2);
    b.while_loop(
        40,
        [&] {
          b.mul(dd, d, d);
          return IrBuilder::LoopCond{Cond::kLe, dd, n};
        },
        [&] {
          b.rem(r, n, d);
          b.if_then(Cond::kEq, r, R(0), [&] {
            b.movi(flag, 0);
            b.break_loop();
          });
          b.addi(d, d, 1);
        });
    b.addi(out, which, 2);
    b.store(out, 0, flag);
  });
  b.halt();

  b.set_data({1009, 1001, 0, 0});  // 1009 prime; 1001 = 7*11*13
  return b.take();
}

/// qurt: roots of x^2 - 10x + 21 via integer Newton square root of the
/// discriminant. Results: data[0] = larger root (7), data[1] = smaller (3).
ir::Program qurt() {
  IrBuilder b("qurt");
  const auto bco = R(1), cco = R(2), disc = R(3), x = R(4), t = R(5),
             two = R(6), i = R(7), out = R(8), four = R(9);

  b.movi(bco, 10);
  b.movi(cco, 21);
  b.movi(two, 2);
  b.movi(four, 4);
  // disc = b^2 - 4c
  b.mul(disc, bco, bco);
  b.mul(t, four, cco);
  b.sub(disc, disc, t);
  // Newton iterations for sqrt(disc)
  b.mov(x, disc);
  b.if_then(Cond::kEq, x, R(0), [&] { b.movi(x, 1); });
  b.for_range(i, 0, 20, [&] {
    b.div(t, disc, x);
    b.add(x, x, t);
    b.div(x, x, two);
  });
  // roots = (b ± sqrt(disc)) / 2
  b.add(t, bco, x);
  b.div(t, t, two);
  b.movi(out, 0);
  b.store(out, 0, t);
  b.sub(t, bco, x);
  b.div(t, t, two);
  b.store(out, 1, t);
  b.halt();

  b.set_data({0, 0});
  return b.take();
}

/// sqrt: bit-by-bit integer square root of data[0].
/// Result: data[1] = floor(sqrt(data[0])).
ir::Program sqrt_() {
  IrBuilder b("sqrt");
  const auto n = R(1), res = R(2), bit = R(3), t = R(4), i = R(5), out = R(6),
             shift = R(7);

  b.movi(out, 0);
  b.load(n, out, 0);
  b.movi(res, 0);
  b.movi(shift, 30);
  b.movi(bit, 1);
  b.shl(bit, bit, shift);
  b.for_range(i, 0, 16, [&] {
    b.add(t, res, bit);
    b.if_then_else(
        Cond::kGe, n, t,
        [&] {
          b.sub(n, n, t);
          b.movi(shift, 1);
          b.shr(res, res, shift);
          b.add(res, res, bit);
        },
        [&] {
          b.movi(shift, 1);
          b.shr(res, res, shift);
        });
    b.movi(shift, 2);
    b.shr(bit, bit, shift);
  });
  b.store(out, 1, res);
  b.halt();

  b.set_data({1234567890, 0});
  return b.take();
}

/// recursion: fib(12) with an explicit call stack in data memory — the
/// bounded stand-in for the recursive benchmark (our analysis CFG is
/// call-free; see DESIGN.md). Result: data[0] = fib(12) = 144.
ir::Program recursion() {
  IrBuilder b("recursion");
  // Stack frames at data[8..]: each frame = {n, state}. acc accumulates
  // fib leaves (fib(n) = number of leaf frames with n <= 1 weighted).
  const auto sp = R(1), n = R(2), acc = R(3), t = R(4), base = R(5),
             out = R(6), zero = R(7), one = R(8);

  b.movi(base, 8);
  b.movi(zero, 0);
  b.movi(one, 1);
  b.movi(acc, 0);
  // push 12
  b.movi(t, 12);
  b.store(base, 0, t);
  b.movi(sp, 1);

  b.while_loop(
      800, [&] { return IrBuilder::LoopCond{Cond::kGt, sp, zero}; },
      [&] {
        b.addi(sp, sp, -1);
        b.add(t, base, sp);
        b.load(n, t, 0);
        b.if_then_else(
            Cond::kLe, n, one,
            [&] { b.add(acc, acc, n); },  // fib(0)=0, fib(1)=1
            [&] {
              // push n-1 and n-2
              b.add(t, base, sp);
              b.addi(n, n, -1);
              b.store(t, 0, n);
              b.addi(n, n, -1);
              b.store(t, 1, n);
              b.addi(sp, sp, 2);
            });
      });
  b.movi(out, 0);
  b.store(out, 0, acc);
  b.halt();

  std::vector<std::int64_t> data(64, 0);
  b.set_data(std::move(data));
  return b.take();
}

/// janne_complex: the classic pair of data-dependent nested loops whose
/// iteration interplay defeats naive bound analysis.
/// Results: data[0] = final a, data[1] = final b.
ir::Program janne_complex() {
  IrBuilder b("janne_complex");
  const auto a = R(1), bb = R(2), t5 = R(3), t10 = R(4), t12 = R(5),
             t30 = R(6), three = R(7), out = R(8);

  b.movi(a, 1);
  b.movi(bb, 1);
  b.movi(t5, 5);
  b.movi(t10, 10);
  b.movi(t12, 12);
  b.movi(t30, 30);
  b.movi(three, 3);

  b.while_loop(
      30, [&] { return IrBuilder::LoopCond{Cond::kLt, a, t30}; },
      [&] {
        b.while_loop(
            30, [&] { return IrBuilder::LoopCond{Cond::kLt, bb, a}; },
            [&] {
              b.if_then_else(
                  Cond::kGt, bb, t5, [&] { b.mul(bb, bb, three); },
                  [&] { b.addi(bb, bb, 2); });
              b.if_then(Cond::kGe, bb, t10, [&] {
                b.if_then(Cond::kLe, bb, t12, [&] { b.addi(a, a, 10); });
              });
            });
        b.addi(a, a, 1);
        b.addi(bb, bb, -10);
        b.if_then(Cond::kLt, bb, R(0), [&] { b.movi(bb, 1); });
      });
  b.movi(out, 0);
  b.store(out, 0, a);
  b.store(out, 1, bb);
  b.halt();

  b.set_data({0, 0});
  return b.take();
}

/// whet: Whetstone-like mix of multiplies, divides, polynomial evaluation,
/// shift mixing and array updates over eight sequential module loops.
/// Results: data[16..23] = module accumulators.
ir::Program whet() {
  IrBuilder b("whet");
  const auto i = R(1), j = R(2), x = R(3), y = R(4), z = R(5), w = R(6),
             c998 = R(7), out = R(8), t = R(9), c1000 = R(10), acc = R(11),
             v = R(12);

  b.movi(c998, 998);
  b.movi(c1000, 1000);

  // Whetstone runs its module suite for a configured iteration count; two
  // outer iterations keep the full module code hot, as in the original.
  b.for_range(R(28), 0, 2, [&] {
  // Module 1: scaled rational updates on four "registers".
  b.movi(x, 1000);
  b.movi(y, -500);
  b.movi(z, 250);
  b.movi(w, -125);
  b.for_range(i, 0, 40, [&] {
    b.add(t, x, y);
    b.add(t, t, z);
    b.sub(t, t, w);
    b.mul(t, t, c998);
    b.div(x, t, c1000);
    b.sub(t, x, y);
    b.add(t, t, z);
    b.mul(t, t, c998);
    b.div(y, t, c1000);
    b.add(t, x, y);
    b.sub(t, t, z);
    b.mul(t, t, c998);
    b.div(z, t, c1000);
  });
  b.movi(out, 16);
  b.store(out, 0, x);

  // Module 2: Horner polynomial over the table at data[0..7].
  b.movi(acc, 0);
  b.for_range(i, 0, 24, [&] {
    b.movi(t, 0);
    b.for_range(j, 0, 8, [&] {
      b.load(v, j, 0);
      b.mul(t, t, i);
      b.add(t, t, v);
    });
    b.rem(t, t, c1000);
    b.add(acc, acc, t);
  });
  b.store(out, 1, acc);

  // Module 3: array element churn with index arithmetic.
  b.movi(acc, 0);
  b.movi(R(13), 8);
  b.for_range(i, 0, 30, [&] {
    b.rem(t, i, R(13));
    b.load(v, t, 0);
    b.mul(v, v, i);
    b.add(acc, acc, v);
    b.store(t, 8, acc);  // scratch mirror at data[8..15]
  });
  b.store(out, 2, acc);

  // Module 4: conditional branching module.
  b.movi(acc, 0);
  b.movi(v, 1);
  b.for_range(i, 0, 50, [&] {
    b.if_then_else(
        Cond::kGt, v, R(0), [&] { b.addi(acc, acc, 3); },
        [&] { b.addi(acc, acc, -1); });
    b.sub(v, R(0), v);  // v = -v, alternating branch
  });
  b.store(out, 3, acc);

  // Module 5: "trig" polynomial pairs (whetstone's P3 with fixed-point
  // series for sin/cos approximations), unrolled Horner steps.
  const auto xx = R(14), yy = R(15), c3 = R(16);
  b.movi(xx, 512);
  b.movi(yy, 512);
  b.movi(c3, 3);
  b.for_range(i, 0, 32, [&] {
    for (int u = 0; u < 4; ++u) {
      b.mul(t, xx, xx);
      b.div(t, t, c1000);
      b.mul(t, t, c3);
      b.sub(v, yy, t);
      b.mul(yy, xx, c998);
      b.div(yy, yy, c1000);
      b.mov(xx, v);
    }
  });
  b.store(out, 4, xx);

  // Module 6: integer division chains (P0 array addressing).
  b.movi(acc, 1 << 16);
  b.for_range(i, 1, 40, [&] {
    b.div(t, acc, i);
    b.add(acc, acc, t);
    b.rem(t, acc, c998);
    b.sub(acc, acc, t);
    b.addi(acc, acc, 17);
  });
  b.store(out, 5, acc);

  // Module 7: shift/mask mixing (procedure-call module stand-in).
  const auto m1 = R(17), m2 = R(18);
  b.movi(m1, 0x5555);
  b.movi(m2, 0x3333);
  b.movi(acc, 0x1234);
  b.movi(v, 1);
  b.for_range(i, 0, 48, [&] {
    b.and_(t, acc, m1);
    b.shl(t, t, v);
    b.xor_(acc, acc, t);
    b.and_(t, acc, m2);
    b.shr(t, t, v);
    b.or_(acc, acc, t);
    b.rem(acc, acc, c1000);
    b.mul(acc, acc, c3);
    b.addi(acc, acc, 7);
  });
  b.store(out, 6, acc);

  // Module 8: conditional array update sweep.
  b.movi(acc, 0);
  b.for_range(i, 0, 16, [&] {
    b.load(v, i, 8);
    b.if_then_else(
        Cond::kGt, v, acc, [&] { b.mov(acc, v); },
        [&] {
          b.add(v, v, acc);
          b.store(i, 8, v);
        });
  });
  b.store(out, 7, acc);
  });  // module-suite iteration loop
  b.halt();

  std::vector<std::int64_t> data(24, 0);
  const std::int64_t table[8] = {3, -1, 4, 1, -5, 9, -2, 6};
  for (int q = 0; q < 8; ++q) data[static_cast<std::size_t>(q)] = table[q];
  b.set_data(std::move(data));
  return b.take();
}

}  // namespace ucp::suite::programs
