#include "exp/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <bit>
#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string_view>

#include "energy/model.hpp"
#include "support/durable_io.hpp"
#include "support/fault_injection.hpp"

namespace ucp::exp {

namespace {

const char kJournalMagic[] = "# ucp-sweep-journal v";
// v2: rows are journaled in deterministic heaviest-first schedule order (v1
// journaled them in nondeterministic completion order), and sharded sweeps
// declare their slice in the header. v1 journals reset on open.
constexpr std::uint32_t kJournalVersion = 2;
constexpr std::size_t kJournalCells = 40;  ///< data cells + trailing checksum

std::uint64_t fnv1a(std::string_view s,
                    std::uint64_t h = 1469598103934665603ull) {
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::string to_hex(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[v & 0xf];
    v >>= 4;
  }
  return out;
}

bool parse_u64(const std::string& cell, std::uint64_t& out) {
  if (cell.empty() ||
      cell.find_first_not_of("0123456789") != std::string::npos)
    return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(cell.c_str(), &end, 10);
  if (errno != 0 || end != cell.c_str() + cell.size()) return false;
  out = v;
  return true;
}

bool parse_hex64(const std::string& cell, std::uint64_t& out) {
  if (cell.size() != 16 ||
      cell.find_first_not_of("0123456789abcdef") != std::string::npos)
    return false;
  out = 0;
  for (const char c : cell)
    out = (out << 4) | static_cast<std::uint64_t>(
                           c <= '9' ? c - '0' : c - 'a' + 10);
  return true;
}

/// Energies are journaled as the exact bit pattern of the double, not a
/// decimal rendering: resume must reproduce the uninterrupted run bit for
/// bit, and round-tripping through decimal cannot guarantee that.
std::string double_bits(double v) {
  return to_hex(std::bit_cast<std::uint64_t>(v));
}

/// Free-text cells (failure stage/detail) may contain the separator; escape
/// backslash, comma and newline so the row stays one line of N cells.
std::string escape_cell(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case ',':
        out += "\\c";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string unescape_cell(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\' || i + 1 == s.size()) {
      out += s[i];
      continue;
    }
    const char next = s[++i];
    out += next == 'c' ? ',' : next == 'n' ? '\n' : next;
  }
  return out;
}

std::string journal_header(const std::string& grid_fp,
                           const std::string& selection_fp,
                           std::uint32_t shard_index,
                           std::uint32_t shard_count) {
  std::string header = std::string(kJournalMagic) +
                       std::to_string(kJournalVersion) + " grid=" + grid_fp +
                       " sel=" + selection_fp;
  // Unsharded journals carry no shard field, so a merged N-shard journal is
  // byte-identical to a single-process one starting from the header.
  if (shard_count > 1)
    header += " shard=" + std::to_string(shard_index) + "/" +
              std::to_string(shard_count);
  return header;
}

}  // namespace

std::string SweepJournal::selection_fingerprint(
    const SweepOptions& options, const std::vector<std::string>& names) {
  std::uint64_t h = fnv1a("ucp-sweep-selection");
  for (const std::string& n : names) h = fnv1a(n + ";", h);
  h = fnv1a("stride=" + std::to_string(options.config_stride), h);
  for (const energy::TechNode t : options.techs)
    h = fnv1a(energy::tech_name(t), h);
  h = fnv1a("share=" + std::to_string(options.share_across_techs), h);
  h = fnv1a("attempts=" + std::to_string(options.max_attempts), h);
  h = fnv1a("deadline=" + std::to_string(options.case_deadline_ms), h);
  h = fnv1a("audit=" + std::to_string(options.audit_soundness), h);
  // Optimizer knobs that influence which rows a sweep produces.
  const core::OptimizerOptions& o = options.optimizer;
  std::ostringstream opt;
  opt << "opt=" << o.max_passes << '/' << o.require_effectiveness << '/'
      << o.require_acet_non_increase << '/'
      << static_cast<int>(o.accept_rule) << '/' << o.final_audit << '/'
      << o.max_prefetches << '/' << o.max_evaluations << '/' << o.deadline_ms
      << '/' << o.incremental_reanalysis;
  h = fnv1a(opt.str(), h);
  return to_hex(h);
}

std::string SweepJournal::journal_row(const UseCaseResult& r,
                                      std::size_t index) {
  const std::uint32_t audit_flags =
      (r.audit.performed ? 1u : 0u) | (r.audit.violated ? 2u : 0u) |
      (r.audit.inconclusive ? 4u : 0u);
  ilp::SolveStats solver = r.original.solver;
  solver.add(r.report.solver);
  solver.add(r.optimized.solver);
  std::ostringstream row;
  row << "row," << index << ',' << escape_cell(r.program) << ','
      << r.config_id << ',' << energy::tech_name(r.tech) << ','
      << static_cast<int>(r.outcome) << ',' << static_cast<int>(r.fail_code)
      << ',' << escape_cell(r.fail_stage) << ',' << r.attempts << ','
      << r.degradation_level << ',' << audit_flags << ','
      << r.audit.tau_dense << ',' << r.original.tau_wcet << ','
      << r.original.run.mem_cycles << ',' << r.original.run.instructions
      << ',' << r.original.run.total_cycles << ','
      << r.original.run.cache.fetches << ',' << r.original.run.cache.misses
      << ',' << double_bits(r.original.energy.total_nj()) << ','
      << r.optimized.tau_wcet << ',' << r.optimized.run.mem_cycles << ','
      << r.optimized.run.instructions << ',' << r.optimized.run.total_cycles
      << ',' << r.optimized.run.cache.fetches << ','
      << r.optimized.run.cache.misses << ','
      << double_bits(r.optimized.energy.total_nj()) << ','
      << r.report.insertions.size() << ',' << r.report.candidates_found
      << ',' << r.report.candidates_evaluated << ',' << r.report.passes
      << ',' << r.report.full_reanalyses << ','
      << r.report.incremental_reanalyses << ',' << r.report.nodes_reanalyzed
      << ',' << solver.lp_solves << ',' << solver.pivots << ','
      << solver.bb_nodes << ',' << solver.warm_starts << ','
      << solver.phase1_skipped << ',' << escape_cell(r.fail_detail);
  const std::string prefix = row.str();
  return prefix + ',' + to_hex(fnv1a(prefix));
}

bool SweepJournal::parse_journal_row(const std::string& line,
                                     std::size_t& index, UseCaseResult& r) {
  // Split on unescaped commas ("\c" is an escaped comma inside a cell).
  std::vector<std::string> cells(1);
  for (std::size_t i = 0; i < line.size(); ++i) {
    if (line[i] == '\\' && i + 1 < line.size()) {
      cells.back() += line[i];
      cells.back() += line[i + 1];
      ++i;
    } else if (line[i] == ',') {
      cells.emplace_back();
    } else {
      cells.back() += line[i];
    }
  }
  if (cells.size() != kJournalCells || cells[0] != "row") return false;
  const std::size_t checksum_at = line.rfind(',');
  if (checksum_at == std::string::npos ||
      to_hex(fnv1a(std::string_view(line).substr(0, checksum_at))) !=
          cells.back())
    return false;

  std::uint64_t u[31];
  const int cols[] = {1,  5,  6,  8,  9,  10, 11, 12, 13, 14, 15,
                      16, 17, 19, 20, 21, 22, 23, 24, 26, 27, 28,
                      29, 30, 31, 32, 33, 34, 35, 36, 37};
  for (std::size_t i = 0; i < std::size(cols); ++i)
    if (!parse_u64(cells[static_cast<std::size_t>(cols[i])], u[i]))
      return false;
  std::uint64_t e_orig = 0, e_opt = 0;
  if (!parse_hex64(cells[18], e_orig) || !parse_hex64(cells[25], e_opt))
    return false;
  if (u[1] > static_cast<std::uint64_t>(CaseOutcome::kFailed)) return false;
  if (u[2] > static_cast<std::uint64_t>(ErrorCode::kAuditFailed))
    return false;

  r = UseCaseResult{};
  index = static_cast<std::size_t>(u[0]);
  r.program = unescape_cell(cells[2]);
  r.config_id = cells[3];
  if (cells[4] == "45nm") {
    r.tech = energy::TechNode::k45nm;
  } else if (cells[4] == "32nm") {
    r.tech = energy::TechNode::k32nm;
  } else {
    return false;
  }
  r.outcome = static_cast<CaseOutcome>(u[1]);
  r.fail_code = static_cast<ErrorCode>(u[2]);
  r.fail_stage = unescape_cell(cells[7]);
  r.attempts = static_cast<std::uint32_t>(u[3]);
  r.degradation_level = static_cast<std::uint32_t>(u[4]);
  r.audit.performed = (u[5] & 1u) != 0;
  r.audit.violated = (u[5] & 2u) != 0;
  r.audit.inconclusive = (u[5] & 4u) != 0;
  r.audit.tau_dense = u[6];
  r.original.tau_wcet = u[7];
  r.original.run.mem_cycles = u[8];
  r.original.run.instructions = u[9];
  r.original.run.total_cycles = u[10];
  r.original.run.cache.fetches = u[11];
  r.original.run.cache.misses = u[12];
  // Only the total matters downstream; park it in one component (exact:
  // the journaled value IS the bit pattern of total_nj()).
  r.original.energy.cache_dynamic_nj = std::bit_cast<double>(e_orig);
  r.optimized.tau_wcet = u[13];
  r.optimized.run.mem_cycles = u[14];
  r.optimized.run.instructions = u[15];
  r.optimized.run.total_cycles = u[16];
  r.optimized.run.cache.fetches = u[17];
  r.optimized.run.cache.misses = u[18];
  r.optimized.energy.cache_dynamic_nj = std::bit_cast<double>(e_opt);
  r.report.insertions.resize(static_cast<std::size_t>(u[19]));
  r.report.candidates_found = static_cast<std::size_t>(u[20]);
  // Optimizer work accounting rides in the row so resumed and merged
  // sweeps publish the same exp.sweep.* metrics as an uninterrupted run.
  r.report.candidates_evaluated = static_cast<std::size_t>(u[21]);
  r.report.passes = static_cast<std::size_t>(u[22]);
  r.report.full_reanalyses = static_cast<std::size_t>(u[23]);
  r.report.incremental_reanalyses = static_cast<std::size_t>(u[24]);
  r.report.nodes_reanalyzed = static_cast<std::size_t>(u[25]);
  // The task's summed solver work rides in the report slot so a resumed
  // sweep reports the same end-to-end solver totals as an uninterrupted one.
  r.report.solver.lp_solves = u[26];
  r.report.solver.pivots = u[27];
  r.report.solver.bb_nodes = u[28];
  r.report.solver.warm_starts = u[29];
  r.report.solver.phase1_skipped = u[30];
  r.fail_detail = unescape_cell(cells[38]);
  // Reconstruct the report invariants degrade_to_original / the optimizer
  // maintain; none of these enter the fingerprint row.
  r.report.code = r.quarantined() ? r.fail_code : ErrorCode::kOk;
  r.report.detail = r.fail_detail;
  r.report.tau_original = r.original.tau_wcet;
  r.report.tau_optimized = r.optimized.tau_wcet;
  r.report.tau_fixed_final = r.optimized.tau_wcet;
  return true;
}

Status SweepJournal::open(
    const std::string& path, const std::string& grid_fp,
    const std::string& selection_fp, std::uint32_t shard_index,
    std::uint32_t shard_count, std::vector<UseCaseResult>& rows,
    std::vector<bool>& have_row,
    const std::function<bool(std::size_t, const UseCaseResult&)>&
        matches_grid) {
  close();
  path_ = path;
  resumed_ = 0;
  const std::string header =
      journal_header(grid_fp, selection_fp, shard_index, shard_count);

  std::string reset_reason;
  long truncate_at = -1;  ///< byte offset of the first invalid line
  {
    std::ifstream is(path, std::ios::binary);
    if (!is) {
      note_ = "journal started at '" + path + "'";
    } else {
      std::string line;
      long offset = 0;
      if (!std::getline(is, line)) {
        reset_reason = "empty journal";
      } else if (line != header) {
        reset_reason =
            line.rfind(kJournalMagic, 0) == 0
                ? "grid/selection/shard fingerprint changed since last run"
                : "not a sweep journal";
      } else {
        offset = static_cast<long>(line.size()) + 1;
        while (std::getline(is, line)) {
          if (line.empty() || line[0] == '#') {
            // Annotation comment (e.g. "# metrics {...}"): observability
            // metadata, not row data — skip it, keep the offset accounting.
            offset += static_cast<long>(line.size()) + 1;
            continue;
          }
          std::size_t index = 0;
          UseCaseResult r;
          const bool valid = parse_journal_row(line, index, r) &&
                             index < rows.size() && matches_grid(index, r);
          if (!valid) {
            // Torn tail (crash mid-append) or foreign bytes: drop this line
            // and everything after it; every earlier row checksummed clean.
            truncate_at = offset;
            break;
          }
          if (have_row[index]) {
            // Duplicate index: a task re-appended in full after a torn tail
            // left part of it. Identical content is harmless; divergent
            // content is corruption and truncates like a torn tail.
            if (journal_row(rows[index], index) != line) {
              truncate_at = offset;
              break;
            }
          } else {
            rows[index] = std::move(r);
            have_row[index] = true;
            ++resumed_;
          }
          offset += static_cast<long>(line.size()) + 1;
        }
        note_ = resumed_ > 0
                    ? "resumed " + std::to_string(resumed_) +
                          " journaled rows from '" + path + "'" +
                          (truncate_at >= 0 ? " (torn tail truncated)" : "")
                    : "journal at '" + path + "' held no reusable rows";
      }
    }
  }

  if (!reset_reason.empty()) {
    // Stale or foreign journal: checkpoints for a different sweep are
    // worthless. Start over with a fresh header.
    std::fill(have_row.begin(), have_row.end(), false);
    resumed_ = 0;
    note_ = "journal reset (" + reset_reason + ")";
    std::remove(path.c_str());
  } else if (truncate_at >= 0) {
    if (::truncate(path.c_str(), truncate_at) != 0)
      return Status(ErrorCode::kInternal,
                    "cannot truncate torn journal tail of '" + path +
                        "': " + std::strerror(errno));
  }

  const bool creating = !std::ifstream(path).good();
  file_ = std::fopen(path.c_str(), "ab");
  if (!file_)
    return Status(ErrorCode::kInternal,
                  "cannot open journal '" + path + "' for append: " +
                      std::strerror(errno));
  if (creating) {
    const std::string first = header + "\n";
    if (std::fwrite(first.data(), 1, first.size(), file_) != first.size() ||
        std::fflush(file_) != 0) {
      close();
      return Status(ErrorCode::kInternal,
                    "cannot write journal header to '" + path + "'");
    }
    Status synced = support::fsync_fd(fileno(file_), "journal '" + path + "'");
    if (synced.ok()) synced = support::fsync_parent(path);
    if (!synced.ok()) {
      close();
      return synced;
    }
  }
  return Status::Ok();
}

Status SweepJournal::append(const std::vector<UseCaseResult>& results,
                            std::size_t first, std::size_t count) {
  return append_batch(results, {{first, count}});
}

Status SweepJournal::append_batch(
    const std::vector<UseCaseResult>& results,
    const std::vector<std::pair<std::size_t, std::size_t>>& ranges) {
  if (!active())
    return Status(ErrorCode::kInternal, "journal is not active");
  std::string buffer;
  for (const auto& [first, count] : ranges)
    for (std::size_t k = 0; k < count; ++k)
      buffer += journal_row(results[first + k], first + k) + "\n";
  if (buffer.empty()) return Status::Ok();

  if (UCP_FAULT_POINT("io.journal_kill")) {
    // Simulated power loss mid-append: flush a *partial* record to disk and
    // die without unwinding. The recovery test asserts the torn tail is
    // truncated on resume and the rows before it survive.
    const std::size_t torn = buffer.size() > 7 ? buffer.size() - 7 : 0;
    std::fwrite(buffer.data(), 1, torn, file_);
    std::fflush(file_);
    ::fsync(fileno(file_));
    ::raise(SIGKILL);
  }

  const bool injected = UCP_FAULT_POINT("io.journal_write");
  if (injected ||
      std::fwrite(buffer.data(), 1, buffer.size(), file_) != buffer.size() ||
      std::fflush(file_) != 0) {
    // A sweep without checkpoints beats no sweep: disable the journal and
    // let the caller report it.
    const std::string why =
        injected ? "injected journal write failure"
                 : std::string("journal append failed: ") +
                       std::strerror(errno);
    close();
    return Status(ErrorCode::kInternal, why);
  }
  return support::fsync_fd(fileno(file_), "journal '" + path_ + "'");
}

Status SweepJournal::annotate(const std::string& text) {
  if (!active())
    return Status(ErrorCode::kInternal, "journal is not active");
  // Comments are skipped (and offset-accounted) by open(), so annotations
  // never perturb resume. Newlines would turn one comment into a torn-tail
  // candidate; flatten them.
  std::string line = "# ";
  for (const char c : text) line += c == '\n' ? ' ' : c;
  line += '\n';
  if (UCP_FAULT_POINT("obs.sink_write") ||
      std::fwrite(line.data(), 1, line.size(), file_) != line.size() ||
      std::fflush(file_) != 0) {
    // Annotations are observability, not checkpoints: report the failure
    // but leave the journal active — rows still append.
    return Status(ErrorCode::kInternal,
                  "journal annotation failed on '" + path_ + "'");
  }
  return support::fsync_fd(fileno(file_), "journal '" + path_ + "'");
}

void SweepJournal::close() {
  if (file_) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

namespace {

/// Parses "<magic><version> grid=<fp> sel=<fp>[ shard=<i>/<N>]". Returns
/// false on anything else (including other versions: row-order semantics
/// changed in v2, so older journals cannot be merged).
bool parse_merge_header(const std::string& line, std::string& grid_fp,
                        std::string& sel_fp, std::uint64_t& shard_index,
                        std::uint64_t& shard_count) {
  const std::string magic =
      std::string(kJournalMagic) + std::to_string(kJournalVersion) + " grid=";
  if (line.rfind(magic, 0) != 0) return false;
  std::string rest = line.substr(magic.size());
  const std::size_t sel_at = rest.find(" sel=");
  if (sel_at == std::string::npos) return false;
  grid_fp = rest.substr(0, sel_at);
  rest = rest.substr(sel_at + 5);
  shard_index = 0;
  shard_count = 1;
  const std::size_t shard_at = rest.find(" shard=");
  if (shard_at == std::string::npos) {
    sel_fp = rest;
    return true;
  }
  sel_fp = rest.substr(0, shard_at);
  const std::string shard = rest.substr(shard_at + 7);
  const std::size_t slash = shard.find('/');
  if (slash == std::string::npos) return false;
  return parse_u64(shard.substr(0, slash), shard_index) &&
         parse_u64(shard.substr(slash + 1), shard_count) &&
         shard_count > 1 && shard_index < shard_count;
}

}  // namespace

const char* merge_reason_name(MergeDiagnostic::Reason reason) {
  switch (reason) {
    case MergeDiagnostic::Reason::kNone: return "none";
    case MergeDiagnostic::Reason::kMissingFile: return "missing-file";
    case MergeDiagnostic::Reason::kBadHeader: return "bad-header";
    case MergeDiagnostic::Reason::kGridMismatch: return "grid-mismatch";
    case MergeDiagnostic::Reason::kSelectionMismatch:
      return "selection-mismatch";
    case MergeDiagnostic::Reason::kShardCountMismatch:
      return "shard-count-mismatch";
    case MergeDiagnostic::Reason::kDuplicateShard: return "duplicate-shard";
    case MergeDiagnostic::Reason::kChecksum: return "checksum";
    case MergeDiagnostic::Reason::kForeignRow: return "foreign-row";
    case MergeDiagnostic::Reason::kWrongShard: return "wrong-shard";
    case MergeDiagnostic::Reason::kDivergent: return "divergent";
    case MergeDiagnostic::Reason::kMissingShard: return "missing-shard";
    case MergeDiagnostic::Reason::kGap: return "gap";
  }
  return "unknown";
}

Expected<JournalMerge> merge_sweep_journals(
    const std::vector<std::string>& inputs, const SweepOptions& options,
    const std::string& output_path, MergeDiagnostic* diagnostic) {
  if (diagnostic) *diagnostic = MergeDiagnostic{};
  if (inputs.empty())
    return Status(ErrorCode::kInternal, "no journals to merge");

  // The plan is the deterministic contract every shard derived its slice
  // from: it fixes the grid layout (row index -> program/config/tech), the
  // schedule order (row order of the merged journal) and shard ownership.
  SweepPlan plan = build_sweep_plan(options);
  const auto& configs = cache::paper_cache_configs();
  const std::string grid_fp = sweep_grid_fingerprint();
  const std::string sel_fp =
      SweepJournal::selection_fingerprint(options, plan.names);
  std::vector<std::size_t> schedule_pos(plan.tasks.size(), 0);
  for (std::size_t pos = 0; pos < plan.schedule.size(); ++pos)
    schedule_pos[plan.schedule[pos]] = pos;

  JournalMerge merge;
  merge.results.resize(plan.result_rows);
  merge.rows = plan.result_rows;
  std::vector<std::string> row_line(plan.result_rows);
  std::vector<bool> have(plan.result_rows, false);
  std::vector<bool> shard_seen;

  // Every rejection funnels through `fail`: the Status keeps the
  // human-readable sentence, the optional MergeDiagnostic records the same
  // rejection as (reason, file, row) so callers need not parse prose.
  auto fail = [&](MergeDiagnostic::Reason reason, const std::string& file,
                  const std::string& why, ErrorCode code =
                      ErrorCode::kCorruptCache) {
    const std::string message =
        file.empty() ? why : "journal '" + file + "': " + why;
    if (diagnostic) {
      diagnostic->reason = reason;
      diagnostic->file = file;
      diagnostic->detail = message;
    }
    return Status(code, message);
  };

  for (const std::string& path : inputs) {
    std::ifstream is(path, std::ios::binary);
    if (!is) {
      if (diagnostic) {
        diagnostic->reason = MergeDiagnostic::Reason::kMissingFile;
        diagnostic->file = path;
        diagnostic->detail = "cannot open journal '" + path + "' for merge";
      }
      return Status(ErrorCode::kNotFound,
                    "cannot open journal '" + path + "' for merge");
    }
    auto reject = [&](MergeDiagnostic::Reason reason, const std::string& why) {
      return fail(reason, path, why);
    };
    auto reject_row = [&](MergeDiagnostic::Reason reason, std::size_t index,
                          const std::string& why) {
      const Status status = fail(reason, path, why);
      if (diagnostic) {
        diagnostic->row_index = index;
        diagnostic->has_row = true;
      }
      return status;
    };
    using Reason = MergeDiagnostic::Reason;
    std::string line;
    if (!std::getline(is, line))
      return reject(Reason::kBadHeader, "empty file");
    std::string got_grid, got_sel;
    std::uint64_t shard_index = 0, shard_count = 1;
    if (!parse_merge_header(line, got_grid, got_sel, shard_index,
                            shard_count))
      return reject(Reason::kBadHeader,
                    "not a v" + std::to_string(kJournalVersion) +
                        " sweep journal header: '" + line + "'");
    if (got_grid != grid_fp)
      return reject(Reason::kGridMismatch,
                    "grid fingerprint mismatch (journal " + got_grid +
                        ", sweep " + grid_fp + ")");
    if (got_sel != sel_fp)
      return reject(Reason::kSelectionMismatch,
                    "selection fingerprint mismatch (journal " + got_sel +
                        ", sweep " + sel_fp + ")");
    if (shard_seen.empty()) {
      merge.shard_count = static_cast<std::uint32_t>(shard_count);
      shard_seen.assign(static_cast<std::size_t>(shard_count), false);
    } else if (shard_count != shard_seen.size()) {
      return reject(Reason::kShardCountMismatch,
                    "shard count mismatch (declares " +
                        std::to_string(shard_count) +
                        " shards, earlier input " +
                        std::to_string(shard_seen.size()) + ")");
    }
    if (shard_seen[static_cast<std::size_t>(shard_index)])
      return reject(Reason::kDuplicateShard,
                    "duplicate shard " + std::to_string(shard_index) + "/" +
                        std::to_string(shard_count));
    shard_seen[static_cast<std::size_t>(shard_index)] = true;

    std::size_t rows_read = 0;
    while (std::getline(is, line)) {
      if (line.empty() || line[0] == '#') continue;  // annotations
      std::size_t index = 0;
      UseCaseResult r;
      if (!SweepJournal::parse_journal_row(line, index, r))
        // A torn tail is legal in a crashed journal, but a *merge* needs
        // every row; fail loudly rather than silently dropping the tail.
        // Report the 0-based position of the bad row within this file's
        // data rows — its grid index is unknowable when the row is torn.
        return reject_row(
            Reason::kChecksum, rows_read,
            "invalid or torn row (merge requires complete shard "
            "journals; re-run the shard to completion)");
      ++rows_read;
      if (index >= plan.result_rows)
        return reject_row(Reason::kForeignRow, index,
                          "row index " + std::to_string(index) +
                              " outside the sweep grid");
      const std::size_t t = index / options.techs.size();
      const std::size_t k = index % options.techs.size();
      if (r.program != plan.names[plan.tasks[t].program] ||
          r.config_id != configs[plan.tasks[t].config].id ||
          r.tech != options.techs[k])
        return reject_row(Reason::kForeignRow, index,
                          "row " + std::to_string(index) +
                              " does not match the sweep grid");
      if (SweepPlan::shard_of(schedule_pos[t], merge.shard_count) !=
          shard_index)
        return reject_row(Reason::kWrongShard, index,
                          "row " + std::to_string(index) +
                              " is not owned by shard " +
                              std::to_string(shard_index) + "/" +
                              std::to_string(shard_count));
      if (have[index]) {
        // Within one shard a task may be re-appended after a torn tail;
        // identical content is harmless, divergence is corruption.
        if (row_line[index] != line)
          return reject_row(Reason::kDivergent, index,
                            "row " + std::to_string(index) +
                                " appears twice with divergent content");
        continue;
      }
      merge.results[index] = std::move(r);
      row_line[index] = line;
      have[index] = true;
    }
  }

  for (std::size_t s = 0; s < shard_seen.size(); ++s)
    if (!shard_seen[s])
      return fail(MergeDiagnostic::Reason::kMissingShard, "",
                  "shard " + std::to_string(s) + "/" +
                      std::to_string(shard_seen.size()) +
                      " is missing from the merge inputs");
  std::size_t missing = 0;
  std::size_t first_missing = plan.result_rows;
  for (std::size_t i = 0; i < have.size(); ++i) {
    if (have[i]) continue;
    ++missing;
    first_missing = std::min(first_missing, i);
  }
  if (missing > 0) {
    const Status status =
        fail(MergeDiagnostic::Reason::kGap, "",
             std::to_string(missing) +
                 " grid rows missing from the merge inputs (first: row " +
                 std::to_string(first_missing) +
                 ") — every shard must have run to completion");
    if (diagnostic) {
      diagnostic->row_index = first_missing;
      diagnostic->has_row = true;
    }
    return status;
  }

  merge.fingerprint = sweep_results_fingerprint(merge.results);

  if (!output_path.empty()) {
    // Reassemble the byte-identical unsharded journal: same header (no
    // shard field), same rows, same deterministic schedule order, and the
    // original row bytes (never re-serialized). Published durably —
    // temp + fsync + rename — like the memo cache.
    const std::string tmp = output_path + ".tmp";
    {
      std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
      if (!os)
        return Status(ErrorCode::kInternal,
                      "cannot open '" + tmp + "' for writing");
      os << journal_header(grid_fp, sel_fp, 0, 1) << '\n';
      for (const std::size_t t : plan.schedule) {
        const std::size_t first = plan.tasks[t].first;
        for (std::size_t k = 0; k < options.techs.size(); ++k)
          os << row_line[first + k] << '\n';
      }
      os.flush();
      if (!os) {
        std::remove(tmp.c_str());
        return Status(ErrorCode::kInternal, "write to '" + tmp + "' failed");
      }
    }
    Status synced = support::fsync_path(tmp);
    if (synced.ok() && std::rename(tmp.c_str(), output_path.c_str()) != 0)
      synced = Status(ErrorCode::kInternal, "rename '" + tmp + "' -> '" +
                                                output_path + "' failed");
    if (synced.ok()) synced = support::fsync_parent(output_path);
    if (!synced.ok()) {
      std::remove(tmp.c_str());
      return synced;
    }
  }
  return merge;
}

}  // namespace ucp::exp
