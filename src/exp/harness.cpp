#include "exp/harness.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <numeric>
#include <optional>
#include <sstream>
#include <string_view>
#include <thread>

#include "analysis/cache_analysis.hpp"
#include "analysis/context_graph.hpp"
#include "exp/journal.hpp"
#include "ir/layout.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "obs/trace.hpp"
#include "suite/suite.hpp"
#include "support/cancellation.hpp"
#include "support/check.hpp"
#include "support/durable_io.hpp"
#include "support/fault_injection.hpp"
#include "support/parallel.hpp"
#include "wcet/ipet.hpp"

namespace ucp::exp {

namespace {

// A zero denominator yields the neutral 1.0; the UseCaseResult degenerate
// flags surface the condition so aggregates count it instead of hiding it.
double ratio(double num, double den) { return den == 0.0 ? 1.0 : num / den; }

}  // namespace

const char* case_outcome_name(CaseOutcome outcome) {
  switch (outcome) {
    case CaseOutcome::kCompleted:
      return "completed";
    case CaseOutcome::kDegraded:
      return "degraded";
    case CaseOutcome::kFailed:
      return "failed";
  }
  return "unknown";
}

Expected<Metrics> measure_checked(const ir::Program& program,
                                  const cache::CacheConfig& config,
                                  energy::TechNode tech,
                                  const wcet::IpetSystem* shared_ipet) {
  if (UCP_FAULT_POINT("exp.measure")) {
    return Status(ErrorCode::kFaultInjected,
                  "injected measurement failure for '" + program.name() +
                      "'");
  }
  const cache::MemTiming timing = energy::derive_timing(config, tech);

  Metrics m;
  // Static side: VIVU + must/may + IPET. With a shared system the context
  // graph and IPET constraint matrix come prebuilt (they depend only on the
  // program, not the configuration); only the classification-dependent
  // objective is solved per call.
  const ir::Layout layout(program, config.block_bytes);
  m.code_bytes = layout.code_bytes();
  std::optional<analysis::ContextGraph> own_graph;
  if (!shared_ipet) own_graph.emplace(program);
  const analysis::ContextGraph& graph =
      shared_ipet ? shared_ipet->graph() : *own_graph;
  const analysis::CacheAnalysisResult cls =
      analysis::analyze_cache(graph, layout, config);
  const wcet::WcetResult wcet = shared_ipet
                                    ? shared_ipet->solve(cls, timing)
                                    : wcet::compute_wcet(graph, cls, timing);
  m.solver = wcet.stats;
  if (!wcet.ok()) {
    return Status(wcet::solve_error_code(wcet.status),
                  "IPET failed (" + ilp::status_name(wcet.status) +
                      ") for program '" + program.name() + "'");
  }
  m.tau_wcet = wcet.tau_mem;

  // Dynamic side: trace simulation + energy model.
  Expected<sim::RunMetrics> run =
      sim::run_program_checked(program, config, timing);
  if (!run.ok()) return run.status();
  m.run = std::move(run).value();
  m.energy = energy::memory_energy(m.run, config, tech);
  return m;
}

Metrics measure(const ir::Program& program, const cache::CacheConfig& config,
                energy::TechNode tech) {
  Expected<Metrics> m = measure_checked(program, config, tech);
  UCP_CHECK_MSG(m.ok(), "measure failed — " + m.status().message());
  return std::move(m).value();
}

double UseCaseResult::wcet_ratio() const {
  return ratio(static_cast<double>(optimized.tau_wcet),
               static_cast<double>(original.tau_wcet));
}

double UseCaseResult::acet_ratio() const {
  return ratio(static_cast<double>(optimized.run.mem_cycles),
               static_cast<double>(original.run.mem_cycles));
}

double UseCaseResult::energy_ratio() const {
  return ratio(optimized.energy.total_nj(), original.energy.total_nj());
}

double UseCaseResult::instr_ratio() const {
  return ratio(static_cast<double>(optimized.run.instructions),
               static_cast<double>(original.run.instructions));
}

namespace {

/// Quarantines `result` as degraded: the shipped binary is the original, so
/// the optimized metrics mirror the original ones (wcet_ratio() == 1) and
/// the optimization report is reset to "no insertions".
void degrade_to_original(UseCaseResult& result, const std::string& stage,
                         ErrorCode code, const std::string& detail) {
  result.outcome = CaseOutcome::kDegraded;
  result.fail_stage = stage;
  result.fail_code = code;
  result.fail_detail = detail;
  result.optimized = result.original;
  // Mirrored metrics, not a second measurement: no solver work behind them.
  result.optimized.solver = ilp::SolveStats{};
  result.report = core::OptimizationReport{};
  result.report.code = code;
  result.report.detail = detail;
  result.report.tau_original = result.original.tau_wcet;
  result.report.tau_optimized = result.original.tau_wcet;
  result.report.tau_fixed_final = result.original.tau_wcet;
}

}  // namespace

UseCaseResult run_use_case(const ir::Program& program,
                           const std::string& program_name,
                           const cache::NamedCacheConfig& config,
                           energy::TechNode tech,
                           const core::OptimizerOptions& options,
                           const wcet::IpetSystem* shared_ipet) {
  UseCaseResult result;
  result.program = program_name;
  result.config_id = config.id;
  result.config = config.config;
  result.tech = tech;

  if (UCP_FAULT_POINT("exp.task")) {
    throw InternalError("injected failure at the sweep task boundary for '" +
                        program_name + "'");
  }

  Expected<Metrics> original =
      measure_checked(program, config.config, tech, shared_ipet);
  if (!original.ok()) {
    // No baseline: nothing sound can be reported for this case.
    result.outcome = CaseOutcome::kFailed;
    result.fail_stage = "measure_original";
    result.fail_code = original.code();
    result.fail_detail = original.status().detail();
    return result;
  }
  result.original = std::move(original).value();

  const cache::MemTiming timing = energy::derive_timing(config.config, tech);
  core::OptimizationResult opt = core::optimize_prefetches(
      program, config.config, timing, options, shared_ipet);
  if (opt.report.code != ErrorCode::kOk) {
    // Theorem 1 fallback: the identity transform is always sound, so a
    // solver blowup inside the optimizer degrades the case instead of
    // killing the sweep.
    degrade_to_original(result, "optimize", opt.report.code,
                        opt.report.detail);
    return result;
  }
  result.report = opt.report;

  // No insertions means the optimized program IS the input program, so the
  // shared system still applies; otherwise the program changed and the
  // measurement builds its own graph.
  Expected<Metrics> optimized = measure_checked(
      opt.program, config.config, tech,
      opt.report.insertions.empty() ? shared_ipet : nullptr);
  if (!optimized.ok()) {
    degrade_to_original(result, "measure_optimized", optimized.code(),
                        optimized.status().detail());
    return result;
  }
  result.optimized = std::move(optimized).value();
  return result;
}

namespace {

std::uint64_t ns_since(std::chrono::steady_clock::time_point start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

}  // namespace

std::vector<UseCaseResult> run_use_case_group(
    const ir::Program& program, const std::string& program_name,
    const cache::NamedCacheConfig& config,
    const std::vector<energy::TechNode>& techs,
    const core::OptimizerOptions& options, StageTimings* timings,
    const wcet::IpetSystem* shared_ipet, bool audit_soundness,
    ir::Program* optimized_out) {
  // Identity transform until a group completes: every early-out path below
  // (failed baseline, rejected optimization, audit demotion) vouches for
  // the input program, which is trivially Theorem-1 sound.
  if (optimized_out) *optimized_out = program;
  std::vector<UseCaseResult> out(techs.size());
  for (std::size_t i = 0; i < techs.size(); ++i) {
    out[i].program = program_name;
    out[i].config_id = config.id;
    out[i].config = config.config;
    out[i].tech = techs[i];
  }
  if (techs.empty()) return out;

  if (UCP_FAULT_POINT("exp.task")) {
    throw InternalError("injected failure at the sweep task boundary for '" +
                        program_name + "'");
  }

  // Group the tech nodes by derived memory timing: every quantity except
  // the energy pricing depends on the tech node only through the timing, so
  // equal timings share one analysis/optimization/simulation verbatim.
  std::vector<cache::MemTiming> group_timing;
  std::vector<std::vector<std::size_t>> group_members;
  for (std::size_t i = 0; i < techs.size(); ++i) {
    const cache::MemTiming t = energy::derive_timing(config.config, techs[i]);
    std::size_t g = group_timing.size();
    for (std::size_t k = 0; k < group_timing.size(); ++k) {
      if (group_timing[k].hit_cycles == t.hit_cycles &&
          group_timing[k].miss_cycles == t.miss_cycles &&
          group_timing[k].prefetch_latency == t.prefetch_latency) {
        g = k;
        break;
      }
    }
    if (g == group_timing.size()) {
      group_timing.push_back(t);
      group_members.emplace_back();
    }
    group_members[g].push_back(i);
  }

  for (std::size_t g = 0; g < group_timing.size(); ++g) {
    const cache::MemTiming& timing = group_timing[g];
    const std::vector<std::size_t>& members = group_members[g];
    const energy::TechNode lead = techs[members.front()];

    auto stage_start = std::chrono::steady_clock::now();
    const Expected<Metrics> original =
        measure_checked(program, config.config, lead, shared_ipet);
    if (timings) timings->measure_ns += ns_since(stage_start);
    if (!original.ok()) {
      for (std::size_t m : members) {
        out[m].outcome = CaseOutcome::kFailed;
        out[m].fail_stage = "measure_original";
        out[m].fail_code = original.code();
        out[m].fail_detail = original.status().detail();
      }
      continue;
    }
    for (std::size_t m : members) {
      out[m].original = original.value();
      out[m].original.energy =
          energy::memory_energy(out[m].original.run, config.config, techs[m]);
      // The solver work was spent once for the whole group; crediting it to
      // every member would multiply it in sweep-wide sums, so only the lead
      // member carries it.
      if (m != members.front()) out[m].original.solver = ilp::SolveStats{};
    }

    stage_start = std::chrono::steady_clock::now();
    const core::OptimizationResult opt = core::optimize_prefetches(
        program, config.config, timing, options, shared_ipet);
    if (timings) timings->optimize_ns += ns_since(stage_start);
    if (opt.report.code != ErrorCode::kOk) {
      for (std::size_t m : members)
        degrade_to_original(out[m], "optimize", opt.report.code,
                            opt.report.detail);
      continue;
    }

    stage_start = std::chrono::steady_clock::now();
    const Expected<Metrics> optimized = measure_checked(
        opt.program, config.config, lead,
        opt.report.insertions.empty() ? shared_ipet : nullptr);
    if (timings) timings->measure_ns += ns_since(stage_start);
    for (std::size_t m : members) {
      out[m].report = opt.report;
      if (m != members.front()) out[m].report.solver = ilp::SolveStats{};
      if (!optimized.ok()) {
        degrade_to_original(out[m], "measure_optimized", optimized.code(),
                            optimized.status().detail());
        continue;
      }
      out[m].optimized = optimized.value();
      out[m].optimized.energy = energy::memory_energy(
          out[m].optimized.run, config.config, techs[m]);
      if (m != members.front()) out[m].optimized.solver = ilp::SolveStats{};
    }

    // --- soundness auditor ------------------------------------------------
    // Every accepted optimization is re-checked over an independent path:
    // Theorem 1 and the sim-vs-IPET bound are free; when prefetches were
    // actually inserted, the memory contribution is recomputed through the
    // dense-tableau reference ILP solver (no shared pivoting code, no fault
    // points) on a fresh cache analysis of the optimized program. A
    // contradiction demotes the case to quarantined (kAuditFailed) — the
    // sweep reports it and carries on. None of this touches the row's
    // metrics or solver counters, so audited rows stay bit-identical.
    if (audit_soundness && opt.report.code == ErrorCode::kOk &&
        optimized.ok()) {
      stage_start = std::chrono::steady_clock::now();
      AuditRecord audit;
      audit.performed = true;
      const Metrics& orig = original.value();
      const Metrics& opti = optimized.value();
      if (UCP_FAULT_POINT("audit.mismatch")) {
        audit.violated = true;
        audit.detail = "injected audit mismatch on '" + program_name + "'";
      } else if (opti.tau_wcet > orig.tau_wcet) {
        audit.violated = true;
        audit.detail = "Theorem 1 violated: optimized tau_w " +
                       std::to_string(opti.tau_wcet) + " > original " +
                       std::to_string(orig.tau_wcet);
      } else if (orig.run.mem_cycles > orig.tau_wcet) {
        // Sim-vs-IPET holds only for the prefetch-free original binary:
        // there, the simulator's mem_cycles and tau_w measure the same
        // quantity, so one concrete run above the bound disproves it. The
        // optimized binary's mem_cycles also count prefetch-issue traffic
        // that tau_w excludes by definition (prefetches fill slack), so
        // the raw comparison is not a soundness predicate on that side —
        // the optimized binary is checked via Theorem 1 and the dense
        // recomputation below instead.
        audit.violated = true;
        audit.detail =
            "simulated memory cycles exceed the IPET bound on the original "
            "binary (" +
            std::to_string(orig.run.mem_cycles) + " > " +
            std::to_string(orig.tau_wcet) + ")";
      } else if (!opt.report.insertions.empty()) {
        std::optional<analysis::ContextGraph> audit_graph;
        std::optional<wcet::IpetSystem> audit_ipet;
        if (!shared_ipet) {
          audit_graph.emplace(program);
          audit_ipet.emplace(*audit_graph);
        }
        const wcet::IpetSystem& ipet =
            shared_ipet ? *shared_ipet : *audit_ipet;
        // Prefetch insertion never alters the CFG, so the input program's
        // context graph (and constraint matrix) still describes the
        // optimized program; only the layout-dependent objective changes.
        const ir::Layout opt_layout(opt.program, config.config.block_bytes);
        const analysis::CacheAnalysisResult cls = analysis::analyze_cache(
            ipet.graph(), opt.program, opt_layout, config.config);
        const ilp::Model model = ipet.model_with_objective(cls, timing);
        const ilp::Solution dense = ilp::solve_ilp_dense_reference(model);
        if (dense.status != ilp::SolveStatus::kOptimal) {
          audit.inconclusive = true;
          audit.detail = "dense reference solver returned " +
                         ilp::status_name(dense.status) +
                         "; optimizer result unconfirmed";
        } else {
          audit.tau_dense =
              static_cast<std::uint64_t>(std::llround(dense.objective));
          if (audit.tau_dense != opti.tau_wcet) {
            audit.violated = true;
            audit.detail = "dense-reference tau_w " +
                           std::to_string(audit.tau_dense) +
                           " disagrees with the sparse solver's " +
                           std::to_string(opti.tau_wcet);
          } else if (audit.tau_dense > orig.tau_wcet) {
            audit.violated = true;
            audit.detail = "Theorem 1 violated by the dense reference: " +
                           std::to_string(audit.tau_dense) + " > " +
                           std::to_string(orig.tau_wcet);
          }
        }
      }
      if (timings) timings->audit_ns += ns_since(stage_start);
      for (std::size_t m : members) {
        out[m].audit = audit;
        if (audit.violated)
          degrade_to_original(out[m], "audit", ErrorCode::kAuditFailed,
                              audit.detail);
      }
    }

    if (optimized_out &&
        out[members.front()].outcome == CaseOutcome::kCompleted)
      *optimized_out = opt.program;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Sweep memo cache, format v2 (versioned, fingerprinted, checksummed).
// ---------------------------------------------------------------------------

namespace {

const char kCacheMagic[] = "# ucp-sweep-cache v";
const char kCacheColumns[] =
    "program,config,tech,o_tau,o_mem,o_instr,o_energy,o_fetches,"
    "o_misses,o_cycles,p_tau,p_mem,p_instr,p_energy,p_fetches,p_misses,"
    "p_cycles,prefetches,candidates,checksum";
constexpr std::size_t kCacheCells = 20;  ///< data cells + trailing checksum

std::uint64_t fnv1a(std::string_view s,
                    std::uint64_t h = 1469598103934665603ull) {
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::string to_hex(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[v & 0xf];
    v >>= 4;
  }
  return out;
}

/// Strict unsigned parse: digits only, full consume, no exceptions.
bool parse_u64(const std::string& cell, std::uint64_t& out) {
  if (cell.empty() ||
      cell.find_first_not_of("0123456789") != std::string::npos)
    return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(cell.c_str(), &end, 10);
  if (errno != 0 || end != cell.c_str() + cell.size()) return false;
  out = v;
  return true;
}

/// Strict finite-double parse: full consume, no exceptions, no inf/nan.
bool parse_double(const std::string& cell, double& out) {
  if (cell.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(cell.c_str(), &end);
  if (errno != 0 || end != cell.c_str() + cell.size() || !std::isfinite(v))
    return false;
  out = v;
  return true;
}

Status corrupt(const std::string& path, const std::string& why) {
  return Status(ErrorCode::kCorruptCache,
                "sweep cache '" + path + "': " + why);
}

}  // namespace

std::string sweep_cache_row(const UseCaseResult& r) {
  std::ostringstream row;
  row.precision(12);
  row << r.program << ',' << r.config_id << ','
      << energy::tech_name(r.tech) << ',' << r.original.tau_wcet << ','
      << r.original.run.mem_cycles << ',' << r.original.run.instructions
      << ',' << r.original.energy.total_nj() << ','
      << r.original.run.cache.fetches << ',' << r.original.run.cache.misses
      << ',' << r.original.run.total_cycles << ',' << r.optimized.tau_wcet
      << ',' << r.optimized.run.mem_cycles << ','
      << r.optimized.run.instructions << ','
      << r.optimized.energy.total_nj() << ','
      << r.optimized.run.cache.fetches << ','
      << r.optimized.run.cache.misses << ','
      << r.optimized.run.total_cycles << ','
      << r.report.insertions.size() << ',' << r.report.candidates_found;
  const std::string prefix = row.str();
  return prefix + ',' + to_hex(fnv1a(prefix));
}

std::string sweep_results_fingerprint(
    const std::vector<UseCaseResult>& results) {
  std::uint64_t h = fnv1a("ucp-sweep-rows");
  for (const UseCaseResult& r : results) h = fnv1a(sweep_cache_row(r), h);
  return to_hex(h);
}

std::string sweep_grid_fingerprint() {
  std::uint64_t h = fnv1a("ucp-sweep-grid");
  h = fnv1a("v" + std::to_string(kSweepCacheVersion), h);
  for (const suite::BenchmarkInfo& info : suite::all_benchmarks())
    h = fnv1a(info.name, h);
  for (const cache::NamedCacheConfig& named : cache::paper_cache_configs()) {
    h = fnv1a(named.id, h);
    h = fnv1a(named.config.to_string(), h);
  }
  h = fnv1a("45nm,32nm", h);
  return to_hex(h);
}

Status save_sweep_cache(const std::string& path,
                        const std::vector<UseCaseResult>& results) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::trunc);
    if (!os || UCP_FAULT_POINT("exp.cache_write")) {
      std::remove(tmp.c_str());
      return Status(ErrorCode::kInternal,
                    "cannot open '" + tmp + "' for writing");
    }
    os << kCacheMagic << kSweepCacheVersion
       << " grid=" << sweep_grid_fingerprint() << "\n"
       << kCacheColumns << "\n";
    for (const UseCaseResult& r : results) os << sweep_cache_row(r) << '\n';
    os.flush();
    if (!os) {
      std::remove(tmp.c_str());
      return Status(ErrorCode::kInternal, "write to '" + tmp + "' failed");
    }
  }
  // Durable atomic publish: fsync the temp file *before* the rename (a
  // rename can survive a crash that loses the renamed file's bytes) and the
  // parent directory after it (making the new directory entry itself
  // durable). A bench killed or powered off mid-save leaves only the tmp
  // file (or nothing), never a truncated cache that poisons the next run.
  const Status synced = support::fsync_path(tmp);
  if (!synced.ok()) {
    std::remove(tmp.c_str());
    return synced;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status(ErrorCode::kInternal,
                  "rename '" + tmp + "' -> '" + path + "' failed");
  }
  return support::fsync_parent(path);
}

Expected<std::vector<UseCaseResult>> load_sweep_cache(
    const std::string& path) {
  std::ifstream is(path);
  if (!is)
    return Status(ErrorCode::kNotFound, "no sweep cache at '" + path + "'");
  if (UCP_FAULT_POINT("exp.cache_read"))
    return corrupt(path, "injected read failure");

  std::string line;
  if (!std::getline(is, line)) return corrupt(path, "empty file");
  if (line.rfind(kCacheMagic, 0) != 0)
    return corrupt(path, "missing version header (pre-v2 or foreign file)");
  std::string rest = line.substr(sizeof(kCacheMagic) - 1);
  const std::size_t space = rest.find(' ');
  std::uint64_t version = 0;
  if (space == std::string::npos || !parse_u64(rest.substr(0, space), version))
    return corrupt(path, "unparseable version header");
  if (version != kSweepCacheVersion)
    return corrupt(path, "stale format version v" + std::to_string(version) +
                             " (want v" + std::to_string(kSweepCacheVersion) +
                             ")");
  const std::string grid_field = rest.substr(space + 1);
  if (grid_field.rfind("grid=", 0) != 0 ||
      grid_field.substr(5) != sweep_grid_fingerprint())
    return corrupt(path,
                   "grid fingerprint mismatch (programs/configs changed "
                   "since this cache was written)");

  if (!std::getline(is, line) || line != kCacheColumns)
    return corrupt(path, "unexpected column header");

  std::vector<UseCaseResult> out;
  std::size_t row_no = 2;
  while (std::getline(is, line)) {
    ++row_no;
    const std::string where = "row " + std::to_string(row_no);
    std::stringstream ss(line);
    std::string cell;
    std::vector<std::string> cells;
    while (std::getline(ss, cell, ',')) cells.push_back(cell);
    if (cells.size() != kCacheCells)
      return corrupt(path, where + ": expected " +
                               std::to_string(kCacheCells) + " cells, got " +
                               std::to_string(cells.size()) +
                               " (truncated or stale row?)");
    const std::size_t checksum_at = line.rfind(',');
    if (to_hex(fnv1a(std::string_view(line).substr(0, checksum_at))) !=
        cells.back())
      return corrupt(path, where + ": row checksum mismatch");

    UseCaseResult r;
    r.program = cells[0];
    r.config_id = cells[1];
    const auto& configs = cache::paper_cache_configs();
    const auto it =
        std::find_if(configs.begin(), configs.end(),
                     [&](const cache::NamedCacheConfig& named) {
                       return named.id == r.config_id;
                     });
    if (it == configs.end())
      return corrupt(path, where + ": unknown configuration '" +
                               r.config_id + "'");
    r.config = it->config;
    if (cells[2] == "45nm") {
      r.tech = energy::TechNode::k45nm;
    } else if (cells[2] == "32nm") {
      r.tech = energy::TechNode::k32nm;
    } else {
      return corrupt(path, where + ": unknown technology '" + cells[2] + "'");
    }
    std::uint64_t u[17];
    double d[2];
    bool cells_ok = true;
    for (int i = 0; i < 14; ++i) {
      // Numeric cells 3..18, with 6 and 13 (energies) parsed as doubles.
      const int col[] = {3, 4, 5, 7, 8, 9, 10, 11, 12, 14, 15, 16, 17, 18};
      cells_ok &= parse_u64(cells[static_cast<std::size_t>(col[i])],
                            u[static_cast<std::size_t>(i)]);
    }
    cells_ok &= parse_double(cells[6], d[0]);
    cells_ok &= parse_double(cells[13], d[1]);
    if (!cells_ok)
      return corrupt(path, where + ": non-numeric cell");
    r.original.tau_wcet = u[0];
    r.original.run.mem_cycles = u[1];
    r.original.run.instructions = u[2];
    // Only the total matters downstream; park it in one component.
    r.original.energy.cache_dynamic_nj = d[0];
    r.original.run.cache.fetches = u[3];
    r.original.run.cache.misses = u[4];
    r.original.run.total_cycles = u[5];
    r.optimized.tau_wcet = u[6];
    r.optimized.run.mem_cycles = u[7];
    r.optimized.run.instructions = u[8];
    r.optimized.energy.cache_dynamic_nj = d[1];
    r.optimized.run.cache.fetches = u[9];
    r.optimized.run.cache.misses = u[10];
    r.optimized.run.total_cycles = u[11];
    r.report.insertions.resize(static_cast<std::size_t>(u[12]));
    r.report.candidates_found = static_cast<std::size_t>(u[13]);
    out.push_back(std::move(r));
  }
  if (out.empty()) return corrupt(path, "no data rows");
  return out;
}

// ---------------------------------------------------------------------------
// The sweep.
// ---------------------------------------------------------------------------

void SweepReport::print(std::ostream& os) const {
  os << "[sweep health] " << total << " use cases: " << completed
     << " completed, " << degraded << " degraded, " << failed << " failed, "
     << degenerate_ratios << " degenerate ratios"
     << (cache_hit ? " (memoized)" : "") << (interrupted ? " (INTERRUPTED)"
                                                         : "")
     << "\n";
  if (retried + recovered + resumed_rows + audited > 0)
    os << "[sweep supervision] " << audited << " audited ("
       << audit_violations << " violations, " << audit_inconclusive
       << " inconclusive), " << retried << " retried, " << recovered
       << " recovered, " << resumed_rows << " rows resumed from journal\n";
  if (!journal_note.empty()) os << "  [journal] " << journal_note << "\n";
  if (!cache_note.empty()) os << "  [cache] " << cache_note << "\n";
  constexpr std::size_t kMaxListed = 8;
  for (std::size_t i = 0; i < quarantine.size() && i < kMaxListed; ++i) {
    const DegradedCase& q = quarantine[i];
    os << "  quarantined: " << q.program << "/" << q.config_id << "/"
       << energy::tech_name(q.tech) << " " << case_outcome_name(q.outcome)
       << " at " << q.stage << " (" << error_code_name(q.code) << ")"
       << (q.detail.empty() ? "" : " — " + q.detail) << "\n";
  }
  if (quarantine.size() > kMaxListed)
    os << "  ... and " << quarantine.size() - kMaxListed
       << " more quarantined cases\n";
}

namespace {
// Lock-free, so a SIGINT/SIGTERM handler may flip it directly.
std::atomic<bool> g_sweep_interrupt{false};
}  // namespace

void request_sweep_interrupt() {
  g_sweep_interrupt.store(true, std::memory_order_relaxed);
}
bool sweep_interrupt_requested() {
  return g_sweep_interrupt.load(std::memory_order_relaxed);
}
void clear_sweep_interrupt() {
  g_sweep_interrupt.store(false, std::memory_order_relaxed);
}

void publish_sweep_metrics(const Sweep& sweep) {
  if (!obs::enabled()) return;
  obs::Registry& reg = obs::registry();
  auto add = [&](const char* name, std::uint64_t value) {
    reg.counter(name).add(value);
  };

  add("exp.sweep.cases", sweep.report.total);
  add("exp.sweep.completed", sweep.report.completed);
  add("exp.sweep.degraded", sweep.report.degraded);
  add("exp.sweep.failed", sweep.report.failed);
  add("exp.sweep.degenerate_ratios", sweep.report.degenerate_ratios);
  add("exp.sweep.retried", sweep.report.retried);
  add("exp.sweep.recovered", sweep.report.recovered);
  add("exp.sweep.resumed_rows", sweep.report.resumed_rows);
  add("exp.sweep.audited", sweep.report.audited);
  add("exp.sweep.audit_violations", sweep.report.audit_violations);
  add("exp.sweep.audit_inconclusive", sweep.report.audit_inconclusive);

  add("exp.sweep.lp_solves", sweep.report.solver.lp_solves);
  add("exp.sweep.pivots", sweep.report.solver.pivots);
  add("exp.sweep.bb_nodes", sweep.report.solver.bb_nodes);
  add("exp.sweep.warm_starts", sweep.report.solver.warm_starts);
  add("exp.sweep.phase1_skipped", sweep.report.solver.phase1_skipped);
  // Of the pivots above, the one-time shared-IpetSystem construction share
  // (charge_construction). Subtracting it recovers the pure per-solve total,
  // which equals the live ilp.solve.pivots on clean single-attempt runs —
  // the reconciliation identity pinned by the equivalence suite.
  add("exp.sweep.construction_pivots", sweep.report.construction_pivots);

  std::uint64_t attempts = 0, insertions = 0, cand_found = 0, cand_eval = 0;
  std::uint64_t passes = 0, full_re = 0, incr_re = 0, nodes_re = 0;
  for (const UseCaseResult& r : sweep.results) {
    attempts += r.attempts;
    insertions += r.report.insertions.size();
    cand_found += r.report.candidates_found;
    cand_eval += r.report.candidates_evaluated;
    passes += r.report.passes;
    full_re += r.report.full_reanalyses;
    incr_re += r.report.incremental_reanalyses;
    nodes_re += r.report.nodes_reanalyzed;
  }
  add("exp.sweep.attempts", attempts);
  add("exp.sweep.insertions", insertions);
  add("exp.sweep.candidates_found", cand_found);
  add("exp.sweep.candidates_evaluated", cand_eval);
  add("exp.sweep.optimizer_passes", passes);
  add("exp.sweep.full_reanalyses", full_re);
  add("exp.sweep.incremental_reanalyses", incr_re);
  add("exp.sweep.nodes_reanalyzed", nodes_re);
}

SweepPlan build_sweep_plan(const SweepOptions& options) {
  SweepPlan plan;
  plan.names = options.programs;
  if (plan.names.empty()) {
    for (const suite::BenchmarkInfo& info : suite::all_benchmarks())
      plan.names.push_back(info.name);
  }

  // Build every program once; a sweep re-measures each against 36 configs,
  // and the builders are deterministic, so the 36 rebuilds were pure waste.
  // A builder failure marks all of that program's cases failed (same rows
  // the per-case task boundary used to produce).
  plan.build_errors.assign(plan.names.size(), std::string());
  std::vector<std::uint64_t> instr_count(plan.names.size(), 1);
  plan.programs.reserve(plan.names.size());
  for (std::size_t i = 0; i < plan.names.size(); ++i) {
    try {
      plan.programs.push_back(suite::build_benchmark(plan.names[i]));
      std::uint64_t instrs = 0;
      for (ir::BlockId b = 0; b < plan.programs.back().num_blocks(); ++b)
        instrs += plan.programs.back().block(b).instrs.size();
      instr_count[i] = std::max<std::uint64_t>(1, instrs);
    } catch (const std::exception& e) {
      plan.programs.push_back(ir::Program("unbuildable"));
      plan.build_errors[i] = e.what();
    }
  }

  const auto& configs = cache::paper_cache_configs();
  for (std::size_t p = 0; p < plan.names.size(); ++p) {
    for (std::size_t c = 0; c < configs.size(); c += options.config_stride) {
      // Analysis cost grows with context nodes (~ instructions) and with
      // abstract state width (~ cache sets); the product ranks the heavy
      // (big program, many sets) cases well enough for scheduling.
      plan.tasks.push_back(SweepPlan::Task{
          p, c, plan.tasks.size() * options.techs.size(),
          instr_count[p] * configs[c].config.num_sets()});
    }
  }
  plan.result_rows = plan.tasks.size() * options.techs.size();

  // Heaviest-first schedule over the whole selection: workers pull from an
  // atomic cursor over this order, so the longest-running cases start first
  // and cannot serialize the sweep's tail. Ties keep grid order, which
  // keeps the schedule — and therefore shard ownership, journal row order
  // and any fault-injection hit — deterministic.
  plan.schedule.resize(plan.tasks.size());
  std::iota(plan.schedule.begin(), plan.schedule.end(), std::size_t{0});
  std::stable_sort(plan.schedule.begin(), plan.schedule.end(),
                   [&](std::size_t a, std::size_t b) {
                     return plan.tasks[a].weight > plan.tasks[b].weight;
                   });
  return plan;
}

SweepReport derive_row_report(const std::vector<UseCaseResult>& results) {
  SweepReport report;
  report.total = results.size();
  for (const UseCaseResult& r : results) {
    report.solver.add(r.original.solver);
    report.solver.add(r.report.solver);
    report.solver.add(r.optimized.solver);
    switch (r.outcome) {
      case CaseOutcome::kCompleted:
        ++report.completed;
        break;
      case CaseOutcome::kDegraded:
        ++report.degraded;
        break;
      case CaseOutcome::kFailed:
        ++report.failed;
        break;
    }
    if (r.any_degenerate_ratio()) ++report.degenerate_ratios;
    if (r.attempts > 1) ++report.retried;
    if (r.degradation_level == 1) ++report.recovered;
    if (r.audit.performed) ++report.audited;
    if (r.audit.violated) ++report.audit_violations;
    if (r.audit.inconclusive) ++report.audit_inconclusive;
    if (r.quarantined())
      report.quarantine.push_back(DegradedCase{
          r.program, r.config_id, r.tech, r.outcome, r.fail_stage,
          r.fail_code, r.fail_detail});
  }
  return report;
}

Sweep run_sweep(const SweepOptions& options) {
  UCP_CHECK_MSG(options.shard_count >= 1 &&
                    options.shard_index < options.shard_count,
                "invalid sweep shard " + std::to_string(options.shard_index) +
                    "/" + std::to_string(options.shard_count));
  const bool sharded = options.shard_count > 1;
  Sweep sweep;
  // Serve (a filtered view of) the memoized full sweep when available. A
  // sharded run never consults the memo: the cache stores finished full
  // grids, and a shard neither produces nor wants one.
  if (!options.cache_path.empty() && !sharded) {
    Expected<std::vector<UseCaseResult>> cached =
        load_sweep_cache(options.cache_path);
    if (cached.ok()) {
      std::vector<UseCaseResult> filtered;
      const bool all_programs = options.programs.empty();
      for (UseCaseResult& r : *cached) {
        if (!all_programs &&
            std::find(options.programs.begin(), options.programs.end(),
                      r.program) == options.programs.end())
          continue;
        if (std::find(options.techs.begin(), options.techs.end(), r.tech) ==
            options.techs.end())
          continue;
        filtered.push_back(std::move(r));
      }
      obs::log(obs::LogLevel::kInfo, "sweep", "memo_loaded",
               options.cache_path,
               obs::LogFields().num(
                   "cases", static_cast<std::uint64_t>(filtered.size())));
      sweep.report.cache_hit = true;
      sweep.report.cache_note = "served from " + options.cache_path;
      sweep.report.total = filtered.size();
      sweep.report.completed = filtered.size();
      sweep.results = std::move(filtered);
      return sweep;
    }
    if (cached.code() != ErrorCode::kNotFound) {
      // Corrupt / stale cache: report it and recompute — never trust it.
      sweep.report.cache_note =
          cached.status().message() + " — recomputing";
      obs::log(obs::LogLevel::kWarn, "sweep", "memo_rejected",
               sweep.report.cache_note);
    }
  }

  // Materialize the grid as (program, configuration) tasks; the tech nodes
  // run inside one task (sharing work when their timings coincide) and land
  // at consecutive result indices, so the output order stays the
  // program -> config -> tech grid order regardless of scheduling. The plan
  // — task list, weights and heaviest-first schedule — is the shared
  // deterministic contract between sharded producers and the journal merge.
  SweepPlan plan = build_sweep_plan(options);
  const std::vector<std::string>& names = plan.names;
  const std::vector<ir::Program>& programs = plan.programs;
  const std::vector<std::string>& build_error = plan.build_errors;
  const std::vector<SweepPlan::Task>& tasks = plan.tasks;
  const auto& configs = cache::paper_cache_configs();

  // Shard ownership: position j of the schedule belongs to shard j mod N.
  // Round-robin over the weight-sorted order spreads the heavy head evenly,
  // so shards are load-balanced without any coordination.
  std::vector<bool> owned(tasks.size(), true);
  if (sharded) {
    for (std::size_t pos = 0; pos < plan.schedule.size(); ++pos)
      owned[plan.schedule[pos]] =
          SweepPlan::shard_of(pos, options.shard_count) == options.shard_index;
  }

  // One context graph + IPET constraint system per program, shared by all
  // of its configurations, stages and worker threads (solves clone the
  // system's immutable canonical basis, so sharing is bit-identical to
  // rebuilding — see wcet::IpetSystem). A construction failure leaves the
  // slot empty; the tasks then build their own inside the task boundary and
  // the failure is quarantined per case, exactly as before.
  struct ProgramIpet {
    analysis::ContextGraph graph;
    wcet::IpetSystem ipet;
    explicit ProgramIpet(const ir::Program& program)
        : graph(program), ipet(graph) {}
  };
  std::vector<std::unique_ptr<ProgramIpet>> systems(names.size());
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (!build_error[i].empty()) continue;
    try {
      systems[i] = std::make_unique<ProgramIpet>(programs[i]);
    } catch (...) {
      systems[i] = nullptr;
    }
  }

  std::vector<UseCaseResult>& results = sweep.results;
  results.resize(plan.result_rows);

  // Unified operator feedback: progress lines and the retry/audit/journal
  // notice channels share one reporter (one clock, one rate limit), so a
  // many-threaded sweep cannot flood the terminal however much news the
  // subsystems have.
  obs::ProgressReporter::Options reporter_options;
  reporter_options.enabled = options.progress_every != 0;
  obs::ProgressReporter reporter(reporter_options);

  // Crash-safe checkpoint journal: restore every durable row, then run only
  // the tasks that are not fully journaled. Restored rows are byte-for-byte
  // what the killed sweep computed, so the combined result set is
  // bit-identical to an uninterrupted run. A sharded journal restores (and
  // accepts) only rows this shard owns.
  SweepJournal journal;
  std::vector<bool> have_row(results.size(), false);
  if (!options.journal_path.empty()) {
    auto matches_grid = [&](std::size_t idx, const UseCaseResult& r) {
      const std::size_t per_task = options.techs.size();
      const std::size_t t = idx / per_task;
      const std::size_t k = idx % per_task;
      return t < tasks.size() && owned[t] &&
             r.program == names[tasks[t].program] &&
             r.config_id == configs[tasks[t].config].id &&
             r.tech == options.techs[k];
    };
    const Status opened = journal.open(
        options.journal_path, sweep_grid_fingerprint(),
        SweepJournal::selection_fingerprint(options, names),
        options.shard_index, options.shard_count, results, have_row,
        matches_grid);
    sweep.report.journal_note = journal.note();
    sweep.report.resumed_rows = journal.resumed_rows();
    if (!opened.ok())
      sweep.report.journal_note +=
          " — journaling disabled: " + opened.message();
    if (!opened.ok())
      obs::log(obs::LogLevel::kWarn, "sweep", "journal_disabled",
               sweep.report.journal_note);
    else
      reporter.announce(sweep.report.journal_note);
  }
  std::size_t resumed_cases = 0;
  std::vector<bool> task_pending(tasks.size(), true);
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    if (!owned[t]) {
      task_pending[t] = false;
      continue;
    }
    bool complete = true;
    for (std::size_t k = 0; k < options.techs.size(); ++k)
      complete = complete && have_row[tasks[t].first + k];
    if (complete) {
      task_pending[t] = false;
      resumed_cases += options.techs.size();
    }
  }

  // Dynamic claim order: the pending subset of the plan's heaviest-first
  // schedule. Workers pull from an atomic cursor over it.
  std::vector<std::size_t> order;
  order.reserve(tasks.size());
  for (const std::size_t t : plan.schedule)
    if (task_pending[t]) order.push_back(t);

  // Declare the work ahead in the scheduler's own weight units so the ETA
  // tracks completed *work*, not completed case counts (under heaviest-first
  // scheduling the early cases are the slow ones, so a case-count ETA is
  // badly biased at both ends of the run).
  std::size_t owned_cases = 0;
  std::uint64_t total_weight = 0;
  std::uint64_t resumed_weight = 0;
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    if (!owned[t]) continue;
    owned_cases += options.techs.size();
    total_weight += tasks[t].weight;
    if (!task_pending[t]) resumed_weight += tasks[t].weight;
  }
  reporter.begin(owned_cases, total_weight, resumed_cases, resumed_weight);

  // Deterministic journal flush order (DESIGN.md §13). Finished rows stay
  // buffered in `results` until the flush frontier — a cursor over the
  // owned tasks in schedule order — reaches them, so the journal's byte
  // stream is identical at every thread count: rows appear in schedule
  // order, never completion order. Workers only mark their task ready
  // under a cheap bookkeeping lock; whichever worker finds the frontier
  // unattended becomes the single active flusher and appends the whole
  // ready run as one batch (one fsync), with no lock held during the I/O.
  // Crash window: a completed-but-unflushed task (at most one per worker
  // plus the batch in flight) is recomputed on resume — bounded work loss,
  // and recomputation is deterministic so the journal still completes
  // exactly.
  std::vector<std::size_t> flush_list;  ///< owned tasks, schedule order
  std::vector<std::size_t> flush_pos(tasks.size(), 0);
  for (const std::size_t t : plan.schedule) {
    if (!owned[t]) continue;
    flush_pos[t] = flush_list.size();
    flush_list.push_back(t);
  }
  // Rows already durable from a resumed journal are skipped per task (a
  // torn tail can leave part of a task); `have_row` is frozen after open,
  // so the skip counts are stable.
  std::vector<std::size_t> flush_skip(flush_list.size(), 0);
  std::vector<char> flush_ready(flush_list.size(), 0);
  for (std::size_t i = 0; i < flush_list.size(); ++i) {
    const SweepPlan::Task& t = tasks[flush_list[i]];
    std::size_t k0 = 0;
    while (k0 < options.techs.size() && have_row[t.first + k0]) ++k0;
    flush_skip[i] = k0;
    if (!task_pending[flush_list[i]]) flush_ready[i] = 1;
  }
  std::size_t flush_frontier = 0;
  bool flusher_active = false;
  std::mutex flush_mutex;  ///< guards flush_* state and the journal note

  auto flush_task_done = [&](std::size_t task_id) {
    std::unique_lock<std::mutex> lock(flush_mutex);
    flush_ready[flush_pos[task_id]] = 1;
    if (flusher_active) return;  // the active flusher will pick it up
    flusher_active = true;
    for (;;) {
      std::vector<std::pair<std::size_t, std::size_t>> batch;
      while (flush_frontier < flush_list.size() &&
             flush_ready[flush_frontier] != 0) {
        const SweepPlan::Task& t = tasks[flush_list[flush_frontier]];
        const std::size_t skip = flush_skip[flush_frontier];
        if (skip < options.techs.size())
          batch.emplace_back(t.first + skip, options.techs.size() - skip);
        ++flush_frontier;
      }
      if (batch.empty()) {
        flusher_active = false;
        return;
      }
      if (!journal.active()) continue;  // disabled mid-sweep: drop the batch
      lock.unlock();
      const Status appended = journal.append_batch(results, batch);
      lock.lock();
      if (!appended.ok()) {
        sweep.report.journal_note +=
            "; journaling disabled mid-sweep: " + appended.message();
        reporter.notice("journal", appended.message());
      }
    }
  };

  std::atomic<std::size_t> next{0};
  std::mutex stage_mutex;
  const auto sweep_start = std::chrono::steady_clock::now();
  auto now_ms = [&] {
    return static_cast<std::int64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - sweep_start)
            .count());
  };

  const std::uint32_t threads =
      options.threads != 0
          ? options.threads
          : std::max(1u, std::thread::hardware_concurrency());
  sweep.report.threads_used = threads;

  // One cancellation token per worker slot; the watchdog cancels the slot
  // whose armed deadline has passed, and the worker's deep kernels poll the
  // token through the thread-local CancelScope.
  struct WorkerSlot {
    CancellationToken token;
    std::atomic<std::int64_t> cancel_at_ms{-1};  ///< -1 = watchdog disarmed
  };
  std::vector<std::unique_ptr<WorkerSlot>> slots;
  for (std::uint32_t w = 0; w < threads; ++w)
    slots.push_back(std::make_unique<WorkerSlot>());

  auto fill_rows_failed = [&](const SweepPlan::Task& t,
                              std::vector<UseCaseResult>& rows,
                              ErrorCode code, const std::string& stage,
                              const std::string& detail) {
    for (std::size_t k = 0; k < options.techs.size(); ++k) {
      UseCaseResult& r = rows[k];
      r = UseCaseResult{};
      r.program = names[t.program];
      r.config_id = configs[t.config].id;
      r.config = configs[t.config].config;
      r.tech = options.techs[k];
      r.outcome = CaseOutcome::kFailed;
      r.fail_code = code;
      r.fail_stage = stage;
      r.fail_detail = detail;
    }
  };

  // One attempt at one task. *Every* exception is contained here —
  // including CancelledError from the deep kernels — so one pathological
  // use case can never std::terminate a 2664-case sweep.
  auto run_attempt = [&](const SweepPlan::Task& t,
                         const core::OptimizerOptions& opt_options,
                         StageTimings& stages,
                         std::vector<UseCaseResult>& rows) {
    const std::size_t p = t.program;
    rows.assign(options.techs.size(), UseCaseResult{});
    const wcet::IpetSystem* shared =
        systems[p] ? &systems[p]->ipet : nullptr;
    try {
      if (options.share_across_techs) {
        std::vector<UseCaseResult> rs = run_use_case_group(
            programs[p], names[p], configs[t.config], options.techs,
            opt_options, &stages, shared, options.audit_soundness);
        for (std::size_t k = 0; k < rs.size(); ++k) rows[k] = std::move(rs[k]);
      } else {
        for (std::size_t k = 0; k < options.techs.size(); ++k)
          rows[k] = run_use_case(programs[p], names[p], configs[t.config],
                                 options.techs[k], opt_options, shared);
      }
    } catch (const CancelledError& e) {
      fill_rows_failed(t, rows, ErrorCode::kCancelled, "cancelled", e.what());
    } catch (const std::exception& e) {
      fill_rows_failed(t, rows, ErrorCode::kInternal, "task", e.what());
    } catch (...) {
      fill_rows_failed(t, rows, ErrorCode::kInternal, "task",
                       "non-standard exception");
    }
  };

  // Failure classes worth another rung on the ladder: budget/deadline/
  // cancellation exhaustion and contained internal errors. Semantic
  // verdicts (infeasible, loop-bound violations, audit failures) are
  // deterministic properties of the case — retrying cannot change them.
  auto retryable = [](ErrorCode code) {
    switch (code) {
      case ErrorCode::kIterationLimit:
      case ErrorCode::kStepBudgetExhausted:
      case ErrorCode::kDeadlineExceeded:
      case ErrorCode::kCancelled:
      case ErrorCode::kAnalysisFailed:
      case ErrorCode::kInternal:
        return true;
      default:
        return false;
    }
  };
  auto rank = [](const UseCaseResult& r) {
    return r.outcome == CaseOutcome::kCompleted
               ? 2
               : (r.outcome == CaseOutcome::kDegraded ? 1 : 0);
  };

  // Worker task boundary with the retry-with-degradation ladder:
  //   rung 1: configured budgets;
  //   rung 2: escalated budgets (2x evaluations, 4x deadlines), fresh token;
  //   rung 3: the identity transform — no optimization at all, trivially
  //           Theorem-1 sound — recorded as *degraded* with the original
  //           failure as its cause (an upgrade when the row had no baseline).
  auto run_task = [&](const SweepPlan::Task& t, WorkerSlot& slot,
                      StageTimings& stages) {
    const std::size_t p = t.program;
    const std::size_t n = options.techs.size();
    std::vector<UseCaseResult> rows;
    std::uint32_t attempts = 1;

    if (!build_error[p].empty()) {
      rows.assign(n, UseCaseResult{});
      fill_rows_failed(t, rows, ErrorCode::kInternal, "task",
                       build_error[p]);
    } else {
      auto arm_watchdog = [&](std::int64_t scale) {
        if (options.case_deadline_ms > 0)
          slot.cancel_at_ms.store(
              now_ms() + static_cast<std::int64_t>(options.case_deadline_ms) *
                             scale,
              std::memory_order_relaxed);
      };
      auto disarm_watchdog = [&] {
        slot.cancel_at_ms.store(-1, std::memory_order_relaxed);
      };
      auto any_retryable = [&] {
        for (const UseCaseResult& r : rows)
          if (r.quarantined() && retryable(r.fail_code)) return true;
        return false;
      };

      slot.token.reset();
      // Deterministic watchdog fault: the supervisor "cancels" this task the
      // moment it registers, exercising the whole cancel -> quarantine ->
      // retry path without any timing dependence.
      if (UCP_FAULT_POINT("supervisor.cancel")) slot.token.cancel();
      arm_watchdog(1);
      run_attempt(t, options.optimizer, stages, rows);
      disarm_watchdog();

      if (options.max_attempts >= 2 && any_retryable()) {
        ++attempts;
        core::OptimizerOptions escalated = options.optimizer;
        escalated.max_evaluations *= 2;
        if (escalated.deadline_ms > 0) escalated.deadline_ms *= 4;
        slot.token.reset();
        std::vector<UseCaseResult> retry;
        arm_watchdog(4);
        run_attempt(t, escalated, stages, retry);
        disarm_watchdog();
        for (std::size_t k = 0; k < n; ++k) {
          if (!(rows[k].quarantined() && retryable(rows[k].fail_code)))
            continue;
          if (rank(retry[k]) <= rank(rows[k])) continue;
          rows[k] = std::move(retry[k]);
          if (rows[k].outcome == CaseOutcome::kCompleted)
            rows[k].degradation_level = 1;
        }
      }
      if (options.max_attempts >= 3 && any_retryable()) {
        ++attempts;
        core::OptimizerOptions identity = options.optimizer;
        identity.max_passes = 0;  // ship the input program
        slot.token.reset();
        std::vector<UseCaseResult> fallback;
        arm_watchdog(4);
        run_attempt(t, identity, stages, fallback);
        disarm_watchdog();
        for (std::size_t k = 0; k < n; ++k) {
          if (!(rows[k].quarantined() && retryable(rows[k].fail_code)))
            continue;
          if (fallback[k].outcome == CaseOutcome::kCompleted) {
            UseCaseResult repaired = std::move(fallback[k]);
            degrade_to_original(
                repaired, rows[k].fail_stage, rows[k].fail_code,
                rows[k].fail_detail + " (identity-transform fallback)");
            rows[k] = std::move(repaired);
          } else if (rank(fallback[k]) > rank(rows[k])) {
            rows[k] = std::move(fallback[k]);
          }
        }
      }
    }

    for (std::size_t k = 0; k < n; ++k) {
      rows[k].attempts = attempts;
      if (rows[k].outcome == CaseOutcome::kDegraded)
        rows[k].degradation_level = 2;
      else if (rows[k].outcome == CaseOutcome::kFailed)
        rows[k].degradation_level = 3;
    }

    if (attempts > 1)
      reporter.notice("retry", names[t.program] + "/" + configs[t.config].id +
                                   " took " + std::to_string(attempts) +
                                   " attempts");
    for (const UseCaseResult& r : rows) {
      if (r.audit.violated)
        reporter.notice("audit", "soundness violation at " + r.program + "/" +
                                     r.config_id);
      else if (r.audit.inconclusive)
        reporter.notice("audit", "inconclusive audit at " + r.program + "/" +
                                     r.config_id);
    }
    if (obs::enabled()) {
      obs::Registry& reg = obs::registry();
      static obs::Counter& c_tasks = reg.counter("exp.task.runs");
      static obs::Counter& c_attempts = reg.counter("exp.task.attempts");
      static obs::Counter& c_completed =
          reg.counter("exp.task.cases_completed");
      static obs::Counter& c_degraded = reg.counter("exp.task.cases_degraded");
      static obs::Counter& c_failed = reg.counter("exp.task.cases_failed");
      static obs::Counter& c_audited = reg.counter("exp.task.cases_audited");
      static obs::Counter& c_violations =
          reg.counter("exp.task.audit_violations");
      c_tasks.increment();
      c_attempts.add(attempts);
      for (const UseCaseResult& r : rows) {
        switch (r.outcome) {
          case CaseOutcome::kCompleted:
            c_completed.increment();
            break;
          case CaseOutcome::kDegraded:
            c_degraded.increment();
            break;
          case CaseOutcome::kFailed:
            c_failed.increment();
            break;
        }
        if (r.audit.performed) c_audited.increment();
        if (r.audit.violated) c_violations.increment();
      }
    }

    for (std::size_t k = 0; k < n; ++k)
      results[t.first + k] = std::move(rows[k]);
  };

  auto worker = [&](std::size_t slot_index) {
    WorkerSlot& slot = *slots[slot_index];
    CancelScope scope(&slot.token);
    StageTimings local;
    // The slot is claimable from the moment the worker starts and again the
    // instant each task finishes; claimable-to-claim is the wait the
    // *scheduler* caused, as opposed to time spent behind earlier tasks.
    std::int64_t free_since_ms = now_ms();
    for (;;) {
      if (sweep_interrupt_requested()) break;
      const std::size_t at = next.fetch_add(1);
      if (at >= order.size()) break;
      const SweepPlan::Task& t = tasks[order[at]];
      {
        obs::Span span("exp.task.run");
        const std::int64_t claimed_ms = now_ms();
        run_task(t, slot, local);
        if (obs::enabled()) {
          // Two distinct waits (DESIGN.md §13): enqueue_to_claim_ms counts
          // from sweep start (every task is enqueued when the schedule is
          // built), so it grows with queue position by construction — a
          // depth profile, not a health signal. queue_wait_ms is
          // claimable-to-claim: how long a free worker slot sat idle before
          // this claim; ~0 whenever workers are saturated.
          static obs::Histogram& h_enqueue =
              obs::registry().histogram("exp.task.enqueue_to_claim_ms");
          static obs::Histogram& h_wait =
              obs::registry().histogram("exp.task.queue_wait_ms");
          static obs::Histogram& h_run =
              obs::registry().histogram("exp.task.run_ms");
          h_enqueue.record(static_cast<std::uint64_t>(claimed_ms));
          h_wait.record(
              static_cast<std::uint64_t>(claimed_ms - free_since_ms));
          h_run.record(static_cast<std::uint64_t>(now_ms() - claimed_ms));
        }
      }
      flush_task_done(order[at]);
      reporter.case_done(options.techs.size(), t.weight);
      free_since_ms = now_ms();
    }
    std::lock_guard<std::mutex> lock(stage_mutex);
    sweep.report.stages.measure_ns += local.measure_ns;
    sweep.report.stages.optimize_ns += local.optimize_ns;
    sweep.report.stages.audit_ns += local.audit_ns;
  };

  // The watchdog supervisor: a 20ms poll over the worker slots, cancelling
  // any whose armed deadline has passed. Spawned only when a deadline is
  // configured, so unsupervised sweeps carry zero extra threads.
  std::atomic<bool> supervising{options.case_deadline_ms > 0};
  std::thread watchdog_thread;
  if (supervising.load(std::memory_order_relaxed)) {
    watchdog_thread = std::thread([&] {
      while (supervising.load(std::memory_order_relaxed)) {
        const std::int64_t now = now_ms();
        for (const std::unique_ptr<WorkerSlot>& s : slots) {
          const std::int64_t at =
              s->cancel_at_ms.load(std::memory_order_relaxed);
          if (at >= 0 && now >= at) {
            s->token.cancel();
            s->cancel_at_ms.store(-1, std::memory_order_relaxed);
          }
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
    });
  }

  std::vector<std::thread> pool;
  for (std::uint32_t t = 0; t + 1 < threads; ++t)
    pool.emplace_back(worker, static_cast<std::size_t>(t) + 1);
  worker(0);
  for (std::thread& t : pool) t.join();
  if (watchdog_thread.joinable()) {
    supervising.store(false, std::memory_order_relaxed);
    watchdog_thread.join();
  }

  // An interrupted sweep returns what it has: journaled + finished rows are
  // real results; everything unrun (among the tasks this shard owns) is
  // quarantined as "interrupted" so the health report can never pass it off
  // as a full grid.
  bool any_unrun = false;
  for (std::size_t ti = 0; ti < tasks.size(); ++ti) {
    if (!owned[ti]) continue;
    const SweepPlan::Task& t = tasks[ti];
    if (!results[t.first].program.empty()) continue;
    any_unrun = true;
    for (std::size_t k = 0; k < options.techs.size(); ++k) {
      UseCaseResult& r = results[t.first + k];
      r = UseCaseResult{};
      r.program = names[t.program];
      r.config_id = configs[t.config].id;
      r.config = configs[t.config].config;
      r.tech = options.techs[k];
      r.outcome = CaseOutcome::kFailed;
      r.fail_code = ErrorCode::kCancelled;
      r.fail_stage = "interrupted";
      r.fail_detail = "sweep interrupted before this use case ran";
      r.degradation_level = 3;
    }
  }
  sweep.report.interrupted = any_unrun && sweep_interrupt_requested();

  // A sharded sweep returns only the rows it owns — still in grid order;
  // merge_sweep_journals reassembles the full grid from the shard journals.
  if (sharded) {
    std::vector<UseCaseResult> own;
    own.reserve(owned_cases);
    for (std::size_t ti = 0; ti < tasks.size(); ++ti) {
      if (!owned[ti]) continue;
      for (std::size_t k = 0; k < options.techs.size(); ++k)
        own.push_back(std::move(results[tasks[ti].first + k]));
    }
    results = std::move(own);
  }

  sweep.report.wall_ms = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - sweep_start)
          .count());
  if (sweep.report.wall_ms > 0)
    sweep.report.cases_per_sec = static_cast<double>(results.size()) /
                                 (static_cast<double>(sweep.report.wall_ms) /
                                  1000.0);

  // Health accounting, in deterministic grid order. The row-derived half is
  // shared with the journal merge (derive_row_report), so a merged N-shard
  // result reports exactly what an unsharded run derives from the same
  // rows; the construction charge below is the per-process remainder.
  {
    SweepReport derived = derive_row_report(results);
    sweep.report.total = derived.total;
    sweep.report.completed = derived.completed;
    sweep.report.degraded = derived.degraded;
    sweep.report.failed = derived.failed;
    sweep.report.degenerate_ratios = derived.degenerate_ratios;
    sweep.report.retried = derived.retried;
    sweep.report.recovered = derived.recovered;
    sweep.report.audited = derived.audited;
    sweep.report.audit_violations = derived.audit_violations;
    sweep.report.audit_inconclusive = derived.audit_inconclusive;
    sweep.report.quarantine = std::move(derived.quarantine);
    sweep.report.solver.add(derived.solver);
  }
  for (const std::unique_ptr<ProgramIpet>& s : systems) {
    if (!s) continue;
    s->ipet.charge_construction(sweep.report.solver);
    sweep.report.construction_pivots += s->ipet.construction_pivots();
  }

  // Publish the authoritative row-derived counters, then merge the metrics
  // snapshot into the journal as a comment (skipped on resume, so it never
  // perturbs checkpointing). An annotation failure is a warning, not a
  // sweep failure — sinks are observers.
  publish_sweep_metrics(sweep);
  if (journal.active() && obs::enabled()) {
    const Status annotated = journal.annotate(
        "metrics " + obs::snapshot_json(obs::registry().snapshot()));
    if (!annotated.ok()) reporter.notice("journal", annotated.message());
  }
  journal.close();
  reporter.finish();

  // Persist only full default grids; partial sweeps would poison the memo
  // for the other figure benches, and a degraded sweep must never be served
  // as if it were the true result set.
  if (!options.cache_path.empty() && !sharded && options.programs.empty() &&
      options.config_stride == 1 && options.techs.size() == 2 &&
      sweep.report.clean()) {
    const Status saved = save_sweep_cache(options.cache_path, results);
    if (!saved.ok())
      obs::log(obs::LogLevel::kWarn, "sweep", "memo_not_saved",
               saved.message());
  }
  return sweep;
}

void parallel_for_index(std::size_t n, std::uint32_t threads,
                        const std::function<void(std::size_t)>& fn) {
  support::parallel_for_index(n, threads, fn);
}

std::vector<SizeAggregate> aggregate_by_size(
    const std::vector<UseCaseResult>& results) {
  std::vector<SizeAggregate> out;
  for (std::uint32_t capacity : {256u, 512u, 1024u, 2048u, 4096u, 8192u}) {
    SizeAggregate agg;
    agg.capacity_bytes = capacity;
    double e = 0, a = 0, w = 0, mo = 0, mp = 0, ir = 0, pf = 0;
    for (const UseCaseResult& r : results) {
      if (r.config.capacity_bytes != capacity) continue;
      ++agg.cases;
      e += r.energy_ratio();
      a += r.acet_ratio();
      w += r.wcet_ratio();
      mo += r.original.miss_rate();
      mp += r.optimized.miss_rate();
      ir += r.instr_ratio();
      pf += static_cast<double>(r.report.insertions.size());
      agg.max_wcet_ratio = std::max(agg.max_wcet_ratio, r.wcet_ratio());
      if (r.any_degenerate_ratio()) ++agg.degenerate_cases;
      if (r.quarantined()) ++agg.quarantined_cases;
    }
    if (agg.cases == 0) continue;
    const auto n = static_cast<double>(agg.cases);
    agg.mean_energy_ratio = e / n;
    agg.mean_acet_ratio = a / n;
    agg.mean_wcet_ratio = w / n;
    agg.mean_missrate_orig = mo / n;
    agg.mean_missrate_opt = mp / n;
    agg.mean_instr_ratio = ir / n;
    agg.mean_prefetches = pf / n;
    out.push_back(agg);
  }
  return out;
}

std::vector<UseCaseResult> paper_regime(
    const std::vector<UseCaseResult>& results, double lo, double hi) {
  std::vector<UseCaseResult> out;
  for (const UseCaseResult& r : results) {
    const double mr = r.original.miss_rate();
    if (mr >= lo && mr <= hi) out.push_back(r);
  }
  return out;
}

std::vector<UseCaseResult> reuse_regime(
    const std::vector<UseCaseResult>& results) {
  std::vector<UseCaseResult> out;
  for (const UseCaseResult& r : results) {
    if (r.report.candidates_found > 0) out.push_back(r);
  }
  return out;
}

GrandAggregate aggregate_all(const std::vector<UseCaseResult>& results) {
  GrandAggregate g;
  if (results.empty()) return g;
  double e = 0, a = 0, w = 0, ir = 0;
  for (const UseCaseResult& r : results) {
    ++g.cases;
    e += r.energy_ratio();
    a += r.acet_ratio();
    w += r.wcet_ratio();
    ir += r.instr_ratio();
    g.max_instr_ratio = std::max(g.max_instr_ratio, r.instr_ratio());
    g.max_wcet_ratio = std::max(g.max_wcet_ratio, r.wcet_ratio());
    if (r.wcet_ratio() > 1.0 + 1e-9) ++g.wcet_regressions;
    if (r.any_degenerate_ratio()) ++g.degenerate_cases;
    if (r.quarantined()) ++g.quarantined_cases;
  }
  const auto n = static_cast<double>(g.cases);
  g.mean_energy_ratio = e / n;
  g.mean_acet_ratio = a / n;
  g.mean_wcet_ratio = w / n;
  g.mean_instr_ratio = ir / n;
  return g;
}

}  // namespace ucp::exp
