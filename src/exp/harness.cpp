#include "exp/harness.hpp"

#include <algorithm>
#include <atomic>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>

#include "analysis/cache_analysis.hpp"
#include "analysis/context_graph.hpp"
#include "ir/layout.hpp"
#include "suite/suite.hpp"
#include "support/check.hpp"
#include "wcet/ipet.hpp"

namespace ucp::exp {

namespace {

double ratio(double num, double den) { return den == 0.0 ? 1.0 : num / den; }

}  // namespace

Metrics measure(const ir::Program& program, const cache::CacheConfig& config,
                energy::TechNode tech) {
  const cache::MemTiming timing = energy::derive_timing(config, tech);

  Metrics m;
  // Static side: VIVU + must/may + IPET.
  const ir::Layout layout(program, config.block_bytes);
  m.code_bytes = layout.code_bytes();
  const analysis::ContextGraph graph(program);
  const analysis::CacheAnalysisResult cls =
      analysis::analyze_cache(graph, layout, config);
  const wcet::WcetResult wcet = wcet::compute_wcet(graph, cls, timing);
  UCP_CHECK_MSG(wcet.ok(), "IPET failed for program " + program.name());
  m.tau_wcet = wcet.tau_mem;

  // Dynamic side: trace simulation + energy model.
  m.run = sim::run_program(program, config, timing);
  m.energy = energy::memory_energy(m.run, config, tech);
  return m;
}

double UseCaseResult::wcet_ratio() const {
  return ratio(static_cast<double>(optimized.tau_wcet),
               static_cast<double>(original.tau_wcet));
}

double UseCaseResult::acet_ratio() const {
  return ratio(static_cast<double>(optimized.run.mem_cycles),
               static_cast<double>(original.run.mem_cycles));
}

double UseCaseResult::energy_ratio() const {
  return ratio(optimized.energy.total_nj(), original.energy.total_nj());
}

double UseCaseResult::instr_ratio() const {
  return ratio(static_cast<double>(optimized.run.instructions),
               static_cast<double>(original.run.instructions));
}

UseCaseResult run_use_case(const ir::Program& program,
                           const std::string& program_name,
                           const cache::NamedCacheConfig& config,
                           energy::TechNode tech,
                           const core::OptimizerOptions& options) {
  UseCaseResult result;
  result.program = program_name;
  result.config_id = config.id;
  result.config = config.config;
  result.tech = tech;

  const cache::MemTiming timing = energy::derive_timing(config.config, tech);
  core::OptimizationResult opt =
      core::optimize_prefetches(program, config.config, timing, options);
  result.report = opt.report;

  result.original = measure(program, config.config, tech);
  result.optimized = measure(opt.program, config.config, tech);
  return result;
}

namespace {

/// Fields of one memoized use case, in file column order. Only the
/// quantities the figure aggregations consume are persisted.
void save_cache(const std::string& path,
                const std::vector<UseCaseResult>& results) {
  std::ofstream os(path);
  if (!os) return;
  os << "program,config,tech,o_tau,o_mem,o_instr,o_energy,o_fetches,"
        "o_misses,o_cycles,p_tau,p_mem,p_instr,p_energy,p_fetches,p_misses,"
        "p_cycles,prefetches,candidates\n";
  os.precision(12);
  for (const UseCaseResult& r : results) {
    os << r.program << ',' << r.config_id << ','
       << energy::tech_name(r.tech) << ',' << r.original.tau_wcet << ','
       << r.original.run.mem_cycles << ',' << r.original.run.instructions
       << ',' << r.original.energy.total_nj() << ','
       << r.original.run.cache.fetches << ',' << r.original.run.cache.misses
       << ',' << r.original.run.total_cycles << ',' << r.optimized.tau_wcet
       << ',' << r.optimized.run.mem_cycles << ','
       << r.optimized.run.instructions << ','
       << r.optimized.energy.total_nj() << ','
       << r.optimized.run.cache.fetches << ','
       << r.optimized.run.cache.misses << ','
       << r.optimized.run.total_cycles << ','
       << r.report.insertions.size() << ',' << r.report.candidates_found
       << '\n';
  }
}

bool load_cache(const std::string& path, std::vector<UseCaseResult>& out) {
  std::ifstream is(path);
  if (!is) return false;
  std::string line;
  if (!std::getline(is, line)) return false;  // header
  while (std::getline(is, line)) {
    std::stringstream ss(line);
    std::string cell;
    std::vector<std::string> cells;
    while (std::getline(ss, cell, ',')) cells.push_back(cell);
    if (cells.size() != 19) return false;
    UseCaseResult r;
    r.program = cells[0];
    r.config_id = cells[1];
    r.config = cache::paper_cache_config(r.config_id).config;
    r.tech = cells[2] == "45nm" ? energy::TechNode::k45nm
                                : energy::TechNode::k32nm;
    auto u = [&](int i) { return std::stoull(cells[static_cast<std::size_t>(i)]); };
    auto d = [&](int i) { return std::stod(cells[static_cast<std::size_t>(i)]); };
    r.original.tau_wcet = u(3);
    r.original.run.mem_cycles = u(4);
    r.original.run.instructions = u(5);
    // Only the total matters downstream; park it in one component.
    r.original.energy.cache_dynamic_nj = d(6);
    r.original.run.cache.fetches = u(7);
    r.original.run.cache.misses = u(8);
    r.original.run.total_cycles = u(9);
    r.optimized.tau_wcet = u(10);
    r.optimized.run.mem_cycles = u(11);
    r.optimized.run.instructions = u(12);
    r.optimized.energy.cache_dynamic_nj = d(13);
    r.optimized.run.cache.fetches = u(14);
    r.optimized.run.cache.misses = u(15);
    r.optimized.run.total_cycles = u(16);
    r.report.insertions.resize(static_cast<std::size_t>(u(17)));
    r.report.candidates_found = static_cast<std::size_t>(u(18));
    out.push_back(std::move(r));
  }
  return !out.empty();
}

}  // namespace

std::vector<UseCaseResult> run_sweep(const SweepOptions& options) {
  // Serve (a filtered view of) the memoized full sweep when available.
  if (!options.cache_path.empty()) {
    std::vector<UseCaseResult> cached;
    if (load_cache(options.cache_path, cached)) {
      std::vector<UseCaseResult> filtered;
      const bool all_programs = options.programs.empty();
      for (UseCaseResult& r : cached) {
        if (!all_programs &&
            std::find(options.programs.begin(), options.programs.end(),
                      r.program) == options.programs.end())
          continue;
        if (std::find(options.techs.begin(), options.techs.end(), r.tech) ==
            options.techs.end())
          continue;
        filtered.push_back(std::move(r));
      }
      std::cerr << "  [sweep] loaded " << filtered.size()
                << " memoized use cases from " << options.cache_path << "\n";
      return filtered;
    }
  }

  // Materialize the grid.
  struct Case {
    std::string program;
    const cache::NamedCacheConfig* config;
    energy::TechNode tech;
  };
  std::vector<Case> grid;
  std::vector<std::string> names = options.programs;
  if (names.empty()) {
    for (const suite::BenchmarkInfo& info : suite::all_benchmarks())
      names.push_back(info.name);
  }
  const auto& configs = cache::paper_cache_configs();
  for (const std::string& name : names) {
    for (std::size_t c = 0; c < configs.size(); c += options.config_stride) {
      for (energy::TechNode tech : options.techs)
        grid.push_back(Case{name, &configs[c], tech});
    }
  }

  std::vector<UseCaseResult> results(grid.size());
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};

  const std::uint32_t threads =
      options.threads != 0
          ? options.threads
          : std::max(1u, std::thread::hardware_concurrency());

  auto worker = [&] {
    for (;;) {
      const std::size_t idx = next.fetch_add(1);
      if (idx >= grid.size()) return;
      const Case& c = grid[idx];
      const ir::Program program = suite::build_benchmark(c.program);
      results[idx] =
          run_use_case(program, c.program, *c.config, c.tech,
                       options.optimizer);
      const std::size_t d = done.fetch_add(1) + 1;
      if (options.progress_every != 0 && d % options.progress_every == 0) {
        std::cerr << "  [sweep] " << d << "/" << grid.size()
                  << " use cases done\n";
      }
    }
  };

  std::vector<std::thread> pool;
  for (std::uint32_t t = 0; t + 1 < threads; ++t) pool.emplace_back(worker);
  worker();
  for (std::thread& t : pool) t.join();

  // Persist only full default grids; partial sweeps would poison the memo
  // for the other figure benches.
  if (!options.cache_path.empty() && options.programs.empty() &&
      options.config_stride == 1 && options.techs.size() == 2) {
    save_cache(options.cache_path, results);
  }
  return results;
}

void parallel_for_index(std::size_t n, std::uint32_t threads,
                        const std::function<void(std::size_t)>& fn) {
  std::atomic<std::size_t> next{0};
  const std::uint32_t workers =
      threads != 0 ? threads
                   : std::max(1u, std::thread::hardware_concurrency());
  auto worker = [&] {
    for (;;) {
      const std::size_t idx = next.fetch_add(1);
      if (idx >= n) return;
      fn(idx);
    }
  };
  std::vector<std::thread> pool;
  for (std::uint32_t t = 0; t + 1 < workers; ++t) pool.emplace_back(worker);
  worker();
  for (std::thread& t : pool) t.join();
}

std::vector<SizeAggregate> aggregate_by_size(
    const std::vector<UseCaseResult>& results) {
  std::vector<SizeAggregate> out;
  for (std::uint32_t capacity : {256u, 512u, 1024u, 2048u, 4096u, 8192u}) {
    SizeAggregate agg;
    agg.capacity_bytes = capacity;
    double e = 0, a = 0, w = 0, mo = 0, mp = 0, ir = 0, pf = 0;
    for (const UseCaseResult& r : results) {
      if (r.config.capacity_bytes != capacity) continue;
      ++agg.cases;
      e += r.energy_ratio();
      a += r.acet_ratio();
      w += r.wcet_ratio();
      mo += r.original.miss_rate();
      mp += r.optimized.miss_rate();
      ir += r.instr_ratio();
      pf += static_cast<double>(r.report.insertions.size());
      agg.max_wcet_ratio = std::max(agg.max_wcet_ratio, r.wcet_ratio());
    }
    if (agg.cases == 0) continue;
    const auto n = static_cast<double>(agg.cases);
    agg.mean_energy_ratio = e / n;
    agg.mean_acet_ratio = a / n;
    agg.mean_wcet_ratio = w / n;
    agg.mean_missrate_orig = mo / n;
    agg.mean_missrate_opt = mp / n;
    agg.mean_instr_ratio = ir / n;
    agg.mean_prefetches = pf / n;
    out.push_back(agg);
  }
  return out;
}

std::vector<UseCaseResult> paper_regime(
    const std::vector<UseCaseResult>& results, double lo, double hi) {
  std::vector<UseCaseResult> out;
  for (const UseCaseResult& r : results) {
    const double mr = r.original.miss_rate();
    if (mr >= lo && mr <= hi) out.push_back(r);
  }
  return out;
}

std::vector<UseCaseResult> reuse_regime(
    const std::vector<UseCaseResult>& results) {
  std::vector<UseCaseResult> out;
  for (const UseCaseResult& r : results) {
    if (r.report.candidates_found > 0) out.push_back(r);
  }
  return out;
}

GrandAggregate aggregate_all(const std::vector<UseCaseResult>& results) {
  GrandAggregate g;
  if (results.empty()) return g;
  double e = 0, a = 0, w = 0, ir = 0;
  for (const UseCaseResult& r : results) {
    ++g.cases;
    e += r.energy_ratio();
    a += r.acet_ratio();
    w += r.wcet_ratio();
    ir += r.instr_ratio();
    g.max_instr_ratio = std::max(g.max_instr_ratio, r.instr_ratio());
    g.max_wcet_ratio = std::max(g.max_wcet_ratio, r.wcet_ratio());
    if (r.wcet_ratio() > 1.0 + 1e-9) ++g.wcet_regressions;
  }
  const auto n = static_cast<double>(g.cases);
  g.mean_energy_ratio = e / n;
  g.mean_acet_ratio = a / n;
  g.mean_wcet_ratio = w / n;
  g.mean_instr_ratio = ir / n;
  return g;
}

}  // namespace ucp::exp
