#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "cache/config.hpp"
#include "core/optimizer.hpp"
#include "energy/model.hpp"
#include "ilp/model.hpp"
#include "ir/program.hpp"
#include "sim/interpreter.hpp"
#include "support/status.hpp"

namespace ucp::wcet {
class IpetSystem;
}

namespace ucp::exp {

/// End-to-end metrics of one binary on one memory system: the three
/// quantities of Supplement S.4 — τ_w (WCET memory contribution), τ_a (ACET
/// memory contribution, from the trace simulation) and e_a (memory energy in
/// the ACET scenario) — plus the raw counters behind Figures 4 and 8.
struct Metrics {
  std::uint64_t tau_wcet = 0;       ///< τ_w(e), cycles
  sim::RunMetrics run;              ///< τ_a(e) = run.mem_cycles
  energy::EnergyBreakdown energy;   ///< e_a(e)
  std::uint32_t code_bytes = 0;
  ilp::SolveStats solver;           ///< ILP work behind tau_wcet

  double miss_rate() const { return run.cache.miss_rate(); }
};

/// Analyzes (IPET), simulates, and prices one program. Throws on analysis
/// failure (all suite programs are analyzable by construction).
Metrics measure(const ir::Program& program, const cache::CacheConfig& config,
                energy::TechNode tech);

/// Status-channel variant: IPET failure (solver budgets, infeasibility) and
/// simulation budget exhaustion come back as a Status instead of an
/// exception, so a sweep can quarantine the use case and keep running.
/// `shared_ipet`, when given, must have been built from this exact program;
/// the context graph and IPET constraint system are then reused instead of
/// rebuilt (bit-identical results — see wcet::IpetSystem).
Expected<Metrics> measure_checked(const ir::Program& program,
                                  const cache::CacheConfig& config,
                                  energy::TechNode tech,
                                  const wcet::IpetSystem* shared_ipet =
                                      nullptr);

/// What happened to one use case in a sweep.
enum class CaseOutcome : std::uint8_t {
  kCompleted,  ///< optimized binary produced and measured
  kDegraded,   ///< optimizer/analysis failed; fell back to the original
               ///< binary (optimized == original metrics, Theorem 1 holds)
  kFailed,     ///< even the original binary could not be measured; metrics
               ///< are zero and every ratio is degenerate
};

const char* case_outcome_name(CaseOutcome outcome);

/// What the always-on soundness auditor concluded about one use case. The
/// auditor re-derives the accepted optimization's memory contribution over
/// an *independent* path — the dense-tableau reference ILP solver plus the
/// concrete cache simulator — and checks it against Theorem 1 and the sparse
/// solver's answer. It shares no code with the paths it audits below the
/// model layer, and none of its fault points.
struct AuditRecord {
  bool performed = false;     ///< auditor ran on this case
  bool violated = false;      ///< Theorem 1 or sparse/dense agreement broken
  bool inconclusive = false;  ///< reference solver hit its own budget
  std::uint64_t tau_dense = 0;  ///< dense-reference τ_w (0 if not recomputed)
  std::string detail;           ///< human-readable verdict when not clean
};

/// One (program, cache configuration, technology) use case, fully processed:
/// original vs optimized binaries, as in Section 5.
struct UseCaseResult {
  std::string program;
  std::string config_id;
  cache::CacheConfig config;
  energy::TechNode tech = energy::TechNode::k45nm;

  Metrics original;
  Metrics optimized;
  core::OptimizationReport report;

  // --- failure containment -------------------------------------------------
  CaseOutcome outcome = CaseOutcome::kCompleted;
  ErrorCode fail_code = ErrorCode::kOk;  ///< cause when outcome != completed
  std::string fail_stage;   ///< "optimize", "measure_original", ... or empty
  std::string fail_detail;  ///< human-readable cause

  // --- supervision (retry ladder + auditor) --------------------------------
  /// Ladder attempts consumed (1 = first try sufficed). Attempt 2 raises
  /// the solver/optimizer budgets; attempt 3 falls back to the identity
  /// transform, which needs no optimization to be Theorem-1 sound.
  std::uint32_t attempts = 1;
  /// 0 = clean first-try completion; 1 = recovered by the escalated-budget
  /// retry; 2 = quarantined degraded; 3 = quarantined failed.
  std::uint32_t degradation_level = 0;
  AuditRecord audit;

  bool quarantined() const { return outcome != CaseOutcome::kCompleted; }

  // --- the paper's ratio metrics (Inequations 10-12) -----------------------
  /// Ineq. 12: τ_w(opt)/τ_w(orig); Theorem 1 demands <= 1.
  double wcet_ratio() const;
  /// Ineq. 11: τ_a(opt)/τ_a(orig) on memory cycles.
  double acet_ratio() const;
  /// Ineq. 10: e_a(opt)/e_a(orig) on memory energy.
  double energy_ratio() const;
  /// Figure 8: executed instructions opt/orig.
  double instr_ratio() const;

  // --- degenerate-measurement flags ----------------------------------------
  // A ratio whose denominator is zero is reported as the neutral 1.0, which
  // would silently hide a broken measurement; these flags surface it so the
  // aggregates can count (and benches report) affected cases instead of
  // folding them into the means unnoticed.
  bool wcet_degenerate() const { return original.tau_wcet == 0; }
  bool acet_degenerate() const { return original.run.mem_cycles == 0; }
  bool energy_degenerate() const { return original.energy.total_nj() == 0.0; }
  bool instr_degenerate() const { return original.run.instructions == 0; }
  bool any_degenerate_ratio() const {
    return wcet_degenerate() || acet_degenerate() || energy_degenerate() ||
           instr_degenerate();
  }
};

/// Runs one use case: optimize for (config, tech), then measure both
/// binaries on that same configuration. This is the from-scratch reference
/// path; sweeps go through `run_use_case_group` instead.
UseCaseResult run_use_case(const ir::Program& program,
                           const std::string& program_name,
                           const cache::NamedCacheConfig& config,
                           energy::TechNode tech,
                           const core::OptimizerOptions& options = {},
                           const wcet::IpetSystem* shared_ipet = nullptr);

/// Wall time spent per pipeline stage, summed across the use cases of one
/// sweep (analysis + IPET + trace simulation count as "measure"; the
/// optimizer, including its internal re-analysis, counts as "optimize").
struct StageTimings {
  std::uint64_t measure_ns = 0;
  std::uint64_t optimize_ns = 0;
  std::uint64_t audit_ns = 0;  ///< soundness auditor (see AuditRecord)
};

/// Runs one (program, configuration) pair for several technology nodes at
/// once — the `MeasureCache` of the sweep. Technologies whose derived
/// memory timing coincides (most of the 45nm/32nm grid: the 0.88× access
/// scale usually rounds to the same cycle counts) share one analysis,
/// optimization and simulation; only the energy pricing runs per tech.
/// Rows are bit-identical to calling `run_use_case` per tech, because
/// every shared quantity depends on the tech node only through the derived
/// timing. Results are ordered like `techs`.
///
/// `optimized_out`, when non-null, receives the program this call vouches
/// for: the optimizer's output when the case completed, the input program
/// (identity transform) otherwise — per timing group, so single-tech
/// callers (ucpd serves one (config, tech) per request) get exactly their
/// case's binary. The sweep passes nullptr; rows never carry programs.
std::vector<UseCaseResult> run_use_case_group(
    const ir::Program& program, const std::string& program_name,
    const cache::NamedCacheConfig& config,
    const std::vector<energy::TechNode>& techs,
    const core::OptimizerOptions& options = {},
    StageTimings* timings = nullptr,
    const wcet::IpetSystem* shared_ipet = nullptr,
    bool audit_soundness = false,
    ir::Program* optimized_out = nullptr);

/// The full evaluation grid of the paper: every suite program × the 36
/// configurations of Table 2 × {45nm, 32nm} = 2664 use cases (or a subset
/// when `config_stride`/`programs` narrow it). Use cases run in parallel;
/// results come back in deterministic grid order.
struct SweepOptions {
  /// Subset of suite program names; empty = all 37.
  std::vector<std::string> programs;
  /// Take every n-th cache configuration (1 = all 36).
  std::uint32_t config_stride = 1;
  /// Technologies to run.
  std::vector<energy::TechNode> techs = {energy::TechNode::k45nm,
                                         energy::TechNode::k32nm};
  core::OptimizerOptions optimizer;
  /// Worker threads; 0 = hardware concurrency.
  std::uint32_t threads = 0;
  /// 0 = silent; any other value enables progress lines on stderr with
  /// throughput and ETA, rate-limited to at most one line per second
  /// regardless of thread count.
  std::uint32_t progress_every = 64;
  /// Memoization file. The sweep is fully deterministic, so the figure
  /// benches share one result set: the first bench to run computes and
  /// saves it; the others load and (if they sweep a subset, e.g. one
  /// technology) filter. Empty = always compute. Delete the file to force
  /// recomputation. Only used with default optimizer options. A file that
  /// fails validation (stale version, wrong grid fingerprint, corrupt rows,
  /// truncation) is reported and transparently recomputed, never trusted.
  std::string cache_path;
  /// Process each (program, configuration) pair as one task through
  /// `run_use_case_group`, sharing analysis/optimization/simulation across
  /// tech nodes with identical derived timing. Bit-identical results; the
  /// equivalence suite switches it off to pin that claim against the
  /// per-case reference path.
  bool share_across_techs = true;
  /// Crash-safe checkpoint journal. Every finished task appends its rows
  /// (checksummed, fsync'd) before they count as done; a killed sweep
  /// re-opened with the same journal path resumes from the last durable row
  /// and produces bit-identical results. Empty = no journal. Unlike the memo
  /// cache, the journal stores partial grids and quarantined rows.
  std::string journal_path;
  /// Retry-with-degradation ladder depth per use case. 1 = no retries (a
  /// quarantined row stays quarantined — the equivalence suite pins this).
  /// 2 adds an escalated-budget retry for retryable failures; 3 adds the
  /// final rung, the Theorem-1-sound identity transform (upgrades a failed
  /// row to degraded when the baseline measures under escalated budgets).
  std::uint32_t max_attempts = 1;
  /// Watchdog wall-clock deadline per task, in ms; 0 disables the watchdog.
  /// An over-deadline task is cooperatively cancelled (kCancelled) and fed
  /// to the retry ladder like any other retryable failure.
  std::uint32_t case_deadline_ms = 0;
  /// Always-on soundness auditor: after every accepted optimization,
  /// re-derive the memory contribution via the dense-tableau reference
  /// solver + cache simulator and check Theorem 1 and sparse/dense
  /// agreement. Violations demote the case to quarantined (kAuditFailed) —
  /// reported, never aborted.
  bool audit_soundness = true;
  /// Process-level sharding: run only shard `shard_index` of `shard_count`.
  /// Tasks are dealt round-robin over the heaviest-first schedule order, so
  /// shards are load-balanced and the partition is a pure function of the
  /// grid (no coordination between shard processes). A sharded sweep
  /// returns only its own rows (grid order preserved); its journal carries
  /// a `shard=i/N` header and merge_sweep_journals() reassembles the full
  /// grid bit-identically. shard_count == 1 is the ordinary full sweep.
  std::uint32_t shard_index = 0;
  std::uint32_t shard_count = 1;
};

/// One quarantined use case of a sweep: which case, which stage failed, why.
struct DegradedCase {
  std::string program;
  std::string config_id;
  energy::TechNode tech = energy::TechNode::k45nm;
  CaseOutcome outcome = CaseOutcome::kDegraded;
  std::string stage;  ///< "optimize", "measure_original", "task", ...
  ErrorCode code = ErrorCode::kOk;
  std::string detail;
};

/// Health summary of one sweep. A clean reproduction has completed == total;
/// benches print this so a silently-degraded sweep can never masquerade as
/// a clean run.
struct SweepReport {
  std::size_t total = 0;
  std::size_t completed = 0;
  std::size_t degraded = 0;  ///< fell back to the original binary
  std::size_t failed = 0;    ///< no valid baseline either
  std::size_t degenerate_ratios = 0;  ///< cases with a zero denominator
  bool cache_hit = false;    ///< results served from the memo file
  std::string cache_note;    ///< e.g. why a memo file was rejected
  std::vector<DegradedCase> quarantine;  ///< one entry per non-completed case

  // --- supervision ---------------------------------------------------------
  std::size_t retried = 0;    ///< cases that consumed more than one attempt
  std::size_t recovered = 0;  ///< cases completed by the escalated retry
  std::size_t resumed_rows = 0;  ///< rows restored from the journal
  std::size_t audited = 0;       ///< cases the soundness auditor examined
  std::size_t audit_violations = 0;    ///< auditor contradicted the optimizer
  std::size_t audit_inconclusive = 0;  ///< reference solver budget exhausted
  bool interrupted = false;  ///< stopped early by request_sweep_interrupt()
  std::string journal_note;  ///< journal state (resumed/reset/disabled/...)

  // --- performance accounting (zero when served from the memo cache) -------
  std::uint32_t threads_used = 0;
  std::uint64_t wall_ms = 0;       ///< compute wall-clock of the sweep
  double cases_per_sec = 0.0;
  StageTimings stages;             ///< summed across workers (CPU-ish time)
  /// ILP work summed over the whole sweep (per-case solves plus the
  /// once-per-program constraint-system constructions). Zero when the
  /// results were served from the memo cache — the cache stores rows, not
  /// work counters.
  ilp::SolveStats solver;
  /// The once-per-shared-IpetSystem phase-1 pivots folded into `solver`
  /// above (charge_construction). Published as exp.sweep.construction_pivots
  /// so the row-derived pivot total reconciles against the live
  /// ilp.solve.{pivots,construction_pivots} counters (DESIGN.md §14).
  std::uint64_t construction_pivots = 0;

  bool clean() const { return degraded == 0 && failed == 0; }
  void print(std::ostream& os) const;
};

/// Results plus health report of one sweep, in deterministic grid order.
struct Sweep {
  std::vector<UseCaseResult> results;
  SweepReport report;
};

Sweep run_sweep(const SweepOptions& options = {});

/// The materialized, deterministic execution plan of a sweep: the resolved
/// program list (built once, with per-program build errors and instruction
/// counts), the (program, configuration) task grid in grid order, and the
/// heaviest-first schedule order workers claim tasks in. The plan is a pure
/// function of SweepOptions, shared by run_sweep, the shard partition and
/// the journal merge — so a sharded run and a later merge agree on task
/// ownership and row order byte for byte.
struct SweepPlan {
  struct Task {
    std::size_t program = 0;    ///< index into `names` / `programs`
    std::size_t config = 0;     ///< index into cache::paper_cache_configs()
    std::size_t first = 0;      ///< index of the task's first result row
    std::uint64_t weight = 0;   ///< scheduling heaviness estimate
  };
  std::vector<std::string> names;      ///< resolved program names
  std::vector<ir::Program> programs;   ///< built programs (or placeholders)
  std::vector<std::string> build_errors;  ///< per program; "" = built clean
  std::vector<Task> tasks;             ///< grid order
  std::vector<std::size_t> schedule;   ///< task indices, heaviest first
  std::size_t result_rows = 0;         ///< tasks.size() * techs.size()

  /// Owning shard of the task at `schedule_pos`: round-robin over the
  /// heaviest-first order, so every shard gets an interleaved (balanced)
  /// slice of the heavy and light tasks.
  static std::uint32_t shard_of(std::size_t schedule_pos,
                                std::uint32_t shard_count) {
    return shard_count <= 1
               ? 0
               : static_cast<std::uint32_t>(schedule_pos % shard_count);
  }
};

SweepPlan build_sweep_plan(const SweepOptions& options);

/// Derives the row-dependent half of a SweepReport — outcome totals,
/// supervision accounting, summed per-row solver work, the quarantine list.
/// Pure function of the rows: identical however they were computed
/// (threads, shards, journal resume, merge). run_sweep layers the
/// process-scoped fields (wall clock, threads_used, journal/cache notes,
/// IPET construction charges) on top.
SweepReport derive_row_report(const std::vector<UseCaseResult>& results);

/// Publishes the sweep's health report into the obs metrics registry as the
/// authoritative `exp.sweep.*` counters: outcome totals, supervision
/// accounting and the summed solver/optimizer work, all derived from the
/// finished rows. Unlike the live per-layer counters (ilp.solve.*,
/// core.optimizer.*, ...) these also cover journal-resumed rows that never
/// executed in this process, and they are what BENCH_sweep.json and the
/// journal metrics annotation report. run_sweep calls this before
/// returning; it is a no-op while obs is disabled, and it never publishes
/// wall-clock-derived values (fingerprints must stay machine-independent).
void publish_sweep_metrics(const Sweep& sweep);

// --- cooperative sweep interruption ----------------------------------------
// Async-signal-safe: a SIGINT/SIGTERM handler may call
// request_sweep_interrupt() directly. Workers stop pulling new tasks, the
// journal keeps every finished row, and run_sweep returns with
// report.interrupted set; unrun cases come back quarantined ("interrupted").

void request_sweep_interrupt();
bool sweep_interrupt_requested();
void clear_sweep_interrupt();

// --- sweep memo cache (hardened) -------------------------------------------
// Format v2: a `# ucp-sweep-cache v<N> grid=<fingerprint>` header line, the
// column header, then one row per use case with a trailing FNV-1a checksum
// column. Loads validate version, grid fingerprint, cell syntax, config ids
// and row checksums; any mismatch rejects the whole file (kCorruptCache) so
// the sweep recomputes instead of serving poisoned figures. Saves write to
// a temporary file and rename it into place, so a killed bench never leaves
// a truncated cache behind.

inline constexpr std::uint32_t kSweepCacheVersion = 2;

/// Fingerprint of the full evaluation grid (program set, configurations,
/// technologies, format version): stale caches from older code disqualify
/// themselves instead of poisoning the next run.
std::string sweep_grid_fingerprint();

/// The canonical v2 cache row of one result, including the trailing FNV-1a
/// checksum cell — the bit-identity unit of the equivalence suite and the
/// perf-smoke divergence check.
std::string sweep_cache_row(const UseCaseResult& result);

/// FNV-1a over all rows of a result set, as hex. Two sweeps agree on this
/// fingerprint iff they produced bit-identical rows in the same order.
std::string sweep_results_fingerprint(const std::vector<UseCaseResult>& results);

Status save_sweep_cache(const std::string& path,
                        const std::vector<UseCaseResult>& results);

Expected<std::vector<UseCaseResult>> load_sweep_cache(
    const std::string& path);

/// Runs fn(0..n-1) on a worker pool (0 threads = hardware concurrency).
/// Used by benches whose grids differ from the standard sweep. Thin alias
/// of support::parallel_for_index: exceptions surface deterministically as
/// the error of the lowest failing index (see support/parallel.hpp).
void parallel_for_index(std::size_t n, std::uint32_t threads,
                        const std::function<void(std::size_t)>& fn);

/// Per-cache-size averages over a batch of results — the data series behind
/// Figures 3, 4 and 5.
struct SizeAggregate {
  std::uint32_t capacity_bytes = 0;
  std::size_t cases = 0;
  double mean_energy_ratio = 1.0;
  double mean_acet_ratio = 1.0;
  double mean_wcet_ratio = 1.0;
  double mean_missrate_orig = 0.0;
  double mean_missrate_opt = 0.0;
  double mean_instr_ratio = 1.0;
  double max_wcet_ratio = 0.0;
  double mean_prefetches = 0.0;
  std::size_t degenerate_cases = 0;  ///< any_degenerate_ratio() held
  std::size_t quarantined_cases = 0; ///< degraded or failed
};

std::vector<SizeAggregate> aggregate_by_size(
    const std::vector<UseCaseResult>& results);

/// Grand means over all results (the paper's headline -10.2% / -11.2% /
/// -17.4% numbers correspond to 1 - these ratios).
struct GrandAggregate {
  std::size_t cases = 0;
  double mean_energy_ratio = 1.0;
  double mean_acet_ratio = 1.0;
  double mean_wcet_ratio = 1.0;
  double mean_instr_ratio = 1.0;
  double max_instr_ratio = 1.0;
  double max_wcet_ratio = 0.0;
  std::size_t wcet_regressions = 0;  ///< cases with ratio > 1 (must be 0)
  std::size_t degenerate_cases = 0;  ///< any_degenerate_ratio() held
  std::size_t quarantined_cases = 0; ///< degraded or failed
};

GrandAggregate aggregate_all(const std::vector<UseCaseResult>& results);

/// The paper's configuration-selection rule (Section 5): capacities were
/// chosen per program "so that the average miss rate lies in a large span
/// from 1% to 10% before the proposed optimization is applied". Our grid is
/// fixed instead, so this filter recovers the paper's regime: the use cases
/// whose pre-optimization miss rate falls in that span. Cases far outside
/// it (programs fully resident, or thrashing far beyond capacity) have no
/// prefetch opportunity by construction and dilute grid-wide averages.
std::vector<UseCaseResult> paper_regime(
    const std::vector<UseCaseResult>& results, double lo = 0.01,
    double hi = 0.10);

/// Use cases where the reverse analysis found at least one replaced-block
/// miss on the WCET path — the structural precondition for the technique
/// to have anything to do. This is a *pre-treatment* property (it does not
/// condition on the optimizer succeeding), so averages over this subset
/// are unbiased. In the paper every use case lies in this regime because
/// its compiled ARM programs dwarf the allocated capacities; in our
/// smaller-footprint suite only part of the grid does (see EXPERIMENTS.md).
std::vector<UseCaseResult> reuse_regime(
    const std::vector<UseCaseResult>& results);

}  // namespace ucp::exp
