#pragma once

// Crash-safe sweep checkpoint journal.
//
// The memo cache (harness.hpp) stores only *finished, clean, full-grid*
// sweeps; the journal is its complement for the failure path: an append-only
// row log that survives kill -9 at any byte. Every finished task's rows are
// appended, checksummed and fsync'd before the task counts as done, so a
// re-opened journal resumes the sweep from the last durable row and the
// combined result set is bit-identical to an uninterrupted run.
//
// Durability discipline:
//  - the header (version + grid + selection fingerprints, plus the shard
//    slice for sharded sweeps) is written and fsync'd — file and parent
//    directory — when the journal is created;
//  - appends go through fwrite + fflush + fsync before returning;
//  - every row carries a trailing FNV-1a checksum; a torn tail (partial
//    last record after a crash mid-append) fails its checksum and is
//    truncated away on open, never trusted;
//  - a header that does not match the current grid/selection/shard
//    fingerprints resets the journal (stale checkpoints are worthless, not
//    dangerous).
//
// Row order (format v2): rows appear in the sweep's deterministic
// heaviest-first schedule order, whatever the thread count — workers buffer
// finished rows and a single flusher appends them when the schedule
// frontier reaches them (DESIGN.md §13). The journal of an N-thread run is
// therefore byte-identical to a 1-thread run's, and merge_sweep_journals
// can reassemble shard journals into the byte-identical unsharded file.

#include <cstdio>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "exp/harness.hpp"
#include "support/status.hpp"

namespace ucp::exp {

class SweepJournal {
 public:
  SweepJournal() = default;
  ~SweepJournal() { close(); }
  SweepJournal(const SweepJournal&) = delete;
  SweepJournal& operator=(const SweepJournal&) = delete;

  /// Opens (or creates) the journal at `path` for the sweep identified by
  /// `grid_fp` + `selection_fp`, owned by shard `shard_index` of
  /// `shard_count` (0 of 1 = unsharded; the header only names the shard
  /// when sharded). Valid rows whose index passes `matches_grid` are
  /// restored into `rows` / `have_row` (both pre-sized to the result
  /// count); everything from the first invalid row onward is truncated. On
  /// success the journal is active() and ready for appends. `note()`
  /// afterwards describes what happened (started / resumed N rows /
  /// reset: why).
  Status open(const std::string& path, const std::string& grid_fp,
              const std::string& selection_fp, std::uint32_t shard_index,
              std::uint32_t shard_count, std::vector<UseCaseResult>& rows,
              std::vector<bool>& have_row,
              const std::function<bool(std::size_t, const UseCaseResult&)>&
                  matches_grid);

  /// Appends `count` result rows starting at `first` (their grid indices)
  /// and makes them durable. A write failure disables the journal (the
  /// sweep continues without checkpoints) and is returned as a Status.
  /// Not thread-safe; the sweep's single flusher serializes appends.
  Status append(const std::vector<UseCaseResult>& results, std::size_t first,
                std::size_t count);

  /// Appends several row ranges as one batch with a single fflush + fsync:
  /// the deterministic flusher uses this so a frontier advance over many
  /// buffered tasks costs one durability round-trip, not one per task.
  /// Ranges become durable together; a crash mid-batch loses (at most) a
  /// checksummed-away torn tail.
  Status append_batch(
      const std::vector<UseCaseResult>& results,
      const std::vector<std::pair<std::size_t, std::size_t>>& ranges);

  /// Appends `text` as a `# `-prefixed comment line (newlines flattened).
  /// Comments are skipped on open, so annotations never affect resume; the
  /// sweep uses this to merge the end-of-run metrics snapshot into the
  /// journal. Sits behind the obs.sink_write fault point: a failure is
  /// reported but leaves the journal active (annotations are observability,
  /// not checkpoints).
  Status annotate(const std::string& text);

  bool active() const { return file_ != nullptr; }
  const std::string& note() const { return note_; }
  std::size_t resumed_rows() const { return resumed_; }

  void close();

  /// Fingerprint of everything that must match for journal rows to be
  /// reusable: the resolved program list, configuration subset, tech nodes,
  /// sharing mode, supervision knobs and optimizer options.
  static std::string selection_fingerprint(
      const SweepOptions& options, const std::vector<std::string>& names);

  /// One serialized journal row (with trailing checksum), and its inverse.
  static std::string journal_row(const UseCaseResult& result,
                                 std::size_t index);
  static bool parse_journal_row(const std::string& line, std::size_t& index,
                                UseCaseResult& result);

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
  std::string note_;
  std::size_t resumed_ = 0;
};

/// Result of merging shard journals back into one sweep.
struct JournalMerge {
  std::vector<UseCaseResult> results;  ///< full grid, grid order
  std::uint32_t shard_count = 0;       ///< shard count declared by the inputs
  std::size_t rows = 0;                ///< result rows reassembled
  std::string fingerprint;             ///< re-derived global sweep fingerprint
};

/// Structured report of why a journal merge was rejected. The Status message
/// stays the human-readable sentence; this records the same rejection as
/// machine-checkable fields so callers (and the `--merge-journals` CLI) can
/// point at the offending file and row instead of re-parsing prose.
struct MergeDiagnostic {
  enum class Reason {
    kNone = 0,        ///< merge succeeded (or failed before any input)
    kMissingFile,     ///< input journal could not be opened
    kBadHeader,       ///< empty file or unparseable/old-version header
    kGridMismatch,    ///< header grid fingerprint != this build's grid
    kSelectionMismatch,  ///< header selection fingerprint != sweep options
    kShardCountMismatch,  ///< inputs disagree on the shard count N
    kDuplicateShard,  ///< two inputs claim the same shard slot
    kChecksum,        ///< invalid or torn row (checksum/format failure)
    kForeignRow,      ///< row index outside the grid or content not matching it
    kWrongShard,      ///< row not owned by the shard that journaled it
    kDivergent,       ///< same row index appears twice with different bytes
    kMissingShard,    ///< a shard slot has no input journal
    kGap,             ///< grid rows missing after all inputs were consumed
  };
  Reason reason = Reason::kNone;
  std::string file;        ///< offending input path ("" for kMissingShard/kGap)
  std::size_t row_index = 0;  ///< grid row index for row-level reasons, else 0
  bool has_row = false;    ///< whether row_index is meaningful
  std::string detail;      ///< the human-readable sentence from the Status
};

/// Stable lowercase name for a MergeDiagnostic::Reason ("checksum", "gap", ...).
const char* merge_reason_name(MergeDiagnostic::Reason reason);

/// Merges the journals of a complete set of `--shard i/N` runs of the sweep
/// described by `options` (shard fields ignored). Validates that every
/// input carries the sweep's grid + selection fingerprints and a distinct
/// shard slot of one common N, that every row belongs to the shard that
/// journaled it, and that the union is exactly the full grid — overlapping
/// rows must be byte-identical and gaps are an error, never padded. On
/// success, when `output_path` is non-empty, writes a merged journal there
/// (durably: temp + fsync + rename) that is byte-identical to the journal
/// an unsharded run would have produced — same header, same rows, same
/// deterministic schedule order. On rejection, when `diagnostic` is
/// non-null, it is filled with the structured reason alongside the Status.
Expected<JournalMerge> merge_sweep_journals(
    const std::vector<std::string>& inputs, const SweepOptions& options,
    const std::string& output_path,
    MergeDiagnostic* diagnostic = nullptr);

}  // namespace ucp::exp
