#include "core/wcet_path.hpp"

#include <map>
#include <optional>

#include "support/check.hpp"

namespace ucp::core {

using analysis::CgEdge;
using analysis::ContextGraph;
using analysis::NodeId;
using cache::MemBlockId;

std::uint64_t WcetPath::slack_between(std::size_t from, std::size_t to) const {
  UCP_REQUIRE(from <= to && to <= refs.size(), "bad slack interval");
  std::uint64_t slack = 0;
  for (std::size_t k = from + 1; k < to; ++k) slack += refs[k].t_w;
  return slack;
}

namespace {

/// Exact LRU cache tracked along a single path; reports the victim of every
/// installation so Property 3 (replaced-block identification) falls out.
class PathCache {
 public:
  explicit PathCache(const cache::CacheConfig& config) : config_(config) {
    sets_.resize(config_.num_sets());
  }

  struct Access {
    bool hit = false;
    std::optional<MemBlockId> evicted;
  };

  Access access(MemBlockId block) {
    auto& set = sets_[config_.set_of(block)];
    Access out;
    for (std::size_t i = 0; i < set.size(); ++i) {
      if (set[i] == block) {
        out.hit = true;
        set.erase(set.begin() + static_cast<std::ptrdiff_t>(i));
        set.insert(set.begin(), block);
        return out;
      }
    }
    if (set.size() == config_.assoc) {
      out.evicted = set.back();
      set.pop_back();
    }
    set.insert(set.begin(), block);
    return out;
  }

 private:
  cache::CacheConfig config_;
  std::vector<std::vector<MemBlockId>> sets_;
};

}  // namespace

WcetPath build_wcet_path(const ContextGraph& graph, const ir::Program& program,
                         const ir::Layout& layout,
                         const cache::CacheConfig& config,
                         const cache::MemTiming& timing,
                         const analysis::CacheAnalysisResult& classification,
                         const wcet::WcetResult& wcet) {
  UCP_REQUIRE(wcet.ok(), "WCET analysis did not produce a solution");
  WcetPath path;
  PathCache cache(config);
  /// Last path position whose installation evicted each block.
  std::map<MemBlockId, std::int32_t> last_evictor;

  std::vector<bool> visited(graph.num_nodes(), false);
  std::vector<bool> is_exit(graph.num_nodes(), false);
  for (NodeId e : graph.exit_nodes()) is_exit[e] = true;

  NodeId cur = graph.entry_node();
  std::size_t guard = 0;

  while (true) {
    UCP_CHECK_MSG(++guard <= graph.num_nodes() + 1,
                  "WCET path walk did not terminate");
    visited[cur] = true;

    const ir::BasicBlock& bb = program.block(graph.node(cur).block);
    for (std::uint32_t i = 0; i < bb.instrs.size(); ++i) {
      const ir::Instruction& instr = bb.instrs[i];
      PathRef ref;
      ref.node = cur;
      ref.instr_index = i;
      ref.instr = instr.id;
      ref.block = layout.mem_block(instr.id);
      ref.is_prefetch = instr.is_prefetch();
      ref.t_w = wcet::ref_cycles(classification.classify(cur, i), timing);
      ref.n_w = wcet.node_counts[cur];
      const auto pos = static_cast<std::int32_t>(path.refs.size());

      const PathCache::Access own = cache.access(ref.block);
      ref.path_miss = !own.hit;
      if (ref.path_miss) {
        const auto it = last_evictor.find(ref.block);
        ref.evictor = (it != last_evictor.end()) ? it->second : -1;
      }
      if (own.evicted) last_evictor[*own.evicted] = pos;

      if (ref.is_prefetch) {
        // The prefetch installs its target block (MRU); its victim counts as
        // evicted *by this reference* for downstream miss attribution.
        const MemBlockId target = layout.mem_block(instr.pf_target);
        const PathCache::Access t = cache.access(target);
        if (t.evicted) last_evictor[*t.evicted] = pos;
      }
      path.refs.push_back(ref);
    }

    if (is_exit[cur]) break;

    // J_SE path selection: follow the worst-case flow. Prefer the unvisited
    // successor carrying the most flow; when stuck at a loop tail (only a
    // back edge remains), hop to the already-visited REST header and leave
    // through its exit edge — the ACFG linearization of Supplement S.3.
    auto pick = [&](NodeId from) -> NodeId {
      NodeId best = analysis::kInvalidNode;
      std::uint64_t best_count = 0;
      std::size_t best_depth = 0;
      bool found = false;
      for (std::uint32_t ei : graph.out_edges(from)) {
        const CgEdge& e = graph.edges()[ei];
        if (e.back || visited[e.to]) continue;
        const std::uint64_t c = wcet.edge_counts[ei];
        // Flow ties occur where one unit exits a loop while others iterate;
        // staying in the deeper context follows the iterating units (the
        // loop body is where the worst-case time accrues).
        const std::size_t depth = graph.node(e.to).ctx.size();
        if (!found || c > best_count ||
            (c == best_count && depth > best_depth)) {
          best = e.to;
          best_count = c;
          best_depth = depth;
          found = true;
        }
      }
      return best;
    };

    NodeId next = pick(cur);
    NodeId hop = cur;
    std::size_t hop_guard = 0;
    while (next == analysis::kInvalidNode &&
           hop_guard++ <= graph.num_nodes()) {
      // Follow a back edge up to its header and retry from there.
      NodeId header = analysis::kInvalidNode;
      for (std::uint32_t ei : graph.out_edges(hop)) {
        const CgEdge& e = graph.edges()[ei];
        if (e.back && e.to != hop) header = e.to;
      }
      if (header == analysis::kInvalidNode) break;
      hop = header;
      next = pick(hop);
    }
    if (next == analysis::kInvalidNode) break;  // ran off the flow; stop
    cur = next;
  }
  return path;
}

}  // namespace ucp::core
