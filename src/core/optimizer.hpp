#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/cache_analysis.hpp"
#include "cache/config.hpp"
#include "ilp/model.hpp"
#include "ir/program.hpp"
#include "support/status.hpp"

namespace ucp::wcet {
class IpetSystem;
}

namespace ucp::core {

/// How candidate prefetches are accepted — the joint improvement criterion
/// of Section 4.3 and two ablation variants for bench_ablation_criterion.
enum class AcceptRule : std::uint8_t {
  /// Paper criterion: accept only if τ_w (fixed worst-case counts) strictly
  /// decreases — this folds mcost/pcost gain and rcost relocation into one
  /// exact Δτ test (see DESIGN.md §3 interpretation notes).
  kProfit,
  /// Accept if τ_w does not increase (drops the strict-gain requirement).
  kAnyNonIncrease,
  /// Accept every effective candidate (shows why the criterion matters).
  kAlways,
};

struct OptimizerOptions {
  /// Maximum optimize-analyze passes (each pass rescans the WCET path).
  std::uint32_t max_passes = 6;
  /// Enforce Definition 10 (Λ must fit in the slack before the use).
  bool require_effectiveness = true;
  /// Enforce Condition 3 of Section 2.3 directly: a candidate that
  /// increases the *simulated* memory ACET is rejected. The paper relies
  /// on the WCET-ACET correlation instead of measuring; checking the
  /// trace costs us microseconds and upholds the paper's "energy savings
  /// for all use cases without increasing the ACET" observation even
  /// where the worst-case and average paths diverge.
  bool require_acet_non_increase = true;
  AcceptRule accept_rule = AcceptRule::kProfit;
  /// Re-run the full IPET on the result and revert everything if the true
  /// WCET regressed (guards the fixed-counts approximation; see DESIGN.md).
  bool final_audit = true;
  std::uint64_t max_prefetches = 4096;
  /// Budget on full candidate re-analyses per optimization run. Each
  /// evaluation costs one must/may pass over the whole VIVU graph, which
  /// dominates runtime on the largest kernels (nsichneu-class); candidates
  /// beyond the budget are left untried (reported in the rejection stats).
  std::size_t max_evaluations = 320;
  /// Wall-clock budget for one optimization run, in milliseconds; 0 means
  /// unlimited. On expiry the optimizer degrades to the identity transform
  /// (the original program, trivially Theorem-1 sound) and reports
  /// kDeadlineExceeded, so one pathological use case cannot stall a sweep.
  /// Off by default because wall-clock cutoffs make results timing-
  /// dependent; sweeps that want reproducible output leave this at 0 and
  /// rely on the deterministic pivot/node/evaluation budgets instead.
  std::uint32_t deadline_ms = 0;
  /// Evaluate candidates with `IncrementalCacheAnalysis` (worklist seeded
  /// only from relocation-affected contexts) instead of a from-scratch
  /// `analyze_cache` per trial. Produces bit-identical results (the
  /// recomputed fixpoint is the same least fixpoint — DESIGN.md §8); the
  /// flag exists so the equivalence suite can pin that claim against the
  /// reference path. Note the evaluation budget formula is deliberately
  /// unchanged between modes, since it influences which candidates get
  /// tried and therefore the output program.
  bool incremental_reanalysis = true;
  /// Fixpoint driver for the optimizer's own from-scratch cache analyses
  /// (base analysis when `incremental_reanalysis` is off, per-pass path
  /// re-derivation, fixed-τ trials, final audit). Both modes compute the
  /// same least fixpoint (DESIGN.md §14); the knob exists so the scaling
  /// bench and equivalence suite can drive the pre-PR pipeline end to end.
  analysis::FixpointMode fixpoint_mode = analysis::FixpointMode::kSccSparse;
  /// Presolve toggle for the optimizer-owned IPET system (only consulted
  /// when no shared system is passed in). Presolve is exact, so results are
  /// identical either way; the knob exists for differential benchmarking.
  bool ipet_presolve = true;
};

/// One accepted insertion.
struct PrefetchRecord {
  ir::InstrId prefetch_instr = ir::kInvalidInstr;
  ir::InstrId target_instr = ir::kInvalidInstr;  ///< r_j: the miss precluded
  ir::BlockId block = ir::kInvalidBlock;         ///< physical insertion block
  std::int64_t profit_tau = 0;                   ///< Δτ_w at acceptance
  std::uint64_t slack = 0;                       ///< Definition-10 slack
};

struct OptimizationReport {
  /// Why the optimizer degraded to the identity transform (kOk = it did
  /// not). Any non-kOk code means the returned program IS the input program
  /// and `detail` names the failing stage; the result is still sound.
  ErrorCode code = ErrorCode::kOk;
  std::string detail;
  bool wcet_failed = false;       ///< initial IPET unsolved; program untouched
  bool reverted = false;          ///< final audit failed; original returned
  std::uint64_t tau_original = 0;   ///< fresh-IPET τ_w of the input
  std::uint64_t tau_optimized = 0;  ///< fresh-IPET τ_w of the output
  std::uint64_t tau_fixed_final = 0;  ///< fixed-counts τ_w after optimization
  std::size_t candidates_found = 0;
  std::size_t candidates_evaluated = 0;
  std::size_t rejected_ineffective = 0;
  std::size_t rejected_unprofitable = 0;
  /// Δτ_w-profitable but increased the simulated ACET (Condition 3).
  std::size_t rejected_acet = 0;
  /// Skipped without re-analysis: >= assoc conflicting blocks are fetched
  /// between the insertion point and the use, so the prefetched block
  /// cannot survive to its use even on the WCET path itself.
  std::size_t rejected_cannot_survive = 0;
  std::size_t passes = 0;
  // --- candidate re-analysis accounting (perf acceptance instrumentation).
  /// From-scratch `analyze_cache` runs spent on candidate evaluation; stays
  /// zero on the incremental path (the one base analysis is not counted).
  std::size_t full_reanalyses = 0;
  /// Incremental trial re-analyses (one per evaluated candidate variant).
  std::size_t incremental_reanalyses = 0;
  /// Cumulative context nodes recomputed across incremental trials; compare
  /// against `graph_nodes * incremental_reanalyses` for the saving.
  std::size_t nodes_reanalyzed = 0;
  std::size_t graph_nodes = 0;  ///< VIVU context-graph size, for scale
  /// Wall time spent in candidate re-analysis (either mode), nanoseconds.
  std::uint64_t reanalysis_ns = 0;
  /// ILP work of the initial and final IPET solves (plus the constraint
  /// system's one-time construction when this run had to build its own).
  ilp::SolveStats solver;
  std::vector<PrefetchRecord> insertions;

  double wcet_ratio() const {
    return tau_original == 0
               ? 1.0
               : static_cast<double>(tau_optimized) /
                     static_cast<double>(tau_original);
  }
};

struct OptimizationResult {
  ir::Program program;
  OptimizationReport report;
};

/// The paper's optimization (Algorithm 3): identifies, along the WCET path,
/// every cache miss whose block was displaced by an earlier access, and
/// inserts a software prefetch right after the displacing access whenever
/// the joint improvement criterion holds. The returned program is
/// prefetch-equivalent to the input (Definition 5) and its memory
/// contribution to the WCET never exceeds the input's (Theorem 1; enforced
/// by construction plus the final audit).
/// `shared_ipet`, when given, must have been built from `input`'s context
/// graph; the initial and final IPET solves then reuse its cached constraint
/// system instead of rebuilding it (bit-identical results — see
/// wcet::IpetSystem).
OptimizationResult optimize_prefetches(
    const ir::Program& input, const cache::CacheConfig& config,
    const cache::MemTiming& timing, const OptimizerOptions& options = {},
    const wcet::IpetSystem* shared_ipet = nullptr);

/// Builds a kPrefetch instruction for the block containing `target`.
ir::Instruction make_prefetch(ir::InstrId target);

}  // namespace ucp::core
