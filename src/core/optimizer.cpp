#include "core/optimizer.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <optional>
#include <set>
#include <utility>

#include "analysis/cache_analysis.hpp"
#include "analysis/context_graph.hpp"
#include "core/wcet_path.hpp"
#include "ir/layout.hpp"
#include "ir/verify.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/interpreter.hpp"
#include "support/cancellation.hpp"
#include "support/check.hpp"
#include "support/checked.hpp"
#include "support/fault_injection.hpp"
#include "wcet/ipet.hpp"

namespace ucp::core {

using analysis::CacheAnalysisResult;
using analysis::ContextGraph;

ir::Instruction make_prefetch(ir::InstrId target) {
  ir::Instruction in;
  in.op = ir::Opcode::kPrefetch;
  in.pf_target = target;
  return in;
}

namespace {

/// Evaluates τ_w of `program` under the frozen worst-case counts.
std::uint64_t fixed_tau(const ContextGraph& graph, const ir::Program& program,
                        const cache::CacheConfig& config,
                        const cache::MemTiming& timing,
                        const std::vector<std::uint64_t>& counts,
                        analysis::FixpointMode mode) {
  const ir::Layout layout(program, config.block_bytes);
  const CacheAnalysisResult cls =
      analysis::analyze_cache(graph, program, layout, config, mode);
  return wcet::tau_with_fixed_counts(graph, cls, timing, counts);
}

struct Candidate {
  ir::InstrId evictor = ir::kInvalidInstr;  ///< insert right after this
  ir::InstrId target = ir::kInvalidInstr;   ///< r_j whose miss to preclude
  cache::MemBlockId target_block = 0;       ///< s': block to prefetch
  std::uint64_t slack = 0;                  ///< t_w between insertion and use
  std::uint64_t miss_weight = 0;            ///< t_w(r_j) * n_w(r_j)
  bool can_survive = true;                  ///< path-local survival check
};

/// Necessary condition for any gain: between the insertion point and the
/// use, fewer than `assoc` distinct other blocks of the same cache set may
/// be fetched, or the prefetched block is evicted again before its use even
/// along the WCET path. Saves a full re-analysis on hopeless (thrashing)
/// candidates.
bool prefetch_can_survive(const WcetPath& path, std::size_t evictor_pos,
                          std::size_t use_pos, cache::MemBlockId target,
                          const cache::CacheConfig& config) {
  const std::uint32_t set = config.set_of(target);
  std::set<cache::MemBlockId> conflicting;
  for (std::size_t k = evictor_pos + 1; k < use_pos; ++k) {
    const cache::MemBlockId blk = path.refs[k].block;
    if (blk != target && config.set_of(blk) == set) conflicting.insert(blk);
    if (conflicting.size() >= config.assoc) return false;
  }
  return true;
}

}  // namespace

OptimizationResult optimize_prefetches(const ir::Program& input,
                                       const cache::CacheConfig& config,
                                       const cache::MemTiming& timing,
                                       const OptimizerOptions& options,
                                       const wcet::IpetSystem* shared_ipet) {
  config.validate();
  timing.validate();
  ir::verify_or_throw(input);

  OptimizationResult result{input, {}};
  OptimizationReport& report = result.report;
  ir::Program& p = result.program;

  // One registry publish per run, on every exit path (the candidate walk
  // has many early degrade returns). Counter values are the report's own —
  // route one source of truth into the registry, don't recount.
  obs::Span span("core.optimizer.run");
  struct ReportPublisher {
    const OptimizationReport& report;
    ~ReportPublisher() {
      if (!obs::enabled()) return;
      static obs::Counter& c_runs =
          obs::registry().counter("core.optimizer.runs");
      static obs::Counter& c_found =
          obs::registry().counter("core.optimizer.candidates_found");
      static obs::Counter& c_eval =
          obs::registry().counter("core.optimizer.candidates_evaluated");
      static obs::Counter& c_accepted =
          obs::registry().counter("core.optimizer.insertions_accepted");
      static obs::Counter& c_ineff =
          obs::registry().counter("core.optimizer.rejected_ineffective");
      static obs::Counter& c_unprof =
          obs::registry().counter("core.optimizer.rejected_unprofitable");
      static obs::Counter& c_acet =
          obs::registry().counter("core.optimizer.rejected_acet");
      static obs::Counter& c_surv =
          obs::registry().counter("core.optimizer.rejected_cannot_survive");
      static obs::Counter& c_passes =
          obs::registry().counter("core.optimizer.passes");
      static obs::Counter& c_full =
          obs::registry().counter("core.optimizer.full_reanalyses");
      static obs::Counter& c_incr =
          obs::registry().counter("core.optimizer.incremental_reanalyses");
      static obs::Counter& c_nodes =
          obs::registry().counter("core.optimizer.nodes_reanalyzed");
      c_runs.increment();
      c_found.add(report.candidates_found);
      c_eval.add(report.candidates_evaluated);
      c_accepted.add(report.insertions.size());
      c_ineff.add(report.rejected_ineffective);
      c_unprof.add(report.rejected_unprofitable);
      c_acet.add(report.rejected_acet);
      c_surv.add(report.rejected_cannot_survive);
      c_passes.add(report.passes);
      c_full.add(report.full_reanalyses);
      c_incr.add(report.incremental_reanalyses);
      c_nodes.add(report.nodes_reanalyzed);
    }
  } publisher{report};

  // Degradation to the identity transform: the returned program is the
  // unmodified input (trivially Theorem-1 sound), with the cause recorded.
  const auto start_time = std::chrono::steady_clock::now();
  auto degrade = [&](ErrorCode code, const std::string& detail) {
    result.program = input;
    report.reverted = !report.insertions.empty();
    report.insertions.clear();
    report.code = code;
    report.detail = detail;
    report.tau_optimized = report.tau_original;
    report.tau_fixed_final = report.tau_original;
  };
  auto deadline_exceeded = [&] {
    if (UCP_FAULT_POINT("core.deadline")) return true;
    if (options.deadline_ms == 0) return false;
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start_time);
    return elapsed.count() >= static_cast<std::int64_t>(options.deadline_ms);
  };
  // Cooperative cancellation (watchdog / SIGINT). Like a deadline, a cancel
  // degrades to the identity transform — never a crash.
  auto cancelled = [&] {
    if (!cancellation_requested()) return false;
    degrade(ErrorCode::kCancelled,
            "optimization cancelled by the supervisor on '" + input.name() +
                "'");
    return true;
  };

  // The CFG never changes during optimization (prefetches are straight-line
  // insertions), so one context graph — and one IPET constraint system,
  // serving both the initial solve and the final audit — covers the whole
  // run. A caller that already holds the system for this program (the sweep
  // harness) passes it in and the construction cost drops out entirely.
  std::optional<ContextGraph> own_graph;
  std::optional<wcet::IpetSystem> own_ipet;
  if (!shared_ipet) {
    own_graph.emplace(input);
    own_ipet.emplace(*own_graph, wcet::IpetOptions{options.ipet_presolve});
  }
  const wcet::IpetSystem& ipet = shared_ipet ? *shared_ipet : *own_ipet;
  const ContextGraph& graph = ipet.graph();
  if (!shared_ipet) ipet.charge_construction(report.solver);
  report.graph_nodes = graph.num_nodes();

  // Preliminary WCET analysis: classifications, τ_w, and the frozen
  // worst-case counts n_w the whole profit arithmetic runs against. On the
  // incremental path the same base analysis lives inside `incr` and is then
  // reused for every per-pass path derivation and the final audit.
  std::optional<analysis::IncrementalCacheAnalysis> incr;
  std::optional<CacheAnalysisResult> cls0_scratch;
  if (options.incremental_reanalysis) {
    incr.emplace(graph, input, config);
  } else {
    const ir::Layout layout0(input, config.block_bytes);
    cls0_scratch =
        analysis::analyze_cache(graph, layout0, config, options.fixpoint_mode);
  }
  const CacheAnalysisResult& cls0 = incr ? incr->result() : *cls0_scratch;
  const wcet::WcetResult wcet0 = ipet.solve(cls0, timing);
  report.solver.add(wcet0.stats);
  if (!wcet0.ok()) {
    report.wcet_failed = true;
    degrade(wcet::solve_error_code(wcet0.status),
            "initial IPET unsolved (" + ilp::status_name(wcet0.status) +
                ") for program '" + input.name() + "'");
    return result;
  }
  report.tau_original = wcet0.tau_mem;
  const std::vector<std::uint64_t>& n_w = wcet0.node_counts;

  std::uint64_t tau_current = wcet0.tau_mem;

  // Per-node fixed-counts τ contributions of the current base program.
  // τ_w is a plain sum over nodes, so a trial's τ is the base sum minus the
  // affected nodes' old contributions plus their recomputed ones — exact
  // integer arithmetic, bit-identical to summing from scratch.
  auto node_contribution = [&](const std::vector<analysis::Classification>&
                                   cls_row,
                               analysis::NodeId v) -> std::uint64_t {
    if (n_w[v] == 0) return 0;
    std::uint64_t per_exec = 0;
    for (analysis::Classification c : cls_row)
      per_exec += wcet::ref_cycles(c, timing);
    return checked_mul(per_exec, n_w[v], "node tau contribution");
  };
  std::vector<std::uint64_t> node_tau;
  std::uint64_t tau_base_sum = 0;
  if (incr) {
    node_tau.resize(graph.num_nodes());
    for (analysis::NodeId v = 0; v < graph.num_nodes(); ++v) {
      node_tau[v] = node_contribution(cls0.per_node[v], v);
      tau_base_sum += node_tau[v];
    }
  }

  // One candidate evaluation costs a full must/may pass over the graph, so
  // the effective budget shrinks with graph size to keep per-program
  // optimization time roughly constant.
  const std::size_t eval_budget = std::min(
      options.max_evaluations,
      std::max<std::size_t>(48, 160000 / std::max<std::size_t>(
                                             1, graph.num_nodes())));
  // Candidates already tried (accepted or rejected), keyed by
  // (evictor, target) — identical physical insertions are not retried.
  std::set<std::pair<ir::InstrId, ir::InstrId>> tried;

  for (std::uint32_t pass = 0; pass < options.max_passes; ++pass) {
    if (cancelled()) return result;
    if (deadline_exceeded()) {
      degrade(ErrorCode::kDeadlineExceeded,
              "optimization deadline expired before pass " +
                  std::to_string(pass + 1) + " on '" + input.name() + "'");
      return result;
    }
    ++report.passes;

    // Re-derive the WCET path against the current program. The incremental
    // engine already holds the converged analysis of `p` (promoted on every
    // acceptance), so no fresh fixpoint is needed there.
    std::optional<ir::Layout> layout_scratch;
    std::optional<CacheAnalysisResult> cls_scratch;
    if (!incr) {
      layout_scratch.emplace(p, config.block_bytes);
      cls_scratch = analysis::analyze_cache(graph, p, *layout_scratch, config,
                                            options.fixpoint_mode);
    }
    const ir::Layout& layout = incr ? incr->layout() : *layout_scratch;
    const CacheAnalysisResult& cls = incr ? incr->result() : *cls_scratch;
    const WcetPath path =
        build_wcet_path(graph, p, layout, config, timing, cls, wcet0);

    // Collect candidates: replaced-block misses on the WCET path, visited
    // in reverse execution order as Algorithm 3 prescribes.
    std::vector<Candidate> candidates;
    for (std::size_t k = path.refs.size(); k-- > 0;) {
      const PathRef& ref = path.refs[k];
      if (!ref.path_miss || ref.is_prefetch || ref.evictor < 0) continue;
      if (ref.n_w == 0) continue;  // off the worst-case path: no τ gain
      Candidate c;
      const auto epos = static_cast<std::size_t>(ref.evictor);
      c.evictor = path.refs[epos].instr;
      c.target = ref.instr;
      c.target_block = ref.block;
      c.slack = path.slack_between(epos, k);
      c.miss_weight = static_cast<std::uint64_t>(ref.t_w) * ref.n_w;
      c.can_survive =
          prefetch_can_survive(path, epos, k, ref.block, config);
      candidates.push_back(c);
    }
    report.candidates_found += candidates.size();

    bool accepted_any = false;
    for (const Candidate& c : candidates) {
      if (report.insertions.size() >= options.max_prefetches) break;
      if (report.candidates_evaluated >= eval_budget) break;
      if (cancelled()) return result;
      if (deadline_exceeded()) {
        degrade(ErrorCode::kDeadlineExceeded,
                "optimization deadline expired mid-pass on '" +
                    input.name() + "'");
        return result;
      }
      // Identical physical insertions (same point, same target block) are
      // tried once; contexts share code, so they produce the same program.
      if (!tried.insert({c.evictor, c.target_block}).second) continue;

      if (options.require_effectiveness &&
          c.slack < timing.prefetch_latency) {
        ++report.rejected_ineffective;
        continue;
      }
      if (!c.can_survive) {
        ++report.rejected_cannot_survive;
        continue;
      }

      // Tentative insertion: right after the displacing access. Because a
      // 4-byte insertion relocates all downstream code, its Δτ is highly
      // alignment-sensitive; when the bare insertion loses, retry with one
      // alignment nop (an 8-byte shift), the padding a real compiler/linker
      // uses to keep hot loop bodies within their cache blocks.
      ir::Program best_trial("unset");
      std::optional<analysis::IncrementalCacheAnalysis::TrialResult> best_t;
      std::int64_t profit = std::numeric_limits<std::int64_t>::min();
      ir::InstrId pf = ir::kInvalidInstr;
      for (int variant = 0; variant < 2; ++variant) {
        ir::Program trial = p;
        const ir::Program::InstrLocation loc = trial.locate(c.evictor);
        const ir::InstrId inserted =
            trial.insert(loc.block, loc.index + 1, make_prefetch(c.target));
        if (variant == 1) {
          ir::Instruction nop;
          nop.op = ir::Opcode::kNop;
          trial.insert(loc.block, loc.index + 2, nop);
        }
        ++report.candidates_evaluated;
        if (UCP_FAULT_POINT("core.reanalyze")) {
          degrade(ErrorCode::kAnalysisFailed,
                  "candidate re-analysis failed on '" + input.name() + "'");
          return result;
        }
        const auto reanalysis_start = std::chrono::steady_clock::now();
        std::uint64_t tau_trial = 0;
        std::optional<analysis::IncrementalCacheAnalysis::TrialResult> t;
        if (incr) {
          t = incr->analyze_trial(trial);
          ++report.incremental_reanalyses;
          tau_trial = tau_base_sum;
          for (std::size_t i = 0; i < t->affected.size(); ++i) {
            const analysis::NodeId v = t->affected[i];
            if (n_w[v] == 0) continue;
            tau_trial -= node_tau[v];
            tau_trial += node_contribution(t->cls[i], v);
          }
        } else {
          tau_trial = fixed_tau(graph, trial, config, timing, n_w,
                                options.fixpoint_mode);
          ++report.full_reanalyses;
        }
        report.reanalysis_ns += static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - reanalysis_start)
                .count());
        const auto delta = static_cast<std::int64_t>(tau_current) -
                           static_cast<std::int64_t>(tau_trial);
        if (delta > profit) {
          profit = delta;
          best_trial = std::move(trial);
          best_t = std::move(t);
          pf = inserted;
        }
        if (profit > 0 && variant == 0) break;  // bare insertion suffices
      }

      bool accept = false;
      switch (options.accept_rule) {
        case AcceptRule::kProfit:
          accept = profit > 0;
          break;
        case AcceptRule::kAnyNonIncrease:
          accept = profit >= 0;
          break;
        case AcceptRule::kAlways:
          accept = true;
          break;
      }
      if (!accept) {
        ++report.rejected_unprofitable;
        continue;
      }

      // Condition 3 (Section 2.3): the average case may not get slower.
      // Cheap here — candidates reaching this point are rare and the
      // concrete runs take microseconds.
      if (options.require_acet_non_increase) {
        const Expected<sim::RunMetrics> acet_before =
            sim::run_program_checked(p, config, timing);
        const Expected<sim::RunMetrics> acet_after =
            sim::run_program_checked(best_trial, config, timing);
        if (!acet_before.ok() || !acet_after.ok()) {
          // A run that blows its budget cannot prove Condition 3; reject
          // the candidate rather than the whole optimization.
          ++report.rejected_acet;
          continue;
        }
        if (acet_after->mem_cycles > acet_before->mem_cycles) {
          ++report.rejected_acet;
          continue;
        }
      }

      p = std::move(best_trial);
      if (incr) {
        // Fold the accepted trial into the base analysis and refresh the
        // affected nodes' τ contributions (the affected id list survives the
        // move — promote consumes only the state payloads).
        const std::vector<analysis::NodeId> accepted_nodes = best_t->affected;
        incr->promote(p, std::move(*best_t));
        for (analysis::NodeId v : accepted_nodes) {
          tau_base_sum -= node_tau[v];
          node_tau[v] = node_contribution(incr->result().per_node[v], v);
          tau_base_sum += node_tau[v];
        }
      }
      tau_current = static_cast<std::uint64_t>(
          static_cast<std::int64_t>(tau_current) - profit);
      accepted_any = true;
      PrefetchRecord record;
      record.prefetch_instr = pf;
      record.target_instr = c.target;
      record.block = p.locate(pf).block;
      record.profit_tau = profit;
      record.slack = c.slack;
      report.insertions.push_back(record);
    }

    if (!accepted_any) break;
  }

  report.tau_fixed_final = tau_current;

  // Final audit: fresh IPET on the optimized program. The frozen-counts
  // profit test matches the paper's Theorem 1 arithmetic; the audit guards
  // the remaining gap (the true WCET path may differ after insertion).
  {
    std::optional<CacheAnalysisResult> cls_scratch;
    if (!incr) {
      const ir::Layout layout(p, config.block_bytes);
      cls_scratch = analysis::analyze_cache(graph, p, layout, config,
                                            options.fixpoint_mode);
    }
    const CacheAnalysisResult& cls = incr ? incr->result() : *cls_scratch;
    const wcet::WcetResult wcet_final = ipet.solve(cls, timing);
    report.solver.add(wcet_final.stats);
    if (!wcet_final.ok()) {
      // The optimized program cannot be certified; ship the input instead.
      degrade(wcet::solve_error_code(wcet_final.status),
              "final IPET unsolved (" + ilp::status_name(wcet_final.status) +
                  ") on optimized '" + input.name() + "'");
      return result;
    }
    report.tau_optimized = wcet_final.tau_mem;
  }
  if (incr) report.nodes_reanalyzed = incr->nodes_reanalyzed();
  if (options.final_audit && report.tau_optimized > report.tau_original &&
      !report.insertions.empty()) {
    result.program = input;
    report.reverted = true;
    report.insertions.clear();
    report.tau_optimized = report.tau_original;
    report.tau_fixed_final = report.tau_original;
  }
  return result;
}

}  // namespace ucp::core
