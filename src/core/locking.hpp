#pragma once

#include <cstdint>
#include <vector>

#include "cache/config.hpp"
#include "ir/program.hpp"

namespace ucp::core {

/// Static instruction-cache locking baseline — the *other* school of
/// real-time cache management the paper argues against (Section 2.2-2.3).
/// The cache is pre-loaded with a fixed set of memory blocks at system
/// start and never changes afterwards: locked references always hit, every
/// other reference always misses. Perfectly predictable, but it trades
/// performance (and, as technology scales, energy) for that predictability
/// — the trade-off the paper's Figure 3 premise builds on and its
/// conclusions promise to quantify. `bench_locking_vs_prefetch` does.
struct LockingResult {
  /// Blocks chosen for lock-down (at most assoc per cache set).
  std::vector<cache::MemBlockId> locked;
  /// τ_w of the program under this lock-down.
  std::uint64_t tau_locked = 0;
  /// τ_w under pure on-demand fetching (for comparison).
  std::uint64_t tau_unlocked = 0;
  /// Greedy refinement rounds actually run.
  std::uint32_t rounds = 0;
};

/// Greedy WCET-driven content selection (Puaut/Decotigny style): rank
/// memory blocks by their miss contribution to τ_w under the current
/// selection, lock the top blocks per set, recompute the worst-case counts,
/// and repeat until the selection stabilizes (or `max_rounds`).
LockingResult optimize_locking(const ir::Program& program,
                               const cache::CacheConfig& config,
                               const cache::MemTiming& timing,
                               std::uint32_t max_rounds = 3);

/// τ_w of `program` when exactly `locked` is resident and the cache is
/// frozen (locked refs hit, everything else misses).
std::uint64_t locked_tau(const ir::Program& program,
                         const cache::CacheConfig& config,
                         const cache::MemTiming& timing,
                         const std::vector<cache::MemBlockId>& locked);

}  // namespace ucp::core
