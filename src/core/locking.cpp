#include "core/locking.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "analysis/cache_analysis.hpp"
#include "analysis/context_graph.hpp"
#include "ir/layout.hpp"
#include "support/check.hpp"
#include "wcet/ipet.hpp"

namespace ucp::core {

namespace {

/// Builds the frozen-cache classification: locked block -> always-hit,
/// anything else -> always-miss. The in/out abstract states are irrelevant
/// to IPET, so only per_node is populated.
analysis::CacheAnalysisResult frozen_classification(
    const analysis::ContextGraph& graph, const ir::Program& program,
    const ir::Layout& layout,
    const std::set<cache::MemBlockId>& locked) {
  analysis::CacheAnalysisResult cls;
  cls.per_node.resize(graph.num_nodes());
  for (analysis::NodeId v = 0; v < graph.num_nodes(); ++v) {
    const ir::BasicBlock& bb = program.block(graph.node(v).block);
    auto& out = cls.per_node[v];
    out.reserve(bb.instrs.size());
    for (const ir::Instruction& in : bb.instrs) {
      const bool hit = locked.count(layout.mem_block(in.id)) != 0;
      out.push_back(hit ? analysis::Classification::kAlwaysHit
                        : analysis::Classification::kAlwaysMiss);
    }
  }
  return cls;
}

/// τ_w of `program` with `locked` frozen in the cache, on a prebuilt IPET
/// system (the constraint matrix is selection-independent; only the
/// frozen-cache objective changes).
std::uint64_t locked_tau_on(const wcet::IpetSystem& ipet,
                            const ir::Program& program,
                            const ir::Layout& layout,
                            const cache::MemTiming& timing,
                            const std::set<cache::MemBlockId>& locked) {
  const analysis::CacheAnalysisResult cls =
      frozen_classification(ipet.graph(), program, layout, locked);
  const wcet::WcetResult w = ipet.solve(cls, timing);
  UCP_CHECK_MSG(w.ok(), "IPET failed under locking");
  return w.tau_mem;
}

}  // namespace

std::uint64_t locked_tau(const ir::Program& program,
                         const cache::CacheConfig& config,
                         const cache::MemTiming& timing,
                         const std::vector<cache::MemBlockId>& locked) {
  const ir::Layout layout(program, config.block_bytes);
  const analysis::ContextGraph graph(program);
  const wcet::IpetSystem ipet(graph);
  const std::set<cache::MemBlockId> locked_set(locked.begin(), locked.end());
  return locked_tau_on(ipet, program, layout, timing, locked_set);
}

LockingResult optimize_locking(const ir::Program& program,
                               const cache::CacheConfig& config,
                               const cache::MemTiming& timing,
                               std::uint32_t max_rounds) {
  config.validate();
  timing.validate();

  const ir::Layout layout(program, config.block_bytes);
  const analysis::ContextGraph graph(program);
  // One constraint system serves the unlocked reference, every selection
  // round, and the final locked τ — only the objective changes.
  const wcet::IpetSystem ipet(graph);

  LockingResult result;
  {
    // Reference point: ordinary unlocked analysis.
    const analysis::CacheAnalysisResult cls =
        analysis::analyze_cache(graph, layout, config);
    const wcet::WcetResult w = ipet.solve(cls, timing);
    UCP_CHECK_MSG(w.ok(), "IPET failed for unlocked reference");
    result.tau_unlocked = w.tau_mem;
  }

  std::set<cache::MemBlockId> locked;
  for (std::uint32_t round = 0; round < max_rounds; ++round) {
    ++result.rounds;
    // Worst-case counts under the current selection.
    const analysis::CacheAnalysisResult cls =
        frozen_classification(graph, program, layout, locked);
    const wcet::WcetResult w = ipet.solve(cls, timing);
    UCP_CHECK_MSG(w.ok(), "IPET failed during locking selection");

    // Weight of a block = the miss cycles it would save if locked, summed
    // over every reference to it in the worst-case scenario.
    std::map<cache::MemBlockId, std::uint64_t> weight;
    for (analysis::NodeId v = 0; v < graph.num_nodes(); ++v) {
      if (w.node_counts[v] == 0) continue;
      const ir::BasicBlock& bb = program.block(graph.node(v).block);
      for (const ir::Instruction& in : bb.instrs) {
        weight[layout.mem_block(in.id)] +=
            (timing.miss_cycles - timing.hit_cycles) * w.node_counts[v];
      }
    }

    // Greedy per-set selection: heaviest blocks first, at most assoc per
    // set.
    std::vector<std::pair<std::uint64_t, cache::MemBlockId>> ranked;
    ranked.reserve(weight.size());
    for (const auto& [block, wgt] : weight) ranked.push_back({wgt, block});
    std::sort(ranked.rbegin(), ranked.rend());

    std::set<cache::MemBlockId> next;
    std::map<std::uint32_t, std::uint32_t> used;  // set -> locked ways
    for (const auto& [wgt, block] : ranked) {
      auto& n = used[config.set_of(block)];
      if (n >= config.assoc) continue;
      ++n;
      next.insert(block);
    }
    if (next == locked) break;  // selection stabilized
    locked = std::move(next);
  }

  result.locked.assign(locked.begin(), locked.end());
  result.tau_locked = locked_tau_on(ipet, program, layout, timing, locked);
  return result;
}

}  // namespace ucp::core
