#pragma once

#include <cstdint>
#include <vector>

#include "analysis/cache_analysis.hpp"
#include "analysis/context_graph.hpp"
#include "ir/layout.hpp"
#include "wcet/ipet.hpp"

namespace ucp::core {

/// One reference (instruction fetch) on the worst-case execution path
/// through the acyclic VIVU graph — a vertex of the paper's ACFG restricted
/// to the WCET path, annotated with everything the joint improvement
/// criterion (Section 4.3) needs.
struct PathRef {
  analysis::NodeId node = analysis::kInvalidNode;
  std::uint32_t instr_index = 0;       ///< position within the basic block
  ir::InstrId instr = ir::kInvalidInstr;
  cache::MemBlockId block = 0;         ///< memory block this fetch references
  bool is_prefetch = false;
  std::uint32_t t_w = 0;               ///< per-execution worst-case cycles
  std::uint64_t n_w = 0;               ///< executions in the WCET scenario
  /// Path-state outcome of this fetch (exact LRU along the chosen path).
  bool path_miss = false;
  /// Index (into WcetPath::refs) of the access whose eviction displaced this
  /// reference's block — the paper's Property 3 output, i.e. where the
  /// reverse analysis inserts the prefetch. -1 for cold misses and hits.
  std::int32_t evictor = -1;
};

/// The WCET path as an explicit reference sequence. Joins are resolved the
/// way Algorithm 2 (J_SE) prescribes: at every flow split the edge carrying
/// the worst-case flow is followed, so the cache states tracked along the
/// sequence are the WCET-path states. REST loop instances appear once
/// (back edges are not traversed), exactly like the paper's acyclic ACFG.
struct WcetPath {
  std::vector<PathRef> refs;

  /// Sum of per-execution t_w of refs in positions (from, to) exclusive —
  /// the slack term of Definition 10 (prefetch effectiveness).
  std::uint64_t slack_between(std::size_t from, std::size_t to) const;
};

/// Walks the worst-case flow (node/edge counts of `wcet`) through `graph`,
/// tracking exact LRU states (Properties 1-3) to label every reference with
/// hit/miss and its evictor. Per-reference t_w comes from `classification`
/// and `timing`, so the same frozen counts can be replayed against modified
/// prefetch-equivalent programs during optimization.
WcetPath build_wcet_path(const analysis::ContextGraph& graph,
                         const ir::Program& program, const ir::Layout& layout,
                         const cache::CacheConfig& config,
                         const cache::MemTiming& timing,
                         const analysis::CacheAnalysisResult& classification,
                         const wcet::WcetResult& wcet);

}  // namespace ucp::core
