#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "cache/cache_sim.hpp"
#include "ir/layout.hpp"
#include "ir/program.hpp"
#include "support/status.hpp"

namespace ucp::sim {

/// Per-opcode execute stage cost in cycles (fetch cost comes from the cache).
std::uint32_t exec_cycles(ir::Opcode op);

/// Safety limits for a concrete run.
struct RunLimits {
  std::uint64_t max_steps = 100'000'000;  ///< dynamic instruction cap
  std::size_t data_words = 1u << 16;      ///< data memory size (words)
};

/// Results of one concrete execution. `mem_cycles` is the instruction-memory
/// service time — the paper's "memory contribution to the ACET". Energy is
/// computed downstream by `ucp_energy` from these counters.
struct RunMetrics {
  std::uint64_t instructions = 0;           ///< executed (Figure 8 numerator)
  std::uint64_t prefetch_instructions = 0;  ///< subset that were prefetches
  std::uint64_t total_cycles = 0;           ///< fetch + execute cycles
  std::uint64_t mem_cycles = 0;             ///< instruction-fetch cycles only
  cache::CacheStats cache;                  ///< final cache counters
};

/// Executes a program on the mini-ISA with a concrete instruction cache.
/// This is the trace-generation substrate standing in for the paper's gem5
/// runs: every instruction fetch goes through `CacheSim` at the address the
/// `Layout` assigned, so prefetch insertions change timing exactly as a real
/// binary relocation would.
///
/// The interpreter also *validates flow facts*: if any loop header executes
/// more times per loop entry than its declared bound, the run throws — a
/// wrong bound would silently invalidate the WCET analysis otherwise.
class Interpreter {
 public:
  using TraceHook = std::function<void(const ir::Instruction&,
                                       std::uint32_t address,
                                       const cache::FetchResult&)>;

  Interpreter(const ir::Program& program, const ir::Layout& layout,
              cache::CacheSim& cache, RunLimits limits = {});

  /// Runs from the entry block to halt and returns the metrics. Resource
  /// and flow-fact violations throw InvalidArgument (legacy channel).
  RunMetrics run();

  /// Budget-aware variant: a run that exhausts the dynamic instruction
  /// budget returns kStepBudgetExhausted (within `limits.max_steps` steps —
  /// a malformed program can never hang the pipeline), and a contradicted
  /// loop bound returns kLoopBoundViolated, instead of throwing. Genuine
  /// program errors (division by zero, data out of bounds) still throw.
  Expected<RunMetrics> try_run();

  void set_trace_hook(TraceHook hook) { trace_ = std::move(hook); }

  /// Register and data-memory state after (or during) a run, for test
  /// assertions on kernel results.
  std::int64_t reg(std::uint8_t index) const;
  const std::vector<std::int64_t>& data() const { return data_; }

 private:
  std::int64_t& reg_ref(std::uint8_t index);
  std::int64_t data_at(std::int64_t address) const;
  void data_set(std::int64_t address, std::int64_t value);
  /// Executes one non-terminator instruction; returns execute cycles.
  std::uint32_t execute(const ir::Instruction& in, std::uint64_t now);

  const ir::Program& program_;
  const ir::Layout& layout_;
  cache::CacheSim& cache_;
  RunLimits limits_;
  TraceHook trace_;

  std::vector<std::int64_t> regs_;
  std::vector<std::int64_t> data_;

  // Flow-fact validation state.
  struct LoopCheck {
    ir::BlockId header;
    std::uint32_t bound;
    std::vector<bool> member;  // indexed by BlockId
    std::uint32_t count = 0;
  };
  std::vector<LoopCheck> loop_checks_;      // by loop
  std::vector<std::int32_t> header_index_;  // BlockId -> loop_checks_ index
};

/// Convenience wrapper: lay out, build a cache, run, return metrics.
RunMetrics run_program(const ir::Program& program,
                       const cache::CacheConfig& config,
                       const cache::MemTiming& timing, RunLimits limits = {});

/// Budget-aware convenience wrapper over Interpreter::try_run.
Expected<RunMetrics> run_program_checked(const ir::Program& program,
                                         const cache::CacheConfig& config,
                                         const cache::MemTiming& timing,
                                         RunLimits limits = {});

}  // namespace ucp::sim
