#include "sim/interpreter.hpp"

#include "ir/dominators.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/cancellation.hpp"
#include "support/check.hpp"
#include "support/checked.hpp"
#include "support/fault_injection.hpp"

namespace ucp::sim {

std::uint32_t exec_cycles(ir::Opcode op) {
  using ir::Opcode;
  switch (op) {
    case Opcode::kMul:
      return 3;
    case Opcode::kDiv:
    case Opcode::kRem:
      return 12;
    case Opcode::kLoad:
    case Opcode::kStore:
      return 2;  // data scratchpad; the I-cache is the paper's only target
    default:
      return 1;
  }
}

Interpreter::Interpreter(const ir::Program& program, const ir::Layout& layout,
                         cache::CacheSim& cache, RunLimits limits)
    : program_(program),
      layout_(layout),
      cache_(cache),
      limits_(limits),
      regs_(ir::kNumRegs, 0) {
  const auto& init = program_.data();
  UCP_REQUIRE(init.size() <= limits_.data_words,
              "initial data image exceeds the data memory size");
  data_ = init;
  data_.resize(limits_.data_words, 0);

  header_index_.assign(program_.num_blocks(), -1);
  for (const ir::NaturalLoop& loop : ir::find_natural_loops(program_)) {
    LoopCheck check;
    check.header = loop.header;
    check.bound = program_.loop_bound(loop.header);
    check.member.assign(program_.num_blocks(), false);
    for (ir::BlockId b : loop.blocks) check.member[b] = true;
    header_index_[loop.header] = static_cast<std::int32_t>(loop_checks_.size());
    loop_checks_.push_back(std::move(check));
  }
}

std::int64_t Interpreter::reg(std::uint8_t index) const {
  UCP_REQUIRE(index < ir::kNumRegs, "register index out of range");
  return regs_[index];
}

std::int64_t& Interpreter::reg_ref(std::uint8_t index) {
  UCP_CHECK(index < ir::kNumRegs);
  return regs_[index];
}

std::int64_t Interpreter::data_at(std::int64_t address) const {
  UCP_REQUIRE(address >= 0 &&
                  address < static_cast<std::int64_t>(data_.size()),
              "data load out of bounds");
  return data_[static_cast<std::size_t>(address)];
}

void Interpreter::data_set(std::int64_t address, std::int64_t value) {
  UCP_REQUIRE(address >= 0 &&
                  address < static_cast<std::int64_t>(data_.size()),
              "data store out of bounds");
  data_[static_cast<std::size_t>(address)] = value;
}

std::uint32_t Interpreter::execute(const ir::Instruction& in,
                                   std::uint64_t now) {
  using ir::Opcode;
  switch (in.op) {
    case Opcode::kMovImm:
      reg_ref(in.rd) = in.imm;
      break;
    case Opcode::kMov:
      reg_ref(in.rd) = regs_[in.rs1];
      break;
    case Opcode::kAdd:
      reg_ref(in.rd) = regs_[in.rs1] + regs_[in.rs2];
      break;
    case Opcode::kAddImm:
      reg_ref(in.rd) = regs_[in.rs1] + in.imm;
      break;
    case Opcode::kSub:
      reg_ref(in.rd) = regs_[in.rs1] - regs_[in.rs2];
      break;
    case Opcode::kMul:
      reg_ref(in.rd) = regs_[in.rs1] * regs_[in.rs2];
      break;
    case Opcode::kDiv:
      UCP_REQUIRE(regs_[in.rs2] != 0, "division by zero");
      reg_ref(in.rd) = regs_[in.rs1] / regs_[in.rs2];
      break;
    case Opcode::kRem:
      UCP_REQUIRE(regs_[in.rs2] != 0, "remainder by zero");
      reg_ref(in.rd) = regs_[in.rs1] % regs_[in.rs2];
      break;
    case Opcode::kAnd:
      reg_ref(in.rd) = regs_[in.rs1] & regs_[in.rs2];
      break;
    case Opcode::kOr:
      reg_ref(in.rd) = regs_[in.rs1] | regs_[in.rs2];
      break;
    case Opcode::kXor:
      reg_ref(in.rd) = regs_[in.rs1] ^ regs_[in.rs2];
      break;
    case Opcode::kShl:
      reg_ref(in.rd) = regs_[in.rs1] << (regs_[in.rs2] & 63);
      break;
    case Opcode::kShr:
      reg_ref(in.rd) = static_cast<std::int64_t>(
          static_cast<std::uint64_t>(regs_[in.rs1]) >> (regs_[in.rs2] & 63));
      break;
    case Opcode::kSar:
      reg_ref(in.rd) = regs_[in.rs1] >> (regs_[in.rs2] & 63);
      break;
    case Opcode::kLoad:
      reg_ref(in.rd) = data_at(regs_[in.rs1] + in.imm);
      break;
    case Opcode::kStore:
      data_set(regs_[in.rs1] + in.imm, regs_[in.rs2]);
      break;
    case Opcode::kPrefetch:
      cache_.prefetch(layout_.mem_block(in.pf_target), now);
      break;
    case Opcode::kNop:
    case Opcode::kBranch:
    case Opcode::kBranchImm:
    case Opcode::kJump:
    case Opcode::kHalt:
      break;
  }
  return exec_cycles(in.op);
}

RunMetrics Interpreter::run() {
  Expected<RunMetrics> result = try_run();
  if (!result.ok()) throw InvalidArgument(result.status().message());
  return std::move(result).value();
}

Expected<RunMetrics> Interpreter::try_run() {
  obs::Span span("sim.interp.run");
  RunMetrics metrics;
  std::uint64_t now = 0;

  // One registry publish per run on any exit (the interpreter's per-
  // instruction loop must stay free of shared atomics).
  struct RunPublisher {
    const RunMetrics& metrics;
    ~RunPublisher() {
      if (!obs::enabled()) return;
      static obs::Counter& c_runs = obs::registry().counter("sim.interp.runs");
      static obs::Counter& c_instr =
          obs::registry().counter("sim.interp.instructions");
      static obs::Counter& c_mem =
          obs::registry().counter("sim.interp.mem_cycles");
      static obs::Counter& c_pf =
          obs::registry().counter("sim.interp.prefetch_instructions");
      c_runs.increment();
      c_instr.add(metrics.instructions);
      c_mem.add(metrics.mem_cycles);
      c_pf.add(metrics.prefetch_instructions);
    }
  } publisher{metrics};

  ir::BlockId current = program_.entry();
  ir::BlockId previous = ir::kInvalidBlock;

  for (;;) {
    // Flow-fact validation at loop headers.
    if (header_index_[current] >= 0) {
      LoopCheck& check = loop_checks_[static_cast<std::size_t>(
          header_index_[current])];
      const bool from_inside =
          previous != ir::kInvalidBlock && check.member[previous];
      check.count = from_inside ? check.count + 1 : 1;
      if (check.count > check.bound) {
        return Status(ErrorCode::kLoopBoundViolated,
                      "loop bound violated at header bb" +
                          std::to_string(current) + " of program '" +
                          program_.name() + "'");
      }
    }

    const ir::BasicBlock& bb = program_.block(current);
    bool halted = false;
    ir::BlockId next = ir::kInvalidBlock;

    for (const ir::Instruction& in : bb.instrs) {
      if (metrics.instructions >= limits_.max_steps ||
          UCP_FAULT_POINT("sim.step")) {
        return Status(ErrorCode::kStepBudgetExhausted,
                      "dynamic instruction budget (" +
                          std::to_string(limits_.max_steps) +
                          ") exhausted in program '" + program_.name() +
                          "' (missing halt?)");
      }
      // Watchdog poll on the Status channel (every 4096 instructions): a
      // cancelled run returns cleanly instead of burning its step budget.
      if ((metrics.instructions & 0xFFF) == 0 && cancellation_requested()) {
        return Status(ErrorCode::kCancelled,
                      "simulation of '" + program_.name() +
                          "' cancelled by the supervisor");
      }
      const std::uint32_t address = layout_.address(in.id);
      const cache::FetchResult fetch =
          cache_.fetch(layout_.block_of_address(address), now);
      now = checked_add(now, fetch.cycles, "sim cycle clock");
      metrics.mem_cycles =
          checked_add(metrics.mem_cycles, fetch.cycles, "sim mem cycles");
      if (trace_) trace_(in, address, fetch);

      now = checked_add(now, execute(in, now), "sim cycle clock");
      ++metrics.instructions;
      if (in.op == ir::Opcode::kPrefetch) ++metrics.prefetch_instructions;

      switch (in.op) {
        case ir::Opcode::kBranch:
          next = ir::eval_cond(in.cond, regs_[in.rs1], regs_[in.rs2])
                     ? bb.succs[0]
                     : bb.succs[1];
          break;
        case ir::Opcode::kBranchImm:
          next = ir::eval_cond(in.cond, regs_[in.rs1], in.imm) ? bb.succs[0]
                                                               : bb.succs[1];
          break;
        case ir::Opcode::kJump:
          next = bb.succs[0];
          break;
        case ir::Opcode::kHalt:
          halted = true;
          break;
        default:
          break;
      }
    }

    if (halted) break;
    if (next == ir::kInvalidBlock) {
      UCP_CHECK_MSG(bb.succs.size() == 1, "fallthrough without successor");
      next = bb.succs[0];
    }
    previous = current;
    current = next;
  }

  metrics.total_cycles = now;
  metrics.cache = cache_.stats();
  return metrics;
}

RunMetrics run_program(const ir::Program& program,
                       const cache::CacheConfig& config,
                       const cache::MemTiming& timing, RunLimits limits) {
  const ir::Layout layout(program, config.block_bytes);
  cache::CacheSim cache(config, timing);
  Interpreter interp(program, layout, cache, limits);
  return interp.run();
}

Expected<RunMetrics> run_program_checked(const ir::Program& program,
                                         const cache::CacheConfig& config,
                                         const cache::MemTiming& timing,
                                         RunLimits limits) {
  const ir::Layout layout(program, config.block_bytes);
  cache::CacheSim cache(config, timing);
  Interpreter interp(program, layout, cache, limits);
  return interp.try_run();
}

}  // namespace ucp::sim
