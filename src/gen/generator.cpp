#include "gen/generator.hpp"

#include <sstream>
#include <vector>

#include "ir/builder.hpp"
#include "ir/verify.hpp"
#include "support/check.hpp"
#include "support/fault_injection.hpp"

namespace ucp::gen {

namespace {

using ir::Cond;
using ir::IrBuilder;
using ir::R;
using ir::Reg;

// Fixed register roles. Scratch registers are re-masked to 16 bits after
// every write, so all arithmetic stays far from signed-overflow territory
// (|a*b| < 2^32, |a-b| <= 0xffff) and every masked value is a valid
// non-negative data index once ANDed with the working-set mask.
constexpr std::uint8_t kScratchFirst = 1, kScratchCount = 6;
constexpr Reg kAccum = Reg{7};    // running checksum, stored to data[0]
constexpr Reg kAddr = Reg{8};     // masked data address
constexpr Reg kTmp = Reg{13};     // shift amounts, stride constants
constexpr Reg kWsMask = Reg{10};  // working_set_words - 1
constexpr Reg kMask16 = Reg{12};  // 0xffff
constexpr std::uint8_t kCounterFirst = 16;  // one per loop depth
constexpr std::uint8_t kLimitFirst = 24;    // data-dependent loop limits

constexpr std::int64_t kValueMask = 0xffff;

Cond random_cond(Rng& rng) {
  return static_cast<Cond>(rng.next_below(6));
}

/// Recursive-descent emitter. `blocks_` is an estimate of CFG size (the
/// builder does not expose a live block count); costs below match what each
/// combinator lowers to closely enough to steer toward target_blocks.
class Emitter {
 public:
  Emitter(IrBuilder& b, Rng& rng, const GenKnobs& k) : b_(b), rng_(rng), k_(k) {}

  void run() {
    b_.movi(kMask16, kValueMask);
    b_.movi(kWsMask, static_cast<std::int64_t>(k_.working_set_words) - 1);
    b_.movi(kAccum, 0);
    for (std::uint8_t i = 0; i < kScratchCount; ++i)
      b_.movi(R(kScratchFirst + i), rng_.next_in(0, kValueMask));

    // A region may roll pure straight-line; retry a few times before
    // concluding that no control flow fits the remaining budget, so an
    // unlucky first roll cannot flatten the whole program.
    std::uint32_t stalls = 0;
    while (blocks_ < k_.target_blocks && stalls < 8) {
      const std::uint32_t before = blocks_;
      region(k_.target_blocks - blocks_);
      stalls = blocks_ == before ? stalls + 1 : 0;
    }
    // Fold the scratch state into the checksum so no emitted op is dead.
    for (std::uint8_t i = 0; i < kScratchCount; ++i) {
      b_.xor_(kAccum, kAccum, R(kScratchFirst + i));
    }
    b_.movi(kAddr, 0);
    b_.store(kAddr, 0, kAccum);
    b_.halt();
  }

 private:
  Reg scratch() { return R(kScratchFirst + rng_.next_below(kScratchCount)); }

  void normalize(Reg rd) { b_.and_(rd, rd, kMask16); }

  /// One random UBSan-safe straight-line operation.
  void statement() {
    const Reg rd = scratch();
    switch (rng_.next_below(10)) {
      case 0:
        b_.add(rd, scratch(), scratch());
        normalize(rd);
        break;
      case 1:
        b_.sub(rd, scratch(), scratch());
        normalize(rd);
        break;
      case 2:
        b_.mul(rd, scratch(), scratch());
        normalize(rd);
        break;
      case 3:
        b_.xor_(rd, scratch(), scratch());
        break;
      case 4:
        b_.or_(rd, scratch(), scratch());
        break;
      case 5:
        b_.movi(kTmp, rng_.next_in(0, 7));
        b_.shl(rd, scratch(), kTmp);
        normalize(rd);
        break;
      case 6:
        b_.movi(rd, rng_.next_in(0, kValueMask));
        break;
      case 7: {  // strided or conflict-mapped load
        emit_address();
        b_.load(rd, kAddr, 0);
        normalize(rd);
        break;
      }
      case 8: {  // store a masked value back into the working set
        emit_address();
        b_.store(kAddr, 0, scratch());
        break;
      }
      default:
        b_.add(kAccum, kAccum, scratch());
        normalize(kAccum);
        break;
    }
  }

  /// Leaves a valid data index in kAddr. Three access shapes: random-value
  /// indexed (hash-like), strided off the innermost counter, and a fixed
  /// hot index (conflict pressure on one set).
  void emit_address() {
    switch (rng_.next_below(3)) {
      case 0:
        b_.and_(kAddr, scratch(), kWsMask);
        break;
      case 1:
        if (depth_ > 0) {
          b_.movi(kTmp, static_cast<std::int64_t>(k_.stride_words));
          b_.mul(kAddr, R(kCounterFirst + depth_ - 1), kTmp);
          b_.and_(kAddr, kAddr, kWsMask);
        } else {
          b_.and_(kAddr, scratch(), kWsMask);
        }
        break;
      default:
        b_.movi(kAddr, rng_.next_below(k_.working_set_words));
        break;
    }
  }

  void straight_line() {
    const std::size_t n = 1 + rng_.next_below(k_.straight_line_pad);
    for (std::size_t i = 0; i < n; ++i) statement();
  }

  /// Largest loop bound (>= 1) that keeps the dynamic weight under the cap.
  std::uint32_t fit_bound(std::uint32_t want) const {
    const std::uint64_t room = k_.max_dynamic_weight / weight_;
    if (room <= 1) return 1;
    return static_cast<std::uint32_t>(
        std::min<std::uint64_t>(want, room));
  }

  void region(std::uint32_t budget) {
    straight_line();
    if (budget < 2) return;

    const bool can_loop = depth_ < k_.max_loop_depth && budget >= 3 &&
                          fit_bound(k_.max_loop_bound) >= 2;
    const double roll = rng_.next_double();
    if (can_loop && roll < 0.35) {
      loop(budget);
    } else if (roll < 0.35 + k_.branch_density) {
      if (k_.allow_switch && budget >= 7 && rng_.next_bool(0.25)) {
        switch_region(budget);
      } else {
        conditional(budget);
      }
    }
    // else: this region stays straight-line.
  }

  void conditional(std::uint32_t budget) {
    const Cond c = random_cond(rng_);
    const Reg a = scratch(), b = scratch();
    if (budget >= 4 && rng_.next_bool(0.5)) {
      blocks_ += 3;
      const std::uint32_t inner = (budget - 3) / 2;
      b_.if_then_else(
          c, a, b, [&] { region(inner); }, [&] { region(inner); });
    } else {
      blocks_ += 2;
      b_.if_then(c, a, b, [&] { region(budget - 2); });
    }
  }

  void switch_region(std::uint32_t budget) {
    const Reg sel = scratch();
    const std::size_t ncases = 2 + rng_.next_below(2);
    blocks_ += static_cast<std::uint32_t>(2 * ncases + 1);
    const std::uint32_t inner =
        (budget - static_cast<std::uint32_t>(2 * ncases + 1)) /
        static_cast<std::uint32_t>(ncases + 1);
    std::vector<std::pair<std::int64_t, IrBuilder::Body>> cases;
    for (std::size_t i = 0; i < ncases; ++i) {
      cases.emplace_back(rng_.next_in(0, kValueMask),
                         [this, inner] { region(inner); });
    }
    b_.switch_on(sel, cases, [this, inner] { region(inner); });
  }

  void loop(std::uint32_t budget) {
    const std::uint32_t bound =
        fit_bound(2 + static_cast<std::uint32_t>(
                          rng_.next_below(k_.max_loop_bound - 1)));
    const Reg counter = R(kCounterFirst + depth_);
    const std::uint64_t saved_weight = weight_;
    weight_ *= bound;
    ++depth_;
    blocks_ += 3;

    if (k_.allow_data_dependent_loops && rng_.next_bool(0.3)) {
      // Data-dependent trip count: limit = data[addr] masked below `bound`,
      // so the concrete run takes fewer iterations than the declared bound
      // (exercises FIRST/REST context splits and early-exit paths) while
      // the bound stays sound by construction.
      const Reg limit = R(kLimitFirst + depth_ - 1);
      std::uint32_t mask_pow2 = 1;
      while (mask_pow2 * 2 <= bound) mask_pow2 *= 2;
      emit_address();
      b_.load(limit, kAddr, 0);
      b_.movi(kTmp, static_cast<std::int64_t>(mask_pow2) - 1);
      b_.and_(limit, limit, kTmp);
      b_.for_range_reg(counter, 0, limit, bound,
                       [&] { region(budget - 3); });
    } else {
      b_.for_range(counter, 0, bound, [&] { region(budget - 3); });
    }
    --depth_;
    weight_ = saved_weight;
  }

  IrBuilder& b_;
  Rng& rng_;
  const GenKnobs& k_;
  std::uint32_t blocks_ = 1;
  std::uint32_t depth_ = 0;
  std::uint64_t weight_ = 1;
};

}  // namespace

std::string GenKnobs::to_string() const {
  std::ostringstream os;
  os << "blocks=" << target_blocks << " depth=" << max_loop_depth
     << " bound=" << max_loop_bound << " weight=" << max_dynamic_weight
     << " branch=" << branch_density << " ws=" << working_set_words
     << " stride=" << stride_words << " switch=" << (allow_switch ? 1 : 0)
     << " ddl=" << (allow_data_dependent_loops ? 1 : 0)
     << " pad=" << straight_line_pad;
  return os.str();
}

GenKnobs sample_knobs(Rng& rng) {
  GenKnobs k;
  k.target_blocks = static_cast<std::uint32_t>(rng.next_in(8, 40));
  k.max_loop_depth = static_cast<std::uint32_t>(rng.next_in(1, 3));
  k.max_loop_bound = static_cast<std::uint32_t>(rng.next_in(2, 16));
  k.max_dynamic_weight = static_cast<std::uint32_t>(rng.next_in(512, 8192));
  k.branch_density = 0.2 + 0.5 * rng.next_double();
  k.working_set_words = std::uint32_t{64} << rng.next_below(5);  // 64..1024
  k.stride_words = static_cast<std::uint32_t>(rng.next_in(1, 8));
  k.allow_switch = rng.next_bool(0.7);
  k.allow_data_dependent_loops = rng.next_bool(0.7);
  k.straight_line_pad = static_cast<std::size_t>(rng.next_in(2, 10));
  return k;
}

ir::Program generate_program(std::uint64_t seed, const GenKnobs& knobs) {
  UCP_REQUIRE(knobs.working_set_words > 0 &&
                  (knobs.working_set_words &
                   (knobs.working_set_words - 1)) == 0,
              "generate_program: working_set_words must be a power of two");
  UCP_REQUIRE(knobs.max_loop_bound >= 2,
              "generate_program: max_loop_bound must be >= 2");

  std::ostringstream name;
  name << "gen_" << std::hex << seed;
  IrBuilder b(name.str());
  Rng rng(seed);

  Emitter emitter(b, rng, knobs);
  emitter.run();

  std::vector<std::int64_t> data(knobs.working_set_words);
  for (auto& w : data) w = rng.next_in(0, kValueMask);
  b.set_data(std::move(data));

  if (UCP_FAULT_POINT("gen.build"))
    throw InvalidArgument("fault injected at gen.build");

  ir::Program program = b.take();  // runs verify_or_throw
  // Belt-and-braces: a generator bug that slips a malformed program past
  // the builder must surface here, as a diagnosable issue list, not
  // downstream inside an analysis.
  const auto issues = ir::verify_issues(program);
  if (!issues.empty()) {
    std::ostringstream os;
    os << "generated program failed verification:";
    for (const auto& issue : issues) os << "\n  - " << issue.message;
    throw InvalidArgument(os.str());
  }
  return program;
}

}  // namespace ucp::gen
