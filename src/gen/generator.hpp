#pragma once

#include <cstdint>
#include <string>

#include "ir/program.hpp"
#include "support/rng.hpp"

namespace ucp::gen {

/// Structural knobs for the synthetic-program generator. Every knob bounds a
/// dimension the cache/WCET pipeline is sensitive to: CFG size (analysis
/// scaling), loop nesting (VIVU context explosion), branching (join-point
/// precision loss), working-set size and access stride (capacity/conflict
/// misses in the modelled data-independent instruction cache come from code
/// footprint, so block count also controls I-cache pressure).
struct GenKnobs {
  std::uint32_t target_blocks = 24;   ///< approximate CFG size to aim for
  std::uint32_t max_loop_depth = 2;   ///< nesting cap (VIVU contexts grow fast)
  std::uint32_t max_loop_bound = 12;  ///< per-loop trip-count cap
  /// Cap on the product of enclosing loop bounds at any point, which bounds
  /// dynamic instruction count and keeps simulation within its step budget.
  std::uint32_t max_dynamic_weight = 4096;
  double branch_density = 0.45;       ///< P(region is a conditional)
  std::uint32_t working_set_words = 256;  ///< data image size (power of two)
  std::uint32_t stride_words = 3;     ///< stride for strided access patterns
  bool allow_switch = true;           ///< emit compare-cascade dispatches
  bool allow_data_dependent_loops = true;  ///< emit for_range_reg loops
  std::size_t straight_line_pad = 6;  ///< max filler ops per straight segment

  std::string to_string() const;
};

/// Samples a random-but-plausible knob assignment for one campaign case.
/// Working-set sizes stay powers of two (address masking relies on it).
GenKnobs sample_knobs(Rng& rng);

/// Generates a deterministic synthetic program from `seed` + `knobs`.
/// The output is built through IrBuilder's structured combinators, so it is
/// reducible, every loop carries a bound, and execution is UBSan-clean by
/// construction (values re-masked to 16 bits after arithmetic; data
/// addresses masked to the power-of-two working set; no div/rem; constant
/// shift amounts). The result is re-checked with `ir::verify` before being
/// returned; a verifier rejection (or an armed `gen.build` fault) throws
/// InvalidArgument.
ir::Program generate_program(std::uint64_t seed, const GenKnobs& knobs);

}  // namespace ucp::gen
