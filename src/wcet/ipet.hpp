#pragma once

#include <cstdint>
#include <vector>

#include "analysis/cache_analysis.hpp"
#include "analysis/context_graph.hpp"
#include "cache/config.hpp"
#include "ilp/model.hpp"
#include "ilp/presolve.hpp"
#include "ilp/sparse.hpp"
#include "support/status.hpp"

namespace ucp::wcet {

/// Maps a solver outcome onto the pipeline-wide error channel, so IPET
/// budget exhaustion (max_pivots / max_bb_nodes) propagates as a Status the
/// harness can quarantine on instead of an UCP_CHECK abort.
ErrorCode solve_error_code(ilp::SolveStatus status);

/// Per-reference worst-case memory timing: t_w(r) of Section 3.3, derived
/// from the cache classification (always-hit pays hit time; anything else
/// conservatively pays miss time).
std::uint32_t ref_cycles(analysis::Classification cls,
                         const cache::MemTiming& timing);

/// Result of the IPET analysis over a VIVU context graph.
struct WcetResult {
  ilp::SolveStatus status = ilp::SolveStatus::kInfeasible;
  /// τ_w: the memory system's contribution to the WCET, in cycles (Eq. 3).
  std::uint64_t tau_mem = 0;
  /// n_w per context node: executions of each block instance in the WCET
  /// scenario (zero off the worst-case path).
  std::vector<std::uint64_t> node_counts;
  /// t_w per (node, instruction): worst-case fetch cycles of one execution.
  std::vector<std::vector<std::uint32_t>> ref_cycles;
  /// Worst-case flow per context edge (same indexing as graph.edges()).
  std::vector<std::uint64_t> edge_counts;
  /// Solver work behind this result (pivots, B&B nodes, warm starts).
  ilp::SolveStats stats;

  bool ok() const { return status == ilp::SolveStatus::kOptimal; }

  /// τ_w(r) for one reference: t_w * n_w of its node (Eq. 2).
  std::uint64_t tau_of(analysis::NodeId node, std::size_t instr_index) const {
    return static_cast<std::uint64_t>(ref_cycles[node][instr_index]) *
           node_counts[node];
  }
};

/// The IPET ILP of one context graph, built once and re-solved many times.
///
/// The constraint matrix (flow conservation, VIVU loop bounds,
/// anti-circulation) depends only on the graph topology; the cache
/// classification and memory timing enter purely through the objective
/// coefficients. An IpetSystem therefore factors the expensive part — the
/// sparse LP snapshot including its one-time phase 1 — out of the per-solve
/// cost: the optimizer's initial and final solves, the locking baselines,
/// and all cache configurations of one program swap objective vectors over
/// the same canonical basis. Solves clone that immutable snapshot, so a
/// const IpetSystem is safe to share across sweep worker threads and its
/// answers never depend on which caller solved first.
/// Construction options for IpetSystem.
struct IpetOptions {
  /// Run the exact ILP presolve (ilp::Presolve, DESIGN.md §14) on the
  /// constraint system before snapshotting the sparse LP. Every reduction
  /// is objective-independent and exact, so solves return the same optimal
  /// objective either way; off is the legacy path, kept as the
  /// differential oracle for the equivalence suite.
  bool presolve = true;
};

class IpetSystem {
 public:
  explicit IpetSystem(const analysis::ContextGraph& graph,
                      const IpetOptions& options = {});

  const analysis::ContextGraph& graph() const { return *graph_; }

  /// Solves max Σ t_w(bb)·n_bb for this classification/timing pair.
  /// Bit-identical to `compute_wcet` on the same graph.
  WcetResult solve(const analysis::CacheAnalysisResult& classification,
                   const cache::MemTiming& timing) const;

  /// A standalone copy of the ILP with the objective for
  /// (classification, timing) installed — what `compute_wcet` historically
  /// built per call. Feed it to the dense reference solver in differential
  /// tests, or to the one-shot `ilp::solve_ilp` in micro benches.
  ilp::Model model_with_objective(
      const analysis::CacheAnalysisResult& classification,
      const cache::MemTiming& timing) const;

  /// Pivots spent building the canonical feasible basis (one-time phase 1);
  /// not part of any per-solve stats.
  std::uint64_t construction_pivots() const {
    return lp_.construction_pivots();
  }

  /// The engaged presolve, or nullptr when construction disabled it (or it
  /// found nothing to remove). Diagnostics and micro-benches only.
  const ilp::Presolve* presolve() const {
    return presolve_ ? &*presolve_ : nullptr;
  }

  /// Dimensions of the system the simplex actually factorizes (post-presolve
  /// when engaged) — the scaling bench reports the reduction.
  std::size_t lp_rows() const { return lp_.num_rows(); }
  std::size_t lp_cols() const { return lp_.num_structural(); }

  /// Folds the one-time construction cost into an aggregate: adds the
  /// construction pivots and retracts one phase1_skipped credit (the first
  /// solve skipped its phase 1 only because construction paid for it).
  /// Call exactly once per IpetSystem when summing end-to-end solver work.
  void charge_construction(ilp::SolveStats& stats) const {
    stats.pivots += lp_.construction_pivots();
    if (stats.phase1_skipped > 0) --stats.phase1_skipped;
  }

 private:
  static ilp::Model build_model(const analysis::ContextGraph& graph);

  const analysis::ContextGraph* graph_;
  ilp::Model model_;  ///< constraints + bounds; objective left empty
  ilp::VarId source_var_ = 0;
  /// Engaged iff options.presolve and the reduction removed something; the
  /// sparse snapshot below is then built over reduced() instead of model_.
  std::optional<ilp::Presolve> presolve_;
  ilp::SparseLp lp_;
};

/// Builds and solves the IPET ILP (Section 3.2-3.3): one flow variable per
/// context edge plus virtual source/sink arcs, flow conservation at every
/// node, `n(rest header) <= (bound-1) * n(first header)` per VIVU loop
/// instance, maximizing Σ t_w(bb)·n_bb. One-shot convenience over
/// IpetSystem; repeated solves on one graph should share an IpetSystem.
WcetResult compute_wcet(const analysis::ContextGraph& graph,
                        const analysis::CacheAnalysisResult& classification,
                        const cache::MemTiming& timing);

/// Recomputes τ_w for (possibly different) per-reference timings while
/// *holding the worst-case counts fixed* — the quantity the optimizer's
/// profit criterion compares (the paper's Theorem 1 argument fixes n_w).
std::uint64_t tau_with_fixed_counts(
    const analysis::ContextGraph& graph,
    const analysis::CacheAnalysisResult& classification,
    const cache::MemTiming& timing, const std::vector<std::uint64_t>& counts);

}  // namespace ucp::wcet
