#pragma once

#include <cstdint>
#include <vector>

#include "analysis/cache_analysis.hpp"
#include "analysis/context_graph.hpp"
#include "cache/config.hpp"
#include "ilp/model.hpp"
#include "support/status.hpp"

namespace ucp::wcet {

/// Maps a solver outcome onto the pipeline-wide error channel, so IPET
/// budget exhaustion (max_pivots / max_bb_nodes) propagates as a Status the
/// harness can quarantine on instead of an UCP_CHECK abort.
ErrorCode solve_error_code(ilp::SolveStatus status);

/// Per-reference worst-case memory timing: t_w(r) of Section 3.3, derived
/// from the cache classification (always-hit pays hit time; anything else
/// conservatively pays miss time).
std::uint32_t ref_cycles(analysis::Classification cls,
                         const cache::MemTiming& timing);

/// Result of the IPET analysis over a VIVU context graph.
struct WcetResult {
  ilp::SolveStatus status = ilp::SolveStatus::kInfeasible;
  /// τ_w: the memory system's contribution to the WCET, in cycles (Eq. 3).
  std::uint64_t tau_mem = 0;
  /// n_w per context node: executions of each block instance in the WCET
  /// scenario (zero off the worst-case path).
  std::vector<std::uint64_t> node_counts;
  /// t_w per (node, instruction): worst-case fetch cycles of one execution.
  std::vector<std::vector<std::uint32_t>> ref_cycles;
  /// Worst-case flow per context edge (same indexing as graph.edges()).
  std::vector<std::uint64_t> edge_counts;

  bool ok() const { return status == ilp::SolveStatus::kOptimal; }

  /// τ_w(r) for one reference: t_w * n_w of its node (Eq. 2).
  std::uint64_t tau_of(analysis::NodeId node, std::size_t instr_index) const {
    return static_cast<std::uint64_t>(ref_cycles[node][instr_index]) *
           node_counts[node];
  }
};

/// Builds and solves the IPET ILP (Section 3.2-3.3): one flow variable per
/// context edge plus virtual source/sink arcs, flow conservation at every
/// node, `n(rest header) <= (bound-1) * n(first header)` per VIVU loop
/// instance, maximizing Σ t_w(bb)·n_bb.
WcetResult compute_wcet(const analysis::ContextGraph& graph,
                        const analysis::CacheAnalysisResult& classification,
                        const cache::MemTiming& timing);

/// Recomputes τ_w for (possibly different) per-reference timings while
/// *holding the worst-case counts fixed* — the quantity the optimizer's
/// profit criterion compares (the paper's Theorem 1 argument fixes n_w).
std::uint64_t tau_with_fixed_counts(
    const analysis::ContextGraph& graph,
    const analysis::CacheAnalysisResult& classification,
    const cache::MemTiming& timing, const std::vector<std::uint64_t>& counts);

}  // namespace ucp::wcet
