#include "wcet/ipet.hpp"

#include <cmath>
#include <string>

#include "support/check.hpp"
#include "support/fault_injection.hpp"

namespace ucp::wcet {

ErrorCode solve_error_code(ilp::SolveStatus status) {
  switch (status) {
    case ilp::SolveStatus::kOptimal:
      return ErrorCode::kOk;
    case ilp::SolveStatus::kInfeasible:
      return ErrorCode::kInfeasible;
    case ilp::SolveStatus::kUnbounded:
      return ErrorCode::kUnbounded;
    case ilp::SolveStatus::kIterationLimit:
      return ErrorCode::kIterationLimit;
  }
  return ErrorCode::kInternal;
}

using analysis::CgEdge;
using analysis::Classification;
using analysis::ContextGraph;
using analysis::NodeId;

std::uint32_t ref_cycles(Classification cls, const cache::MemTiming& timing) {
  return cls == Classification::kAlwaysHit ? timing.hit_cycles
                                           : timing.miss_cycles;
}

namespace {

/// Sum of per-execution fetch cycles of all instructions of a node.
std::uint64_t node_cycles(const std::vector<std::uint32_t>& refs) {
  std::uint64_t total = 0;
  for (std::uint32_t c : refs) total += c;
  return total;
}

}  // namespace

WcetResult compute_wcet(const ContextGraph& graph,
                        const analysis::CacheAnalysisResult& classification,
                        const cache::MemTiming& timing) {
  const std::size_t num_nodes = graph.num_nodes();
  const auto& edges = graph.edges();

  WcetResult result;
  result.ref_cycles.resize(num_nodes);
  for (NodeId v = 0; v < num_nodes; ++v) {
    const auto& cls = classification.per_node[v];
    result.ref_cycles[v].reserve(cls.size());
    for (Classification c : cls)
      result.ref_cycles[v].push_back(ref_cycles(c, timing));
  }

  // --- Build the ILP -------------------------------------------------------
  ilp::Model model;

  // One variable per real edge, plus a virtual source arc into the entry and
  // one virtual sink arc out of every exit node.
  std::vector<ilp::VarId> edge_var(edges.size());
  for (std::size_t e = 0; e < edges.size(); ++e)
    edge_var[e] = model.add_var("x" + std::to_string(e));
  const ilp::VarId source_var = model.add_var("src", 1.0, 1.0);
  std::vector<ilp::VarId> sink_var;
  for (NodeId exit : graph.exit_nodes())
    sink_var.push_back(
        model.add_var("sink_n" + std::to_string(exit)));

  // Flow conservation: inflow(v) == outflow(v).
  for (NodeId v = 0; v < num_nodes; ++v) {
    std::vector<ilp::Term> terms;
    for (std::uint32_t ei : graph.in_edges(v))
      terms.push_back({edge_var[ei], 1.0});
    if (v == graph.entry_node()) terms.push_back({source_var, 1.0});
    for (std::uint32_t ei : graph.out_edges(v))
      terms.push_back({edge_var[ei], -1.0});
    for (std::size_t k = 0; k < graph.exit_nodes().size(); ++k)
      if (graph.exit_nodes()[k] == v) terms.push_back({sink_var[k], -1.0});
    model.add_constraint(std::move(terms), ilp::Rel::kEq, 0.0);
  }

  // Helper: inflow(v) as terms (n_v).
  auto inflow_terms = [&](NodeId v, double coeff) {
    std::vector<ilp::Term> terms;
    for (std::uint32_t ei : graph.in_edges(v))
      terms.push_back({edge_var[ei], coeff});
    if (v == graph.entry_node()) terms.push_back({source_var, coeff});
    return terms;
  };

  // VIVU loop bounds: n(rest) <= (bound - 1) * n(first).
  for (const analysis::LoopInstance& inst : graph.loop_instances()) {
    if (inst.rest_node == analysis::kInvalidNode) continue;
    UCP_CHECK_MSG(inst.bound >= 2, "REST node exists for bound < 2");
    std::vector<ilp::Term> terms = inflow_terms(inst.rest_node, 1.0);
    const auto first = inflow_terms(
        inst.first_node, -static_cast<double>(inst.bound - 1));
    terms.insert(terms.end(), first.begin(), first.end());
    model.add_constraint(std::move(terms), ilp::Rel::kLe, 0.0);

    // Anti-circulation: back-edge flow may exist only in proportion to the
    // flow that actually *enters* the REST instance from the peeled FIRST
    // iteration. Without this, a maximizing solution can satisfy flow
    // conservation with a closed loop-cycle circulation disconnected from
    // the source, which has the right objective value but is not a path
    // (the classic IPET structural-flow pitfall).
    std::vector<ilp::Term> anti;
    double has_back = false;
    for (std::uint32_t ei : graph.in_edges(inst.rest_node)) {
      if (edges[ei].back) {
        anti.push_back({edge_var[ei], 1.0});
        has_back = true;
      }
    }
    if (!has_back) continue;
    const double factor =
        inst.bound >= 2 ? static_cast<double>(inst.bound - 2) : 0.0;
    for (std::uint32_t ei : graph.in_edges(inst.rest_node)) {
      if (!edges[ei].back) anti.push_back({edge_var[ei], -factor});
    }
    model.add_constraint(std::move(anti), ilp::Rel::kLe, 0.0);
  }

  // Objective: Σ_v t_w(v) * n_v, expressed over inflow arcs.
  std::vector<double> var_coeff(model.num_vars(), 0.0);
  for (NodeId v = 0; v < num_nodes; ++v) {
    const double tv = static_cast<double>(node_cycles(result.ref_cycles[v]));
    if (tv == 0.0) continue;
    for (const ilp::Term& t : inflow_terms(v, tv))
      var_coeff[static_cast<std::size_t>(t.var)] += t.coeff;
  }
  std::vector<ilp::Term> objective;
  for (std::size_t j = 0; j < var_coeff.size(); ++j)
    if (var_coeff[j] != 0.0)
      objective.push_back({static_cast<ilp::VarId>(j), var_coeff[j]});
  model.set_objective(std::move(objective), /*maximize=*/true);

  // --- Solve ----------------------------------------------------------------
  if (UCP_FAULT_POINT("wcet.solve")) {
    result.status = ilp::SolveStatus::kIterationLimit;
    return result;
  }
  const ilp::Solution solution = ilp::solve_ilp(model);
  result.status = solution.status;
  if (!solution.optimal()) return result;

  result.tau_mem =
      static_cast<std::uint64_t>(std::llround(solution.objective));
  result.edge_counts.assign(edges.size(), 0);
  for (std::size_t e = 0; e < edges.size(); ++e)
    result.edge_counts[e] =
        static_cast<std::uint64_t>(std::llround(solution.value(edge_var[e])));
  result.node_counts.assign(num_nodes, 0);
  for (NodeId v = 0; v < num_nodes; ++v) {
    std::uint64_t n = 0;
    for (std::uint32_t ei : graph.in_edges(v)) n += result.edge_counts[ei];
    if (v == graph.entry_node()) n += 1;
    result.node_counts[v] = n;
  }
  return result;
}

std::uint64_t tau_with_fixed_counts(
    const ContextGraph& graph,
    const analysis::CacheAnalysisResult& classification,
    const cache::MemTiming& timing,
    const std::vector<std::uint64_t>& counts) {
  UCP_REQUIRE(counts.size() == graph.num_nodes(),
              "count vector does not match the context graph");
  std::uint64_t tau = 0;
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    if (counts[v] == 0) continue;
    std::uint64_t per_exec = 0;
    for (Classification c : classification.per_node[v])
      per_exec += ref_cycles(c, timing);
    tau += per_exec * counts[v];
  }
  return tau;
}

}  // namespace ucp::wcet
