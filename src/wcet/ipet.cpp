#include "wcet/ipet.hpp"

#include <cmath>
#include <string>

#include "obs/trace.hpp"
#include "support/check.hpp"
#include "support/checked.hpp"
#include "support/fault_injection.hpp"

namespace ucp::wcet {

ErrorCode solve_error_code(ilp::SolveStatus status) {
  switch (status) {
    case ilp::SolveStatus::kOptimal:
      return ErrorCode::kOk;
    case ilp::SolveStatus::kInfeasible:
      return ErrorCode::kInfeasible;
    case ilp::SolveStatus::kUnbounded:
      return ErrorCode::kUnbounded;
    case ilp::SolveStatus::kIterationLimit:
      return ErrorCode::kIterationLimit;
  }
  return ErrorCode::kInternal;
}

using analysis::CgEdge;
using analysis::Classification;
using analysis::ContextGraph;
using analysis::NodeId;

std::uint32_t ref_cycles(Classification cls, const cache::MemTiming& timing) {
  return cls == Classification::kAlwaysHit ? timing.hit_cycles
                                           : timing.miss_cycles;
}

namespace {

/// Sum of per-execution fetch cycles of all instructions of a node.
std::uint64_t node_cycles(const std::vector<std::uint32_t>& refs) {
  std::uint64_t total = 0;
  for (std::uint32_t c : refs) total += c;
  return total;
}

}  // namespace

ilp::Model IpetSystem::build_model(const ContextGraph& graph) {
  const std::size_t num_nodes = graph.num_nodes();
  const auto& edges = graph.edges();

  ilp::Model model;

  // One variable per real edge, plus a virtual source arc into the entry and
  // one virtual sink arc out of every exit node. Edge e gets VarId e.
  std::vector<ilp::VarId> edge_var(edges.size());
  for (std::size_t e = 0; e < edges.size(); ++e)
    edge_var[e] = model.add_var("x" + std::to_string(e));
  const ilp::VarId source_var = model.add_var("src", 1.0, 1.0);
  std::vector<ilp::VarId> sink_var;
  for (NodeId exit : graph.exit_nodes())
    sink_var.push_back(
        model.add_var("sink_n" + std::to_string(exit)));

  // Flow conservation: inflow(v) == outflow(v).
  for (NodeId v = 0; v < num_nodes; ++v) {
    std::vector<ilp::Term> terms;
    for (std::uint32_t ei : graph.in_edges(v))
      terms.push_back({edge_var[ei], 1.0});
    if (v == graph.entry_node()) terms.push_back({source_var, 1.0});
    for (std::uint32_t ei : graph.out_edges(v))
      terms.push_back({edge_var[ei], -1.0});
    for (std::size_t k = 0; k < graph.exit_nodes().size(); ++k)
      if (graph.exit_nodes()[k] == v) terms.push_back({sink_var[k], -1.0});
    model.add_constraint(std::move(terms), ilp::Rel::kEq, 0.0);
  }

  // Helper: inflow(v) as terms (n_v).
  auto inflow_terms = [&](NodeId v, double coeff) {
    std::vector<ilp::Term> terms;
    for (std::uint32_t ei : graph.in_edges(v))
      terms.push_back({edge_var[ei], coeff});
    if (v == graph.entry_node()) terms.push_back({source_var, coeff});
    return terms;
  };

  // VIVU loop bounds: n(rest) <= (bound - 1) * n(first).
  for (const analysis::LoopInstance& inst : graph.loop_instances()) {
    if (inst.rest_node == analysis::kInvalidNode) continue;
    UCP_CHECK_MSG(inst.bound >= 2, "REST node exists for bound < 2");
    std::vector<ilp::Term> terms = inflow_terms(inst.rest_node, 1.0);
    const auto first = inflow_terms(
        inst.first_node, -static_cast<double>(inst.bound - 1));
    terms.insert(terms.end(), first.begin(), first.end());
    model.add_constraint(std::move(terms), ilp::Rel::kLe, 0.0);

    // Anti-circulation: back-edge flow may exist only in proportion to the
    // flow that actually *enters* the REST instance from the peeled FIRST
    // iteration. Without this, a maximizing solution can satisfy flow
    // conservation with a closed loop-cycle circulation disconnected from
    // the source, which has the right objective value but is not a path
    // (the classic IPET structural-flow pitfall).
    std::vector<ilp::Term> anti;
    bool has_back = false;
    for (std::uint32_t ei : graph.in_edges(inst.rest_node)) {
      if (edges[ei].back) {
        anti.push_back({edge_var[ei], 1.0});
        has_back = true;
      }
    }
    if (!has_back) continue;
    const double factor =
        inst.bound >= 2 ? static_cast<double>(inst.bound - 2) : 0.0;
    for (std::uint32_t ei : graph.in_edges(inst.rest_node)) {
      if (!edges[ei].back) anti.push_back({edge_var[ei], -factor});
    }
    model.add_constraint(std::move(anti), ilp::Rel::kLe, 0.0);
  }

  return model;
}

IpetSystem::IpetSystem(const ContextGraph& graph, const IpetOptions& options)
    : graph_(&graph),
      model_(build_model(graph)),
      source_var_(static_cast<ilp::VarId>(graph.edges().size())),
      presolve_(options.presolve ? ilp::Presolve::reduce(model_)
                                 : std::nullopt),
      lp_(presolve_ ? presolve_->reduced() : model_) {}

namespace {

/// Per-reference worst-case cycles of every node under (cls, timing) — the
/// t_w table the objective coefficients and the WcetResult both need.
std::vector<std::vector<std::uint32_t>> timing_table(
    const ContextGraph& graph,
    const analysis::CacheAnalysisResult& classification,
    const cache::MemTiming& timing) {
  std::vector<std::vector<std::uint32_t>> table(graph.num_nodes());
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    const auto& cls = classification.per_node[v];
    table[v].reserve(cls.size());
    for (Classification c : cls) table[v].push_back(ref_cycles(c, timing));
  }
  return table;
}

}  // namespace

WcetResult IpetSystem::solve(
    const analysis::CacheAnalysisResult& classification,
    const cache::MemTiming& timing) const {
  obs::Span span("wcet.ipet.solve");
  const ContextGraph& graph = *graph_;
  const std::size_t num_nodes = graph.num_nodes();
  const auto& edges = graph.edges();

  WcetResult result;
  result.ref_cycles = timing_table(graph, classification, timing);

  // Objective: Σ_v t_w(v) * n_v, expressed over inflow arcs (edge e has
  // VarId e; the virtual source arc carries the entry node's weight).
  std::vector<double> obj(model_.num_vars(), 0.0);
  for (NodeId v = 0; v < num_nodes; ++v) {
    const double tv = static_cast<double>(node_cycles(result.ref_cycles[v]));
    if (tv == 0.0) continue;
    for (std::uint32_t ei : graph.in_edges(v))
      obj[ei] += tv;
    if (v == graph.entry_node()) obj[static_cast<std::size_t>(source_var_)] += tv;
  }

  if (UCP_FAULT_POINT("wcet.solve")) {
    result.status = ilp::SolveStatus::kIterationLimit;
    return result;
  }
  ilp::Solution solution;
  if (presolve_) {
    // Solve in the reduced column space; postsolve restores the original
    // objective value (fixed variables' contribution) and expands the
    // solution vector so the edge-count extraction below is agnostic.
    double constant = 0.0;
    const std::vector<double> reduced_obj =
        presolve_->map_objective(obj, constant);
    solution = lp_.solve_ilp_with(reduced_obj);
    if (solution.optimal()) {
      solution.objective += constant;
      solution.values = presolve_->expand_values(solution.values);
    }
  } else {
    solution = lp_.solve_ilp_with(obj);
  }
  result.status = solution.status;
  result.stats = solution.stats;
  if (!solution.optimal()) return result;

  result.tau_mem =
      static_cast<std::uint64_t>(std::llround(solution.objective));
  result.edge_counts.assign(edges.size(), 0);
  for (std::size_t e = 0; e < edges.size(); ++e)
    result.edge_counts[e] = static_cast<std::uint64_t>(
        std::llround(solution.value(static_cast<ilp::VarId>(e))));
  result.node_counts.assign(num_nodes, 0);
  for (NodeId v = 0; v < num_nodes; ++v) {
    std::uint64_t n = 0;
    for (std::uint32_t ei : graph.in_edges(v)) n += result.edge_counts[ei];
    if (v == graph.entry_node()) n += 1;
    result.node_counts[v] = n;
  }
  return result;
}

ilp::Model IpetSystem::model_with_objective(
    const analysis::CacheAnalysisResult& classification,
    const cache::MemTiming& timing) const {
  const ContextGraph& graph = *graph_;
  const auto table = timing_table(graph, classification, timing);

  std::vector<double> var_coeff(model_.num_vars(), 0.0);
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    const double tv = static_cast<double>(node_cycles(table[v]));
    if (tv == 0.0) continue;
    for (std::uint32_t ei : graph.in_edges(v)) var_coeff[ei] += tv;
    if (v == graph.entry_node())
      var_coeff[static_cast<std::size_t>(source_var_)] += tv;
  }
  std::vector<ilp::Term> objective;
  for (std::size_t j = 0; j < var_coeff.size(); ++j)
    if (var_coeff[j] != 0.0)
      objective.push_back({static_cast<ilp::VarId>(j), var_coeff[j]});

  ilp::Model model = model_;
  model.set_objective(std::move(objective), /*maximize=*/true);
  return model;
}

WcetResult compute_wcet(const ContextGraph& graph,
                        const analysis::CacheAnalysisResult& classification,
                        const cache::MemTiming& timing) {
  const IpetSystem system(graph);
  WcetResult result = system.solve(classification, timing);
  system.charge_construction(result.stats);
  return result;
}

std::uint64_t tau_with_fixed_counts(
    const ContextGraph& graph,
    const analysis::CacheAnalysisResult& classification,
    const cache::MemTiming& timing,
    const std::vector<std::uint64_t>& counts) {
  UCP_REQUIRE(counts.size() == graph.num_nodes(),
              "count vector does not match the context graph");
  std::uint64_t tau = 0;
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    if (counts[v] == 0) continue;
    std::uint64_t per_exec = 0;
    for (Classification c : classification.per_node[v])
      per_exec += ref_cycles(c, timing);
    tau = checked_add(tau, checked_mul(per_exec, counts[v], "tau node term"),
                      "tau accumulation");
  }
  return tau;
}

}  // namespace ucp::wcet
