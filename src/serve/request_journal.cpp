#include "serve/request_journal.hpp"

#include <unistd.h>

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string_view>
#include <vector>

#include "support/durable_io.hpp"
#include "support/fault_injection.hpp"

namespace ucp::serve {

namespace {

const char kMagic[] = "# ucp-serve-journal v1";

std::uint64_t fnv1a(std::string_view s,
                    std::uint64_t h = 1469598103934665603ull) {
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::string to_hex(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, v);
  return buf;
}

std::string escape_cell(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case ',':
        out += "\\c";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string unescape_cell(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\' || i + 1 == s.size()) {
      out += s[i];
      continue;
    }
    const char next = s[++i];
    out += next == 'c' ? ',' : next == 'n' ? '\n' : next;
  }
  return out;
}

std::string journal_row(const std::string& id, const std::string& fingerprint,
                        const std::string& response_text) {
  const std::string prefix = "req," + escape_cell(id) + "," + fingerprint +
                             "," + escape_cell(response_text);
  return prefix + ',' + to_hex(fnv1a(prefix));
}

bool parse_row(const std::string& line, std::string& id,
               std::string& fingerprint, std::string& response_text) {
  std::vector<std::string> cells(1);
  for (std::size_t i = 0; i < line.size(); ++i) {
    if (line[i] == '\\' && i + 1 < line.size()) {
      cells.back() += line[i];
      cells.back() += line[i + 1];
      ++i;
    } else if (line[i] == ',') {
      cells.emplace_back();
    } else {
      cells.back() += line[i];
    }
  }
  if (cells.size() != 5 || cells[0] != "req") return false;
  const std::size_t checksum_at = line.rfind(',');
  if (checksum_at == std::string::npos ||
      to_hex(fnv1a(std::string_view(line).substr(0, checksum_at))) !=
          cells[4])
    return false;
  id = unescape_cell(cells[1]);
  fingerprint = cells[2];
  if (id.empty() || fingerprint.size() != 16) return false;
  response_text = unescape_cell(cells[3]);
  return true;
}

}  // namespace

Status RequestJournal::open(const std::string& path) {
  close();
  path_ = path;
  restored_ = 0;
  entries_.clear();

  std::string reset_reason;
  long truncate_at = -1;
  {
    std::ifstream is(path, std::ios::binary);
    if (!is) {
      note_ = "request journal started at '" + path + "'";
    } else {
      std::string line;
      long offset = 0;
      if (!std::getline(is, line)) {
        reset_reason = "empty journal";
      } else if (line != kMagic) {
        reset_reason = "not a serve journal";
      } else {
        offset = static_cast<long>(line.size()) + 1;
        while (std::getline(is, line)) {
          if (line.empty() || line[0] == '#') {
            offset += static_cast<long>(line.size()) + 1;
            continue;
          }
          std::string id, fp, response;
          if (!parse_row(line, id, fp, response)) {
            // Torn tail from a crash mid-append: every earlier row
            // checksummed clean, this one (and anything after) is dropped.
            truncate_at = offset;
            break;
          }
          // Later rows win: a duplicate id can only appear if a torn-tail
          // truncation re-ran the request, and the re-run's row is the one
          // that was acknowledged last.
          auto [it, inserted] = entries_.insert_or_assign(
              std::move(id), Entry{std::move(fp), std::move(response)});
          (void)it;
          if (inserted) ++restored_;
          offset += static_cast<long>(line.size()) + 1;
        }
        note_ = "restored " + std::to_string(restored_) +
                " journaled responses from '" + path + "'" +
                (truncate_at >= 0 ? " (torn tail truncated)" : "");
      }
    }
  }

  if (!reset_reason.empty()) {
    entries_.clear();
    restored_ = 0;
    note_ = "request journal reset (" + reset_reason + ")";
    std::remove(path.c_str());
  } else if (truncate_at >= 0) {
    if (::truncate(path.c_str(), truncate_at) != 0)
      return Status(ErrorCode::kInternal,
                    "cannot truncate torn journal tail of '" + path +
                        "': " + std::strerror(errno));
  }

  const bool creating = !std::ifstream(path).good();
  file_ = std::fopen(path.c_str(), "ab");
  if (!file_)
    return Status(ErrorCode::kInternal,
                  "cannot open request journal '" + path + "' for append: " +
                      std::strerror(errno));
  if (creating) {
    const std::string first = std::string(kMagic) + "\n";
    if (std::fwrite(first.data(), 1, first.size(), file_) != first.size() ||
        std::fflush(file_) != 0) {
      close();
      return Status(ErrorCode::kInternal,
                    "cannot write journal header to '" + path + "'");
    }
    Status synced =
        support::fsync_fd(fileno(file_), "request journal '" + path + "'");
    if (synced.ok()) synced = support::fsync_parent(path);
    if (!synced.ok()) {
      close();
      return synced;
    }
  }
  return Status::Ok();
}

Status RequestJournal::append(const std::string& id,
                              const std::string& fingerprint,
                              const std::string& response_text) {
  if (!active())
    return Status(ErrorCode::kInternal, "request journal is not active");
  const std::string line = journal_row(id, fingerprint, response_text) + "\n";
  const bool injected = UCP_FAULT_POINT("serve.journal_write");
  if (injected ||
      std::fwrite(line.data(), 1, line.size(), file_) != line.size() ||
      std::fflush(file_) != 0) {
    // A daemon without replay durability beats no daemon: deactivate the
    // journal and keep serving; the caller reports the degradation.
    const std::string why =
        injected ? "injected request-journal write failure"
                 : std::string("request-journal append failed: ") +
                       std::strerror(errno);
    close();
    return Status(ErrorCode::kInternal, why);
  }
  Status synced =
      support::fsync_fd(fileno(file_), "request journal '" + path_ + "'");
  if (!synced.ok()) {
    close();
    return synced;
  }
  entries_.insert_or_assign(id, Entry{fingerprint, response_text});
  return Status::Ok();
}

const RequestJournal::Entry* RequestJournal::find(const std::string& id)
    const {
  const auto it = entries_.find(id);
  return it == entries_.end() ? nullptr : &it->second;
}

void RequestJournal::close() {
  if (file_) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

}  // namespace ucp::serve
