#pragma once

// The ucpd analysis daemon: a multi-threaded TCP server that accepts
// optimization requests (serve/protocol.hpp), runs each through the
// existing analyze -> optimize -> audit pipeline (exp::run_use_case_group),
// and streams back the vouched-for program plus its metrics and audit
// verdict. Robustness is the design center:
//
//  - bounded admission: a connection beyond the queue capacity is shed
//    *before* any request bytes are read, with a structured kOverloaded
//    response carrying an advisory retry_after_ms — never a hang, never an
//    unbounded queue;
//  - per-request watchdog deadlines: a worker slot arms a wall-clock
//    deadline around the pipeline; the watchdog thread cooperatively
//    cancels the slot's token, and the cancellation feeds the retry ladder
//    like any other retryable failure;
//  - retry-with-degradation ladder (mirrors exp::run_sweep's run_task rung
//    for rung): configured budgets, then escalated budgets (2x evaluations,
//    4x deadlines), then the Theorem-1 identity transform — a degraded
//    response is still *sound*, never an error;
//  - crash-safe idempotent replay: terminal responses are journaled
//    (fsync'd, checksummed) before the client sees a byte, so kill -9 and
//    restart answers re-sent ids byte-identically (serve/request_journal);
//  - warm cross-request caches: a response cache keyed by the request
//    fingerprint (program text + geometry + tech + budgets — any change
//    misses by construction, which is the whole invalidation story) and an
//    LRU of IPET constraint systems keyed by program text (prefetch
//    insertion never alters the CFG, so a program-text hit shares the
//    graph + canonical basis bit-identically, exactly like the sweep's
//    per-program sharing);
//  - graceful drain: stop accepting, finish queued requests, join every
//    thread; pair with the request journal for SIGKILL coverage.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "core/optimizer.hpp"
#include "serve/protocol.hpp"
#include "support/status.hpp"

namespace ucp::serve {

struct ServerOptions {
  std::uint16_t port = 0;        ///< 0 = kernel-assigned (see Server::port)
  std::uint32_t workers = 2;     ///< request worker threads
  std::size_t queue_capacity = 16;  ///< accepted-but-unclaimed connections
  /// Watchdog deadline applied when a request names none; 0 disables.
  std::uint32_t default_deadline_ms = 10000;
  /// Ladder depth applied when a request names none (1..3).
  std::uint32_t default_attempts = 3;
  /// Advisory client back-off carried by kOverloaded shed responses.
  std::uint32_t retry_after_ms = 50;
  /// Per-read/-write socket deadline; a peer that stalls longer is dropped.
  int io_timeout_ms = 10000;
  /// Idempotent-replay journal; empty = no journal (replay map only lives
  /// for the process lifetime via the response cache).
  std::string journal_path;
  std::size_t response_cache_entries = 256;
  std::size_t ipet_cache_entries = 16;
  bool audit_soundness = true;
  core::OptimizerOptions optimizer;
  ProtocolLimits limits;
  /// Test hook: while the pointee is true, workers idle before claiming
  /// connections, so a test can fill the admission queue deterministically.
  const std::atomic<bool>* hold_workers = nullptr;

  // --- ops plane -----------------------------------------------------------
  /// Second loopback listener serving HEALTH / STATS [prom] / PROFILE /
  /// FLIGHT scrapes (see serve/admin in DESIGN.md §16). Off by default so
  /// embedded Server instances (tests, the load bench's data-path floor)
  /// opt in; the ucpd binary turns it on unless --no-admin.
  bool admin_enabled = false;
  std::uint16_t admin_port = 0;  ///< 0 = kernel-assigned (Server::admin_port)
  /// Dump every Nth well-formed request's spans as a standalone Chrome
  /// trace (requires tracing enabled); 0 disables sampling. While active,
  /// every request's spans are drained per request — sampled ones written,
  /// the rest discarded — so a long-lived daemon's trace memory stays
  /// bounded by requests in flight, not requests ever served.
  std::uint32_t trace_sample_every = 0;
  std::string trace_dir = ".";  ///< where req-<id>.trace.json files land
  /// Flight-recorder dump file for watchdog-fire / audit-violation / admin
  /// FLIGHT triggers; empty = dumps are logged to the structured log only.
  std::string flight_path;
  /// Minimum gap between trigger-initiated flight dumps (an admin FLIGHT
  /// scrape always answers): a watchdog storm must not turn the recorder
  /// into an I/O amplifier.
  std::uint32_t flight_dump_min_gap_ms = 5000;
};

/// Monotonic counters of one daemon's lifetime (stats() snapshot).
struct ServerStats {
  std::uint64_t accepted = 0;       ///< connections admitted to the queue
  std::uint64_t shed = 0;           ///< connections rejected kOverloaded
  std::uint64_t requests = 0;       ///< well-formed requests processed
  std::uint64_t malformed = 0;      ///< structured kMalformedInput replies
  std::uint64_t dropped = 0;        ///< connections dropped pre-response
  std::uint64_t ok = 0;             ///< status ok responses
  std::uint64_t degraded = 0;       ///< status degraded responses
  std::uint64_t errors = 0;         ///< status error responses (non-shed)
  std::uint64_t cache_hits = 0;     ///< served from the response cache
  std::uint64_t replayed = 0;       ///< served from the request journal
  std::uint64_t retried = 0;        ///< requests that took > 1 attempt
  std::uint64_t admin_scrapes = 0;  ///< admin-plane requests answered
  std::uint64_t admin_dropped = 0;  ///< admin connections dropped pre-reply
  std::uint64_t flight_dumps = 0;   ///< flight-recorder dumps triggered
  std::uint64_t watchdog_fires = 0; ///< per-request deadlines enforced
  std::uint64_t trace_dumps = 0;    ///< sampled per-request traces written
  std::size_t queue_depth = 0;      ///< current admission-queue depth
  std::size_t inflight = 0;         ///< requests currently in the pipeline
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the listener, opens the journal, spawns accept/worker/watchdog
  /// threads. After start() the daemon is serving.
  Status start();

  /// The bound port (after start()).
  std::uint16_t port() const;

  /// The admin-plane port (after start(); 0 when admin_enabled is false).
  std::uint16_t admin_port() const;

  /// Triggers a flight-recorder dump (to options.flight_path when set,
  /// otherwise into the structured log as a summary): the SIGQUIT path of
  /// the ucpd binary, also used internally on watchdog fires and audit
  /// violations. `force` bypasses the rate limit (operator-initiated
  /// dumps always run).
  void dump_flight(const std::string& reason, bool force = false);

  /// Graceful drain: stop accepting, finish every queued request, join all
  /// threads, close the journal. Idempotent; the destructor calls it.
  void stop();

  ServerStats stats() const;

  /// What the request journal did at open ("restored N..." / "reset ...").
  std::string journal_note() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace ucp::serve
