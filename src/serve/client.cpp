#include "serve/client.hpp"

#include "support/socket.hpp"

namespace ucp::serve {

Expected<Response> call(std::uint16_t port, const Request& request,
                        int timeout_ms, const ProtocolLimits& limits) {
  Expected<support::Socket> conn = support::tcp_connect(port, timeout_ms);
  if (!conn.ok()) return conn.status();
  Status sent = write_all(*conn, serialize_request(request));
  if (!sent.ok()) return sent;
  support::LineReader reader(*conn, limits.max_line_bytes, timeout_ms);
  return read_response(reader, limits);
}

}  // namespace ucp::serve
