#include "serve/client.hpp"

#include "support/socket.hpp"

namespace ucp::serve {

Expected<Response> call(std::uint16_t port, const Request& request,
                        int timeout_ms, const ProtocolLimits& limits) {
  Expected<support::Socket> conn = support::tcp_connect(port, timeout_ms);
  if (!conn.ok()) return conn.status();
  Status sent = write_all(*conn, serialize_request(request));
  if (!sent.ok()) return sent;
  support::LineReader reader(*conn, limits.max_line_bytes, timeout_ms);
  return read_response(reader, limits);
}

Expected<AdminReply> admin_call(std::uint16_t admin_port,
                                const std::string& verb, int timeout_ms) {
  Expected<support::Socket> conn =
      support::tcp_connect(admin_port, timeout_ms);
  if (!conn.ok()) return conn.status();
  Status sent = write_all(*conn, verb + "\n");
  if (!sent.ok()) return sent;

  support::LineReader reader(*conn, 4096, timeout_ms);
  Expected<std::string> banner = reader.read_line();
  if (!banner.ok()) return banner.status();
  if (*banner != "ucp-admin v1")
    return Status(ErrorCode::kMalformedInput,
                  "bad admin banner '" + *banner + "'");
  AdminReply reply;
  Expected<std::string> echoed = reader.read_line();
  if (!echoed.ok()) return echoed.status();
  if (echoed->rfind("verb ", 0) != 0)
    return Status(ErrorCode::kMalformedInput, "missing admin verb echo");
  reply.verb = echoed->substr(5);
  Expected<std::string> status_line = reader.read_line();
  if (!status_line.ok()) return status_line.status();
  if (*status_line == "status ok")
    reply.ok = true;
  else if (*status_line == "status error")
    reply.ok = false;
  else
    return Status(ErrorCode::kMalformedInput,
                  "bad admin status line '" + *status_line + "'");
  Expected<std::string> header = reader.read_line();
  if (!header.ok()) return header.status();
  if (header->rfind("payload ", 0) != 0)
    return Status(ErrorCode::kMalformedInput, "missing admin payload header");
  const std::string size_text = header->substr(8);
  if (size_text.empty() ||
      size_text.find_first_not_of("0123456789") != std::string::npos ||
      size_text.size() > 9)
    return Status(ErrorCode::kMalformedInput,
                  "bad admin payload size '" + size_text + "'");
  Expected<std::string> payload = reader.read_exact(std::stoul(size_text));
  if (!payload.ok()) return payload.status();
  reply.payload = std::move(*payload);
  return reply;
}

}  // namespace ucp::serve
