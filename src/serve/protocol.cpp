#include "serve/protocol.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <vector>

namespace ucp::serve {

namespace {

constexpr char kRequestMagic[] = "ucp-request v1";
constexpr char kResponseMagic[] = "ucp-response v1";

std::uint64_t fnv1a(const std::string& s,
                    std::uint64_t h = 1469598103934665603ull) {
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::string to_hex(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, v);
  return buf;
}

Status malformed(const std::string& why) {
  return Status(ErrorCode::kMalformedInput, why);
}

/// One-line field escaping for free-text cells (the `detail` line): header
/// lines are newline-delimited, so embedded newlines and backslashes travel
/// escaped.
std::string escape_field(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        out += c;
    }
  }
  return out;
}

Expected<std::string> unescape_field(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\') {
      out += s[i];
      continue;
    }
    if (i + 1 >= s.size()) return malformed("dangling escape in field");
    ++i;
    switch (s[i]) {
      case '\\':
        out += '\\';
        break;
      case 'n':
        out += '\n';
        break;
      case 'r':
        out += '\r';
        break;
      default:
        return malformed(std::string("unknown escape '\\") + s[i] +
                         "' in field");
    }
  }
  return out;
}

Expected<std::uint64_t> parse_u64(const std::string& w, const char* what) {
  if (w.empty() || w.size() > 19 ||
      w.find_first_not_of("0123456789") != std::string::npos)
    return malformed(std::string("bad ") + what + " '" + w + "'");
  return static_cast<std::uint64_t>(std::stoull(w));
}

Expected<std::uint32_t> parse_u32(const std::string& w, const char* what) {
  Expected<std::uint64_t> v = parse_u64(w, what);
  if (!v.ok()) return v.status();
  if (*v > UINT32_MAX)
    return malformed(std::string(what) + " '" + w + "' out of range");
  return static_cast<std::uint32_t>(*v);
}

Expected<double> parse_f64(const std::string& w, const char* what) {
  if (w.empty() || w.size() > 64)
    return malformed(std::string("bad ") + what + " '" + w + "'");
  char* end = nullptr;
  const double v = std::strtod(w.c_str(), &end);
  if (end != w.c_str() + w.size())
    return malformed(std::string("bad ") + what + " '" + w + "'");
  return v;
}

std::string format_f64(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Splits `line` at the first space into key and value ("" when absent).
void split_kv(const std::string& line, std::string& key, std::string& value) {
  const std::size_t sp = line.find(' ');
  if (sp == std::string::npos) {
    key = line;
    value.clear();
  } else {
    key = line.substr(0, sp);
    value = line.substr(sp + 1);
  }
}

std::vector<std::string> split_words(const std::string& s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && s[i] == ' ') ++i;
    std::size_t j = i;
    while (j < s.size() && s[j] != ' ') ++j;
    if (j > i) out.push_back(s.substr(i, j - i));
    i = j;
  }
  return out;
}

/// A line-oriented byte source: the socket reader or an in-memory string.
/// Both protocol directions parse through this, so journal replay and the
/// live wire share one (fully bounds-checked) parser.
struct LineSource {
  std::function<Expected<std::string>()> next_line;
  std::function<Expected<std::string>(std::size_t)> take_exact;
};

LineSource socket_source(support::LineReader& reader) {
  return LineSource{
      [&reader] { return reader.read_line(); },
      [&reader](std::size_t n) { return reader.read_exact(n); },
  };
}

/// In-memory source over `text`; shares LineReader's error shapes.
struct StringCursor {
  const std::string& text;
  std::size_t pos = 0;
};

LineSource string_source(StringCursor& cursor, std::size_t max_line) {
  return LineSource{
      [&cursor, max_line]() -> Expected<std::string> {
        if (cursor.pos >= cursor.text.size())
          return Status(ErrorCode::kNotFound, "end of text");
        const std::size_t nl = cursor.text.find('\n', cursor.pos);
        if (nl == std::string::npos)
          return malformed("text ends mid-line");
        if (nl - cursor.pos > max_line)
          return malformed("line exceeds " + std::to_string(max_line) +
                           " bytes");
        std::string line = cursor.text.substr(cursor.pos, nl - cursor.pos);
        cursor.pos = nl + 1;
        return line;
      },
      [&cursor](std::size_t n) -> Expected<std::string> {
        if (cursor.text.size() - cursor.pos < n)
          return malformed("text ends " +
                           std::to_string(n -
                                          (cursor.text.size() - cursor.pos)) +
                           " bytes short of the declared payload");
        std::string out = cursor.text.substr(cursor.pos, n);
        cursor.pos += n;
        return out;
      },
  };
}

/// Reads `key value` header lines until the `payload <n>` terminator, then
/// the framed payload. `on_field` validates and stores one field; duplicate
/// keys and unknown keys are structured errors.
Status read_framed(LineSource& source, const ProtocolLimits& limits,
                   const char* magic,
                   const std::function<Status(const std::string& key,
                                              const std::string& value)>&
                       on_field,
                   std::string& payload_out) {
  Expected<std::string> first = source.next_line();
  if (!first.ok()) return first.status();
  if (*first != magic)
    return malformed(std::string("bad magic line (expected '") + magic +
                     "')");
  for (std::size_t n = 0;; ++n) {
    if (n >= limits.max_header_lines)
      return malformed("more than " +
                       std::to_string(limits.max_header_lines) +
                       " header lines");
    Expected<std::string> line = source.next_line();
    if (!line.ok()) {
      if (line.code() == ErrorCode::kNotFound)
        return malformed("header truncated before 'payload'");
      return line.status();
    }
    std::string key, value;
    split_kv(*line, key, value);
    if (key == "payload") {
      Expected<std::uint64_t> bytes = parse_u64(value, "payload size");
      if (!bytes.ok()) return bytes.status();
      if (*bytes > limits.max_payload_bytes)
        return malformed("payload of " + std::to_string(*bytes) +
                         " bytes exceeds the " +
                         std::to_string(limits.max_payload_bytes) +
                         "-byte limit");
      Expected<std::string> payload =
          source.take_exact(static_cast<std::size_t>(*bytes));
      if (!payload.ok()) return payload.status();
      payload_out = std::move(payload).value();
      return Status::Ok();
    }
    if (key.empty()) return malformed("empty header line");
    Status field = on_field(key, value);
    if (!field.ok()) return field;
  }
}

Expected<energy::TechNode> parse_tech(const std::string& w) {
  if (w == energy::tech_name(energy::TechNode::k45nm))
    return energy::TechNode::k45nm;
  if (w == energy::tech_name(energy::TechNode::k32nm))
    return energy::TechNode::k32nm;
  return malformed("unknown technology node '" + w + "'");
}

Expected<Response> parse_response_source(LineSource& source,
                                         const ProtocolLimits& limits) {
  Response r;
  bool have_id = false, have_status = false;
  auto on_field = [&](const std::string& key,
                      const std::string& value) -> Status {
    if (key == "id") {
      if (have_id) return malformed("duplicate id");
      if (!valid_request_id(value)) return malformed("bad response id");
      r.id = value;
      have_id = true;
    } else if (key == "status") {
      if (have_status) return malformed("duplicate status");
      if (value == "ok")
        r.status = ResponseStatus::kOk;
      else if (value == "degraded")
        r.status = ResponseStatus::kDegraded;
      else if (value == "error")
        r.status = ResponseStatus::kError;
      else
        return malformed("unknown response status '" + value + "'");
      have_status = true;
    } else if (key == "code") {
      Expected<ErrorCode> code = error_code_from_name(value);
      if (!code.ok()) return code.status();
      r.code = *code;
    } else if (key == "detail") {
      Expected<std::string> detail = unescape_field(value);
      if (!detail.ok()) return detail.status();
      r.detail = std::move(detail).value();
    } else if (key == "attempts") {
      Expected<std::uint32_t> v = parse_u32(value, "attempts");
      if (!v.ok()) return v.status();
      r.attempts = *v;
    } else if (key == "degradation_level") {
      Expected<std::uint32_t> v = parse_u32(value, "degradation_level");
      if (!v.ok()) return v.status();
      r.degradation_level = *v;
    } else if (key == "audit") {
      if (value != "clean" && value != "violated" &&
          value != "inconclusive" && value != "skipped")
        return malformed("unknown audit verdict '" + value + "'");
      r.audit = value;
    } else if (key == "tau_original" || key == "tau_optimized" ||
               key == "mem_cycles_original" ||
               key == "mem_cycles_optimized" || key == "prefetches") {
      Expected<std::uint64_t> v = parse_u64(value, key.c_str());
      if (!v.ok()) return v.status();
      if (key == "tau_original")
        r.tau_original = *v;
      else if (key == "tau_optimized")
        r.tau_optimized = *v;
      else if (key == "mem_cycles_original")
        r.mem_cycles_original = *v;
      else if (key == "mem_cycles_optimized")
        r.mem_cycles_optimized = *v;
      else
        r.prefetches = *v;
    } else if (key == "energy_original_nj" || key == "energy_optimized_nj") {
      Expected<double> v = parse_f64(value, key.c_str());
      if (!v.ok()) return v.status();
      (key == "energy_original_nj" ? r.energy_original_nj
                                   : r.energy_optimized_nj) = *v;
    } else if (key == "cached" || key == "replayed") {
      if (value != "0" && value != "1")
        return malformed("bad flag value '" + value + "' for " + key);
      (key == "cached" ? r.cached : r.replayed) = value == "1";
    } else if (key == "retry_after_ms") {
      Expected<std::uint32_t> v = parse_u32(value, "retry_after_ms");
      if (!v.ok()) return v.status();
      r.retry_after_ms = *v;
    } else {
      return malformed("unknown response field '" + key + "'");
    }
    return Status::Ok();
  };
  Status read = read_framed(source, limits, kResponseMagic, on_field,
                            r.program_text);
  if (!read.ok()) return read;
  if (!have_id) return malformed("response missing id");
  if (!have_status) return malformed("response missing status");
  return r;
}

}  // namespace

const char* response_status_name(ResponseStatus status) {
  switch (status) {
    case ResponseStatus::kOk:
      return "ok";
    case ResponseStatus::kDegraded:
      return "degraded";
    case ResponseStatus::kError:
      return "error";
  }
  return "unknown";
}

bool valid_request_id(const std::string& id) {
  if (id.empty() || id.size() > 128) return false;
  for (const char c : id) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.' ||
                    c == ':' || c == '-';
    if (!ok) return false;
  }
  return true;
}

Expected<ErrorCode> error_code_from_name(const std::string& name) {
  for (std::uint8_t i = 0;
       i <= static_cast<std::uint8_t>(ErrorCode::kOverloaded); ++i) {
    const ErrorCode code = static_cast<ErrorCode>(i);
    if (name == error_code_name(code)) return code;
  }
  return malformed("unknown error code '" + name + "'");
}

std::string request_fingerprint(const Request& request) {
  std::uint64_t h = fnv1a(request.program_text);
  h = fnv1a(request.config_id + "," +
                std::to_string(request.config.assoc) + "," +
                std::to_string(request.config.block_bytes) + "," +
                std::to_string(request.config.capacity_bytes) + "," +
                energy::tech_name(request.tech) + "," +
                std::to_string(request.deadline_ms) + "," +
                std::to_string(request.attempts),
            h);
  return to_hex(h);
}

std::string serialize_request(const Request& request) {
  std::string out = std::string(kRequestMagic) + "\n";
  out += "id " + request.id + "\n";
  out += "config " + request.config_id + " " +
         std::to_string(request.config.assoc) + " " +
         std::to_string(request.config.block_bytes) + " " +
         std::to_string(request.config.capacity_bytes) + "\n";
  out += "tech " + energy::tech_name(request.tech) + "\n";
  if (request.deadline_ms > 0)
    out += "deadline_ms " + std::to_string(request.deadline_ms) + "\n";
  if (request.attempts > 0)
    out += "attempts " + std::to_string(request.attempts) + "\n";
  out += "payload " + std::to_string(request.program_text.size()) + "\n";
  out += request.program_text;
  return out;
}

std::string serialize_response(const Response& response) {
  std::string out = std::string(kResponseMagic) + "\n";
  out += "id " + response.id + "\n";
  out += "status " + std::string(response_status_name(response.status)) +
         "\n";
  out += "code " + std::string(error_code_name(response.code)) + "\n";
  if (!response.detail.empty())
    out += "detail " + escape_field(response.detail) + "\n";
  out += "attempts " + std::to_string(response.attempts) + "\n";
  out += "degradation_level " + std::to_string(response.degradation_level) +
         "\n";
  out += "audit " + response.audit + "\n";
  out += "tau_original " + std::to_string(response.tau_original) + "\n";
  out += "tau_optimized " + std::to_string(response.tau_optimized) + "\n";
  out += "mem_cycles_original " +
         std::to_string(response.mem_cycles_original) + "\n";
  out += "mem_cycles_optimized " +
         std::to_string(response.mem_cycles_optimized) + "\n";
  out += "energy_original_nj " + format_f64(response.energy_original_nj) +
         "\n";
  out += "energy_optimized_nj " + format_f64(response.energy_optimized_nj) +
         "\n";
  out += "prefetches " + std::to_string(response.prefetches) + "\n";
  out += "cached " + std::string(response.cached ? "1" : "0") + "\n";
  out += "replayed " + std::string(response.replayed ? "1" : "0") + "\n";
  if (response.retry_after_ms > 0)
    out += "retry_after_ms " + std::to_string(response.retry_after_ms) +
           "\n";
  out += "payload " + std::to_string(response.program_text.size()) + "\n";
  out += response.program_text;
  return out;
}

Expected<Request> read_request(support::LineReader& reader,
                               const ProtocolLimits& limits) {
  LineSource source = socket_source(reader);
  Request r;
  bool have_id = false, have_config = false;
  auto on_field = [&](const std::string& key,
                      const std::string& value) -> Status {
    if (key == "id") {
      if (have_id) return malformed("duplicate id");
      if (!valid_request_id(value))
        return malformed(
            "bad request id (want [A-Za-z0-9_.:-]{1,128}, got '" +
            escape_field(value.substr(0, 160)) + "')");
      r.id = value;
      have_id = true;
    } else if (key == "config") {
      if (have_config) return malformed("duplicate config");
      const std::vector<std::string> w = split_words(value);
      if (w.size() != 4)
        return malformed(
            "config wants '<label> <assoc> <block_bytes> <capacity_bytes>'");
      Expected<std::uint32_t> assoc = parse_u32(w[1], "config assoc");
      Expected<std::uint32_t> block = parse_u32(w[2], "config block_bytes");
      Expected<std::uint32_t> cap = parse_u32(w[3], "config capacity_bytes");
      if (!assoc.ok()) return assoc.status();
      if (!block.ok()) return block.status();
      if (!cap.ok()) return cap.status();
      if (w[0].empty() || w[0].size() > 32)
        return malformed("bad config label");
      r.config_id = w[0];
      r.config.assoc = *assoc;
      r.config.block_bytes = *block;
      r.config.capacity_bytes = *cap;
      try {
        r.config.validate();
      } catch (const std::exception& e) {
        return malformed(std::string("invalid cache geometry: ") + e.what());
      }
      have_config = true;
    } else if (key == "tech") {
      Expected<energy::TechNode> tech = parse_tech(value);
      if (!tech.ok()) return tech.status();
      r.tech = *tech;
    } else if (key == "deadline_ms") {
      Expected<std::uint32_t> v = parse_u32(value, "deadline_ms");
      if (!v.ok()) return v.status();
      r.deadline_ms = *v;
    } else if (key == "attempts") {
      Expected<std::uint32_t> v = parse_u32(value, "attempts");
      if (!v.ok()) return v.status();
      if (*v < 1 || *v > 3)
        return malformed("attempts must be 1..3, got " + value);
      r.attempts = *v;
    } else {
      return malformed("unknown request field '" + key + "'");
    }
    return Status::Ok();
  };
  // A peer that connected and closed without a byte surfaces as the first
  // line's kNotFound (clean disconnect); everything else keeps its
  // structured kMalformedInput cause.
  Status read =
      read_framed(source, limits, kRequestMagic, on_field, r.program_text);
  if (!read.ok()) return read;
  if (!have_id) return malformed("request missing id");
  if (!have_config) return malformed("request missing config");
  if (r.program_text.empty()) return malformed("request has empty payload");
  return r;
}

Expected<Response> read_response(support::LineReader& reader,
                                 const ProtocolLimits& limits) {
  LineSource source = socket_source(reader);
  return parse_response_source(source, limits);
}

Expected<Response> parse_response_text(const std::string& text,
                                       const ProtocolLimits& limits) {
  StringCursor cursor{text};
  LineSource source = string_source(cursor, limits.max_line_bytes);
  Expected<Response> response = parse_response_source(source, limits);
  if (!response.ok()) {
    // kNotFound means "no bytes at all" — a clean disconnect on a socket,
    // but in-memory text has no peer: an empty buffer is malformed.
    if (response.code() == ErrorCode::kNotFound)
      return malformed("empty response text");
    return response;
  }
  if (cursor.pos != text.size())
    return malformed("trailing bytes after the response payload");
  return response;
}

}  // namespace ucp::serve
