#include "serve/server.hpp"

#include <chrono>
#include <cinttypes>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <list>
#include <mutex>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "analysis/context_graph.hpp"
#include "exp/harness.hpp"
#include "ir/text_codec.hpp"
#include "ir/verify.hpp"
#include "obs/build_info.hpp"
#include "obs/flight.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/sink.hpp"
#include "obs/trace.hpp"
#include "serve/request_journal.hpp"
#include "support/cancellation.hpp"
#include "support/fault_injection.hpp"
#include "support/socket.hpp"
#include "wcet/ipet.hpp"

namespace ucp::serve {

namespace {

std::int64_t now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::uint64_t fnv1a(std::string_view s,
                    std::uint64_t h = 1469598103934665603ull) {
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::string to_hex(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, v);
  return buf;
}

/// Failure classes worth another rung on the ladder — must match the
/// sweep's list (exp/harness.cpp run_task) so a request degrades exactly
/// like the same case would in a sweep.
bool retryable(ErrorCode code) {
  switch (code) {
    case ErrorCode::kIterationLimit:
    case ErrorCode::kStepBudgetExhausted:
    case ErrorCode::kDeadlineExceeded:
    case ErrorCode::kCancelled:
    case ErrorCode::kAnalysisFailed:
    case ErrorCode::kInternal:
      return true;
    default:
      return false;
  }
}

int rank(const exp::UseCaseResult& r) {
  return r.outcome == exp::CaseOutcome::kCompleted
             ? 2
             : (r.outcome == exp::CaseOutcome::kDegraded ? 1 : 0);
}

Response error_response(ErrorCode code, const std::string& detail) {
  Response r;
  r.status = ResponseStatus::kError;
  r.code = code;
  r.detail = detail;
  return r;
}

/// Request ids are `[A-Za-z0-9_.:-]` — everything but ':' is already safe
/// in a filename; keep the per-request trace paths shell-friendly.
std::string trace_file_name(const std::string& id) {
  std::string name = "req-";
  for (const char c : id) name += c == ':' ? '_' : c;
  name += ".trace.json";
  return name;
}

/// Deterministic JSON rendering of a stats snapshot (admin STATS verb;
/// docs/schemas/admin_stats.schema.json). Key order is the declaration
/// order of ServerStats.
std::string stats_json(const ucp::serve::ServerStats& s) {
  std::string out = "{";
  auto field = [&out](const char* key, std::uint64_t v) {
    if (out.size() > 1) out += ',';
    out += '"';
    out += key;
    out += "\":";
    out += std::to_string(v);
  };
  field("accepted", s.accepted);
  field("shed", s.shed);
  field("requests", s.requests);
  field("malformed", s.malformed);
  field("dropped", s.dropped);
  field("ok", s.ok);
  field("degraded", s.degraded);
  field("errors", s.errors);
  field("cache_hits", s.cache_hits);
  field("replayed", s.replayed);
  field("retried", s.retried);
  field("admin_scrapes", s.admin_scrapes);
  field("admin_dropped", s.admin_dropped);
  field("flight_dumps", s.flight_dumps);
  field("watchdog_fires", s.watchdog_fires);
  field("trace_dumps", s.trace_dumps);
  field("queue_depth", s.queue_depth);
  field("inflight", s.inflight);
  out += '}';
  return out;
}

/// The daemon-lifetime counters in Prometheus text exposition, prefixed
/// `ucp_ucpd_` so they never collide with the registry's `ucp_serve_*`
/// series in the same scrape.
std::string stats_prom(const ucp::serve::ServerStats& s) {
  std::string out;
  auto metric = [&out](const char* name, const char* type, std::uint64_t v) {
    out += "# TYPE ucp_ucpd_";
    out += name;
    out += ' ';
    out += type;
    out += "\nucp_ucpd_";
    out += name;
    out += ' ';
    out += std::to_string(v);
    out += '\n';
  };
  metric("accepted", "counter", s.accepted);
  metric("shed", "counter", s.shed);
  metric("requests", "counter", s.requests);
  metric("malformed", "counter", s.malformed);
  metric("dropped", "counter", s.dropped);
  metric("ok", "counter", s.ok);
  metric("degraded", "counter", s.degraded);
  metric("errors", "counter", s.errors);
  metric("cache_hits", "counter", s.cache_hits);
  metric("replayed", "counter", s.replayed);
  metric("retried", "counter", s.retried);
  metric("admin_scrapes", "counter", s.admin_scrapes);
  metric("admin_dropped", "counter", s.admin_dropped);
  metric("flight_dumps", "counter", s.flight_dumps);
  metric("watchdog_fires", "counter", s.watchdog_fires);
  metric("trace_dumps", "counter", s.trace_dumps);
  metric("queue_depth", "gauge", s.queue_depth);
  metric("inflight", "gauge", s.inflight);
  return out;
}

}  // namespace

struct Server::Impl {
  explicit Impl(ServerOptions opts) : options(std::move(opts)) {}

  ServerOptions options;
  support::Socket listener;
  std::uint16_t port = 0;
  bool started = false;
  std::int64_t start_at_ms = 0;  ///< steady-clock ms at start(), for uptime

  // --- admin plane ---------------------------------------------------------
  support::Socket admin_listener;
  std::uint16_t admin_port = 0;
  std::thread admin_thread;

  // --- admission queue -----------------------------------------------------
  std::mutex queue_mutex;
  std::condition_variable queue_cv;
  std::deque<support::Socket> queue;
  bool draining = false;

  std::thread accept_thread;
  std::vector<std::thread> worker_threads;
  std::thread watchdog_thread;
  std::atomic<bool> watchdog_stop{false};

  // One cancellation token per worker; the watchdog cancels the slot whose
  // armed wall-clock deadline has passed (same shape as the sweep's).
  struct WorkerSlot {
    CancellationToken token;
    std::atomic<std::int64_t> cancel_at_ms{-1};
  };
  std::vector<std::unique_ptr<WorkerSlot>> slots;

  // --- idempotent-replay journal -------------------------------------------
  std::mutex journal_mutex;
  RequestJournal journal;
  std::string journal_note;

  // --- warm cross-request caches -------------------------------------------
  // Response cache: fingerprint -> full Response of a computed request.
  // Invalidation is structural: the fingerprint covers the program text,
  // cache geometry, tech node and budgets, so any semantic change misses by
  // construction; entries only leave by LRU eviction.
  std::mutex response_cache_mutex;
  std::list<std::pair<std::string, Response>> response_lru;
  std::unordered_map<std::string,
                     std::list<std::pair<std::string, Response>>::iterator>
      response_index;

  // IPET-system cache: program-text hash -> shared constraint system.
  // Prefetch insertion never alters the CFG, so re-requests of the same
  // program share the context graph + canonical basis bit-identically,
  // exactly like the sweep's per-program sharing.
  struct ProgramIpet {
    // The graph (and through it the IPET system) holds pointers into the
    // program it was built from, and this entry outlives the request that
    // built it — so it must own its own copy, not reference the request's.
    ir::Program program;
    analysis::ContextGraph graph;
    wcet::IpetSystem ipet;
    explicit ProgramIpet(const ir::Program& request_program)
        : program(request_program), graph(program), ipet(graph) {}
  };
  std::mutex ipet_cache_mutex;
  std::list<std::pair<std::string, std::shared_ptr<ProgramIpet>>> ipet_lru;
  std::unordered_map<
      std::string,
      std::list<std::pair<std::string, std::shared_ptr<ProgramIpet>>>::
          iterator>
      ipet_index;

  // --- stats ---------------------------------------------------------------
  std::atomic<std::uint64_t> n_accepted{0}, n_shed{0}, n_requests{0},
      n_malformed{0}, n_dropped{0}, n_ok{0}, n_degraded{0}, n_errors{0},
      n_cache_hits{0}, n_replayed{0}, n_retried{0}, n_admin_scrapes{0},
      n_admin_dropped{0}, n_flight_dumps{0}, n_watchdog_fires{0},
      n_trace_dumps{0};
  std::atomic<std::int64_t> n_inflight{0};
  std::atomic<std::int64_t> last_flight_dump_ms{-1};

  bool workers_held() const {
    return options.hold_workers &&
           options.hold_workers->load(std::memory_order_relaxed);
  }

  // ---------------------------------------------------------------------
  void accept_loop();
  void worker_loop(WorkerSlot& slot);
  void watchdog_loop();
  void admin_loop();
  void handle_admin(support::Socket conn);
  std::string admin_payload(const std::string& verb, bool& ok);
  ServerStats collect_stats();
  void dump_flight(const std::string& reason, bool force);
  void maybe_dump_request_trace(const Request& request, std::uint64_t ctx,
                                bool sampled);
  void shed_connection(support::Socket conn);
  void handle_connection(support::Socket conn, WorkerSlot& slot);
  Response process_request(const Request& request, WorkerSlot& slot);
  Response run_pipeline(const Request& request, WorkerSlot& slot);
  std::shared_ptr<ProgramIpet> ipet_for(const std::string& program_text,
                                        const ir::Program& program);
  void cache_response(const std::string& fingerprint,
                      const Response& response);
  bool cached_response(const std::string& fingerprint, Response& out);
  void journal_terminal(const std::string& id, const std::string& fingerprint,
                        const Response& response);
  void send_response(const support::Socket& conn, const Response& response);
  void count_status(const Response& response);
};

void Server::Impl::accept_loop() {
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(queue_mutex);
      if (draining) return;
    }
    Expected<support::Socket> conn = tcp_accept(listener, 100);
    if (!conn.ok()) continue;       // transient accept failure
    if (!conn->valid()) continue;   // timeout: re-check the drain flag
    if (UCP_FAULT_POINT("serve.accept")) {
      // Injected accept-boundary failure: the connection is dropped on the
      // floor, exactly like a peer reset between accept and hand-off.
      n_dropped.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    bool admit = false;
    std::size_t depth = 0;
    {
      std::lock_guard<std::mutex> lock(queue_mutex);
      if (!draining && queue.size() < options.queue_capacity) {
        queue.push_back(std::move(*conn));
        depth = queue.size();
        admit = true;
      }
    }
    if (admit) {
      n_accepted.fetch_add(1, std::memory_order_relaxed);
      if (obs::enabled()) {
        obs::Registry& reg = obs::registry();
        reg.gauge("serve.queue_depth").set(static_cast<std::int64_t>(depth));
        reg.gauge("serve.queue_depth_peak")
            .set_max(static_cast<std::int64_t>(depth));
      }
      queue_cv.notify_one();
    } else {
      shed_connection(std::move(*conn));
    }
  }
}

void Server::Impl::shed_connection(support::Socket conn) {
  // Load shedding happens before a single request byte is read: the
  // structured kOverloaded reply (with an advisory back-off) costs one
  // small write, so a saturated daemon stays responsive instead of letting
  // the accept backlog grow without bound. The id is unknown at this point;
  // "-" marks an un-attributed response.
  n_shed.fetch_add(1, std::memory_order_relaxed);
  if (obs::enabled())
    obs::registry().counter("serve.shed").increment();
  Response r = error_response(
      ErrorCode::kOverloaded,
      "admission queue full (" + std::to_string(options.queue_capacity) +
          " pending); retry after " +
          std::to_string(options.retry_after_ms) + "ms");
  r.id = "-";
  r.retry_after_ms = options.retry_after_ms;
  (void)write_all(conn, serialize_response(r));
}

void Server::Impl::worker_loop(WorkerSlot& slot) {
  CancelScope scope(&slot.token);
  for (;;) {
    support::Socket conn;
    {
      std::unique_lock<std::mutex> lock(queue_mutex);
      for (;;) {
        if (!queue.empty() && !workers_held()) break;
        if (draining && queue.empty()) return;
        // Polling wait: the test-only hold gate is released without a
        // notification, and drain must never strand a worker.
        queue_cv.wait_for(lock, std::chrono::milliseconds(50));
      }
      conn = std::move(queue.front());
      queue.pop_front();
      if (obs::enabled())
        obs::registry()
            .gauge("serve.queue_depth")
            .set(static_cast<std::int64_t>(queue.size()));
    }
    handle_connection(std::move(conn), slot);
  }
}

void Server::Impl::watchdog_loop() {
  while (!watchdog_stop.load(std::memory_order_relaxed)) {
    const std::int64_t now = now_ms();
    for (const std::unique_ptr<WorkerSlot>& s : slots) {
      const std::int64_t deadline =
          s->cancel_at_ms.load(std::memory_order_relaxed);
      if (deadline >= 0 && now >= deadline) {
        s->token.cancel();
        s->cancel_at_ms.store(-1, std::memory_order_relaxed);
        n_watchdog_fires.fetch_add(1, std::memory_order_relaxed);
        if (obs::enabled())
          obs::registry().counter("serve.watchdog_fires").increment();
        obs::log(obs::LogLevel::kWarn, "serve", "watchdog_fire",
                 "wall-clock deadline enforced; cancelling the worker slot",
                 obs::LogFields().num("overdue_ms",
                                      static_cast<std::int64_t>(
                                          now - deadline)));
        // A fired deadline is exactly the "what was the daemon doing?"
        // moment the flight recorder exists for.
        dump_flight("watchdog_fire", /*force=*/false);
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

void Server::Impl::send_response(const support::Socket& conn,
                                 const Response& response) {
  if (UCP_FAULT_POINT("serve.respond")) {
    // Injected respond-boundary failure: connection dropped after the work
    // (and the journal append) happened — the client's retry with the same
    // id replays the journaled response instead of recomputing.
    n_dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Status written = write_all(conn, serialize_response(response));
  if (!written.ok()) n_dropped.fetch_add(1, std::memory_order_relaxed);
}

void Server::Impl::count_status(const Response& response) {
  switch (response.status) {
    case ResponseStatus::kOk:
      n_ok.fetch_add(1, std::memory_order_relaxed);
      break;
    case ResponseStatus::kDegraded:
      n_degraded.fetch_add(1, std::memory_order_relaxed);
      break;
    case ResponseStatus::kError:
      n_errors.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  if (obs::enabled()) {
    obs::Registry& reg = obs::registry();
    static obs::Counter& c_ok = reg.counter("serve.responses_ok");
    static obs::Counter& c_degraded =
        reg.counter("serve.responses_degraded");
    static obs::Counter& c_errors = reg.counter("serve.responses_error");
    (response.status == ResponseStatus::kOk
         ? c_ok
         : response.status == ResponseStatus::kDegraded ? c_degraded
                                                        : c_errors)
        .increment();
  }
}

void Server::Impl::handle_connection(support::Socket conn, WorkerSlot& slot) {
  obs::Span span("serve.request");
  const auto started_at = std::chrono::steady_clock::now();
  if (UCP_FAULT_POINT("serve.read")) {
    n_dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  support::LineReader reader(conn, options.limits.max_line_bytes,
                             options.io_timeout_ms);
  Expected<Request> request = read_request(reader, options.limits);
  const bool parse_fault = UCP_FAULT_POINT("serve.parse");
  Response response;
  if (parse_fault || !request.ok()) {
    if (!parse_fault && request.code() == ErrorCode::kNotFound) {
      // Peer connected and hung up without a byte: a clean disconnect, not
      // a malformed request.
      n_dropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    n_malformed.fetch_add(1, std::memory_order_relaxed);
    if (obs::enabled())
      obs::registry().counter("serve.malformed").increment();
    response = parse_fault
                   ? error_response(ErrorCode::kFaultInjected,
                                    "injected request-parse failure")
                   : error_response(request.code(),
                                    request.status().detail());
    response.id = "-";
  } else {
    const std::uint64_t seq =
        n_requests.fetch_add(1, std::memory_order_relaxed);
    // Correlation id for everything this request triggers: spans and
    // flight records opened under the scope carry it, so one request's
    // work is separable from a loaded daemon's interleaved trace. Zero
    // means "uncorrelated", so an unlucky hash is nudged off it.
    std::uint64_t ctx = fnv1a(request->id);
    if (ctx == 0) ctx = 1;
    const bool sampled = options.trace_sample_every > 0 &&
                         obs::trace_enabled() &&
                         seq % options.trace_sample_every == 0;
    const std::int64_t inflight =
        n_inflight.fetch_add(1, std::memory_order_relaxed) + 1;
    if (obs::enabled()) obs::registry().gauge("serve.inflight").set(inflight);
    {
      obs::TraceContextScope ctx_scope(ctx);
      response = process_request(*request, slot);
    }
    n_inflight.fetch_sub(1, std::memory_order_relaxed);
    if (obs::enabled())
      obs::registry()
          .gauge("serve.inflight")
          .set(n_inflight.load(std::memory_order_relaxed));
    maybe_dump_request_trace(*request, ctx, sampled);
    response.id = request->id;
    if (response.attempts > 1)
      n_retried.fetch_add(1, std::memory_order_relaxed);
  }
  count_status(response);
  send_response(conn, response);
  if (obs::enabled()) {
    obs::Registry& reg = obs::registry();
    static obs::Counter& c_requests = reg.counter("serve.requests");
    static obs::Histogram& h_us = reg.histogram("serve.request_us");
    c_requests.increment();
    h_us.record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - started_at)
            .count()));
  }
}

Response Server::Impl::process_request(const Request& request,
                                       WorkerSlot& slot) {
  const std::string fingerprint = request_fingerprint(request);

  // Idempotent replay: a journaled id answers from the journal — byte
  // identically, however the daemon has been killed and restarted in
  // between — and an id reused for a *different* request body is a client
  // bug, reported as such rather than silently serving stale bytes.
  {
    std::lock_guard<std::mutex> lock(journal_mutex);
    const RequestJournal::Entry* entry = journal.find(request.id);
    if (entry) {
      if (entry->fingerprint != fingerprint)
        return error_response(
            ErrorCode::kMalformedInput,
            "request id '" + request.id +
                "' was already used for a different request body");
      Expected<Response> replay =
          parse_response_text(entry->response_text, options.limits);
      if (replay.ok()) {
        replay->replayed = true;
        n_replayed.fetch_add(1, std::memory_order_relaxed);
        if (obs::enabled())
          obs::registry().counter("serve.replayed").increment();
        return std::move(replay).value();
      }
      // A journaled response that no longer parses would be a bug; fall
      // through and recompute rather than fail the request.
    }
  }

  // Warm response cache: a fingerprint hit skips the whole pipeline. The
  // hit is journaled under the *new* id so the idempotency contract holds
  // for it too.
  {
    Response hit;
    if (cached_response(fingerprint, hit)) {
      hit.id = request.id;
      hit.cached = true;
      hit.replayed = false;
      n_cache_hits.fetch_add(1, std::memory_order_relaxed);
      if (obs::enabled())
        obs::registry().counter("serve.cache_hits").increment();
      journal_terminal(request.id, fingerprint, hit);
      return hit;
    }
  }

  Response response = run_pipeline(request, slot);
  response.id = request.id;

  // Only full pipeline products enter the response cache; malformed-input
  // verdicts are cheaper to recompute than to cache, and replays/hits must
  // not re-enter (their flags differ per serving).
  if (response.code != ErrorCode::kMalformedInput &&
      response.code != ErrorCode::kFaultInjected)
    cache_response(fingerprint, response);
  journal_terminal(request.id, fingerprint, response);
  return response;
}

Response Server::Impl::run_pipeline(const Request& request,
                                    WorkerSlot& slot) {
  obs::Span span("serve.process");
  if (UCP_FAULT_POINT("serve.process")) {
    // Injected pipeline failure, contained to this request: the client gets
    // a structured error, the daemon keeps serving.
    return error_response(ErrorCode::kFaultInjected,
                          "injected failure at the request pipeline "
                          "boundary");
  }

  // A well-framed request whose payload is not a valid program is still
  // malformed input — same counter as framing rejections, but the reply is
  // attributed to the request id.
  auto malformed_payload = [&](const std::string& detail) {
    n_malformed.fetch_add(1, std::memory_order_relaxed);
    if (obs::enabled())
      obs::registry().counter("serve.malformed").increment();
    return error_response(ErrorCode::kMalformedInput, detail);
  };
  Expected<ir::Program> parsed =
      ir::from_text_checked(request.program_text, options.limits.codec);
  if (!parsed.ok()) return malformed_payload(parsed.status().detail());
  const std::vector<std::string> issues = ir::verify(*parsed);
  if (!issues.empty())
    return malformed_payload(
        "program failed verification (" + std::to_string(issues.size()) +
        " issue" + (issues.size() == 1 ? "" : "s") + "): " + issues.front());

  const ir::Program& program = *parsed;
  const cache::NamedCacheConfig named{request.config_id, request.config};
  const std::vector<energy::TechNode> techs{request.tech};
  const std::shared_ptr<ProgramIpet> shared =
      ipet_for(request.program_text, program);
  const wcet::IpetSystem* shared_ipet = shared ? &shared->ipet : nullptr;

  const std::uint32_t deadline_ms = request.deadline_ms > 0
                                        ? request.deadline_ms
                                        : options.default_deadline_ms;
  const std::uint32_t max_attempts =
      request.attempts > 0 ? request.attempts : options.default_attempts;

  auto arm_watchdog = [&](std::int64_t scale) {
    if (deadline_ms > 0)
      slot.cancel_at_ms.store(
          now_ms() + static_cast<std::int64_t>(deadline_ms) * scale,
          std::memory_order_relaxed);
  };
  auto disarm_watchdog = [&] {
    slot.cancel_at_ms.store(-1, std::memory_order_relaxed);
  };
  auto fill_failed = [&](exp::UseCaseResult& row, ErrorCode code,
                         const std::string& stage,
                         const std::string& detail) {
    row = exp::UseCaseResult{};
    row.program = "request";
    row.config_id = request.config_id;
    row.config = request.config;
    row.tech = request.tech;
    row.outcome = exp::CaseOutcome::kFailed;
    row.fail_code = code;
    row.fail_stage = stage;
    row.fail_detail = detail;
  };
  // One ladder attempt, every exception contained — a pathological program
  // must never take the daemon down.
  auto run_attempt = [&](const core::OptimizerOptions& opt_options,
                         exp::UseCaseResult& row, ir::Program& optimized) {
    optimized = program;
    try {
      std::vector<exp::UseCaseResult> rows = exp::run_use_case_group(
          program, "request", named, techs, opt_options, nullptr,
          shared_ipet, options.audit_soundness, &optimized);
      row = std::move(rows.front());
    } catch (const CancelledError& e) {
      fill_failed(row, ErrorCode::kCancelled, "cancelled", e.what());
      optimized = program;
    } catch (const std::exception& e) {
      fill_failed(row, ErrorCode::kInternal, "task", e.what());
      optimized = program;
    } catch (...) {
      fill_failed(row, ErrorCode::kInternal, "task",
                  "non-standard exception");
      optimized = program;
    }
  };

  // The retry-with-degradation ladder, rung for rung the sweep's
  // (exp/harness.cpp run_task): configured budgets; escalated budgets with
  // a fresh token; the Theorem-1 identity transform as the terminal rung —
  // recorded as *degraded* with the original failure as its cause.
  std::uint32_t attempts = 1;
  exp::UseCaseResult row;
  ir::Program optimized = program;
  slot.token.reset();
  arm_watchdog(1);
  run_attempt(options.optimizer, row, optimized);
  disarm_watchdog();

  if (max_attempts >= 2 && row.quarantined() && retryable(row.fail_code)) {
    ++attempts;
    core::OptimizerOptions escalated = options.optimizer;
    escalated.max_evaluations *= 2;
    if (escalated.deadline_ms > 0) escalated.deadline_ms *= 4;
    slot.token.reset();
    exp::UseCaseResult retry_row;
    ir::Program retry_optimized = program;
    arm_watchdog(4);
    run_attempt(escalated, retry_row, retry_optimized);
    disarm_watchdog();
    if (rank(retry_row) > rank(row)) {
      row = std::move(retry_row);
      optimized = std::move(retry_optimized);
      if (row.outcome == exp::CaseOutcome::kCompleted)
        row.degradation_level = 1;
    }
  }
  if (max_attempts >= 3 && row.quarantined() && retryable(row.fail_code)) {
    ++attempts;
    core::OptimizerOptions identity = options.optimizer;
    identity.max_passes = 0;  // ship the input program
    slot.token.reset();
    exp::UseCaseResult fallback_row;
    ir::Program fallback_optimized = program;
    arm_watchdog(4);
    run_attempt(identity, fallback_row, fallback_optimized);
    disarm_watchdog();
    if (fallback_row.outcome == exp::CaseOutcome::kCompleted) {
      // The identity transform measured clean under escalated patience:
      // the response is *degraded* — sound, with the original failure as
      // its recorded cause — never an error.
      exp::UseCaseResult repaired = std::move(fallback_row);
      repaired.outcome = exp::CaseOutcome::kDegraded;
      repaired.fail_stage = row.fail_stage;
      repaired.fail_code = row.fail_code;
      repaired.fail_detail =
          row.fail_detail + " (identity-transform fallback)";
      row = std::move(repaired);
      optimized = std::move(fallback_optimized);
    } else if (rank(fallback_row) > rank(row)) {
      row = std::move(fallback_row);
      optimized = std::move(fallback_optimized);
    }
  }
  row.attempts = attempts;
  if (row.outcome == exp::CaseOutcome::kDegraded)
    row.degradation_level = 2;
  else if (row.outcome == exp::CaseOutcome::kFailed)
    row.degradation_level = 3;

  if (row.audit.performed && row.audit.violated) {
    // A soundness-audit violation is the worst thing this daemon can
    // observe about itself; capture the flight tail while the evidence is
    // still in the rings.
    obs::log(obs::LogLevel::kError, "serve", "audit_violation",
             row.fail_detail,
             obs::LogFields().str("request", request.id));
    dump_flight("audit_violation", /*force=*/false);
  }

  // --- row -> response -----------------------------------------------------
  Response response;
  response.attempts = row.attempts;
  response.degradation_level = row.degradation_level;
  response.audit = !row.audit.performed
                       ? "skipped"
                       : row.audit.violated
                             ? "violated"
                             : row.audit.inconclusive ? "inconclusive"
                                                      : "clean";
  switch (row.outcome) {
    case exp::CaseOutcome::kCompleted:
      response.status = ResponseStatus::kOk;
      response.code = ErrorCode::kOk;
      break;
    case exp::CaseOutcome::kDegraded:
      response.status = ResponseStatus::kDegraded;
      response.code = row.fail_code;
      response.detail = row.fail_detail;
      break;
    case exp::CaseOutcome::kFailed:
      response.status = ResponseStatus::kError;
      response.code = row.fail_code;
      response.detail = row.fail_detail;
      break;
  }
  if (row.outcome != exp::CaseOutcome::kFailed) {
    response.tau_original = row.original.tau_wcet;
    response.tau_optimized = row.optimized.tau_wcet;
    response.mem_cycles_original = row.original.run.mem_cycles;
    response.mem_cycles_optimized = row.optimized.run.mem_cycles;
    response.energy_original_nj = row.original.energy.total_nj();
    response.energy_optimized_nj = row.optimized.energy.total_nj();
    response.prefetches = row.report.insertions.size();
    // The program this response vouches for: the optimizer's output on ok,
    // the canonicalized input (identity transform) on degraded.
    response.program_text = ir::to_text(
        row.outcome == exp::CaseOutcome::kCompleted ? optimized : program);
  }
  return response;
}

std::shared_ptr<Server::Impl::ProgramIpet> Server::Impl::ipet_for(
    const std::string& program_text, const ir::Program& program) {
  if (options.ipet_cache_entries == 0) return nullptr;
  const std::string key = to_hex(fnv1a(program_text));
  {
    std::lock_guard<std::mutex> lock(ipet_cache_mutex);
    auto it = ipet_index.find(key);
    if (it != ipet_index.end()) {
      ipet_lru.splice(ipet_lru.begin(), ipet_lru, it->second);
      return it->second->second;
    }
  }
  std::shared_ptr<ProgramIpet> built;
  try {
    built = std::make_shared<ProgramIpet>(program);
  } catch (...) {
    // Construction failure: the request measures through its own path and
    // quarantines per case, exactly like the sweep with an empty slot.
    return nullptr;
  }
  std::lock_guard<std::mutex> lock(ipet_cache_mutex);
  auto it = ipet_index.find(key);
  if (it != ipet_index.end()) return it->second->second;  // raced; share
  ipet_lru.emplace_front(key, built);
  ipet_index[key] = ipet_lru.begin();
  while (ipet_lru.size() > options.ipet_cache_entries) {
    ipet_index.erase(ipet_lru.back().first);
    ipet_lru.pop_back();
  }
  return built;
}

bool Server::Impl::cached_response(const std::string& fingerprint,
                                   Response& out) {
  if (options.response_cache_entries == 0) return false;
  std::lock_guard<std::mutex> lock(response_cache_mutex);
  auto it = response_index.find(fingerprint);
  if (it == response_index.end()) return false;
  response_lru.splice(response_lru.begin(), response_lru, it->second);
  out = it->second->second;
  return true;
}

void Server::Impl::cache_response(const std::string& fingerprint,
                                  const Response& response) {
  if (options.response_cache_entries == 0) return;
  std::lock_guard<std::mutex> lock(response_cache_mutex);
  auto it = response_index.find(fingerprint);
  if (it != response_index.end()) return;  // first computation wins
  response_lru.emplace_front(fingerprint, response);
  response_index[fingerprint] = response_lru.begin();
  while (response_lru.size() > options.response_cache_entries) {
    response_index.erase(response_lru.back().first);
    response_lru.pop_back();
  }
}

void Server::Impl::journal_terminal(const std::string& id,
                                    const std::string& fingerprint,
                                    const Response& response) {
  std::lock_guard<std::mutex> lock(journal_mutex);
  if (!journal.active()) return;
  // Journaled before the client sees a byte: a crash after this line
  // replays; a crash before it recomputes — either way the id's answer is
  // well-defined.
  Response stored = response;
  stored.replayed = false;
  Status appended =
      journal.append(id, fingerprint, serialize_response(stored));
  if (!appended.ok())
    obs::log(obs::LogLevel::kWarn, "serve", "journal_disabled",
             appended.message(), obs::LogFields().str("request", id));
}

// --- ops plane -------------------------------------------------------------

void Server::Impl::admin_loop() {
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(queue_mutex);
      if (draining) return;
    }
    Expected<support::Socket> conn = tcp_accept(admin_listener, 100);
    if (!conn.ok()) continue;
    if (!conn->valid()) continue;  // timeout: re-check the drain flag
    // Scrapes are served inline on the admin thread: one small read, one
    // framed write, never touching the worker pool — an operator can
    // always get HEALTH out of a daemon whose workers are saturated.
    handle_admin(std::move(*conn));
  }
}

void Server::Impl::handle_admin(support::Socket conn) {
  obs::Span span("serve.admin");
  support::LineReader reader(conn, 256, 2000);
  Expected<std::string> line = reader.read_line();
  if (!line.ok()) {
    n_admin_dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  bool ok = true;
  const std::string payload = admin_payload(*line, ok);
  std::string reply = "ucp-admin v1\nverb " + *line + "\nstatus " +
                      (ok ? "ok" : "error") + "\npayload " +
                      std::to_string(payload.size()) + "\n" + payload;
  if (UCP_FAULT_POINT("serve.admin_write")) {
    // Injected scrape-write failure: the admin connection is dropped on
    // the floor — and nothing else happens. The containment property the
    // battery pins: a failed scrape never perturbs an in-flight request.
    n_admin_dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Status written = write_all(conn, reply);
  if (!written.ok()) {
    n_admin_dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  n_admin_scrapes.fetch_add(1, std::memory_order_relaxed);
  if (obs::enabled())
    obs::registry().counter("serve.admin_scrapes").increment();
}

std::string Server::Impl::admin_payload(const std::string& verb, bool& ok) {
  const std::int64_t uptime_ms = now_ms() - start_at_ms;
  if (verb == "HEALTH") {
    bool drain;
    std::size_t depth;
    {
      std::lock_guard<std::mutex> lock(queue_mutex);
      drain = draining;
      depth = queue.size();
    }
    std::string out = "{\"status\":\"";
    out += drain ? "draining" : "serving";
    out += "\",\"uptime_ms\":" + std::to_string(uptime_ms);
    out += ",\"queue_depth\":" + std::to_string(depth);
    out += ",\"inflight\":" +
           std::to_string(n_inflight.load(std::memory_order_relaxed));
    out += ",\"workers\":" + std::to_string(slots.size());
    out += ",\"build\":" + obs::build_info_json();
    out += "}\n";
    return out;
  }
  if (verb == "STATS") {
    return "{\"server\":" + stats_json(collect_stats()) +
           ",\"uptime_ms\":" + std::to_string(uptime_ms) +
           ",\"metrics\":" + obs::snapshot_json(obs::registry().snapshot()) +
           "}\n";
  }
  if (verb == "STATS prom") {
    return stats_prom(collect_stats()) +
           obs::prometheus_text(obs::registry().snapshot());
  }
  if (verb == "PROFILE") {
    std::string table = obs::profile_table(obs::snapshot_trace());
    if (table.empty()) table = "no spans recorded (tracing disabled?)\n";
    return table;
  }
  if (verb == "FLIGHT") {
    if (!obs::flight_enabled()) {
      ok = false;
      return "flight recorder disabled\n";
    }
    n_flight_dumps.fetch_add(1, std::memory_order_relaxed);
    return obs::flight_dump_json("admin_scrape");
  }
  ok = false;
  return "unknown admin verb '" + verb +
         "' (expected HEALTH | STATS [prom] | PROFILE | FLIGHT)\n";
}

ServerStats Server::Impl::collect_stats() {
  ServerStats s;
  s.accepted = n_accepted.load(std::memory_order_relaxed);
  s.shed = n_shed.load(std::memory_order_relaxed);
  s.requests = n_requests.load(std::memory_order_relaxed);
  s.malformed = n_malformed.load(std::memory_order_relaxed);
  s.dropped = n_dropped.load(std::memory_order_relaxed);
  s.ok = n_ok.load(std::memory_order_relaxed);
  s.degraded = n_degraded.load(std::memory_order_relaxed);
  s.errors = n_errors.load(std::memory_order_relaxed);
  s.cache_hits = n_cache_hits.load(std::memory_order_relaxed);
  s.replayed = n_replayed.load(std::memory_order_relaxed);
  s.retried = n_retried.load(std::memory_order_relaxed);
  s.admin_scrapes = n_admin_scrapes.load(std::memory_order_relaxed);
  s.admin_dropped = n_admin_dropped.load(std::memory_order_relaxed);
  s.flight_dumps = n_flight_dumps.load(std::memory_order_relaxed);
  s.watchdog_fires = n_watchdog_fires.load(std::memory_order_relaxed);
  s.trace_dumps = n_trace_dumps.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(queue_mutex);
    s.queue_depth = queue.size();
  }
  s.inflight = static_cast<std::size_t>(
      std::max<std::int64_t>(0, n_inflight.load(std::memory_order_relaxed)));
  return s;
}

void Server::Impl::dump_flight(const std::string& reason, bool force) {
  if (!obs::flight_enabled()) return;
  if (!force) {
    // Trigger-initiated dumps are rate limited: a watchdog storm must not
    // turn the recorder into an I/O amplifier. (Benign race on the stamp:
    // two concurrent triggers can both dump, never more.)
    const std::int64_t now = now_ms();
    const std::int64_t last =
        last_flight_dump_ms.load(std::memory_order_relaxed);
    if (last >= 0 &&
        now - last <
            static_cast<std::int64_t>(options.flight_dump_min_gap_ms))
      return;
    last_flight_dump_ms.store(now, std::memory_order_relaxed);
  }
  n_flight_dumps.fetch_add(1, std::memory_order_relaxed);
  const std::size_t records = obs::flight_snapshot().size();
  if (!options.flight_path.empty()) {
    Status written = obs::write_flight_file(options.flight_path, reason);
    if (written.ok()) {
      obs::log(obs::LogLevel::kInfo, "serve", "flight_dump",
               options.flight_path,
               obs::LogFields()
                   .str("reason", reason)
                   .num(
                       "records",
                       static_cast<std::uint64_t>(records)));
    } else {
      // Observer discipline: a failed dump degrades to a warning; it may
      // never compound the failure that triggered it.
      obs::log(obs::LogLevel::kWarn, "serve", "flight_dump_failed",
               written.message(), obs::LogFields().str("reason", reason));
    }
  } else {
    obs::log(obs::LogLevel::kWarn, "serve", "flight_dump",
             "no flight_path configured; recorder tail stays in memory",
             obs::LogFields()
                 .str("reason", reason)
                 .num("records", static_cast<std::uint64_t>(records)));
  }
}

void Server::Impl::maybe_dump_request_trace(const Request& request,
                                            std::uint64_t ctx, bool sampled) {
  if (options.trace_sample_every == 0 || !obs::trace_enabled()) return;
  // Every request's spans are drained per request — the sampled ones
  // written, the rest discarded — so a long-lived daemon's trace memory is
  // bounded by requests in flight, not requests ever served.
  std::vector<obs::TraceEvent> events = obs::drain_trace_context(ctx);
  if (!sampled || events.empty()) return;
  const std::string path =
      options.trace_dir + "/" + trace_file_name(request.id);
  Status written = obs::write_trace_file(path, events);
  if (written.ok()) {
    n_trace_dumps.fetch_add(1, std::memory_order_relaxed);
    obs::log(obs::LogLevel::kInfo, "serve", "trace_sampled", path,
             obs::LogFields()
                 .str("request", request.id)
                 .str("ctx", to_hex(ctx))
                 .num("spans", static_cast<std::uint64_t>(events.size())));
  } else {
    obs::log(obs::LogLevel::kWarn, "serve", "trace_write_failed",
             written.message(), obs::LogFields().str("request", request.id));
  }
}

// ---------------------------------------------------------------------------

Server::Server(ServerOptions options)
    : impl_(std::make_unique<Impl>(std::move(options))) {}

Server::~Server() { stop(); }

Status Server::start() {
  Impl& impl = *impl_;
  UCP_REQUIRE(!impl.started, "Server::start() called twice");
  Expected<support::Socket> listener = support::tcp_listen(
      impl.options.port,
      static_cast<int>(impl.options.queue_capacity + impl.options.workers) +
          16);
  if (!listener.ok()) return listener.status();
  impl.listener = std::move(listener).value();
  Expected<std::uint16_t> port = support::local_port(impl.listener);
  if (!port.ok()) return port.status();
  impl.port = *port;
  impl.start_at_ms = now_ms();

  if (impl.options.admin_enabled) {
    Expected<support::Socket> admin =
        support::tcp_listen(impl.options.admin_port, 8);
    if (!admin.ok()) return admin.status();
    impl.admin_listener = std::move(admin).value();
    Expected<std::uint16_t> admin_port =
        support::local_port(impl.admin_listener);
    if (!admin_port.ok()) return admin_port.status();
    impl.admin_port = *admin_port;
  }

  if (!impl.options.journal_path.empty()) {
    Status opened = impl.journal.open(impl.options.journal_path);
    if (!opened.ok()) return opened;
    impl.journal_note = impl.journal.note();
  } else {
    impl.journal_note = "request journal disabled (no path)";
  }

  const std::uint32_t workers = std::max(1u, impl.options.workers);
  for (std::uint32_t w = 0; w < workers; ++w)
    impl.slots.push_back(std::make_unique<Impl::WorkerSlot>());
  impl.started = true;
  impl.accept_thread = std::thread([&impl] { impl.accept_loop(); });
  for (std::uint32_t w = 0; w < workers; ++w)
    impl.worker_threads.emplace_back(
        [&impl, w] { impl.worker_loop(*impl.slots[w]); });
  impl.watchdog_thread = std::thread([&impl] { impl.watchdog_loop(); });
  if (impl.options.admin_enabled)
    impl.admin_thread = std::thread([&impl] { impl.admin_loop(); });
  obs::log(obs::LogLevel::kInfo, "serve", "started", impl.journal_note,
           obs::LogFields()
               .num("port", static_cast<std::uint64_t>(impl.port))
               .num("admin_port", static_cast<std::uint64_t>(impl.admin_port))
               .num("workers", static_cast<std::uint64_t>(workers)));
  return Status::Ok();
}

std::uint16_t Server::port() const { return impl_->port; }

std::uint16_t Server::admin_port() const { return impl_->admin_port; }

void Server::dump_flight(const std::string& reason, bool force) {
  impl_->dump_flight(reason, force);
}

void Server::stop() {
  Impl& impl = *impl_;
  if (!impl.started) return;
  {
    std::lock_guard<std::mutex> lock(impl.queue_mutex);
    impl.draining = true;
  }
  impl.queue_cv.notify_all();
  if (impl.accept_thread.joinable()) impl.accept_thread.join();
  for (std::thread& t : impl.worker_threads)
    if (t.joinable()) t.join();
  impl.worker_threads.clear();
  impl.watchdog_stop.store(true, std::memory_order_relaxed);
  if (impl.watchdog_thread.joinable()) impl.watchdog_thread.join();
  if (impl.admin_thread.joinable()) impl.admin_thread.join();
  impl.listener.close();
  impl.admin_listener.close();
  {
    std::lock_guard<std::mutex> lock(impl.journal_mutex);
    impl.journal.close();
  }
  impl.started = false;
  obs::log(obs::LogLevel::kInfo, "serve", "stopped", {},
           obs::LogFields().num(
               "requests",
               impl.n_requests.load(std::memory_order_relaxed)));
}

ServerStats Server::stats() const { return impl_->collect_stats(); }

std::string Server::journal_note() const { return impl_->journal_note; }

}  // namespace ucp::serve
