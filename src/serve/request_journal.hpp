#pragma once

// Crash-safe request journal of the ucpd daemon — the idempotent-replay
// store. Every *terminal* response (ok / degraded / structured error, but
// never overload sheds) is appended, checksummed and fsync'd before the
// bytes go to the client, so a daemon killed at any instant and restarted
// on the same journal answers a re-sent request id with the byte-identical
// response instead of recomputing (or worse, recomputing differently).
//
// Same durability discipline as the sweep journal (exp/journal.hpp):
// fsync'd magic header, `\`/`\c`/`\n` cell escaping, trailing FNV-1a row
// checksum, torn-tail truncation on open. Rows map a request id to its
// request fingerprint and full serialized response:
//
//   req,<id>,<fingerprint>,<escaped response bytes>,<checksum>
//
// The fingerprint pins idempotency semantics: a replayed id with a
// matching fingerprint returns the stored response (flagged `replayed 1`);
// the same id with a *different* fingerprint is a client bug and gets a
// structured kMalformedInput error.

#include <cstdio>
#include <map>
#include <string>

#include "support/status.hpp"

namespace ucp::serve {

class RequestJournal {
 public:
  struct Entry {
    std::string fingerprint;
    std::string response_text;  ///< serialize_response bytes, replayed 0
  };

  RequestJournal() = default;
  ~RequestJournal() { close(); }
  RequestJournal(const RequestJournal&) = delete;
  RequestJournal& operator=(const RequestJournal&) = delete;

  /// Opens (or creates) the journal at `path`, restoring every valid row
  /// into the in-memory replay map. A missing file starts fresh; a bad
  /// header resets the file; a torn tail is truncated away. After open()
  /// the journal is active() and `note()` says what happened.
  Status open(const std::string& path);

  /// Appends one terminal response durably (fwrite + fflush + fsync) and
  /// records it in the replay map. Sits behind the serve.journal_write
  /// fault point; a write failure deactivates the journal (the daemon
  /// keeps serving, without replay durability) and returns the Status.
  Status append(const std::string& id, const std::string& fingerprint,
                const std::string& response_text);

  /// Replay lookup; nullptr when the id was never journaled.
  const Entry* find(const std::string& id) const;

  bool active() const { return file_ != nullptr; }
  const std::string& note() const { return note_; }
  std::size_t restored() const { return restored_; }
  std::size_t rows() const { return entries_.size(); }

  void close();

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
  std::string note_;
  std::size_t restored_ = 0;
  std::map<std::string, Entry> entries_;
};

}  // namespace ucp::serve
