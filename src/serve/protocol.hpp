#pragma once

// Wire protocol of the ucpd analysis daemon.
//
// One request and one response per connection, both in the same shape: a
// line-delimited header ("ucp-request v1" / "ucp-response v1" magic, then
// `key value` lines), terminated by a `payload <nbytes>` line followed by
// exactly that many raw bytes. The request payload is an ir text-codec
// program; the response payload is the (optimized or identity) program the
// daemon vouches for. Framing by declared byte count means the payload
// needs no escaping and a truncated upload is detected as such, not parsed.
//
// Every parse path is a structured kMalformedInput Status — the daemon
// serves untrusted input and must outlive any byte sequence a client can
// produce. Limits (header line count, line length, payload bytes, and the
// ir::CodecLimits applied to the program text) are enforced while reading,
// before any allocation proportional to attacker-declared sizes.

#include <cstdint>
#include <string>

#include "cache/config.hpp"
#include "energy/model.hpp"
#include "ir/text_codec.hpp"
#include "support/socket.hpp"
#include "support/status.hpp"

namespace ucp::serve {

/// Reader/parser ceilings for one protocol exchange.
struct ProtocolLimits {
  std::size_t max_header_lines = 32;
  std::size_t max_line_bytes = 4096;
  std::size_t max_payload_bytes = 8u << 20;
  ir::CodecLimits codec;  ///< applied to the request's program text
};

/// One optimization request: which program text to optimize, on which cache
/// configuration and technology node, under which supervision budgets.
struct Request {
  /// Client-chosen idempotency key, `[A-Za-z0-9_.:-]{1,128}`. A replayed id
  /// with an identical request body returns the journaled response; a
  /// replayed id with a *different* body is rejected (kMalformedInput).
  std::string id;
  std::string config_id;       ///< paper label ("k7") or "custom"
  cache::CacheConfig config;   ///< resolved geometry
  energy::TechNode tech = energy::TechNode::k45nm;
  std::uint32_t deadline_ms = 0;  ///< watchdog deadline; 0 = server default
  std::uint32_t attempts = 0;     ///< retry-ladder depth 1..3; 0 = default
  std::string program_text;       ///< ir text-codec payload
};

enum class ResponseStatus : std::uint8_t {
  kOk,        ///< optimized program produced, Theorem 1 audited
  kDegraded,  ///< ladder exhausted; payload is the identity transform,
              ///< still sound (Theorem 1 holds trivially)
  kError,     ///< no sound program can be vouched for (structured cause)
};

const char* response_status_name(ResponseStatus status);

/// One response. `code` carries the failure (or degradation) cause;
/// `attempts`/`degradation_level` mirror exp::UseCaseResult semantics
/// (0 clean, 1 recovered-by-retry, 2 degraded, 3 failed).
struct Response {
  std::string id;
  ResponseStatus status = ResponseStatus::kError;
  ErrorCode code = ErrorCode::kOk;
  std::string detail;
  std::uint32_t attempts = 0;
  std::uint32_t degradation_level = 0;
  std::string audit = "skipped";  ///< clean | violated | inconclusive | skipped
  std::uint64_t tau_original = 0;
  std::uint64_t tau_optimized = 0;
  std::uint64_t mem_cycles_original = 0;
  std::uint64_t mem_cycles_optimized = 0;
  double energy_original_nj = 0.0;
  double energy_optimized_nj = 0.0;
  std::uint64_t prefetches = 0;
  bool cached = false;    ///< served from the warm response cache
  bool replayed = false;  ///< served from the request journal (idempotent)
  std::uint32_t retry_after_ms = 0;  ///< only with code kOverloaded
  std::string program_text;          ///< the vouched-for program ("" on error)
};

// --- serialization ---------------------------------------------------------
// serialize_* is deterministic: one byte stream per value. parse_response /
// read_request are total on arbitrary bytes (structured error, never UB).

std::string serialize_request(const Request& request);
std::string serialize_response(const Response& response);

/// Reads and validates one request from the socket. kNotFound when the peer
/// closed before sending anything (clean disconnect); kMalformedInput for
/// everything else a hostile or buggy client can produce. The program text
/// is *framed* but not yet codec-parsed — the worker does that so parse
/// cost lands inside the per-request pipeline boundary.
Expected<Request> read_request(support::LineReader& reader,
                               const ProtocolLimits& limits);

/// Reads one response (client side).
Expected<Response> read_response(support::LineReader& reader,
                                 const ProtocolLimits& limits);

/// Parses a serialized response from a string (journal replay path).
Expected<Response> parse_response_text(const std::string& text,
                                       const ProtocolLimits& limits);

/// Inverse of error_code_name; kMalformedInput Status on unknown names.
Expected<ErrorCode> error_code_from_name(const std::string& name);

/// Whether `id` is a well-formed request id: `[A-Za-z0-9_.:-]{1,128}`.
bool valid_request_id(const std::string& id);

/// FNV-1a fingerprint (16 hex chars) over everything that makes two
/// requests semantically identical: program text, cache geometry, tech,
/// budgets. The idempotency and response-cache key.
std::string request_fingerprint(const Request& request);

}  // namespace ucp::serve
