// ucpd — the unlocked-cache-prefetch analysis daemon.
//
// Serves analyze -> optimize -> audit requests over loopback TCP (see
// serve/protocol.hpp for the wire format and serve/server.hpp for the
// robustness model). Runs until SIGINT/SIGTERM, then drains gracefully:
// queued requests finish, threads join, the request journal closes clean.
// A SIGKILL'd daemon restarted on the same --journal path replays
// already-answered request ids byte-identically instead of recomputing.
//
// Ops plane (DESIGN.md §16): a second loopback listener answers HEALTH /
// STATS [prom] / PROFILE / FLIGHT scrapes; the flight recorder is always
// on (SIGQUIT dumps it); logging is structured JSON lines on stderr by
// default; --trace-sample=N writes every Nth request's spans as a
// standalone Chrome trace.
//
//   ucpd [--port=N] [--workers=N] [--queue=N] [--deadline-ms=N]
//        [--attempts=N] [--journal=FILE] [--io-timeout-ms=N] [--no-audit]
//        [--trace=FILE] [--metrics=FILE]
//        [--admin-port=N] [--no-admin] [--flight=FILE]
//        [--trace-sample=N] [--trace-dir=DIR]
//        [--log=json|text] [--log-level=debug|info|warn|error]
//        [--log-file=FILE] [--log-rate=N]
//
// Prints exactly one "ucpd listening on 127.0.0.1:<port>" line to stdout
// once serving (scripts and tests block on it), then — unless --no-admin —
// one "ucpd admin on 127.0.0.1:<port>" line.

#include <chrono>
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "obs/flight.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/sink.hpp"
#include "obs/trace.hpp"
#include "serve/server.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;
volatile std::sig_atomic_t g_quit = 0;

void handle_stop_signal(int) { g_stop = 1; }
void handle_quit_signal(int) { g_quit = 1; }

std::uint32_t parse_u32_arg(const std::string& value, const char* what) {
  if (value.empty() ||
      value.find_first_not_of("0123456789") != std::string::npos ||
      value.size() > 9) {
    std::cerr << "ucpd: bad " << what << " '" << value << "'\n";
    std::exit(2);
  }
  return static_cast<std::uint32_t>(std::stoul(value));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ucp;

  serve::ServerOptions options;
  options.admin_enabled = true;  // the daemon flies with its ops plane on
  std::string trace_path;
  std::string metrics_path;
  obs::LogOptions log_options;
  log_options.json = true;  // machines read daemon logs; humans use --log=text
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const std::size_t eq = a.find('=');
    const std::string key = eq == std::string::npos ? a : a.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? std::string() : a.substr(eq + 1);
    if (key == "--port") {
      const std::uint32_t port = parse_u32_arg(value, "--port");
      if (port > 65535) {
        std::cerr << "ucpd: --port out of range\n";
        return 2;
      }
      options.port = static_cast<std::uint16_t>(port);
    } else if (key == "--workers") {
      options.workers = parse_u32_arg(value, "--workers");
    } else if (key == "--queue") {
      options.queue_capacity = parse_u32_arg(value, "--queue");
    } else if (key == "--deadline-ms") {
      options.default_deadline_ms = parse_u32_arg(value, "--deadline-ms");
    } else if (key == "--attempts") {
      options.default_attempts = parse_u32_arg(value, "--attempts");
      if (options.default_attempts < 1 || options.default_attempts > 3) {
        std::cerr << "ucpd: --attempts must be 1..3\n";
        return 2;
      }
    } else if (key == "--journal") {
      options.journal_path = value;
    } else if (key == "--io-timeout-ms") {
      options.io_timeout_ms =
          static_cast<int>(parse_u32_arg(value, "--io-timeout-ms"));
    } else if (key == "--no-audit") {
      options.audit_soundness = false;
    } else if (key == "--trace") {
      trace_path = value;
    } else if (key == "--metrics") {
      metrics_path = value;
    } else if (key == "--admin-port") {
      const std::uint32_t port = parse_u32_arg(value, "--admin-port");
      if (port > 65535) {
        std::cerr << "ucpd: --admin-port out of range\n";
        return 2;
      }
      options.admin_port = static_cast<std::uint16_t>(port);
    } else if (key == "--no-admin") {
      options.admin_enabled = false;
    } else if (key == "--flight") {
      options.flight_path = value;
    } else if (key == "--trace-sample") {
      options.trace_sample_every = parse_u32_arg(value, "--trace-sample");
    } else if (key == "--trace-dir") {
      options.trace_dir = value;
    } else if (key == "--log") {
      if (value == "json")
        log_options.json = true;
      else if (value == "text")
        log_options.json = false;
      else {
        std::cerr << "ucpd: --log must be json or text\n";
        return 2;
      }
    } else if (key == "--log-level") {
      if (value == "debug")
        log_options.min_level = obs::LogLevel::kDebug;
      else if (value == "info")
        log_options.min_level = obs::LogLevel::kInfo;
      else if (value == "warn")
        log_options.min_level = obs::LogLevel::kWarn;
      else if (value == "error")
        log_options.min_level = obs::LogLevel::kError;
      else {
        std::cerr << "ucpd: --log-level must be debug|info|warn|error\n";
        return 2;
      }
    } else if (key == "--log-file") {
      log_options.file_path = value;
    } else if (key == "--log-rate") {
      log_options.rate_limit = parse_u32_arg(value, "--log-rate");
    } else {
      std::cerr
          << "ucpd: unknown argument '" << a << "'\n"
          << "usage: ucpd [--port=N] [--workers=N] [--queue=N]"
             " [--deadline-ms=N] [--attempts=N] [--journal=FILE]"
             " [--io-timeout-ms=N] [--no-audit] [--trace=FILE]"
             " [--metrics=FILE] [--admin-port=N] [--no-admin]"
             " [--flight=FILE] [--trace-sample=N] [--trace-dir=DIR]"
             " [--log=json|text] [--log-level=debug|info|warn|error]"
             " [--log-file=FILE] [--log-rate=N]\n";
      return 2;
    }
  }

  obs::configure_logging(log_options);
  // Metrics and the flight recorder are always on in the daemon: STATS
  // scrapes and crash dumps must work on any ucpd, not just profiled ones.
  // Tracing stays opt-in (clock reads on every span are the costly part).
  obs::set_enabled(true);
  obs::set_flight_enabled(true);
  if (!trace_path.empty() || options.trace_sample_every > 0)
    obs::set_trace_enabled(true);

  serve::Server server(options);
  const Status started = server.start();
  if (!started.ok()) {
    obs::log(obs::LogLevel::kError, "ucpd", "start_failed",
             started.message());
    return 1;
  }

  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);
  std::signal(SIGQUIT, handle_quit_signal);

  std::cout << "ucpd listening on 127.0.0.1:" << server.port() << std::endl;
  if (options.admin_enabled)
    std::cout << "ucpd admin on 127.0.0.1:" << server.admin_port()
              << std::endl;

  while (!g_stop) {
    if (g_quit) {
      // SIGQUIT = "tell me what you were just doing", not "die": dump the
      // flight rings and keep serving.
      g_quit = 0;
      server.dump_flight("sigquit", /*force=*/true);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  obs::log(obs::LogLevel::kInfo, "ucpd", "draining");
  server.stop();

  const serve::ServerStats stats = server.stats();
  obs::log(obs::LogLevel::kInfo, "ucpd", "exit", {},
           obs::LogFields()
               .num("requests", stats.requests)
               .num("ok", stats.ok)
               .num("degraded", stats.degraded)
               .num("errors", stats.errors)
               .num("malformed", stats.malformed)
               .num("shed", stats.shed)
               .num("replayed", stats.replayed)
               .num("cache_hits", stats.cache_hits)
               .num("dropped", stats.dropped)
               .num("admin_scrapes", stats.admin_scrapes)
               .num("flight_dumps", stats.flight_dumps)
               .num("watchdog_fires", stats.watchdog_fires)
               .num("trace_dumps", stats.trace_dumps));

  if (!trace_path.empty()) {
    const Status written =
        obs::write_trace_file(trace_path, obs::drain_trace());
    if (!written.ok())
      obs::log(obs::LogLevel::kWarn, "ucpd", "trace_write_failed",
               written.message());
  }
  if (!metrics_path.empty()) {
    const Status written =
        obs::write_metrics_file(metrics_path, obs::registry().snapshot());
    if (!written.ok())
      obs::log(obs::LogLevel::kWarn, "ucpd", "metrics_write_failed",
               written.message());
  }
  return 0;
}
