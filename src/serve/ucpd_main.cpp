// ucpd — the unlocked-cache-prefetch analysis daemon.
//
// Serves analyze -> optimize -> audit requests over loopback TCP (see
// serve/protocol.hpp for the wire format and serve/server.hpp for the
// robustness model). Runs until SIGINT/SIGTERM, then drains gracefully:
// queued requests finish, threads join, the request journal closes clean.
// A SIGKILL'd daemon restarted on the same --journal path replays
// already-answered request ids byte-identically instead of recomputing.
//
//   ucpd [--port=N] [--workers=N] [--queue=N] [--deadline-ms=N]
//        [--attempts=N] [--journal=FILE] [--io-timeout-ms=N] [--no-audit]
//        [--trace=FILE] [--metrics=FILE]
//
// Prints exactly one "ucpd listening on 127.0.0.1:<port>" line to stdout
// once serving (scripts and tests block on it), stats to stderr on exit.

#include <chrono>
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/sink.hpp"
#include "obs/trace.hpp"
#include "serve/server.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void handle_stop_signal(int) { g_stop = 1; }

std::uint32_t parse_u32_arg(const std::string& value, const char* what) {
  if (value.empty() ||
      value.find_first_not_of("0123456789") != std::string::npos ||
      value.size() > 9) {
    std::cerr << "ucpd: bad " << what << " '" << value << "'\n";
    std::exit(2);
  }
  return static_cast<std::uint32_t>(std::stoul(value));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ucp;

  serve::ServerOptions options;
  std::string trace_path;
  std::string metrics_path;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const std::size_t eq = a.find('=');
    const std::string key = eq == std::string::npos ? a : a.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? std::string() : a.substr(eq + 1);
    if (key == "--port") {
      const std::uint32_t port = parse_u32_arg(value, "--port");
      if (port > 65535) {
        std::cerr << "ucpd: --port out of range\n";
        return 2;
      }
      options.port = static_cast<std::uint16_t>(port);
    } else if (key == "--workers") {
      options.workers = parse_u32_arg(value, "--workers");
    } else if (key == "--queue") {
      options.queue_capacity = parse_u32_arg(value, "--queue");
    } else if (key == "--deadline-ms") {
      options.default_deadline_ms = parse_u32_arg(value, "--deadline-ms");
    } else if (key == "--attempts") {
      options.default_attempts = parse_u32_arg(value, "--attempts");
      if (options.default_attempts < 1 || options.default_attempts > 3) {
        std::cerr << "ucpd: --attempts must be 1..3\n";
        return 2;
      }
    } else if (key == "--journal") {
      options.journal_path = value;
    } else if (key == "--io-timeout-ms") {
      options.io_timeout_ms =
          static_cast<int>(parse_u32_arg(value, "--io-timeout-ms"));
    } else if (key == "--no-audit") {
      options.audit_soundness = false;
    } else if (key == "--trace") {
      trace_path = value;
    } else if (key == "--metrics") {
      metrics_path = value;
    } else {
      std::cerr
          << "ucpd: unknown argument '" << a << "'\n"
          << "usage: ucpd [--port=N] [--workers=N] [--queue=N]"
             " [--deadline-ms=N] [--attempts=N] [--journal=FILE]"
             " [--io-timeout-ms=N] [--no-audit] [--trace=FILE]"
             " [--metrics=FILE]\n";
      return 2;
    }
  }

  if (!trace_path.empty() || !metrics_path.empty()) {
    obs::set_enabled(true);
    if (!trace_path.empty()) obs::set_trace_enabled(true);
  }

  serve::Server server(options);
  const Status started = server.start();
  if (!started.ok()) {
    std::cerr << "ucpd: " << started.message() << "\n";
    return 1;
  }

  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);

  std::cerr << "ucpd: " << server.journal_note() << "\n";
  std::cout << "ucpd listening on 127.0.0.1:" << server.port() << std::endl;

  while (!g_stop)
    std::this_thread::sleep_for(std::chrono::milliseconds(50));

  std::cerr << "ucpd: draining...\n";
  server.stop();

  const serve::ServerStats stats = server.stats();
  std::cerr << "ucpd: served " << stats.requests << " requests (" << stats.ok
            << " ok, " << stats.degraded << " degraded, " << stats.errors
            << " error), " << stats.malformed << " malformed, " << stats.shed
            << " shed, " << stats.replayed << " replayed, "
            << stats.cache_hits << " cache hits, " << stats.dropped
            << " dropped connections\n";

  if (!trace_path.empty()) {
    const Status written =
        obs::write_trace_file(trace_path, obs::drain_trace());
    if (!written.ok())
      std::cerr << "ucpd: warning: " << written.message() << "\n";
  }
  if (!metrics_path.empty()) {
    const Status written =
        obs::write_metrics_file(metrics_path, obs::registry().snapshot());
    if (!written.ok())
      std::cerr << "ucpd: warning: " << written.message() << "\n";
  }
  return 0;
}
