#pragma once

// Client side of the ucpd protocol: one call = one connection, one request,
// one response. Used by the load bench, the smoke/robustness tests, and
// anything that wants a remote analyze->optimize->audit round trip without
// linking the pipeline.

#include <cstdint>
#include <string>

#include "serve/protocol.hpp"
#include "support/status.hpp"

namespace ucp::serve {

/// Connects to 127.0.0.1:`port`, sends `request`, reads the response.
/// Transport failures (refused connection, dropped mid-response, timeout)
/// come back as a Status; a *served* error (malformed input, overload shed,
/// pipeline failure) comes back as an ok() Response whose status/code carry
/// the verdict — the protocol distinguishes "the daemon answered badly
/// news" from "the daemon did not answer".
Expected<Response> call(std::uint16_t port, const Request& request,
                        int timeout_ms = 30000,
                        const ProtocolLimits& limits = {});

/// One admin-plane reply: the echoed verb, the server's ok/error verdict,
/// and the payload (JSON, Prometheus text, a profile table, a flight dump,
/// or an error message).
struct AdminReply {
  bool ok = false;
  std::string verb;
  std::string payload;
};

/// Scrapes the ucpd admin plane: connects to 127.0.0.1:`admin_port`, sends
/// `verb` (HEALTH | STATS | "STATS prom" | PROFILE | FLIGHT), parses the
/// framed reply. Same split as call(): transport/framing trouble is a
/// Status, a served error (unknown verb, flight recorder off) is an ok()
/// AdminReply with `ok == false`.
Expected<AdminReply> admin_call(std::uint16_t admin_port,
                                const std::string& verb,
                                int timeout_ms = 5000);

}  // namespace ucp::serve
