#pragma once

// Client side of the ucpd protocol: one call = one connection, one request,
// one response. Used by the load bench, the smoke/robustness tests, and
// anything that wants a remote analyze->optimize->audit round trip without
// linking the pipeline.

#include <cstdint>

#include "serve/protocol.hpp"
#include "support/status.hpp"

namespace ucp::serve {

/// Connects to 127.0.0.1:`port`, sends `request`, reads the response.
/// Transport failures (refused connection, dropped mid-response, timeout)
/// come back as a Status; a *served* error (malformed input, overload shed,
/// pipeline failure) comes back as an ok() Response whose status/code carry
/// the verdict — the protocol distinguishes "the daemon answered badly
/// news" from "the daemon did not answer".
Expected<Response> call(std::uint16_t port, const Request& request,
                        int timeout_ms = 30000,
                        const ProtocolLimits& limits = {});

}  // namespace ucp::serve
