#include "fuzz/campaign.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>
#include <vector>

#include "energy/model.hpp"
#include "fuzz/corpus.hpp"
#include "fuzz/shrink.hpp"
#include "gen/generator.hpp"
#include "obs/metrics.hpp"
#include "support/durable_io.hpp"
#include "support/fault_injection.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"

namespace ucp::fuzz {

namespace {

std::uint64_t fnv1a(const std::string& s,
                    std::uint64_t h = 1469598103934665603ull) {
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::string to_hex(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[v & 0xf];
    v >>= 4;
  }
  return out;
}

/// Compute-path sites crossed with the oracles when fault_every > 0.
/// exp.* and io.* sites are NOT on check_program's path; every site here
/// degrades the case to an explained skip or an identity optimization —
/// except fuzz.oracle, which forces a (replayable, explained) violation.
const std::vector<std::string>& cross_fault_sites() {
  static const std::vector<std::string> sites = {
      "sim.step",       "ilp.pivot",     "ilp.bb_node", "wcet.solve",
      "core.reanalyze", "core.deadline", "gen.build",   "fuzz.oracle",
  };
  return sites;
}

/// The paper cache configuration a case runs under.
const cache::NamedCacheConfig& case_config(const CampaignOptions& options,
                                           std::uint32_t index) {
  const auto& grid = cache::paper_cache_configs();
  if (options.config_rotation == 0) return cache::paper_cache_config("k7");
  const std::size_t i =
      (static_cast<std::size_t>(index) * options.config_rotation) %
      grid.size();
  return grid[i];
}

// --- campaign journal -------------------------------------------------------
// Same durability discipline as the sweep journal, smaller scope: a header
// binding the root seed and options that affect verdicts, then one
// checksummed verdict line per finished case. The header deliberately
// EXCLUDES the case count: seeds derive from split_seed(root, index), so a
// 200-case journal resumes seamlessly into a 1000-case run of the same
// campaign.

constexpr const char* kJournalMagic = "# ucp-fuzz-journal v1";

std::string journal_header(const CampaignOptions& options) {
  std::ostringstream os;
  os << kJournalMagic << " seed=" << to_hex(options.seed)
     << " rotation=" << options.config_rotation
     << " fault_every=" << options.fault_every;
  // Only sharded campaigns name their slice, so pre-shard journals (and
  // unsharded ones) keep resuming unchanged.
  if (options.shard_count > 1)
    os << " shard=" << options.shard_index << "/" << options.shard_count;
  return os.str();
}

class CampaignJournal {
 public:
  ~CampaignJournal() { close(); }

  void open(const std::string& path, const CampaignOptions& options,
            std::vector<CaseVerdict>& resumed, std::string& note) {
    path_ = path;
    const std::string header = journal_header(options);
    // Read back whatever is durable; truncate at the first invalid row.
    std::string keep;
    std::size_t keep_rows = 0;
    {
      std::ifstream in(path);
      std::string line;
      bool first = true;
      bool valid = true;
      while (valid && std::getline(in, line)) {
        if (first) {
          first = false;
          if (line != header) {
            note = "reset: header mismatch (different campaign options)";
            keep.clear();
            break;
          }
          keep += line + "\n";
          continue;
        }
        const auto tab = line.rfind('\t');
        if (tab == std::string::npos ||
            line.substr(tab + 1) != to_hex(fnv1a(line.substr(0, tab)))) {
          valid = false;  // torn tail; truncate from here
          break;
        }
        CaseVerdict v;
        if (!CaseVerdict::parse(line.substr(0, tab), v)) {
          valid = false;
          break;
        }
        // Rows must follow this campaign's owned-index sequence: the r-th
        // row is case shard_index + r * shard_count (identity when
        // unsharded). Anything else is out of order; distrust the rest.
        const std::uint32_t shards = std::max(1u, options.shard_count);
        if (v.index !=
            options.shard_index +
                static_cast<std::uint32_t>(resumed.size()) * shards) {
          valid = false;
          break;
        }
        resumed.push_back(std::move(v));
        keep += line + "\n";
        ++keep_rows;
      }
    }
    file_ = std::fopen(path.c_str(), "w");
    if (file_ == nullptr) {
      note = "disabled: cannot open '" + path + "'";
      return;
    }
    if (keep.empty()) keep = header + "\n";
    std::fwrite(keep.data(), 1, keep.size(), file_);
    std::fflush(file_);
    support::fsync_fd(fileno(file_), path_);
    support::fsync_parent(path_);
    if (note.empty())
      note = keep_rows > 0 ? "resumed " + std::to_string(keep_rows) + " case(s)"
                           : "started";
  }

  void append(const CaseVerdict& verdict) {
    if (file_ == nullptr) return;
    const std::string body = verdict.line();
    const std::string row = body + "\t" + to_hex(fnv1a(body)) + "\n";
    if (std::fwrite(row.data(), 1, row.size(), file_) != row.size()) {
      close();  // journal write failure: continue without checkpoints
      return;
    }
    std::fflush(file_);
    support::fsync_fd(fileno(file_), path_);
  }

  void close() {
    if (file_ != nullptr) std::fclose(file_);
    file_ = nullptr;
  }

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
};

}  // namespace

std::string CaseVerdict::line() const {
  std::ostringstream os;
  os << "case " << index << " seed=" << to_hex(case_seed)
     << " config=" << config_id
     << " fault=" << (fault_site.empty() ? "-" : fault_site)
     << " oracle=" << oracle_name(violation)
     << " ok=" << (pipeline_ok ? 1 : 0) << " tau=" << tau_original
     << " tau_opt=" << tau_optimized << " sim=" << sim_mem_cycles
     << " instr=" << instructions << " pf=" << prefetches;
  return os.str();
}

bool CaseVerdict::parse(const std::string& line, CaseVerdict& out) {
  std::istringstream is(line);
  std::string kw;
  if (!(is >> kw) || kw != "case") return false;
  if (!(is >> out.index)) return false;
  std::string field;
  auto take = [&field](const char* key, std::string& value) {
    const std::string prefix = std::string(key) + "=";
    if (field.compare(0, prefix.size(), prefix) != 0) return false;
    value = field.substr(prefix.size());
    return true;
  };
  try {
    std::string v;
    if (!(is >> field) || !take("seed", v)) return false;
    out.case_seed = std::stoull(v, nullptr, 16);
    if (!(is >> field) || !take("config", out.config_id)) return false;
    if (!(is >> field) || !take("fault", out.fault_site)) return false;
    if (out.fault_site == "-") out.fault_site.clear();
    if (!(is >> field) || !take("oracle", v)) return false;
    out.violation = oracle_from_name(v);
    if (!(is >> field) || !take("ok", v)) return false;
    out.pipeline_ok = v == "1";
    if (!(is >> field) || !take("tau", v)) return false;
    out.tau_original = std::stoull(v);
    if (!(is >> field) || !take("tau_opt", v)) return false;
    out.tau_optimized = std::stoull(v);
    if (!(is >> field) || !take("sim", v)) return false;
    out.sim_mem_cycles = std::stoull(v);
    if (!(is >> field) || !take("instr", v)) return false;
    out.instructions = std::stoull(v);
    if (!(is >> field) || !take("pf", v)) return false;
    out.prefetches = std::stoull(v);
  } catch (const std::exception&) {
    return false;
  }
  return true;
}

CampaignResult run_campaign(const CampaignOptions& options) {
  CampaignResult result;
  const std::uint32_t shards = std::max(1u, options.shard_count);

  // The fault registry is process-global: an armed one-shot site would fire
  // on whichever thread hits it first, mis-attributing the fault to the
  // wrong case. Fault campaigns therefore stay single-threaded.
  std::uint32_t threads = std::max(1u, options.threads);
  if (options.fault_every > 0 && threads > 1) {
    threads = 1;
    result.journal_note =
        "threads forced to 1 (fault injection is process-global)";
  }

  // Owned cases, increasing index: all of them, or this shard's i % N slice.
  std::vector<std::uint32_t> own;
  own.reserve(options.cases / shards + 1);
  for (std::uint32_t i = 0; i < options.cases; ++i)
    if (shards == 1 || i % shards == options.shard_index % shards)
      own.push_back(i);

  CampaignJournal journal;
  if (!options.journal_path.empty()) {
    std::vector<CaseVerdict> resumed;
    std::string note;
    journal.open(options.journal_path, options, resumed, note);
    result.journal_note += result.journal_note.empty() ? note : "; " + note;
    result.verdicts = std::move(resumed);
    // A journal from a longer run of the same campaign may hold cases past
    // this run's count; indices are increasing, so trim from the tail.
    while (!result.verdicts.empty() &&
           result.verdicts.back().index >= options.cases)
      result.verdicts.pop_back();
    result.resumed = result.verdicts.size();
  }

  std::mutex side_mutex;  ///< guards repro_paths and the shrunk counter

  auto run_case = [&](std::uint32_t i) {
    const std::uint64_t case_seed = split_seed(options.seed, i);
    const cache::NamedCacheConfig& named = case_config(options, i);

    CaseVerdict verdict;
    verdict.index = i;
    verdict.case_seed = case_seed;
    verdict.config_id = named.id;

    const bool arm_fault =
        options.fault_every > 0 && (i + 1) % options.fault_every == 0;
    if (arm_fault) {
      const auto& sites = cross_fault_sites();
      verdict.fault_site =
          sites[(i / options.fault_every) % sites.size()];
    }

    OracleOptions oracle_options;
    oracle_options.config = named.config;
    oracle_options.timing =
        energy::derive_timing(named.config, energy::TechNode::k45nm);

    // Knobs and program derive from independent streams of the case seed,
    // so neither sampling step can perturb the other.
    Rng knob_rng(split_seed(case_seed, 0));
    gen::GenKnobs knobs = gen::sample_knobs(knob_rng);
    if (options.large_scale > 0 && i + 1 == options.cases) {
      // The designated large case: same knob recipe as bench_scaling's
      // tiers, deterministic like every other case (the override depends
      // only on the options, never on the sampled values).
      knobs.target_blocks = 24 * options.large_scale;
      knobs.max_loop_depth = 2;
      knobs.working_set_words = 1024;
    }
    const std::uint64_t gen_seed = split_seed(case_seed, 1);

    ir::Program program("pending");
    bool generated = false;
    if (!verdict.fault_site.empty()) fault::arm(verdict.fault_site);
    try {
      program = gen::generate_program(gen_seed, knobs);
      generated = true;
      const OracleReport report = check_program(program, oracle_options);
      verdict.violation = report.violation;
      verdict.pipeline_ok = report.pipeline_ok;
      verdict.note = report.violated() ? report.detail : report.pipeline_note;
      verdict.tau_original = report.tau_original;
      verdict.tau_optimized = report.tau_optimized;
      verdict.sim_mem_cycles = report.sim_mem_cycles;
      verdict.instructions = report.instructions;
      verdict.prefetches = report.prefetches;
    } catch (const std::exception& e) {
      if (generated) {
        // check_program contains pipeline exceptions itself; one escaping
        // here is unexpected — surface it as a runtime violation.
        verdict.violation = Oracle::kRuntime;
        verdict.note = e.what();
      } else {
        // Generator failure: explained when its fault site was armed,
        // otherwise a generator bug the campaign must surface.
        verdict.pipeline_ok = false;
        verdict.violation = verdict.fault_site == "gen.build"
                                ? Oracle::kNone
                                : Oracle::kRuntime;
        verdict.note = std::string("generator: ") + e.what();
      }
    }
    fault::disarm_all();

    if (verdict.violated()) {
      // (unexplained/violation totals are recomputed over all verdicts at
      // the end; nothing to count here.)
      if (!options.corpus_dir.empty() && generated) {
        CorpusEntry entry;
        entry.seed = gen_seed;
        entry.knobs = knobs.to_string();
        entry.expect = verdict.violation;
        entry.detail = verdict.note;
        entry.fault_site = verdict.fault_site;
        entry.config_id = named.id;
        entry.program = program;

        if (options.shrink && verdict.fault_site.empty()) {
          // Same-oracle-kind predicate; verify-gating happens inside the
          // shrinker. One-shot fault violations are gone by now, so the
          // shrinker's pre-check fails for them and the repro stays
          // unshrunk (hence the fault_site guard above skips the attempt).
          const Oracle kind = verdict.violation;
          const ShrinkResult shrunk = shrink_program(
              program,
              [&](const ir::Program& candidate) {
                return check_program(candidate, oracle_options).violation ==
                       kind;
              });
          if (shrunk.reproduced) {
            entry.program = shrunk.program;
            entry.detail +=
                " (shrunk " + std::to_string(shrunk.accepted) + " steps)";
            std::lock_guard<std::mutex> lock(side_mutex);
            ++result.shrunk;
          } else {
            entry.detail += " (unreproducible; unshrunk)";
          }
        }
        std::ostringstream file;
        file << options.corpus_dir << "/repro_" << to_hex(case_seed) << "_"
             << oracle_name(verdict.violation) << ".ucp";
        entry.name = file.str();
        if (write_corpus_entry(file.str(), entry).ok()) {
          std::lock_guard<std::mutex> lock(side_mutex);
          result.repro_paths.push_back(file.str());
        }
      }
    }
    return verdict;
  };

  // Remaining owned cases run on the worker pool; each lands in its slot,
  // and a completion frontier emits trace lines, journal rows and progress
  // in index order — so every byte of output is identical at any thread
  // count, and the journal stays a resumable prefix.
  const std::size_t start = result.verdicts.size();
  std::vector<CaseVerdict> slots(own.size() - start);
  std::vector<char> slot_done(slots.size(), 0);
  std::size_t frontier = 0;
  std::mutex flush_mutex;
  auto flush_done = [&](std::size_t k) {
    std::lock_guard<std::mutex> lock(flush_mutex);
    slot_done[k] = 1;
    while (frontier < slots.size() && slot_done[frontier] != 0) {
      const CaseVerdict& v = slots[frontier];
      if (options.trace) std::cerr << "[fuzz] " << v.line() << "\n";
      journal.append(v);
      ++frontier;
      const std::size_t emitted = start + frontier;
      if (options.progress_every > 0 &&
          emitted % options.progress_every == 0)
        std::cerr << "[fuzz] " << emitted << "/" << own.size()
                  << " cases\n";
    }
  };
  support::parallel_for_index(slots.size(), threads, [&](std::size_t k) {
    slots[k] = run_case(own[start + k]);
    flush_done(k);
  });
  for (CaseVerdict& v : slots) result.verdicts.push_back(std::move(v));
  journal.close();

  // Totals + fingerprint over ALL verdicts (resumed ones included), so an
  // interrupted+resumed campaign reports exactly like an uninterrupted one.
  std::uint64_t h = fnv1a("ucp-fuzz-verdicts");
  result.violations = result.unexplained = result.skipped = result.faulted =
      0;
  for (const CaseVerdict& v : result.verdicts) {
    h = fnv1a(v.line(), h);
    if (v.violated()) {
      ++result.violations;
      if (v.fault_site.empty()) ++result.unexplained;
    }
    if (!v.pipeline_ok) ++result.skipped;
    if (!v.fault_site.empty()) ++result.faulted;
  }
  result.fingerprint = to_hex(h);

  // Publish-at-end authoritative totals (mirrors publish_sweep_metrics).
  if (obs::enabled()) {
    auto& r = obs::registry();
    r.counter("fuzz.campaign.cases").add(result.verdicts.size());
    r.counter("fuzz.campaign.violations").add(result.violations);
    r.counter("fuzz.campaign.unexplained").add(result.unexplained);
    r.counter("fuzz.campaign.skipped").add(result.skipped);
    r.counter("fuzz.campaign.faulted").add(result.faulted);
    r.counter("fuzz.campaign.shrunk").add(result.shrunk);
    r.counter("fuzz.campaign.resumed").add(result.resumed);
    auto& instr_hist = r.histogram("fuzz.case.instructions");
    auto& tau_hist = r.histogram("fuzz.case.tau_original");
    for (const CaseVerdict& v : result.verdicts) {
      instr_hist.record(v.instructions);
      tau_hist.record(v.tau_original);
    }
  }
  return result;
}

}  // namespace ucp::fuzz
