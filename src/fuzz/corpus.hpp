#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/oracles.hpp"
#include "ir/program.hpp"
#include "support/status.hpp"

namespace ucp::fuzz {

/// One self-contained repro file (`tests/corpus/*.ucp`): provenance
/// headers plus the canonical program text. A violation entry records the
/// oracle it must trip; a pass exemplar records "none" and pins that the
/// battery stays green on a known-good program. `fault_site`, when
/// non-empty, is armed one-shot before replay — that is how injected
/// violations (which are unreproducible by nature) stay replayable.
struct CorpusEntry {
  std::string name;              ///< file stem, e.g. "pass_3f91a2"
  std::uint64_t seed = 0;        ///< generator seed (provenance)
  std::string knobs;             ///< knob string (provenance, free-form)
  Oracle expect = Oracle::kNone; ///< violation the replay must reproduce
  std::string detail;            ///< one-line triage note
  std::string fault_site;        ///< armed one-shot before replay; "" = none
  std::string config_id = "k7";  ///< paper cache configuration for replay
  ir::Program program{""};
};

/// Serializes an entry (header comments + `ir::to_text`); byte-stable.
std::string corpus_to_text(const CorpusEntry& entry);
/// Parses serialized form; throws InvalidArgument on malformed input.
CorpusEntry corpus_from_text(const std::string& text, std::string name = "");

Status write_corpus_entry(const std::string& path, const CorpusEntry& entry);
Expected<CorpusEntry> read_corpus_entry(const std::string& path);

/// All `*.ucp` files under `dir`, sorted by name (deterministic replay
/// order). Missing directory = empty list.
std::vector<std::string> list_corpus_files(const std::string& dir);

/// Replays one entry: verifies the program, arms `fault_site` if present,
/// runs the oracle battery on `config_id`, and checks the verdict equals
/// `expect`. Ok = reproduced as recorded.
Status replay_corpus_entry(const CorpusEntry& entry);

}  // namespace ucp::fuzz
