#include "fuzz/shrink.hpp"

#include <unordered_map>
#include <vector>

#include "ir/verify.hpp"
#include "obs/metrics.hpp"
#include "support/fault_injection.hpp"

namespace ucp::fuzz {

namespace {

/// Appends a copy of `in` (sans id, which append() reassigns) to `bb`.
void copy_instr(ir::Program& out, ir::BlockId bb, const ir::Instruction& in,
                std::unordered_map<ir::InstrId, ir::InstrId>& id_map) {
  ir::Instruction copy = in;
  copy.id = ir::kInvalidInstr;
  const ir::InstrId fresh = out.append(bb, copy);
  id_map[in.id] = fresh;
}

}  // namespace

ir::Program rebuild_reachable(const ir::Program& program) {
  // BFS from the entry over successor lists.
  std::vector<bool> reach(program.num_blocks(), false);
  std::vector<ir::BlockId> order;
  if (program.entry() != ir::kInvalidBlock &&
      program.entry() < program.num_blocks()) {
    std::vector<ir::BlockId> work = {program.entry()};
    reach[program.entry()] = true;
    while (!work.empty()) {
      const ir::BlockId b = work.back();
      work.pop_back();
      order.push_back(b);
      for (ir::BlockId s : program.block(b).succs)
        if (s < program.num_blocks() && !reach[s]) {
          reach[s] = true;
          work.push_back(s);
        }
    }
  }
  // Renumber in ORIGINAL block order (not BFS order) so the rebuild is a
  // pure deletion — surviving blocks keep their relative positions and the
  // instruction layout stays recognizable across shrink steps.
  std::vector<ir::BlockId> remap(program.num_blocks(), ir::kInvalidBlock);
  ir::Program out(program.name());
  std::unordered_map<ir::InstrId, ir::InstrId> id_map;
  for (ir::BlockId b = 0; b < program.num_blocks(); ++b) {
    if (!reach[b]) continue;
    const ir::BasicBlock& bb = program.block(b);
    const ir::BlockId nb = out.add_block(bb.label);
    remap[b] = nb;
    for (const ir::Instruction& in : bb.instrs) copy_instr(out, nb, in, id_map);
  }
  for (ir::BlockId b = 0; b < program.num_blocks(); ++b) {
    if (!reach[b]) continue;
    for (ir::BlockId s : program.block(b).succs) {
      // A successor may itself be unreachable only if the CFG was already
      // malformed; keep the dangling id so verify reports it.
      out.block(remap[b]).succs.push_back(
          s < program.num_blocks() && remap[s] != ir::kInvalidBlock
              ? remap[s]
              : s);
    }
  }
  if (program.entry() != ir::kInvalidBlock &&
      remap[program.entry()] != ir::kInvalidBlock)
    out.set_entry(remap[program.entry()]);
  for (const auto& [header, bound] : program.loop_bounds())
    if (header < program.num_blocks() && remap[header] != ir::kInvalidBlock)
      out.set_loop_bound(remap[header], bound);
  // Remap prefetch targets; a target whose instruction was dropped becomes
  // dangling, which verify rejects (the candidate is then discarded).
  for (ir::BlockId b = 0; b < out.num_blocks(); ++b)
    for (auto& in : out.block(b).instrs)
      if (in.op == ir::Opcode::kPrefetch) {
        const auto it = id_map.find(in.pf_target);
        if (it != id_map.end()) in.pf_target = it->second;
      }
  out.set_data(program.data());
  return out;
}

namespace {

/// True iff `candidate` is well-formed and still fails the same way.
bool keep(const ir::Program& candidate, const StillFails& still_fails,
          ShrinkResult& r, const ShrinkOptions& options, bool& out_of_budget) {
  if (r.checks >= options.max_checks) {
    out_of_budget = true;
    return false;
  }
  if (!ir::verify_issues(candidate).empty()) return false;
  ++r.checks;
  return still_fails(candidate);
}

}  // namespace

ShrinkResult shrink_program(const ir::Program& input,
                            const StillFails& still_fails,
                            const ShrinkOptions& options) {
  static obs::Counter& steps_counter =
      obs::registry().counter("fuzz.shrink.steps");

  ShrinkResult r{ir::Program(input), false, false, 0, 0, 0};
  // Pre-check: an unreproducible failure (e.g. caused by a one-shot
  // injected fault that is no longer armed) must not be "shrunk" — every
  // candidate would trivially pass the predicate's negation and the loop
  // would minimize the program to an unrelated husk.
  ++r.checks;
  if (!still_fails(input)) return r;
  r.reproduced = true;

  bool out_of_budget = false;
  bool progress = true;
  while (progress) {
    if (UCP_FAULT_POINT("fuzz.shrink")) {
      r.aborted = true;
      break;
    }
    progress = false;
    ++r.rounds;

    // Pass 1: delete one instruction at a time (never the terminator — that
    // would change the block's arity class; branch collapses are pass 2).
    for (ir::BlockId b = 0; b < r.program.num_blocks(); ++b) {
      for (std::size_t i = 0; i < r.program.block(b).instrs.size();) {
        const ir::Instruction& in = r.program.block(b).instrs[i];
        const bool last = i + 1 == r.program.block(b).instrs.size();
        if ((last && ir::is_terminator(in.op)) ||
            r.program.block(b).instrs.size() == 1) {
          ++i;
          continue;
        }
        ir::Program candidate(r.program);
        candidate.erase(b, i);
        if (keep(candidate, still_fails, r, options, out_of_budget)) {
          r.program = std::move(candidate);
          ++r.accepted;
          if (obs::enabled()) steps_counter.increment();
          progress = true;
          // i now indexes the next instruction; don't advance.
        } else {
          if (out_of_budget) break;
          ++i;
        }
      }
      if (out_of_budget) break;
    }

    // Pass 2: collapse one branch to an unconditional jump (try each arm),
    // then drop whatever became unreachable.
    for (ir::BlockId b = 0;
         !out_of_budget && b < r.program.num_blocks(); ++b) {
      const ir::BasicBlock& bb = r.program.block(b);
      if (bb.instrs.empty() || !ir::is_branch(bb.instrs.back().op) ||
          bb.succs.size() != 2)
        continue;
      bool collapsed = false;
      for (int arm = 0; arm < 2 && !collapsed; ++arm) {
        ir::Program candidate(r.program);
        ir::BasicBlock& cbb = candidate.block(b);
        const ir::BlockId target = cbb.succs[static_cast<std::size_t>(arm)];
        cbb.instrs.back().op = ir::Opcode::kJump;
        cbb.instrs.back().cond = ir::Cond::kEq;
        cbb.instrs.back().rs1 = 0;
        cbb.instrs.back().rs2 = 0;
        cbb.instrs.back().imm = 0;
        cbb.succs = {target};
        ir::Program rebuilt = rebuild_reachable(candidate);
        if (keep(rebuilt, still_fails, r, options, out_of_budget)) {
          r.program = std::move(rebuilt);
          ++r.accepted;
          if (obs::enabled()) steps_counter.increment();
          progress = true;
          collapsed = true;  // block ids shifted; restart this pass cleanly
          b = static_cast<ir::BlockId>(-1);  // ++b wraps to 0
        }
      }
    }

    // Pass 3: halve the data image from the tail (loads/stores mask their
    // addresses, so a shorter image often still reproduces).
    while (!out_of_budget && r.program.data().size() > 1) {
      ir::Program candidate(r.program);
      std::vector<std::int64_t> data = candidate.data();
      data.resize(data.size() / 2);
      candidate.set_data(std::move(data));
      if (keep(candidate, still_fails, r, options, out_of_budget)) {
        r.program = std::move(candidate);
        ++r.accepted;
        if (obs::enabled()) steps_counter.increment();
        progress = true;
      } else {
        break;
      }
    }
    if (out_of_budget) {
      r.aborted = true;
      break;
    }
  }
  return r;
}

}  // namespace ucp::fuzz
