#include "fuzz/corpus.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <dirent.h>
#include <fstream>
#include <sstream>

#include "energy/model.hpp"
#include "ir/text_codec.hpp"
#include "ir/verify.hpp"
#include "support/fault_injection.hpp"

namespace ucp::fuzz {

namespace {
constexpr const char* kMagic = "# ucp-corpus v1";
}

std::string corpus_to_text(const CorpusEntry& entry) {
  std::ostringstream os;
  os << kMagic << "\n";
  os << "# seed " << std::hex << entry.seed << std::dec << "\n";
  if (!entry.knobs.empty()) os << "# knobs " << entry.knobs << "\n";
  os << "# oracle " << oracle_name(entry.expect) << "\n";
  if (!entry.detail.empty()) os << "# detail " << entry.detail << "\n";
  if (!entry.fault_site.empty()) os << "# fault " << entry.fault_site << "\n";
  os << "# config " << entry.config_id << "\n";
  os << ir::to_text(entry.program);
  return os.str();
}

CorpusEntry corpus_from_text(const std::string& text, std::string name) {
  CorpusEntry entry;
  entry.name = std::move(name);
  std::istringstream is(text);
  std::string line;
  std::ostringstream body;
  bool saw_magic = false;
  while (std::getline(is, line)) {
    if (!line.empty() && line[0] == '#') {
      std::istringstream ls(line);
      std::string hash, key;
      ls >> hash >> key;
      if (line == kMagic) {
        saw_magic = true;
      } else if (key == "seed") {
        std::string v;
        ls >> v;
        entry.seed = std::stoull(v, nullptr, 16);
      } else if (key == "knobs" || key == "detail") {
        std::string rest;
        std::getline(ls, rest);
        if (!rest.empty() && rest[0] == ' ') rest.erase(0, 1);
        (key == "knobs" ? entry.knobs : entry.detail) = rest;
      } else if (key == "oracle") {
        std::string v;
        ls >> v;
        entry.expect = oracle_from_name(v);
      } else if (key == "fault") {
        ls >> entry.fault_site;
      } else if (key == "config") {
        ls >> entry.config_id;
      } else {
        body << line << "\n";  // program-codec comment, keep for the parser
      }
    } else {
      body << line << "\n";
    }
  }
  if (!saw_magic)
    throw InvalidArgument("corpus entry missing '" + std::string(kMagic) +
                          "' header");
  entry.program = ir::from_text("# ucp-program v1\n" + body.str());
  return entry;
}

Status write_corpus_entry(const std::string& path, const CorpusEntry& entry) {
  std::ofstream out(path, std::ios::trunc);
  if (!out)
    return Status(ErrorCode::kNotFound,
                  "cannot open corpus file '" + path + "' for writing");
  out << corpus_to_text(entry);
  out.flush();
  if (!out)
    return Status(ErrorCode::kInternal, "write to '" + path + "' failed");
  return Status::Ok();
}

Expected<CorpusEntry> read_corpus_entry(const std::string& path) {
  std::ifstream in(path);
  if (!in)
    return Status(ErrorCode::kNotFound,
                  "cannot open corpus file '" + path + "'");
  std::ostringstream text;
  text << in.rdbuf();
  std::string stem = path;
  const auto slash = stem.find_last_of('/');
  if (slash != std::string::npos) stem.erase(0, slash + 1);
  const auto dot = stem.rfind(".ucp");
  if (dot != std::string::npos) stem.erase(dot);
  try {
    return corpus_from_text(text.str(), stem);
  } catch (const std::exception& e) {
    return Status(ErrorCode::kCorruptCache,
                  "corpus file '" + path + "': " + e.what());
  }
}

std::vector<std::string> list_corpus_files(const std::string& dir) {
  std::vector<std::string> files;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return files;
  while (dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".ucp") == 0)
      files.push_back(dir + "/" + name);
  }
  ::closedir(d);
  std::sort(files.begin(), files.end());
  return files;
}

Status replay_corpus_entry(const CorpusEntry& entry) {
  const auto issues = ir::verify_issues(entry.program);
  if (!issues.empty())
    return Status(ErrorCode::kAnalysisFailed,
                  "corpus program fails verification: " + issues[0].message);

  OracleOptions options;
  const cache::NamedCacheConfig& named =
      cache::paper_cache_config(entry.config_id);
  options.config = named.config;
  options.timing = energy::derive_timing(named.config, energy::TechNode::k45nm);

  if (!entry.fault_site.empty()) fault::arm(entry.fault_site);
  OracleReport report;
  try {
    report = check_program(entry.program, options);
  } catch (...) {
    if (!entry.fault_site.empty()) fault::disarm(entry.fault_site);
    throw;
  }
  if (!entry.fault_site.empty()) fault::disarm(entry.fault_site);

  if (report.violation != entry.expect)
    return Status(ErrorCode::kAuditFailed,
                  "replay of '" + entry.name + "' produced oracle '" +
                      oracle_name(report.violation) + "' (" + report.detail +
                      "), expected '" + oracle_name(entry.expect) + "'");
  return Status::Ok();
}

}  // namespace ucp::fuzz
