#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/oracles.hpp"

namespace ucp::fuzz {

/// One fuzz campaign: `cases` programs, each derived from
/// `split_seed(seed, index)` so any single case replays in isolation and a
/// resumed campaign continues bit-identically.
struct CampaignOptions {
  std::uint64_t seed = 1;       ///< root seed
  std::uint32_t cases = 200;    ///< generated programs to run
  bool shrink = true;           ///< minimize violations before writing repros
  /// Cache configurations rotate through the paper grid with this stride
  /// (index -> k{1 + (index*stride) % 36}); 0 pins every case to k7.
  std::uint32_t config_rotation = 5;
  /// Arm one compute-path fault site (one-shot) on every n-th case, cycling
  /// through the containment list — crosses the soundness oracles with the
  /// PR-1 fault registry. 0 = off. Faulted cases must come back as
  /// explained skips or identity degradations, never as violations.
  std::uint32_t fault_every = 0;
  std::string corpus_dir;       ///< where repros are written; "" = nowhere
  std::string journal_path;     ///< checkpoint/resume journal; "" = none
  bool trace = false;           ///< per-case verdict lines on stderr
  std::uint32_t progress_every = 0;  ///< progress line period; 0 = silent
  /// Worker threads (0 = 1). Cases are seed-independent, so any thread
  /// count produces the same verdicts; the journal, trace lines and
  /// fingerprint stay in index order via a completion frontier. Forced to
  /// 1 when fault_every > 0: the fault registry is process-global, so an
  /// armed site could otherwise fire on the wrong thread's case.
  std::uint32_t threads = 1;
  /// Run only cases with index % shard_count == shard_index (0/1 = all).
  /// Shard journals bind their slice in the header; verdicts and the
  /// fingerprint cover only the owned cases.
  std::uint32_t shard_index = 0;
  std::uint32_t shard_count = 1;
  /// Scale factor for the campaign's LAST case: its sampled knobs are
  /// overridden to a generated program ~scale x the Mälardalen median
  /// (scaling_bench's knob recipe), so every smoke run drives the SCC
  /// fixpoint, state interner and ILP presolve through a model two orders
  /// of magnitude above the shrunk-repro sizes the rest of the corpus
  /// exercises. 0 = off (every case uses its sampled knobs).
  std::uint32_t large_scale = 0;
};

/// Deterministic per-case verdict. `line()` is the canonical serialized
/// form — it contains no wall-clock or host-dependent values, so the
/// campaign fingerprint (FNV-1a over all lines) is machine-independent and
/// unchanged by --trace.
struct CaseVerdict {
  std::uint32_t index = 0;
  std::uint64_t case_seed = 0;
  std::string config_id;
  std::string fault_site;        ///< armed during this case; "" = none
  Oracle violation = Oracle::kNone;
  bool pipeline_ok = true;
  std::string note;              ///< detail (violations) / skip reason
  std::uint64_t tau_original = 0;
  std::uint64_t tau_optimized = 0;
  std::uint64_t sim_mem_cycles = 0;
  std::uint64_t instructions = 0;
  std::size_t prefetches = 0;

  bool violated() const { return violation != Oracle::kNone; }

  std::string line() const;
  /// Inverse of line(); false on malformed input (journal resume).
  static bool parse(const std::string& line, CaseVerdict& out);
};

struct CampaignResult {
  std::vector<CaseVerdict> verdicts;   ///< one per case, in index order
  std::size_t violations = 0;          ///< verdicts with a violated oracle
  std::size_t unexplained = 0;         ///< violations not due to armed faults
  std::size_t skipped = 0;             ///< pipeline_ok == false (explained)
  std::size_t faulted = 0;             ///< cases run with an armed site
  std::size_t shrunk = 0;              ///< repros minimized by the shrinker
  std::size_t resumed = 0;             ///< verdicts restored from the journal
  std::string journal_note;            ///< started / resumed N / reset: why
  std::string fingerprint;             ///< FNV-1a over verdict lines
  std::vector<std::string> repro_paths;  ///< corpus files written this run
};

/// Runs the campaign. Violations are (optionally) shrunk and written as
/// corpus repros; the campaign itself never throws on a violation — the
/// caller inspects `unexplained`. Publishes `fuzz.campaign.*` metrics via
/// ucp::obs at the end (authoritative totals, journal-resumed cases
/// included).
CampaignResult run_campaign(const CampaignOptions& options);

}  // namespace ucp::fuzz
