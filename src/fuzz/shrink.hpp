#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "ir/program.hpp"

namespace ucp::fuzz {

/// Predicate over candidate programs during shrinking: true iff the
/// candidate still exhibits the SAME failure (same oracle kind) as the
/// original repro. Candidates are pre-gated by `ir::verify`, so the
/// predicate only ever sees well-formed programs.
using StillFails = std::function<bool(const ir::Program&)>;

struct ShrinkOptions {
  /// Upper bound on predicate evaluations; delta-debugging converges long
  /// before this on generator-sized programs, the cap just bounds a
  /// pathological predicate.
  std::size_t max_checks = 4000;
};

struct ShrinkResult {
  ir::Program program;       ///< smallest failing program found
  bool reproduced = false;   ///< pre-check: the INPUT satisfied the predicate
  bool aborted = false;      ///< fuzz.shrink fault or max_checks exhausted
  std::size_t checks = 0;    ///< predicate evaluations spent
  std::size_t accepted = 0;  ///< shrink steps that kept the failure
  std::size_t rounds = 0;    ///< full passes until fixpoint
};

/// Rebuilds `program` keeping only blocks reachable from the entry:
/// blocks are renumbered densely, successor lists and prefetch targets
/// remapped, loop bounds of surviving headers carried over. Used by the
/// shrinker after collapsing a branch, and exposed for tests.
ir::Program rebuild_reachable(const ir::Program& program);

/// Greedy delta-debugging minimizer. Each round tries, in deterministic
/// order: deleting one instruction (non-terminator), collapsing one branch
/// to an unconditional jump (then dropping unreachable blocks), and
/// truncating trailing data words; every candidate must pass `ir::verify`
/// AND `still_fails` to be kept. Rounds repeat until a fixpoint. If the
/// input itself does not satisfy the predicate (e.g. the original failure
/// came from a one-shot injected fault), the input is returned unshrunk
/// with `reproduced == false`.
ShrinkResult shrink_program(const ir::Program& input,
                            const StillFails& still_fails,
                            const ShrinkOptions& options = {});

}  // namespace ucp::fuzz
