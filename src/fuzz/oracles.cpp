#include "fuzz/oracles.hpp"

#include <cmath>
#include <optional>
#include <sstream>
#include <vector>

#include "analysis/cache_analysis.hpp"
#include "analysis/context_graph.hpp"
#include "analysis/persistence.hpp"
#include "cache/cache_sim.hpp"
#include "ilp/model.hpp"
#include "ir/layout.hpp"
#include "obs/metrics.hpp"
#include "sim/interpreter.hpp"
#include "support/fault_injection.hpp"
#include "wcet/ipet.hpp"

namespace ucp::fuzz {

const char* oracle_name(Oracle oracle) {
  switch (oracle) {
    case Oracle::kNone:
      return "none";
    case Oracle::kRuntime:
      return "runtime";
    case Oracle::kSimVsIpet:
      return "sim-vs-ipet";
    case Oracle::kMustHit:
      return "must-hit";
    case Oracle::kMustMiss:
      return "must-miss";
    case Oracle::kPersistence:
      return "persistence";
    case Oracle::kTheorem1:
      return "theorem1";
    case Oracle::kSparseVsDense:
      return "sparse-vs-dense";
    case Oracle::kInjected:
      return "injected";
  }
  return "unknown";
}

Oracle oracle_from_name(const std::string& name) {
  for (int i = 0; i <= static_cast<int>(Oracle::kInjected); ++i) {
    const auto o = static_cast<Oracle>(i);
    if (name == oracle_name(o)) return o;
  }
  throw InvalidArgument("unknown oracle name '" + name + "'");
}

namespace {

/// Per-instruction trace aggregation: how often each InstrId fetch hit,
/// missed, or stalled on a late prefetch.
struct TraceCounts {
  std::vector<std::uint64_t> hits;
  std::vector<std::uint64_t> misses;

  explicit TraceCounts(std::size_t n) : hits(n, 0), misses(n, 0) {}
};

/// Conjunction of the abstract verdicts over every context of each
/// instruction. A concrete fetch executes in SOME context; only a property
/// that holds in all of them transfers to the trace unconditionally.
struct ContextConjunction {
  std::vector<bool> always_hit;
  std::vector<bool> always_miss;
  std::vector<bool> persistent;
  std::vector<bool> seen;  ///< instruction appears in at least one context
};

ContextConjunction conjoin_contexts(
    const analysis::ContextGraph& graph, const ir::Program& program,
    const analysis::CacheAnalysisResult& cls,
    const analysis::PersistenceResult& persistence) {
  const std::size_t n = program.num_instr_ids();
  ContextConjunction out;
  out.always_hit.assign(n, true);
  out.always_miss.assign(n, true);
  out.persistent.assign(n, true);
  out.seen.assign(n, false);
  for (analysis::NodeId node = 0; node < graph.num_nodes(); ++node) {
    const ir::BasicBlock& bb = program.block(graph.node(node).block);
    for (std::size_t i = 0; i < bb.instrs.size(); ++i) {
      const ir::InstrId id = bb.instrs[i].id;
      const analysis::Classification c = cls.classify(node, i);
      out.seen[id] = true;
      if (c != analysis::Classification::kAlwaysHit)
        out.always_hit[id] = false;
      if (c != analysis::Classification::kAlwaysMiss)
        out.always_miss[id] = false;
      if (!persistence.persistent(node, i)) out.persistent[id] = false;
    }
  }
  return out;
}

std::string locate(const ir::Program& program, ir::InstrId id) {
  const auto loc = program.locate(id);
  std::ostringstream os;
  os << "instr#" << id << " (bb" << loc.block << " pos " << loc.index << ")";
  return os.str();
}

}  // namespace

OracleReport check_program(const ir::Program& program,
                           const OracleOptions& options) {
  OracleReport report;

  if (UCP_FAULT_POINT("fuzz.oracle")) {
    report.violation = Oracle::kInjected;
    report.detail = "injected oracle violation on '" + program.name() + "'";
    return report;
  }

  const ir::Layout layout(program, options.config.block_bytes);

  // --- concrete execution with a per-instruction hit/miss trace -----------
  TraceCounts trace(program.num_instr_ids());
  {
    cache::CacheSim cache(options.config, options.timing);
    sim::Interpreter interp(program, layout, cache);
    interp.set_trace_hook([&trace](const ir::Instruction& in, std::uint32_t,
                                   const cache::FetchResult& fetch) {
      if (fetch.kind == cache::FetchKind::kHit)
        ++trace.hits[in.id];
      else
        ++trace.misses[in.id];
    });
    Expected<sim::RunMetrics> run =
        Status(ErrorCode::kInternal, "unreached");
    try {
      run = interp.try_run();
    } catch (const std::exception& e) {
      // Generated programs are runtime-clean by construction; any throw
      // (division by zero, data out of bounds) is a generator soundness bug
      // worth shrinking, not an explained skip.
      report.violation = Oracle::kRuntime;
      report.detail = std::string("interpreter threw: ") + e.what();
      return report;
    }
    if (!run.ok()) {
      if (run.code() == ErrorCode::kLoopBoundViolated) {
        // The analyses trust declared bounds; a contradicted bound on a
        // generated program means the generator emitted an unsound flow
        // fact — a real bug, not a resource limitation.
        report.violation = Oracle::kRuntime;
        report.detail = "loop bound contradicted: " + run.status().detail();
        return report;
      }
      report.pipeline_ok = false;
      report.pipeline_note = "simulation: " + run.status().detail();
      return report;
    }
    report.sim_mem_cycles = run.value().mem_cycles;
    report.instructions = run.value().instructions;
  }

  // --- abstract analyses + IPET -------------------------------------------
  const analysis::ContextGraph graph(program);
  const wcet::IpetSystem ipet(graph);
  const analysis::CacheAnalysisResult cls =
      analysis::analyze_cache(graph, layout, options.config);
  const wcet::WcetResult wcet = ipet.solve(cls, options.timing);
  if (!wcet.ok()) {
    report.pipeline_ok = false;
    report.pipeline_note =
        "IPET: " + ilp::status_name(wcet.status) + " on the input binary";
    return report;
  }
  report.tau_original = wcet.tau_mem;

  static obs::Counter& checks_counter =
      obs::registry().counter("fuzz.oracle.checks");

  // Oracle 1: the concrete run is one admissible execution, so its memory
  // cycles can never exceed the worst case (prefetch-free binary only).
  ++report.checks_run;
  if (obs::enabled()) checks_counter.increment();
  if (report.sim_mem_cycles > report.tau_original) {
    report.violation = Oracle::kSimVsIpet;
    report.detail = "simulated memory cycles " +
                    std::to_string(report.sim_mem_cycles) +
                    " exceed tau_w " + std::to_string(report.tau_original);
    return report;
  }

  // Oracle 2: classification vs trace, conjoined over contexts.
  if (options.check_classification) {
    ++report.checks_run;
    if (obs::enabled()) checks_counter.increment();
    const analysis::PersistenceResult persistence =
        analysis::analyze_persistence(graph, program, layout, options.config);
    const ContextConjunction conj =
        conjoin_contexts(graph, program, cls, persistence);
    for (ir::InstrId id = 0; id < program.num_instr_ids(); ++id) {
      if (!conj.seen[id]) continue;
      if (conj.always_hit[id] && trace.misses[id] > 0) {
        report.violation = Oracle::kMustHit;
        report.detail = "always-hit " + locate(program, id) + " missed " +
                        std::to_string(trace.misses[id]) + " time(s)";
        return report;
      }
      if (conj.always_miss[id] && trace.hits[id] > 0) {
        report.violation = Oracle::kMustMiss;
        report.detail = "always-miss " + locate(program, id) + " hit " +
                        std::to_string(trace.hits[id]) + " time(s)";
        return report;
      }
      if (conj.persistent[id] && trace.misses[id] > 1) {
        report.violation = Oracle::kPersistence;
        report.detail = "persistent " + locate(program, id) + " missed " +
                        std::to_string(trace.misses[id]) + " times";
        return report;
      }
    }
  }

  // Oracle 3: Theorem 1 over an independent re-analysis of the optimizer's
  // output. Prefetch insertion never changes the CFG, so the input's
  // context graph and constraint system still describe the output; only
  // the layout-dependent objective changes.
  analysis::CacheAnalysisResult opt_cls;
  bool have_opt_cls = false;
  if (options.check_theorem1) {
    std::optional<core::OptimizationResult> maybe_opt;
    try {
      maybe_opt = core::optimize_prefetches(program, options.config,
                                            options.timing, options.optimizer,
                                            &ipet);
    } catch (const std::exception& e) {
      report.violation = Oracle::kRuntime;
      report.detail = std::string("optimizer threw: ") + e.what();
      return report;
    }
    const core::OptimizationResult& opt = *maybe_opt;
    if (opt.report.code != ErrorCode::kOk) {
      // Identity degradation (budget exhaustion inside the optimizer) is
      // Theorem-1 sound by definition; nothing further to compare.
      report.pipeline_note = "optimizer degraded: " + opt.report.detail;
      report.tau_optimized = report.tau_original;
    } else {
      ++report.checks_run;
      if (obs::enabled()) checks_counter.increment();
      report.prefetches = opt.report.insertions.size();
      const ir::Layout opt_layout(opt.program, options.config.block_bytes);
      opt_cls = analysis::analyze_cache(graph, opt.program, opt_layout,
                                        options.config);
      have_opt_cls = true;
      const wcet::WcetResult opt_wcet = ipet.solve(opt_cls, options.timing);
      if (!opt_wcet.ok()) {
        report.pipeline_ok = false;
        report.pipeline_note = "IPET: " + ilp::status_name(opt_wcet.status) +
                               " on the optimized binary";
        return report;
      }
      report.tau_optimized = opt_wcet.tau_mem;
      if (report.tau_optimized > report.tau_original) {
        report.violation = Oracle::kTheorem1;
        report.detail = "optimized tau_w " +
                        std::to_string(report.tau_optimized) +
                        " > original " + std::to_string(report.tau_original);
        return report;
      }
      if (opt.report.tau_optimized != report.tau_optimized) {
        report.violation = Oracle::kTheorem1;
        report.detail = "optimizer-reported tau_w " +
                        std::to_string(opt.report.tau_optimized) +
                        " disagrees with independent re-analysis " +
                        std::to_string(report.tau_optimized);
        return report;
      }
    }
  }

  // Oracle 4: the dense-tableau reference solver (no shared pivoting code
  // with the sparse path) must reproduce τ_w bit-exactly — on the
  // optimized classification when one exists, else on the input's.
  if (options.check_dense) {
    ++report.checks_run;
    if (obs::enabled()) checks_counter.increment();
    const analysis::CacheAnalysisResult& dense_cls =
        have_opt_cls ? opt_cls : cls;
    const std::uint64_t sparse_tau =
        have_opt_cls ? report.tau_optimized : report.tau_original;
    const ilp::Model model =
        ipet.model_with_objective(dense_cls, options.timing);
    const ilp::Solution dense = ilp::solve_ilp_dense_reference(model);
    if (dense.status != ilp::SolveStatus::kOptimal) {
      report.pipeline_ok = false;
      report.pipeline_note =
          "dense reference solver returned " + ilp::status_name(dense.status);
      return report;
    }
    const auto tau_dense =
        static_cast<std::uint64_t>(std::llround(dense.objective));
    if (tau_dense != sparse_tau) {
      report.violation = Oracle::kSparseVsDense;
      report.detail = "dense-reference tau_w " + std::to_string(tau_dense) +
                      " disagrees with the sparse solver's " +
                      std::to_string(sparse_tau);
      return report;
    }
  }

  return report;
}

}  // namespace ucp::fuzz
