#pragma once

#include <cstdint>
#include <string>

#include "cache/config.hpp"
#include "core/optimizer.hpp"
#include "ir/program.hpp"

namespace ucp::fuzz {

/// Which differential soundness oracle a program violated. Every value
/// except kNone names a property that must hold for ANY valid program if
/// the analyses are sound — a single counterexample is a pipeline bug (or
/// an injected fault; kInjected pins the detection path itself).
enum class Oracle : std::uint8_t {
  kNone,           ///< all checks passed
  kRuntime,        ///< pipeline threw / contradicted a loop bound
  kSimVsIpet,      ///< concrete mem cycles exceed τ_w on the original binary
  kMustHit,        ///< always-hit (all contexts) fetch observed a miss
  kMustMiss,       ///< always-miss (all contexts) fetch observed a hit
  kPersistence,    ///< persistent (all contexts) fetch missed more than once
  kTheorem1,       ///< optimized τ_w exceeds original τ_w
  kSparseVsDense,  ///< sparse and dense-reference solvers disagree
  kInjected,       ///< forced by an armed fuzz.oracle fault
};

const char* oracle_name(Oracle oracle);
/// Inverse of oracle_name; throws InvalidArgument on an unknown name.
Oracle oracle_from_name(const std::string& name);

/// What to check and under which memory system.
struct OracleOptions {
  cache::CacheConfig config;   ///< cache geometry under test
  cache::MemTiming timing;     ///< hit/miss/prefetch cycles
  core::OptimizerOptions optimizer;
  bool check_classification = true;  ///< must/may/persistence vs trace
  bool check_theorem1 = true;        ///< optimize and compare τ_w
  bool check_dense = true;           ///< dense-reference ILP agreement
};

/// Verdict of one program against the oracle battery. `violation` is the
/// FIRST violated oracle (checks run in a fixed order, so the verdict is
/// deterministic); `pipeline_ok == false` means a resource budget was
/// exhausted before the checks completed — an explained skip, never a
/// soundness verdict.
struct OracleReport {
  Oracle violation = Oracle::kNone;
  std::string detail;          ///< human-readable cause when violated
  bool pipeline_ok = true;     ///< false: skipped (budget/solver exhaustion)
  std::string pipeline_note;   ///< why the pipeline could not finish
  std::size_t checks_run = 0;  ///< oracles that actually evaluated

  // Deterministic per-case facts (journaled, fingerprinted by campaigns).
  std::uint64_t tau_original = 0;   ///< τ_w of the input binary
  std::uint64_t tau_optimized = 0;  ///< τ_w after optimization (0 if skipped)
  std::uint64_t sim_mem_cycles = 0; ///< concrete memory cycles, input binary
  std::uint64_t instructions = 0;   ///< dynamic instruction count
  std::size_t prefetches = 0;       ///< insertions the optimizer accepted

  bool violated() const { return violation != Oracle::kNone; }
};

/// Runs the full differential battery on `program`:
///  1. concrete execution with a trace hook, collecting per-instruction
///     hit/miss counts (a contradicted loop bound or a throw is kRuntime);
///  2. must/may + persistence classification vs the trace — a fetch that is
///     kAlwaysHit in EVERY context of its instruction may never miss, an
///     all-contexts kAlwaysMiss fetch may never hit, and an all-contexts
///     persistent fetch may miss at most once (conjunction over contexts is
///     what makes the check sound without tracking the concrete context);
///  3. sim-vs-IPET: simulated memory cycles <= τ_w (valid on the
///     prefetch-free input binary only — optimized binaries pay
///     prefetch-issue traffic that τ_w excludes by definition);
///  4. Theorem 1: the optimizer's output, re-analyzed against the same
///     context graph (prefetch insertion never changes the CFG), must not
///     increase τ_w;
///  5. sparse-vs-dense: the dense-tableau reference solver must reproduce
///     the sparse solver's τ_w bit-exactly.
/// An armed `fuzz.oracle` fault site forces a kInjected violation first.
OracleReport check_program(const ir::Program& program,
                           const OracleOptions& options);

}  // namespace ucp::fuzz
